// Benchmarks regenerating every table and figure of the paper's evaluation,
// one per artifact, using reduced-scale inputs so `go test -bench=.` stays
// tractable. The full-scale runs live in cmd/tasm-bench (see EXPERIMENTS.md
// for recorded paper-vs-measured numbers).
//
// External test package: internal/bench links the public tasm package
// (its serve experiment drives the real server handler), so an
// in-package test file here would form a test import cycle.
package tasm_test

import (
	"math"
	"testing"

	"github.com/tasm-repro/tasm/internal/bench"
)

// benchOptions returns the reduced-scale configuration for testing.B runs.
func benchOptions() bench.Options {
	return bench.Options{
		Width: 160, Height: 96, FPS: 8,
		DurationScale: 0.15,
		MaxVideos:     3,
		QueryCap:      8,
		Seed:          1,
	}
}

// BenchmarkTable1Datasets regenerates Table 1 (dataset roster + coverage).
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunTable1(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6aBestLayouts regenerates Figure 6(a): best uniform vs
// best non-uniform query-time improvement.
func BenchmarkFigure6aBestLayouts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, _, _, err := bench.RunFigure6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		var nonUniform float64
		for _, r := range results {
			nonUniform += r.BestNonUniformImp
		}
		if len(results) > 0 {
			b.ReportMetric(nonUniform/float64(len(results)), "mean-nonuniform-imp-%")
		}
	}
}

// BenchmarkFigure6bQuality regenerates Figure 6(b): PSNR of the best
// layouts vs the original video.
func BenchmarkFigure6bQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, _, _, err := bench.RunFigure6(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		var psnr float64
		n := 0
		for _, r := range results {
			// A preset can degenerate to the untiled layout at reduced
			// scale, giving +Inf PSNR; exclude it from the mean.
			if !math.IsInf(r.NonUniformPSNR, 0) {
				psnr += r.NonUniformPSNR
				n++
			}
		}
		if n > 0 {
			b.ReportMetric(psnr/float64(n), "mean-nonuniform-psnr-dB")
		}
	}
}

// BenchmarkFigure7UniformSweep regenerates Figure 7: improvement across
// uniform grid sizes.
func BenchmarkFigure7UniformSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunFigure7(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure8Granularity regenerates Figure 8: fine vs coarse layouts
// around same/different/all/superset object sets.
func BenchmarkFigure8Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunFigure8(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationGranularity is the design-choice ablation for fine vs
// coarse tiles; it is exactly the Figure 8 driver.
func BenchmarkAblationGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, _, err := bench.RunFigure8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		_ = cells
	}
}

// BenchmarkFigure9SOTDuration regenerates Figure 9: SOT duration vs
// improvement and storage.
func BenchmarkFigure9SOTDuration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunFigure9(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure10DecisionRule regenerates Figure 10: pixel-ratio scatter
// and the α=0.8 do-not-tile rule.
func BenchmarkFigure10DecisionRule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunFigure10(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure11Workloads regenerates Figure 11, one sub-benchmark per
// workload (four strategies each).
func BenchmarkFigure11Workloads(b *testing.B) {
	for _, name := range []string{"W1", "W2", "W3", "W4", "W5", "W6"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := bench.RunFigure11(benchOptions(), []string{name}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Summary regenerates Table 2's quartile summary over a
// representative workload.
func BenchmarkTable2Summary(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, t2, err := bench.RunFigure11(benchOptions(), []string{"W2"})
		if err != nil {
			b.Fatal(err)
		}
		if len(t2.Rows) == 0 {
			b.Fatal("empty Table 2")
		}
	}
}

// BenchmarkFigure12UpfrontCosts regenerates Figure 12: Workload 5 with
// initial detection costs.
func BenchmarkFigure12UpfrontCosts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunFigure12(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgeDetectionLayouts regenerates §5.2.4: layouts from cheap
// detectors (background subtraction, tiny YOLO, every-5-frames).
func BenchmarkEdgeDetectionLayouts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunEdgeDetection(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCostModelFit refits the decode cost model C = β·P + γ·T against
// live decode timings and reports R² (paper: 0.996).
func BenchmarkCostModelFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fit, _, err := bench.RunCostModelFit(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fit.Report.R2, "R2")
	}
}

// BenchmarkAblationAlpha sweeps the do-not-tile threshold α.
func BenchmarkAblationAlpha(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunAblationAlpha(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEta sweeps the regret threshold η on workload W4.
func BenchmarkAblationEta(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := bench.RunAblationEta(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}
