// Package client is the Go client for tasmd, the TASM network front
// end. A Client mirrors the tasm.StorageManager surface — the same
// method names, the same types, and the same error taxonomy: failures
// reconstruct the exact tasm.Err* sentinel the server classified, so
//
//	errors.Is(err, tasm.ErrVideoNotFound)
//
// holds for a remote miss exactly as it does in-process, and context
// deadline/cancellation errors round-trip as context.DeadlineExceeded
// and context.Canceled.
//
// Clients are built with functional options:
//
//	c, err := client.New("tasmd.example:7878",
//	    client.WithEncoding(client.Binary),   // raw-plane wire framing
//	    client.WithToken(token),              // bearer auth (tasmd -token-file)
//	    client.WithTLS(tlsCfg),               // https transport
//	    client.WithRetry(client.RetryPolicy{MaxAttempts: 4}),
//	)
//	cur, err := c.ScanSQLCursor(ctx, "SELECT car FROM traffic")
//	defer cur.Close()
//	for cur.Next() { consume(cur.Result()) }
//	if err := cur.Err(); err != nil { ... }
//
// The streaming reads — ScanCursor, ScanSQLCursor, DecodeFramesCursor
// — decode the server's stream incrementally (the first result is
// available as soon as the server flushes its first record, while
// later SOTs are still decoding) and handle either wire framing
// transparently: WithEncoding only changes what the client *asks* for;
// what arrives is decoded by the response's Content-Type, so a v1
// daemon answering a v2 client still works.
//
// A context deadline travels with every request (the Tasm-Deadline-Ms
// header), so the server bounds its own work instead of discovering
// the timeout only when the client hangs up.
package client

import (
	"bytes"
	"context"
	"crypto/tls"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/rpcwire"
)

// Serving-layer sentinels, re-exported for callers that classify remote
// failures without importing the wire package.
var (
	// ErrBadRequest: the server could not interpret the request
	// (malformed body, unparseable SQL, bad header).
	ErrBadRequest = rpcwire.ErrBadRequest
	// ErrOverloaded: the daemon's concurrent-request limit (global or
	// tenant quota) was hit; the request did no work and is safe to
	// retry — Retryable reports true and RetryAfter carries the
	// server's requested backoff. WithRetry retries it automatically.
	ErrOverloaded = rpcwire.ErrOverloaded
	// ErrUnauthorized: a token-protected daemon refused the request
	// (missing or unknown bearer token). Not retryable.
	ErrUnauthorized = rpcwire.ErrUnauthorized
	// ErrShardUnavailable: a tasm-router could not reach the shard
	// owning the requested video (breaker open, or the shard died
	// mid-request). Other shards keep serving; retry once the shard
	// recovers or the map is updated.
	ErrShardUnavailable = tasm.ErrShardUnavailable
	// ErrTraceNotFound: a TraceContext lookup for an id no longer in
	// the daemon's ring of recent finished requests.
	ErrTraceNotFound = rpcwire.ErrTraceNotFound
)

// Encoding selects the wire framing the client asks the server for on
// streaming reads.
type Encoding int

const (
	// NDJSON is wire protocol v1: one JSON object per line, pixel
	// planes base64-encoded. The server default — curl-able.
	NDJSON Encoding = iota
	// Binary is wire protocol v2 (application/x-tasm-frames):
	// length-prefixed records with raw pixel planes — ~25-30% fewer
	// bytes per region. Decoded output is byte-identical to NDJSON.
	Binary
)

// RetryPolicy drives automatic retries of safely retryable failures —
// today exactly the limiter's 503 overloaded rejections, which the
// server guarantees did no work. The backoff doubles per attempt from
// BaseDelay up to MaxDelay, and a server Retry-After longer than the
// computed backoff wins.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries including the first;
	// <= 1 disables retries.
	MaxAttempts int
	// BaseDelay is the wait before the first retry (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff (default 2s).
	MaxDelay time.Duration
}

// Client talks to one tasmd. It is safe for concurrent use; streams
// opened from it are independent requests.
type Client struct {
	base        string
	hc          *http.Client
	customHC    bool
	enc         Encoding
	token       string
	tlsCfg      *tls.Config
	clientCert  *tls.Certificate
	retry       RetryPolicy
	cacheBudget int64 // -1 = unset
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, proxies, custom
// TLS dialing). The default client has no overall timeout — streaming
// scans are long-lived by design; bound them with a context instead.
// Mutually exclusive with WithTLS (configure the transport yourself).
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc, c.customHC = hc, true }
}

// WithEncoding selects the stream framing to request (default NDJSON).
// Decoding always follows the response's Content-Type, so the option
// never changes what results look like — only how many bytes they cost
// on the wire.
func WithEncoding(e Encoding) Option {
	return func(c *Client) { c.enc = e }
}

// WithToken attaches a bearer token to every request — the credential
// a tasmd -token-file daemon maps to this client's tenant.
func WithToken(token string) Option {
	return func(c *Client) { c.token = token }
}

// WithTLS dials the daemon over HTTPS with the given configuration
// (nil uses the defaults). An addr without an explicit scheme then
// defaults to https://.
func WithTLS(cfg *tls.Config) Option {
	return func(c *Client) {
		if cfg == nil {
			cfg = &tls.Config{}
		}
		c.tlsCfg = cfg
	}
}

// WithClientCert presents a client certificate during the TLS
// handshake — the credential an mTLS daemon (tasmd or tasm-router run
// with -tls-client-ca) verifies before serving anything. It implies
// HTTPS; combine with WithTLS to also configure the server-side trust
// (RootCAs etc.), and like WithTLS it is mutually exclusive with
// WithHTTPClient.
func WithClientCert(cert tls.Certificate) Option {
	return func(c *Client) { c.clientCert = &cert }
}

// WithRetry enables automatic retries per the policy.
func WithRetry(p RetryPolicy) Option {
	return func(c *Client) { c.retry = p }
}

// WithCacheBudget caps, per request, how many bytes of newly decoded
// tiles this client's requests may insert into the daemon's shared
// decoded-tile cache (the Tasm-Cache-Budget header; 0 = insert
// nothing). Use it on clients running one-off sweeps so they cannot
// evict the working set of the daemon's repeated queries.
func WithCacheBudget(bytes int64) Option {
	return func(c *Client) {
		if bytes < 0 {
			bytes = 0
		}
		c.cacheBudget = bytes
	}
}

// New returns a client for the daemon at addr ("host:port" or a full
// http:// / https:// URL), configured by the options. It does not
// touch the network; use Ping to probe.
func New(addr string, opts ...Option) (*Client, error) {
	c := &Client{cacheBudget: -1}
	for _, opt := range opts {
		opt(c)
	}
	if c.tlsCfg != nil && c.customHC {
		return nil, fmt.Errorf("client: WithTLS and WithHTTPClient are mutually exclusive; set TLSClientConfig on your transport")
	}
	if c.clientCert != nil {
		if c.customHC {
			return nil, fmt.Errorf("client: WithClientCert and WithHTTPClient are mutually exclusive; set Certificates on your transport")
		}
		if c.tlsCfg == nil {
			c.tlsCfg = &tls.Config{}
		}
		c.tlsCfg.Certificates = append(c.tlsCfg.Certificates, *c.clientCert)
	}
	if !strings.Contains(addr, "://") {
		if c.tlsCfg != nil {
			addr = "https://" + addr
		} else {
			addr = "http://" + addr
		}
	}
	u, err := url.Parse(addr)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("client: invalid address %q", addr)
	}
	if c.tlsCfg != nil && u.Scheme != "https" {
		return nil, fmt.Errorf("client: WithTLS requires an https address, got %q", addr)
	}
	c.base = strings.TrimSuffix(u.String(), "/")
	if c.hc == nil {
		c.hc = &http.Client{}
		if c.tlsCfg != nil {
			tr := http.DefaultTransport.(*http.Transport).Clone()
			tr.TLSClientConfig = c.tlsCfg
			c.hc = &http.Client{Transport: tr}
		}
	}
	if c.retry.MaxAttempts > 1 {
		if c.retry.BaseDelay <= 0 {
			c.retry.BaseDelay = 100 * time.Millisecond
		}
		if c.retry.MaxDelay <= 0 {
			c.retry.MaxDelay = 2 * time.Second
		}
	}
	return c, nil
}

// Dial returns a client for the daemon at addr.
//
// Deprecated: Dial is the v1 constructor name, kept so existing
// callers compile unchanged. Use New; the options are identical.
func Dial(addr string, opts ...Option) (*Client, error) { return New(addr, opts...) }

// Retryable reports whether err is safe to retry as-is: the server
// rejected the request before doing any work (limiter 503s and live
// append backpressure 429s — both guarantee nothing was written), or
// the connection died before the request could have reached a handler
// — dial refused (daemon restarting, LB flap) and connection reset on
// send. Auth failures, bad requests, storage-manager errors, and
// failures after a response started are not.
func Retryable(err error) bool {
	if errors.Is(err, ErrOverloaded) || errors.Is(err, tasm.ErrIngestBackpressure) {
		return true
	}
	var te *transientError
	return errors.As(err, &te)
}

// transientError marks a transport failure that happened before the
// server could have done any work, making the request safe to repeat.
// transportError applies it to connection-refused and connection-reset
// dial failures so WithRetry (and the router's shard calls) ride the
// same backoff as limiter rejections.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// RetryAfter returns the backoff the server requested alongside err
// (the Retry-After header on a 503), when it named one.
func RetryAfter(err error) (time.Duration, bool) {
	var re *rpcwire.RemoteError
	if errors.As(err, &re) && re.RetryAfter > 0 {
		return re.RetryAfter, true
	}
	return 0, false
}

// withRetry runs op under the client's retry policy: retryable
// failures back off (honoring a longer server Retry-After) and try
// again; everything else returns immediately.
func (c *Client) withRetry(ctx context.Context, op func() error) error {
	if c.retry.MaxAttempts <= 1 {
		return op()
	}
	delay := c.retry.BaseDelay
	var err error
	for attempt := 1; ; attempt++ {
		if err = op(); err == nil || !Retryable(err) || attempt >= c.retry.MaxAttempts {
			return err
		}
		wait := delay
		if ra, ok := RetryAfter(err); ok && ra > wait {
			wait = ra
		}
		timer := time.NewTimer(wait)
		select {
		case <-timer.C:
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("client: %v: %w", err, ctx.Err())
		}
		if delay *= 2; delay > c.retry.MaxDelay {
			delay = c.retry.MaxDelay
		}
	}
}

// Close releases idle connections. Open cursors are unaffected; close
// them individually.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// Ping checks the daemon is up and speaking the v1 protocol.
func (c *Client) Ping(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// ---- catalog ----
//
// Every unary operation has a Context form; the context-free names are
// thin wrappers over them, mirroring the StorageManager surface. Use
// the Context forms anywhere a hung daemon must not hang the caller —
// the default transport deliberately has no timeout (streams are
// long-lived), so the context is the only cancellation lever.

// Videos lists stored video names.
func (c *Client) Videos() ([]string, error) { return c.VideosContext(context.Background()) }

// VideosContext lists stored video names under a context.
func (c *Client) VideosContext(ctx context.Context) ([]string, error) {
	var resp rpcwire.VideosResponse
	if err := c.do(ctx, http.MethodGet, "/v1/videos", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Videos, nil
}

// VideoInfo fetches one video's combined catalog record — meta, byte
// footprint, and indexed labels — in a single round trip. Meta,
// VideoBytes, and Labels are single-field views of the same endpoint;
// prefer VideoInfo when more than one is needed (a remote listing
// otherwise pays three requests per video, and the server recomputes
// the on-disk byte walk each time).
func (c *Client) VideoInfo(video string) (tasm.VideoMeta, int64, []string, error) {
	return c.VideoInfoContext(context.Background(), video)
}

// VideoInfoContext is VideoInfo under a context.
func (c *Client) VideoInfoContext(ctx context.Context, video string) (tasm.VideoMeta, int64, []string, error) {
	info, err := c.videoInfo(ctx, video)
	return info.Meta, info.Bytes, info.Labels, err
}

// videoInfo fetches the combined catalog record.
func (c *Client) videoInfo(ctx context.Context, video string) (rpcwire.VideoInfo, error) {
	var resp rpcwire.VideoInfo
	err := c.do(ctx, http.MethodGet, "/v1/videos/"+url.PathEscape(video), nil, &resp)
	return resp, err
}

// Meta returns a stored video's catalog record.
func (c *Client) Meta(video string) (tasm.VideoMeta, error) {
	return c.MetaContext(context.Background(), video)
}

// MetaContext is Meta under a context.
func (c *Client) MetaContext(ctx context.Context, video string) (tasm.VideoMeta, error) {
	info, err := c.videoInfo(ctx, video)
	return info.Meta, err
}

// VideoBytes returns a video's total storage footprint in bytes.
func (c *Client) VideoBytes(video string) (int64, error) {
	info, err := c.videoInfo(context.Background(), video)
	return info.Bytes, err
}

// Labels returns the distinct labels indexed for a video.
func (c *Client) Labels(video string) ([]string, error) {
	info, err := c.videoInfo(context.Background(), video)
	return info.Labels, err
}

// DeleteVideo removes a stored video, its index records, and any
// server-side cached decodes.
func (c *Client) DeleteVideo(video string) error {
	return c.DeleteVideoContext(context.Background(), video)
}

// DeleteVideoContext is DeleteVideo under a context.
func (c *Client) DeleteVideoContext(ctx context.Context, video string) error {
	return c.do(ctx, http.MethodDelete, "/v1/videos/"+url.PathEscape(video), nil, nil)
}

// ---- ingest ----

// Ingest stores frames as a new untiled video (one SOT per GOP).
func (c *Client) Ingest(video string, frames []*tasm.Frame, fps int) (tasm.IngestStats, error) {
	return c.IngestContext(context.Background(), video, frames, fps)
}

// IngestContext uploads frames and stores them as a new untiled video.
func (c *Client) IngestContext(ctx context.Context, video string, frames []*tasm.Frame, fps int) (tasm.IngestStats, error) {
	return c.ingest(ctx, video, frames, fps, nil)
}

// IngestTiled stores frames with caller-chosen per-SOT layouts.
func (c *Client) IngestTiled(video string, frames []*tasm.Frame, fps int, layouts []tasm.Layout) (tasm.IngestStats, error) {
	return c.IngestTiledContext(context.Background(), video, frames, fps, layouts)
}

// IngestTiledContext uploads frames with caller-chosen per-SOT layouts
// (the edge-camera upload path).
func (c *Client) IngestTiledContext(ctx context.Context, video string, frames []*tasm.Frame, fps int, layouts []tasm.Layout) (tasm.IngestStats, error) {
	return c.ingest(ctx, video, frames, fps, layouts)
}

func (c *Client) ingest(ctx context.Context, video string, frames []*tasm.Frame, fps int, layouts []tasm.Layout) (tasm.IngestStats, error) {
	req := rpcwire.IngestRequest{Video: video, FPS: fps, Frames: make([]rpcwire.Frame, len(frames))}
	for i, f := range frames {
		req.Frames[i] = rpcwire.FromFrame(f)
	}
	for _, l := range layouts {
		req.Layouts = append(req.Layouts, rpcwire.FromLayout(l))
	}
	var resp rpcwire.IngestStats
	if err := c.do(ctx, http.MethodPost, "/v1/ingest", req, &resp); err != nil {
		return tasm.IngestStats{}, err
	}
	return resp.ToIngestStats(), nil
}

// ---- semantic index ----

// AddMetadata records one object detection.
func (c *Client) AddMetadata(video string, frameIdx int, label string, x1, y1, x2, y2 int) error {
	return c.AddDetections(video, []tasm.Detection{{Frame: frameIdx, Label: label, Box: tasm.R(x1, y1, x2, y2)}})
}

// AddDetections records a batch of detections.
func (c *Client) AddDetections(video string, ds []tasm.Detection) error {
	return c.AddDetectionsContext(context.Background(), video, ds)
}

// AddDetectionsContext is AddDetections under a context (detection
// batches can be large; the upload honors cancellation).
func (c *Client) AddDetectionsContext(ctx context.Context, video string, ds []tasm.Detection) error {
	req := rpcwire.MetadataRequest{Video: video, Detections: make([]rpcwire.Detection, len(ds))}
	for i, d := range ds {
		req.Detections[i] = rpcwire.FromDetection(d)
	}
	return c.do(ctx, http.MethodPost, "/v1/metadata", req, nil)
}

// MarkDetected records that frames [from, to) were fully processed by a
// detector for label.
func (c *Client) MarkDetected(video, label string, from, to int) error {
	return c.MarkDetectedContext(context.Background(), video, label, from, to)
}

// MarkDetectedContext is MarkDetected under a context.
func (c *Client) MarkDetectedContext(ctx context.Context, video, label string, from, to int) error {
	req := rpcwire.MarkDetectedRequest{Video: video, Label: label, From: from, To: to}
	return c.do(ctx, http.MethodPost, "/v1/markdetected", req, nil)
}

// LookupDetections returns indexed detections for (video, label) within
// [fromFrame, toFrame).
func (c *Client) LookupDetections(video, label string, fromFrame, toFrame int) ([]tasm.Detection, error) {
	return c.LookupDetectionsContext(context.Background(), video, label, fromFrame, toFrame)
}

// LookupDetectionsContext is LookupDetections under a context.
func (c *Client) LookupDetectionsContext(ctx context.Context, video, label string, fromFrame, toFrame int) ([]tasm.Detection, error) {
	q := url.Values{}
	q.Set("video", video)
	q.Set("label", label)
	q.Set("from", strconv.Itoa(fromFrame))
	q.Set("to", strconv.Itoa(toFrame))
	var resp rpcwire.DetectionsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/detections?"+q.Encode(), nil, &resp); err != nil {
		return nil, err
	}
	out := make([]tasm.Detection, len(resp.Detections))
	for i, d := range resp.Detections {
		out[i] = d.ToDetection()
	}
	return out, nil
}

// ---- scans ----

// Scan materializes a remote Scan (a cursor drain, like the in-process
// slice API).
func (c *Client) Scan(q tasm.Query) ([]tasm.RegionResult, tasm.ScanStats, error) {
	return c.ScanContext(context.Background(), q)
}

// ScanContext materializes a remote Scan under a context.
func (c *Client) ScanContext(ctx context.Context, q tasm.Query) ([]tasm.RegionResult, tasm.ScanStats, error) {
	cur, err := c.ScanCursor(ctx, q)
	if err != nil {
		return nil, tasm.ScanStats{}, err
	}
	return drainScan(cur)
}

// ScanSQL materializes a remote Scan in the SELECT form.
func (c *Client) ScanSQL(sql string) ([]tasm.RegionResult, tasm.ScanStats, error) {
	return c.ScanSQLContext(context.Background(), sql)
}

// ScanSQLContext materializes a remote Scan in the SELECT form.
func (c *Client) ScanSQLContext(ctx context.Context, sql string) ([]tasm.RegionResult, tasm.ScanStats, error) {
	cur, err := c.ScanSQLCursor(ctx, sql)
	if err != nil {
		return nil, tasm.ScanStats{}, err
	}
	return drainScan(cur)
}

func drainScan(cur *ScanCursor) ([]tasm.RegionResult, tasm.ScanStats, error) {
	defer cur.Close()
	var out []tasm.RegionResult
	for cur.Next() {
		out = append(out, cur.Result())
	}
	if err := cur.Err(); err != nil {
		return nil, cur.Stats(), err
	}
	return out, cur.Stats(), nil
}

// ScanCursor starts a remote streaming Scan: results decode off the
// NDJSON stream incrementally, in frame order. The caller must drain
// the cursor or Close it; Close cancels the request, which makes the
// server release its read leases.
func (c *Client) ScanCursor(ctx context.Context, q tasm.Query) (*ScanCursor, error) {
	wq := rpcwire.FromQuery(q)
	return c.scanCursor(ctx, rpcwire.ScanRequest{Query: &wq})
}

// ScanSQLCursor starts a remote streaming Scan from a SELECT string
// (parsed server-side).
func (c *Client) ScanSQLCursor(ctx context.Context, sql string) (*ScanCursor, error) {
	return c.scanCursor(ctx, rpcwire.ScanRequest{SQL: sql})
}

func (c *Client) scanCursor(ctx context.Context, req rpcwire.ScanRequest) (*ScanCursor, error) {
	s, err := c.startStream(ctx, "/v1/scan", req)
	if err != nil {
		return nil, err
	}
	return &ScanCursor{s: s}, nil
}

// DecodeFrames materializes whole reassembled frames [from, to).
func (c *Client) DecodeFrames(video string, from, to int) ([]*tasm.Frame, tasm.ScanStats, error) {
	return c.DecodeFramesContext(context.Background(), video, from, to)
}

// DecodeFramesContext materializes whole reassembled frames [from, to)
// under a context.
func (c *Client) DecodeFramesContext(ctx context.Context, video string, from, to int) ([]*tasm.Frame, tasm.ScanStats, error) {
	cur, err := c.DecodeFramesCursor(ctx, video, from, to)
	if err != nil {
		return nil, tasm.ScanStats{}, err
	}
	defer cur.Close()
	var out []*tasm.Frame
	for cur.Next() {
		out = append(out, cur.Result().Pixels)
	}
	if err := cur.Err(); err != nil {
		return nil, cur.Stats(), err
	}
	return out, cur.Stats(), nil
}

// DecodeFramesCursor starts a remote streaming whole-frame decode;
// frames arrive in order as each SOT's tiles decode server-side.
func (c *Client) DecodeFramesCursor(ctx context.Context, video string, from, to int) (*FrameCursor, error) {
	s, err := c.startStream(ctx, "/v1/decodeframes", rpcwire.DecodeFramesRequest{Video: video, From: from, To: to})
	if err != nil {
		return nil, err
	}
	return &FrameCursor{s: s}, nil
}

// ---- layout tuning ----

// DesignLayout asks the server to partition a SOT around the indexed
// boxes of the given labels.
func (c *Client) DesignLayout(video string, sotID int, labels []string) (tasm.Layout, error) {
	return c.DesignLayoutContext(context.Background(), video, sotID, labels)
}

// DesignLayoutContext is DesignLayout under a context.
func (c *Client) DesignLayoutContext(ctx context.Context, video string, sotID int, labels []string) (tasm.Layout, error) {
	req := rpcwire.DesignLayoutRequest{Video: video, SOT: sotID, Labels: labels}
	var resp rpcwire.DesignLayoutResponse
	if err := c.do(ctx, http.MethodPost, "/v1/designlayout", req, &resp); err != nil {
		return tasm.Layout{}, err
	}
	return resp.Layout.ToLayout(), nil
}

// RetileSOT re-encodes one SOT with the given layout.
func (c *Client) RetileSOT(video string, sotID int, l tasm.Layout) (tasm.RetileStats, error) {
	return c.RetileSOTContext(context.Background(), video, sotID, l)
}

// RetileSOTContext re-encodes one SOT with the given layout under a
// context.
func (c *Client) RetileSOTContext(ctx context.Context, video string, sotID int, l tasm.Layout) (tasm.RetileStats, error) {
	req := rpcwire.RetileRequest{Video: video, SOT: sotID, Layout: rpcwire.FromLayout(l)}
	var resp rpcwire.RetileStats
	if err := c.do(ctx, http.MethodPost, "/v1/retile", req, &resp); err != nil {
		return tasm.RetileStats{}, err
	}
	return resp.ToRetileStats(), nil
}

// ---- maintenance ----

// GC reclaims dead storage server-side.
func (c *Client) GC() (tasm.GCReport, error) { return c.GCContext(context.Background()) }

// GCContext is GC under a context.
func (c *Client) GCContext(ctx context.Context) (tasm.GCReport, error) {
	var resp rpcwire.GCReport
	if err := c.do(ctx, http.MethodPost, "/v1/gc", nil, &resp); err != nil {
		return tasm.GCReport{}, err
	}
	return resp.ToGCReport(), nil
}

// FSCK verifies the server's store against the bytes on disk.
func (c *Client) FSCK() (tasm.FsckReport, error) { return c.FSCKContext(context.Background()) }

// FSCKContext is FSCK under a context.
func (c *Client) FSCKContext(ctx context.Context) (tasm.FsckReport, error) {
	var resp rpcwire.FsckReport
	if err := c.do(ctx, http.MethodPost, "/v1/fsck", nil, &resp); err != nil {
		return tasm.FsckReport{}, err
	}
	return resp.ToFsckReport(), nil
}

// RepairStore quarantines corrupt tile versions server-side and falls
// back to the newest intact earlier version of each — the storage half
// of `tasmctl fsck -repair`, run against a remote daemon.
func (c *Client) RepairStore() (tasm.RepairReport, error) {
	return c.RepairStoreContext(context.Background())
}

// RepairStoreContext is RepairStore under a context.
func (c *Client) RepairStoreContext(ctx context.Context) (tasm.RepairReport, error) {
	var resp rpcwire.StoreRepairReport
	if err := c.do(ctx, http.MethodPost, "/v1/repairstore", nil, &resp); err != nil {
		return tasm.RepairReport{}, err
	}
	return resp.ToStoreRepairReport(), nil
}

// RepairPointers re-materializes one video's box→tile index pointers
// server-side.
func (c *Client) RepairPointers(video string) error {
	return c.RepairPointersContext(context.Background(), video)
}

// RepairPointersContext is RepairPointers under a context.
func (c *Client) RepairPointersContext(ctx context.Context, video string) error {
	return c.do(ctx, http.MethodPost, "/v1/repair", rpcwire.RepairRequest{Video: video}, nil)
}

// CacheStats snapshots the daemon's decoded-tile cache counters.
// Unlike the in-process form this can fail (the daemon may be down).
func (c *Client) CacheStats() (tasm.CacheStats, error) {
	return c.CacheStatsContext(context.Background())
}

// CacheStatsContext is CacheStats under a context.
func (c *Client) CacheStatsContext(ctx context.Context) (tasm.CacheStats, error) {
	var resp rpcwire.CacheStats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return tasm.CacheStats{}, err
	}
	return resp.ToCacheStats(), nil
}

// ShardStats is one shard's contribution to a tasm-router's stats
// aggregation, as reported by ShardCacheStats.
type ShardStats struct {
	// Shard and Addr identify the shard in the router's map.
	Shard string
	Addr  string
	// Healthy is the router's breaker view of the shard.
	Healthy bool
	// Err is the router's fetch failure for this shard's snapshot,
	// empty on success (Stats is then zero).
	Err   string
	Stats tasm.CacheStats
}

// ShardCacheStats fetches cache stats together with the per-shard
// breakdown a tasm-router includes in its aggregation. Against a plain
// tasmd the breakdown is nil and the stats are the daemon's own —
// callers distinguish a router by a non-nil breakdown, which is how
// `tasmctl stats` decides whether to print the per-shard table.
func (c *Client) ShardCacheStats(ctx context.Context) (tasm.CacheStats, []ShardStats, error) {
	var resp rpcwire.ShardedCacheStats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return tasm.CacheStats{}, nil, err
	}
	var shards []ShardStats
	for _, s := range resp.Shards {
		shards = append(shards, ShardStats{Shard: s.Shard, Addr: s.Addr, Healthy: s.Healthy, Err: s.Error, Stats: s.Stats.ToCacheStats()})
	}
	return resp.ToCacheStats(), shards, nil
}

// AutotileStatus snapshots the daemon's background adaptive-tiling
// subsystem; Enabled false means the daemon runs without -autotile.
func (c *Client) AutotileStatus() (tasm.AutotileStatus, error) {
	return c.AutotileStatusContext(context.Background())
}

// AutotileStatusContext is AutotileStatus under a context.
func (c *Client) AutotileStatusContext(ctx context.Context) (tasm.AutotileStatus, error) {
	var resp rpcwire.AutotileStatus
	if err := c.do(ctx, http.MethodGet, "/v1/autotile/status", nil, &resp); err != nil {
		return tasm.AutotileStatus{}, err
	}
	return resp.ToAutotileStatus(), nil
}

// AutotilePause suspends the daemon's background re-tiling; observation
// continues, so evidence keeps accumulating for when it resumes. reason
// (optional) is surfaced in the status. Fails with ErrAutotileDisabled
// on a daemon without -autotile.
func (c *Client) AutotilePause(reason string) error {
	return c.AutotilePauseContext(context.Background(), reason)
}

// AutotilePauseContext is AutotilePause under a context.
func (c *Client) AutotilePauseContext(ctx context.Context, reason string) error {
	return c.do(ctx, http.MethodPost, "/v1/autotile/pause", rpcwire.AutotilePauseRequest{Reason: reason}, nil)
}

// AutotileResume lifts a pause — operator-initiated or the loop's own
// pause-on-error — and kicks a decision cycle.
func (c *Client) AutotileResume() error {
	return c.AutotileResumeContext(context.Background())
}

// AutotileResumeContext is AutotileResume under a context.
func (c *Client) AutotileResumeContext(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/autotile/resume", nil, nil)
}

// ---- transport ----

// setDeadline forwards a context deadline as the Tasm-Deadline-Ms
// header so the server bounds its own work.
func setDeadline(r *http.Request, ctx context.Context) {
	if d, ok := ctx.Deadline(); ok {
		ms := int64(math.Ceil(float64(time.Until(d)) / float64(time.Millisecond)))
		if ms < 1 {
			ms = 1
		}
		r.Header.Set(rpcwire.DeadlineHeader, strconv.FormatInt(ms, 10))
	}
}

// applyHeaders attaches the client-level contract headers: the context
// deadline, the bearer token, the cache admission budget, and the
// trace id (resolved once per logical operation by traceID so retried
// attempts correlate under one id).
func (c *Client) applyHeaders(hr *http.Request, ctx context.Context, tid string) {
	setDeadline(hr, ctx)
	hr.Header.Set(obs.TraceHeader, tid)
	if c.token != "" {
		hr.Header.Set("Authorization", "Bearer "+c.token)
	}
	if c.cacheBudget >= 0 {
		hr.Header.Set(rpcwire.CacheBudgetHeader, strconv.FormatInt(c.cacheBudget, 10))
	}
}

// do runs one unary request (under the retry policy). A non-200
// response decodes through the error envelope into a sentinel-wrapping
// error.
func (c *Client) do(ctx context.Context, method, path string, req, resp any) error {
	var data []byte
	if req != nil {
		var err error
		if data, err = json.Marshal(req); err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
	}
	tid := traceID(ctx)
	return c.withRetry(ctx, func() error {
		var body io.Reader
		if req != nil {
			body = bytes.NewReader(data)
		}
		hr, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		if req != nil {
			hr.Header.Set("Content-Type", "application/json")
		}
		c.applyHeaders(hr, ctx, tid)
		res, err := c.hc.Do(hr)
		if err != nil {
			return transportError(ctx, err)
		}
		defer func() {
			io.Copy(io.Discard, io.LimitReader(res.Body, 1<<20)) //nolint:errcheck // keep-alive best effort
			res.Body.Close()
		}()
		if res.StatusCode != http.StatusOK {
			return decodeErrorResponse(res)
		}
		if resp != nil {
			if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
				return fmt.Errorf("client: decoding response: %w", err)
			}
		}
		return nil
	})
}

// transportError classifies a failed round trip: a context the caller
// cancelled (or whose deadline passed) surfaces as that context error
// so errors.Is matches; connection-refused and connection-reset are
// marked transient (Retryable reports true — the request never reached
// a handler); anything else is a plain transport failure.
func transportError(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return fmt.Errorf("client: %v: %w", err, ctx.Err())
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) {
		return fmt.Errorf("client: %w", &transientError{err})
	}
	return fmt.Errorf("client: %w", err)
}

// decodeErrorResponse turns a non-200 response into the reconstructed
// sentinel-wrapping error, carrying along any Retry-After the server
// sent (surfaced via RetryAfter and honored by WithRetry).
func decodeErrorResponse(res *http.Response) error {
	data, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("client: HTTP %d (unreadable body: %v)", res.StatusCode, err)
	}
	var envelope struct {
		Error rpcwire.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil || envelope.Error.Code == "" {
		return fmt.Errorf("client: HTTP %d: %s", res.StatusCode, strings.TrimSpace(string(data)))
	}
	derr := rpcwire.DecodeError(envelope.Error)
	if secs, err := strconv.Atoi(res.Header.Get("Retry-After")); err == nil && secs >= 0 {
		var re *rpcwire.RemoteError
		if errors.As(derr, &re) {
			re.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return derr
}
