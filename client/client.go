// Package client is the Go client for tasmd, the TASM network front
// end. A Client mirrors the tasm.StorageManager surface — the same
// method names, the same types, and the same error taxonomy: failures
// reconstruct the exact tasm.Err* sentinel the server classified, so
//
//	errors.Is(err, tasm.ErrVideoNotFound)
//
// holds for a remote miss exactly as it does in-process, and context
// deadline/cancellation errors round-trip as context.DeadlineExceeded
// and context.Canceled. The streaming reads — ScanCursor,
// ScanSQLCursor, DecodeFramesCursor — decode the server's NDJSON
// stream incrementally: the first result is available as soon as the
// server flushes its first line, while later SOTs are still decoding.
//
//	c, err := client.Dial("localhost:7878")
//	cur, err := c.ScanSQLCursor(ctx, "SELECT car FROM traffic")
//	defer cur.Close()
//	for cur.Next() { consume(cur.Result()) }
//	if err := cur.Err(); err != nil { ... }
//
// A context deadline travels with every request (the Tasm-Deadline-Ms
// header), so the server bounds its own work instead of discovering
// the timeout only when the client hangs up.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/rpcwire"
)

// Serving-layer sentinels, re-exported for callers that classify remote
// failures without importing the wire package.
var (
	// ErrBadRequest: the server could not interpret the request
	// (malformed body, unparseable SQL, bad header).
	ErrBadRequest = rpcwire.ErrBadRequest
	// ErrOverloaded: the daemon's concurrent-request limit was hit; the
	// request did no work and is safe to retry.
	ErrOverloaded = rpcwire.ErrOverloaded
)

// Client talks to one tasmd. It is safe for concurrent use; streams
// opened from it are independent requests.
type Client struct {
	base string
	hc   *http.Client
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (timeouts, TLS, proxies).
// The default client has no overall timeout — streaming scans are
// long-lived by design; bound them with a context instead.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// Dial returns a client for the daemon at addr ("host:port" or a full
// http:// URL). It does not touch the network; use Ping to probe.
func Dial(addr string, opts ...Option) (*Client, error) {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	u, err := url.Parse(addr)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("client: invalid address %q", addr)
	}
	c := &Client{base: strings.TrimSuffix(u.String(), "/"), hc: &http.Client{}}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// Close releases idle connections. Open cursors are unaffected; close
// them individually.
func (c *Client) Close() error {
	c.hc.CloseIdleConnections()
	return nil
}

// Ping checks the daemon is up and speaking the v1 protocol.
func (c *Client) Ping(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil)
}

// ---- catalog ----
//
// Every unary operation has a Context form; the context-free names are
// thin wrappers over them, mirroring the StorageManager surface. Use
// the Context forms anywhere a hung daemon must not hang the caller —
// the default transport deliberately has no timeout (streams are
// long-lived), so the context is the only cancellation lever.

// Videos lists stored video names.
func (c *Client) Videos() ([]string, error) { return c.VideosContext(context.Background()) }

// VideosContext lists stored video names under a context.
func (c *Client) VideosContext(ctx context.Context) ([]string, error) {
	var resp rpcwire.VideosResponse
	if err := c.do(ctx, http.MethodGet, "/v1/videos", nil, &resp); err != nil {
		return nil, err
	}
	return resp.Videos, nil
}

// VideoInfo fetches one video's combined catalog record — meta, byte
// footprint, and indexed labels — in a single round trip. Meta,
// VideoBytes, and Labels are single-field views of the same endpoint;
// prefer VideoInfo when more than one is needed (a remote listing
// otherwise pays three requests per video, and the server recomputes
// the on-disk byte walk each time).
func (c *Client) VideoInfo(video string) (tasm.VideoMeta, int64, []string, error) {
	return c.VideoInfoContext(context.Background(), video)
}

// VideoInfoContext is VideoInfo under a context.
func (c *Client) VideoInfoContext(ctx context.Context, video string) (tasm.VideoMeta, int64, []string, error) {
	info, err := c.videoInfo(ctx, video)
	return info.Meta, info.Bytes, info.Labels, err
}

// videoInfo fetches the combined catalog record.
func (c *Client) videoInfo(ctx context.Context, video string) (rpcwire.VideoInfo, error) {
	var resp rpcwire.VideoInfo
	err := c.do(ctx, http.MethodGet, "/v1/videos/"+url.PathEscape(video), nil, &resp)
	return resp, err
}

// Meta returns a stored video's catalog record.
func (c *Client) Meta(video string) (tasm.VideoMeta, error) {
	return c.MetaContext(context.Background(), video)
}

// MetaContext is Meta under a context.
func (c *Client) MetaContext(ctx context.Context, video string) (tasm.VideoMeta, error) {
	info, err := c.videoInfo(ctx, video)
	return info.Meta, err
}

// VideoBytes returns a video's total storage footprint in bytes.
func (c *Client) VideoBytes(video string) (int64, error) {
	info, err := c.videoInfo(context.Background(), video)
	return info.Bytes, err
}

// Labels returns the distinct labels indexed for a video.
func (c *Client) Labels(video string) ([]string, error) {
	info, err := c.videoInfo(context.Background(), video)
	return info.Labels, err
}

// DeleteVideo removes a stored video, its index records, and any
// server-side cached decodes.
func (c *Client) DeleteVideo(video string) error {
	return c.DeleteVideoContext(context.Background(), video)
}

// DeleteVideoContext is DeleteVideo under a context.
func (c *Client) DeleteVideoContext(ctx context.Context, video string) error {
	return c.do(ctx, http.MethodDelete, "/v1/videos/"+url.PathEscape(video), nil, nil)
}

// ---- ingest ----

// Ingest stores frames as a new untiled video (one SOT per GOP).
func (c *Client) Ingest(video string, frames []*tasm.Frame, fps int) (tasm.IngestStats, error) {
	return c.IngestContext(context.Background(), video, frames, fps)
}

// IngestContext uploads frames and stores them as a new untiled video.
func (c *Client) IngestContext(ctx context.Context, video string, frames []*tasm.Frame, fps int) (tasm.IngestStats, error) {
	return c.ingest(ctx, video, frames, fps, nil)
}

// IngestTiled stores frames with caller-chosen per-SOT layouts.
func (c *Client) IngestTiled(video string, frames []*tasm.Frame, fps int, layouts []tasm.Layout) (tasm.IngestStats, error) {
	return c.IngestTiledContext(context.Background(), video, frames, fps, layouts)
}

// IngestTiledContext uploads frames with caller-chosen per-SOT layouts
// (the edge-camera upload path).
func (c *Client) IngestTiledContext(ctx context.Context, video string, frames []*tasm.Frame, fps int, layouts []tasm.Layout) (tasm.IngestStats, error) {
	return c.ingest(ctx, video, frames, fps, layouts)
}

func (c *Client) ingest(ctx context.Context, video string, frames []*tasm.Frame, fps int, layouts []tasm.Layout) (tasm.IngestStats, error) {
	req := rpcwire.IngestRequest{Video: video, FPS: fps, Frames: make([]rpcwire.Frame, len(frames))}
	for i, f := range frames {
		req.Frames[i] = rpcwire.FromFrame(f)
	}
	for _, l := range layouts {
		req.Layouts = append(req.Layouts, rpcwire.FromLayout(l))
	}
	var resp rpcwire.IngestStats
	if err := c.do(ctx, http.MethodPost, "/v1/ingest", req, &resp); err != nil {
		return tasm.IngestStats{}, err
	}
	return resp.ToIngestStats(), nil
}

// ---- semantic index ----

// AddMetadata records one object detection.
func (c *Client) AddMetadata(video string, frameIdx int, label string, x1, y1, x2, y2 int) error {
	return c.AddDetections(video, []tasm.Detection{{Frame: frameIdx, Label: label, Box: tasm.R(x1, y1, x2, y2)}})
}

// AddDetections records a batch of detections.
func (c *Client) AddDetections(video string, ds []tasm.Detection) error {
	return c.AddDetectionsContext(context.Background(), video, ds)
}

// AddDetectionsContext is AddDetections under a context (detection
// batches can be large; the upload honors cancellation).
func (c *Client) AddDetectionsContext(ctx context.Context, video string, ds []tasm.Detection) error {
	req := rpcwire.MetadataRequest{Video: video, Detections: make([]rpcwire.Detection, len(ds))}
	for i, d := range ds {
		req.Detections[i] = rpcwire.FromDetection(d)
	}
	return c.do(ctx, http.MethodPost, "/v1/metadata", req, nil)
}

// MarkDetected records that frames [from, to) were fully processed by a
// detector for label.
func (c *Client) MarkDetected(video, label string, from, to int) error {
	return c.MarkDetectedContext(context.Background(), video, label, from, to)
}

// MarkDetectedContext is MarkDetected under a context.
func (c *Client) MarkDetectedContext(ctx context.Context, video, label string, from, to int) error {
	req := rpcwire.MarkDetectedRequest{Video: video, Label: label, From: from, To: to}
	return c.do(ctx, http.MethodPost, "/v1/markdetected", req, nil)
}

// LookupDetections returns indexed detections for (video, label) within
// [fromFrame, toFrame).
func (c *Client) LookupDetections(video, label string, fromFrame, toFrame int) ([]tasm.Detection, error) {
	return c.LookupDetectionsContext(context.Background(), video, label, fromFrame, toFrame)
}

// LookupDetectionsContext is LookupDetections under a context.
func (c *Client) LookupDetectionsContext(ctx context.Context, video, label string, fromFrame, toFrame int) ([]tasm.Detection, error) {
	q := url.Values{}
	q.Set("video", video)
	q.Set("label", label)
	q.Set("from", strconv.Itoa(fromFrame))
	q.Set("to", strconv.Itoa(toFrame))
	var resp rpcwire.DetectionsResponse
	if err := c.do(ctx, http.MethodGet, "/v1/detections?"+q.Encode(), nil, &resp); err != nil {
		return nil, err
	}
	out := make([]tasm.Detection, len(resp.Detections))
	for i, d := range resp.Detections {
		out[i] = d.ToDetection()
	}
	return out, nil
}

// ---- scans ----

// Scan materializes a remote Scan (a cursor drain, like the in-process
// slice API).
func (c *Client) Scan(q tasm.Query) ([]tasm.RegionResult, tasm.ScanStats, error) {
	return c.ScanContext(context.Background(), q)
}

// ScanContext materializes a remote Scan under a context.
func (c *Client) ScanContext(ctx context.Context, q tasm.Query) ([]tasm.RegionResult, tasm.ScanStats, error) {
	cur, err := c.ScanCursor(ctx, q)
	if err != nil {
		return nil, tasm.ScanStats{}, err
	}
	return drainScan(cur)
}

// ScanSQL materializes a remote Scan in the SELECT form.
func (c *Client) ScanSQL(sql string) ([]tasm.RegionResult, tasm.ScanStats, error) {
	return c.ScanSQLContext(context.Background(), sql)
}

// ScanSQLContext materializes a remote Scan in the SELECT form.
func (c *Client) ScanSQLContext(ctx context.Context, sql string) ([]tasm.RegionResult, tasm.ScanStats, error) {
	cur, err := c.ScanSQLCursor(ctx, sql)
	if err != nil {
		return nil, tasm.ScanStats{}, err
	}
	return drainScan(cur)
}

func drainScan(cur *ScanCursor) ([]tasm.RegionResult, tasm.ScanStats, error) {
	defer cur.Close()
	var out []tasm.RegionResult
	for cur.Next() {
		out = append(out, cur.Result())
	}
	if err := cur.Err(); err != nil {
		return nil, cur.Stats(), err
	}
	return out, cur.Stats(), nil
}

// ScanCursor starts a remote streaming Scan: results decode off the
// NDJSON stream incrementally, in frame order. The caller must drain
// the cursor or Close it; Close cancels the request, which makes the
// server release its read leases.
func (c *Client) ScanCursor(ctx context.Context, q tasm.Query) (*ScanCursor, error) {
	wq := rpcwire.FromQuery(q)
	return c.scanCursor(ctx, rpcwire.ScanRequest{Query: &wq})
}

// ScanSQLCursor starts a remote streaming Scan from a SELECT string
// (parsed server-side).
func (c *Client) ScanSQLCursor(ctx context.Context, sql string) (*ScanCursor, error) {
	return c.scanCursor(ctx, rpcwire.ScanRequest{SQL: sql})
}

func (c *Client) scanCursor(ctx context.Context, req rpcwire.ScanRequest) (*ScanCursor, error) {
	s, err := c.startStream(ctx, "/v1/scan", req)
	if err != nil {
		return nil, err
	}
	return &ScanCursor{s: s}, nil
}

// DecodeFrames materializes whole reassembled frames [from, to).
func (c *Client) DecodeFrames(video string, from, to int) ([]*tasm.Frame, tasm.ScanStats, error) {
	return c.DecodeFramesContext(context.Background(), video, from, to)
}

// DecodeFramesContext materializes whole reassembled frames [from, to)
// under a context.
func (c *Client) DecodeFramesContext(ctx context.Context, video string, from, to int) ([]*tasm.Frame, tasm.ScanStats, error) {
	cur, err := c.DecodeFramesCursor(ctx, video, from, to)
	if err != nil {
		return nil, tasm.ScanStats{}, err
	}
	defer cur.Close()
	var out []*tasm.Frame
	for cur.Next() {
		out = append(out, cur.Result().Pixels)
	}
	if err := cur.Err(); err != nil {
		return nil, cur.Stats(), err
	}
	return out, cur.Stats(), nil
}

// DecodeFramesCursor starts a remote streaming whole-frame decode;
// frames arrive in order as each SOT's tiles decode server-side.
func (c *Client) DecodeFramesCursor(ctx context.Context, video string, from, to int) (*FrameCursor, error) {
	s, err := c.startStream(ctx, "/v1/decodeframes", rpcwire.DecodeFramesRequest{Video: video, From: from, To: to})
	if err != nil {
		return nil, err
	}
	return &FrameCursor{s: s}, nil
}

// ---- layout tuning ----

// DesignLayout asks the server to partition a SOT around the indexed
// boxes of the given labels.
func (c *Client) DesignLayout(video string, sotID int, labels []string) (tasm.Layout, error) {
	return c.DesignLayoutContext(context.Background(), video, sotID, labels)
}

// DesignLayoutContext is DesignLayout under a context.
func (c *Client) DesignLayoutContext(ctx context.Context, video string, sotID int, labels []string) (tasm.Layout, error) {
	req := rpcwire.DesignLayoutRequest{Video: video, SOT: sotID, Labels: labels}
	var resp rpcwire.DesignLayoutResponse
	if err := c.do(ctx, http.MethodPost, "/v1/designlayout", req, &resp); err != nil {
		return tasm.Layout{}, err
	}
	return resp.Layout.ToLayout(), nil
}

// RetileSOT re-encodes one SOT with the given layout.
func (c *Client) RetileSOT(video string, sotID int, l tasm.Layout) (tasm.RetileStats, error) {
	return c.RetileSOTContext(context.Background(), video, sotID, l)
}

// RetileSOTContext re-encodes one SOT with the given layout under a
// context.
func (c *Client) RetileSOTContext(ctx context.Context, video string, sotID int, l tasm.Layout) (tasm.RetileStats, error) {
	req := rpcwire.RetileRequest{Video: video, SOT: sotID, Layout: rpcwire.FromLayout(l)}
	var resp rpcwire.RetileStats
	if err := c.do(ctx, http.MethodPost, "/v1/retile", req, &resp); err != nil {
		return tasm.RetileStats{}, err
	}
	return resp.ToRetileStats(), nil
}

// ---- maintenance ----

// GC reclaims dead storage server-side.
func (c *Client) GC() (tasm.GCReport, error) { return c.GCContext(context.Background()) }

// GCContext is GC under a context.
func (c *Client) GCContext(ctx context.Context) (tasm.GCReport, error) {
	var resp rpcwire.GCReport
	if err := c.do(ctx, http.MethodPost, "/v1/gc", nil, &resp); err != nil {
		return tasm.GCReport{}, err
	}
	return resp.ToGCReport(), nil
}

// FSCK verifies the server's store against the bytes on disk.
func (c *Client) FSCK() (tasm.FsckReport, error) { return c.FSCKContext(context.Background()) }

// FSCKContext is FSCK under a context.
func (c *Client) FSCKContext(ctx context.Context) (tasm.FsckReport, error) {
	var resp rpcwire.FsckReport
	if err := c.do(ctx, http.MethodPost, "/v1/fsck", nil, &resp); err != nil {
		return tasm.FsckReport{}, err
	}
	return resp.ToFsckReport(), nil
}

// RepairPointers re-materializes one video's box→tile index pointers
// server-side.
func (c *Client) RepairPointers(video string) error {
	return c.RepairPointersContext(context.Background(), video)
}

// RepairPointersContext is RepairPointers under a context.
func (c *Client) RepairPointersContext(ctx context.Context, video string) error {
	return c.do(ctx, http.MethodPost, "/v1/repair", rpcwire.RepairRequest{Video: video}, nil)
}

// CacheStats snapshots the daemon's decoded-tile cache counters.
// Unlike the in-process form this can fail (the daemon may be down).
func (c *Client) CacheStats() (tasm.CacheStats, error) {
	return c.CacheStatsContext(context.Background())
}

// CacheStatsContext is CacheStats under a context.
func (c *Client) CacheStatsContext(ctx context.Context) (tasm.CacheStats, error) {
	var resp rpcwire.CacheStats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return tasm.CacheStats{}, err
	}
	return resp.ToCacheStats(), nil
}

// ---- transport ----

// setDeadline forwards a context deadline as the Tasm-Deadline-Ms
// header so the server bounds its own work.
func setDeadline(r *http.Request, ctx context.Context) {
	if d, ok := ctx.Deadline(); ok {
		ms := int64(math.Ceil(float64(time.Until(d)) / float64(time.Millisecond)))
		if ms < 1 {
			ms = 1
		}
		r.Header.Set(rpcwire.DeadlineHeader, strconv.FormatInt(ms, 10))
	}
}

// do runs one unary request. A non-200 response decodes through the
// error envelope into a sentinel-wrapping error.
func (c *Client) do(ctx context.Context, method, path string, req, resp any) error {
	var body io.Reader
	if req != nil {
		data, err := json.Marshal(req)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	hr, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if req != nil {
		hr.Header.Set("Content-Type", "application/json")
	}
	setDeadline(hr, ctx)
	res, err := c.hc.Do(hr)
	if err != nil {
		return transportError(ctx, err)
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(res.Body, 1<<20)) //nolint:errcheck // keep-alive best effort
		res.Body.Close()
	}()
	if res.StatusCode != http.StatusOK {
		return decodeErrorResponse(res)
	}
	if resp != nil {
		if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
			return fmt.Errorf("client: decoding response: %w", err)
		}
	}
	return nil
}

// transportError classifies a failed round trip: a context the caller
// cancelled (or whose deadline passed) surfaces as that context error
// so errors.Is matches, anything else is a transport failure.
func transportError(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return fmt.Errorf("client: %v: %w", err, ctx.Err())
	}
	return fmt.Errorf("client: %w", err)
}

// decodeErrorResponse turns a non-200 response into the reconstructed
// sentinel-wrapping error.
func decodeErrorResponse(res *http.Response) error {
	data, err := io.ReadAll(io.LimitReader(res.Body, 1<<20))
	if err != nil {
		return fmt.Errorf("client: HTTP %d (unreadable body: %v)", res.StatusCode, err)
	}
	var envelope struct {
		Error rpcwire.ErrorBody `json:"error"`
	}
	if err := json.Unmarshal(data, &envelope); err != nil || envelope.Error.Code == "" {
		return fmt.Errorf("client: HTTP %d: %s", res.StatusCode, strings.TrimSpace(string(data)))
	}
	return rpcwire.DecodeError(envelope.Error)
}
