package client_test

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/rpcwire"
)

// overloadedFor returns a test daemon that 503s (with Retry-After
// retryAfter and the canonical envelope) for the first n requests,
// then answers /v1/videos normally, and a counter of requests seen.
func overloadedFor(t *testing.T, n int64, retryAfter string) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var seen atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if seen.Add(1) <= n {
			w.Header().Set("Retry-After", retryAfter)
			status, body := rpcwire.EncodeError(rpcwire.ErrOverloaded)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			json.NewEncoder(w).Encode(struct { //nolint:errcheck
				Error rpcwire.ErrorBody `json:"error"`
			}{body})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rpcwire.VideosResponse{Videos: []string{"v"}}) //nolint:errcheck
	}))
	t.Cleanup(ts.Close)
	return ts, &seen
}

// TestOverloadedIsTypedAndRetryable is the limiter-politeness contract
// client-side: a 503 surfaces as ErrOverloaded (errors.Is), reports
// Retryable, and carries the server's Retry-After.
func TestOverloadedIsTypedAndRetryable(t *testing.T) {
	ts, _ := overloadedFor(t, 1<<30, "1")
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Videos()
	if !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded", err)
	}
	if !client.Retryable(err) {
		t.Fatal("overloaded not reported retryable")
	}
	if ra, ok := client.RetryAfter(err); !ok || ra != time.Second {
		t.Fatalf("RetryAfter = %v, %v; want 1s, true", ra, ok)
	}
	// Contrast: a bad request is not retryable.
	if client.Retryable(rpcwire.DecodeError(rpcwire.ErrorBody{Code: "bad_request"})) {
		t.Fatal("bad_request reported retryable")
	}
}

// TestWithRetryRecovers: the retry policy rides out transient 503s and
// succeeds without the caller seeing the rejections.
func TestWithRetryRecovers(t *testing.T) {
	ts, seen := overloadedFor(t, 2, "0")
	c, err := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	videos, err := c.Videos()
	if err != nil || len(videos) != 1 {
		t.Fatalf("retry did not recover: %v %v", videos, err)
	}
	if got := seen.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want 3 (2 rejections + success)", got)
	}
}

// TestWithRetryExhausts: a persistent overload returns the typed error
// after MaxAttempts tries, and the policy never retries non-retryable
// failures.
func TestWithRetryExhausts(t *testing.T) {
	ts, seen := overloadedFor(t, 1<<30, "0")
	c, err := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Videos(); !errors.Is(err, client.ErrOverloaded) {
		t.Fatalf("got %v, want ErrOverloaded after exhaustion", err)
	}
	if got := seen.Load(); got != 3 {
		t.Fatalf("server saw %d requests, want MaxAttempts=3", got)
	}

	// Unauthorized must not burn retries.
	ts401 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		status, body := rpcwire.EncodeError(rpcwire.ErrUnauthorized)
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(struct { //nolint:errcheck
			Error rpcwire.ErrorBody `json:"error"`
		}{body})
	}))
	defer ts401.Close()
	c2, err := client.New(ts401.URL, client.WithToken("nope"),
		client.WithRetry(client.RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Videos(); !errors.Is(err, client.ErrUnauthorized) {
		t.Fatalf("got %v, want ErrUnauthorized", err)
	}
}

// TestRetryHonorsContext: a caller's cancellation cuts the backoff
// short and surfaces the context error.
func TestRetryHonorsContext(t *testing.T) {
	ts, _ := overloadedFor(t, 1<<30, "1")
	c, err := client.New(ts.URL, client.WithRetry(client.RetryPolicy{
		MaxAttempts: 10, BaseDelay: 10 * time.Second, MaxDelay: 10 * time.Second,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = c.VideosContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not cut the backoff short")
	}
}

// TestWithTLSRoundTrip: a client built with WithTLS (trusting the test
// server's CA) completes a real HTTPS request.
func TestWithTLSRoundTrip(t *testing.T) {
	ts := httptest.NewTLSServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(rpcwire.VideosResponse{Videos: []string{"v"}}) //nolint:errcheck
	}))
	defer ts.Close()
	pool := x509.NewCertPool()
	pool.AddCert(ts.Certificate())
	c, err := client.New(ts.URL, client.WithTLS(&tls.Config{RootCAs: pool}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	videos, err := c.Videos()
	if err != nil || len(videos) != 1 {
		t.Fatalf("https request failed: %v %v", videos, err)
	}
	// Without the CA, the handshake must fail — WithTLS(nil) means real
	// verification, not InsecureSkipVerify.
	c2, err := client.New(ts.URL, client.WithTLS(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Videos(); err == nil {
		t.Fatal("untrusted certificate accepted")
	}
}

// TestNewValidation pins the constructor contract: scheme defaulting,
// TLS implications, the WithTLS/WithHTTPClient conflict, and the Dial
// shim staying alive for v1 callers.
func TestNewValidation(t *testing.T) {
	if _, err := client.New("host:1234"); err != nil {
		t.Fatalf("bare host:port: %v", err)
	}
	if _, err := client.New("http://host:1234/"); err != nil {
		t.Fatalf("explicit scheme: %v", err)
	}
	if _, err := client.New(""); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := client.New("http://host:1", client.WithTLS(nil)); err == nil {
		t.Fatal("WithTLS over an http:// address accepted")
	}
	if _, err := client.New("host:1", client.WithTLS(nil), client.WithHTTPClient(&http.Client{})); err == nil {
		t.Fatal("WithTLS + WithHTTPClient accepted")
	}
	if _, err := client.New("host:1", client.WithTLS(nil)); err != nil {
		t.Fatalf("WithTLS over a bare address must default to https: %v", err)
	}
	//lint:ignore SA1019 the deprecated shim must keep working
	if _, err := client.Dial("host:1234"); err != nil {
		t.Fatalf("deprecated Dial shim broken: %v", err)
	}
}
