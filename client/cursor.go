package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/rpcwire"
)

// stream is one open streaming response: the shared machinery under
// ScanCursor and FrameCursor. It decodes the stream incrementally —
// one record per Next, through whichever framing the server chose
// (the response Content-Type decides: v1 NDJSON lines or v2 binary
// frame records) — and enforces the end-of-stream contract: a clean
// stream ends with a stats record; an EOF before one means the server
// or the network died mid-stream and is an error, never silent
// truncation.
type stream struct {
	cancel context.CancelFunc
	ctx    context.Context
	resp   *http.Response
	lr     lineReader

	// traceID is the operation's Tasm-Trace-Id — the id the server
	// echoed (its /v1/trace ring key), falling back to the id sent.
	traceID string

	stats  tasm.ScanStats
	err    error
	done   bool // saw the stats record: clean exhaustion
	closed bool
}

// lineReader is one stream framing's decoder: it yields StreamLine
// records and io.EOF at a clean record boundary; a torn or malformed
// stream is any other error.
type lineReader interface {
	readLine() (rpcwire.StreamLine, error)
}

// ndjsonLineReader decodes the v1 framing: one JSON object per line.
type ndjsonLineReader struct{ br *bufio.Reader }

func (r *ndjsonLineReader) readLine() (rpcwire.StreamLine, error) {
	// A final line without a trailing newline (err == io.EOF with bytes
	// in hand) still parses; an empty read is a clean EOF.
	raw, err := r.br.ReadBytes('\n')
	if err != nil && (len(raw) == 0 || err != io.EOF) {
		return rpcwire.StreamLine{}, err
	}
	var line rpcwire.StreamLine
	if err := json.Unmarshal(raw, &line); err != nil {
		return rpcwire.StreamLine{}, fmt.Errorf("malformed stream line: %w", err)
	}
	return line, nil
}

// binaryLineReader decodes the v2 framing through rpcwire's record
// reader.
type binaryLineReader struct{ fr *rpcwire.FrameStreamReader }

func (r binaryLineReader) readLine() (rpcwire.StreamLine, error) { return r.fr.ReadLine() }

// startStream issues a streaming POST (under the retry policy — a
// limiter rejection happens before the server does any work). A
// non-200 response (constructor errors: unknown video, invalid range,
// bad SQL) decodes through the error envelope before any cursor
// exists. The decoder is chosen by the response's Content-Type, so the
// cursor handles either framing no matter what the client requested.
func (c *Client) startStream(ctx context.Context, path string, req any) (*stream, error) {
	data, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	return c.openStream(ctx, http.MethodPost, path, data)
}

// openStream is the framing-agnostic core of startStream, shared with
// the bodyless GET streams (/v1/subscribe): body nil issues the request
// without one.
func (c *Client) openStream(ctx context.Context, method, path string, body []byte) (*stream, error) {
	var s *stream
	tid := traceID(ctx)
	err := c.withRetry(ctx, func() error {
		sctx, cancel := context.WithCancel(ctx)
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		hr, err := http.NewRequestWithContext(sctx, method, c.base+path, rd)
		if err != nil {
			cancel()
			return fmt.Errorf("client: %w", err)
		}
		if body != nil {
			hr.Header.Set("Content-Type", "application/json")
		}
		if c.enc == Binary {
			hr.Header.Set("Accept", rpcwire.ContentTypeBinary)
		} else {
			hr.Header.Set("Accept", rpcwire.ContentTypeNDJSON)
		}
		c.applyHeaders(hr, ctx, tid)
		res, err := c.hc.Do(hr)
		if err != nil {
			cancel()
			return transportError(ctx, err)
		}
		if res.StatusCode != http.StatusOK {
			defer cancel()
			defer func() {
				// Drain before close (as do() does) so a retried 503
				// reuses the pooled connection instead of redialing.
				io.Copy(io.Discard, io.LimitReader(res.Body, 1<<20)) //nolint:errcheck // keep-alive best effort
				res.Body.Close()
			}()
			return decodeErrorResponse(res)
		}
		var lr lineReader
		if ct, _, _ := strings.Cut(res.Header.Get("Content-Type"), ";"); strings.TrimSpace(ct) == rpcwire.ContentTypeBinary {
			lr = binaryLineReader{rpcwire.NewFrameStreamReader(res.Body)}
		} else {
			lr = &ndjsonLineReader{bufio.NewReaderSize(res.Body, 64<<10)}
		}
		s = &stream{cancel: cancel, ctx: sctx, resp: res, lr: lr, traceID: tid}
		if echoed := res.Header.Get(obs.TraceHeader); echoed != "" {
			s.traceID = echoed
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return s, nil
}

// next reads and decodes one record. It returns (line, true) for a
// payload record and (zero, false) at end of stream — clean or failed;
// s.err distinguishes.
func (s *stream) next() (rpcwire.StreamLine, bool) {
	if s.done || s.closed || s.err != nil {
		return rpcwire.StreamLine{}, false
	}
	line, err := s.lr.readLine()
	if err == io.EOF {
		s.fail(fmt.Errorf("client: stream ended without a stats or error line: %w", io.ErrUnexpectedEOF))
		return rpcwire.StreamLine{}, false
	}
	if err != nil {
		s.fail(fmt.Errorf("client: reading stream: %w", err))
		return rpcwire.StreamLine{}, false
	}
	switch {
	case line.Error != nil:
		s.fail(rpcwire.DecodeError(*line.Error))
		return rpcwire.StreamLine{}, false
	case line.Stats != nil:
		s.stats = line.Stats.ToScanStats()
		s.done = true
		s.teardown()
		return rpcwire.StreamLine{}, false
	case line.Region != nil || line.Frame != nil:
		return line, true
	default:
		s.fail(fmt.Errorf("client: stream line with no payload"))
		return rpcwire.StreamLine{}, false
	}
}

// fail records the stream-terminating error (first one wins, matching
// the in-process cursor) and tears the request down. A failure caused
// by the caller's own cancellation surfaces as the context error.
func (s *stream) fail(err error) {
	if s.err == nil {
		if cerr := s.ctx.Err(); cerr != nil && !isEnvelopeError(err) {
			err = fmt.Errorf("client: stream: %w", cerr)
		}
		s.err = err
	}
	s.teardown()
}

// isEnvelopeError reports whether err came off the wire as an error
// envelope (those already carry the server's classification, e.g.
// deadline_exceeded, and must not be re-labeled with the local ctx
// state).
func isEnvelopeError(err error) bool {
	var re *rpcwire.RemoteError
	return errors.As(err, &re)
}

// teardown cancels the request and releases the connection. Cancelling
// the request context is what propagates to the server: its handler
// context dies, the server-side cursor is cancelled, and every read
// lease the scan held is released before the server finishes the
// request.
func (s *stream) teardown() {
	if s.resp != nil {
		s.cancel()
		s.resp.Body.Close()
		s.resp = nil
	}
}

// close implements cursor Close: idempotent, and a close before
// exhaustion records tasm.ErrCursorClosed exactly like the in-process
// cursor, so remote and local callers share cleanup logic.
func (s *stream) close() error {
	if !s.closed {
		s.closed = true
		if !s.done && s.err == nil {
			s.err = fmt.Errorf("client: %w", tasm.ErrCursorClosed)
		}
		s.teardown()
	}
	return nil
}

// errOrNil mirrors the in-process cursor's Err: nil while streaming and
// after clean exhaustion, the terminating error otherwise.
func (s *stream) errOrNil() error {
	if s.done {
		return nil
	}
	return s.err
}

// ScanCursor streams a remote Scan's pixel regions in frame order. It
// mirrors tasm.Cursor: Next/Result/Err/Stats/Close with the same
// semantics.
type ScanCursor struct {
	s   *stream
	cur tasm.RegionResult
}

// Next advances to the next region, blocking on the network as needed.
// It returns false at end of stream; consult Err to distinguish clean
// exhaustion from failure.
func (c *ScanCursor) Next() bool {
	line, ok := c.s.next()
	if !ok {
		c.cur = tasm.RegionResult{}
		return false
	}
	if line.Region == nil {
		c.s.fail(fmt.Errorf("client: non-region payload on scan stream"))
		c.cur = tasm.RegionResult{}
		return false
	}
	r, err := line.Region.ToRegion()
	if err != nil {
		c.s.fail(fmt.Errorf("client: invalid region on stream: %w", err))
		c.cur = tasm.RegionResult{}
		return false
	}
	c.cur = r
	return true
}

// Result returns the region Next advanced to.
func (c *ScanCursor) Result() tasm.RegionResult { return c.cur }

// Err returns the error that terminated the stream, nil while streaming
// or after clean exhaustion.
func (c *ScanCursor) Err() error { return c.s.errOrNil() }

// Stats returns the server's final ScanStats once the stream is
// drained (zero before that — remote stats arrive on the last line).
func (c *ScanCursor) Stats() tasm.ScanStats { return c.s.stats }

// TraceID returns the operation's Tasm-Trace-Id: the key under which
// every daemon that served a hop of this scan indexed its trace.
func (c *ScanCursor) TraceID() string { return c.s.traceID }

// Close cancels the remote scan and releases the connection. The
// cancellation reaches the server, which stops decode work and
// releases every read lease the scan held.
func (c *ScanCursor) Close() error { return c.s.close() }

// FrameCursor streams remote whole reassembled frames in order. It
// mirrors tasm.FrameCursor.
type FrameCursor struct {
	s   *stream
	cur tasm.FrameResult
}

// Next advances to the next frame.
func (c *FrameCursor) Next() bool {
	line, ok := c.s.next()
	if !ok {
		c.cur = tasm.FrameResult{}
		return false
	}
	if line.Frame == nil {
		c.s.fail(fmt.Errorf("client: non-frame payload on decode stream"))
		c.cur = tasm.FrameResult{}
		return false
	}
	f, err := line.Frame.ToFrameResult()
	if err != nil {
		c.s.fail(fmt.Errorf("client: invalid frame on stream: %w", err))
		c.cur = tasm.FrameResult{}
		return false
	}
	c.cur = f
	return true
}

// Result returns the frame Next advanced to.
func (c *FrameCursor) Result() tasm.FrameResult { return c.cur }

// Err returns the error that terminated the stream, nil while streaming
// or after clean exhaustion.
func (c *FrameCursor) Err() error { return c.s.errOrNil() }

// Stats returns the server's final ScanStats once drained.
func (c *FrameCursor) Stats() tasm.ScanStats { return c.s.stats }

// TraceID returns the operation's Tasm-Trace-Id (see ScanCursor.TraceID).
func (c *FrameCursor) TraceID() string { return c.s.traceID }

// Close cancels the remote decode and releases the connection.
func (c *FrameCursor) Close() error { return c.s.close() }
