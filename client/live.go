package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/rpcwire"
)

// ---- live ingest ----
//
// The append-mode surface mirrors the StorageManager's: CreateLive
// opens an open-ended video, Append pushes frames a batch at a time
// (each completed GOP committing atomically server-side), Subscribe
// tails committed frames as they land, Seal converts live → batch.
// Append failures wrapping tasm.ErrIngestBackpressure mean the video's
// commit queue was full and nothing was written — Retryable reports
// true and WithRetry backs off per the server's Retry-After.

// CreateLive opens an append-mode video on the daemon. pol (optional)
// bounds retained history.
func (c *Client) CreateLive(video string, w, h, fps int, pol *tasm.RetentionPolicy) error {
	return c.CreateLiveContext(context.Background(), video, w, h, fps, pol)
}

// CreateLiveContext is CreateLive under a context.
func (c *Client) CreateLiveContext(ctx context.Context, video string, w, h, fps int, pol *tasm.RetentionPolicy) error {
	req := rpcwire.CreateLiveRequest{Video: video, W: w, H: h, FPS: fps, Retention: rpcwire.FromRetentionPolicy(pol)}
	return c.do(ctx, http.MethodPost, "/v1/live", req, nil)
}

// Append appends frames to a live video.
func (c *Client) Append(video string, frames []*tasm.Frame) (tasm.AppendStats, error) {
	return c.AppendContext(context.Background(), video, frames)
}

// AppendContext uploads frames onto the end of a live video. With
// WithEncoding(Binary) the body is the v2 TASMFRM2 framing — raw pixel
// planes, no base64 — which is the form a sustained camera feed should
// use; otherwise it falls back to the JSON AppendRequest. Either way
// the server chunks the frames into GOP-length SOTs, each visible to
// subscribers atomically at its commit.
func (c *Client) AppendContext(ctx context.Context, video string, frames []*tasm.Frame) (tasm.AppendStats, error) {
	var resp rpcwire.AppendStats
	if c.enc == Binary {
		var buf bytes.Buffer
		fw := rpcwire.NewFrameStreamWriter(&buf)
		for i, f := range frames {
			line := rpcwire.StreamLine{Frame: &rpcwire.FrameLine{Index: i, Pixels: rpcwire.FromFrame(f)}}
			if err := fw.WriteLine(line); err != nil {
				return tasm.AppendStats{}, fmt.Errorf("client: framing append body: %w", err)
			}
		}
		if err := fw.Flush(); err != nil {
			return tasm.AppendStats{}, fmt.Errorf("client: framing append body: %w", err)
		}
		path := "/v1/append?video=" + url.QueryEscape(video)
		if err := c.doRaw(ctx, path, rpcwire.ContentTypeBinary, buf.Bytes(), &resp); err != nil {
			return tasm.AppendStats{}, err
		}
		return resp.ToAppendStats(), nil
	}
	req := rpcwire.AppendRequest{Video: video, Frames: make([]rpcwire.Frame, len(frames))}
	for i, f := range frames {
		req.Frames[i] = rpcwire.FromFrame(f)
	}
	if err := c.do(ctx, http.MethodPost, "/v1/append", req, &resp); err != nil {
		return tasm.AppendStats{}, err
	}
	return resp.ToAppendStats(), nil
}

// Seal converts a live video into an ordinary batch video; appends
// after it fail with tasm.ErrVideoSealed and caught-up subscribers
// terminate cleanly.
func (c *Client) Seal(video string) error { return c.SealContext(context.Background(), video) }

// SealContext is Seal under a context.
func (c *Client) SealContext(ctx context.Context, video string) error {
	return c.do(ctx, http.MethodPost, "/v1/seal", rpcwire.SealRequest{Video: video}, nil)
}

// SetRetention replaces a live video's retention policy (nil clears
// it), returning what the immediate application trimmed.
func (c *Client) SetRetention(video string, pol *tasm.RetentionPolicy) (tasm.TrimReport, error) {
	return c.SetRetentionContext(context.Background(), video, pol)
}

// SetRetentionContext is SetRetention under a context.
func (c *Client) SetRetentionContext(ctx context.Context, video string, pol *tasm.RetentionPolicy) (tasm.TrimReport, error) {
	req := rpcwire.RetentionRequest{Video: video, Retention: rpcwire.FromRetentionPolicy(pol)}
	var resp rpcwire.TrimReport
	if err := c.do(ctx, http.MethodPost, "/v1/retention", req, &resp); err != nil {
		return tasm.TrimReport{}, err
	}
	return resp.ToTrimReport(), nil
}

// Subscribe opens a live tail on video from frame from (the resume
// watermark — pass the last Result().Index + 1 to continue a dropped
// subscription without gaps or repeats). The cursor blocks in Next
// while caught up and yields each newly committed frame as appends
// land; on a sealed video it drains the remainder and ends cleanly.
// Cancel ctx or Close to stop. Works in either stream framing, against
// tasmd directly or through tasm-router.
func (c *Client) Subscribe(ctx context.Context, video string, from int) (*FrameCursor, error) {
	q := url.Values{}
	q.Set("video", video)
	q.Set("from", strconv.Itoa(from))
	s, err := c.openStream(ctx, http.MethodGet, "/v1/subscribe?"+q.Encode(), nil)
	if err != nil {
		return nil, err
	}
	return &FrameCursor{s: s}, nil
}

// doRaw is do for a non-JSON request body (the binary append path):
// same retry policy, headers, and error envelope, caller-chosen
// content type.
func (c *Client) doRaw(ctx context.Context, path, contentType string, body []byte, resp any) error {
	tid := traceID(ctx)
	return c.withRetry(ctx, func() error {
		hr, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		hr.Header.Set("Content-Type", contentType)
		c.applyHeaders(hr, ctx, tid)
		res, err := c.hc.Do(hr)
		if err != nil {
			return transportError(ctx, err)
		}
		defer func() {
			io.Copy(io.Discard, io.LimitReader(res.Body, 1<<20)) //nolint:errcheck // keep-alive best effort
			res.Body.Close()
		}()
		if res.StatusCode != http.StatusOK {
			return decodeErrorResponse(res)
		}
		if resp != nil {
			if err := json.NewDecoder(res.Body).Decode(resp); err != nil {
				return fmt.Errorf("client: decoding response: %w", err)
			}
		}
		return nil
	})
}
