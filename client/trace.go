package client

// Request tracing. Every request this client issues carries a
// Tasm-Trace-Id header: the id from the caller's context when one was
// installed with WithTraceID, otherwise an id minted per logical
// operation (retried attempts reuse it, so the server's trace ring
// keeps one record per operation). Daemons echo the id on the response
// and index the finished request's span timeline under it — TraceID on
// a cursor plus TraceContext turn a slow stream into a stage-by-stage
// timing breakdown without touching server logs.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/url"

	"github.com/tasm-repro/tasm/internal/obs"
)

// NewTraceID mints a fresh 128-bit trace id (32 hex characters).
func NewTraceID() string { return obs.NewTraceID() }

// WithTraceID returns a context whose requests carry the given trace
// id, correlating every hop (router, shards, cursor pipeline) under
// one id the caller chose. Invalid ids (empty, >64 chars, characters
// outside [0-9a-zA-Z_-]) are ignored and a fresh id is minted per
// operation instead.
func WithTraceID(ctx context.Context, id string) context.Context {
	return obs.WithTrace(ctx, obs.NewTrace(id))
}

// traceID resolves one logical operation's trace id: the context's if
// valid, else freshly minted.
func traceID(ctx context.Context) string {
	if id := obs.FromContext(ctx).ID(); obs.ValidTraceID(id) {
		return id
	}
	return obs.NewTraceID()
}

// TraceContext fetches the span timeline of a finished request from
// the daemon's trace ring (GET /v1/trace/{id}). The result is the
// daemon's JSON trace record, returned raw so callers can render or
// store it without this package freezing the record's schema. A miss
// (the ring holds only recent requests) is ErrTraceNotFound, matchable
// with errors.Is.
func (c *Client) TraceContext(ctx context.Context, id string) (json.RawMessage, error) {
	var raw json.RawMessage
	if err := c.do(ctx, http.MethodGet, "/v1/trace/"+url.PathEscape(id), nil, &raw); err != nil {
		return nil, err
	}
	return raw, nil
}

// Trace is TraceContext under context.Background.
func (c *Client) Trace(id string) (json.RawMessage, error) {
	return c.TraceContext(context.Background(), id)
}
