// Command tasm-bench regenerates the paper's evaluation: every table and
// figure of §5 (Table 1, Figures 6–12, Table 2), the §5.2.4 cheap-detection
// study, the cost-model fit, and the design-choice ablations.
//
// Usage:
//
//	tasm-bench -exp all                 # everything, full scale (minutes)
//	tasm-bench -exp fig6,fig7 -quick    # selected experiments, reduced scale
//	tasm-bench -exp fig11 -workloads W1,W5
//	tasm-bench -exp perf -json BENCH_1.json   # scan fast path, JSON record
//
// Results print as aligned text tables with the paper's reference values in
// the notes; EXPERIMENTS.md records a full run. The perf experiment
// additionally writes a machine-readable JSON file (-json) so the
// performance trajectory can be tracked across PRs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/tasm-repro/tasm/internal/bench"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "comma-separated experiments: table1,fig6,fig7,fig8,fig9,fig10,fig11,fig12,edge,costfit,alpha,eta,perf,stream,serve,adapt,shard,load,live,all")
		jsonOut   = flag.String("json", "", "path for machine-readable results of the perf/stream/serve experiments, e.g. BENCH_1.json; when more than one of them runs, the experiment name is inserted before the extension (empty = print tables only)")
		quick     = flag.Bool("quick", false, "reduced-scale run (smaller videos, fewer queries)")
		width     = flag.Int("w", 0, "video width (default 320; quick 256)")
		height    = flag.Int("h", 0, "video height (default 180; quick 144)")
		fps       = flag.Int("fps", 0, "frames per second (default 30; quick 15)")
		scale     = flag.Float64("scale", 0, "duration scale factor (default 1.0)")
		videos    = flag.Int("videos", 0, "max videos per experiment (0 = all)")
		queries   = flag.Int("queries", 0, "max queries per workload (0 = paper counts)")
		seed      = flag.Uint64("seed", 42, "random seed")
		workloads = flag.String("workloads", "", "comma-separated workloads for fig11 (default all six)")
		verbose   = flag.Bool("v", false, "progress output")
	)
	flag.Parse()

	// The same SIGINT/SIGTERM wiring tasmctl has, honored at experiment
	// boundaries: each experiment works in its own temp store, so the
	// first signal stops cleanly before the next one starts (the
	// experiments themselves run to completion — bench.Options carries
	// no context). A second signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	opt := bench.Options{Seed: *seed, Verbose: *verbose, Out: os.Stderr}
	if *quick {
		opt = bench.Quick()
		opt.Seed = *seed
		opt.Verbose = *verbose
		opt.Out = os.Stderr
	}
	if *width > 0 {
		opt.Width = *width
	}
	if *height > 0 {
		opt.Height = *height
	}
	if *fps > 0 {
		opt.FPS = *fps
	}
	if *scale > 0 {
		opt.DurationScale = *scale
	}
	if *videos > 0 {
		opt.MaxVideos = *videos
	}
	if *queries > 0 {
		opt.QueryCap = *queries
	}

	var wlNames []string
	if *workloads != "" {
		wlNames = strings.Split(*workloads, ",")
	}

	selected := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		selected[strings.TrimSpace(e)] = true
	}
	all := selected["all"]
	want := func(name string) bool { return all || selected[name] }

	// Several experiments emit JSON; if more than one runs with a single
	// -json path they must not overwrite each other, so the experiment
	// name is spliced in (BENCH.json -> BENCH.perf.json, ...). A single
	// JSON-writing experiment keeps the exact path (the CI shape).
	jsonWriters := 0
	for _, name := range []string{"perf", "stream", "serve", "adapt", "shard", "load", "live"} {
		if want(name) {
			jsonWriters++
		}
	}
	jsonPath := func(name string) string {
		if *jsonOut == "" || jsonWriters <= 1 {
			return *jsonOut
		}
		ext := filepath.Ext(*jsonOut)
		return strings.TrimSuffix(*jsonOut, ext) + "." + name + ext
	}

	start := time.Now()
	ran := 0
	run := func(name string, fn func() error) {
		if !want(name) {
			return
		}
		if err := ctx.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "tasm-bench: interrupted before %s (completed experiments are already printed)\n", name)
			os.Exit(130)
		}
		ran++
		t0 := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "tasm-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %s]\n", name, time.Since(t0).Round(time.Millisecond))
	}

	run("table1", func() error {
		_, t, err := bench.RunTable1(opt)
		if err == nil {
			t.Render(os.Stdout)
		}
		return err
	})
	run("fig6", func() error {
		_, qa, qb, err := bench.RunFigure6(opt)
		if err == nil {
			qa.Render(os.Stdout)
			qb.Render(os.Stdout)
		}
		return err
	})
	run("fig7", func() error {
		_, t, err := bench.RunFigure7(opt)
		if err == nil {
			t.Render(os.Stdout)
		}
		return err
	})
	run("fig8", func() error {
		_, t, err := bench.RunFigure8(opt)
		if err == nil {
			t.Render(os.Stdout)
		}
		return err
	})
	run("fig9", func() error {
		_, t, err := bench.RunFigure9(opt)
		if err == nil {
			t.Render(os.Stdout)
		}
		return err
	})
	run("fig10", func() error {
		_, t, err := bench.RunFigure10(opt)
		if err == nil {
			t.Render(os.Stdout)
		}
		return err
	})
	run("fig11", func() error {
		_, tables, t2, err := bench.RunFigure11(opt, wlNames)
		if err == nil {
			for _, t := range tables {
				t.Render(os.Stdout)
			}
			t2.Render(os.Stdout)
		}
		return err
	})
	run("fig12", func() error {
		_, t, err := bench.RunFigure12(opt)
		if err == nil {
			t.Render(os.Stdout)
		}
		return err
	})
	run("edge", func() error {
		_, t, err := bench.RunEdgeDetection(opt)
		if err == nil {
			t.Render(os.Stdout)
		}
		return err
	})
	run("costfit", func() error {
		_, t, err := bench.RunCostModelFit(opt)
		if err == nil {
			t.Render(os.Stdout)
		}
		return err
	})
	run("alpha", func() error {
		_, t, err := bench.RunAblationAlpha(opt)
		if err == nil {
			t.Render(os.Stdout)
		}
		return err
	})
	run("eta", func() error {
		_, t, err := bench.RunAblationEta(opt)
		if err == nil {
			t.Render(os.Stdout)
		}
		return err
	})
	run("perf", func() error {
		res, t, err := bench.RunScanPerf(opt)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		return writeJSON(jsonPath("perf"), "perf", res)
	})
	run("stream", func() error {
		res, t, err := bench.RunStreamPerf(opt)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		return writeJSON(jsonPath("stream"), "stream", res)
	})
	run("serve", func() error {
		res, t, err := bench.RunServePerf(opt)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		return writeJSON(jsonPath("serve"), "serve", res)
	})
	run("adapt", func() error {
		res, t, err := bench.RunAdaptPerf(opt)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		return writeJSON(jsonPath("adapt"), "adapt", res)
	})
	run("shard", func() error {
		res, t, err := bench.RunShardPerf(opt)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		return writeJSON(jsonPath("shard"), "shard", res)
	})
	run("load", func() error {
		res, t, err := bench.RunLoad(opt)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		return writeJSON(jsonPath("load"), "load", res)
	})
	run("live", func() error {
		res, t, err := bench.RunLive(opt)
		if err != nil {
			return err
		}
		t.Render(os.Stdout)
		return writeJSON(jsonPath("live"), "live", res)
	})

	if ran == 0 {
		fmt.Fprintf(os.Stderr, "tasm-bench: no experiment matched %q\n", *exp)
		os.Exit(2)
	}
	fmt.Printf("\n%d experiment(s) in %s\n", ran, time.Since(start).Round(time.Millisecond))
}

// writeJSON records an experiment's machine-readable results (no-op when
// -json was not given).
func writeJSON(path, name string, res any) error {
	if path == "" {
		return nil
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("%s results written to %s\n", name, path)
	return nil
}
