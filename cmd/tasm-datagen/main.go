// Command tasm-datagen generates the synthetic evaluation datasets: for
// each preset it writes an encoded untiled video (.tsv), the generating
// spec (.spec.json), and the ground-truth object tracks (.truth.json).
//
// Usage:
//
//	tasm-datagen -out data                      # all presets
//	tasm-datagen -out data -preset netflix-birds -fps 30
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/vcodec"
)

type truthFile struct {
	Video  string       `json:"video"`
	Frames []truthFrame `json:"frames"`
}

type truthFrame struct {
	Frame   int           `json:"frame"`
	Objects []truthObject `json:"objects"`
}

type truthObject struct {
	Label string `json:"label"`
	X0    int    `json:"x0"`
	Y0    int    `json:"y0"`
	X1    int    `json:"x1"`
	Y1    int    `json:"y1"`
}

func main() {
	var (
		out    = flag.String("out", "data", "output directory")
		preset = flag.String("preset", "all", "preset name, or all")
		width  = flag.Int("w", 320, "video width")
		height = flag.Int("h", 180, "video height")
		fps    = flag.Int("fps", 30, "frames per second")
		scale  = flag.Float64("scale", 1.0, "duration scale")
		seed   = flag.Uint64("seed", 42, "random seed")
		qp     = flag.Int("qp", 22, "codec quantization parameter")
	)
	flag.Parse()

	// The same SIGINT/SIGTERM handling tasmctl has: each preset's three
	// files are written whole, so the first signal stops cleanly between
	// presets; a second signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	opts := scene.Options{Width: *width, Height: *height, FPS: *fps, DurationScale: *scale, Seed: *seed}
	var found bool
	for _, p := range scene.Presets(opts) {
		if *preset != "all" && p.Spec.Name != *preset {
			continue
		}
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "tasm-datagen: interrupted (completed presets are intact)")
			os.Exit(130)
		}
		found = true
		if err := generate(*out, p, *qp); err != nil {
			fatal(fmt.Errorf("%s: %w", p.Spec.Name, err))
		}
	}
	if !found {
		fatal(fmt.Errorf("unknown preset %q", *preset))
	}
}

func generate(out string, p scene.Preset, qp int) error {
	v, err := scene.Generate(p.Spec)
	if err != nil {
		return err
	}
	n := p.Spec.NumFrames()
	fmt.Printf("%-20s %dx%d %ds @%dfps (%d frames, coverage %.1f%%)...",
		p.Spec.Name, p.Spec.W, p.Spec.H, p.Spec.DurationSec, p.Spec.FPS, n, 100*v.MeanCoverage())

	params := vcodec.DefaultParams()
	params.QP = qp
	params.GOPLength = p.Spec.FPS
	enc, err := container.EncodeVideo(v.Frames(0, n), p.Spec.FPS, params)
	if err != nil {
		return err
	}
	if err := enc.Save(filepath.Join(out, p.Spec.Name+".tsv")); err != nil {
		return err
	}

	spec, err := json.MarshalIndent(p.Spec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(out, p.Spec.Name+".spec.json"), spec, 0o644); err != nil {
		return err
	}

	truth := truthFile{Video: p.Spec.Name}
	for f := 0; f < n; f++ {
		tf := truthFrame{Frame: f}
		for _, tr := range v.GroundTruth(f) {
			tf.Objects = append(tf.Objects, truthObject{
				Label: tr.Label, X0: tr.Box.X0, Y0: tr.Box.Y0, X1: tr.Box.X1, Y1: tr.Box.Y1,
			})
		}
		truth.Frames = append(truth.Frames, tf)
	}
	tdata, err := json.Marshal(&truth)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(out, p.Spec.Name+".truth.json"), tdata, 0o644); err != nil {
		return err
	}
	fmt.Printf(" %d KiB\n", enc.SizeBytes()/1024)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tasm-datagen:", err)
	os.Exit(1)
}
