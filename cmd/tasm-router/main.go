// Command tasm-router serves tasmd's HTTP surface over a fleet of
// tasmd shards: a stateless scale-out tier that owns only a shard map
// (a consistent-hash ring over shard addresses) and per-shard health.
// Video-scoped operations route to the owning shard; catalog, stats,
// gc, fsck, and autotile fan out to every shard and merge; streaming
// scans scatter one remote cursor per queried video and gather them
// into a single frame-ordered stream in whatever framing the caller
// negotiated. `tasmctl -addr` and the Go client work against a router
// exactly as against a single tasmd.
//
// Usage:
//
//	tasm-router -shard-map shards.json                 # serve on :7879
//	tasm-router -shard-map shards.json -addr :9000 -breaker-threshold 5
//	tasm-router -shard-map shards.json -shard-token SECRET   # authed shards
//
// The shard-map file:
//
//	{
//	  "replicas": 128,
//	  "shards": [
//	    {"name": "s1", "addr": "127.0.0.1:7001"},
//	    {"name": "s2", "addr": "127.0.0.1:7002"}
//	  ]
//	}
//
// Names are the ring identity: a shard may change address (move hosts,
// restart on a new port) without any video changing owner. SIGHUP
// re-reads the map and swaps it in place, like tasmd's token table —
// surviving shards keep their health state and in-flight streams keep
// their backends; a parse failure keeps the current map. Every shard is
// probed each -health-interval, and -breaker-threshold consecutive
// failures mark it down: requests for its videos fail fast with
// shard_unavailable (exit 7 from tasmctl) while the rest of the fleet
// keeps serving. SIGINT/SIGTERM drains like tasmd.
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/shard"
)

func main() {
	var (
		addr             = flag.String("addr", ":7879", "listen address (host:port)")
		mapFile          = flag.String("shard-map", "", "shard-map file (required; JSON, see package doc)")
		healthInterval   = flag.Duration("health-interval", shard.DefaultHealthInterval, "period between shard health probes")
		breakerThreshold = flag.Int("breaker-threshold", shard.DefaultBreakerThreshold, "consecutive failures before a shard is marked down")
		shardToken       = flag.String("shard-token", "", "bearer token for router→shard requests (shards running -token-file)")
		tlsCert          = flag.String("tls-cert", "", "TLS certificate file (PEM); with -tls-key, serve HTTPS")
		tlsKey           = flag.String("tls-key", "", "TLS private key file (PEM)")
		tlsClientCA      = flag.String("tls-client-ca", "", "CA bundle (PEM) for verifying client certificates; requires -tls-cert/-tls-key and makes TLS mutual — unauthenticated handshakes are refused")
		drain            = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")
		quiet            = flag.Bool("quiet", false, "suppress access logs")
		slowQuery        = flag.Duration("slow-query-threshold", 0, "log requests at or above this wall time as slow queries (0 = disabled)")
		debugAddr        = flag.String("debug-addr", "", "serve net/http/pprof on this loopback address (empty = disabled)")
	)
	flag.Parse()
	if *mapFile == "" {
		fmt.Fprintln(os.Stderr, "tasm-router: missing -shard-map")
		flag.Usage()
		os.Exit(3)
	}

	logger := log.New(os.Stderr, "tasm-router ", log.LstdFlags|log.Lmsgprefix)
	accessLogger := logger
	if *quiet {
		accessLogger = log.New(io.Discard, "", 0)
	}

	if (*tlsCert == "") != (*tlsKey == "") {
		logger.Fatalf("-tls-cert and -tls-key must be set together")
	}
	var tlsCfg *tls.Config
	if *tlsClientCA != "" {
		if *tlsCert == "" {
			logger.Fatalf("-tls-client-ca requires -tls-cert and -tls-key (mTLS needs a server identity too)")
		}
		pool, err := loadClientCAPool(*tlsClientCA)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		tlsCfg = &tls.Config{ClientCAs: pool, ClientAuth: tls.RequireAndVerifyClientCert}
	}

	m, err := shard.ParseMapFile(*mapFile)
	if err != nil {
		logger.Fatalf("%v", err)
	}

	rt, err := shard.NewRouter(m, shard.RouterConfig{
		Logger: logger, AccessLogger: accessLogger,
		HealthInterval:     *healthInterval,
		BreakerThreshold:   *breakerThreshold,
		ShardToken:         *shardToken,
		SlowQueryThreshold: *slowQuery,
	})
	if err != nil {
		logger.Fatalf("%v", err)
	}

	// Loopback-only, its own listener: pprof has no auth (see tasmd).
	if *debugAddr != "" {
		if _, err := obs.StartDebugServer(*debugAddr, logger); err != nil {
			rt.Close()
			logger.Fatalf("%v", err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP re-reads the shard map and swaps it whole, the same
	// contract as tasmd's token reload: a parse failure keeps the
	// current map — a router on yesterday's topology beats one that
	// dropped the fleet over a typo.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			reloaded, err := shard.ParseMapFile(*mapFile)
			if err != nil {
				logger.Printf("SIGHUP reload failed, keeping current map: %v", err)
				continue
			}
			if err := rt.SetMap(reloaded); err != nil {
				logger.Printf("SIGHUP swap failed, keeping current map: %v", err)
				continue
			}
			logger.Printf("SIGHUP: reloaded %s (%d shards)", *mapFile, len(reloaded.Shards()))
		}
	}()

	srv := &http.Server{
		Addr:    *addr,
		Handler: rt,
		// Scatter-gather streams are long-lived on purpose: no write
		// timeout. Headers and idle connections still get bounds.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		BaseContext:       func(net.Listener) context.Context { return context.Background() },
		// Non-nil only for mTLS: ServeTLS fills in the certificate pair.
		TLSConfig: tlsCfg,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		rt.Close()
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	scheme := "http"
	if *tlsCert != "" {
		scheme = "https"
		if *tlsClientCA != "" {
			scheme = "https+mtls"
		}
	}
	logger.Printf("routing %d shards from %s on %s://%s (probe every %s, breaker at %d failures)",
		len(m.Shards()), *mapFile, scheme, ln.Addr(), *healthInterval, *breakerThreshold)

	serveErr := make(chan error, 1)
	go func() {
		if *tlsCert != "" {
			serveErr <- srv.ServeTLS(ln, *tlsCert, *tlsKey)
		} else {
			serveErr <- srv.Serve(ln)
		}
	}()

	exit := 0
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			exit = 1
		}
	case <-ctx.Done():
		stop() // restore default handling: a second signal force-kills
		logger.Printf("signal received; draining for up to %s", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			// Streams that outlived the budget: close their connections
			// — the request contexts cancel, the remote cursors close on
			// the way down and the shards release their leases.
			logger.Printf("drain budget exceeded (%v); closing connections", err)
			srv.Close()
		}
	}
	rt.Close()
	logger.Printf("stopped")
	os.Exit(exit)
}

// loadClientCAPool reads a PEM CA bundle into the pool mTLS verifies
// client certificates against.
func loadClientCAPool(path string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading -tls-client-ca: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("-tls-client-ca %s: no CA certificates found", path)
	}
	return pool, nil
}
