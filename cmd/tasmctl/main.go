// Command tasmctl operates a TASM store — a local directory, or a
// remote tasmd daemon when -addr is given: ingest synthetic videos, run
// (simulated) object detection to populate the semantic index, execute
// Scan queries, inspect the catalog and cache, and re-tile SOTs.
//
// Usage:
//
//	tasmctl ingest -dir db -preset visualroad-2k-a
//	tasmctl detect -dir db -video visualroad-2k-a -detector yolo
//	tasmctl query  -dir db "SELECT car FROM visualroad-2k-a WHERE 0 <= t < 60"
//	tasmctl info   -dir db
//	tasmctl stats  -dir db
//	tasmctl retile -dir db -video visualroad-2k-a -sot 0 -labels car,person
//	tasmctl fsck   -dir db
//	tasmctl gc     -dir db
//	tasmctl append    -dir db -video cam0 -preset visualroad-2k-a -create
//	tasmctl subscribe -dir db -video cam0 -from 0
//	tasmctl retention -dir db -video cam0 -max-age-frames 900
//	tasmctl videos -dir db -json
//
//	tasmctl -addr localhost:7878 query "SELECT car FROM visualroad-2k-a"
//	tasmctl query -addr localhost:7878 "..."      # same; flag position is free
//	tasmctl -addr host:7878 -token SECRET -encoding binary query "..."
//
// Every subcommand accepts -addr host:port to run against a remote
// tasmd through the Go client instead of opening -dir (-token supplies
// the bearer credential for a locked-down daemon, -encoding picks the
// stream wire framing); typed failures map to distinct exit codes
// either way (see -h). Local mode takes the store's flock ownership
// lease, so pointing tasmctl -dir at a live daemon's directory fails
// fast with "store locked" — -force overrides for recovery.
package main

import (
	"bytes"
	"context"
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/detect"
	"github.com/tasm-repro/tasm/internal/scene"
)

// Exit codes: scripts branch on the failure class without parsing
// error text. The mapping rides the same typed-error taxonomy locally
// and remotely (the client reconstructs the sentinels from the wire).
const (
	exitOK           = 0
	exitFailure      = 1 // unclassified error (I/O, integrity problems, transport)
	exitNotFound     = 2 // video or SOT not found
	exitInvalid      = 3 // invalid input: bad flags/usage, name, range, empty ingest, bad request
	exitConflict     = 4 // already exists, retile conflict, lost race with delete, store locked
	exitDenied       = 5 // unauthorized: missing or unknown bearer token
	exitCorrupt      = 6 // stored bytes failed integrity verification (checksum mismatch)
	exitShardDown    = 7 // a tasm-router could not reach the shard owning the video
	exitBackpressure = 8 // live append queue full; nothing was written — retry after a pause
	exitInterrupted  = 130
)

// Global connection flags, acceptable before the subcommand too
// (`tasmctl -addr X -token T query …`); each is also settable per
// subcommand.
var (
	globalAddr     string
	globalToken    string
	globalEncoding string
	globalCert     string
	globalKey      string
	globalCA       string
)

// globalFlag matches one leading "-name value" / "-name=value" pair
// into dst, reporting how many args it consumed.
func globalFlag(args []string, name string, dst *string) int {
	switch {
	case args[0] == "-"+name || args[0] == "--"+name:
		if len(args) < 2 {
			usage()
		}
		*dst = args[1]
		return 2
	case strings.HasPrefix(args[0], "-"+name+"="), strings.HasPrefix(args[0], "--"+name+"="):
		*dst = args[0][strings.Index(args[0], "=")+1:]
		return 1
	}
	return 0
}

func main() {
	args := os.Args[1:]
	for len(args) > 0 {
		if n := globalFlag(args, "addr", &globalAddr); n > 0 {
			args = args[n:]
			continue
		}
		if n := globalFlag(args, "token", &globalToken); n > 0 {
			args = args[n:]
			continue
		}
		if n := globalFlag(args, "encoding", &globalEncoding); n > 0 {
			args = args[n:]
			continue
		}
		if n := globalFlag(args, "cert", &globalCert); n > 0 {
			args = args[n:]
			continue
		}
		if n := globalFlag(args, "key", &globalKey); n > 0 {
			args = args[n:]
			continue
		}
		if n := globalFlag(args, "ca", &globalCA); n > 0 {
			args = args[n:]
			continue
		}
		if args[0] == "-h" || args[0] == "--help" || args[0] == "help" {
			// An explicit help request is a success, not invalid input.
			printUsage(os.Stdout)
			os.Exit(exitOK)
		}
		break
	}
	if len(args) == 0 {
		usage()
	}
	// Long-running subcommands honor SIGINT/SIGTERM through the context:
	// the first signal cancels in-flight decodes/encodes at a frame
	// boundary (no mid-write corpses, leases released). Once the context
	// is down, default signal handling is restored, so a second signal
	// kills a command stuck in a non-cancellable section the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	// One trace id per invocation: every remote request this command
	// issues carries it, so a failure is greppable across the router's
	// and shards' access logs and fetchable with `tasmctl trace ID`.
	tid := client.NewTraceID()
	ctx = client.WithTraceID(ctx, tid)
	cmd, cmdArgs := args[0], args[1:]
	var err error
	switch cmd {
	case "ingest":
		err = cmdIngest(ctx, cmdArgs)
	case "detect":
		err = cmdDetect(ctx, cmdArgs)
	case "query":
		err = cmdQuery(ctx, cmdArgs)
	case "info":
		err = cmdInfo(ctx, cmdArgs)
	case "stats":
		err = cmdStats(ctx, cmdArgs)
	case "retile":
		err = cmdRetile(ctx, cmdArgs)
	case "gc":
		err = cmdGC(ctx, cmdArgs)
	case "fsck":
		err = cmdFsck(ctx, cmdArgs)
	case "autotile":
		err = cmdAutotile(ctx, cmdArgs)
	case "trace":
		err = cmdTrace(ctx, cmdArgs)
	case "videos":
		err = cmdVideos(ctx, cmdArgs)
	case "append":
		err = cmdAppend(ctx, cmdArgs)
	case "subscribe":
		err = cmdSubscribe(ctx, cmdArgs)
	case "seal":
		err = cmdSeal(ctx, cmdArgs)
	case "retention":
		err = cmdRetention(ctx, cmdArgs)
	default:
		usage()
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "tasmctl %s: interrupted (state is consistent; partial work was rolled back or left committed per operation)\n", cmd)
			os.Exit(exitInterrupted)
		}
		fmt.Fprintf(os.Stderr, "tasmctl %s: %v\n", cmd, err)
		if globalAddr != "" {
			fmt.Fprintf(os.Stderr, "tasmctl %s: trace id %s (tasmctl -addr %s trace %s fetches the server-side timeline)\n", cmd, tid, globalAddr, tid)
		}
		os.Exit(exitCode(err))
	}
}

// exitCode classifies a failure through the typed-error taxonomy.
func exitCode(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, tasm.ErrVideoNotFound), errors.Is(err, tasm.ErrSOTNotFound),
		errors.Is(err, client.ErrTraceNotFound):
		return exitNotFound
	case errors.Is(err, tasm.ErrInvalidName), errors.Is(err, tasm.ErrInvalidRange),
		errors.Is(err, tasm.ErrNoFrames), errors.Is(err, client.ErrBadRequest),
		errors.Is(err, tasm.ErrAutotileDisabled), errors.Is(err, errUsage):
		return exitInvalid
	case errors.Is(err, tasm.ErrVideoExists), errors.Is(err, tasm.ErrRetileConflict),
		errors.Is(err, tasm.ErrVideoDeleted), errors.Is(err, tasm.ErrStoreLocked),
		errors.Is(err, tasm.ErrVideoSealed):
		return exitConflict
	case errors.Is(err, client.ErrUnauthorized):
		return exitDenied
	case errors.Is(err, tasm.ErrTileCorrupt):
		return exitCorrupt
	case errors.Is(err, client.ErrShardUnavailable):
		return exitShardDown
	case errors.Is(err, tasm.ErrIngestBackpressure):
		return exitBackpressure
	default:
		return exitFailure
	}
}

// errUsage marks bad command-line input so it exits with exitInvalid.
var errUsage = errors.New("invalid usage")

// parseFlags parses a subcommand's flags with the exit-code contract:
// an explicit -h exits 0, a malformed flag exits 3 (flag.ExitOnError
// would exit 2, colliding with "not found"). The flag package already
// printed the details and defaults to stderr.
func parseFlags(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			os.Exit(exitOK)
		}
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	return nil
}

func usage() {
	printUsage(os.Stderr)
	os.Exit(exitInvalid)
}

func printUsage(w io.Writer) {
	fmt.Fprintln(w, `usage: tasmctl [-addr HOST:PORT] [-token T] [-encoding E] <command> [flags]

commands:
  ingest  -dir D -preset P [-video NAME] [-w -h -fps -scale -seed]
  detect  -dir D -video V [-detector yolo|tiny|bgsub|yolo-every5] [-from N -to N]
  query   -dir D "SELECT <pred> FROM <video> [WHERE a <= t < b]"
  info    -dir D [-video V]
  stats   -dir D [-json]    decoded-tile cache counters (eviction pressure);
          against a tasm-router also the per-shard breakdown; -json
          emits the same data machine-readable
  trace   -addr H:P ID      fetch a finished request's span timeline from
          the daemon's trace ring (ids come from Tasm-Trace-Id response
          headers, access logs, or a failed tasmctl run's stderr)
  retile  -dir D -video V -sot N -labels a,b
  gc      -dir D            reclaim dead SOT versions and staging debris
  fsck    -dir D [-repair]  verify manifests against tile files on disk
  autotile status|pause|resume  [-dir D] [-reason R]
          inspect or gate the background workload-adaptive re-tiler
  videos  -dir D [-json]    catalog table with live/sealed status,
          trim watermark, and retention policy per video
  append  -dir D -video V -preset P [-from A -to B] [-create]
          append scene frames onto a live video; each GOP-length chunk
          commits atomically (-create opens the live video first;
          successive -from/-to windows simulate a camera feed)
  subscribe -dir D -video V [-from N] [-max N] [-quiet]
          tail committed frames as they land, printing index + crc32;
          resume a dropped tail with -from = last index + 1
  seal    -dir D -video V   convert live -> batch: appends fail, reads
          unchanged, caught-up subscribers terminate cleanly
  retention -dir D -video V [-max-age-frames N] [-max-bytes N] [-clear]
          bound retained history; expired SOTs age out on the append
          path and reads below the trim watermark return nothing

remote mode:
  every command accepts -addr HOST:PORT (before or after the command
  name) to operate a running tasmd instead of opening -dir, -token T
  to authenticate against a -token-file protected daemon, and
  -encoding ndjson|binary to pick the stream wire framing (binary
  ships raw pixel planes: ~25-30% fewer bytes per region; results are
  identical). ingest still writes the scene spec next to -dir locally
  so a later detect can regenerate ground truth; the daemon's codec
  settings govern the stored GOP length. Against an mTLS daemon or
  router (-tls-client-ca), -cert/-key present the client certificate
  and -ca trusts a privately-signed server certificate.

store lock:
  local mode takes the store's ownership lease; pointed at a live
  tasmd's directory it fails fast with "store locked" (exit 4) instead
  of reading stale caches. -force bypasses the lease — recovery only,
  never against a running owner.

exit codes:
  0  success
  1  unclassified failure (I/O, integrity problems, transport)
  2  not found (video, SOT)
  3  invalid input (usage, name, frame range, empty ingest, bad request)
  4  conflict (already exists, concurrent retile, deleted mid-operation,
     store locked by another process)
  5  unauthorized (missing or unknown bearer token)
  6  corrupt (stored tiles failed checksum verification; try fsck -repair)
  7  shard unavailable (a tasm-router's breaker is open for the owning
     shard, or the shard died mid-stream; the rest of the fleet serves)
  8  ingest backpressure (the live video's commit queue is full; nothing
     was written — retry after a pause, or use the client's WithRetry)
  130  interrupted by SIGINT/SIGTERM`)
}

// specPath stores the generating scene spec beside the database so detect
// can regenerate ground truth for the simulated detectors.
func specPath(dir, video string) string {
	return filepath.Join(dir, video+".spec.json")
}

// backend is the slice of the StorageManager surface tasmctl drives,
// satisfied by both the in-process manager (wrapped) and the remote
// client — the reason every subcommand works identically with -addr.
// Every method is context-first: remotely these are HTTP round trips
// against a daemon that may hang, and the signal context must be able
// to abandon them (the client transport deliberately has no timeout).
type backend interface {
	Close() error
	IngestContext(ctx context.Context, video string, frames []*tasm.Frame, fps int) (tasm.IngestStats, error)
	AddDetectionsContext(ctx context.Context, video string, ds []tasm.Detection) error
	MarkDetectedContext(ctx context.Context, video, label string, from, to int) error
	ScanSQLContext(ctx context.Context, sql string) ([]tasm.RegionResult, tasm.ScanStats, error)
	VideosContext(ctx context.Context) ([]string, error)
	MetaContext(ctx context.Context, video string) (tasm.VideoMeta, error)
	// VideoInfoContext returns meta + byte footprint + labels in one
	// call: one HTTP round trip (and one server-side byte walk) per
	// video remotely.
	VideoInfoContext(ctx context.Context, video string) (tasm.VideoMeta, int64, []string, error)
	DesignLayoutContext(ctx context.Context, video string, sotID int, labels []string) (tasm.Layout, error)
	RetileSOTContext(ctx context.Context, video string, sotID int, l tasm.Layout) (tasm.RetileStats, error)
	GCContext(ctx context.Context) (tasm.GCReport, error)
	FSCKContext(ctx context.Context) (tasm.FsckReport, error)
	RepairStoreContext(ctx context.Context) (tasm.RepairReport, error)
	RepairPointersContext(ctx context.Context, video string) error
	CacheStatsContext(ctx context.Context) (tasm.CacheStats, error)
	AutotileStatusContext(ctx context.Context) (tasm.AutotileStatus, error)
	AutotilePauseContext(ctx context.Context, reason string) error
	AutotileResumeContext(ctx context.Context) error
	CreateLiveContext(ctx context.Context, video string, w, h, fps int, pol *tasm.RetentionPolicy) error
	AppendContext(ctx context.Context, video string, frames []*tasm.Frame) (tasm.AppendStats, error)
	SealContext(ctx context.Context, video string) error
	SetRetentionContext(ctx context.Context, video string, pol *tasm.RetentionPolicy) (tasm.TrimReport, error)
}

// tailCursor is the slice of the subscribe-cursor surface the CLI
// drives, satisfied by both the in-process *tasm.SubscribeCursor and
// the remote *client.FrameCursor (cmdSubscribe dispatches by backend
// type because the two constructors return distinct concrete cursors).
type tailCursor interface {
	Next() bool
	Result() tasm.FrameResult
	Err() error
	Close() error
}

// localBackend adapts *tasm.StorageManager to the backend interface.
// The manager has no ctx form for these fast local operations, so each
// adapter honors a signal that already arrived before starting — the
// same "stop at the operation boundary" behavior the subcommands had.
type localBackend struct{ *tasm.StorageManager }

func (l localBackend) AddDetectionsContext(ctx context.Context, video string, ds []tasm.Detection) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.AddDetections(video, ds)
}

func (l localBackend) MarkDetectedContext(ctx context.Context, video, label string, from, to int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.MarkDetected(video, label, from, to)
}

func (l localBackend) VideosContext(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return l.Videos()
}

func (l localBackend) MetaContext(ctx context.Context, video string) (tasm.VideoMeta, error) {
	if err := ctx.Err(); err != nil {
		return tasm.VideoMeta{}, err
	}
	return l.Meta(video)
}

func (l localBackend) VideoInfoContext(ctx context.Context, video string) (tasm.VideoMeta, int64, []string, error) {
	meta, err := l.MetaContext(ctx, video)
	if err != nil {
		return tasm.VideoMeta{}, 0, nil, err
	}
	bytes, err := l.VideoBytes(video)
	if err != nil {
		return tasm.VideoMeta{}, 0, nil, err
	}
	labels, err := l.Labels(video)
	return meta, bytes, labels, err
}

func (l localBackend) DesignLayoutContext(ctx context.Context, video string, sotID int, labels []string) (tasm.Layout, error) {
	if err := ctx.Err(); err != nil {
		return tasm.Layout{}, err
	}
	return l.DesignLayout(video, sotID, labels)
}

func (l localBackend) GCContext(ctx context.Context) (tasm.GCReport, error) {
	// The sweep itself is atomic under the store lock; honor a signal
	// that arrived before it started rather than beginning new work.
	if err := ctx.Err(); err != nil {
		return tasm.GCReport{}, err
	}
	return l.GC()
}

func (l localBackend) FSCKContext(ctx context.Context) (tasm.FsckReport, error) {
	if err := ctx.Err(); err != nil {
		return tasm.FsckReport{}, err
	}
	return l.FSCK()
}

func (l localBackend) RepairPointersContext(ctx context.Context, video string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.RepairPointers(video)
}

func (l localBackend) CacheStatsContext(ctx context.Context) (tasm.CacheStats, error) {
	if err := ctx.Err(); err != nil {
		return tasm.CacheStats{}, err
	}
	return l.CacheStats(), nil
}

func (l localBackend) AutotileStatusContext(ctx context.Context) (tasm.AutotileStatus, error) {
	if err := ctx.Err(); err != nil {
		return tasm.AutotileStatus{}, err
	}
	return l.AutotileStatus(), nil
}

func (l localBackend) AutotilePauseContext(ctx context.Context, reason string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.AutotilePause(reason)
}

func (l localBackend) AutotileResumeContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.AutotileResume()
}

func (l localBackend) CreateLiveContext(ctx context.Context, video string, w, h, fps int, pol *tasm.RetentionPolicy) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.CreateLiveVideo(video, w, h, fps, pol)
}

func (l localBackend) AppendContext(ctx context.Context, video string, frames []*tasm.Frame) (tasm.AppendStats, error) {
	return l.AppendGOPContext(ctx, video, frames)
}

func (l localBackend) SealContext(ctx context.Context, video string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return l.SealVideo(video)
}

func (l localBackend) SetRetentionContext(ctx context.Context, video string, pol *tasm.RetentionPolicy) (tasm.TrimReport, error) {
	if err := ctx.Err(); err != nil {
		return tasm.TrimReport{}, err
	}
	return l.SetRetention(video, pol)
}

// connFlags is the connection contract every subcommand shares:
// remote daemon address and credentials, the stream encoding to
// request, and the local store-lock escape hatch.
type connFlags struct {
	addr     *string
	token    *string
	encoding *string
	cert     *string
	key      *string
	ca       *string
	force    *bool
}

// openBackend connects to tasmd when -addr is set (with the bearer
// token and requested stream encoding), else opens -dir locally with
// the given extra options (taking the store's ownership lease unless
// -force).
func (cf connFlags) openBackend(dir string, opts ...tasm.Option) (backend, error) {
	// Validate -encoding regardless of mode: a typo must not silently
	// no-op just because the run happened to be local.
	var enc client.Encoding
	switch *cf.encoding {
	case "", "ndjson":
		enc = client.NDJSON
	case "binary":
		enc = client.Binary
	default:
		return nil, fmt.Errorf("%w: -encoding must be ndjson or binary, got %q", errUsage, *cf.encoding)
	}
	if (*cf.cert == "") != (*cf.key == "") {
		return nil, fmt.Errorf("%w: -cert and -key must be set together", errUsage)
	}
	if *cf.addr == "" && (*cf.cert != "" || *cf.ca != "") {
		return nil, fmt.Errorf("%w: -cert/-key/-ca are remote-only (they configure the TLS connection to -addr)", errUsage)
	}
	if *cf.addr != "" {
		copts := []client.Option{client.WithEncoding(enc)}
		if *cf.token != "" {
			copts = append(copts, client.WithToken(*cf.token))
		}
		if *cf.ca != "" {
			pem, err := os.ReadFile(*cf.ca)
			if err != nil {
				return nil, fmt.Errorf("reading -ca: %w", err)
			}
			pool := x509.NewCertPool()
			if !pool.AppendCertsFromPEM(pem) {
				return nil, fmt.Errorf("-ca %s: no CA certificates found", *cf.ca)
			}
			copts = append(copts, client.WithTLS(&tls.Config{RootCAs: pool}))
		}
		if *cf.cert != "" {
			cert, err := tls.LoadX509KeyPair(*cf.cert, *cf.key)
			if err != nil {
				return nil, fmt.Errorf("loading -cert/-key: %w", err)
			}
			copts = append(copts, client.WithClientCert(cert))
		}
		return client.New(*cf.addr, copts...)
	}
	if *cf.force {
		opts = append(opts, tasm.WithForceOpen())
	}
	opts = append([]tasm.Option{tasm.WithMinTileSize(32, 32)}, opts...)
	sm, err := tasm.Open(dir, opts...)
	if err != nil {
		return nil, err
	}
	return localBackend{sm}, nil
}

// addrFlag registers the per-subcommand connection flags (defaulting
// to the global leading forms).
func addrFlag(fs *flag.FlagSet) connFlags {
	return connFlags{
		addr:     fs.String("addr", globalAddr, "remote tasmd address (host:port); empty = local -dir"),
		token:    fs.String("token", globalToken, "bearer token for a -token-file protected daemon"),
		encoding: fs.String("encoding", globalEncoding, "stream encoding to request remotely: ndjson (default) or binary"),
		cert:     fs.String("cert", globalCert, "client certificate (PEM) for an mTLS daemon; requires -key"),
		key:      fs.String("key", globalKey, "client private key (PEM); requires -cert"),
		ca:       fs.String("ca", globalCA, "CA bundle (PEM) to verify the server (private CAs; implies HTTPS)"),
		force:    fs.Bool("force", false, "open a locked local store anyway (recovery only: unsafe against a live owner)"),
	}
}

func cmdIngest(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	preset := fs.String("preset", "", "scene preset name (see tasm-datagen)")
	name := fs.String("video", "", "stored video name (default preset name)")
	width := fs.Int("w", 320, "width")
	height := fs.Int("h", 180, "height")
	fps := fs.Int("fps", 30, "frames per second")
	scaleF := fs.Float64("scale", 1.0, "duration scale")
	seed := fs.Uint64("seed", 42, "seed")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *preset == "" {
		return fmt.Errorf("%w: missing -preset", errUsage)
	}
	opts := scene.Options{Width: *width, Height: *height, FPS: *fps, DurationScale: *scaleF, Seed: *seed}
	var spec *scene.Spec
	for _, p := range scene.Presets(opts) {
		if p.Spec.Name == *preset {
			s := p.Spec
			spec = &s
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("%w: unknown preset %q", errUsage, *preset)
	}
	if *name != "" {
		spec.Name = *name
	}
	v, err := scene.Generate(*spec)
	if err != nil {
		return err
	}
	// One-second GOPs (and thus SOTs), the default in most encoders.
	// Remotely the daemon's codec configuration governs GOP length.
	b, err := addr.openBackend(*dir, tasm.WithGOPLength(spec.FPS))
	if err != nil {
		return err
	}
	defer b.Close()
	st, err := b.IngestContext(ctx, spec.Name, v.Frames(0, spec.NumFrames()), spec.FPS)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	// The spec lands beside -dir even in remote mode: it is client-side
	// provenance that a later `tasmctl detect` needs to regenerate the
	// ground truth, not server state.
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(specPath(*dir, spec.Name), data, 0o644); err != nil {
		return err
	}
	fmt.Printf("ingested %s: %d frames, %d SOTs, %d KiB, encode %s\n",
		spec.Name, spec.NumFrames(), st.SOTs, st.Bytes/1024, st.EncodeWall.Round(1e6))
	return nil
}

func cmdDetect(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("detect", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	video := fs.String("video", "", "video name")
	detName := fs.String("detector", "yolo", "yolo | tiny | bgsub | yolo-every5")
	from := fs.Int("from", 0, "first frame")
	to := fs.Int("to", -1, "end frame (exclusive; -1 = all)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *video == "" {
		return fmt.Errorf("%w: missing -video", errUsage)
	}
	data, err := os.ReadFile(specPath(*dir, *video))
	if err != nil {
		return fmt.Errorf("no saved spec for %q (ingest with tasmctl): %w", *video, err)
	}
	var spec scene.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return err
	}
	v, err := scene.Generate(spec)
	if err != nil {
		return err
	}
	if *to < 0 || *to > spec.NumFrames() {
		*to = spec.NumFrames()
	}
	var det detect.Detector
	lat := detect.DefaultLatencies()
	switch *detName {
	case "yolo":
		det = &detect.Oracle{Lat: lat}
	case "tiny":
		det = &detect.Tiny{Lat: lat}
	case "bgsub":
		det = &detect.BackgroundSub{Lat: lat}
	case "yolo-every5":
		det = &detect.EveryN{Inner: &detect.Oracle{Lat: lat}, N: 5}
	default:
		return fmt.Errorf("%w: unknown detector %q", errUsage, *detName)
	}
	ds, simLat := detect.Run(det, v, *from, *to)
	// Honor a signal before touching the index: the batch insert plus the
	// MarkDetected records below are one logical write.
	if err := ctx.Err(); err != nil {
		return err
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	if err := b.AddDetectionsContext(ctx, *video, ds); err != nil {
		return err
	}
	labels := map[string]bool{}
	for _, d := range ds {
		labels[d.Label] = true
	}
	for label := range labels {
		if err := b.MarkDetectedContext(ctx, *video, label, *from, *to); err != nil {
			return err
		}
	}
	fmt.Printf("%s over frames [%d,%d): %d detections, %d labels, simulated latency %s\n",
		det.Name(), *from, *to, len(ds), len(labels), simLat.Round(1e6))
	return nil
}

func cmdQuery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	adaptive := fs.Bool("adaptive", false, "enable regret-based adaptive tiling (local mode only)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%w: expected one SQL argument", errUsage)
	}
	if *adaptive && *addr.addr != "" {
		return fmt.Errorf("%w: -adaptive is local-only (the daemon owns its tiling policy)", errUsage)
	}
	// Pre-parse with the same parser both the local manager and the
	// server use, so a SQL typo exits 3 identically in both modes
	// (locally the parse error wraps no sentinel and would fall to 1).
	if _, err := tasm.ParseQuery(fs.Arg(0)); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	var opts []tasm.Option
	if *adaptive {
		opts = append(opts, tasm.WithAdaptiveTiling())
	}
	b, err := addr.openBackend(*dir, opts...)
	if err != nil {
		return err
	}
	defer b.Close()
	res, st, err := b.ScanSQLContext(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("regions: %d  frames touched: %d  SOTs: %d\n", len(res), countFrames(res), st.SOTsTouched)
	fmt.Printf("decode: %s (%d tiles, %d frames, %.2f Mpx)  assemble: %s  index: %s\n",
		st.DecodeWall.Round(1e4), st.TilesDecoded, st.FramesDecoded,
		float64(st.PixelsDecoded)/1e6, st.AssembleWall.Round(1e4), st.IndexWall.Round(1e4))
	return nil
}

// statsShardJSON is one shard's row in `stats -json` output; the field
// names are part of the CLI contract, so they are pinned here rather
// than inherited from the client structs.
type statsShardJSON struct {
	Shard   string           `json:"shard"`
	Addr    string           `json:"addr"`
	Healthy bool             `json:"healthy"`
	Error   string           `json:"error,omitempty"`
	Stats   *tasm.CacheStats `json:"stats,omitempty"`
}

func cmdStats(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	asJSON := fs.Bool("json", false, "emit machine-readable JSON (totals plus per-shard breakdown against a router)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	var st tasm.CacheStats
	var shards []client.ShardStats
	if rc, ok := b.(*client.Client); ok {
		// Against a tasm-router the response carries a per-shard
		// breakdown; against a plain tasmd the shard list is empty and
		// only the totals print. One code path serves both.
		if st, shards, err = rc.ShardCacheStats(ctx); err != nil {
			return err
		}
	} else if st, err = b.CacheStatsContext(ctx); err != nil {
		return err
	}
	if *asJSON {
		out := struct {
			Totals tasm.CacheStats  `json:"totals"`
			Shards []statsShardJSON `json:"shards,omitempty"`
		}{Totals: st}
		for _, s := range shards {
			row := statsShardJSON{Shard: s.Shard, Addr: s.Addr, Healthy: s.Healthy, Error: s.Err}
			if s.Err == "" {
				stats := s.Stats
				row.Stats = &stats
			}
			out.Shards = append(out.Shards, row)
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	for _, s := range shards {
		health := "up"
		if !s.Healthy {
			health = "DOWN"
		}
		if s.Err != "" {
			fmt.Printf("shard %-12s %-21s %-4s unreachable: %s\n", s.Shard, s.Addr, health, s.Err)
			continue
		}
		fmt.Printf("shard %-12s %-21s %-4s hits %d  misses %d  evictions %d  cached %d B in %d entries\n",
			s.Shard, s.Addr, health, s.Stats.Hits, s.Stats.Misses, s.Stats.Evictions, s.Stats.BytesCached, s.Stats.Entries)
	}
	if len(shards) > 0 {
		fmt.Println("merged totals:")
	}
	// Eviction pressure is the ratio operators watch: evictions per
	// miss says whether the budget is churning.
	fmt.Printf("decoded-tile cache: budget %d B, cached %d B in %d entries\n", st.Budget, st.BytesCached, st.Entries)
	fmt.Printf("hits %d  misses %d  evictions %d  invalidations %d\n", st.Hits, st.Misses, st.Evictions, st.Invalidations)
	if st.Budget == 0 {
		fmt.Println("cache disabled (budget 0); enable with tasm.WithCacheBudget / tasmd -cache")
		return nil
	}
	if lookups := st.Hits + st.Misses; lookups > 0 {
		fmt.Printf("hit rate %.1f%%", 100*float64(st.Hits)/float64(lookups))
		if st.Misses > 0 {
			fmt.Printf("  eviction pressure %.2f evictions/miss", float64(st.Evictions)/float64(st.Misses))
		}
		fmt.Println()
	}
	return nil
}

// cmdTrace fetches one finished request's span timeline from a
// daemon's trace ring. Remote-only: traces live in the serving
// process, there is nothing to look up in a local directory.
func cmdTrace(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	addr := addrFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("%w: expected one trace id argument", errUsage)
	}
	if *addr.addr == "" {
		return fmt.Errorf("%w: trace needs -addr (traces live in the serving daemon's ring, not on disk)", errUsage)
	}
	b, err := addr.openBackend("")
	if err != nil {
		return err
	}
	defer b.Close()
	raw, err := b.(*client.Client).TraceContext(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, raw, "", "  "); err != nil {
		return err
	}
	fmt.Println(pretty.String())
	return nil
}

func cmdAutotile(ctx context.Context, args []string) error {
	if len(args) == 0 || strings.HasPrefix(args[0], "-") {
		return fmt.Errorf("%w: autotile needs a verb: status, pause, or resume", errUsage)
	}
	verb, rest := args[0], args[1:]
	fs := flag.NewFlagSet("autotile "+verb, flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	reason := fs.String("reason", "", "why the retiler is being paused (pause only; shown in status)")
	if err := parseFlags(fs, rest); err != nil {
		return err
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	switch verb {
	case "status":
		st, err := b.AutotileStatusContext(ctx)
		if err != nil {
			return err
		}
		if !st.Enabled {
			fmt.Println("autotile: disabled (start tasmd with -autotile, or open with tasm.WithAdaptiveTiling)")
			return nil
		}
		state := "running"
		if st.Paused {
			state = "paused"
			if st.PauseReason != "" {
				state += " (" + st.PauseReason + ")"
			}
		}
		fmt.Printf("autotile: %s\n", state)
		fmt.Printf("queries: %d observed, %d pending, %d dropped\n", st.QueriesObserved, st.QueriesPending, st.QueriesDropped)
		fmt.Printf("actions: %d applied, %d failed\n", st.ActionsApplied, st.ActionsFailed)
		if st.IOBudget > 0 {
			fmt.Printf("retile I/O: %d B spent (budget %d B/s)\n", st.BytesSpent, st.IOBudget)
		} else {
			fmt.Printf("retile I/O: %d B spent (unthrottled)\n", st.BytesSpent)
		}
		fmt.Printf("accumulated regret: %.3f\n", st.Regret)
		if st.LastAction != "" {
			fmt.Printf("last action: %s\n", st.LastAction)
		}
		if st.LastError != "" {
			fmt.Printf("last error: %s\n", st.LastError)
		}
		return nil
	case "pause":
		if err := b.AutotilePauseContext(ctx, *reason); err != nil {
			return err
		}
		fmt.Println("autotile paused")
		return nil
	case "resume":
		if err := b.AutotileResumeContext(ctx); err != nil {
			return err
		}
		fmt.Println("autotile resumed")
		return nil
	default:
		return fmt.Errorf("%w: unknown autotile verb %q (want status, pause, or resume)", errUsage, verb)
	}
}

func cmdGC(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gc", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	rep, err := b.GCContext(ctx)
	if err != nil {
		return err
	}
	for _, p := range rep.Removed {
		fmt.Printf("removed  %s\n", p)
	}
	for _, p := range rep.Deferred {
		fmt.Printf("deferred %s (pinned by a read lease)\n", p)
	}
	fmt.Printf("gc: %d removed, %d deferred\n", len(rep.Removed), len(rep.Deferred))
	return nil
}

func cmdFsck(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	repair := fs.Bool("repair", false, "quarantine corrupt tile versions (falling back to intact earlier ones) and re-materialize box→tile index pointers")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	if *repair {
		// Storage first: a corrupt version quarantined here may flip a
		// video back to an earlier layout, and the pointer pass below
		// must re-materialize against the layout that will be served.
		srep, err := b.RepairStoreContext(ctx)
		if err != nil {
			return err
		}
		for _, q := range srep.Quarantined {
			fmt.Printf("quarantined %s\n", q)
		}
		for _, r := range srep.Reverted {
			fmt.Printf("reverted    %s\n", r)
		}
		videos, err := b.VideosContext(ctx)
		if err != nil {
			return err
		}
		for _, v := range videos {
			// Each repair is atomic per video; a signal stops between
			// videos (the backend checks the ctx before each one).
			if err := b.RepairPointersContext(ctx, v); err != nil {
				return err
			}
			fmt.Printf("repaired pointers: %s\n", v)
		}
	}
	rep, err := b.FSCKContext(ctx)
	if err != nil {
		return err
	}
	for _, p := range rep.Problems {
		fmt.Printf("PROBLEM  %s\n", p)
	}
	for _, p := range rep.Orphans {
		fmt.Printf("orphan   %s (gc will reclaim)\n", p)
	}
	fmt.Printf("fsck: %d videos, %d SOTs, %d tiles, %d leases, %d problems, %d orphans\n",
		rep.Videos, rep.SOTs, rep.Tiles, rep.Leases, len(rep.Problems), len(rep.Orphans))
	if !rep.OK() {
		return fmt.Errorf("%d integrity problems", len(rep.Problems))
	}
	return nil
}

func countFrames(res []tasm.RegionResult) int {
	frames := map[int]bool{}
	for _, r := range res {
		frames[r.Frame] = true
	}
	return len(frames)
}

func cmdInfo(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("info", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	video := fs.String("video", "", "show one video in detail")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	if *video == "" {
		videos, err := b.VideosContext(ctx)
		if err != nil {
			return err
		}
		for _, name := range videos {
			meta, bytes, labels, err := b.VideoInfoContext(ctx, name)
			if err != nil {
				return err
			}
			fmt.Printf("%-24s %dx%d @%dfps  %d frames  %d SOTs  %d KiB  labels=%v\n",
				name, meta.W, meta.H, meta.FPS, meta.FrameCount, len(meta.SOTs), bytes/1024, labels)
		}
		return nil
	}
	meta, err := b.MetaContext(ctx, *video)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %dx%d @%dfps, %d frames, GOP %d\n", meta.Name, meta.W, meta.H, meta.FPS, meta.FrameCount, meta.GOPLength)
	for _, sot := range meta.SOTs {
		kind := "untiled"
		if !sot.L.IsSingle() {
			kind = fmt.Sprintf("%dx%d tiles", sot.L.Rows(), sot.L.Cols())
		}
		fmt.Printf("  SOT %2d frames [%4d,%4d)  %-14s retiles=%d\n", sot.ID, sot.From, sot.To, kind, sot.Retiles)
	}
	return nil
}

func cmdRetile(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("retile", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	video := fs.String("video", "", "video name")
	sot := fs.Int("sot", -1, "SOT id")
	labels := fs.String("labels", "", "comma-separated labels to tile around")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *video == "" || *sot < 0 || *labels == "" {
		return fmt.Errorf("%w: need -video, -sot and -labels", errUsage)
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	l, err := b.DesignLayoutContext(ctx, *video, *sot, strings.Split(*labels, ","))
	if err != nil {
		return err
	}
	if l.IsSingle() {
		fmt.Println("no beneficial layout for those labels (staying untiled)")
		return nil
	}
	rs, err := b.RetileSOTContext(ctx, *video, *sot, l)
	if err != nil {
		return err
	}
	fmt.Printf("retiled %s SOT %d to %dx%d tiles (decode %s, encode %s, %d KiB)\n",
		*video, *sot, l.Rows(), l.Cols(), rs.DecodeWall.Round(1e6), rs.EncodeWall.Round(1e6), rs.Bytes/1024)
	return nil
}

// retentionString renders a policy for the videos table: "-" when
// unset, otherwise the active bounds.
func retentionString(pol *tasm.RetentionPolicy) string {
	if pol == nil {
		return "-"
	}
	var parts []string
	if pol.MaxAgeFrames > 0 {
		parts = append(parts, fmt.Sprintf("age<=%df", pol.MaxAgeFrames))
	}
	if pol.MaxBytes > 0 {
		parts = append(parts, fmt.Sprintf("bytes<=%d", pol.MaxBytes))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ",")
}

// videoStatus classifies a catalog entry for operators: an append-mode
// video still accepting frames, one sealed shut, or an ordinary batch
// ingest.
func videoStatus(meta tasm.VideoMeta) string {
	switch {
	case meta.Live:
		return "live"
	case meta.Sealed:
		return "sealed"
	default:
		return "batch"
	}
}

// videoJSON is one row of `videos -json`; field names are CLI contract.
type videoJSON struct {
	Name      string                `json:"name"`
	W         int                   `json:"w"`
	H         int                   `json:"h"`
	FPS       int                   `json:"fps"`
	Frames    int                   `json:"frames"`
	SOTs      int                   `json:"sots"`
	Bytes     int64                 `json:"bytes"`
	Status    string                `json:"status"` // live | sealed | batch
	TrimmedTo int                   `json:"trimmed_to,omitempty"`
	Retention *tasm.RetentionPolicy `json:"retention,omitempty"`
	Labels    []string              `json:"labels,omitempty"`
}

func cmdVideos(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("videos", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	asJSON := fs.Bool("json", false, "emit machine-readable JSON rows")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	videos, err := b.VideosContext(ctx)
	if err != nil {
		return err
	}
	var rows []videoJSON
	for _, name := range videos {
		meta, bytes, labels, err := b.VideoInfoContext(ctx, name)
		if err != nil {
			return err
		}
		rows = append(rows, videoJSON{
			Name: name, W: meta.W, H: meta.H, FPS: meta.FPS,
			Frames: meta.FrameCount, SOTs: len(meta.SOTs), Bytes: bytes,
			Status: videoStatus(meta), TrimmedTo: meta.TrimmedTo,
			Retention: meta.Retention, Labels: labels,
		})
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rows)
	}
	if len(rows) == 0 {
		fmt.Println("no videos")
		return nil
	}
	fmt.Printf("%-24s %-12s %8s %5s %9s %-7s %s\n", "NAME", "GEOMETRY", "FRAMES", "SOTS", "KIB", "STATUS", "RETENTION")
	for _, r := range rows {
		status := r.Status
		if r.TrimmedTo > 0 {
			status += fmt.Sprintf(" @%d", r.TrimmedTo)
		}
		fmt.Printf("%-24s %-12s %8d %5d %9d %-7s %s\n",
			r.Name, fmt.Sprintf("%dx%d@%d", r.W, r.H, r.FPS),
			r.Frames, r.SOTs, r.Bytes/1024, status, retentionString(r.Retention))
	}
	return nil
}

func cmdAppend(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("append", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	video := fs.String("video", "", "live video name")
	preset := fs.String("preset", "", "scene preset supplying the frames (see tasm-datagen)")
	from := fs.Int("from", 0, "first scene frame to append")
	to := fs.Int("to", -1, "end scene frame (exclusive; -1 = all) — successive -from/-to windows simulate a camera feed")
	width := fs.Int("w", 320, "width")
	height := fs.Int("h", 180, "height")
	fps := fs.Int("fps", 30, "frames per second")
	scaleF := fs.Float64("scale", 1.0, "duration scale")
	seed := fs.Uint64("seed", 42, "seed")
	create := fs.Bool("create", false, "create the live video first if it does not exist")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *video == "" || *preset == "" {
		return fmt.Errorf("%w: need -video and -preset", errUsage)
	}
	opts := scene.Options{Width: *width, Height: *height, FPS: *fps, DurationScale: *scaleF, Seed: *seed}
	var spec *scene.Spec
	for _, p := range scene.Presets(opts) {
		if p.Spec.Name == *preset {
			s := p.Spec
			spec = &s
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("%w: unknown preset %q", errUsage, *preset)
	}
	v, err := scene.Generate(*spec)
	if err != nil {
		return err
	}
	if *to < 0 || *to > spec.NumFrames() {
		*to = spec.NumFrames()
	}
	if *from < 0 || *from >= *to {
		return fmt.Errorf("%w: empty scene window [%d,%d)", errUsage, *from, *to)
	}
	frames := v.Frames(*from, *to)
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	if *create {
		err := b.CreateLiveContext(ctx, *video, frames[0].W, frames[0].H, spec.FPS, nil)
		// Idempotent on purpose: a chunked append loop passes -create on
		// every call and only the first one wins.
		if err != nil && !errors.Is(err, tasm.ErrVideoExists) {
			return err
		}
	}
	st, err := b.AppendContext(ctx, *video, frames)
	if err != nil {
		return err
	}
	fmt.Printf("appended %d frames to %s: %d SOTs, %d KiB, encode %s, head now %d\n",
		st.Frames, *video, st.SOTs, st.Bytes/1024, st.EncodeWall.Round(1e6), st.FrameCount)
	return nil
}

func cmdSubscribe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("subscribe", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	video := fs.String("video", "", "video name")
	from := fs.Int("from", 0, "resume watermark: first frame index to deliver (last seen + 1 to continue a dropped tail)")
	max := fs.Int("max", 0, "stop after this many frames (0 = until sealed or interrupted)")
	quiet := fs.Bool("quiet", false, "suppress the per-frame lines; print only the summary")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *video == "" {
		return fmt.Errorf("%w: missing -video", errUsage)
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	// The two backends return distinct concrete cursors; both satisfy
	// tailCursor.
	var cur tailCursor
	switch be := b.(type) {
	case *client.Client:
		c, err := be.Subscribe(ctx, *video, *from)
		if err != nil {
			return err
		}
		cur = c
	case localBackend:
		c, err := be.Subscribe(ctx, *video, *from)
		if err != nil {
			return err
		}
		cur = c
	default:
		return fmt.Errorf("subscribe: unsupported backend %T", b)
	}
	defer cur.Close()
	n := 0
	for cur.Next() {
		r := cur.Result()
		if !*quiet {
			// The crc is the replay check: the same frame re-scanned later
			// (or tailed again from the same watermark) prints the same sum.
			h := crc32.NewIEEE()
			h.Write(r.Pixels.Y)
			h.Write(r.Pixels.Cb)
			h.Write(r.Pixels.Cr)
			fmt.Printf("frame %6d  %dx%d  crc32 %08x\n", r.Index, r.Pixels.W, r.Pixels.H, h.Sum32())
		}
		n++
		if *max > 0 && n >= *max {
			break
		}
	}
	if *max == 0 || n < *max {
		if err := cur.Err(); err != nil {
			return err
		}
	}
	fmt.Printf("subscribe %s: %d frames delivered\n", *video, n)
	return nil
}

func cmdSeal(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("seal", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	video := fs.String("video", "", "live video name")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *video == "" {
		return fmt.Errorf("%w: missing -video", errUsage)
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	if err := b.SealContext(ctx, *video); err != nil {
		return err
	}
	fmt.Printf("sealed %s (appends now fail; caught-up subscribers terminate cleanly)\n", *video)
	return nil
}

func cmdRetention(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("retention", flag.ContinueOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	addr := addrFlag(fs)
	video := fs.String("video", "", "live video name")
	maxAge := fs.Int("max-age-frames", 0, "expire SOTs older than this many frames behind the append head (0 = unbounded)")
	maxBytes := fs.Int64("max-bytes", 0, "expire oldest SOTs while the video exceeds this byte footprint (0 = unbounded)")
	clear := fs.Bool("clear", false, "remove the retention policy (keep everything)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if *video == "" {
		return fmt.Errorf("%w: missing -video", errUsage)
	}
	if *clear && (*maxAge > 0 || *maxBytes > 0) {
		return fmt.Errorf("%w: -clear excludes -max-age-frames/-max-bytes", errUsage)
	}
	if !*clear && *maxAge == 0 && *maxBytes == 0 {
		return fmt.Errorf("%w: set -max-age-frames and/or -max-bytes, or -clear", errUsage)
	}
	var pol *tasm.RetentionPolicy
	if !*clear {
		pol = &tasm.RetentionPolicy{MaxAgeFrames: *maxAge, MaxBytes: *maxBytes}
	}
	b, err := addr.openBackend(*dir)
	if err != nil {
		return err
	}
	defer b.Close()
	rep, err := b.SetRetentionContext(ctx, *video, pol)
	if err != nil {
		return err
	}
	if *clear {
		fmt.Printf("retention cleared on %s\n", *video)
		return nil
	}
	fmt.Printf("retention on %s: %s — trimmed %d SOTs now, first stored frame %d, freed %d KiB\n",
		*video, retentionString(pol), len(rep.Removed), rep.TrimmedTo, rep.FreedBytes/1024)
	return nil
}
