// Command tasmctl operates a TASM storage directory: ingest synthetic
// videos, run (simulated) object detection to populate the semantic index,
// execute Scan queries, inspect the catalog, and re-tile SOTs.
//
// Usage:
//
//	tasmctl ingest -dir db -preset visualroad-2k-a
//	tasmctl detect -dir db -video visualroad-2k-a -detector yolo
//	tasmctl query  -dir db "SELECT car FROM visualroad-2k-a WHERE 0 <= t < 60"
//	tasmctl info   -dir db
//	tasmctl retile -dir db -video visualroad-2k-a -sot 0 -labels car,person
//	tasmctl fsck   -dir db
//	tasmctl gc     -dir db
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/detect"
	"github.com/tasm-repro/tasm/internal/scene"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	// Long-running subcommands honor SIGINT/SIGTERM through the context:
	// the first signal cancels in-flight decodes/encodes at a frame
	// boundary (no mid-write corpses, leases released). Once the context
	// is down, default signal handling is restored, so a second signal
	// kills a command stuck in a non-cancellable section the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "ingest":
		err = cmdIngest(ctx, args)
	case "detect":
		err = cmdDetect(ctx, args)
	case "query":
		err = cmdQuery(ctx, args)
	case "info":
		err = cmdInfo(args)
	case "retile":
		err = cmdRetile(ctx, args)
	case "gc":
		err = cmdGC(ctx, args)
	case "fsck":
		err = cmdFsck(ctx, args)
	default:
		usage()
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "tasmctl %s: interrupted (state is consistent; partial work was rolled back or left committed per operation)\n", cmd)
			os.Exit(130)
		}
		fmt.Fprintf(os.Stderr, "tasmctl %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: tasmctl <command> [flags]

commands:
  ingest  -dir D -preset P [-video NAME] [-w -h -fps -scale -seed]
  detect  -dir D -video V [-detector yolo|tiny|bgsub|yolo-every5] [-from N -to N]
  query   -dir D "SELECT <pred> FROM <video> [WHERE a <= t < b]"
  info    -dir D [-video V]
  retile  -dir D -video V -sot N -labels a,b
  gc      -dir D            reclaim dead SOT versions and staging debris
  fsck    -dir D [-repair]  verify manifests against tile files on disk`)
	os.Exit(2)
}

// specPath stores the generating scene spec beside the database so detect
// can regenerate ground truth for the simulated detectors.
func specPath(dir, video string) string {
	return filepath.Join(dir, video+".spec.json")
}

func openSM(dir string) (*tasm.StorageManager, error) {
	return tasm.Open(dir, tasm.WithMinTileSize(32, 32))
}

func cmdIngest(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	preset := fs.String("preset", "", "scene preset name (see tasm-datagen)")
	name := fs.String("video", "", "stored video name (default preset name)")
	width := fs.Int("w", 320, "width")
	height := fs.Int("h", 180, "height")
	fps := fs.Int("fps", 30, "frames per second")
	scaleF := fs.Float64("scale", 1.0, "duration scale")
	seed := fs.Uint64("seed", 42, "seed")
	fs.Parse(args)
	if *preset == "" {
		return fmt.Errorf("missing -preset")
	}
	opts := scene.Options{Width: *width, Height: *height, FPS: *fps, DurationScale: *scaleF, Seed: *seed}
	var spec *scene.Spec
	for _, p := range scene.Presets(opts) {
		if p.Spec.Name == *preset {
			s := p.Spec
			spec = &s
			break
		}
	}
	if spec == nil {
		return fmt.Errorf("unknown preset %q", *preset)
	}
	if *name != "" {
		spec.Name = *name
	}
	v, err := scene.Generate(*spec)
	if err != nil {
		return err
	}
	// One-second GOPs (and thus SOTs), the default in most encoders.
	sm, err := tasm.Open(*dir, tasm.WithMinTileSize(32, 32), tasm.WithGOPLength(spec.FPS))
	if err != nil {
		return err
	}
	defer sm.Close()
	st, err := sm.IngestContext(ctx, spec.Name, v.Frames(0, spec.NumFrames()), spec.FPS)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(specPath(*dir, spec.Name), data, 0o644); err != nil {
		return err
	}
	fmt.Printf("ingested %s: %d frames, %d SOTs, %d KiB, encode %s\n",
		spec.Name, spec.NumFrames(), st.SOTs, st.Bytes/1024, st.EncodeWall.Round(1e6))
	return nil
}

func cmdDetect(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	video := fs.String("video", "", "video name")
	detName := fs.String("detector", "yolo", "yolo | tiny | bgsub | yolo-every5")
	from := fs.Int("from", 0, "first frame")
	to := fs.Int("to", -1, "end frame (exclusive; -1 = all)")
	fs.Parse(args)
	if *video == "" {
		return fmt.Errorf("missing -video")
	}
	data, err := os.ReadFile(specPath(*dir, *video))
	if err != nil {
		return fmt.Errorf("no saved spec for %q (ingest with tasmctl): %w", *video, err)
	}
	var spec scene.Spec
	if err := json.Unmarshal(data, &spec); err != nil {
		return err
	}
	v, err := scene.Generate(spec)
	if err != nil {
		return err
	}
	if *to < 0 || *to > spec.NumFrames() {
		*to = spec.NumFrames()
	}
	var det detect.Detector
	lat := detect.DefaultLatencies()
	switch *detName {
	case "yolo":
		det = &detect.Oracle{Lat: lat}
	case "tiny":
		det = &detect.Tiny{Lat: lat}
	case "bgsub":
		det = &detect.BackgroundSub{Lat: lat}
	case "yolo-every5":
		det = &detect.EveryN{Inner: &detect.Oracle{Lat: lat}, N: 5}
	default:
		return fmt.Errorf("unknown detector %q", *detName)
	}
	ds, simLat := detect.Run(det, v, *from, *to)
	// Honor a signal before touching the index: the batch insert plus the
	// MarkDetected records below are one logical write.
	if err := ctx.Err(); err != nil {
		return err
	}
	sm, err := openSM(*dir)
	if err != nil {
		return err
	}
	defer sm.Close()
	if err := sm.AddDetections(*video, ds); err != nil {
		return err
	}
	labels := map[string]bool{}
	for _, d := range ds {
		labels[d.Label] = true
	}
	for label := range labels {
		if err := sm.MarkDetected(*video, label, *from, *to); err != nil {
			return err
		}
	}
	fmt.Printf("%s over frames [%d,%d): %d detections, %d labels, simulated latency %s\n",
		det.Name(), *from, *to, len(ds), len(labels), simLat.Round(1e6))
	return nil
}

func cmdQuery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	adaptive := fs.Bool("adaptive", false, "enable regret-based adaptive tiling")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("expected one SQL argument")
	}
	var opts []tasm.Option
	opts = append(opts, tasm.WithMinTileSize(32, 32))
	if *adaptive {
		opts = append(opts, tasm.WithAdaptiveTiling())
	}
	sm, err := tasm.Open(*dir, opts...)
	if err != nil {
		return err
	}
	defer sm.Close()
	res, st, err := sm.ScanSQLContext(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("regions: %d  frames touched: %d  SOTs: %d\n", len(res), countFrames(res), st.SOTsTouched)
	fmt.Printf("decode: %s (%d tiles, %d frames, %.2f Mpx)  assemble: %s  index: %s\n",
		st.DecodeWall.Round(1e4), st.TilesDecoded, st.FramesDecoded,
		float64(st.PixelsDecoded)/1e6, st.AssembleWall.Round(1e4), st.IndexWall.Round(1e4))
	return nil
}

func cmdGC(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gc", flag.ExitOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	fs.Parse(args)
	sm, err := openSM(*dir)
	if err != nil {
		return err
	}
	defer sm.Close()
	// The sweep itself is atomic under the store lock; honor a signal
	// that arrived before it started rather than beginning new work.
	if err := ctx.Err(); err != nil {
		return err
	}
	rep, err := sm.GC()
	if err != nil {
		return err
	}
	for _, p := range rep.Removed {
		fmt.Printf("removed  %s\n", p)
	}
	for _, p := range rep.Deferred {
		fmt.Printf("deferred %s (pinned by a read lease)\n", p)
	}
	fmt.Printf("gc: %d removed, %d deferred\n", len(rep.Removed), len(rep.Deferred))
	return nil
}

func cmdFsck(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	repair := fs.Bool("repair", false, "re-materialize box→tile index pointers from live layouts")
	fs.Parse(args)
	sm, err := openSM(*dir)
	if err != nil {
		return err
	}
	defer sm.Close()
	if *repair {
		videos, err := sm.Videos()
		if err != nil {
			return err
		}
		for _, v := range videos {
			// Each repair is atomic per video; stop between videos on a
			// signal instead of mid-store.
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := sm.RepairPointers(v); err != nil {
				return err
			}
			fmt.Printf("repaired pointers: %s\n", v)
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	rep, err := sm.FSCK()
	if err != nil {
		return err
	}
	for _, p := range rep.Problems {
		fmt.Printf("PROBLEM  %s\n", p)
	}
	for _, p := range rep.Orphans {
		fmt.Printf("orphan   %s (gc will reclaim)\n", p)
	}
	fmt.Printf("fsck: %d videos, %d SOTs, %d tiles, %d leases, %d problems, %d orphans\n",
		rep.Videos, rep.SOTs, rep.Tiles, rep.Leases, len(rep.Problems), len(rep.Orphans))
	if !rep.OK() {
		return fmt.Errorf("%d integrity problems", len(rep.Problems))
	}
	return nil
}

func countFrames(res []tasm.RegionResult) int {
	frames := map[int]bool{}
	for _, r := range res {
		frames[r.Frame] = true
	}
	return len(frames)
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	video := fs.String("video", "", "show one video in detail")
	fs.Parse(args)
	sm, err := openSM(*dir)
	if err != nil {
		return err
	}
	defer sm.Close()
	if *video == "" {
		videos, err := sm.Videos()
		if err != nil {
			return err
		}
		for _, name := range videos {
			meta, err := sm.Meta(name)
			if err != nil {
				return err
			}
			bytes, _ := sm.VideoBytes(name)
			labels, _ := sm.Labels(name)
			fmt.Printf("%-24s %dx%d @%dfps  %d frames  %d SOTs  %d KiB  labels=%v\n",
				name, meta.W, meta.H, meta.FPS, meta.FrameCount, len(meta.SOTs), bytes/1024, labels)
		}
		return nil
	}
	meta, err := sm.Meta(*video)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %dx%d @%dfps, %d frames, GOP %d\n", meta.Name, meta.W, meta.H, meta.FPS, meta.FrameCount, meta.GOPLength)
	for _, sot := range meta.SOTs {
		kind := "untiled"
		if !sot.L.IsSingle() {
			kind = fmt.Sprintf("%dx%d tiles", sot.L.Rows(), sot.L.Cols())
		}
		fmt.Printf("  SOT %2d frames [%4d,%4d)  %-14s retiles=%d\n", sot.ID, sot.From, sot.To, kind, sot.Retiles)
	}
	return nil
}

func cmdRetile(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("retile", flag.ExitOnError)
	dir := fs.String("dir", "tasmdb", "storage directory")
	video := fs.String("video", "", "video name")
	sot := fs.Int("sot", -1, "SOT id")
	labels := fs.String("labels", "", "comma-separated labels to tile around")
	fs.Parse(args)
	if *video == "" || *sot < 0 || *labels == "" {
		return fmt.Errorf("need -video, -sot and -labels")
	}
	sm, err := openSM(*dir)
	if err != nil {
		return err
	}
	defer sm.Close()
	l, err := sm.DesignLayout(*video, *sot, strings.Split(*labels, ","))
	if err != nil {
		return err
	}
	if l.IsSingle() {
		fmt.Println("no beneficial layout for those labels (staying untiled)")
		return nil
	}
	rs, err := sm.RetileSOTContext(ctx, *video, *sot, l)
	if err != nil {
		return err
	}
	fmt.Printf("retiled %s SOT %d to %dx%d tiles (decode %s, encode %s, %d KiB)\n",
		*video, *sot, l.Rows(), l.Cols(), rs.DecodeWall.Round(1e6), rs.EncodeWall.Round(1e6), rs.Bytes/1024)
	return nil
}
