// Command tasmd serves a TASM storage directory over HTTP: the unary
// operations (ingest, retile, delete, gc, fsck, catalog, stats) as
// JSON endpoints and Scan/ScanSQL/DecodeFrames as NDJSON streams that
// flush per result — the network face of the storage manager, speaking
// the wire contract in internal/rpcwire.
//
// Usage:
//
//	tasmd -dir db                      # serve db on :7878
//	tasmd -dir db -addr 127.0.0.1:9000 -cache 268435456 -parallelism 4
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes, in-
// flight requests (including streams) get -drain to finish, then the
// store closes. A second signal kills the process the usual way.
//
// The daemon must own its storage directory exclusively. The store has
// no cross-process locking (its caches — parsed manifests, decoded
// tiles, the semantic index's B-tree — live in one process), so while
// tasmd is running, operate the directory only through the daemon
// (`tasmctl -addr …`); a concurrent `tasmctl -dir` against the same
// directory reads stale state and its writes corrupt the daemon's
// caches.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7878", "listen address (host:port)")
		dir         = flag.String("dir", "", "storage directory (required)")
		cache       = flag.Int64("cache", 0, "decoded-tile cache budget in bytes (0 = disabled)")
		parallelism = flag.Int("parallelism", 0, "concurrent tile decodes per request (0 = sequential, the paper's default)")
		maxInflight = flag.Int("max-inflight", server.DefaultMaxInflight, "concurrent requests before 503 overloaded")
		drain       = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")
		quiet       = flag.Bool("quiet", false, "suppress access logs")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "tasmd: missing -dir")
		flag.Usage()
		os.Exit(3)
	}

	// -quiet silences only the per-request access lines; diagnostics
	// (recovered panics, handler errors) always reach stderr.
	logger := log.New(os.Stderr, "tasmd ", log.LstdFlags|log.Lmsgprefix)
	accessLogger := logger
	if *quiet {
		accessLogger = log.New(io.Discard, "", 0)
	}

	opts := []tasm.Option{tasm.WithMinTileSize(32, 32)}
	if *cache > 0 {
		opts = append(opts, tasm.WithCacheBudget(*cache))
	}
	if *parallelism > 0 {
		opts = append(opts, tasm.WithParallelism(*parallelism))
	}
	sm, err := tasm.Open(*dir, opts...)
	if err != nil {
		logger.Fatalf("open %s: %v", *dir, err)
	}

	// The same signal pattern as tasmctl: the first SIGINT/SIGTERM
	// cancels the context (starting the drain), then default handling
	// is restored so a second signal kills a wedged process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := server.New(sm, server.Config{Logger: logger, AccessLogger: accessLogger, MaxInflight: *maxInflight})
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Streaming scans are long-lived on purpose: no write timeout.
		// Headers and idle connections still get bounds.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		BaseContext:       func(net.Listener) context.Context { return context.Background() },
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		sm.Close()
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	logger.Printf("serving %s on http://%s (cache %d B, parallelism %d, max-inflight %d)",
		*dir, ln.Addr(), *cache, *parallelism, *maxInflight)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	exit := 0
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			exit = 1
		}
	case <-ctx.Done():
		stop() // restore default handling: a second signal force-kills
		logger.Printf("signal received; draining for up to %s", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			// Streams that outlived the budget: close their
			// connections — the request contexts cancel, cursors
			// release their leases on the way down.
			logger.Printf("drain budget exceeded (%v); closing connections", err)
			srv.Close()
		}
	}
	if err := sm.Close(); err != nil {
		logger.Printf("close store: %v", err)
		exit = 1
	}
	logger.Printf("stopped")
	os.Exit(exit)
}
