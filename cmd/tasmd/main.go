// Command tasmd serves a TASM storage directory over HTTP: the unary
// operations (ingest, retile, delete, gc, fsck, catalog, stats) as
// JSON endpoints and Scan/ScanSQL/DecodeFrames as NDJSON streams that
// flush per result — the network face of the storage manager, speaking
// the wire contract in internal/rpcwire.
//
// Usage:
//
//	tasmd -dir db                      # serve db on :7878
//	tasmd -dir db -addr 127.0.0.1:9000 -cache 268435456 -parallelism 4
//	tasmd -dir db -token-file tokens -tenant-inflight 16   # multi-tenant
//	tasmd -dir db -tls-cert cert.pem -tls-key key.pem      # HTTPS
//	tasmd -dir db -autotile -retile-io-budget 8388608      # background re-tiler
//
// With -autotile every served scan feeds the workload observer and a
// background goroutine re-tiles hot SOTs toward the observed query
// distribution (TASM §4.4), throttled to -retile-io-budget bytes/sec.
// Inspect and gate it at runtime via GET /v1/autotile/status and POST
// /v1/autotile/{pause,resume} (tasmctl autotile status|pause|resume).
//
// SIGINT/SIGTERM starts a graceful drain: the listener closes, in-
// flight requests (including streams) get -drain to finish, then the
// store closes. A second signal kills the process the usual way.
//
// The daemon owns its storage directory exclusively, and that
// ownership is enforced: opening the store takes an flock lease on it,
// so a concurrent `tasmctl -dir` against a live daemon (whose caches —
// parsed manifests, decoded tiles, the semantic index's B-tree — live
// in this process) fails fast with a store-locked error instead of
// reading stale state. Operate a served directory through the daemon
// (`tasmctl -addr …`); `-force` bypasses the lease for recovery only.
//
// With -token-file the daemon requires bearer-token auth and carves
// the inflight limit into per-tenant quotas (-tenant-inflight), so one
// tenant's burst cannot starve the rest.
package main

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/server"
)

func main() {
	var (
		addr           = flag.String("addr", ":7878", "listen address (host:port)")
		dir            = flag.String("dir", "", "storage directory (required)")
		cache          = flag.Int64("cache", 0, "decoded-tile cache budget in bytes (0 = disabled)")
		parallelism    = flag.Int("parallelism", 0, "concurrent tile decodes per request (0 = sequential, the paper's default)")
		maxInflight    = flag.Int("max-inflight", server.DefaultMaxInflight, "concurrent requests before 503 overloaded")
		tokenFile      = flag.String("token-file", "", "tenant table (one tenant:token per line); empty = open daemon, no auth")
		tenantInflight = flag.Int("tenant-inflight", 0, "per-tenant concurrent requests before 503 (0 = max-inflight/4; requires -token-file)")
		tlsCert        = flag.String("tls-cert", "", "TLS certificate file (PEM); with -tls-key, serve HTTPS")
		tlsKey         = flag.String("tls-key", "", "TLS private key file (PEM)")
		tlsClientCA    = flag.String("tls-client-ca", "", "CA bundle (PEM) for verifying client certificates; requires -tls-cert/-tls-key and makes TLS mutual — unauthenticated handshakes are refused")
		drain          = flag.Duration("drain", 15*time.Second, "graceful-shutdown budget for in-flight requests")
		quiet          = flag.Bool("quiet", false, "suppress access logs")
		autotile       = flag.Bool("autotile", false, "run the background workload-adaptive re-tiler")
		retileIOBudget = flag.Int64("retile-io-budget", 0, "re-tile I/O throttle in bytes/sec (0 = unthrottled; requires -autotile)")
		slowQuery      = flag.Duration("slow-query-threshold", 0, "log requests at or above this wall time as slow queries (0 = disabled)")
		debugAddr      = flag.String("debug-addr", "", "serve net/http/pprof on this loopback address (empty = disabled)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "tasmd: missing -dir")
		flag.Usage()
		os.Exit(3)
	}

	// -quiet silences only the per-request access lines; diagnostics
	// (recovered panics, handler errors) always reach stderr.
	logger := log.New(os.Stderr, "tasmd ", log.LstdFlags|log.Lmsgprefix)
	accessLogger := logger
	if *quiet {
		accessLogger = log.New(io.Discard, "", 0)
	}

	if (*tlsCert == "") != (*tlsKey == "") {
		logger.Fatalf("-tls-cert and -tls-key must be set together")
	}
	var tlsCfg *tls.Config
	if *tlsClientCA != "" {
		if *tlsCert == "" {
			logger.Fatalf("-tls-client-ca requires -tls-cert and -tls-key (mTLS needs a server identity too)")
		}
		pool, err := loadClientCAPool(*tlsClientCA)
		if err != nil {
			logger.Fatalf("%v", err)
		}
		tlsCfg = &tls.Config{ClientCAs: pool, ClientAuth: tls.RequireAndVerifyClientCert}
	}

	var tenants map[string]string
	if *tokenFile != "" {
		var err error
		if tenants, err = server.ParseTokenFile(*tokenFile); err != nil {
			logger.Fatalf("%v", err)
		}
	} else if *tenantInflight > 0 {
		logger.Fatalf("-tenant-inflight requires -token-file (quotas are per tenant)")
	}

	if *retileIOBudget > 0 && !*autotile {
		logger.Fatalf("-retile-io-budget requires -autotile (there is no re-tiler to throttle)")
	}

	opts := []tasm.Option{tasm.WithMinTileSize(32, 32)}
	if *cache > 0 {
		opts = append(opts, tasm.WithCacheBudget(*cache))
	}
	if *parallelism > 0 {
		opts = append(opts, tasm.WithParallelism(*parallelism))
	}
	if *autotile {
		opts = append(opts,
			tasm.WithAdaptiveTiling(),
			tasm.WithRetileIOBudget(*retileIOBudget),
			tasm.WithAutotileLogger(logger))
	}
	// Open takes the store's ownership lease; a tasmctl -dir (or second
	// tasmd) already holding it fails here with ErrStoreLocked naming
	// the owner.
	sm, err := tasm.Open(*dir, opts...)
	if err != nil {
		logger.Fatalf("open %s: %v", *dir, err)
	}

	// The same signal pattern as tasmctl: the first SIGINT/SIGTERM
	// cancels the context (starting the drain), then default handling
	// is restored so a second signal kills a wedged process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	handler := server.New(sm, server.Config{
		Logger: logger, AccessLogger: accessLogger,
		MaxInflight: *maxInflight,
		Tenants:     tenants, TenantMaxInflight: *tenantInflight,
		SlowQueryThreshold: *slowQuery,
	})

	// The profiling surface is its own loopback-only listener, never a
	// route on the public one: pprof has no auth and -token-file must
	// not become a profile-exfiltration vector.
	if *debugAddr != "" {
		if _, err := obs.StartDebugServer(*debugAddr, logger); err != nil {
			sm.Close()
			logger.Fatalf("%v", err)
		}
	}

	// SIGHUP re-reads the token file and swaps the tenant table in place:
	// tokens rotate without dropping in-flight streams or restarting the
	// daemon. A parse failure keeps the current table — a daemon serving
	// with yesterday's tokens beats one that locked everyone out over a
	// typo.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if *tokenFile == "" {
				logger.Printf("SIGHUP ignored: no -token-file to reload")
				continue
			}
			reloaded, err := server.ParseTokenFile(*tokenFile)
			if err != nil {
				logger.Printf("SIGHUP reload failed, keeping current tenant table: %v", err)
				continue
			}
			handler.SetTenants(reloaded)
			logger.Printf("SIGHUP: reloaded %s (%d tokens)", *tokenFile, len(reloaded))
		}
	}()

	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Streaming scans are long-lived on purpose: no write timeout.
		// Headers and idle connections still get bounds.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		BaseContext:       func(net.Listener) context.Context { return context.Background() },
		// Non-nil only for mTLS: ServeTLS fills in the certificate pair.
		TLSConfig: tlsCfg,
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		sm.Close()
		logger.Fatalf("listen %s: %v", *addr, err)
	}
	authMode := "open (no auth)"
	if len(tenants) > 0 {
		distinct := map[string]bool{}
		for _, t := range tenants {
			distinct[t] = true
		}
		authMode = fmt.Sprintf("bearer auth: %d tokens, %d tenants", len(tenants), len(distinct))
	}
	scheme := "http"
	if *tlsCert != "" {
		scheme = "https"
		if *tlsClientCA != "" {
			authMode += ", mTLS client certs"
		}
	}
	tileMode := "manual tiling"
	if *autotile {
		tileMode = "autotile"
		if *retileIOBudget > 0 {
			tileMode = fmt.Sprintf("autotile @ %d B/s", *retileIOBudget)
		}
	}
	logger.Printf("serving %s on %s://%s (cache %d B, parallelism %d, max-inflight %d, %s, %s)",
		*dir, scheme, ln.Addr(), *cache, *parallelism, *maxInflight, authMode, tileMode)

	serveErr := make(chan error, 1)
	go func() {
		if *tlsCert != "" {
			serveErr <- srv.ServeTLS(ln, *tlsCert, *tlsKey)
		} else {
			serveErr <- srv.Serve(ln)
		}
	}()

	exit := 0
	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("serve: %v", err)
			exit = 1
		}
	case <-ctx.Done():
		stop() // restore default handling: a second signal force-kills
		logger.Printf("signal received; draining for up to %s", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(shutdownCtx)
		cancel()
		if err != nil {
			// Streams that outlived the budget: close their
			// connections — the request contexts cancel, cursors
			// release their leases on the way down.
			logger.Printf("drain budget exceeded (%v); closing connections", err)
			srv.Close()
		}
	}
	if err := sm.Close(); err != nil {
		logger.Printf("close store: %v", err)
		exit = 1
	}
	logger.Printf("stopped")
	os.Exit(exit)
}

// loadClientCAPool reads a PEM CA bundle into the pool mTLS verifies
// client certificates against.
func loadClientCAPool(path string) (*x509.CertPool, error) {
	pem, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading -tls-client-ca: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("-tls-client-ca %s: no CA certificates found", path)
	}
	return pool, nil
}
