package tasm_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/scene"
)

func newAPIManager(t *testing.T) *tasm.StorageManager {
	t.Helper()
	sm, err := tasm.Open(t.TempDir(), tasm.WithGOPLength(10), tasm.WithMinTileSize(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sm.Close() })
	v, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 3,
		Classes: []scene.ClassMix{{Class: scene.Car, Count: 2, SizeFrac: 0.18}},
		Seed:    7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.IngestContext(context.Background(), "traffic", v.Frames(0, v.Spec.NumFrames()), v.Spec.FPS); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < v.Spec.NumFrames(); f++ {
		for _, tr := range v.GroundTruth(f) {
			if err := sm.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return sm
}

// TestPublicCursorStreamsScan drives the exported streaming API end to
// end: ScanSQLCursor yields the exact regions ScanSQL materializes, in
// the same order, with working Close-after-drain semantics.
func TestPublicCursorStreamsScan(t *testing.T) {
	sm := newAPIManager(t)
	const sql = "SELECT car FROM traffic WHERE 0 <= t < 30"
	ref, _, err := sm.ScanSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("no reference results")
	}
	cur, err := sm.ScanSQLCursor(context.Background(), sql)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	i := 0
	for cur.Next() {
		r := cur.Result()
		if i >= len(ref) {
			t.Fatalf("cursor yielded more than %d regions", len(ref))
		}
		if r.Frame != ref[i].Frame || r.Region != ref[i].Region || !bytes.Equal(r.Pixels.Y, ref[i].Pixels.Y) {
			t.Fatalf("region %d differs from ScanSQL", i)
		}
		i++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(ref) {
		t.Fatalf("cursor yielded %d regions, ScanSQL returned %d", i, len(ref))
	}
	if st := cur.Stats(); st.RegionsReturned != len(ref) {
		t.Fatalf("cursor stats RegionsReturned = %d, want %d", st.RegionsReturned, len(ref))
	}
}

// TestPublicFrameCursor streams whole frames through the exported API.
func TestPublicFrameCursor(t *testing.T) {
	sm := newAPIManager(t)
	ref, _, err := sm.DecodeFrames("traffic", 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := sm.DecodeFramesCursor(context.Background(), "traffic", 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	n := 0
	for cur.Next() {
		fr := cur.Result()
		if fr.Index != n || !bytes.Equal(fr.Pixels.Y, ref[n].Y) {
			t.Fatalf("streamed frame %d (index %d) differs", n, fr.Index)
		}
		n++
	}
	if err := cur.Err(); err != nil || n != len(ref) {
		t.Fatalf("drained %d frames (err %v), want %d", n, err, len(ref))
	}
}

// TestPublicErrorTaxonomy asserts the exported sentinels classify
// failures surfaced through the public API.
func TestPublicErrorTaxonomy(t *testing.T) {
	sm := newAPIManager(t)
	if _, _, err := sm.ScanSQL("SELECT car FROM nosuch"); !errors.Is(err, tasm.ErrVideoNotFound) {
		t.Errorf("missing video: %v, want tasm.ErrVideoNotFound", err)
	}
	if _, _, err := sm.ScanSQL("SELECT car FROM traffic WHERE 50 <= t < 60"); !errors.Is(err, tasm.ErrInvalidRange) {
		t.Errorf("bad range: %v, want tasm.ErrInvalidRange", err)
	}
	if _, err := sm.DesignLayout("traffic", 99, []string{"car"}); !errors.Is(err, tasm.ErrSOTNotFound) {
		t.Errorf("missing SOT: %v, want tasm.ErrSOTNotFound", err)
	}
	if _, err := sm.Ingest("traffic", nil, 10); !errors.Is(err, tasm.ErrNoFrames) {
		t.Errorf("empty ingest: %v, want tasm.ErrNoFrames", err)
	}
	if err := sm.DeleteVideo("nosuch"); !errors.Is(err, tasm.ErrVideoNotFound) {
		t.Errorf("missing delete: %v, want tasm.ErrVideoNotFound", err)
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := sm.DecodeFramesContext(ctx, "traffic", 0, 30); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("expired deadline: %v, want context.DeadlineExceeded", err)
	}
}

// TestPublicCursorCancel cancels a streaming scan mid-flight through the
// public API and asserts the GC sees no lingering leases.
func TestPublicCursorCancel(t *testing.T) {
	sm := newAPIManager(t)
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := sm.ScanSQLCursor(ctx, "SELECT car FROM traffic WHERE 0 <= t < 30")
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("no first result: %v", cur.Err())
	}
	cancel()
	for cur.Next() {
	}
	if err := cur.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
	rep, err := sm.GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deferred) != 0 {
		t.Fatalf("GC defers after cancelled cursor: %v", rep.Deferred)
	}
}
