// Amber alert: the paper's motivating application (§1, §4.3). The query
// classes are known upfront — an amber alert system always asks about
// vehicles — but object locations are not. Detection happens lazily at
// query time; TASM tiles each SOT with the KQKO optimization as soon as
// the semantic index has complete vehicle locations for it, and later
// queries over the same section get much cheaper.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/detect"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/stats"
)

func main() {
	dir, err := os.MkdirTemp("", "tasm-amber-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A 12-second highway feed.
	video, err := scene.Generate(scene.Spec{
		Name: "highway-cam-3", W: 320, H: 180, FPS: 15, DurationSec: 12,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 4, SizeFrac: 0.11, Churn: 0.4},
			{Class: scene.Person, Count: 2, SizeFrac: 0.13, Churn: 0.4},
		},
		Seed: 13,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := video.Spec.NumFrames()

	sm, err := tasm.Open(dir, tasm.WithGOPLength(15), tasm.WithMinTileSize(32, 32))
	if err != nil {
		log.Fatal(err)
	}
	defer sm.Close()
	if _, err := sm.Ingest("highway-cam-3", video.Frames(0, n), video.Spec.FPS); err != nil {
		log.Fatal(err)
	}

	// The workload is known: amber alerts ask about cars. Locations are
	// not, so the lazy tiler waits for per-SOT detection coverage.
	lazy := sm.NewLazyTiler([]string{scene.Car})
	detector := &detect.Oracle{Lat: detect.DefaultLatencies()}

	// Simulate a stream of investigator queries over random windows.
	rng := stats.NewRNG(99)
	var totalDecode, totalRetile time.Duration
	fmt.Println("query window        regions   decode    retiled")
	for i := 0; i < 12; i++ {
		start := rng.Intn(n - 30)
		sql := fmt.Sprintf("SELECT car FROM highway-cam-3 WHERE %d <= t < %d", start, start+30)

		// Query-time (lazy) detection: process any frames in the window
		// the detector has not seen, feeding the semantic index — the
		// metadata "byproduct of query execution" of §3.3.
		for f := start; f < start+30; f++ {
			done, err := sm.Detected("highway-cam-3", scene.Car, f, f+1)
			if err != nil {
				log.Fatal(err)
			}
			if done {
				continue
			}
			ds, _ := detector.Detect(video, f)
			if err := sm.AddDetections("highway-cam-3", ds); err != nil {
				log.Fatal(err)
			}
			for _, label := range []string{scene.Car, scene.Person} {
				if err := sm.MarkDetected("highway-cam-3", label, f, f+1); err != nil {
					log.Fatal(err)
				}
			}
		}

		res, st, err := sm.ScanSQL(sql)
		if err != nil {
			log.Fatal(err)
		}
		totalDecode += st.DecodeWall

		// After the query, tile any SOTs whose vehicles are now known.
		q, err := tasm.ParseQuery(sql)
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		retiled, err := lazy.ObserveQuery(q)
		if err != nil {
			log.Fatal(err)
		}
		if retiled > 0 {
			totalRetile += time.Since(t0)
		}
		fmt.Printf("cars in [%3d,%3d)  %4d   %8s   %d\n",
			start, start+30, len(res), st.DecodeWall.Round(time.Millisecond), retiled)
	}
	fmt.Printf("\ntotal decode %s, total retile %s\n",
		totalDecode.Round(time.Millisecond), totalRetile.Round(time.Millisecond))

	meta, err := sm.Meta("highway-cam-3")
	if err != nil {
		log.Fatal(err)
	}
	tiled := 0
	for _, sot := range meta.SOTs {
		if !sot.L.IsSingle() {
			tiled++
		}
	}
	fmt.Printf("%d/%d SOTs now tiled around vehicles\n", tiled, len(meta.SOTs))
}
