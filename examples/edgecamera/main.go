// Edge camera: the paper's third contribution (§4.3, "Edge tiling"). The
// camera knows which classes queries will target (cars), runs full YOLOv3
// on-device every five frames — all an embedded GPU can sustain at capture
// rate — designs tile layouts around the detections as frames arrive, and
// uploads pre-tiled video plus a pre-initialized semantic index. The VDBMS
// then answers even the *first* query cheaply, with no re-encode.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/detect"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/policy"
	"github.com/tasm-repro/tasm/internal/scene"
)

func main() {
	dir, err := os.MkdirTemp("", "tasm-edge-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// What the camera sees: a 10-second parking-lot feed.
	video, err := scene.Generate(scene.Spec{
		Name: "lot-cam", W: 320, H: 180, FPS: 15, DurationSec: 10,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 4, SizeFrac: 0.12, Churn: 0.3},
			{Class: scene.Person, Count: 2, SizeFrac: 0.14, Churn: 0.5},
		},
		Seed: 55,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := video.Spec.NumFrames()
	gop := video.Spec.FPS // one-second GOPs

	// --- On the camera -------------------------------------------------
	// The VDBMS communicated OQ = {car}. The embedded GPU runs full
	// YOLOv3 at ~16 FPS, so the camera detects every 5th captured frame.
	cam := &detect.EveryN{Inner: &detect.Oracle{Lat: detect.EdgeLatencies()}, N: 5}
	cons := layout.Constraints{FrameW: 320, FrameH: 180, Align: 16, MinWidth: 32, MinHeight: 32}
	layouts, detections, camLatency, err := policy.EdgeLayouts(video, cam, []string{scene.Car}, gop, cons, layout.Fine)
	if err != nil {
		log.Fatal(err)
	}
	tiledSOTs := 0
	for _, l := range layouts {
		if !l.IsSingle() {
			tiledSOTs++
		}
	}
	fmt.Printf("camera: detected on every 5th frame (%.1fs of on-device inference), designed %d/%d tiled SOT layouts\n",
		camLatency.Seconds(), tiledSOTs, len(layouts))

	// --- Upload to the VDBMS -------------------------------------------
	// The video arrives already tiled; the index arrives pre-initialized.
	sm, err := tasm.Open(dir, tasm.WithGOPLength(gop), tasm.WithMinTileSize(32, 32))
	if err != nil {
		log.Fatal(err)
	}
	defer sm.Close()
	if _, err := sm.IngestTiled("lot-cam", video.Frames(0, n), video.Spec.FPS, layouts); err != nil {
		log.Fatal(err)
	}
	if err := sm.AddDetections("lot-cam", detections); err != nil {
		log.Fatal(err)
	}

	// A second, conventional pipeline for comparison: same frames ingested
	// untiled with the same detections.
	smPlain, err := tasm.Open(dir+"-plain", tasm.WithGOPLength(gop), tasm.WithMinTileSize(32, 32))
	if err != nil {
		log.Fatal(err)
	}
	defer smPlain.Close()
	defer os.RemoveAll(dir + "-plain")
	if _, err := smPlain.Ingest("lot-cam", video.Frames(0, n), video.Spec.FPS); err != nil {
		log.Fatal(err)
	}
	if err := smPlain.AddDetections("lot-cam", detections); err != nil {
		log.Fatal(err)
	}

	// --- The very first query ------------------------------------------
	const sql = "SELECT car FROM lot-cam WHERE 0 <= t < 120"
	_, tiledStats, err := sm.ScanSQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	_, plainStats, err := smPlain.ScanSQL(sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first query on pre-tiled upload: %.2f Mpx in %s\n",
		float64(tiledStats.PixelsDecoded)/1e6, tiledStats.DecodeWall.Round(time.Millisecond))
	fmt.Printf("first query on untiled upload:   %.2f Mpx in %s\n",
		float64(plainStats.PixelsDecoded)/1e6, plainStats.DecodeWall.Round(time.Millisecond))
	imp := 100 * (1 - float64(tiledStats.DecodeWall)/float64(plainStats.DecodeWall))
	fmt.Printf("edge tiling made the first query %.0f%% faster, with zero server-side re-encoding\n", imp)

	// Storage comparison: tiles can also reduce upload size, since the
	// camera could choose to stream only object tiles.
	tiledBytes, _ := sm.VideoBytes("lot-cam")
	plainBytes, _ := smPlain.VideoBytes("lot-cam")
	fmt.Printf("stored size: pre-tiled %d KiB vs untiled %d KiB\n", tiledBytes/1024, plainBytes/1024)
}
