// Live ingest quickstart: a camera that records forever and is watched
// while recording. This program starts a live tasmd on a loopback
// listener, opens an append-mode video, and shows the four live
// guarantees:
//
//  1. subscribers see commits, never partial work — each GOP-length
//     chunk becomes visible atomically at its MVCC manifest flip, so a
//     tail delivers whole SOTs in order with no torn frames;
//  2. replay and tail are the same operation — a subscriber starting
//     from frame 0 mid-recording first drains history, then blocks for
//     new commits, with no seam between the two;
//  3. retention bounds history without pausing ingest — expired SOTs
//     age out on the append path and a late subscriber is clamped up
//     to the trim watermark;
//  4. sealing ends the stream cleanly — caught-up subscribers
//     terminate with no error, and the sealed video serves batch scans
//     from then on.
//
// Run it: go run ./examples/live
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	dir, err := os.MkdirTemp("", "tasm-live-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	const gop = 6
	sm, err := tasm.Open(dir, tasm.WithGOPLength(gop), tasm.WithMinTileSize(32, 32))
	if err != nil {
		log.Fatal(err)
	}
	defer sm.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(sm, server.Config{})}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	fmt.Printf("tasmd serving %s on http://%s\n", dir, ln.Addr())

	// The binary framing is the one a sustained camera feed should use:
	// raw pixel planes in both directions, no base64.
	c, err := client.New(ln.Addr().String(), client.WithEncoding(client.Binary))
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// The "camera": a synthetic scene pre-generated whole, fed to the
	// daemon a GOP at a time.
	v, err := scene.Generate(scene.Spec{
		Name: "cam0", W: 128, H: 64, FPS: 10, DurationSec: 6,
		Classes: []scene.ClassMix{{Class: scene.Car, Count: 1, SizeFrac: 0.25}},
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}
	total := v.Spec.NumFrames()

	// (1) Open the append-mode video with a retention policy: keep at
	// most the trailing 36 frames — older SOTs age out as the head
	// advances, without pausing ingest.
	pol := &tasm.RetentionPolicy{MaxAgeFrames: 36}
	if err := c.CreateLiveContext(ctx, "cam0", 128, 64, 10, pol); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created live video cam0 (retention: last %d frames)\n", pol.MaxAgeFrames)

	// (2) Subscribe from frame 0 before anything is appended. The tail
	// blocks until commits land, then delivers each one exactly once —
	// history first, then live, one seamless stream.
	cur, err := c.Subscribe(ctx, "cam0", 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	delivered := make(chan int, 1)
	go func() {
		n := 0
		for cur.Next() {
			n++
		}
		if err := cur.Err(); err != nil {
			fmt.Printf("subscriber ended with error: %v\n", err)
		} else {
			fmt.Printf("subscriber: clean end after %d frames (it kept pace, so it saw history retention later trimmed)\n", n)
		}
		delivered <- n
	}()

	// (3) Append the feed a GOP at a time. Each AppendContext call
	// returns once its SOTs are committed; the subscriber is already
	// holding them by the time the retention trim runs.
	for from := 0; from < total; from += gop {
		to := min(from+gop, total)
		st, err := c.AppendContext(ctx, "cam0", v.Frames(from, to))
		if err != nil {
			// A full commit queue is typed, retryable backpressure; with
			// client.WithRetry the client backs off by itself.
			if errors.Is(err, tasm.ErrIngestBackpressure) {
				fmt.Println("backpressure — retrying is the client's job, not a crash")
				continue
			}
			log.Fatal(err)
		}
		fmt.Printf("appended [%3d,%3d): %d SOT(s), head now %d\n", from, to, st.SOTs, st.FrameCount)
	}

	// The catalog shows what retention kept: FrameCount is the append
	// head, TrimmedTo the first frame still stored.
	meta, err := c.MetaContext(ctx, "cam0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalog: head %d, stored window [%d,%d), %d SOTs\n",
		meta.FrameCount, meta.TrimmedTo, meta.FrameCount, len(meta.SOTs))

	// (4) Seal: the video becomes an ordinary batch video. The caught-up
	// subscriber terminates cleanly; a new append is a typed conflict.
	if err := c.SealContext(ctx, "cam0"); err != nil {
		log.Fatal(err)
	}
	n := <-delivered
	if _, err := c.AppendContext(ctx, "cam0", v.Frames(0, 1)); !errors.Is(err, tasm.ErrVideoSealed) {
		log.Fatalf("append after seal: want tasm.ErrVideoSealed, got %v", err)
	}
	fmt.Printf("sealed cam0: append now fails with tasm.ErrVideoSealed; %d frames were delivered live\n", n)

	// A LATE subscriber asking for frame 0 is clamped up to the trim
	// watermark: trimmed history is gone, the stored window replays, and
	// the sealed end terminates the tail cleanly.
	late, err := c.Subscribe(ctx, "cam0", 0)
	if err != nil {
		log.Fatal(err)
	}
	defer late.Close()
	first, m := -1, 0
	for late.Next() {
		if first < 0 {
			first = late.Result().Index
		}
		m++
	}
	if err := late.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("late subscriber from 0: clamped to frame %d (the trim watermark), %d frames replayed, clean end\n", first, m)
}
