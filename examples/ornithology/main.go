// Ornithology: the paper's second motivating application (§1). A
// researcher looks for hummingbirds feeding at specific flowers, issuing
// conjunctive CNF queries: pixels must belong to a bird AND lie inside a
// feeder region. TASM evaluates the conjunction as intersections of
// indexed bounding boxes and decodes only the tiles containing them.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/scene"
)

func main() {
	dir, err := os.MkdirTemp("", "tasm-birds-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// An 8-second nature video with birds (and a boat passing on the
	// river behind them, to give the disjunction something to match).
	video, err := scene.Generate(scene.Spec{
		Name: "feeder-cam", W: 320, H: 180, FPS: 15, DurationSec: 8,
		Classes: []scene.ClassMix{
			{Class: scene.Bird, Count: 4, SizeFrac: 0.10, Churn: 0.5},
			{Class: scene.Boat, Count: 1, SizeFrac: 0.12},
		},
		Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := video.Spec.NumFrames()

	sm, err := tasm.Open(dir, tasm.WithGOPLength(15), tasm.WithMinTileSize(32, 32))
	if err != nil {
		log.Fatal(err)
	}
	defer sm.Close()
	if _, err := sm.Ingest("feeder-cam", video.Frames(0, n), video.Spec.FPS); err != nil {
		log.Fatal(err)
	}

	// Index bird/boat detections plus two static "feeder" regions the
	// researcher annotated by hand (human-driven analysis, §1).
	feeders := []tasm.Rect{tasm.R(40, 60, 120, 140), tasm.R(200, 30, 280, 110)}
	for f := 0; f < n; f++ {
		for _, tr := range video.GroundTruth(f) {
			if err := sm.AddMetadata("feeder-cam", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				log.Fatal(err)
			}
		}
		for _, fb := range feeders {
			if err := sm.AddMetadata("feeder-cam", f, "feeder", fb.X0, fb.Y0, fb.X1, fb.Y1); err != nil {
				log.Fatal(err)
			}
		}
	}

	queries := []string{
		// Any bird, anywhere.
		"SELECT bird FROM feeder-cam",
		// Birds at a feeder: conjunction = intersection of boxes.
		"SELECT bird AND feeder FROM feeder-cam",
		// Birds or boats, in the first two seconds.
		"SELECT bird|boat FROM feeder-cam WHERE 0 <= t < 30",
		// Equality syntax works too.
		"SELECT label='bird' AND label='feeder' FROM feeder-cam WHERE 30 <= t < 90",
	}
	fmt.Println("before tiling:")
	runAll(sm, queries)

	// Tile the whole video around birds (the class every query targets).
	meta, err := sm.Meta("feeder-cam")
	if err != nil {
		log.Fatal(err)
	}
	for _, sot := range meta.SOTs {
		l, err := sm.DesignLayout("feeder-cam", sot.ID, []string{scene.Bird})
		if err != nil {
			log.Fatal(err)
		}
		if l.IsSingle() {
			continue
		}
		if _, err := sm.RetileSOT("feeder-cam", sot.ID, l); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\nafter tiling around birds:")
	runAll(sm, queries)
}

func runAll(sm *tasm.StorageManager, queries []string) {
	for _, sql := range queries {
		res, st, err := sm.ScanSQL(sql)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-62s %4d regions  %.2f Mpx  %s\n",
			sql, len(res), float64(st.PixelsDecoded)/1e6, st.DecodeWall.Round(time.Millisecond))
	}
}
