// Quickstart: ingest a synthetic traffic video, index object detections,
// run a Scan for cars, re-tile around them, and run the same Scan again to
// see the decode savings — the core TASM loop in ~80 lines, in the ctx-first
// API v2 form (every call is cancellable; ctrl-C mid-run tears down cleanly).
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/scene"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	dir, err := os.MkdirTemp("", "tasm-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A 6-second 320x180 street scene with cars and pedestrians.
	video, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 320, H: 180, FPS: 15, DurationSec: 6,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 3, SizeFrac: 0.12},
			{Class: scene.Person, Count: 3, SizeFrac: 0.15},
		},
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}

	sm, err := tasm.Open(dir, tasm.WithGOPLength(15), tasm.WithMinTileSize(32, 32))
	if err != nil {
		log.Fatal(err)
	}
	defer sm.Close()

	// 1. Ingest: the video is stored untiled, one SOT per one-second GOP.
	n := video.Spec.NumFrames()
	ist, err := sm.IngestContext(ctx, "traffic", video.Frames(0, n), video.Spec.FPS)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested %d frames into %d SOTs (%d KiB)\n", n, ist.SOTs, ist.Bytes/1024)

	// 2. Index detections (normally a byproduct of query processing; here
	//    we use the scene's ground truth as a stand-in for YOLOv3).
	for f := 0; f < n; f++ {
		for _, tr := range video.GroundTruth(f) {
			if err := sm.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				log.Fatal(err)
			}
		}
	}

	// 3. Scan for cars on the untiled video.
	const sql = "SELECT car FROM traffic WHERE 0 <= t < 45"
	res, before, err := sm.ScanSQLContext(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("untiled scan: %d regions, %.2f Mpx decoded in %s\n",
		len(res), float64(before.PixelsDecoded)/1e6, before.DecodeWall.Round(1e5))

	// 4. Re-tile the queried SOTs around the cars.
	meta, _ := sm.Meta("traffic")
	retiled := 0
	for _, sot := range meta.SOTs {
		if sot.From >= 45 {
			break
		}
		l, err := sm.DesignLayout("traffic", sot.ID, []string{"car"})
		if err != nil {
			log.Fatal(err)
		}
		if l.IsSingle() {
			continue
		}
		if _, err := sm.RetileSOTContext(ctx, "traffic", sot.ID, l); err != nil {
			log.Fatal(err)
		}
		retiled++
	}
	fmt.Printf("re-tiled %d SOTs around cars\n", retiled)

	// 5. Same scan, now decoding only the tiles containing cars — this
	//    time streamed through a cursor: regions arrive in frame order as
	//    each SOT's tiles decode, instead of all at once at the end.
	cur, err := sm.ScanSQLCursor(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	var res2 []tasm.RegionResult
	for cur.Next() {
		if len(res2) == 0 {
			r := cur.Result()
			fmt.Printf("first streamed region: frame %d %v (scan still running)\n", r.Frame, r.Region)
		}
		res2 = append(res2, cur.Result())
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	after := cur.Stats()
	imp := 100 * (1 - float64(after.DecodeWall)/float64(before.DecodeWall))
	fmt.Printf("tiled scan:   %d regions, %.2f Mpx decoded in %s (%.0f%% faster)\n",
		len(res2), float64(after.PixelsDecoded)/1e6, after.DecodeWall.Round(1e5), imp)

	// The returned pixels are real: compare a region against the source.
	if len(res2) > 0 {
		r := res2[0]
		src := video.Frame(r.Frame).Crop(r.Region)
		fmt.Printf("first region %v on frame %d: PSNR vs source %.1f dB\n",
			r.Region, r.Frame, tasm.PSNR(src, r.Pixels))
	}
}
