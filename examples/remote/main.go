// Remote quickstart: the examples/quickstart loop over the network.
// This program starts a live tasmd (the same handler stack the daemon
// serves, on a loopback listener), connects the Go client, and shows
// the three serving guarantees:
//
//  1. remote scans stream — the first NDJSON region arrives while the
//     server is still decoding later SOTs, not after materialization;
//  2. abandoning a remote scan cancels it server-side — every read
//     lease is released, so GC has nothing deferred on its account;
//  3. the error taxonomy survives the wire — errors.Is matches the
//     same tasm.Err* sentinels remotely as in-process.
//
// Run it: go run ./examples/remote
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	dir, err := os.MkdirTemp("", "tasm-remote-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A live tasmd: the daemon binary is exactly this — tasm.Open +
	// server.New + http.Server — plus flags and signal wiring.
	sm, err := tasm.Open(dir, tasm.WithGOPLength(8), tasm.WithMinTileSize(32, 32))
	if err != nil {
		log.Fatal(err)
	}
	defer sm.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: server.New(sm, server.Config{})}
	go srv.Serve(ln)
	defer srv.Shutdown(context.Background())
	fmt.Printf("tasmd serving %s on http://%s\n", dir, ln.Addr())

	// Deliberately the v1 constructor: this example doubles as the
	// compile-time proof that the deprecated Dial shim keeps old
	// callers working.
	//lint:ignore SA1019 exercises the v1 compatibility shim
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer c.Close()

	// 1. Ingest over the wire: frames upload through /v1/ingest, the
	//    detections through /v1/metadata.
	video, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 320, H: 180, FPS: 8, DurationSec: 8,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 3, SizeFrac: 0.12},
			{Class: scene.Person, Count: 3, SizeFrac: 0.15},
		},
		Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	n := video.Spec.NumFrames()
	ist, err := c.IngestContext(ctx, "traffic", video.Frames(0, n), video.Spec.FPS)
	if err != nil {
		log.Fatal(err)
	}
	var ds []tasm.Detection
	for f := 0; f < n; f++ {
		for _, tr := range video.GroundTruth(f) {
			ds = append(ds, tasm.Detection{Frame: f, Label: tr.Label, Box: tr.Box})
		}
	}
	if err := c.AddDetections("traffic", ds); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote ingest: %d frames into %d SOTs (%d KiB)\n", n, ist.SOTs, ist.Bytes/1024)

	// 2. A streaming remote scan. The first region decodes off the
	//    NDJSON stream while the server is still working on later SOTs:
	//    time-to-first-result is a fraction of the full drain.
	sql := fmt.Sprintf("SELECT car FROM traffic WHERE 0 <= t < %d", n)
	start := time.Now()
	cur, err := c.ScanSQLCursor(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	var first time.Duration
	count := 0
	for cur.Next() {
		if count == 0 {
			first = time.Since(start)
			r := cur.Result()
			fmt.Printf("first streamed region after %s: frame %d %v (scan still running)\n",
				first.Round(time.Millisecond), r.Frame, r.Region)
		}
		count++
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	full := time.Since(start)
	st := cur.Stats()
	fmt.Printf("drained %d regions over %d SOTs in %s — first result at %.0f%% of the wall\n",
		count, st.SOTsTouched, full.Round(time.Millisecond), 100*float64(first)/float64(full))

	// 3. Abandon a scan mid-stream. Closing the cursor cancels the
	//    HTTP request; the server cancels the cursor pipeline, which
	//    releases every read lease before finishing — verified through
	//    the remote fsck report.
	cur2, err := c.ScanSQLCursor(ctx, sql)
	if err != nil {
		log.Fatal(err)
	}
	if !cur2.Next() {
		log.Fatal("abandoned scan yielded nothing")
	}
	cur2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rep, err := c.FSCK()
		if err != nil {
			log.Fatal(err)
		}
		if rep.Leases == 0 {
			fmt.Println("abandoned mid-stream scan: server released all read leases")
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("leases still held after cancel: %d", rep.Leases)
		}
		time.Sleep(10 * time.Millisecond)
	}
	gc, err := c.GC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("remote gc after cancel: %d removed, %d deferred\n", len(gc.Removed), len(gc.Deferred))

	// 4. The typed errors survive the wire: a remote miss matches the
	//    same sentinel an in-process miss does.
	_, err = c.Meta("no-such-video")
	fmt.Printf("remote miss: errors.Is(err, tasm.ErrVideoNotFound) = %v (%v)\n",
		errors.Is(err, tasm.ErrVideoNotFound), err)
	if !errors.Is(err, tasm.ErrVideoNotFound) {
		log.Fatal("sentinel lost across the wire")
	}
}
