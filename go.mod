module github.com/tasm-repro/tasm

go 1.24
