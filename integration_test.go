package tasm

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"github.com/tasm-repro/tasm/internal/detect"
	"github.com/tasm-repro/tasm/internal/scene"
)

// TestLifecycleAcrossRestart exercises the full storage-manager lifecycle —
// ingest, detect, query, adapt, restart, query again — verifying that tile
// layouts, the semantic index, and detection coverage all persist.
func TestLifecycleAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	v, err := scene.Generate(scene.Spec{
		Name: "cam", W: 192, H: 96, FPS: 10, DurationSec: 4,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.15},
			{Class: scene.Person, Count: 2, SizeFrac: 0.2},
		},
		Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := v.Spec.NumFrames()

	// Session 1: ingest, detect, query, adapt.
	sm, err := Open(dir, WithGOPLength(10), WithMinTileSize(32, 32), WithAdaptiveTiling(), WithEta(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sm.Ingest("cam", v.Frames(0, n), v.Spec.FPS); err != nil {
		t.Fatal(err)
	}
	det := &detect.Oracle{Lat: detect.DefaultLatencies()}
	ds, _ := detect.Run(det, v, 0, n)
	if err := sm.AddDetections("cam", ds); err != nil {
		t.Fatal(err)
	}
	if err := sm.MarkDetected("cam", scene.Car, 0, n); err != nil {
		t.Fatal(err)
	}
	res1, st1, err := sm.ScanSQL("SELECT car FROM cam WHERE 0 <= t < 20")
	if err != nil {
		t.Fatal(err)
	}
	if len(res1) == 0 {
		t.Fatal("no results in session 1")
	}
	if _, err := sm.AutotileKick(context.Background()); err != nil {
		t.Fatal(err)
	}
	meta, _ := sm.Meta("cam")
	tiledBefore := 0
	for _, sot := range meta.SOTs {
		if !sot.L.IsSingle() {
			tiledBefore++
		}
	}
	if tiledBefore == 0 {
		t.Fatal("adaptive tiling (eta=0) did not tile anything")
	}
	if err := sm.Close(); err != nil {
		t.Fatal(err)
	}

	// Session 2: reopen, verify everything survived.
	sm2, err := Open(dir, WithGOPLength(10), WithMinTileSize(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	defer sm2.Close()
	meta2, err := sm2.Meta("cam")
	if err != nil {
		t.Fatal(err)
	}
	tiledAfter := 0
	for i, sot := range meta2.SOTs {
		if !sot.L.Equal(meta.SOTs[i].L) {
			t.Errorf("SOT %d layout changed across restart", i)
		}
		if !sot.L.IsSingle() {
			tiledAfter++
		}
	}
	if tiledAfter != tiledBefore {
		t.Errorf("tiled SOTs %d -> %d across restart", tiledBefore, tiledAfter)
	}
	covered, err := sm2.Detected("cam", scene.Car, 0, n)
	if err != nil || !covered {
		t.Errorf("detection coverage lost: %v %v", covered, err)
	}
	cars, err := sm2.LookupDetections("cam", "car", 0, n)
	if err != nil || len(cars) == 0 {
		t.Errorf("detections lost: %d %v", len(cars), err)
	}
	res2, st2, err := sm2.ScanSQL("SELECT car FROM cam WHERE 0 <= t < 20")
	if err != nil {
		t.Fatal(err)
	}
	if len(res2) != len(res1) {
		t.Errorf("results differ across restart: %d vs %d", len(res2), len(res1))
	}
	// The reopened store answers from the tiled layout: no more pixels
	// than the adapted session needed.
	if st2.PixelsDecoded > st1.PixelsDecoded {
		t.Errorf("restart lost tiling benefit: %d > %d pixels", st2.PixelsDecoded, st1.PixelsDecoded)
	}
}

// TestTwoVideosIndependent verifies per-video isolation of layouts, index
// entries, and storage.
func TestTwoVideosIndependent(t *testing.T) {
	sm, err := Open(t.TempDir(), WithGOPLength(10), WithMinTileSize(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	for i, name := range []string{"east", "west"} {
		v, _ := scene.Generate(scene.Spec{
			Name: name, W: 192, H: 96, FPS: 10, DurationSec: 2,
			Classes: []scene.ClassMix{{Class: scene.Car, Count: 2, SizeFrac: 0.15}},
			Seed:    uint64(i + 10),
		})
		if _, err := sm.Ingest(name, v.Frames(0, 20), 10); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 20; f++ {
			for _, tr := range v.GroundTruth(f) {
				sm.AddMetadata(name, f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1)
			}
		}
	}
	// Retile only east.
	l, err := sm.DesignLayout("east", 0, []string{"car"})
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsSingle() {
		if _, err := sm.RetileSOT("east", 0, l); err != nil {
			t.Fatal(err)
		}
	}
	westMeta, _ := sm.Meta("west")
	for _, sot := range westMeta.SOTs {
		if !sot.L.IsSingle() {
			t.Error("west was retiled by east's operation")
		}
	}
	videos, _ := sm.Videos()
	if len(videos) != 2 {
		t.Errorf("videos = %v", videos)
	}
}

// TestManifestCorruptionSurfaces verifies that a corrupted catalog is
// reported as an error rather than silently misread.
func TestManifestCorruptionSurfaces(t *testing.T) {
	dir := t.TempDir()
	sm, err := Open(dir, WithGOPLength(10), WithMinTileSize(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := scene.Generate(scene.Spec{
		Name: "cam", W: 192, H: 96, FPS: 10, DurationSec: 1,
		Classes: []scene.ClassMix{{Class: scene.Car, Count: 1, SizeFrac: 0.15}},
		Seed:    4,
	})
	if _, err := sm.Ingest("cam", v.Frames(0, 10), 10); err != nil {
		t.Fatal(err)
	}
	sm.Close()

	manifest := filepath.Join(dir, "tiles", "cam", "manifest.json")
	if err := os.WriteFile(manifest, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	sm2, err := Open(dir, WithGOPLength(10), WithMinTileSize(32, 32))
	if err != nil {
		t.Fatal(err)
	}
	defer sm2.Close()
	if _, err := sm2.Meta("cam"); err == nil {
		t.Error("corrupt manifest read without error")
	}
	if _, _, err := sm2.ScanSQL("SELECT car FROM cam"); err == nil {
		t.Error("scan over corrupt manifest succeeded")
	}
}
