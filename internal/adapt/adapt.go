// Package adapt closes the paper's adaptive-tiling loop (§4.4) as a
// background subsystem, decoupled from query latency:
//
//   - Observation: Recorder, a lock-cheap core.QueryObserver fed by every
//     query path — streaming cursors, the materializing wrappers, and
//     remote requests served over them — accumulating per-video
//     query-frame distributions.
//   - Decision: Advisor, the pluggable scoring interface; the default is
//     the regret policy (accumulate δ per candidate layout, re-tile when
//     δ > η·R) backed by the calibrated cost model.
//   - Execution: Retiler, a background goroutine applying the advisor's
//     bounded action batches under MVCC with IO budgeting, pause-on-error,
//     and graceful drain; it also warms and pins the decoded-tile cache
//     for SOTs the workload has proven hot.
package adapt

import (
	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/costmodel"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/policy"
	"github.com/tasm-repro/tasm/internal/query"
)

// Advisor is the pluggable decision layer: it folds observed queries into
// its model of the workload and emits re-tile actions once the accumulated
// evidence justifies their cost. Implementations are not required to be
// goroutine-safe — the Retiler serializes every call (Advise, Forget,
// Regret) under its cycle lock.
type Advisor interface {
	// Advise folds one observed query into the advisor's state and
	// returns the re-tile actions it now recommends, if any. The manager
	// is the advisor's window onto current layouts, detections, and the
	// cost model's what-if interface.
	Advise(m *core.Manager, q query.Query) ([]policy.Action, error)
	// Forget drops all state for a video (deleted or re-ingested).
	Forget(video string)
	// Regret reports the advisor's accumulated pressure toward re-tiling
	// in model seconds (0 if the notion does not apply).
	Regret() float64
}

// regretAdvisor adapts policy.Regret — the paper's online-indexing
// strategy — to the Advisor interface.
type regretAdvisor struct {
	rg *policy.Regret
}

// NewRegretAdvisor returns the default Advisor: the §4.4 regret policy
// with the given cost model, η, α, and granularity. η = 0 is meaningful
// (re-tile on the first profitable query); pass a negative η or a
// non-positive α to keep the policy defaults.
func NewRegretAdvisor(model costmodel.Model, eta, alpha float64, g layout.Granularity) Advisor {
	rg := policy.NewRegret(model)
	if eta >= 0 {
		rg.Eta = eta
	}
	if alpha > 0 {
		rg.Alpha = alpha
	}
	rg.Granularity = g
	return &regretAdvisor{rg: rg}
}

func (a *regretAdvisor) Advise(m *core.Manager, q query.Query) ([]policy.Action, error) {
	return a.rg.ObserveQuery(m, q)
}

func (a *regretAdvisor) Forget(video string) { a.rg.Forget(video) }

func (a *regretAdvisor) Regret() float64 { return a.rg.TotalRegret() }
