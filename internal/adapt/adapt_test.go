package adapt

import (
	"bytes"
	"context"
	"testing"
	"time"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/scene"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Codec.GOPLength = 10
	cfg.MinTileW, cfg.MinTileH = 32, 32
	return cfg
}

// newManager builds a manager over a small synthetic video with ground
// truth indexed for cars and people.
func newManager(t *testing.T, cfg core.Config) *core.Manager {
	t.Helper()
	m, err := core.Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	v, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 3,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := v.Frames(0, v.Spec.NumFrames())
	if _, err := m.Ingest("traffic", frames, v.Spec.FPS); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < v.Spec.NumFrames(); f++ {
		for _, tr := range v.GroundTruth(f) {
			if err := m.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m
}

// eagerAdvisor returns a regret advisor that re-tiles on the first
// profitable query (tiny η), so tests need not replay long workloads.
func eagerAdvisor(m *core.Manager) Advisor {
	c := m.Config()
	return NewRegretAdvisor(c.Model, 1e-9, c.Alpha, c.Granularity)
}

func carQuery() query.Query {
	return query.Query{Video: "traffic", Pred: query.Single("car"), From: 0, To: 30}
}

func TestRecorderObservationAndHeat(t *testing.T) {
	r := NewRecorder(3)
	obs := func(q query.Query) { r.ObserveScan(core.ScanObservation{Query: q, SOTs: 1}) }

	if r.HotRange("v", 0, 100) {
		t.Fatal("empty recorder reports hot")
	}
	q := query.Query{Video: "v", Pred: query.Single("car"), From: 0, To: 100}
	obs(q)
	if r.HotRange("v", 0, 100) {
		t.Fatal("single touch must stay cold (the toucher itself is recorded)")
	}
	obs(q)
	if !r.HotRange("v", 0, 100) {
		t.Fatal("second touch must be hot")
	}
	if r.HotRange("v", 500, 600) {
		t.Fatal("untouched range reports hot")
	}
	if got := r.QueriesObserved(); got != 2 {
		t.Fatalf("QueriesObserved = %d, want 2", got)
	}

	// Whole-frame observations (empty predicate) heat but never queue.
	obs(query.Query{Video: "v", From: 200, To: 300})
	if r.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 (label-less request must not queue)", r.Pending())
	}

	// The pending queue is bounded: oldest dropped, counted.
	obs(q)
	obs(q)
	if r.Pending() != 3 || r.Dropped() != 1 {
		t.Fatalf("Pending = %d Dropped = %d, want 3 and 1", r.Pending(), r.Dropped())
	}

	drained := r.Drain(10)
	if len(drained) != 3 || r.Pending() != 0 {
		t.Fatalf("Drain got %d, Pending %d", len(drained), r.Pending())
	}

	r.ForgetVideo("v")
	if r.HotRange("v", 0, 100) || r.Pending() != 0 {
		t.Fatal("ForgetVideo left state behind")
	}
}

func TestRetilerAppliesObservedActions(t *testing.T) {
	m := newManager(t, testConfig())
	rt := NewRetiler(m, eagerAdvisor(m), Config{})
	m.SetQueryObserver(rt)
	defer rt.Close()

	for i := 0; i < 3; i++ {
		if _, _, err := m.Scan(carQuery()); err != nil {
			t.Fatal(err)
		}
	}
	if p := rt.Status().QueriesPending; p != 3 {
		t.Fatalf("QueriesPending = %d, want 3", p)
	}
	applied, err := rt.Kick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if applied < 1 {
		t.Fatalf("Kick applied %d actions, want >= 1", applied)
	}
	st := rt.Status()
	if st.ActionsApplied != int64(applied) || st.QueriesPending != 0 || st.LastAction == "" {
		t.Fatalf("status %+v inconsistent with %d applied", st, applied)
	}

	meta, err := m.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	tiled := false
	for _, sot := range meta.SOTs {
		if !sot.L.IsSingle() {
			tiled = true
		}
	}
	if !tiled {
		t.Fatal("no SOT was re-tiled")
	}
}

func TestRetilerBackgroundLoop(t *testing.T) {
	m := newManager(t, testConfig())
	rt := NewRetiler(m, eagerAdvisor(m), Config{Interval: 10 * time.Millisecond})
	m.SetQueryObserver(rt)
	rt.Start()
	defer rt.Close()

	for i := 0; i < 3; i++ {
		if _, _, err := m.Scan(carQuery()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for rt.Status().ActionsApplied == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("background loop applied nothing; status %+v", rt.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Scans concurrent with (and after) the background re-tile keep
	// working.
	if _, _, err := m.Scan(carQuery()); err != nil {
		t.Fatal(err)
	}
}

func TestRetilerPauseResume(t *testing.T) {
	m := newManager(t, testConfig())
	rt := NewRetiler(m, eagerAdvisor(m), Config{})
	m.SetQueryObserver(rt)
	defer rt.Close()

	rt.Pause("maintenance")
	for i := 0; i < 3; i++ {
		if _, _, err := m.Scan(carQuery()); err != nil {
			t.Fatal(err)
		}
	}
	if applied, _ := rt.Kick(context.Background()); applied != 0 {
		t.Fatalf("paused Kick applied %d actions", applied)
	}
	st := rt.Status()
	if !st.Paused || st.PauseReason != "maintenance" || st.QueriesPending == 0 {
		t.Fatalf("pause status %+v", st)
	}

	rt.Resume()
	applied, err := rt.Kick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if applied < 1 {
		t.Fatal("resume did not release the queued work")
	}
}

func TestDeleteVideoClearsObservationState(t *testing.T) {
	m := newManager(t, testConfig())
	rt := NewRetiler(m, eagerAdvisor(m), Config{})
	m.SetQueryObserver(rt)
	defer rt.Close()

	for i := 0; i < 3; i++ {
		if _, _, err := m.Scan(carQuery()); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Status().QueriesPending == 0 {
		t.Fatal("no pending observations before delete")
	}
	if err := m.DeleteVideo("traffic"); err != nil {
		t.Fatal(err)
	}
	st := rt.Status()
	if st.QueriesPending != 0 {
		t.Fatalf("QueriesPending = %d after delete, want 0", st.QueriesPending)
	}
	if st.Regret != 0 {
		t.Fatalf("Regret = %v after delete, want 0", st.Regret)
	}
	// A cycle after deletion must be a clean no-op, not an error.
	if applied, err := rt.Kick(context.Background()); err != nil || applied != 0 {
		t.Fatalf("post-delete Kick: applied %d, err %v", applied, err)
	}
}

// compareScans asserts two managers return byte-identical results for q.
func compareScans(t *testing.T, label string, a, b *core.Manager, q query.Query) {
	t.Helper()
	want, _, err := a.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := b.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("%s: %d results vs %d", label, len(got), len(want))
	}
	for j := range got {
		g, w := got[j], want[j]
		if g.Frame != w.Frame || g.Region != w.Region {
			t.Fatalf("%s result %d: %v/%v vs %v/%v", label, j, g.Frame, g.Region, w.Frame, w.Region)
		}
		if !bytes.Equal(g.Pixels.Y, w.Pixels.Y) || !bytes.Equal(g.Pixels.Cb, w.Pixels.Cb) || !bytes.Equal(g.Pixels.Cr, w.Pixels.Cr) {
			t.Fatalf("%s result %d: pixel mismatch", label, j)
		}
	}
}

// TestScanResultsIdenticalUnderAutotile is the correctness acceptance bar:
// the autotiled store must read byte-identical pixels to a shadow store in
// the same layout state — before any re-tile against the untouched shadow,
// and after re-tiles against the shadow re-tiled to the same layouts (the
// codec is lossy, so a re-encode changes bytes; what must not change is the
// reconstruction both stores agree on).
func TestScanResultsIdenticalUnderAutotile(t *testing.T) {
	shadow := newManager(t, testConfig())
	adaptive := newManager(t, testConfig())
	rt := NewRetiler(adaptive, eagerAdvisor(adaptive), Config{})
	adaptive.SetQueryObserver(rt)
	defer rt.Close()

	for i := 0; i < 3; i++ {
		compareScans(t, "pre-retile", shadow, adaptive, carQuery())
	}
	applied, err := rt.Kick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("workload never triggered a background re-tile; the test is vacuous")
	}

	// Mirror the layouts the re-tiler chose onto the shadow store.
	meta, err := adaptive.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	for _, sot := range meta.SOTs {
		if sot.L.IsSingle() {
			continue
		}
		if _, err := shadow.RetileSOTContext(context.Background(), "traffic", sot.ID, sot.L); err != nil {
			t.Fatal(err)
		}
	}
	compareScans(t, "post-retile", shadow, adaptive, carQuery())
	// And the autotiled store is self-consistent across repeated reads.
	compareScans(t, "self", adaptive, adaptive, carQuery())
}

func TestRetilerIOBudgetThrottles(t *testing.T) {
	m := newManager(t, testConfig())
	// 1 byte/sec budget: the throttle sleep after one action would be
	// enormous — Close must abandon it promptly.
	rt := NewRetiler(m, eagerAdvisor(m), Config{IOBudget: 1, MaxActionsPerCycle: 1})
	m.SetQueryObserver(rt)
	rt.Start()
	for i := 0; i < 3; i++ {
		if _, _, err := m.Scan(carQuery()); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for rt.Status().ActionsApplied == 0 {
		if time.Now().After(deadline) {
			t.Fatal("throttled loop applied nothing")
		}
		time.Sleep(5 * time.Millisecond)
	}
	start := time.Now()
	rt.Close()
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("Close blocked %v on the throttle sleep", since)
	}
	if st := rt.Status(); st.BytesSpent == 0 || st.IOBudget != 1 {
		t.Fatalf("budget accounting %+v", st)
	}
}
