package adapt

import (
	"hash/maphash"
	"sync"
	"sync/atomic"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/query"
)

// heatBucketFrames is the granularity of the per-video frame-heat
// histogram: coarse enough that a video's counters stay small, fine
// enough to separate a workload's hot window from a cold sweep.
const heatBucketFrames = 32

// defaultPendingCap bounds the per-video queue of observations awaiting
// the decision layer. When the re-tiler falls behind, the oldest
// observations are dropped (and counted): recent demand is what should
// drive layouts, and the query path must never block on the queue.
const defaultPendingCap = 256

// recorderShards spreads the observation lock; a power of two.
const recorderShards = 16

// Recorder is the observation layer: a lock-cheap sink fed by every query
// path (streaming cursors, their materializing wrappers, and remote
// requests served over them) that accumulates per-video query-frame
// distributions. The query path pays one short sharded-mutex critical
// section per request — no layout design, no index lookups, no I/O.
//
// Recorder implements core.QueryObserver; the Retiler drains it in the
// background and feeds the Advisor.
type Recorder struct {
	seed       maphash.Seed
	pendingCap int
	shards     [recorderShards]recorderShard

	queries atomic.Int64 // all observations, including label-less ones
	dropped atomic.Int64 // observations lost to a full pending queue
}

type recorderShard struct {
	mu     sync.Mutex
	videos map[string]*videoRecord
}

type videoRecord struct {
	// pending holds label-carrying queries awaiting the decision layer.
	pending []query.Query
	// heat counts how many observed requests touched each
	// heatBucketFrames-sized frame bucket, labels or not.
	heat map[int]uint32
}

// NewRecorder returns an empty recorder. pendingCap bounds each video's
// queue of undrained observations (<= 0 uses the default).
func NewRecorder(pendingCap int) *Recorder {
	if pendingCap <= 0 {
		pendingCap = defaultPendingCap
	}
	return &Recorder{seed: maphash.MakeSeed(), pendingCap: pendingCap}
}

func (r *Recorder) shardFor(video string) *recorderShard {
	return &r.shards[maphash.String(r.seed, video)&(recorderShards-1)]
}

// ObserveScan records one planned request (core.QueryObserver).
func (r *Recorder) ObserveScan(o core.ScanObservation) {
	r.queries.Add(1)
	s := r.shardFor(o.Query.Video)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.videos == nil {
		s.videos = map[string]*videoRecord{}
	}
	vr := s.videos[o.Query.Video]
	if vr == nil {
		vr = &videoRecord{heat: map[int]uint32{}}
		s.videos[o.Query.Video] = vr
	}
	for b := o.Query.From / heatBucketFrames; b <= (o.Query.To-1)/heatBucketFrames; b++ {
		vr.heat[b]++
	}
	if o.Query.Pred.Empty() {
		return // whole-frame request: heat only, no re-tiling evidence
	}
	if len(vr.pending) >= r.pendingCap {
		vr.pending = vr.pending[1:]
		r.dropped.Add(1)
	}
	vr.pending = append(vr.pending, o.Query)
}

// HotRange reports whether frames [from, to) of video were touched by an
// earlier request (core.QueryObserver). The current request has already
// been recorded by the time its decodes ask, so "hot" means a bucket
// count of at least two.
func (r *Recorder) HotRange(video string, from, to int) bool {
	s := r.shardFor(video)
	s.mu.Lock()
	defer s.mu.Unlock()
	vr := s.videos[video]
	if vr == nil {
		return false
	}
	for b := from / heatBucketFrames; b <= (to-1)/heatBucketFrames; b++ {
		if vr.heat[b] >= 2 {
			return true
		}
	}
	return false
}

// ForgetVideo drops all recorded state for video (core.QueryObserver).
func (r *Recorder) ForgetVideo(video string) {
	s := r.shardFor(video)
	s.mu.Lock()
	delete(s.videos, video)
	s.mu.Unlock()
}

// Drain pops up to max pending observations, oldest first per video, for
// the decision layer. It never blocks observers for long: each shard's
// lock is held only while slicing.
func (r *Recorder) Drain(max int) []query.Query {
	if max <= 0 {
		return nil
	}
	var out []query.Query
	for i := range r.shards {
		if len(out) >= max {
			break
		}
		s := &r.shards[i]
		s.mu.Lock()
		for _, vr := range s.videos {
			n := min(max-len(out), len(vr.pending))
			if n == 0 {
				if len(out) >= max {
					break
				}
				continue
			}
			out = append(out, vr.pending[:n]...)
			vr.pending = append([]query.Query(nil), vr.pending[n:]...)
		}
		s.mu.Unlock()
	}
	return out
}

// Pending counts observations not yet drained.
func (r *Recorder) Pending() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		for _, vr := range s.videos {
			n += len(vr.pending)
		}
		s.mu.Unlock()
	}
	return n
}

// QueriesObserved returns the total number of observed requests.
func (r *Recorder) QueriesObserved() int64 { return r.queries.Load() }

// Dropped returns how many observations were lost to full queues.
func (r *Recorder) Dropped() int64 { return r.dropped.Load() }
