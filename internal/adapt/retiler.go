package adapt

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// Config tunes the background re-tiler.
type Config struct {
	// Interval is the poll cadence of the background loop (default 500ms).
	Interval time.Duration
	// IOBudget caps the sustained rate of re-tile writes in bytes/second:
	// after committing an action the loop sleeps long enough that, on
	// average, committed bytes never exceed the budget. 0 = unthrottled.
	IOBudget int64
	// BatchQueries bounds observations consumed per cycle (default 64).
	BatchQueries int
	// MaxActionsPerCycle stops draining further observations once a cycle
	// has applied this many actions (default 8); surplus observations
	// stay queued for the next cycle, keeping each batch bounded.
	MaxActionsPerCycle int
	// Warm, when set, decodes a just-re-tiled SOT through the tile cache
	// and pins it there: the workload proved the SOT hot, so the
	// background pays the first decode of the new layout instead of the
	// next query. At most maxPinned SOTs stay pinned (oldest unpinned).
	Warm bool
	// Logger receives action and pause diagnostics (nil = silent).
	Logger *log.Logger
}

const (
	defaultInterval  = 500 * time.Millisecond
	defaultBatch     = 64
	defaultMaxAction = 8
	maxPinned        = 8
)

// Retiler is the execution layer: a background goroutine that drains the
// Recorder, feeds the Advisor, and applies its actions via the manager's
// MVCC re-tile path — queries in flight keep scanning their snapshots
// while layouts change underneath. Retiler implements core.QueryObserver
// by delegating observation to its Recorder, so installing it as the
// manager's observer wires the whole loop.
type Retiler struct {
	m   *core.Manager
	rec *Recorder
	adv Advisor
	cfg Config

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
	kick   chan struct{}

	// cycleMu serializes decision/execution cycles (the background loop
	// versus synchronous Kick calls). It is held across retile I/O and
	// throttle sleeps, so nothing latency-sensitive may take it.
	cycleMu sync.Mutex

	// advMu guards the advisor, whose implementations need not be
	// goroutine-safe. It is only held for in-memory work (Advise, Forget,
	// Regret) — never across retile I/O or sleeps — so Status and
	// DeleteVideo's ForgetVideo callback stay fast even mid-cycle.
	advMu sync.Mutex

	mu          sync.Mutex // guards the status fields below
	started     bool
	paused      bool
	pauseReason string
	lastError   string
	lastAction  string
	applied     int64
	failed      int64
	bytesSpent  int64

	pinned []pinRef // ring of warmed SOTs currently pinned in the cache
}

type pinRef struct {
	video string
	sot   int
}

// Status is a point-in-time snapshot of the subsystem, served over
// /v1/autotile/status and by `tasmctl autotile status`.
type Status struct {
	Enabled         bool    `json:"enabled"`
	Paused          bool    `json:"paused"`
	PauseReason     string  `json:"pause_reason,omitempty"`
	QueriesObserved int64   `json:"queries_observed"`
	QueriesPending  int     `json:"queries_pending"`
	QueriesDropped  int64   `json:"queries_dropped"`
	ActionsApplied  int64   `json:"actions_applied"`
	ActionsFailed   int64   `json:"actions_failed"`
	BytesSpent      int64   `json:"bytes_spent"`
	IOBudget        int64   `json:"io_budget"`
	Regret          float64 `json:"regret"`
	LastAction      string  `json:"last_action,omitempty"`
	LastError       string  `json:"last_error,omitempty"`
}

// NewRetiler assembles the subsystem around a manager: a fresh Recorder
// and the given Advisor (nil = the default regret advisor built from the
// manager's config). Call Start to launch the background loop; install
// the returned Retiler as the manager's QueryObserver to feed it.
func NewRetiler(m *core.Manager, adv Advisor, cfg Config) *Retiler {
	if cfg.Interval <= 0 {
		cfg.Interval = defaultInterval
	}
	if cfg.BatchQueries <= 0 {
		cfg.BatchQueries = defaultBatch
	}
	if cfg.MaxActionsPerCycle <= 0 {
		cfg.MaxActionsPerCycle = defaultMaxAction
	}
	if adv == nil {
		c := m.Config()
		adv = NewRegretAdvisor(c.Model, c.Eta, c.Alpha, c.Granularity)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Retiler{
		m: m, rec: NewRecorder(0), adv: adv, cfg: cfg,
		ctx: ctx, cancel: cancel,
		done: make(chan struct{}),
		kick: make(chan struct{}, 1),
	}
}

// Recorder exposes the observation layer (for tests and wiring).
func (r *Retiler) Recorder() *Recorder { return r.rec }

// core.QueryObserver: observation delegates to the Recorder; forgetting a
// video also clears the advisor, synchronized against in-flight cycles.
func (r *Retiler) ObserveScan(o core.ScanObservation) { r.rec.ObserveScan(o) }

func (r *Retiler) HotRange(video string, from, to int) bool {
	return r.rec.HotRange(video, from, to)
}

func (r *Retiler) ForgetVideo(video string) {
	r.rec.ForgetVideo(video)
	r.advMu.Lock()
	r.adv.Forget(video)
	r.advMu.Unlock()
	r.mu.Lock()
	kept := r.pinned[:0]
	for _, p := range r.pinned {
		if p.video != video {
			kept = append(kept, p)
		}
	}
	r.pinned = kept
	r.mu.Unlock()
}

// Start launches the background loop. It is a no-op if already started
// or closed.
func (r *Retiler) Start() {
	r.mu.Lock()
	if r.started {
		r.mu.Unlock()
		return
	}
	r.started = true
	r.mu.Unlock()
	go r.loop()
}

// Close drains the loop: the poll stops, an in-flight re-tile aborts
// within one frame's work (a commit that already started completes — the
// store's swap is atomic), and Close returns once the goroutine exits.
// Safe to call without Start and idempotent.
func (r *Retiler) Close() {
	r.cancel()
	r.mu.Lock()
	started := r.started
	r.mu.Unlock()
	if started {
		<-r.done
	}
}

// Pause suspends action application; observation continues. reason is
// surfaced in Status.
func (r *Retiler) Pause(reason string) {
	r.mu.Lock()
	r.paused = true
	if reason == "" {
		reason = "paused by operator"
	}
	r.pauseReason = reason
	r.mu.Unlock()
}

// Resume lifts a pause (operator- or error-initiated) and kicks a cycle.
func (r *Retiler) Resume() {
	r.mu.Lock()
	r.paused = false
	r.pauseReason = ""
	r.mu.Unlock()
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Status snapshots the subsystem. It never waits on an in-flight cycle:
// every lock it takes is held only for in-memory reads.
func (r *Retiler) Status() Status {
	r.advMu.Lock()
	regret := r.adv.Regret()
	r.advMu.Unlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	return Status{
		Enabled:         true,
		Paused:          r.paused,
		PauseReason:     r.pauseReason,
		QueriesObserved: r.rec.QueriesObserved(),
		QueriesPending:  r.rec.Pending(),
		QueriesDropped:  r.rec.Dropped(),
		ActionsApplied:  r.applied,
		ActionsFailed:   r.failed,
		BytesSpent:      r.bytesSpent,
		IOBudget:        r.cfg.IOBudget,
		Regret:          regret,
		LastAction:      r.lastAction,
		LastError:       r.lastError,
	}
}

// Kick runs one full decision/execution cycle synchronously: drain all
// pending observations (in bounded batches) and apply the resulting
// actions, honoring pause state and the IO budget. Tests, benchmarks,
// and one-shot CLI runs use it for determinism; the background loop runs
// the same cycles on its own clock. It returns the number of actions
// applied and the first error that paused the loop, if any.
func (r *Retiler) Kick(ctx context.Context) (int, error) {
	total := 0
	for {
		n, more, err := r.cycle(ctx)
		total += n
		if err != nil || !more {
			return total, err
		}
	}
}

func (r *Retiler) loop() {
	defer close(r.done)
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
		case <-r.kick:
		}
		// Drain everything pending, in bounded per-cycle batches, before
		// sleeping again.
		for {
			_, more, err := r.cycle(r.ctx)
			if err != nil || !more {
				break
			}
		}
	}
}

// cycle drains one bounded batch of observations through the advisor and
// applies the resulting actions. more reports whether observations (or
// emitted-but-unapplied work) remain for another cycle. An action or
// advise failure pauses the loop (pause-on-error) and is returned;
// cancellation during shutdown is not an error.
func (r *Retiler) cycle(ctx context.Context) (applied int, more bool, err error) {
	r.cycleMu.Lock()
	defer r.cycleMu.Unlock()
	r.mu.Lock()
	paused := r.paused
	r.mu.Unlock()
	if paused || ctx.Err() != nil {
		return 0, false, nil
	}

	queries := r.rec.Drain(r.cfg.BatchQueries)
	if len(queries) == 0 {
		return 0, false, nil
	}
	for qi, q := range queries {
		r.advMu.Lock()
		actions, aerr := r.adv.Advise(r.m, q)
		r.advMu.Unlock()
		if aerr != nil {
			// A deleted video's leftover observations are not an error:
			// evidence about it is already being discarded.
			if errors.Is(aerr, tasmerr.ErrVideoNotFound) || errors.Is(aerr, tasmerr.ErrVideoDeleted) {
				continue
			}
			r.pauseOnError(fmt.Errorf("advise %s: %w", q.Video, aerr))
			return applied, false, aerr
		}
		for _, a := range actions {
			if ctx.Err() != nil {
				return applied, false, nil
			}
			rs, rerr := r.m.RetileSOTContext(ctx, a.Video, a.SOTID, a.Layout)
			if rerr != nil {
				if errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded) {
					return applied, false, nil // shutting down, not a fault
				}
				if errors.Is(rerr, tasmerr.ErrVideoNotFound) || errors.Is(rerr, tasmerr.ErrVideoDeleted) {
					continue // deleted out from under the action: benign
				}
				r.mu.Lock()
				r.failed++
				r.mu.Unlock()
				r.pauseOnError(fmt.Errorf("retile %s/%d: %w", a.Video, a.SOTID, rerr))
				return applied, false, rerr
			}
			applied++
			r.mu.Lock()
			r.applied++
			r.bytesSpent += rs.Bytes
			r.lastAction = fmt.Sprintf("%s/%d %s", a.Video, a.SOTID, a.Reason)
			r.mu.Unlock()
			if r.cfg.Logger != nil {
				r.cfg.Logger.Printf("autotile: retiled %s SOT %d (%s, %d tiles, %d B)",
					a.Video, a.SOTID, a.Reason, a.Layout.NumTiles(), rs.Bytes)
			}
			if r.cfg.Warm {
				r.warmAndPin(ctx, a.Video, a.SOTID)
			}
			r.throttle(ctx, rs.Bytes)
		}
		if applied >= r.cfg.MaxActionsPerCycle {
			// Bounded batch: park the rest for the next cycle.
			return applied, qi < len(queries)-1 || r.rec.Pending() > 0, nil
		}
	}
	return applied, r.rec.Pending() > 0, nil
}

// pauseOnError records the fault and pauses the loop; Resume (manual or
// via the API) lifts it.
func (r *Retiler) pauseOnError(err error) {
	r.mu.Lock()
	r.paused = true
	r.pauseReason = "paused on error"
	r.lastError = err.Error()
	r.mu.Unlock()
	if r.cfg.Logger != nil {
		r.cfg.Logger.Printf("autotile: paused on error: %v", err)
	}
}

// warmAndPin decodes the re-tiled SOT through the cache and pins it,
// unpinning the oldest warm SOT beyond the ring. Warm failures are
// logged, never fatal: the cache is an optimization.
func (r *Retiler) warmAndPin(ctx context.Context, video string, sot int) {
	if _, err := r.m.WarmSOTContext(ctx, video, sot); err != nil {
		if r.cfg.Logger != nil && ctx.Err() == nil {
			r.cfg.Logger.Printf("autotile: warm %s/%d: %v", video, sot, err)
		}
		return
	}
	r.m.PinSOT(video, sot)
	r.mu.Lock()
	r.pinned = append(r.pinned, pinRef{video, sot})
	var evict []pinRef
	if len(r.pinned) > maxPinned {
		evict = append(evict, r.pinned[:len(r.pinned)-maxPinned]...)
		r.pinned = append(r.pinned[:0], r.pinned[len(evict):]...)
	}
	r.mu.Unlock()
	for _, p := range evict {
		r.m.UnpinSOT(p.video, p.sot)
	}
}

// throttle enforces the IO budget: sleep long enough that bytes committed
// per second stay at or below IOBudget, abandoning the wait on shutdown.
func (r *Retiler) throttle(ctx context.Context, bytes int64) {
	if r.cfg.IOBudget <= 0 || bytes <= 0 {
		return
	}
	d := time.Duration(float64(bytes) / float64(r.cfg.IOBudget) * float64(time.Second))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	case <-r.ctx.Done():
	}
}
