// Adaptive-tiling benchmark (PR 7): replays a skewed query workload
// against the same untiled store twice — once with layouts frozen
// (manual baseline) and once with the background re-tiler observing
// every scan and re-tiling between query bursts — and compares the
// cumulative decode wall. Like the scan fast-path experiment this runs
// through the real storage manager over an on-disk store, so the
// adaptive run pays real MVCC re-tiles; only the scans' decode wall is
// charged to the queries, because the re-tiler does its work off the
// query path.
package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"github.com/tasm-repro/tasm/internal/adapt"
	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/stats"
)

// AdaptResult is the machine-readable adaptive-tiling measurement.
type AdaptResult struct {
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GeneratedAt string `json:"generated_at"`

	// Workload shape: Zipfian query starts (exponent ZipfS) over one-
	// second windows, the distribution of workloads 3/4 in the paper.
	Queries int     `json:"queries"`
	ZipfS   float64 `json:"zipf_s"`

	// Cumulative decode wall across the whole replay.
	UntiledDecodeNs  int64   `json:"untiled_decode_ns"`
	AdaptiveDecodeNs int64   `json:"adaptive_decode_ns"`
	Speedup          float64 `json:"speedup"`

	// What the re-tiler did during the adaptive replay.
	ActionsApplied int     `json:"actions_applied"`
	RetileBytes    int64   `json:"retile_bytes"`
	FinalRegret    float64 `json:"final_regret"`
}

// adaptZipfS is the skew exponent: strong enough that the hot window
// dominates, matching the paper's skewed workloads.
const adaptZipfS = 1.2

// RunAdaptPerf measures what closing the adaptive loop buys: the same
// Zipfian replay is charged once against frozen untiled layouts and once
// with the re-tiler adapting them mid-workload. The re-tiler is driven
// by synchronous Kick calls between query bursts rather than its
// background clock, so the measurement is deterministic on one CPU;
// tasmd -autotile runs the identical cycles on a ticker.
func RunAdaptPerf(o Options) (AdaptResult, *Table, error) {
	o = o.withDefaults()
	res := AdaptResult{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		ZipfS:       adaptZipfS,
	}

	root, err := os.MkdirTemp("", "tasm-adapt-*")
	if err != nil {
		return res, nil, err
	}
	defer os.RemoveAll(root)

	cfg := managerConfig(o)
	cfg.Codec.GOPLength = max(2, o.FPS/2) // short GOPs => several SOTs to adapt
	cfg.CacheBudget = 0                   // isolate layout effects from caching

	durationSec := max(4, int(8*o.DurationScale))
	v, err := scene.Generate(scene.Spec{
		Name: "adapt", W: o.Width, H: o.Height, FPS: o.FPS, DurationSec: durationSec,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: o.Seed,
	})
	if err != nil {
		return res, nil, err
	}
	numFrames := v.Spec.NumFrames()

	// Ingest once into a template, then copy it so both replays start
	// from byte-identical untiled stores.
	tpl := filepath.Join(root, "template")
	if err := func() error {
		m, err := core.Open(tpl, cfg)
		if err != nil {
			return err
		}
		defer m.Close()
		if _, err := m.Ingest("adapt", v.Frames(0, numFrames), v.Spec.FPS); err != nil {
			return err
		}
		for f := 0; f < numFrames; f++ {
			for _, tr := range v.GroundTruth(f) {
				if err := m.AddMetadata("adapt", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
					return err
				}
			}
		}
		return nil
	}(); err != nil {
		return res, nil, err
	}

	// Zipfian replay: query starts drawn over one-second windows with
	// rank 0 the hottest, mostly for the small dense class (car) where
	// tight tiles pay off.
	nQ := 60
	if o.QueryCap > 0 && o.QueryCap < nQ {
		nQ = o.QueryCap
	}
	res.Queries = nQ
	winLen := o.FPS
	numWin := max(1, numFrames-winLen)
	rng := stats.NewRNG(o.Seed + 7)
	zipf := stats.NewZipf(rng, numWin, adaptZipfS)
	queries := make([]query.Query, nQ)
	for i := range queries {
		label := "car"
		if rng.Float64() < 0.2 {
			label = "person"
		}
		from := zipf.Next()
		queries[i] = query.Query{
			Video: "adapt", Pred: query.Single(label),
			From: from, To: min(from+winLen, numFrames),
		}
	}

	// replay runs the workload, summing only scan decode wall; afterQuery
	// (when set) lets the adaptive run kick the re-tiler between bursts.
	replay := func(m *core.Manager, afterQuery func(i int) error) (time.Duration, error) {
		var total time.Duration
		for i, q := range queries {
			_, st, err := m.Scan(q)
			if err != nil {
				return 0, err
			}
			total += st.DecodeWall
			if afterQuery != nil {
				if err := afterQuery(i); err != nil {
					return 0, err
				}
			}
		}
		return total, nil
	}

	// Untiled baseline: layouts frozen as ingested.
	o.progressf("adapt: untiled baseline replay (%d queries)\n", nQ)
	baseDir := filepath.Join(root, "untiled")
	if err := copyDir(tpl, baseDir); err != nil {
		return res, nil, err
	}
	if err := func() error {
		m, err := core.Open(baseDir, cfg)
		if err != nil {
			return err
		}
		defer m.Close()
		wall, err := replay(m, nil)
		if err != nil {
			return err
		}
		res.UntiledDecodeNs = wall.Nanoseconds()
		return nil
	}(); err != nil {
		return res, nil, err
	}

	// Adaptive replay: the re-tiler observes every scan and is kicked
	// every few queries (a burst boundary) to run its cycles.
	o.progressf("adapt: adaptive replay\n")
	adaptDir := filepath.Join(root, "adaptive")
	if err := copyDir(tpl, adaptDir); err != nil {
		return res, nil, err
	}
	const kickEvery = 5
	if err := func() error {
		m, err := core.Open(adaptDir, cfg)
		if err != nil {
			return err
		}
		defer m.Close()
		r := adapt.NewRetiler(m, nil, adapt.Config{})
		m.SetQueryObserver(r)
		ctx := context.Background()
		wall, err := replay(m, func(i int) error {
			if (i+1)%kickEvery != 0 && i != nQ-1 {
				return nil
			}
			n, err := r.Kick(ctx)
			if err != nil {
				return err
			}
			if n > 0 {
				o.progressf("adapt: applied %d action(s) after query %d\n", n, i+1)
			}
			return nil
		})
		if err != nil {
			return err
		}
		res.AdaptiveDecodeNs = wall.Nanoseconds()
		st := r.Status()
		res.ActionsApplied = int(st.ActionsApplied)
		res.RetileBytes = st.BytesSpent
		res.FinalRegret = st.Regret
		return nil
	}(); err != nil {
		return res, nil, err
	}
	if res.AdaptiveDecodeNs > 0 {
		res.Speedup = float64(res.UntiledDecodeNs) / float64(res.AdaptiveDecodeNs)
	}

	t := &Table{
		Title:   "Adaptive tiling (PR 7): Zipfian replay, untiled baseline vs background re-tiler",
		Columns: []string{"measurement", "value"},
		Rows: [][]string{
			{"queries", fmt.Sprintf("%d (Zipf s=%.1f over 1s windows)", res.Queries, res.ZipfS)},
			{"untiled decode wall", fmt.Sprintf("%.1f ms", float64(res.UntiledDecodeNs)/1e6)},
			{"adaptive decode wall", fmt.Sprintf("%.1f ms", float64(res.AdaptiveDecodeNs)/1e6)},
			{"speedup", fmt.Sprintf("%.2fx", res.Speedup)},
			{"re-tile actions", fmt.Sprintf("%d (%.1f MiB rewritten off the query path)", res.ActionsApplied, float64(res.RetileBytes)/(1<<20))},
			{"final regret", fmt.Sprintf("%.3f", res.FinalRegret)},
		},
		Notes: []string{
			"decode wall charges scans only; re-tile I/O runs off the query path",
			"§4.4 regret policy with the default η/α; layouts converge toward the hot windows",
		},
	}
	return res, t, nil
}
