package bench

import "testing"

// TestAdaptPerf runs the PR-7 adaptive-tiling experiment at reduced scale
// and asserts the loop actually closes: the re-tiler applies actions
// during the replay and the adaptive run's decode wall does not exceed
// the untiled baseline.
func TestAdaptPerf(t *testing.T) {
	if testing.Short() {
		t.Skip("adapt experiment in -short mode")
	}
	opt := Quick()
	opt.Seed = 7
	res, table, err := RunAdaptPerf(opt)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) == 0 {
		t.Fatal("empty table")
	}
	if res.ActionsApplied == 0 {
		t.Fatal("re-tiler applied no actions during the Zipfian replay")
	}
	if res.RetileBytes <= 0 {
		t.Errorf("actions applied but retile_bytes = %d", res.RetileBytes)
	}
	if res.AdaptiveDecodeNs > res.UntiledDecodeNs {
		t.Errorf("adaptive decode wall %d ns exceeds untiled baseline %d ns",
			res.AdaptiveDecodeNs, res.UntiledDecodeNs)
	}
}
