// Package bench implements the reproduction of every table and figure in
// the paper's evaluation (§5). Each RunXxx function is a self-contained
// experiment driver that generates the synthetic datasets, encodes them
// under the layouts being compared, measures real decode/encode wall time
// with this repository's codec, and returns both a printable table and the
// structured results the test suite asserts on.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/costmodel"
	"github.com/tasm-repro/tasm/internal/detect"
	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/semindex"
	"github.com/tasm-repro/tasm/internal/vcodec"
)

// Options configures an experiment run.
type Options struct {
	// Width/Height/FPS of generated videos (defaults 320×180 @ 30).
	Width, Height, FPS int
	// DurationScale multiplies preset durations (default 1.0).
	DurationScale float64
	// Seed drives all randomness.
	Seed uint64
	// MaxVideos caps the number of dataset videos per experiment (0 = all).
	MaxVideos int
	// QueryCap caps workload query counts (0 = the paper's counts).
	QueryCap int
	// QP overrides the codec quantization parameter (0 = default 22).
	QP int
	// MinTileW/MinTileH are layout constraints; defaults 32×32 (the
	// paper's HEVC 256×64 scaled to the reduced resolution).
	MinTileW, MinTileH int
	// Verbose emits progress lines to Out while running.
	Verbose bool
	// Out receives progress output (nil = discard).
	Out io.Writer
}

func (o Options) withDefaults() Options {
	if o.Width == 0 {
		o.Width = 320
	}
	if o.Height == 0 {
		o.Height = 180
	}
	if o.FPS == 0 {
		o.FPS = 30
	}
	if o.DurationScale == 0 {
		o.DurationScale = 1
	}
	if o.QP == 0 {
		o.QP = 22
	}
	if o.MinTileW == 0 {
		o.MinTileW = 32
	}
	if o.MinTileH == 0 {
		o.MinTileH = 32
	}
	if o.Out == nil {
		o.Out = io.Discard
	}
	return o
}

// Quick returns options trimmed for fast runs (CI, go test -bench).
func Quick() Options {
	return Options{
		Width: 256, Height: 144, FPS: 15,
		DurationScale: 0.25, MaxVideos: 4, QueryCap: 20,
	}
}

func (o Options) sceneOptions() scene.Options {
	return scene.Options{
		Width: o.Width, Height: o.Height, FPS: o.FPS,
		DurationScale: o.DurationScale, Seed: o.Seed,
	}
}

func (o Options) codecParams() vcodec.Params {
	p := vcodec.DefaultParams()
	p.QP = o.QP
	p.GOPLength = o.FPS // one-second GOPs, the default in most encoders
	return p
}

func (o Options) constraints() layout.Constraints {
	return layout.Constraints{
		FrameW: o.Width, FrameH: o.Height,
		Align: 16, MinWidth: o.MinTileW, MinHeight: o.MinTileH,
	}
}

func (o Options) progressf(format string, args ...any) {
	if o.Verbose {
		fmt.Fprintf(o.Out, format, args...)
	}
}

func (o Options) presets(filter func(scene.Preset) bool) []scene.Preset {
	var out []scene.Preset
	for _, p := range scene.Presets(o.sceneOptions()) {
		if filter == nil || filter(p) {
			out = append(out, p)
		}
	}
	if o.MaxVideos > 0 && len(out) > o.MaxVideos {
		out = out[:o.MaxVideos]
	}
	return out
}

// Table is a printable experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "\n=== %s ===\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				for p := len(cell); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
	}
	printRow(t.Columns)
	var sep []string
	for _, wd := range widths {
		sep = append(sep, strings.Repeat("-", wd))
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// ---------------------------------------------------------------------------
// Microbenchmark infrastructure: in-memory encoded videos measured directly.
// ---------------------------------------------------------------------------

// micro holds one generated video prepared for layout experiments: frames
// chunked into SOTs (one per GOP) and detections per label per frame.
// Encoded plans are persisted as real tile files so that measured decodes
// pay the same per-tile costs (file read, container parse, decoder setup)
// the storage manager pays — the γ term of the cost model.
type micro struct {
	preset    scene.Preset
	video     *scene.Video
	gopLen    int
	numFrames int
	sotFrames [][]*frame.Frame
	// boxes[label][frame] — detections from the oracle detector.
	boxes map[string]map[int][]geom.Rect

	dir     string // scratch directory holding encoded plan tiles
	planSeq int
}

// prepare renders and chunks a preset's video and runs the oracle detector.
func prepare(o Options, p scene.Preset) (*micro, error) {
	v, err := scene.Generate(p.Spec)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "tasm-micro-*")
	if err != nil {
		return nil, err
	}
	n := v.Spec.NumFrames()
	gop := o.FPS
	m := &micro{preset: p, video: v, gopLen: gop, numFrames: n,
		boxes: map[string]map[int][]geom.Rect{}, dir: dir}
	for from := 0; from < n; from += gop {
		to := min(from+gop, n)
		m.sotFrames = append(m.sotFrames, v.Frames(from, to))
	}
	det := &detect.Oracle{Lat: detect.DefaultLatencies(), Seed: o.Seed}
	ds, _ := detect.Run(det, v, 0, n)
	for _, d := range ds {
		perFrame := m.boxes[d.Label]
		if perFrame == nil {
			perFrame = map[int][]geom.Rect{}
			m.boxes[d.Label] = perFrame
		}
		perFrame[d.Frame] = append(perFrame[d.Frame], d.Box)
	}
	return m, nil
}

// cleanup removes the micro's scratch tile files.
func (m *micro) cleanup() {
	if m.dir != "" {
		os.RemoveAll(m.dir)
	}
}

func (m *micro) numSOTs() int { return len(m.sotFrames) }

// sotRange returns the absolute frame range of SOT si.
func (m *micro) sotRange(si int) (int, int) {
	from := si * m.gopLen
	return from, min(from+m.gopLen, m.numFrames)
}

// sotBoxes returns all boxes of the given labels within SOT si.
func (m *micro) sotBoxes(si int, labels []string) []geom.Rect {
	from, to := m.sotRange(si)
	var out []geom.Rect
	for _, label := range labels {
		perFrame := m.boxes[label]
		for f := from; f < to; f++ {
			out = append(out, perFrame[f]...)
		}
	}
	return out
}

// queryFrames builds the per-SOT demand of a full-video query for label.
func (m *micro) queryFrames(si int, label string) costmodel.QueryFrames {
	from, to := m.sotRange(si)
	qf := costmodel.QueryFrames{}
	perFrame := m.boxes[label]
	for f := from; f < to; f++ {
		if bs := perFrame[f]; len(bs) > 0 {
			qf[f-from] = bs
		}
	}
	return qf
}

// plan is a per-SOT layout assignment with its encoded tiles, both held in
// memory (for stitching/quality measurement) and on disk (for measured
// decodes, which must pay real per-tile file costs).
type plan struct {
	name    string
	layouts []layout.Layout
	tiles   [][]*container.Video
	paths   [][]string
}

// encodePlan encodes the video under per-SOT layouts.
func (m *micro) encodePlan(o Options, name string, layouts []layout.Layout) (*plan, error) {
	if len(layouts) != m.numSOTs() {
		return nil, fmt.Errorf("bench: %d layouts for %d SOTs", len(layouts), m.numSOTs())
	}
	p := &plan{name: name, layouts: layouts}
	planDir := filepath.Join(m.dir, fmt.Sprintf("p%d", m.planSeq))
	m.planSeq++
	for si, frames := range m.sotFrames {
		// Each SOT is encoded independently with GOP = SOT length, so a
		// SOT has exactly one keyframe — the paper's "GOP length equal to
		// the SOT duration" setting (Figure 9), which for the default
		// one-second SOTs is the standard one-second-GOP encoding.
		params := o.codecParams()
		params.GOPLength = len(frames)
		tiles, err := container.EncodeTiled(frames, layouts[si], o.FPS, params)
		if err != nil {
			return nil, fmt.Errorf("bench: %s SOT %d: %w", name, si, err)
		}
		sotDir := filepath.Join(planDir, fmt.Sprintf("sot%d", si))
		if err := os.MkdirAll(sotDir, 0o755); err != nil {
			return nil, err
		}
		paths := make([]string, len(tiles))
		for ti, tv := range tiles {
			paths[ti] = filepath.Join(sotDir, fmt.Sprintf("tile%d.tsv", ti))
			if err := tv.Save(paths[ti]); err != nil {
				return nil, err
			}
		}
		p.tiles = append(p.tiles, tiles)
		p.paths = append(p.paths, paths)
	}
	return p, nil
}

// bytes returns the plan's total encoded size.
func (p *plan) bytes() int64 {
	var total int64
	for _, sot := range p.tiles {
		for _, tv := range sot {
			total += tv.SizeBytes()
		}
	}
	return total
}

// uniformPlan builds a constant uniform layout across SOTs.
func (m *micro) uniformPlan(o Options, rows, cols int) (*plan, error) {
	l, err := layout.Uniform(rows, cols, o.constraints())
	if err != nil {
		return nil, err
	}
	layouts := make([]layout.Layout, m.numSOTs())
	for i := range layouts {
		layouts[i] = l
	}
	return m.encodePlan(o, fmt.Sprintf("uniform-%dx%d", rows, cols), layouts)
}

// untiledPlan builds the ω baseline.
func (m *micro) untiledPlan(o Options) (*plan, error) {
	layouts := make([]layout.Layout, m.numSOTs())
	for i := range layouts {
		layouts[i] = layout.Single(o.Width, o.Height)
	}
	return m.encodePlan(o, "untiled", layouts)
}

// nonUniformPlan builds per-SOT fine/coarse layouts around the labels.
func (m *micro) nonUniformPlan(o Options, name string, labels []string, g layout.Granularity) (*plan, error) {
	layouts := make([]layout.Layout, m.numSOTs())
	for si := range layouts {
		l, err := layout.Partition(m.sotBoxes(si, labels), g, o.constraints())
		if err != nil {
			return nil, err
		}
		layouts[si] = l
	}
	return m.encodePlan(o, name, layouts)
}

// measurement is the outcome of timing one query against one plan.
type measurement struct {
	Wall   time.Duration
	Pixels int64
	Tiles  int
}

// measureQuery decodes, per SOT, exactly the tiles a query for label needs
// (each from the SOT keyframe through the last needed frame) and returns
// the measured totals. This mirrors core.Manager.Scan without the storage
// round trip, keeping layout sweeps fast.
func (m *micro) measureQuery(p *plan, label string) (measurement, error) {
	var out measurement
	start := time.Now()
	for si := range p.tiles {
		qf := m.queryFrames(si, label)
		if len(qf) == 0 {
			continue
		}
		l := p.layouts[si]
		lastNeeded := map[int]int{}
		for off, boxes := range qf {
			for _, b := range boxes {
				for _, ti := range l.TilesIntersecting(b) {
					if cur, ok := lastNeeded[ti]; !ok || off > cur {
						lastNeeded[ti] = off
					}
				}
			}
		}
		for ti, last := range lastNeeded {
			// Open the tile from disk, exactly as core.Manager.Scan does:
			// the per-tile file and parse cost is the γ of the cost model.
			tv, err := container.Open(p.paths[si][ti])
			if err != nil {
				return out, err
			}
			_, ds, err := tv.DecodeRange(0, last+1)
			if err != nil {
				return out, err
			}
			out.Pixels += ds.PixelsDecoded
			out.Tiles++
		}
	}
	out.Wall = time.Since(start)
	return out, nil
}

// improvementPct converts (untiled, tiled) times to the paper's
// "improvement in query time" percentage.
func improvementPct(untiled, tiled time.Duration) float64 {
	if untiled <= 0 {
		return 0
	}
	return 100 * (1 - float64(tiled)/float64(untiled))
}

// indexDetections loads a micro's oracle detections into a semantic index
// (used by the workload experiments).
func (m *micro) detections() []semindex.Detection {
	var out []semindex.Detection
	for label, perFrame := range m.boxes {
		for f, bs := range perFrame {
			for _, b := range bs {
				out = append(out, semindex.Detection{Frame: f, Label: label, Box: b})
			}
		}
	}
	return out
}

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
func fmtDB(v float64) string  { return fmt.Sprintf("%.1f dB", v) }
func fmtF(v float64) string   { return fmt.Sprintf("%.2f", v) }
