package bench

import (
	"bytes"
	"strings"
	"testing"

	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/workload"
)

// tiny returns options small enough for unit tests: 2 short, low-res
// videos and a handful of queries per workload.
func tiny() Options {
	return Options{
		Width: 160, Height: 96, FPS: 8,
		DurationScale: 0.1, // clamps to the 2s minimum
		MaxVideos:     2,
		QueryCap:      5,
		Seed:          1,
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "y"}, {"wide-cell", "z"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "long-column", "wide-cell", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRunTable1(t *testing.T) {
	rows, tab, err := RunTable1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want MaxVideos=2", len(rows))
	}
	if len(tab.Rows) != len(rows) {
		t.Error("table/row mismatch")
	}
	for _, r := range rows {
		if r.Coverage <= 0 || r.Coverage >= 1 {
			t.Errorf("%s coverage %.3f", r.Name, r.Coverage)
		}
	}
}

func TestRunFigure6(t *testing.T) {
	results, qa, qb, err := RunFigure6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	if len(qa.Rows) != 2 || len(qb.Rows) != 3 {
		t.Errorf("table shapes: %d, %d", len(qa.Rows), len(qb.Rows))
	}
	for _, r := range results {
		if r.UniformPSNR < 20 || r.NonUniformPSNR < 20 || r.ReencodePSNR < 20 {
			t.Errorf("%s/%s: implausible PSNRs %+v", r.Video, r.Object, r)
		}
		// Sparse videos should benefit from tiling.
		if r.BestNonUniformImp < -100 {
			t.Errorf("%s/%s: non-uniform improvement %f", r.Video, r.Object, r.BestNonUniformImp)
		}
	}
}

func TestRunFigure7(t *testing.T) {
	results, tab, err := RunFigure7(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(uniformGrids()) {
		t.Fatalf("results = %d grids", len(results))
	}
	if len(tab.Rows) != len(results) {
		t.Error("table mismatch")
	}
	for _, r := range results {
		if len(r.Imps) == 0 {
			t.Errorf("grid %s has no samples", r.Grid)
		}
	}
}

func TestRunFigure8(t *testing.T) {
	cells, tab, err := RunFigure8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) == 0 {
		t.Fatal("no cells")
	}
	targets := map[string]bool{}
	for _, c := range cells {
		targets[c.Target] = true
		if c.Granularity != "fine" && c.Granularity != "coarse" {
			t.Errorf("granularity %q", c.Granularity)
		}
	}
	for _, want := range []string{"same", "all"} {
		if !targets[want] {
			t.Errorf("missing target %q (have %v)", want, targets)
		}
	}
	if len(tab.Rows) != len(cells) {
		t.Error("table mismatch")
	}
}

func TestRunFigure9(t *testing.T) {
	results, tab, err := RunFigure9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("durations = %d", len(results))
	}
	if len(tab.Rows) != 4 {
		t.Error("table mismatch")
	}
	for _, r := range results {
		if len(r.Imps) == 0 || len(r.StorageRel) == 0 {
			t.Errorf("duration %ds has no samples", r.DurationSec)
		}
		for _, s := range r.StorageRel {
			if s <= 0 || s > 3 {
				t.Errorf("storage ratio %f implausible", s)
			}
		}
	}
}

func TestRunFigure10(t *testing.T) {
	points, tab, err := RunFigure10(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range points {
		if p.PixelRatio < 0 || p.PixelRatio > 1.01 {
			t.Errorf("%s/%s/%s ratio %f", p.Video, p.Object, p.Layout, p.PixelRatio)
		}
	}
	if len(tab.Rows) != 4 {
		t.Errorf("quadrant rows = %d", len(tab.Rows))
	}
}

func TestRunFigure11SingleWorkload(t *testing.T) {
	series, tables, t2, err := RunFigure11(tiny(), []string{"W1"})
	if err != nil {
		t.Fatal(err)
	}
	// 2 videos x 4 strategies.
	if len(series) != 8 {
		t.Fatalf("series = %d, want 8", len(series))
	}
	if len(tables) != 1 {
		t.Fatalf("tables = %d", len(tables))
	}
	if len(t2.Rows) != 4 {
		t.Errorf("table2 rows = %d", len(t2.Rows))
	}
	for _, s := range series {
		if len(s.CumNorm) != 5 {
			t.Fatalf("series %s/%s has %d points", s.Strategy, s.Video, len(s.CumNorm))
		}
		// Cumulative must be non-decreasing and positive.
		prev := 0.0
		for _, v := range s.CumNorm {
			if v < prev {
				t.Errorf("%s: cumulative decreased", s.Strategy)
			}
			prev = v
		}
		if s.Strategy == StratNotTiled {
			// Untiled normalizes to ~1 per query.
			if f := s.Final(); f < 4.9 || f > 5.1 {
				t.Errorf("untiled final = %f, want ~5", f)
			}
		}
	}
}

func TestRunFigure12(t *testing.T) {
	series, tab, err := RunFigure12(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(series) == 0 {
		t.Fatal("no series")
	}
	strategies := map[string]bool{}
	for _, s := range series {
		strategies[s.Strategy] = true
	}
	for _, want := range []string{StratNotTiled, StratPreTileAll, StratPreTileBgSub, StratIncRegret} {
		if !strategies[want] {
			t.Errorf("missing strategy %s", want)
		}
	}
	if len(tab.Rows) != 4 {
		t.Errorf("table rows = %d", len(tab.Rows))
	}
	// Pre-tiling strategies must show large upfront cost at query 1
	// relative to not-tiled.
	firstOf := map[string]float64{}
	for _, s := range series {
		firstOf[s.Strategy] += s.CumNorm[0]
	}
	if firstOf[StratPreTileAll] <= firstOf[StratNotTiled] {
		t.Errorf("pre-tile upfront cost %f not above baseline %f",
			firstOf[StratPreTileAll], firstOf[StratNotTiled])
	}
}

func TestRunEdgeDetection(t *testing.T) {
	results, tab, err := RunEdgeDetection(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no results")
	}
	names := map[string]bool{}
	for _, r := range results {
		names[r.Detector] = true
	}
	for _, want := range []string{"bgsub-knn", "yolov3-tiny", "yolov3-every5", "yolov3-every1"} {
		if !names[want] {
			t.Errorf("missing detector %s", want)
		}
	}
	if len(tab.Rows) != len(results) {
		t.Error("table mismatch")
	}
}

func TestRunCostModelFit(t *testing.T) {
	fit, tab, err := RunCostModelFit(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if fit.Samples < 10 {
		t.Fatalf("only %d samples", fit.Samples)
	}
	if fit.Report.R2 < 0.8 {
		t.Errorf("R2 = %f; the linear cost model should fit well (paper: 0.996)", fit.Report.R2)
	}
	if fit.Model.Beta <= 0 {
		t.Errorf("beta = %g", fit.Model.Beta)
	}
	if len(tab.Rows) != 4 {
		t.Error("table shape")
	}
}

func TestRunAblationAlpha(t *testing.T) {
	cells, tab, err := RunAblationAlpha(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	if len(tab.Rows) != 4 {
		t.Error("table shape")
	}
	// Stricter alpha admits fewer bad layouts (monotone in KeptBad).
	for i := 1; i < len(cells); i++ {
		if cells[i].KeptBad < cells[i-1].KeptBad {
			t.Errorf("KeptBad not monotone: %+v", cells)
			break
		}
	}
}

func TestRunAblationEta(t *testing.T) {
	cells, tab, err := RunAblationEta(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	if len(tab.Rows) != 4 {
		t.Error("table shape")
	}
	for _, c := range cells {
		if len(c.Finals) == 0 {
			t.Errorf("eta %.1f has no finals", c.Eta)
		}
	}
}

func TestWorkloadVideosRouting(t *testing.T) {
	o := tiny().withDefaults()
	for _, name := range []string{"W1", "W4"} {
		for _, p := range workloadVideos(o, name) {
			if p.Spec.Dataset != "VisualRoad" {
				t.Errorf("%s routed to %s", name, p.Spec.Dataset)
			}
		}
	}
	for _, name := range []string{"W5", "W6"} {
		for _, p := range workloadVideos(o, name) {
			if p.SparseExpected {
				t.Errorf("%s routed to sparse video %s", name, p.Spec.Name)
			}
		}
	}
}

func TestQuickOptions(t *testing.T) {
	q := Quick().withDefaults()
	if q.Width == 0 || q.QueryCap == 0 {
		t.Error("Quick options incomplete")
	}
}

func TestPrepare(t *testing.T) {
	o := tiny().withDefaults()
	p := scene.Presets(o.sceneOptions())[0]
	m, err := prepare(o, p)
	if err != nil {
		t.Fatal(err)
	}
	if m.numSOTs() != (m.numFrames+o.FPS-1)/o.FPS {
		t.Errorf("numSOTs = %d", m.numSOTs())
	}
	if len(m.boxes) == 0 {
		t.Error("no detections")
	}
	from, to := m.sotRange(0)
	if from != 0 || to != min(o.FPS, m.numFrames) {
		t.Errorf("sotRange(0) = [%d,%d)", from, to)
	}
	ds := m.detections()
	if len(ds) == 0 {
		t.Error("detections() empty")
	}
	_ = workload.Names()
}
