package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/costmodel"
	"github.com/tasm-repro/tasm/internal/detect"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/policy"
	"github.com/tasm-repro/tasm/internal/stats"
	"github.com/tasm-repro/tasm/internal/workload"
)

// EdgeResult aggregates §5.2.4: query-time improvement of layouts designed
// around each cheap detector's output, split by video density.
type EdgeResult struct {
	Detector string
	Sparse   bool
	Imps     []float64
}

// RunEdgeDetection reproduces §5.2.4: layouts built from background
// subtraction, YOLOv3-tiny, full YOLOv3 every five frames, and full YOLOv3
// every frame, measured against the untiled baseline.
func RunEdgeDetection(o Options) ([]EdgeResult, *Table, error) {
	o = o.withDefaults()
	detectors := []struct {
		name string
		make func() detect.Detector
	}{
		{"bgsub-knn", func() detect.Detector {
			return &detect.BackgroundSub{Lat: detect.EdgeLatencies(), Seed: o.Seed}
		}},
		{"yolov3-tiny", func() detect.Detector {
			return &detect.Tiny{Lat: detect.EdgeLatencies(), Seed: o.Seed}
		}},
		{"yolov3-every5", func() detect.Detector {
			return &detect.EveryN{Inner: &detect.Oracle{Lat: detect.EdgeLatencies(), Seed: o.Seed}, N: 5}
		}},
		{"yolov3-every1", func() detect.Detector {
			return &detect.Oracle{Lat: detect.EdgeLatencies(), Seed: o.Seed}
		}},
	}
	cells := map[string]*EdgeResult{}
	cell := func(name string, sparse bool) *EdgeResult {
		key := fmt.Sprintf("%s|%v", name, sparse)
		c := cells[key]
		if c == nil {
			c = &EdgeResult{Detector: name, Sparse: sparse}
			cells[key] = c
		}
		return c
	}
	for _, p := range o.presets(nil) {
		o.progressf("edge: %s\n", p.Spec.Name)
		m, err := prepare(o, p)
		if err != nil {
			return nil, nil, err
		}
		defer m.cleanup()
		sparse := m.video.Sparse()
		untiled, err := m.untiledPlan(o)
		if err != nil {
			return nil, nil, err
		}
		for _, d := range detectors {
			det := d.make()
			ds, _ := detect.Run(det, m.video, 0, m.numFrames)
			boxesBySOT := map[int][]geom.Rect{}
			for _, dd := range ds {
				boxesBySOT[dd.Frame/m.gopLen] = append(boxesBySOT[dd.Frame/m.gopLen], dd.Box)
			}
			layouts := make([]layout.Layout, m.numSOTs())
			for si := range layouts {
				l, err := layout.Partition(boxesBySOT[si], layout.Fine, o.constraints())
				if err != nil {
					return nil, nil, err
				}
				layouts[si] = l
			}
			pl, err := m.encodePlan(o, "edge-"+d.name, layouts)
			if err != nil {
				return nil, nil, err
			}
			for _, obj := range p.QueryClasses {
				base, err := m.measureQuery(untiled, obj)
				if err != nil {
					return nil, nil, err
				}
				if base.Pixels == 0 {
					continue
				}
				mn, err := m.measureQuery(pl, obj)
				if err != nil {
					return nil, nil, err
				}
				c := cell(d.name, sparse)
				c.Imps = append(c.Imps, improvementPct(base.Wall, mn.Wall))
			}
		}
	}
	var out []EdgeResult
	for _, d := range detectors {
		for _, sparse := range []bool{true, false} {
			if c := cells[fmt.Sprintf("%s|%v", d.name, sparse)]; c != nil {
				out = append(out, *c)
			}
		}
	}
	t := &Table{
		Title:   "§5.2.4: layouts from cheap detection (median [IQR] improvement vs untiled)",
		Columns: []string{"detector", "density", "median", "q25", "q75"},
	}
	for _, c := range out {
		q := stats.ComputeQuartiles(c.Imps)
		d := "dense"
		if c.Sparse {
			d = "sparse"
		}
		t.Rows = append(t.Rows, []string{c.Detector, d, fmtPct(q.Q50), fmtPct(q.Q25), fmtPct(q.Q75)})
	}
	t.Notes = append(t.Notes,
		"paper: bgsub ~3% worse than not tiling; tiny median 16%;",
		"full-every-5 within 5% (sparse) / 16% (dense) of every-frame")
	return out, t, nil
}

// FitResult reports the cost-model calibration (paper §4.1: R² = 0.996).
type FitResult struct {
	Model   costmodel.Model
	Report  costmodel.FitReport
	Samples int
}

// RunCostModelFit reproduces the paper's cost-model validation: measure
// decode times across many (video, object, layout) combinations and fit
// C = β·P + γ·T by least squares.
func RunCostModelFit(o Options) (FitResult, *Table, error) {
	o = o.withDefaults()
	var samples []costmodel.Sample
	presets := o.presets(nil)
	if len(presets) > 4 {
		presets = presets[:4]
	}
	for _, p := range presets {
		o.progressf("costfit: %s\n", p.Spec.Name)
		m, err := prepare(o, p)
		if err != nil {
			return FitResult{}, nil, err
		}
		defer m.cleanup()
		var plans []*plan
		if up, err := m.untiledPlan(o); err == nil {
			plans = append(plans, up)
		}
		for _, g := range [][2]int{{2, 2}, {3, 3}, {5, 5}} {
			if up, err := m.uniformPlan(o, g[0], g[1]); err == nil {
				plans = append(plans, up)
			}
		}
		for _, obj := range p.QueryClasses {
			if np, err := m.nonUniformPlan(o, "fit", []string{obj}, layout.Fine); err == nil {
				plans = append(plans, np)
			}
		}
		for _, pl := range plans {
			for _, obj := range p.QueryClasses {
				// Best-of-three timing to suppress scheduler noise on
				// sub-millisecond decodes.
				var best measurement
				for rep := 0; rep < 3; rep++ {
					mm, err := m.measureQuery(pl, obj)
					if err != nil {
						return FitResult{}, nil, err
					}
					if rep == 0 || mm.Wall < best.Wall {
						best = mm
					}
				}
				if best.Pixels == 0 {
					continue
				}
				samples = append(samples, costmodel.Sample{
					Pixels: best.Pixels, Tiles: best.Tiles, Elapsed: best.Wall,
				})
			}
		}
	}
	model, rep := costmodel.Default().Fit(samples)
	t := &Table{
		Title:   "Cost model calibration: decode time ~ beta*pixels + gamma*tiles",
		Columns: []string{"metric", "value"},
		Rows: [][]string{
			{"samples", fmt.Sprint(rep.Samples)},
			{"beta (s/pixel)", fmt.Sprintf("%.3g", model.Beta)},
			{"gamma (s/tile)", fmt.Sprintf("%.3g", model.Gamma)},
			{"R^2", fmt.Sprintf("%.4f", rep.R2)},
		},
		Notes: []string{"paper fits 1,400 combinations with R^2 = 0.996"},
	}
	return FitResult{Model: model, Report: rep, Samples: len(samples)}, t, nil
}

// AlphaCell summarizes the decision rule at one α threshold.
type AlphaCell struct {
	Alpha       float64
	KeptBad     int     // tiled although slower
	SkippedGood int     // refused although faster
	MaxForgone  float64 // largest improvement refused
}

// RunAblationAlpha sweeps the do-not-tile threshold over the Figure 10
// point cloud, showing why the paper settles on α = 0.8.
func RunAblationAlpha(o Options) ([]AlphaCell, *Table, error) {
	points, _, err := RunFigure10(o)
	if err != nil {
		return nil, nil, err
	}
	alphas := []float64{0.5, 0.65, 0.8, 0.95}
	var out []AlphaCell
	t := &Table{
		Title:   "Ablation: alpha threshold for the do-not-tile rule",
		Columns: []string{"alpha", "kept-but-slower", "refused-but-faster", "max forgone imp"},
	}
	for _, a := range alphas {
		c := AlphaCell{Alpha: a}
		for _, pt := range points {
			kept := pt.PixelRatio < a
			good := pt.Improvement > 0
			if kept && !good {
				c.KeptBad++
			}
			if !kept && good {
				c.SkippedGood++
				if pt.Improvement > c.MaxForgone {
					c.MaxForgone = pt.Improvement
				}
			}
		}
		out = append(out, c)
		t.Rows = append(t.Rows, []string{
			fmtF(a), fmt.Sprint(c.KeptBad), fmt.Sprint(c.SkippedGood), fmtPct(c.MaxForgone),
		})
	}
	t.Notes = append(t.Notes, "paper: 0.8 blocks nearly all slowdowns while forgoing only small (<20%) wins")
	return out, t, nil
}

// EtaCell is one η setting's outcome on a workload.
type EtaCell struct {
	Eta     float64
	Finals  []float64 // final normalized cumulative cost per video
	Retiles int
}

// RunAblationEta sweeps the regret policy's η on workload W4 (the
// object-shift workload, where premature retiling is most costly).
func RunAblationEta(o Options) ([]EtaCell, *Table, error) {
	o = o.withDefaults()
	etas := []float64{0, 0.5, 1, 2}
	out := make([]EtaCell, len(etas))
	for i, e := range etas {
		out[i].Eta = e
	}
	root, err := os.MkdirTemp("", "tasm-eta-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(root)

	for _, p := range workloadVideos(o, "W4") {
		o.progressf("eta: %s\n", p.Spec.Name)
		m, err := prepare(o, p)
		if err != nil {
			return nil, nil, err
		}
		defer m.cleanup()
		wl := workload.W4(workload.Info(p), o.Seed)
		queries := wl.Queries
		if o.QueryCap > 0 && len(queries) > o.QueryCap {
			queries = queries[:o.QueryCap]
		}
		baseCosts, _, err := runStrategy(o, m, queries, StratNotTiled, root)
		if err != nil {
			return nil, nil, err
		}
		for i, eta := range etas {
			costs, retiles, err := runRegretWithEta(o, m, queries, eta, root)
			if err != nil {
				return nil, nil, err
			}
			run := 0.0
			for j, c := range costs {
				base := baseCosts[j]
				if base <= 0 {
					base = time.Microsecond
				}
				run += float64(c) / float64(base)
			}
			out[i].Finals = append(out[i].Finals, run)
			out[i].Retiles += retiles
		}
	}
	t := &Table{
		Title:   "Ablation: regret threshold eta on W4 (final normalized cost)",
		Columns: []string{"eta", "median final", "retiles"},
	}
	for _, c := range out {
		t.Rows = append(t.Rows, []string{fmtF(c.Eta), fmtF(stats.Median(c.Finals)), fmt.Sprint(c.Retiles)})
	}
	t.Notes = append(t.Notes, "paper: eta=0 risks wasted retiling; eta=1 (online-indexing rule) works well")
	return out, t, nil
}

func runRegretWithEta(o Options, m *micro, queries []workload.Query, eta float64, root string) ([]time.Duration, int, error) {
	tpl, err := templateDirFor(o, m, root)
	if err != nil {
		return nil, 0, err
	}
	dir := fmt.Sprintf("%s/%s-eta%.2f", root, m.preset.Spec.Name, eta)
	if err := copyDir(tpl, dir); err != nil {
		return nil, 0, err
	}
	mgr, err := core.Open(dir, managerConfig(o))
	if err != nil {
		return nil, 0, err
	}
	defer mgr.Close()
	defer os.RemoveAll(dir)

	rg := policy.NewRegret(mgr.Config().Model)
	rg.Eta = eta
	costs := make([]time.Duration, len(queries))
	retiles := 0
	for i, q := range queries {
		_, st, err := mgr.Scan(q.ToQuery())
		if err != nil {
			return nil, 0, err
		}
		cost := st.DecodeWall
		actions, err := rg.ObserveQuery(mgr, q.ToQuery())
		if err != nil {
			return nil, 0, err
		}
		if len(actions) > 0 {
			retiles += len(actions)
			rs, err := policy.Apply(context.Background(), mgr, actions)
			if err != nil {
				return nil, 0, err
			}
			cost += rs.DecodeWall + rs.EncodeWall
		}
		costs[i] = cost
	}
	return costs, retiles, nil
}
