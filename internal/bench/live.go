// Live-ingest benchmark: the append-mode write path measured through
// the full serving stack. A real tasmd handler serves on loopback TCP;
// one client appends GOP-sized batches over the binary framing while a
// second holds a /v1/subscribe tail open from frame 0 — so every
// number includes the wire, the commit queue, the MVCC manifest flip,
// and the hub wakeup, not just the encoder. Two latencies matter and
// they are not the same: how long an append call takes to return
// (producer-side backpressure) and how long until a subscriber holds
// the committed frame (append→visible, the freshness a live query
// sees). Results serialize to the BENCH_<n>.json trajectory
// (BENCH_8.json).
package bench

import (
	"context"
	"fmt"
	"math"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/server"
)

// LiveResult is the machine-readable live-ingest measurement.
type LiveResult struct {
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GeneratedAt string `json:"generated_at"`

	FrameW    int `json:"frame_w"`
	FrameH    int `json:"frame_h"`
	GOPLength int `json:"gop_length"`
	Batches   int `json:"batches"`
	Frames    int `json:"frames"`
	Errors    int `json:"errors"`

	// Append-call wall time (ms): what a producer blocks on per batch.
	AppendP50Ms float64 `json:"append_p50_ms"`
	AppendP95Ms float64 `json:"append_p95_ms"`

	// Append→visible (ms): append call start until the subscriber's
	// cursor has delivered the batch's last frame — the freshness bound
	// of querying while recording.
	VisibleP50Ms float64 `json:"visible_p50_ms"`
	VisibleP95Ms float64 `json:"visible_p95_ms"`

	// AppendRPS is the sustained frame throughput of the append loop
	// (frames per second of wall time, encode and commit included).
	AppendRPS float64 `json:"append_rps"`

	// DeliveredOK: the subscriber received every appended frame exactly
	// once, in order, and the tail terminated cleanly at the seal.
	DeliveredOK bool `json:"delivered_ok"`
}

// liveBatches is how many GOP-sized batches the appender pushes; with
// liveGOP frames per batch the run appends liveBatches*liveGOP frames.
const (
	liveBatches = 40
	liveGOP     = 5
)

// RunLive measures append latency, append→visible latency, and
// sustained append throughput against a real handler over loopback,
// with a live subscriber tailing from frame 0 throughout.
func RunLive(o Options) (LiveResult, *Table, error) {
	o = o.withDefaults()
	res := LiveResult{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		FrameW:      128, FrameH: 64,
		GOPLength: liveGOP,
		Batches:   liveBatches,
	}

	dir, err := os.MkdirTemp("", "tasm-live-*")
	if err != nil {
		return res, nil, err
	}
	defer os.RemoveAll(dir)

	sm, err := tasm.Open(dir,
		tasm.WithGOPLength(liveGOP),
		tasm.WithMinTileSize(32, 32),
		tasm.WithQP(o.QP))
	if err != nil {
		return res, nil, err
	}
	defer sm.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, nil, err
	}
	srv := &http.Server{Handler: server.New(sm, server.Config{MaxInflight: 64})}
	go srv.Serve(ln) //nolint:errcheck // closed via Shutdown below
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // bench teardown
	}()

	// The appender uses the binary framing — the form a sustained camera
	// feed should use; the subscriber negotiates it too.
	appender, err := client.New(ln.Addr().String(), client.WithEncoding(client.Binary))
	if err != nil {
		return res, nil, err
	}
	defer appender.Close()
	tail, err := client.New(ln.Addr().String(), client.WithEncoding(client.Binary))
	if err != nil {
		return res, nil, err
	}
	defer tail.Close()

	// The whole feed is pre-generated; frame synthesis is untimed.
	v, err := scene.Generate(scene.Spec{
		Name: "livecam", W: res.FrameW, H: res.FrameH, FPS: 10,
		DurationSec: liveBatches * liveGOP / 10,
		Classes:     []scene.ClassMix{{Class: scene.Car, Count: 1, SizeFrac: 0.25}},
		Seed:        o.Seed,
	})
	if err != nil {
		return res, nil, err
	}
	total := liveBatches * liveGOP
	feed := v.Frames(0, total)
	res.Frames = total

	ctx := context.Background()
	if err := appender.CreateLiveContext(ctx, "livecam", res.FrameW, res.FrameH, 10, nil); err != nil {
		return res, nil, err
	}

	// The subscriber tails from 0 and stamps each frame's arrival; the
	// channel is sized for the whole feed so stamping never blocks
	// delivery (the measurement must not throttle what it measures).
	type arrival struct {
		index int
		at    time.Time
	}
	arrivals := make(chan arrival, total)
	subErr := make(chan error, 1)
	cur, err := tail.Subscribe(ctx, "livecam", 0)
	if err != nil {
		return res, nil, err
	}
	go func() {
		defer close(arrivals)
		for cur.Next() {
			arrivals <- arrival{cur.Result().Index, time.Now()}
		}
		subErr <- cur.Err()
	}()

	o.progressf("live: appending %d batches of %d frames\n", liveBatches, liveGOP)
	appendMs := make([]float64, 0, liveBatches)
	batchStart := make([]time.Time, liveBatches)
	loopStart := time.Now()
	for b := 0; b < liveBatches; b++ {
		batch := feed[b*liveGOP : (b+1)*liveGOP]
		batchStart[b] = time.Now()
		if _, err := appender.AppendContext(ctx, "livecam", batch); err != nil {
			res.Errors++
			continue
		}
		appendMs = append(appendMs, 1e3*time.Since(batchStart[b]).Seconds())
	}
	appendWall := time.Since(loopStart)
	res.AppendRPS = float64(total) / appendWall.Seconds()

	// Seal: caught-up subscribers terminate cleanly, bounding the drain.
	if err := appender.SealContext(ctx, "livecam"); err != nil {
		return res, nil, err
	}

	// Drain the tail; exactly-once in-order delivery is part of the
	// result, not an assumption.
	visibleMs := make([]float64, 0, total)
	next := 0
	ordered := true
	for a := range arrivals {
		if a.index != next {
			ordered = false
		}
		next = a.index + 1
		if b := a.index / liveGOP; b < liveBatches {
			visibleMs = append(visibleMs, 1e3*a.at.Sub(batchStart[b]).Seconds())
		}
	}
	if err := <-subErr; err != nil {
		return res, nil, fmt.Errorf("bench: live subscriber: %w", err)
	}
	res.DeliveredOK = ordered && next == total && res.Errors == 0

	res.AppendP50Ms = exactQuantile(appendMs, 0.50)
	res.AppendP95Ms = exactQuantile(appendMs, 0.95)
	res.VisibleP50Ms = exactQuantile(visibleMs, 0.50)
	res.VisibleP95Ms = exactQuantile(visibleMs, 0.95)

	t := &Table{
		Title:   "Live ingest: append latency, append→visible, sustained throughput",
		Columns: []string{"frames", "batches", "append p50/p95 ms", "visible p50/p95 ms", "append fps", "errors", "delivered"},
		Rows: [][]string{{
			strconv.Itoa(res.Frames),
			strconv.Itoa(res.Batches),
			fmt.Sprintf("%.1f / %.1f", res.AppendP50Ms, res.AppendP95Ms),
			fmt.Sprintf("%.1f / %.1f", res.VisibleP50Ms, res.VisibleP95Ms),
			fmt.Sprintf("%.1f", res.AppendRPS),
			strconv.Itoa(res.Errors),
			strconv.FormatBool(res.DeliveredOK),
		}},
		Notes: []string{
			fmt.Sprintf("%d CPUs, %dx%d frames, GOP %d, binary framing both directions, subscriber tailing from frame 0 throughout",
				res.CPUs, res.FrameW, res.FrameH, res.GOPLength),
			"visible = append call start → subscriber cursor delivered the frame (wire + queue + commit + hub wakeup)",
			"target: delivered true (every frame exactly once, in order, clean seal), zero errors",
		},
	}
	return res, t, nil
}

// exactQuantile is the nearest-rank quantile of a small sample (the
// batch counts here are far too small for histogram bucketing).
func exactQuantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	return s[i]
}
