// Open-loop load harness: the experiment measuring serving latency
// under concurrency rather than in isolation. It stands up a real
// multi-tenant tasmd handler on a loopback listener and fires a mixed
// scan/ingest workload at it with arrivals scheduled by a clock, not by
// completions — the open-loop discipline, where a slow server faces a
// growing backlog instead of a politely waiting client, so queueing
// delay shows up in the tail instead of hiding in a lower offered rate.
// Each target-RPS level reports p50/p95/p99 twice: from client-side
// timing and from the server's own /metrics histograms (scraped before
// and after the level and differenced), cross-checking that the
// observability pipeline agrees with ground truth. Results serialize to
// the BENCH_<n>.json trajectory (BENCH_7.json).
package bench

import (
	"context"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/server"
)

// LoadLevelResult is one target-RPS step of the ramp.
type LoadLevelResult struct {
	TargetRPS   int     `json:"target_rps"`
	DurationSec float64 `json:"duration_sec"`
	// Offered arrivals vs completed responses: in an open loop the two
	// differ only by errors (every arrival is launched regardless of
	// how the server is doing).
	Offered     int     `json:"offered"`
	Completed   int     `json:"completed"`
	Errors      int     `json:"errors"`
	AchievedRPS float64 `json:"achieved_rps"`
	// MaxInflight is the peak concurrency the open loop reached — the
	// ramp: higher target rates ride on more simultaneous requests.
	MaxInflight int `json:"max_inflight"`
	ScanOps     int `json:"scan_ops"`
	IngestOps   int `json:"ingest_ops"`

	// Client-side wall-time quantiles (ms), measured around each call.
	ClientP50Ms float64 `json:"client_p50_ms"`
	ClientP95Ms float64 `json:"client_p95_ms"`
	ClientP99Ms float64 `json:"client_p99_ms"`

	// Server-side quantiles (ms) from the tasm_request_seconds
	// histogram delta across the level's /metrics scrapes.
	ServerP50Ms float64 `json:"server_p50_ms"`
	ServerP95Ms float64 `json:"server_p95_ms"`
	ServerP99Ms float64 `json:"server_p99_ms"`

	// ServerCount is the histogram's observation delta; it must equal
	// Completed + Errors for the scrape accounting to be trusted.
	ServerCount int `json:"server_count"`
	// CrossCheckOK: the counts match exactly, the medians agree within
	// one bucket step, and the server's tail quantiles do not exceed the
	// client's (plus bucket resolution). The tails are bounded, not
	// equated: open-loop client timing includes queueing and scheduling
	// delay the server-side histogram legitimately never sees.
	CrossCheckOK bool `json:"crosscheck_ok"`
}

// LoadResult is the machine-readable open-loop measurement.
type LoadResult struct {
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GeneratedAt string `json:"generated_at"`

	Tenants  int               `json:"tenants"`
	ScanFrac float64           `json:"scan_frac"`
	Levels   []LoadLevelResult `json:"levels"`
}

// loadScanFrac is the scan share of the op mix; the rest are small
// ingests, so the workload exercises both the read and write paths of
// every tenant.
const loadScanFrac = 0.85

// loadLevels are the target arrival rates of the ramp; loadLevelDur is
// how long each level offers load. The high level's inter-arrival gap
// sits below the mix's tail latency, so arrivals overlap and the open
// loop actually ramps concurrency instead of serializing.
var loadLevels = []int{30, 240}

const loadLevelDur = 2500 * time.Millisecond

// RunLoad drives the open-loop workload against a real tasmd handler
// over loopback TCP: two authenticated tenants, a clock-scheduled
// arrival process per level, and quantiles from both ends of the wire.
func RunLoad(o Options) (LoadResult, *Table, error) {
	o = o.withDefaults()
	res := LoadResult{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		ScanFrac:    loadScanFrac,
	}

	dir, err := os.MkdirTemp("", "tasm-load-*")
	if err != nil {
		return res, nil, err
	}
	defer os.RemoveAll(dir)

	sm, err := tasm.Open(dir,
		tasm.WithGOPLength(5),
		tasm.WithMinTileSize(32, 32),
		tasm.WithCacheBudget(64<<20),
		tasm.WithQP(o.QP))
	if err != nil {
		return res, nil, err
	}
	defer sm.Close()

	// One seeded video per tenant, with detections marked so scans
	// return regions. The videos are small on purpose: the experiment
	// measures serving under concurrency, not decode throughput.
	tenants := []string{"alpha", "beta"}
	res.Tenants = len(tenants)
	tokens := map[string]string{}
	for i, tn := range tenants {
		tokens["token-"+tn] = tn
		v, err := scene.Generate(scene.Spec{
			Name: tn + "cam", W: 192, H: 96, FPS: 10, DurationSec: 2,
			Classes: []scene.ClassMix{
				{Class: scene.Car, Count: 2, SizeFrac: 0.18},
				{Class: scene.Person, Count: 1, SizeFrac: 0.2},
			},
			Seed: o.Seed + uint64(i),
		})
		if err != nil {
			return res, nil, err
		}
		n := v.Spec.NumFrames()
		if _, err := sm.Ingest(tn+"cam", v.Frames(0, n), v.Spec.FPS); err != nil {
			return res, nil, err
		}
		var ds []tasm.Detection
		for f := 0; f < n; f++ {
			for _, tr := range v.GroundTruth(f) {
				ds = append(ds, tasm.Detection{Frame: f, Label: tr.Label, Box: tr.Box})
			}
		}
		if err := sm.AddDetections(tn+"cam", ds); err != nil {
			return res, nil, err
		}
		if err := sm.MarkDetected(tn+"cam", "car", 0, n); err != nil {
			return res, nil, err
		}
	}

	// The ingest ops all write the same tiny pre-generated clip under
	// fresh video names; generating it is untimed.
	clip, err := scene.Generate(scene.Spec{
		Name: "clip", W: 128, H: 64, FPS: 10, DurationSec: 1,
		Classes: []scene.ClassMix{{Class: scene.Car, Count: 1, SizeFrac: 0.25}},
		Seed:    o.Seed + 99,
	})
	if err != nil {
		return res, nil, err
	}
	clipFrames := clip.Frames(0, 4)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, nil, err
	}
	// MaxInflight is raised above the open loop's plausible peak so the
	// measurement sees queueing, not limiter rejections.
	srv := &http.Server{Handler: server.New(sm, server.Config{
		Tenants:     tokens,
		MaxInflight: 512, TenantMaxInflight: 512,
	})}
	go srv.Serve(ln) //nolint:errcheck // closed via Shutdown below
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // bench teardown
	}()

	clients := make([]*client.Client, len(tenants))
	for i, tn := range tenants {
		c, err := client.New(ln.Addr().String(), client.WithToken("token-"+tn))
		if err != nil {
			return res, nil, err
		}
		defer c.Close()
		clients[i] = c
	}

	ctx := context.Background()
	// Untimed warm-up: connections, file cache, the tile cache.
	for i, tn := range tenants {
		if _, _, err := clients[i].ScanSQLContext(ctx, scanSQL(tn)); err != nil {
			return res, nil, err
		}
	}

	metricsURL := "http://" + ln.Addr().String() + "/metrics"
	prng := rand.New(rand.NewSource(int64(o.Seed)))
	var ingestSeq atomic.Int64

	for _, rps := range loadLevels {
		o.progressf("load: level %d rps\n", rps)
		before, err := scrapeRequestHist(metricsURL, "token-"+tenants[0])
		if err != nil {
			return res, nil, err
		}

		lv := LoadLevelResult{TargetRPS: rps, DurationSec: loadLevelDur.Seconds()}
		hist := obs.NewHistogram(obs.DefaultLatencyBuckets)
		var wg sync.WaitGroup
		var errs, inflight, peak atomic.Int64
		interval := time.Duration(float64(time.Second) / float64(rps))
		offered := int(loadLevelDur / interval)
		start := time.Now()
		for i := 0; i < offered; i++ {
			// Open loop: the i'th arrival fires at start + i*interval no
			// matter how many predecessors are still in flight.
			if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
				time.Sleep(d)
			}
			ti := i % len(tenants)
			tn, c := tenants[ti], clients[ti]
			scan := prng.Float64() < loadScanFrac
			if scan {
				lv.ScanOps++
			} else {
				lv.IngestOps++
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				cur := inflight.Add(1)
				for p := peak.Load(); cur > p && !peak.CompareAndSwap(p, cur); p = peak.Load() {
				}
				defer inflight.Add(-1)
				t0 := time.Now()
				var err error
				if scan {
					_, _, err = c.ScanSQLContext(ctx, scanSQL(tn))
				} else {
					name := fmt.Sprintf("ing%s%d", tn, ingestSeq.Add(1))
					_, err = c.IngestContext(ctx, name, clipFrames, 10)
				}
				hist.Observe(time.Since(t0).Seconds())
				if err != nil {
					errs.Add(1)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		// The last responses' server-side observations land in a defer
		// that can run marginally after the client sees the final byte;
		// give the scrape a beat so the before/after delta is complete.
		time.Sleep(50 * time.Millisecond)
		after, err := scrapeRequestHist(metricsURL, "token-"+tenants[0])
		if err != nil {
			return res, nil, err
		}

		lv.Offered = offered
		lv.Errors = int(errs.Load())
		lv.Completed = offered - lv.Errors
		lv.AchievedRPS = float64(offered) / elapsed.Seconds()
		lv.MaxInflight = int(peak.Load())

		cs := hist.Snapshot()
		lv.ClientP50Ms = 1e3 * cs.Quantile(0.50)
		lv.ClientP95Ms = 1e3 * cs.Quantile(0.95)
		lv.ClientP99Ms = 1e3 * cs.Quantile(0.99)

		ss := after.sub(before)
		lv.ServerCount = int(ss.Count)
		lv.ServerP50Ms = 1e3 * ss.Quantile(0.50)
		lv.ServerP95Ms = 1e3 * ss.Quantile(0.95)
		lv.ServerP99Ms = 1e3 * ss.Quantile(0.99)

		lv.CrossCheckOK = lv.ServerCount == offered &&
			quantilesAgree(lv.ClientP50Ms, lv.ServerP50Ms) &&
			serverNotAbove(lv.ServerP95Ms, lv.ClientP95Ms) &&
			serverNotAbove(lv.ServerP99Ms, lv.ClientP99Ms)
		res.Levels = append(res.Levels, lv)
	}

	t := &Table{
		Title:   "Open-loop load: mixed scan/ingest, client vs server quantiles",
		Columns: []string{"target rps", "achieved", "peak conc", "errors", "client p50/p95/p99 ms", "server p50/p95/p99 ms", "agree"},
	}
	for _, lv := range res.Levels {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(lv.TargetRPS),
			fmt.Sprintf("%.1f", lv.AchievedRPS),
			strconv.Itoa(lv.MaxInflight),
			strconv.Itoa(lv.Errors),
			fmt.Sprintf("%.1f / %.1f / %.1f", lv.ClientP50Ms, lv.ClientP95Ms, lv.ClientP99Ms),
			fmt.Sprintf("%.1f / %.1f / %.1f", lv.ServerP50Ms, lv.ServerP95Ms, lv.ServerP99Ms),
			strconv.FormatBool(lv.CrossCheckOK),
		})
	}
	t.Notes = []string{
		fmt.Sprintf("%d CPUs, %d tenants, %.0f%% scans / %.0f%% ingests, open-loop arrivals (clock-scheduled, not completion-gated)",
			res.CPUs, res.Tenants, 100*loadScanFrac, 100*(1-loadScanFrac)),
		"server quantiles from the tasm_request_seconds histogram delta across the level's scrapes",
		"target: zero errors, counts exact, medians within one bucket, server tails bounded by client tails",
	}
	return res, t, nil
}

func scanSQL(tenant string) string {
	return "SELECT car FROM " + tenant + "cam WHERE 0 <= t < 2"
}

// quantilesAgree accepts a client/server quantile pair (ms) that lands
// within one bucket step of DefaultLatencyBuckets — adjacent-bucket
// bounds are at most 2.5x apart — or within 5ms absolute, whichever is
// looser (sub-bucket noise at the fast end).
func quantilesAgree(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if math.Abs(a-b) <= 5 {
		return true
	}
	lo, hi := math.Min(a, b), math.Max(a, b)
	return lo > 0 && hi/lo <= 2.6
}

// serverNotAbove accepts a server-side tail quantile that the
// client-side one bounds from above (within one bucket step of slack
// for histogram resolution, or 5ms absolute at the fast end). The two
// are not required to be equal: under open-loop load the client's
// measurement includes queueing and scheduling delay that is real
// latency to the caller but invisible to the in-handler histogram —
// a server tail ABOVE the client's, though, means the histogram is
// fabricating latency.
func serverNotAbove(server, client float64) bool {
	if math.IsNaN(server) || math.IsNaN(client) {
		return false
	}
	return server <= math.Max(client*2.6, client+5)
}

// scrapeRequestHist fetches /metrics (authenticated: the daemon runs
// with a tenant table, and only /v1/healthz bypasses auth) and folds
// every tasm_request_seconds_bucket series (all endpoint/tenant label
// pairs except the scrape endpoint itself) into one cumulative-count
// map, so two scrapes can be differenced into the level's latency
// histogram.
func scrapeRequestHist(url, token string) (requestHist, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return requestHist{}, err
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return requestHist{}, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return requestHist{}, fmt.Errorf("bench: scrape %s: status %d, %v", url, resp.StatusCode, err)
	}
	h := requestHist{cum: map[float64]int64{}}
	for _, line := range strings.Split(string(body), "\n") {
		rest, ok := strings.CutPrefix(line, "tasm_request_seconds_bucket{")
		if !ok || strings.Contains(rest, `endpoint="GET /metrics"`) {
			continue
		}
		labels, value, ok := strings.Cut(rest, "} ")
		if !ok {
			continue
		}
		leStart := strings.Index(labels, `le="`)
		if leStart < 0 {
			continue
		}
		leStr := labels[leStart+len(`le="`):]
		leStr, _, ok = strings.Cut(leStr, `"`)
		if !ok {
			continue
		}
		le := math.Inf(1)
		if leStr != "+Inf" {
			if le, err = strconv.ParseFloat(leStr, 64); err != nil {
				return requestHist{}, fmt.Errorf("bench: scrape: bad le %q: %v", leStr, err)
			}
		}
		n, err := strconv.ParseInt(value, 10, 64)
		if err != nil {
			return requestHist{}, fmt.Errorf("bench: scrape: bad bucket count %q: %v", value, err)
		}
		h.cum[le] += n
	}
	return h, nil
}

// requestHist is a scraped cumulative-bucket histogram (summed over
// label pairs), keyed by upper bound.
type requestHist struct {
	cum map[float64]int64
}

// sub converts the cumulative delta (h - before) into an obs snapshot
// aligned with DefaultLatencyBuckets, ready for Quantile.
func (h requestHist) sub(before requestHist) obs.HistSnapshot {
	bounds := obs.DefaultLatencyBuckets
	s := obs.HistSnapshot{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
	var prev int64
	for i, b := range bounds {
		cum := h.cum[b] - before.cum[b]
		s.Counts[i] = cum - prev
		prev = cum
	}
	inf := h.cum[math.Inf(1)] - before.cum[math.Inf(1)]
	s.Counts[len(bounds)] = inf - prev
	s.Count = inf
	return s
}
