package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/costmodel"
	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/stats"
)

// uniformGrids is the sweep of Figure 7 (the paper sweeps 2×2 through
// 7×10; grid heights clamp to the minimum tile size at our resolution).
func uniformGrids() [][2]int {
	return [][2]int{{2, 2}, {3, 3}, {4, 4}, {5, 5}, {5, 8}, {7, 10}}
}

// Table1Row summarizes one dataset preset, mirroring the paper's Table 1.
type Table1Row struct {
	Name     string
	Dataset  string
	Type     string
	Duration int
	Res      string
	Coverage float64
	Classes  []string
	Sparse   bool
}

// RunTable1 regenerates Table 1: the dataset roster with measured per-frame
// object coverage.
func RunTable1(o Options) ([]Table1Row, *Table, error) {
	o = o.withDefaults()
	var rows []Table1Row
	t := &Table{
		Title:   "Table 1: Video datasets (synthetic stand-ins)",
		Columns: []string{"video", "dataset", "dur(s)", "res", "coverage", "classes", "class"},
	}
	for _, p := range o.presets(nil) {
		v, err := scene.Generate(p.Spec)
		if err != nil {
			return nil, nil, err
		}
		cov := v.MeanCoverage()
		row := Table1Row{
			Name: p.Spec.Name, Dataset: p.Spec.Dataset,
			Duration: p.Spec.DurationSec,
			Res:      fmt.Sprintf("%dx%d", p.Spec.W, p.Spec.H),
			Coverage: cov, Classes: p.QueryClasses, Sparse: cov < 0.20,
		}
		rows = append(rows, row)
		kind := "dense"
		if row.Sparse {
			kind = "sparse"
		}
		t.Rows = append(t.Rows, []string{
			row.Name, row.Dataset, fmt.Sprintf("%d", row.Duration), row.Res,
			fmtPct(cov * 100), fmt.Sprint(row.Classes), kind,
		})
	}
	t.Notes = append(t.Notes, "paper: Visual Road 0.06-10%, Netflix 0.32-49%, NOS 25-45%, XIPH 2-59%, MOT16 3-36%, El Fuente 1-47%")
	return rows, t, nil
}

// Fig6Result holds one (video, object) sample of Figure 6.
type Fig6Result struct {
	Video  string
	Object string
	// BestUniformImp / BestNonUniformImp are % query-time improvements of
	// the best layout in each family vs the untiled video.
	BestUniformImp    float64
	BestNonUniformImp float64
	// PSNRs of the corresponding stitched tiled videos and of an untiled
	// re-encode, all vs the original (ingested) video.
	UniformPSNR    float64
	NonUniformPSNR float64
	ReencodePSNR   float64
}

// RunFigure6 reproduces Figures 6(a) and 6(b): for each (video, query
// object), the improvement from the best uniform and best non-uniform
// layout, and the quality of those layouts.
func RunFigure6(o Options) ([]Fig6Result, *Table, *Table, error) {
	o = o.withDefaults()
	var results []Fig6Result
	for _, p := range o.presets(nil) {
		o.progressf("fig6: %s\n", p.Spec.Name)
		m, err := prepare(o, p)
		if err != nil {
			return nil, nil, nil, err
		}
		defer m.cleanup()
		untiled, err := m.untiledPlan(o)
		if err != nil {
			return nil, nil, nil, err
		}
		// Reference frames: the decoded original (untiled) video.
		ref, err := decodePlanFrames(untiled)
		if err != nil {
			return nil, nil, nil, err
		}
		reencodePSNR, err := reencodeQuality(o, m, ref)
		if err != nil {
			return nil, nil, nil, err
		}
		for _, obj := range p.QueryClasses {
			base, err := m.measureQuery(untiled, obj)
			if err != nil {
				return nil, nil, nil, err
			}
			if base.Pixels == 0 {
				continue
			}
			// Best uniform layout.
			bestUImp := math.Inf(-1)
			var bestUPlan *plan
			for _, g := range uniformGrids() {
				up, err := m.uniformPlan(o, g[0], g[1])
				if err != nil {
					return nil, nil, nil, err
				}
				mu, err := m.measureQuery(up, obj)
				if err != nil {
					return nil, nil, nil, err
				}
				if imp := improvementPct(base.Wall, mu.Wall); imp > bestUImp {
					bestUImp, bestUPlan = imp, up
				}
			}
			// Best non-uniform layout: fine and coarse around the object.
			bestNImp := math.Inf(-1)
			var bestNPlan *plan
			for _, g := range []layout.Granularity{layout.Fine, layout.Coarse} {
				np, err := m.nonUniformPlan(o, "nonuniform-"+g.String()+"-"+obj, []string{obj}, g)
				if err != nil {
					return nil, nil, nil, err
				}
				mn, err := m.measureQuery(np, obj)
				if err != nil {
					return nil, nil, nil, err
				}
				if imp := improvementPct(base.Wall, mn.Wall); imp > bestNImp {
					bestNImp, bestNPlan = imp, np
				}
			}
			res := Fig6Result{
				Video: p.Spec.Name, Object: obj,
				BestUniformImp:    bestUImp,
				BestNonUniformImp: bestNImp,
				ReencodePSNR:      reencodePSNR,
			}
			if res.UniformPSNR, err = planQuality(bestUPlan, ref); err != nil {
				return nil, nil, nil, err
			}
			if res.NonUniformPSNR, err = planQuality(bestNPlan, ref); err != nil {
				return nil, nil, nil, err
			}
			results = append(results, res)
		}
	}

	// Figure 6(a): improvements for videos/objects that benefit from tiling.
	var uImps, nImps, uPSNRs, nPSNRs, rePSNRs []float64
	for _, r := range results {
		if r.BestUniformImp > 0 || r.BestNonUniformImp > 0 {
			uImps = append(uImps, r.BestUniformImp)
			nImps = append(nImps, r.BestNonUniformImp)
			uPSNRs = append(uPSNRs, r.UniformPSNR)
			nPSNRs = append(nPSNRs, r.NonUniformPSNR)
			rePSNRs = append(rePSNRs, r.ReencodePSNR)
		}
	}
	qa := &Table{
		Title:   "Figure 6(a): query-time improvement of best layouts (median [IQR])",
		Columns: []string{"layout family", "median", "q25", "q75", "mean"},
	}
	uq, nq := stats.ComputeQuartiles(uImps), stats.ComputeQuartiles(nImps)
	qa.Rows = append(qa.Rows,
		[]string{"best uniform", fmtPct(uq.Q50), fmtPct(uq.Q25), fmtPct(uq.Q75), fmtPct(stats.Mean(uImps))},
		[]string{"best non-uniform", fmtPct(nq.Q50), fmtPct(nq.Q25), fmtPct(nq.Q75), fmtPct(stats.Mean(nImps))},
	)
	qa.Notes = append(qa.Notes, "paper: uniform avg 37%, non-uniform avg 51% (up to 94%)")

	qb := &Table{
		Title:   "Figure 6(b): quality (PSNR) of best layouts vs original video",
		Columns: []string{"encoding", "median PSNR", "q25", "q75"},
	}
	up, np, rp := stats.ComputeQuartiles(uPSNRs), stats.ComputeQuartiles(nPSNRs), stats.ComputeQuartiles(rePSNRs)
	qb.Rows = append(qb.Rows,
		[]string{"best uniform", fmtDB(up.Q50), fmtDB(up.Q25), fmtDB(up.Q75)},
		[]string{"best non-uniform", fmtDB(np.Q50), fmtDB(np.Q25), fmtDB(np.Q75)},
		[]string{"re-encode, no tiles", fmtDB(rp.Q50), fmtDB(rp.Q25), fmtDB(rp.Q75)},
	)
	qb.Notes = append(qb.Notes, "paper: uniform 36 dB, non-uniform 40 dB, re-encode 46 dB")
	return results, qa, qb, nil
}

// decodePlanFrames fully decodes a plan back to frames (stitching tiles).
func decodePlanFrames(p *plan) ([]*frame.Frame, error) {
	var out []*frame.Frame
	for si, tiles := range p.tiles {
		s, err := container.Stitch(p.layouts[si], tiles)
		if err != nil {
			return nil, err
		}
		frames, _, err := s.DecodeRange(0, s.FrameCount())
		if err != nil {
			return nil, err
		}
		out = append(out, frames...)
	}
	return out, nil
}

// planQuality returns the PSNR of a plan's decoded+stitched output vs ref.
func planQuality(p *plan, ref []*frame.Frame) (float64, error) {
	frames, err := decodePlanFrames(p)
	if err != nil {
		return 0, err
	}
	return frame.SequencePSNR(ref, frames), nil
}

// reencodeQuality re-encodes the decoded original without tiles and
// measures its PSNR vs the original — the generational-loss baseline the
// paper reports at 46 dB.
func reencodeQuality(o Options, m *micro, ref []*frame.Frame) (float64, error) {
	// Encode the reference frames (the decoded original) untiled, decode,
	// compare: pure generational loss.
	v, err := container.EncodeVideo(ref, o.FPS, o.codecParams())
	if err != nil {
		return 0, err
	}
	decoded, _, err := v.DecodeAll()
	if err != nil {
		return 0, err
	}
	return frame.SequencePSNR(ref, decoded), nil
}

// Fig7Result is the uniform-grid sweep of Figure 7.
type Fig7Result struct {
	Grid string
	Imps []float64 // per (video, object)
}

// RunFigure7 reproduces Figure 7: query-time improvement as the uniform
// grid grows, showing the rise and then the per-tile-overhead fall.
func RunFigure7(o Options) ([]Fig7Result, *Table, error) {
	o = o.withDefaults()
	grids := uniformGrids()
	results := make([]Fig7Result, len(grids))
	for i, g := range grids {
		results[i].Grid = fmt.Sprintf("%dx%d", g[0], g[1])
	}
	for _, p := range o.presets(nil) {
		o.progressf("fig7: %s\n", p.Spec.Name)
		m, err := prepare(o, p)
		if err != nil {
			return nil, nil, err
		}
		defer m.cleanup()
		untiled, err := m.untiledPlan(o)
		if err != nil {
			return nil, nil, err
		}
		for _, obj := range p.QueryClasses {
			base, err := m.measureQuery(untiled, obj)
			if err != nil {
				return nil, nil, err
			}
			if base.Pixels == 0 {
				continue
			}
			for gi, g := range grids {
				up, err := m.uniformPlan(o, g[0], g[1])
				if err != nil {
					return nil, nil, err
				}
				mu, err := m.measureQuery(up, obj)
				if err != nil {
					return nil, nil, err
				}
				results[gi].Imps = append(results[gi].Imps, improvementPct(base.Wall, mu.Wall))
			}
		}
	}
	t := &Table{
		Title:   "Figure 7: improvement by uniform grid size (median [IQR])",
		Columns: []string{"grid", "median", "q25", "q75", "mean"},
	}
	for _, r := range results {
		q := stats.ComputeQuartiles(r.Imps)
		t.Rows = append(t.Rows, []string{r.Grid, fmtPct(q.Q50), fmtPct(q.Q25), fmtPct(q.Q75), fmtPct(stats.Mean(r.Imps))})
	}
	t.Notes = append(t.Notes, "paper: 2x2 avg 19% rising to 36% at 5x5, falling to 28% at 7x10 with widening IQR")
	return results, t, nil
}

// Fig8Cell aggregates one (target, granularity, density) cell of Figure 8.
type Fig8Cell struct {
	Target      string // same | different | all | superset
	Granularity string
	Sparse      bool
	Imps        []float64
}

// RunFigure8 reproduces Figure 8: the effect of tile granularity and of
// which objects the layout is designed around, split sparse vs dense.
func RunFigure8(o Options) ([]Fig8Cell, *Table, error) {
	o = o.withDefaults()
	cells := map[string]*Fig8Cell{}
	cell := func(target, gran string, sparse bool) *Fig8Cell {
		key := fmt.Sprintf("%s|%s|%v", target, gran, sparse)
		c := cells[key]
		if c == nil {
			c = &Fig8Cell{Target: target, Granularity: gran, Sparse: sparse}
			cells[key] = c
		}
		return c
	}
	// Only multi-class videos support the different/superset settings,
	// matching the paper's use of Visual Road and El Fuente scenes.
	presets := o.presets(func(p scene.Preset) bool { return len(p.QueryClasses) >= 2 })
	for _, p := range presets {
		o.progressf("fig8: %s\n", p.Spec.Name)
		m, err := prepare(o, p)
		if err != nil {
			return nil, nil, err
		}
		defer m.cleanup()
		sparse := m.video.Sparse()
		untiled, err := m.untiledPlan(o)
		if err != nil {
			return nil, nil, err
		}
		allLabels := m.video.Classes()
		for _, obj := range p.QueryClasses {
			base, err := m.measureQuery(untiled, obj)
			if err != nil {
				return nil, nil, err
			}
			if base.Pixels == 0 {
				continue
			}
			other := pickOther(p.QueryClasses, obj)
			superset := []string{obj, other}
			targets := []struct {
				name   string
				labels []string
			}{
				{"same", []string{obj}},
				{"different", []string{other}},
				{"all", allLabels},
				{"superset", superset},
			}
			for _, tgt := range targets {
				if tgt.name == "different" && other == obj {
					continue
				}
				for _, g := range []layout.Granularity{layout.Fine, layout.Coarse} {
					np, err := m.nonUniformPlan(o, "f8", tgt.labels, g)
					if err != nil {
						return nil, nil, err
					}
					mn, err := m.measureQuery(np, obj)
					if err != nil {
						return nil, nil, err
					}
					c := cell(tgt.name, g.String(), sparse)
					c.Imps = append(c.Imps, improvementPct(base.Wall, mn.Wall))
				}
			}
		}
	}
	var out []Fig8Cell
	for _, c := range cells {
		out = append(out, *c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Target != out[j].Target {
			return targetOrder(out[i].Target) < targetOrder(out[j].Target)
		}
		if out[i].Sparse != out[j].Sparse {
			return out[i].Sparse
		}
		return out[i].Granularity < out[j].Granularity
	})
	t := &Table{
		Title:   "Figure 8: tile granularity vs layout target (median [IQR] improvement)",
		Columns: []string{"layout target", "density", "granularity", "median", "q25", "q75"},
	}
	for _, c := range out {
		q := stats.ComputeQuartiles(c.Imps)
		d := "dense"
		if c.Sparse {
			d = "sparse"
		}
		t.Rows = append(t.Rows, []string{c.Target, d, c.Granularity, fmtPct(q.Q50), fmtPct(q.Q25), fmtPct(q.Q75)})
	}
	t.Notes = append(t.Notes,
		"paper (same): fine 79%/51% sparse/dense, coarse 77%/42%",
		"paper (all, sparse): fine 68%, coarse 50%; dense: fine 21%, coarse ~-1%")
	return out, t, nil
}

func targetOrder(s string) int {
	switch s {
	case "same":
		return 0
	case "different":
		return 1
	case "all":
		return 2
	default:
		return 3
	}
}

func pickOther(classes []string, obj string) string {
	for _, c := range classes {
		if c != obj {
			return c
		}
	}
	return obj
}

// Fig9Result is one SOT-duration point of Figure 9.
type Fig9Result struct {
	DurationSec int
	Imps        []float64
	// StorageRel is tiled bytes / untiled(1s GOP) bytes, per video-object.
	StorageRel []float64
}

// RunFigure9 reproduces Figure 9: SOT duration (with GOP = SOT) against
// query-time improvement and storage cost.
func RunFigure9(o Options) ([]Fig9Result, *Table, error) {
	o = o.withDefaults()
	durations := []int{1, 2, 3, 5}
	results := make([]Fig9Result, len(durations))
	for i, d := range durations {
		results[i].DurationSec = d
	}
	for _, p := range o.presets(func(p scene.Preset) bool { return p.SparseExpected }) {
		o.progressf("fig9: %s\n", p.Spec.Name)
		baseOpt := o
		m, err := prepare(baseOpt, p)
		if err != nil {
			return nil, nil, err
		}
		defer m.cleanup()
		untiled, err := m.untiledPlan(baseOpt)
		if err != nil {
			return nil, nil, err
		}
		untiledBytes := untiled.bytes()
		for _, obj := range p.QueryClasses {
			base, err := m.measureQuery(untiled, obj)
			if err != nil {
				return nil, nil, err
			}
			if base.Pixels == 0 {
				continue
			}
			for di, dur := range durations {
				// Re-chunk the video into SOTs of dur seconds; encodePlan
				// gives each SOT a single keyframe, i.e. GOP = SOT.
				sub, err := rechunk(o, m, dur)
				if err != nil {
					return nil, nil, err
				}
				np, err := sub.nonUniformPlan(o, "f9", []string{obj}, layout.Fine)
				if err != nil {
					return nil, nil, err
				}
				mn, err := sub.measureQuery(np, obj)
				if err != nil {
					return nil, nil, err
				}
				results[di].Imps = append(results[di].Imps, improvementPct(base.Wall, mn.Wall))
				results[di].StorageRel = append(results[di].StorageRel, float64(np.bytes())/float64(untiledBytes))
			}
		}
	}
	t := &Table{
		Title:   "Figure 9: SOT duration vs improvement and storage (GOP = SOT)",
		Columns: []string{"SOT (s)", "median imp", "q25", "q75", "median size vs untiled-1s"},
	}
	for _, r := range results {
		q := stats.ComputeQuartiles(r.Imps)
		s := stats.ComputeQuartiles(r.StorageRel)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.DurationSec), fmtPct(q.Q50), fmtPct(q.Q25), fmtPct(q.Q75), fmtF(s.Q50),
		})
	}
	t.Notes = append(t.Notes, "paper: improvement 53%→36% from 1s to 5s SOTs; 1s tiled ~5% smaller, 5s ~15% smaller than original")
	return results, t, nil
}

// rechunk rebuilds a micro with a different SOT/GOP duration (in seconds).
// rechunk's scratch space nests under the parent's, so the parent's
// cleanup removes both.
func rechunk(o Options, m *micro, seconds int) (*micro, error) {
	gop := o.FPS * seconds
	dir := filepath.Join(m.dir, fmt.Sprintf("rechunk%d", seconds))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	out := &micro{
		preset: m.preset, video: m.video, gopLen: gop,
		numFrames: m.numFrames, boxes: m.boxes, dir: dir,
	}
	all := make([]*frame.Frame, 0, m.numFrames)
	for _, chunk := range m.sotFrames {
		all = append(all, chunk...)
	}
	for from := 0; from < m.numFrames; from += gop {
		out.sotFrames = append(out.sotFrames, all[from:min(from+gop, m.numFrames)])
	}
	return out, nil
}

// Fig10Point is one (video, object, layout) observation of Figure 10.
type Fig10Point struct {
	Video, Object, Layout string
	PixelRatio            float64 // P(L)/P(ω)
	Improvement           float64 // measured %
}

// RunFigure10 reproduces Figure 10: decoded-pixel ratio vs measured
// improvement, validating the α = 0.8 do-not-tile rule.
func RunFigure10(o Options) ([]Fig10Point, *Table, error) {
	o = o.withDefaults()
	var points []Fig10Point
	for _, p := range o.presets(nil) {
		o.progressf("fig10: %s\n", p.Spec.Name)
		m, err := prepare(o, p)
		if err != nil {
			return nil, nil, err
		}
		defer m.cleanup()
		untiled, err := m.untiledPlan(o)
		if err != nil {
			return nil, nil, err
		}
		allLabels := m.video.Classes()
		for _, obj := range p.QueryClasses {
			base, err := m.measureQuery(untiled, obj)
			if err != nil {
				return nil, nil, err
			}
			if base.Pixels == 0 {
				continue
			}
			type cand struct {
				name   string
				labels []string
				g      layout.Granularity
			}
			cands := []cand{
				{"fine:" + obj, []string{obj}, layout.Fine},
				{"coarse:" + obj, []string{obj}, layout.Coarse},
				{"fine:all", allLabels, layout.Fine},
				{"coarse:all", allLabels, layout.Coarse},
			}
			if other := pickOther(p.QueryClasses, obj); other != obj {
				cands = append(cands, cand{"fine:" + other, []string{other}, layout.Fine})
			}
			for _, c := range cands {
				np, err := m.nonUniformPlan(o, c.name, c.labels, c.g)
				if err != nil {
					return nil, nil, err
				}
				mn, err := m.measureQuery(np, obj)
				if err != nil {
					return nil, nil, err
				}
				// Aggregate pixel ratio over the whole video.
				var pl, pw int64
				for si := range np.layouts {
					qf := m.queryFrames(si, obj)
					pl += costmodel.ComputeDemand(np.layouts[si], qf).Pixels
					pw += costmodel.ComputeDemand(untiled.layouts[si], qf).Pixels
				}
				ratio := 1.0
				if pw > 0 {
					ratio = float64(pl) / float64(pw)
				}
				points = append(points, Fig10Point{
					Video: p.Spec.Name, Object: obj, Layout: c.name,
					PixelRatio:  ratio,
					Improvement: improvementPct(base.Wall, mn.Wall),
				})
			}
		}
	}
	// Quadrant analysis at α = 0.8.
	var keptGood, keptBad, skippedGood, skippedBad int
	var missedImps []float64
	for _, pt := range points {
		kept := pt.PixelRatio < costmodel.DefaultAlpha
		good := pt.Improvement > 0
		switch {
		case kept && good:
			keptGood++
		case kept && !good:
			keptBad++
		case !kept && good:
			skippedGood++
			missedImps = append(missedImps, pt.Improvement)
		default:
			skippedBad++
		}
	}
	t := &Table{
		Title:   "Figure 10: pixel ratio vs improvement; decision rule at alpha=0.8",
		Columns: []string{"quadrant", "count"},
	}
	t.Rows = append(t.Rows,
		[]string{"tiled & faster (kept, good)", fmt.Sprint(keptGood)},
		[]string{"tiled & slower (kept, bad)", fmt.Sprint(keptBad)},
		[]string{"skipped & would be faster", fmt.Sprint(skippedGood)},
		[]string{"skipped & would be slower", fmt.Sprint(skippedBad)},
	)
	if len(missedImps) > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("max improvement forgone by the rule: %.1f%% (paper: <20%%)", stats.ComputeQuartiles(missedImps).Q75))
	}
	t.Notes = append(t.Notes, "paper: ratio>0.8 captures nearly all slowdowns; forgone wins are small")
	return points, t, nil
}
