// Scan fast-path benchmark: the PR-1 performance experiment measuring the
// decoded-tile cache (cold vs. warm repeated queries), cross-SOT decode
// parallelism, and codec hot-path allocations. Unlike the paper-figure
// drivers, this experiment runs through the real storage manager
// (core.Manager over an on-disk store), so measured scans pay file reads,
// container parsing, and decoder setup exactly as production queries do.
// Results serialize to the BENCH_<n>.json trajectory tracked across PRs.
package bench

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/scene"
)

// PerfResult is the machine-readable scan fast-path measurement.
type PerfResult struct {
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GeneratedAt string `json:"generated_at"`

	// Repeated-query workload over the same region set: cold decodes from
	// disk every time (cache disabled), warm serves decoded tiles from the
	// cache.
	ColdScanNsOp int64   `json:"cold_scan_ns_op"`
	WarmScanNsOp int64   `json:"warm_scan_ns_op"`
	WarmSpeedup  float64 `json:"warm_speedup"`
	WarmHitRate  float64 `json:"warm_hit_rate"`

	// One cold scan spanning every SOT of the video at different
	// parallelism levels (decode jobs fan out across all (SOT, tile)
	// pairs). Wall-clock gains require CPUs > 1.
	MultiSOTNsOp map[string]int64 `json:"multi_sot_ns_op"`

	// Codec microbenchmarks: one-GOP DecodeRange (DecodeGOPFrames frames
	// per op; the seed decoded at 13 allocs per frame) and single-frame
	// Encode.
	DecodeGOPFrames int   `json:"decode_gop_frames"`
	DecodeNsOp      int64 `json:"decode_ns_op"`
	DecodeAllocsOp  int64 `json:"decode_allocs_op"`
	DecodeBytesOp   int64 `json:"decode_bytes_op"`
	EncodeNsOp      int64 `json:"encode_ns_op"`
	EncodeAllocsOp  int64 `json:"encode_allocs_op"`
}

// perfCacheBudget is ample for the experiment's video so warm scans never
// evict.
const perfCacheBudget = 256 << 20

// RunScanPerf measures the scan fast path end to end. It ingests one
// synthetic video into a scratch store, then reopens it under each
// configuration being compared (cache off/on, parallelism 1/2/4).
func RunScanPerf(o Options) (PerfResult, *Table, error) {
	o = o.withDefaults()
	res := PerfResult{
		GOOS:         runtime.GOOS,
		GOARCH:       runtime.GOARCH,
		CPUs:         runtime.GOMAXPROCS(0),
		GeneratedAt:  time.Now().UTC().Format(time.RFC3339),
		MultiSOTNsOp: map[string]int64{},
	}

	dir, err := os.MkdirTemp("", "tasm-perf-*")
	if err != nil {
		return res, nil, err
	}
	defer os.RemoveAll(dir)

	baseCfg := core.DefaultConfig()
	baseCfg.Codec = o.codecParams()
	baseCfg.Codec.GOPLength = max(2, o.FPS/2) // short GOPs => many SOTs to fan across
	baseCfg.MinTileW, baseCfg.MinTileH = o.MinTileW, o.MinTileH

	durationSec := max(3, int(6*o.DurationScale))
	v, err := scene.Generate(scene.Spec{
		Name: "perf", W: o.Width, H: o.Height, FPS: o.FPS, DurationSec: durationSec,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: o.Seed,
	})
	if err != nil {
		return res, nil, err
	}
	frames := v.Frames(0, v.Spec.NumFrames())

	// Ingest once; every configuration reopens the same store.
	ingest := func() error {
		m, err := core.Open(dir, baseCfg)
		if err != nil {
			return err
		}
		defer m.Close()
		if _, err := m.Ingest("perf", frames, v.Spec.FPS); err != nil {
			return err
		}
		for f := 0; f < v.Spec.NumFrames(); f++ {
			for _, tr := range v.GroundTruth(f) {
				if err := m.AddMetadata("perf", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
					return err
				}
			}
		}
		return nil
	}
	if err := ingest(); err != nil {
		return res, nil, err
	}
	q, err := query.Parse(fmt.Sprintf("SELECT car FROM perf WHERE 0 <= t < %d", v.Spec.NumFrames()))
	if err != nil {
		return res, nil, err
	}

	// withManager runs fn against the store under one configuration.
	withManager := func(budget int64, parallelism int, fn func(*core.Manager) error) error {
		cfg := baseCfg
		cfg.CacheBudget = budget
		cfg.Parallelism = parallelism
		m, err := core.Open(dir, cfg)
		if err != nil {
			return err
		}
		defer m.Close()
		return fn(m)
	}

	scanLoop := func(m *core.Manager) func(b *testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Scan(q); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	// Cold repeated queries (cache disabled).
	o.progressf("perf: cold repeated scans\n")
	if err := withManager(0, 1, func(m *core.Manager) error {
		res.ColdScanNsOp = testing.Benchmark(scanLoop(m)).NsPerOp()
		return nil
	}); err != nil {
		return res, nil, err
	}

	// Warm repeated queries (cache enabled, one warming scan).
	o.progressf("perf: warm repeated scans\n")
	if err := withManager(perfCacheBudget, 1, func(m *core.Manager) error {
		if _, _, err := m.Scan(q); err != nil {
			return err
		}
		res.WarmScanNsOp = testing.Benchmark(scanLoop(m)).NsPerOp()
		_, st, err := m.Scan(q)
		if err != nil {
			return err
		}
		if tot := st.CacheHits + st.CacheMisses; tot > 0 {
			res.WarmHitRate = float64(st.CacheHits) / float64(tot)
		}
		return nil
	}); err != nil {
		return res, nil, err
	}
	if res.WarmScanNsOp > 0 {
		res.WarmSpeedup = float64(res.ColdScanNsOp) / float64(res.WarmScanNsOp)
	}

	// Cross-SOT fan-out at increasing parallelism, cold cache. The p1
	// configuration is identical to the cold repeated-scan measurement
	// above, so reuse it rather than re-benchmarking.
	res.MultiSOTNsOp["p1"] = res.ColdScanNsOp
	for _, p := range []int{2, 4} {
		o.progressf("perf: multi-SOT scan, parallelism %d\n", p)
		if err := withManager(0, p, func(m *core.Manager) error {
			res.MultiSOTNsOp[fmt.Sprintf("p%d", p)] = testing.Benchmark(scanLoop(m)).NsPerOp()
			return nil
		}); err != nil {
			return res, nil, err
		}
	}

	// Codec microbenchmarks on one GOP of the generated video.
	o.progressf("perf: codec microbenchmarks\n")
	gop := frames[:min(baseCfg.Codec.GOPLength, len(frames))]
	res.DecodeGOPFrames = len(gop)
	tv, err := container.EncodeVideo(gop, o.FPS, baseCfg.Codec)
	if err != nil {
		return res, nil, err
	}
	dec := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := tv.DecodeRange(0, tv.FrameCount()); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.DecodeNsOp = dec.NsPerOp()
	res.DecodeAllocsOp = dec.AllocsPerOp()
	res.DecodeBytesOp = dec.AllocedBytesPerOp()
	enc := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := container.EncodeVideo(gop[:1], o.FPS, baseCfg.Codec); err != nil {
				b.Fatal(err)
			}
		}
	})
	res.EncodeNsOp = enc.NsPerOp()
	res.EncodeAllocsOp = enc.AllocsPerOp()

	t := &Table{
		Title:   "Scan fast path (PR 1): decoded-tile cache, cross-SOT parallelism, codec allocations",
		Columns: []string{"measurement", "value"},
		Rows: [][]string{
			{"cold repeated scan", fmt.Sprintf("%.3f ms/op", float64(res.ColdScanNsOp)/1e6)},
			{"warm repeated scan", fmt.Sprintf("%.3f ms/op", float64(res.WarmScanNsOp)/1e6)},
			{"warm speedup", fmt.Sprintf("%.1fx", res.WarmSpeedup)},
			{"warm hit rate", fmt.Sprintf("%.0f%%", 100*res.WarmHitRate)},
			{"multi-SOT scan p1", fmt.Sprintf("%.3f ms/op", float64(res.MultiSOTNsOp["p1"])/1e6)},
			{"multi-SOT scan p2", fmt.Sprintf("%.3f ms/op", float64(res.MultiSOTNsOp["p2"])/1e6)},
			{"multi-SOT scan p4", fmt.Sprintf("%.3f ms/op", float64(res.MultiSOTNsOp["p4"])/1e6)},
			{"GOP decode", fmt.Sprintf("%.3f ms/op, %d allocs/op (%d frames)", float64(res.DecodeNsOp)/1e6, res.DecodeAllocsOp, res.DecodeGOPFrames)},
			{"frame encode", fmt.Sprintf("%.3f ms/op, %d allocs/op", float64(res.EncodeNsOp)/1e6, res.EncodeAllocsOp)},
		},
		Notes: []string{
			fmt.Sprintf("%d CPUs; parallel speedups require CPUs > 1", res.CPUs),
			"seed baseline (PR 0): no cache, sequential SOTs, 13 allocs/op decode",
		},
	}
	return res, t, nil
}
