package bench

import "testing"

// TestScanPerfFastPath runs the PR-1 perf experiment at reduced scale and
// asserts the headline wins hold: warm (cached) repeated scans at least 5x
// faster than cold, full hit rate, and the codec's decode hot path below
// the seed's 13 allocs/op.
func TestScanPerfFastPath(t *testing.T) {
	if testing.Short() {
		t.Skip("perf experiment in -short mode")
	}
	opt := Quick()
	opt.Seed = 7
	res, table, err := RunScanPerf(opt)
	if err != nil {
		t.Fatal(err)
	}
	if table == nil || len(table.Rows) == 0 {
		t.Fatal("empty table")
	}
	if res.WarmSpeedup < 5 {
		t.Errorf("warm speedup %.1fx, want >= 5x (cold %d ns, warm %d ns)",
			res.WarmSpeedup, res.ColdScanNsOp, res.WarmScanNsOp)
	}
	if res.WarmHitRate != 1 {
		t.Errorf("warm hit rate %.2f, want 1.0", res.WarmHitRate)
	}
	if res.DecodeGOPFrames <= 0 {
		t.Fatal("missing decode GOP frame count")
	}
	// The seed decoder allocated 13 times per frame; the pooled decoder
	// should be well under half that.
	if res.DecodeAllocsOp >= int64(13*res.DecodeGOPFrames) {
		t.Errorf("decode allocs/op = %d over %d frames, not below seed's 13/frame",
			res.DecodeAllocsOp, res.DecodeGOPFrames)
	}
	for _, k := range []string{"p1", "p2", "p4"} {
		if res.MultiSOTNsOp[k] <= 0 {
			t.Errorf("missing multi-SOT measurement %s", k)
		}
	}
}
