// Serving benchmark: the PR-4 experiment measuring what the network
// front end costs. It stands up a real tasmd handler on a loopback
// listener, runs the same multi-SOT scan in-process and through the Go
// client's NDJSON cursor, and reports time-to-first-result and drain
// wall for both plus the per-region serving overhead. Results
// serialize to the BENCH_<n>.json trajectory (BENCH_3.json here).
package bench

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/server"
)

// ServePerfResult is the machine-readable serving measurement.
type ServePerfResult struct {
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GeneratedAt string `json:"generated_at"`

	// The query shape: one cold scan spanning every SOT of the video.
	SOTs    int `json:"sots"`
	Regions int `json:"regions"`

	// PingNs is a unary /v1/healthz round trip over loopback: the
	// protocol floor any remote operation pays.
	PingNs int64 `json:"ping_ns"`

	// In-process baseline: a drained ScanCursor (the BENCH_2 shape).
	InprocFirstResultNs int64 `json:"inproc_first_result_ns"`
	InprocDrainNs       int64 `json:"inproc_drain_ns"`

	// Remote: the same scan through tasmd's NDJSON stream and the Go
	// client cursor.
	RemoteFirstResultNs int64 `json:"remote_first_result_ns"`
	RemoteDrainNs       int64 `json:"remote_drain_ns"`

	// RemoteFirstResultFrac = RemoteFirstResultNs / RemoteDrainNs: the
	// streaming property, observed remotely — a first region lands
	// well before the scan finishes (acceptance: < 0.5; in-process
	// BENCH_2 holds < 0.25 and the wire adds encode+flush cost).
	RemoteFirstResultFrac float64 `json:"remote_first_result_frac"`
	// RemoteOverheadPerRegionNs = (RemoteDrainNs - InprocDrainNs) /
	// Regions: what serialization + HTTP + decode costs per streamed
	// region.
	RemoteOverheadPerRegionNs int64 `json:"remote_overhead_per_region_ns"`
	// RemoteDrainRatio = RemoteDrainNs / InprocDrainNs.
	RemoteDrainRatio float64 `json:"remote_drain_ratio"`
}

// servePerfRuns averages the wall measurements over a few runs.
const servePerfRuns = 5

// RunServePerf measures the serving subsystem end to end: one
// synthetic multi-SOT video (short GOPs so the scan spans many SOTs),
// served by the real handler stack over loopback TCP, scanned through
// the real client, cache disabled throughout (the cold path where
// streaming TTFB matters).
func RunServePerf(o Options) (ServePerfResult, *Table, error) {
	o = o.withDefaults()
	res := ServePerfResult{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}

	dir, err := os.MkdirTemp("", "tasm-serve-*")
	if err != nil {
		return res, nil, err
	}
	defer os.RemoveAll(dir)

	gop := max(2, o.FPS/2) // short GOPs => many SOTs
	sm, err := tasm.Open(dir,
		tasm.WithGOPLength(gop),
		tasm.WithMinTileSize(o.MinTileW, o.MinTileH),
		tasm.WithQP(o.QP))
	if err != nil {
		return res, nil, err
	}
	defer sm.Close()

	durationSec := max(4, int(8*o.DurationScale))
	v, err := scene.Generate(scene.Spec{
		Name: "serve", W: o.Width, H: o.Height, FPS: o.FPS, DurationSec: durationSec,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: o.Seed,
	})
	if err != nil {
		return res, nil, err
	}
	n := v.Spec.NumFrames()
	if _, err := sm.Ingest("serve", v.Frames(0, n), v.Spec.FPS); err != nil {
		return res, nil, err
	}
	var ds []tasm.Detection
	for f := 0; f < n; f++ {
		for _, tr := range v.GroundTruth(f) {
			ds = append(ds, tasm.Detection{Frame: f, Label: tr.Label, Box: tr.Box})
		}
	}
	if err := sm.AddDetections("serve", ds); err != nil {
		return res, nil, err
	}

	// The daemon's handler on a real loopback socket: the remote path
	// includes TCP, HTTP chunking, and both JSON codecs.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, nil, err
	}
	srv := &http.Server{Handler: server.New(sm, server.Config{})}
	go srv.Serve(ln) //nolint:errcheck // closed via Shutdown below
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // bench teardown
	}()
	c, err := client.Dial(ln.Addr().String())
	if err != nil {
		return res, nil, err
	}
	defer c.Close()

	ctx := context.Background()
	sql := fmt.Sprintf("SELECT car FROM serve WHERE 0 <= t < %d", n)

	// Untimed warm-up (file cache, allocator, HTTP connection) so the
	// compared runs see the same conditions.
	if _, st, err := sm.ScanSQL(sql); err != nil {
		return res, nil, err
	} else {
		res.SOTs = st.SOTsTouched
		res.Regions = st.RegionsReturned
	}
	if _, _, err := c.ScanSQLContext(ctx, sql); err != nil {
		return res, nil, err
	}

	var pingNs, inFirst, inDrain, remFirst, remDrain int64
	for run := 0; run < servePerfRuns; run++ {
		o.progressf("serve: run %d/%d\n", run+1, servePerfRuns)

		start := time.Now()
		if err := c.Ping(ctx); err != nil {
			return res, nil, err
		}
		pingNs += time.Since(start).Nanoseconds()

		// In-process streaming baseline.
		start = time.Now()
		cur, err := sm.ScanSQLCursor(ctx, sql)
		if err != nil {
			return res, nil, err
		}
		if !cur.Next() {
			return res, nil, fmt.Errorf("bench: in-process scan yielded nothing: %v", cur.Err())
		}
		inFirst += time.Since(start).Nanoseconds()
		for cur.Next() {
		}
		if err := cur.Err(); err != nil {
			return res, nil, err
		}
		inDrain += time.Since(start).Nanoseconds()

		// Remote: same scan through the NDJSON stream.
		start = time.Now()
		rcur, err := c.ScanSQLCursor(ctx, sql)
		if err != nil {
			return res, nil, err
		}
		if !rcur.Next() {
			return res, nil, fmt.Errorf("bench: remote scan yielded nothing: %v", rcur.Err())
		}
		remFirst += time.Since(start).Nanoseconds()
		nRemote := 1
		for rcur.Next() {
			nRemote++
		}
		if err := rcur.Err(); err != nil {
			return res, nil, err
		}
		remDrain += time.Since(start).Nanoseconds()
		if nRemote != res.Regions {
			return res, nil, fmt.Errorf("bench: remote cursor yielded %d regions, Scan returned %d", nRemote, res.Regions)
		}
	}
	res.PingNs = pingNs / servePerfRuns
	res.InprocFirstResultNs = inFirst / servePerfRuns
	res.InprocDrainNs = inDrain / servePerfRuns
	res.RemoteFirstResultNs = remFirst / servePerfRuns
	res.RemoteDrainNs = remDrain / servePerfRuns
	if res.RemoteDrainNs > 0 {
		res.RemoteFirstResultFrac = float64(res.RemoteFirstResultNs) / float64(res.RemoteDrainNs)
	}
	if res.Regions > 0 {
		res.RemoteOverheadPerRegionNs = (res.RemoteDrainNs - res.InprocDrainNs) / int64(res.Regions)
	}
	if res.InprocDrainNs > 0 {
		res.RemoteDrainRatio = float64(res.RemoteDrainNs) / float64(res.InprocDrainNs)
	}

	t := &Table{
		Title:   "Serving (PR 4): remote NDJSON streaming vs in-process cursors",
		Columns: []string{"measurement", "value"},
		Rows: [][]string{
			{"query span", fmt.Sprintf("%d SOTs, %d regions", res.SOTs, res.Regions)},
			{"unary ping", fmt.Sprintf("%.3f ms", float64(res.PingNs)/1e6)},
			{"in-process first result", fmt.Sprintf("%.3f ms", float64(res.InprocFirstResultNs)/1e6)},
			{"in-process full drain", fmt.Sprintf("%.3f ms", float64(res.InprocDrainNs)/1e6)},
			{"remote first result", fmt.Sprintf("%.3f ms (%.1f%% of remote drain)", float64(res.RemoteFirstResultNs)/1e6, 100*res.RemoteFirstResultFrac)},
			{"remote full drain", fmt.Sprintf("%.3f ms (%.2fx in-process)", float64(res.RemoteDrainNs)/1e6, res.RemoteDrainRatio)},
			{"serving overhead / region", fmt.Sprintf("%.1f µs", float64(res.RemoteOverheadPerRegionNs)/1e3)},
		},
		Notes: []string{
			fmt.Sprintf("%d CPUs, cache disabled, loopback TCP, flush per region", res.CPUs),
			"target: remote first result < 50% of remote drain on a >= 8-SOT query",
		},
	}
	return res, t, nil
}
