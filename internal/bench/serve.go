// Serving benchmark: the experiment measuring what the network front
// end costs. It stands up a real tasmd handler on a loopback listener,
// runs the same multi-SOT scan in-process and through the Go client
// under BOTH wire framings — v1 NDJSON and the v2 binary frame
// encoding — and reports time-to-first-result, drain wall, and the
// bytes each framing ships per region. Results serialize to the
// BENCH_<n>.json trajectory (BENCH_3.json measured the NDJSON-only
// serving stack; BENCH_4.json adds the encoding comparison).
package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/rpcwire"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/server"
)

// ServePerfResult is the machine-readable serving measurement.
type ServePerfResult struct {
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GeneratedAt string `json:"generated_at"`

	// The query shape: one cold scan spanning every SOT of the video.
	SOTs    int `json:"sots"`
	Regions int `json:"regions"`

	// PingNs is a unary /v1/healthz round trip over loopback: the
	// protocol floor any remote operation pays.
	PingNs int64 `json:"ping_ns"`

	// In-process baseline: a drained ScanCursor (the BENCH_2 shape).
	InprocFirstResultNs int64 `json:"inproc_first_result_ns"`
	InprocDrainNs       int64 `json:"inproc_drain_ns"`

	// Remote: the same scan through tasmd's NDJSON stream and the Go
	// client cursor.
	RemoteFirstResultNs int64 `json:"remote_first_result_ns"`
	RemoteDrainNs       int64 `json:"remote_drain_ns"`

	// Remote again through the v2 binary frame encoding
	// (application/x-tasm-frames): raw planes, no base64, no per-region
	// JSON.
	RemoteBinaryFirstResultNs int64 `json:"remote_binary_first_result_ns"`
	RemoteBinaryDrainNs       int64 `json:"remote_binary_drain_ns"`
	// RemoteBinaryDrainRatio = RemoteBinaryDrainNs / InprocDrainNs.
	RemoteBinaryDrainRatio float64 `json:"remote_binary_drain_ratio"`

	// Wire cost: the full response body of the same scan under each
	// framing, divided by its region count. BinaryWireSavings =
	// 1 - binary/ndjson — the acceptance gate holds it ≥ 0.25.
	NDJSONBytesPerRegion int64   `json:"ndjson_bytes_per_region"`
	BinaryBytesPerRegion int64   `json:"binary_bytes_per_region"`
	BinaryWireSavings    float64 `json:"binary_wire_savings"`

	// RemoteFirstResultFrac = RemoteFirstResultNs / RemoteDrainNs: the
	// streaming property, observed remotely — a first region lands
	// well before the scan finishes (acceptance: < 0.5; in-process
	// BENCH_2 holds < 0.25 and the wire adds encode+flush cost).
	RemoteFirstResultFrac float64 `json:"remote_first_result_frac"`
	// RemoteOverheadPerRegionNs = (RemoteDrainNs - InprocDrainNs) /
	// Regions: what serialization + HTTP + decode costs per streamed
	// region.
	RemoteOverheadPerRegionNs int64 `json:"remote_overhead_per_region_ns"`
	// RemoteDrainRatio = RemoteDrainNs / InprocDrainNs.
	RemoteDrainRatio float64 `json:"remote_drain_ratio"`
}

// servePerfRuns averages the wall measurements over a few runs.
const servePerfRuns = 5

// RunServePerf measures the serving subsystem end to end: one
// synthetic multi-SOT video (short GOPs so the scan spans many SOTs),
// served by the real handler stack over loopback TCP, scanned through
// the real client, cache disabled throughout (the cold path where
// streaming TTFB matters).
func RunServePerf(o Options) (ServePerfResult, *Table, error) {
	o = o.withDefaults()
	res := ServePerfResult{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}

	dir, err := os.MkdirTemp("", "tasm-serve-*")
	if err != nil {
		return res, nil, err
	}
	defer os.RemoveAll(dir)

	gop := max(2, o.FPS/2) // short GOPs => many SOTs
	sm, err := tasm.Open(dir,
		tasm.WithGOPLength(gop),
		tasm.WithMinTileSize(o.MinTileW, o.MinTileH),
		tasm.WithQP(o.QP))
	if err != nil {
		return res, nil, err
	}
	defer sm.Close()

	durationSec := max(4, int(8*o.DurationScale))
	v, err := scene.Generate(scene.Spec{
		Name: "serve", W: o.Width, H: o.Height, FPS: o.FPS, DurationSec: durationSec,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: o.Seed,
	})
	if err != nil {
		return res, nil, err
	}
	n := v.Spec.NumFrames()
	if _, err := sm.Ingest("serve", v.Frames(0, n), v.Spec.FPS); err != nil {
		return res, nil, err
	}
	var ds []tasm.Detection
	for f := 0; f < n; f++ {
		for _, tr := range v.GroundTruth(f) {
			ds = append(ds, tasm.Detection{Frame: f, Label: tr.Label, Box: tr.Box})
		}
	}
	if err := sm.AddDetections("serve", ds); err != nil {
		return res, nil, err
	}

	// The daemon's handler on a real loopback socket: the remote path
	// includes TCP, HTTP chunking, and both JSON codecs.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, nil, err
	}
	srv := &http.Server{Handler: server.New(sm, server.Config{})}
	go srv.Serve(ln) //nolint:errcheck // closed via Shutdown below
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // bench teardown
	}()
	c, err := client.New(ln.Addr().String())
	if err != nil {
		return res, nil, err
	}
	defer c.Close()
	// A second client asking for the v2 framing; same daemon, same scan.
	cBin, err := client.New(ln.Addr().String(), client.WithEncoding(client.Binary))
	if err != nil {
		return res, nil, err
	}
	defer cBin.Close()

	ctx := context.Background()
	sql := fmt.Sprintf("SELECT car FROM serve WHERE 0 <= t < %d", n)

	// Untimed warm-up (file cache, allocator, HTTP connection) so the
	// compared runs see the same conditions.
	if _, st, err := sm.ScanSQL(sql); err != nil {
		return res, nil, err
	} else {
		res.SOTs = st.SOTsTouched
		res.Regions = st.RegionsReturned
	}
	if _, _, err := c.ScanSQLContext(ctx, sql); err != nil {
		return res, nil, err
	}
	if _, _, err := cBin.ScanSQLContext(ctx, sql); err != nil {
		return res, nil, err
	}

	if res.Regions == 0 {
		return res, nil, fmt.Errorf("bench: serve scan returned no regions")
	}

	// Wire cost per framing: drain the raw response bodies once and
	// count bytes (untimed — this measures size, not speed).
	for _, enc := range []struct {
		accept string
		out    *int64
	}{
		{rpcwire.ContentTypeNDJSON, &res.NDJSONBytesPerRegion},
		{rpcwire.ContentTypeBinary, &res.BinaryBytesPerRegion},
	} {
		req, err := http.NewRequest(http.MethodPost, "http://"+ln.Addr().String()+"/v1/scan",
			strings.NewReader(fmt.Sprintf(`{"sql":%q}`, sql)))
		if err != nil {
			return res, nil, err
		}
		req.Header.Set("Accept", enc.accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return res, nil, err
		}
		nb, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return res, nil, fmt.Errorf("bench: raw %s scan: status %d, %v", enc.accept, resp.StatusCode, err)
		}
		*enc.out = nb / int64(res.Regions)
	}
	if res.NDJSONBytesPerRegion > 0 {
		res.BinaryWireSavings = 1 - float64(res.BinaryBytesPerRegion)/float64(res.NDJSONBytesPerRegion)
	}

	var pingNs, inFirst, inDrain, remFirst, remDrain, binFirst, binDrain int64
	for run := 0; run < servePerfRuns; run++ {
		o.progressf("serve: run %d/%d\n", run+1, servePerfRuns)

		start := time.Now()
		if err := c.Ping(ctx); err != nil {
			return res, nil, err
		}
		pingNs += time.Since(start).Nanoseconds()

		// In-process streaming baseline.
		start = time.Now()
		cur, err := sm.ScanSQLCursor(ctx, sql)
		if err != nil {
			return res, nil, err
		}
		if !cur.Next() {
			return res, nil, fmt.Errorf("bench: in-process scan yielded nothing: %v", cur.Err())
		}
		inFirst += time.Since(start).Nanoseconds()
		for cur.Next() {
		}
		if err := cur.Err(); err != nil {
			return res, nil, err
		}
		inDrain += time.Since(start).Nanoseconds()

		// Remote: same scan through the NDJSON stream.
		start = time.Now()
		rcur, err := c.ScanSQLCursor(ctx, sql)
		if err != nil {
			return res, nil, err
		}
		if !rcur.Next() {
			return res, nil, fmt.Errorf("bench: remote scan yielded nothing: %v", rcur.Err())
		}
		remFirst += time.Since(start).Nanoseconds()
		nRemote := 1
		for rcur.Next() {
			nRemote++
		}
		if err := rcur.Err(); err != nil {
			return res, nil, err
		}
		remDrain += time.Since(start).Nanoseconds()
		if nRemote != res.Regions {
			return res, nil, fmt.Errorf("bench: remote cursor yielded %d regions, Scan returned %d", nRemote, res.Regions)
		}

		// Remote again, binary framing.
		start = time.Now()
		bcur, err := cBin.ScanSQLCursor(ctx, sql)
		if err != nil {
			return res, nil, err
		}
		if !bcur.Next() {
			return res, nil, fmt.Errorf("bench: binary remote scan yielded nothing: %v", bcur.Err())
		}
		binFirst += time.Since(start).Nanoseconds()
		nBinary := 1
		for bcur.Next() {
			nBinary++
		}
		if err := bcur.Err(); err != nil {
			return res, nil, err
		}
		binDrain += time.Since(start).Nanoseconds()
		if nBinary != res.Regions {
			return res, nil, fmt.Errorf("bench: binary cursor yielded %d regions, Scan returned %d", nBinary, res.Regions)
		}
	}
	res.PingNs = pingNs / servePerfRuns
	res.InprocFirstResultNs = inFirst / servePerfRuns
	res.InprocDrainNs = inDrain / servePerfRuns
	res.RemoteFirstResultNs = remFirst / servePerfRuns
	res.RemoteDrainNs = remDrain / servePerfRuns
	res.RemoteBinaryFirstResultNs = binFirst / servePerfRuns
	res.RemoteBinaryDrainNs = binDrain / servePerfRuns
	if res.RemoteDrainNs > 0 {
		res.RemoteFirstResultFrac = float64(res.RemoteFirstResultNs) / float64(res.RemoteDrainNs)
	}
	if res.Regions > 0 {
		res.RemoteOverheadPerRegionNs = (res.RemoteDrainNs - res.InprocDrainNs) / int64(res.Regions)
	}
	if res.InprocDrainNs > 0 {
		res.RemoteDrainRatio = float64(res.RemoteDrainNs) / float64(res.InprocDrainNs)
		res.RemoteBinaryDrainRatio = float64(res.RemoteBinaryDrainNs) / float64(res.InprocDrainNs)
	}

	t := &Table{
		Title:   "Serving: remote streaming vs in-process, NDJSON vs binary framing",
		Columns: []string{"measurement", "value"},
		Rows: [][]string{
			{"query span", fmt.Sprintf("%d SOTs, %d regions", res.SOTs, res.Regions)},
			{"unary ping", fmt.Sprintf("%.3f ms", float64(res.PingNs)/1e6)},
			{"in-process first result", fmt.Sprintf("%.3f ms", float64(res.InprocFirstResultNs)/1e6)},
			{"in-process full drain", fmt.Sprintf("%.3f ms", float64(res.InprocDrainNs)/1e6)},
			{"remote first result (ndjson)", fmt.Sprintf("%.3f ms (%.1f%% of remote drain)", float64(res.RemoteFirstResultNs)/1e6, 100*res.RemoteFirstResultFrac)},
			{"remote full drain (ndjson)", fmt.Sprintf("%.3f ms (%.2fx in-process)", float64(res.RemoteDrainNs)/1e6, res.RemoteDrainRatio)},
			{"remote full drain (binary)", fmt.Sprintf("%.3f ms (%.2fx in-process)", float64(res.RemoteBinaryDrainNs)/1e6, res.RemoteBinaryDrainRatio)},
			{"serving overhead / region", fmt.Sprintf("%.1f µs", float64(res.RemoteOverheadPerRegionNs)/1e3)},
			{"wire bytes / region (ndjson)", fmt.Sprintf("%d B", res.NDJSONBytesPerRegion)},
			{"wire bytes / region (binary)", fmt.Sprintf("%d B (%.1f%% smaller)", res.BinaryBytesPerRegion, 100*res.BinaryWireSavings)},
		},
		Notes: []string{
			fmt.Sprintf("%d CPUs, cache disabled, loopback TCP, flush per region", res.CPUs),
			"target: remote first result < 50% of remote drain on a >= 8-SOT query",
			"target: binary framing ships >= 25% fewer bytes/region than NDJSON",
		},
	}
	return res, t, nil
}
