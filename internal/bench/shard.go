// Shard benchmark: what the scale-out tier costs and buys. It stands
// up three real tasmd handlers on loopback listeners, a tasm-router in
// front of them, and a single tasmd holding the same videos, then
// drains the same multi-video scatter-gather scan through both paths
// in the binary framing — per-region wall, time-to-first-result, and
// the bytes each path ships. Results serialize to BENCH_6.json.
package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/rpcwire"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/server"
	"github.com/tasm-repro/tasm/internal/shard"
)

// ShardPerfResult is the machine-readable scale-out measurement.
type ShardPerfResult struct {
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GeneratedAt string `json:"generated_at"`

	// The workload: one scan naming every video, spread over the ring.
	Shards  int `json:"shards"`
	Videos  int `json:"videos"`
	Regions int `json:"regions"`

	// Single node: all videos on one tasmd, the local merge doing the
	// frame-ordering (the pre-router baseline).
	SingleFirstResultNs int64 `json:"single_first_result_ns"`
	SingleDrainNs       int64 `json:"single_drain_ns"`

	// Router: one remote cursor per video against the owning shard,
	// gathered through the k-way merge, re-encoded for the caller.
	RouterFirstResultNs int64 `json:"router_first_result_ns"`
	RouterDrainNs       int64 `json:"router_drain_ns"`

	// RouterDrainRatio = RouterDrainNs / SingleDrainNs: < 1 means the
	// shards' parallel decode beat the extra hop; > 1 is the relay tax.
	RouterDrainRatio float64 `json:"router_drain_ratio"`
	// RouterOverheadPerRegionNs = (RouterDrainNs - SingleDrainNs) /
	// Regions: the per-region cost (negative when the fleet wins).
	RouterOverheadPerRegionNs int64 `json:"router_overhead_per_region_ns"`

	// Wire bytes per region on the caller-facing hop, both paths in
	// the binary framing. The router re-encodes rather than splices, so
	// equality here is the "no inflation" check.
	SingleBytesPerRegion int64 `json:"single_bytes_per_region"`
	RouterBytesPerRegion int64 `json:"router_bytes_per_region"`
}

// shardPerfRuns averages the wall measurements over a few runs.
const shardPerfRuns = 5

// shardPerfShards and shardPerfVideos shape the fleet: 4 videos over 3
// shards means at least one shard serves two cursors — the merge is
// genuinely k-way, not a relay.
const (
	shardPerfShards = 3
	shardPerfVideos = 4
)

// RunShardPerf measures scatter-gather against the single-node
// baseline: same videos, same query, same framing, cache disabled
// everywhere, everything on loopback TCP.
func RunShardPerf(o Options) (ShardPerfResult, *Table, error) {
	o = o.withDefaults()
	res := ShardPerfResult{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Shards:      shardPerfShards,
		Videos:      shardPerfVideos,
	}

	gop := max(2, o.FPS/2)
	openStore := func(tag string) (*tasm.StorageManager, func(), error) {
		dir, err := os.MkdirTemp("", "tasm-shard-"+tag+"-*")
		if err != nil {
			return nil, nil, err
		}
		sm, err := tasm.Open(dir,
			tasm.WithGOPLength(gop),
			tasm.WithMinTileSize(o.MinTileW, o.MinTileH),
			tasm.WithQP(o.QP))
		if err != nil {
			os.RemoveAll(dir)
			return nil, nil, err
		}
		return sm, func() { sm.Close(); os.RemoveAll(dir) }, nil
	}

	serveSM := func(sm *tasm.StorageManager) (string, func(), error) {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return "", nil, err
		}
		srv := &http.Server{Handler: server.New(sm, server.Config{})}
		go srv.Serve(ln) //nolint:errcheck // closed via Shutdown below
		stop := func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			srv.Shutdown(ctx) //nolint:errcheck // bench teardown
		}
		return ln.Addr().String(), stop, nil
	}

	// The single-node baseline and the shard fleet.
	single, closeSingle, err := openStore("single")
	if err != nil {
		return res, nil, err
	}
	defer closeSingle()
	var (
		shardSMs []*tasm.StorageManager
		entries  []shard.MapEntry
	)
	for i := 0; i < shardPerfShards; i++ {
		sm, closeSM, err := openStore(fmt.Sprintf("s%d", i))
		if err != nil {
			return res, nil, err
		}
		defer closeSM()
		addr, stop, err := serveSM(sm)
		if err != nil {
			return res, nil, err
		}
		defer stop()
		shardSMs = append(shardSMs, sm)
		entries = append(entries, shard.MapEntry{Name: fmt.Sprintf("s%d", i), Addr: addr})
	}
	ring, err := shard.NewMap(entries, 0)
	if err != nil {
		return res, nil, err
	}

	// Videos land on their ring owner and, identically, on the single
	// node — the two paths must serve the same bytes.
	durationSec := max(4, int(6*o.DurationScale))
	var names []string
	for i := 0; i < shardPerfVideos; i++ {
		name := fmt.Sprintf("shardcam%d", i)
		names = append(names, name)
		v, err := scene.Generate(scene.Spec{
			Name: name, W: o.Width, H: o.Height, FPS: o.FPS, DurationSec: durationSec,
			Classes: []scene.ClassMix{
				{Class: scene.Car, Count: 2, SizeFrac: 0.18},
				{Class: scene.Person, Count: 1, SizeFrac: 0.3},
			},
			Seed: o.Seed + uint64(i),
		})
		if err != nil {
			return res, nil, err
		}
		n := v.Spec.NumFrames()
		var ds []tasm.Detection
		for f := 0; f < n; f++ {
			for _, tr := range v.GroundTruth(f) {
				ds = append(ds, tasm.Detection{Frame: f, Label: tr.Label, Box: tr.Box})
			}
		}
		var ownerSM *tasm.StorageManager
		for i, e := range entries {
			if e.Name == ring.Owner(name).Name {
				ownerSM = shardSMs[i]
			}
		}
		for _, sm := range []*tasm.StorageManager{ownerSM, single} {
			if _, err := sm.Ingest(name, v.Frames(0, n), v.Spec.FPS); err != nil {
				return res, nil, err
			}
			if err := sm.AddDetections(name, ds); err != nil {
				return res, nil, err
			}
		}
	}

	// The router in front of the fleet, and a tasmd face on the single
	// node, both on loopback.
	rt, err := shard.NewRouter(ring, shard.RouterConfig{})
	if err != nil {
		return res, nil, err
	}
	defer rt.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, nil, err
	}
	rsrv := &http.Server{Handler: rt}
	go rsrv.Serve(rln) //nolint:errcheck // closed via Shutdown below
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		rsrv.Shutdown(ctx) //nolint:errcheck // bench teardown
	}()
	singleAddr, stopSingle, err := serveSM(single)
	if err != nil {
		return res, nil, err
	}
	defer stopSingle()

	cSingle, err := client.New(singleAddr, client.WithEncoding(client.Binary))
	if err != nil {
		return res, nil, err
	}
	defer cSingle.Close()
	cRouter, err := client.New(rln.Addr().String(), client.WithEncoding(client.Binary))
	if err != nil {
		return res, nil, err
	}
	defer cRouter.Close()

	ctx := context.Background()
	sql := "SELECT car FROM " + strings.Join(names, ",")

	// Warm both paths untimed, and pin the region counts equal — a
	// scatter-gather that returns different results is not a benchmark,
	// it is a bug.
	_, stSingle, err := cSingle.ScanSQLContext(ctx, sql)
	if err != nil {
		return res, nil, err
	}
	_, stRouter, err := cRouter.ScanSQLContext(ctx, sql)
	if err != nil {
		return res, nil, err
	}
	if stSingle.RegionsReturned != stRouter.RegionsReturned || stRouter.RegionsReturned == 0 {
		return res, nil, fmt.Errorf("bench: router returned %d regions, single node %d",
			stRouter.RegionsReturned, stSingle.RegionsReturned)
	}
	res.Regions = stRouter.RegionsReturned

	// Caller-facing wire bytes per region, both paths (untimed).
	for _, p := range []struct {
		addr string
		out  *int64
	}{
		{singleAddr, &res.SingleBytesPerRegion},
		{rln.Addr().String(), &res.RouterBytesPerRegion},
	} {
		req, err := http.NewRequest(http.MethodPost, "http://"+p.addr+"/v1/scan",
			strings.NewReader(fmt.Sprintf(`{"sql":%q}`, sql)))
		if err != nil {
			return res, nil, err
		}
		req.Header.Set("Accept", rpcwire.ContentTypeBinary)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return res, nil, err
		}
		nb, err := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			return res, nil, fmt.Errorf("bench: raw scan via %s: status %d, %v", p.addr, resp.StatusCode, err)
		}
		*p.out = nb / int64(res.Regions)
	}

	drain := func(c *client.Client) (firstNs, drainNs int64, n int, err error) {
		start := time.Now()
		cur, err := c.ScanSQLCursor(ctx, sql)
		if err != nil {
			return 0, 0, 0, err
		}
		if !cur.Next() {
			return 0, 0, 0, fmt.Errorf("bench: scan yielded nothing: %v", cur.Err())
		}
		firstNs = time.Since(start).Nanoseconds()
		n = 1
		for cur.Next() {
			n++
		}
		if err := cur.Err(); err != nil {
			return 0, 0, 0, err
		}
		return firstNs, time.Since(start).Nanoseconds(), n, nil
	}

	var sFirst, sDrain, rFirst, rDrain int64
	for run := 0; run < shardPerfRuns; run++ {
		o.progressf("shard: run %d/%d\n", run+1, shardPerfRuns)
		f1, d1, n1, err := drain(cSingle)
		if err != nil {
			return res, nil, err
		}
		f2, d2, n2, err := drain(cRouter)
		if err != nil {
			return res, nil, err
		}
		if n1 != res.Regions || n2 != res.Regions {
			return res, nil, fmt.Errorf("bench: drained %d/%d regions, want %d", n1, n2, res.Regions)
		}
		sFirst, sDrain = sFirst+f1, sDrain+d1
		rFirst, rDrain = rFirst+f2, rDrain+d2
	}
	res.SingleFirstResultNs = sFirst / shardPerfRuns
	res.SingleDrainNs = sDrain / shardPerfRuns
	res.RouterFirstResultNs = rFirst / shardPerfRuns
	res.RouterDrainNs = rDrain / shardPerfRuns
	if res.SingleDrainNs > 0 {
		res.RouterDrainRatio = float64(res.RouterDrainNs) / float64(res.SingleDrainNs)
	}
	if res.Regions > 0 {
		res.RouterOverheadPerRegionNs = (res.RouterDrainNs - res.SingleDrainNs) / int64(res.Regions)
	}

	t := &Table{
		Title:   "Scale-out: scatter-gather through tasm-router vs a single tasmd",
		Columns: []string{"measurement", "value"},
		Rows: [][]string{
			{"fleet", fmt.Sprintf("%d shards, %d videos, %d regions", res.Shards, res.Videos, res.Regions)},
			{"single-node first result", fmt.Sprintf("%.3f ms", float64(res.SingleFirstResultNs)/1e6)},
			{"single-node full drain", fmt.Sprintf("%.3f ms", float64(res.SingleDrainNs)/1e6)},
			{"router first result", fmt.Sprintf("%.3f ms", float64(res.RouterFirstResultNs)/1e6)},
			{"router full drain", fmt.Sprintf("%.3f ms (%.2fx single node)", float64(res.RouterDrainNs)/1e6, res.RouterDrainRatio)},
			{"router overhead / region", fmt.Sprintf("%.1f µs", float64(res.RouterOverheadPerRegionNs)/1e3)},
			{"wire bytes / region (single)", fmt.Sprintf("%d B", res.SingleBytesPerRegion)},
			{"wire bytes / region (router)", fmt.Sprintf("%d B", res.RouterBytesPerRegion)},
		},
		Notes: []string{
			fmt.Sprintf("%d CPUs, binary framing both paths, cache disabled, loopback TCP", res.CPUs),
			"router path decodes on 3 processes' worth of stores but pays a second hop per region",
			"wire bytes should match: the router re-encodes the same framing, adding nothing",
		},
	}
	return res, t, nil
}
