// Streaming API benchmark: the PR-3 experiment measuring time-to-first-
// result of cursor scans against full-materialization wall time on a long
// multi-SOT query, plus how quickly a cancelled cursor tears down. Like
// the scan fast-path experiment it runs through the real storage manager
// over an on-disk store. Results serialize to the BENCH_<n>.json
// trajectory tracked across PRs (BENCH_2.json for this experiment).
package bench

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/scene"
)

// StreamPerfResult is the machine-readable streaming-scan measurement.
type StreamPerfResult struct {
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	CPUs        int    `json:"cpus"`
	GeneratedAt string `json:"generated_at"`

	// The query shape: one cold scan spanning every SOT of the video.
	SOTs    int `json:"sots"`
	Regions int `json:"regions"`

	// FullScanNs is the wall time of the materializing Scan (the v1 API
	// shape: nothing is returned until everything is decoded).
	FullScanNs int64 `json:"full_scan_ns"`
	// StreamFirstResultNs is the wall time until a ScanCursor yields its
	// first result — the latency a streaming consumer actually observes.
	StreamFirstResultNs int64 `json:"stream_first_result_ns"`
	// StreamDrainNs is the wall time to drain the cursor completely; the
	// streaming overhead is StreamDrainNs vs FullScanNs.
	StreamDrainNs int64 `json:"stream_drain_ns"`
	// FirstResultFrac = StreamFirstResultNs / FullScanNs (the acceptance
	// target is < 0.25 on a >= 8-SOT query).
	FirstResultFrac float64 `json:"first_result_frac"`
	// CancelAfterFirstNs is how long Close takes after consuming one
	// result: the teardown cost of abandoning a long scan early
	// (cancellation propagation + worker exit + lease release).
	CancelAfterFirstNs int64 `json:"cancel_after_first_ns"`
}

// streamPerfRuns averages the wall-clock measurements over a few runs;
// first-result latencies on small stores are microseconds-scale and
// noisy.
const streamPerfRuns = 5

// RunStreamPerf measures streaming scans end to end: it ingests one
// synthetic multi-SOT video (short GOPs so the query spans many SOTs),
// then compares the materializing Scan against a drained ScanCursor and
// an early-cancelled ScanCursor, cache disabled throughout (every run
// decodes from disk, the cold path where streaming matters).
func RunStreamPerf(o Options) (StreamPerfResult, *Table, error) {
	o = o.withDefaults()
	res := StreamPerfResult{
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.GOMAXPROCS(0),
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
	}

	dir, err := os.MkdirTemp("", "tasm-stream-*")
	if err != nil {
		return res, nil, err
	}
	defer os.RemoveAll(dir)

	cfg := core.DefaultConfig()
	cfg.Codec = o.codecParams()
	cfg.Codec.GOPLength = max(2, o.FPS/2) // short GOPs => many SOTs
	cfg.MinTileW, cfg.MinTileH = o.MinTileW, o.MinTileH

	durationSec := max(4, int(8*o.DurationScale))
	v, err := scene.Generate(scene.Spec{
		Name: "stream", W: o.Width, H: o.Height, FPS: o.FPS, DurationSec: durationSec,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: o.Seed,
	})
	if err != nil {
		return res, nil, err
	}
	frames := v.Frames(0, v.Spec.NumFrames())

	m, err := core.Open(dir, cfg)
	if err != nil {
		return res, nil, err
	}
	defer m.Close()
	if _, err := m.Ingest("stream", frames, v.Spec.FPS); err != nil {
		return res, nil, err
	}
	for f := 0; f < v.Spec.NumFrames(); f++ {
		for _, tr := range v.GroundTruth(f) {
			if err := m.AddMetadata("stream", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				return res, nil, err
			}
		}
	}
	q, err := query.Parse(fmt.Sprintf("SELECT car FROM stream WHERE 0 <= t < %d", v.Spec.NumFrames()))
	if err != nil {
		return res, nil, err
	}
	ctx := context.Background()

	// One untimed warm-up pass (file cache, allocator) so the compared
	// runs see the same conditions.
	if _, st, err := m.Scan(q); err != nil {
		return res, nil, err
	} else {
		res.SOTs = st.SOTsTouched
		res.Regions = st.RegionsReturned
	}

	var fullNs, firstNs, drainNs, cancelNs int64
	for run := 0; run < streamPerfRuns; run++ {
		o.progressf("stream: run %d/%d\n", run+1, streamPerfRuns)

		start := time.Now()
		if _, _, err := m.ScanContext(ctx, q); err != nil {
			return res, nil, err
		}
		fullNs += time.Since(start).Nanoseconds()

		start = time.Now()
		cur, err := m.ScanCursor(ctx, q)
		if err != nil {
			return res, nil, err
		}
		if !cur.Next() {
			return res, nil, fmt.Errorf("bench: streaming scan yielded nothing: %v", cur.Err())
		}
		firstNs += time.Since(start).Nanoseconds()
		n := 1
		for cur.Next() {
			n++
		}
		if err := cur.Err(); err != nil {
			return res, nil, err
		}
		drainNs += time.Since(start).Nanoseconds()
		if n != res.Regions {
			return res, nil, fmt.Errorf("bench: cursor yielded %d regions, Scan returned %d", n, res.Regions)
		}

		cur, err = m.ScanCursor(ctx, q)
		if err != nil {
			return res, nil, err
		}
		if !cur.Next() {
			return res, nil, fmt.Errorf("bench: streaming scan yielded nothing: %v", cur.Err())
		}
		start = time.Now()
		cur.Close()
		cancelNs += time.Since(start).Nanoseconds()
	}
	res.FullScanNs = fullNs / streamPerfRuns
	res.StreamFirstResultNs = firstNs / streamPerfRuns
	res.StreamDrainNs = drainNs / streamPerfRuns
	res.CancelAfterFirstNs = cancelNs / streamPerfRuns
	if res.FullScanNs > 0 {
		res.FirstResultFrac = float64(res.StreamFirstResultNs) / float64(res.FullScanNs)
	}

	t := &Table{
		Title:   "Streaming scans (PR 3): time-to-first-result vs full materialization",
		Columns: []string{"measurement", "value"},
		Rows: [][]string{
			{"query span", fmt.Sprintf("%d SOTs, %d regions", res.SOTs, res.Regions)},
			{"full scan (materialize)", fmt.Sprintf("%.3f ms", float64(res.FullScanNs)/1e6)},
			{"stream first result", fmt.Sprintf("%.3f ms (%.1f%% of full)", float64(res.StreamFirstResultNs)/1e6, 100*res.FirstResultFrac)},
			{"stream full drain", fmt.Sprintf("%.3f ms", float64(res.StreamDrainNs)/1e6)},
			{"cancel after first result", fmt.Sprintf("%.3f ms", float64(res.CancelAfterFirstNs)/1e6)},
		},
		Notes: []string{
			fmt.Sprintf("%d CPUs, cache disabled, parallelism %d", res.CPUs, cfg.Parallelism),
			"target: first result < 25% of full-scan wall on a >= 8-SOT query",
		},
	}
	return res, t, nil
}
