package bench

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/detect"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/policy"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/stats"
	"github.com/tasm-repro/tasm/internal/workload"
)

// Strategy names, in the paper's Figure 11 order.
const (
	StratNotTiled  = "not-tiled"
	StratAllObjs   = "all-objects"
	StratIncMore   = "inc-more"
	StratIncRegret = "inc-regret"
)

// Strategies lists the four §5.3 strategies.
func Strategies() []string {
	return []string{StratNotTiled, StratAllObjs, StratIncMore, StratIncRegret}
}

// WorkloadSeries is one cumulative-cost curve of Figure 11: a (workload,
// video, strategy) run. CumNorm[i] is the cumulative decode + re-tiling
// time through query i, normalized so the untiled strategy accrues exactly
// 1 per query.
type WorkloadSeries struct {
	Workload string
	Video    string
	Strategy string
	CumNorm  []float64
}

// Final returns the series' final cumulative value.
func (s WorkloadSeries) Final() float64 {
	if len(s.CumNorm) == 0 {
		return 0
	}
	return s.CumNorm[len(s.CumNorm)-1]
}

// workloadVideos maps each workload to its evaluation presets: W1–W4 run on
// Visual Road (sparse), W5–W6 on dense scenes (paper §5.3).
func workloadVideos(o Options, name string) []scene.Preset {
	switch name {
	case "W3":
		// The paper excludes the one 4K video with no traffic lights.
		return o.presets(func(p scene.Preset) bool {
			if p.Spec.Dataset != "VisualRoad" {
				return false
			}
			for _, c := range p.Spec.Classes {
				if c.Class == scene.TrafficLight {
					return true
				}
			}
			return false
		})
	case "W1", "W2", "W4":
		return o.presets(func(p scene.Preset) bool { return p.Spec.Dataset == "VisualRoad" })
	default:
		return o.presets(func(p scene.Preset) bool { return !p.SparseExpected })
	}
}

// templateDirFor ingests a video once and pre-populates its semantic index
// so per-strategy runs start from an identical on-disk state via copy.
func templateDirFor(o Options, m *micro, root string) (string, error) {
	dir := filepath.Join(root, "template-"+m.preset.Spec.Name)
	if _, err := os.Stat(dir); err == nil {
		return dir, nil
	}
	mgr, err := core.Open(dir, managerConfig(o))
	if err != nil {
		return "", err
	}
	frames := m.video.Frames(0, m.numFrames)
	if _, err := mgr.Ingest(m.preset.Spec.Name, frames, o.FPS); err != nil {
		mgr.Close()
		return "", err
	}
	// Figure 11 excludes detection cost: all strategies see the same
	// already-populated index (detections are a byproduct of query
	// processing either way).
	if err := mgr.AddDetections(m.preset.Spec.Name, m.detections()); err != nil {
		mgr.Close()
		return "", err
	}
	for _, label := range m.video.Classes() {
		if err := mgr.Index().MarkDetected(m.preset.Spec.Name, label, 0, m.numFrames); err != nil {
			mgr.Close()
			return "", err
		}
	}
	if err := mgr.Close(); err != nil {
		return "", err
	}
	return dir, nil
}

func managerConfig(o Options) core.Config {
	cfg := core.DefaultConfig()
	cfg.Codec = o.codecParams()
	cfg.MinTileW, cfg.MinTileH = o.MinTileW, o.MinTileH
	return cfg
}

// copyDir recursively copies a directory tree.
func copyDir(src, dst string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
}

// strategyObserver abstracts the per-query policy hook of a strategy.
type strategyObserver func(mgr *core.Manager, q workload.Query) ([]policy.Action, error)

// runStrategy executes a workload under one strategy, returning per-query
// costs (decode + retile wall time) and any upfront cost (pre-tiling work
// the paper charges to the first query).
func runStrategy(o Options, m *micro, queries []workload.Query, strategy string, root string) ([]time.Duration, time.Duration, error) {
	tpl, err := templateDirFor(o, m, root)
	if err != nil {
		return nil, 0, err
	}
	dir := filepath.Join(root, fmt.Sprintf("%s-%s", m.preset.Spec.Name, strategy))
	if err := copyDir(tpl, dir); err != nil {
		return nil, 0, err
	}
	mgr, err := core.Open(dir, managerConfig(o))
	if err != nil {
		return nil, 0, err
	}
	defer mgr.Close()
	defer os.RemoveAll(dir)

	video := m.preset.Spec.Name
	var upfront time.Duration
	var observe strategyObserver
	switch strategy {
	case StratNotTiled:
		observe = nil
	case StratAllObjs:
		// Pre-tile around all detected objects; the paper charges this to
		// the first query.
		actions, err := policy.AllObjects(mgr, video, layout.Fine)
		if err != nil {
			return nil, 0, err
		}
		rs, err := policy.Apply(context.Background(), mgr, actions)
		if err != nil {
			return nil, 0, err
		}
		upfront = rs.DecodeWall + rs.EncodeWall
	case StratIncMore:
		im := policy.NewIncrementalMore()
		observe = func(mgr *core.Manager, q workload.Query) ([]policy.Action, error) {
			return im.ObserveQuery(mgr, q.ToQuery())
		}
	case StratIncRegret:
		rg := policy.NewRegret(mgr.Config().Model)
		observe = func(mgr *core.Manager, q workload.Query) ([]policy.Action, error) {
			return rg.ObserveQuery(mgr, q.ToQuery())
		}
	default:
		return nil, 0, fmt.Errorf("bench: unknown strategy %q", strategy)
	}

	costs := make([]time.Duration, len(queries))
	for i, q := range queries {
		_, st, err := mgr.Scan(q.ToQuery())
		if err != nil {
			return nil, 0, err
		}
		cost := st.DecodeWall
		if observe != nil {
			actions, err := observe(mgr, q)
			if err != nil {
				return nil, 0, err
			}
			if len(actions) > 0 {
				rs, err := policy.Apply(context.Background(), mgr, actions)
				if err != nil {
					return nil, 0, err
				}
				cost += rs.DecodeWall + rs.EncodeWall
			}
		}
		costs[i] = cost
	}
	return costs, upfront, nil
}

// normalizeSeries converts per-query costs into the paper's cumulative
// normalized curve: each query's cost is divided by the untiled baseline
// for that same query, and any upfront cost is charged to the first query
// normalized against the mean baseline (dividing it by one query's
// possibly-tiny baseline would explode the curve).
func normalizeSeries(costs []time.Duration, upfront time.Duration, baseCosts []time.Duration) []float64 {
	var meanBase time.Duration
	for _, b := range baseCosts {
		meanBase += b
	}
	if len(baseCosts) > 0 {
		meanBase /= time.Duration(len(baseCosts))
	}
	if meanBase <= 0 {
		meanBase = time.Microsecond
	}
	cum := make([]float64, len(costs))
	run := float64(upfront) / float64(meanBase)
	for i, c := range costs {
		base := baseCosts[i]
		if base <= 0 {
			base = time.Microsecond
		}
		run += float64(c) / float64(base)
		cum[i] = run
	}
	return cum
}

// RunFigure11 reproduces Figure 11 and Table 2 for the given workloads
// (nil = all six): the four strategies' cumulative decode + re-tiling time,
// normalized per-query to the untiled baseline.
func RunFigure11(o Options, names []string) ([]WorkloadSeries, []*Table, *Table, error) {
	o = o.withDefaults()
	if names == nil {
		names = workload.Names()
	}
	root, err := os.MkdirTemp("", "tasm-fig11-*")
	if err != nil {
		return nil, nil, nil, err
	}
	defer os.RemoveAll(root)

	var series []WorkloadSeries
	var tables []*Table
	finals := map[string]map[string][]float64{} // workload -> strategy -> finals per video

	for _, name := range names {
		gen, ok := workload.ByName(name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("bench: unknown workload %q", name)
		}
		perStrategyCum := map[string][][]float64{}
		for _, p := range workloadVideos(o, name) {
			o.progressf("fig11 %s: %s\n", name, p.Spec.Name)
			m, err := prepare(o, p)
			if err != nil {
				return nil, nil, nil, err
			}
			defer m.cleanup()
			wl := gen(workload.Info(p), o.Seed)
			queries := wl.Queries
			if o.QueryCap > 0 && len(queries) > o.QueryCap {
				queries = queries[:o.QueryCap]
			}
			// Baseline first: per-query untiled decode times.
			baseCosts, _, err := runStrategy(o, m, queries, StratNotTiled, root)
			if err != nil {
				return nil, nil, nil, err
			}
			for _, strat := range Strategies() {
				costs, upfront := baseCosts, time.Duration(0)
				if strat != StratNotTiled {
					if costs, upfront, err = runStrategy(o, m, queries, strat, root); err != nil {
						return nil, nil, nil, err
					}
				}
				cum := normalizeSeries(costs, upfront, baseCosts)
				series = append(series, WorkloadSeries{
					Workload: name, Video: p.Spec.Name, Strategy: strat, CumNorm: cum,
				})
				perStrategyCum[strat] = append(perStrategyCum[strat], cum)
				if finals[name] == nil {
					finals[name] = map[string][]float64{}
				}
				finals[name][strat] = append(finals[name][strat], cum[len(cum)-1])
			}
			// Template no longer needed for this video.
			os.RemoveAll(filepath.Join(root, "template-"+p.Spec.Name))
		}
		tables = append(tables, fig11Table(name, perStrategyCum))
	}

	t2 := &Table{
		Title:   "Table 2: cumulative workload time (normalized; 25/50/75 percentiles)",
		Columns: []string{"workload", "strategy", "q25", "q50", "q75"},
	}
	for _, name := range names {
		for _, strat := range Strategies() {
			q := stats.ComputeQuartiles(finals[name][strat])
			t2.Rows = append(t2.Rows, []string{name, strat, fmtF(q.Q25), fmtF(q.Q50), fmtF(q.Q75)})
		}
	}
	t2.Notes = append(t2.Notes,
		"paper medians (W1..W6 x not-tiled/all/more/regret):",
		"W1: 100/65/69/91  W2: 100/67/50/53  W3: 100/64/82/57",
		"W4: 200/102/110/103  W5: 200/221/230/200  W6: 200/244/186/186")
	return series, tables, t2, nil
}

// fig11Table renders a workload's median cumulative curve at checkpoints.
func fig11Table(name string, perStrategy map[string][][]float64) *Table {
	t := &Table{
		Title:   fmt.Sprintf("Figure 11 (%s): median cumulative decode+retile time (normalized)", name),
		Columns: []string{"strategy", "q=1", "25%", "50%", "75%", "100%"},
	}
	for _, strat := range Strategies() {
		curves := perStrategy[strat]
		if len(curves) == 0 {
			continue
		}
		n := len(curves[0])
		checkpoint := func(idx int) string {
			var vals []float64
			for _, c := range curves {
				if idx < len(c) {
					vals = append(vals, c[idx])
				}
			}
			return fmtF(stats.Median(vals))
		}
		t.Rows = append(t.Rows, []string{
			strat,
			checkpoint(0),
			checkpoint(n / 4),
			checkpoint(n / 2),
			checkpoint(3 * n / 4),
			checkpoint(n - 1),
		})
	}
	return t
}

// Fig12 strategy names.
const (
	StratPreTileAll   = "pretile-all-objects"
	StratPreTileBgSub = "pretile-bgsub"
)

// RunFigure12 reproduces Figure 12: Workload 5 with upfront detection
// costs. Pre-tiling strategies pay simulated detector latency (YOLOv3 or
// KNN background subtraction over every frame) plus the initial tiling,
// then evolve with the regret policy; the pure incremental strategy pays
// nothing upfront.
func RunFigure12(o Options) ([]WorkloadSeries, *Table, error) {
	o = o.withDefaults()
	root, err := os.MkdirTemp("", "tasm-fig12-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(root)

	strategies := []string{StratNotTiled, StratPreTileAll, StratPreTileBgSub, StratIncRegret}
	perStrategyCum := map[string][][]float64{}
	var series []WorkloadSeries

	for _, p := range workloadVideos(o, "W5") {
		o.progressf("fig12: %s\n", p.Spec.Name)
		m, err := prepare(o, p)
		if err != nil {
			return nil, nil, err
		}
		defer m.cleanup()
		wl := workload.W5(workload.Info(p), o.Seed)
		queries := wl.Queries
		if o.QueryCap > 0 && len(queries) > o.QueryCap {
			queries = queries[:o.QueryCap]
		}
		baseCosts, _, err := runStrategy(o, m, queries, StratNotTiled, root)
		if err != nil {
			return nil, nil, err
		}
		for _, strat := range strategies {
			costs, upfront := baseCosts, time.Duration(0)
			switch strat {
			case StratNotTiled:
			case StratIncRegret:
				if costs, upfront, err = runStrategy(o, m, queries, StratIncRegret, root); err != nil {
					return nil, nil, err
				}
			default:
				if costs, upfront, err = runPreTile(o, m, queries, strat, root); err != nil {
					return nil, nil, err
				}
			}
			cum := normalizeSeries(costs, upfront, baseCosts)
			series = append(series, WorkloadSeries{Workload: "W5+detect", Video: p.Spec.Name, Strategy: strat, CumNorm: cum})
			perStrategyCum[strat] = append(perStrategyCum[strat], cum)
		}
		os.RemoveAll(filepath.Join(root, "template-"+p.Spec.Name))
	}

	t := &Table{
		Title:   "Figure 12: W5 cumulative cost including initial detection (median, normalized)",
		Columns: []string{"strategy", "q=1", "25%", "50%", "75%", "100%"},
	}
	for _, strat := range strategies {
		curves := perStrategyCum[strat]
		if len(curves) == 0 {
			continue
		}
		n := len(curves[0])
		cp := func(idx int) string {
			var vals []float64
			for _, c := range curves {
				if idx < len(c) {
					vals = append(vals, c[idx])
				}
			}
			return fmtF(stats.Median(vals))
		}
		t.Rows = append(t.Rows, []string{strat, cp(0), cp(n / 4), cp(n / 2), cp(3 * n / 4), cp(n - 1)})
	}
	t.Notes = append(t.Notes, "paper: upfront detection never amortizes within 200 queries; incremental-regret tracks not-tiled")
	return series, t, nil
}

// runPreTile executes the Figure 12 pre-tiling strategies: pay detection
// latency over every frame, tile around the detections, then continue with
// the regret policy.
func runPreTile(o Options, m *micro, queries []workload.Query, strat, root string) ([]time.Duration, time.Duration, error) {
	tpl, err := templateDirFor(o, m, root)
	if err != nil {
		return nil, 0, err
	}
	dir := filepath.Join(root, fmt.Sprintf("%s-%s", m.preset.Spec.Name, strat))
	if err := copyDir(tpl, dir); err != nil {
		return nil, 0, err
	}
	mgr, err := core.Open(dir, managerConfig(o))
	if err != nil {
		return nil, 0, err
	}
	defer mgr.Close()
	defer os.RemoveAll(dir)
	video := m.preset.Spec.Name

	// Upfront: run the detector over every frame (simulated latency) and
	// tile every SOT around its detections.
	var det detect.Detector
	if strat == StratPreTileBgSub {
		det = &detect.BackgroundSub{Lat: detect.DefaultLatencies(), Seed: o.Seed}
	} else {
		det = &detect.Oracle{Lat: detect.DefaultLatencies(), Seed: o.Seed}
	}
	ds, detLat := detect.Run(det, m.video, 0, m.numFrames)
	upfront := detLat

	// Build per-SOT layouts around the detections.
	boxesBySOT := map[int][]geom.Rect{}
	for _, d := range ds {
		boxesBySOT[d.Frame/m.gopLen] = append(boxesBySOT[d.Frame/m.gopLen], d.Box)
	}
	meta, err := mgr.Meta(video)
	if err != nil {
		return nil, 0, err
	}
	cons := mgr.Config().Constraints(meta.W, meta.H)
	for _, sot := range meta.SOTs {
		l, err := layout.Partition(boxesBySOT[sot.ID], layout.Fine, cons)
		if err != nil {
			return nil, 0, err
		}
		if l.IsSingle() {
			continue
		}
		rs, err := mgr.RetileSOT(video, sot.ID, l)
		if err != nil {
			return nil, 0, err
		}
		upfront += rs.DecodeWall + rs.EncodeWall
	}

	// Then evolve incrementally with regret, like the paper.
	rg := policy.NewRegret(mgr.Config().Model)
	costs := make([]time.Duration, len(queries))
	for i, q := range queries {
		_, st, err := mgr.Scan(q.ToQuery())
		if err != nil {
			return nil, 0, err
		}
		cost := st.DecodeWall
		actions, err := rg.ObserveQuery(mgr, q.ToQuery())
		if err != nil {
			return nil, 0, err
		}
		if len(actions) > 0 {
			rs, err := policy.Apply(context.Background(), mgr, actions)
			if err != nil {
				return nil, 0, err
			}
			cost += rs.DecodeWall + rs.EncodeWall
		}
		costs[i] = cost
	}
	return costs, upfront, nil
}
