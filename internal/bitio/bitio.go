// Package bitio implements bit-granular readers and writers plus the
// Exp-Golomb universal codes used by the vcodec entropy coder. The design
// mirrors how HEVC serializes syntax elements: unsigned/signed Exp-Golomb
// for transform coefficients and run lengths, raw fixed-width fields for
// headers.
package bitio

import (
	"errors"
	"fmt"
)

// ErrUnexpectedEOF is returned when a read runs past the end of the stream.
var ErrUnexpectedEOF = errors.New("bitio: unexpected end of stream")

// Writer accumulates bits into a byte slice, most significant bit first.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	cur  byte
	nCur uint // bits currently in cur (0..7)
}

// WriteBit appends a single bit (b must be 0 or 1).
func (w *Writer) WriteBit(b uint) {
	w.cur = w.cur<<1 | byte(b&1)
	w.nCur++
	if w.nCur == 8 {
		w.buf = append(w.buf, w.cur)
		w.cur, w.nCur = 0, 0
	}
}

// WriteBits appends the low n bits of v, most significant first. n may be
// 0..64.
func (w *Writer) WriteBits(v uint64, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		w.WriteBit(uint(v>>uint(i)) & 1)
	}
}

// WriteUE appends v with unsigned Exp-Golomb coding.
func (w *Writer) WriteUE(v uint32) {
	x := uint64(v) + 1
	// Count bits in x.
	n := uint(0)
	for t := x; t > 1; t >>= 1 {
		n++
	}
	for i := uint(0); i < n; i++ {
		w.WriteBit(0)
	}
	w.WriteBits(x, n+1)
}

// WriteSE appends v with signed Exp-Golomb coding (0, 1, -1, 2, -2, ...).
func (w *Writer) WriteSE(v int32) {
	var u uint32
	if v > 0 {
		u = uint32(v)*2 - 1
	} else {
		u = uint32(-v) * 2
	}
	w.WriteUE(u)
}

// Align pads the current byte with zero bits so the stream is byte-aligned.
func (w *Writer) Align() {
	for w.nCur != 0 {
		w.WriteBit(0)
	}
}

// Bytes returns the written stream, byte-aligning first.
func (w *Writer) Bytes() []byte {
	w.Align()
	return w.buf
}

// BitLen returns the number of bits written so far.
func (w *Writer) BitLen() int { return len(w.buf)*8 + int(w.nCur) }

// Reset clears the writer for reuse, retaining the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.cur, w.nCur = 0, 0
}

// Reader consumes bits from a byte slice, most significant bit first.
type Reader struct {
	buf []byte
	pos uint // bit position
}

// NewReader returns a Reader over buf. The caller must not mutate buf while
// reading.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Reset repositions the reader at the start of buf, reusing the Reader
// value so per-packet decode loops allocate nothing. The caller must not
// mutate buf while reading.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
}

// ReadBit returns the next bit.
func (r *Reader) ReadBit() (uint, error) {
	byteIdx := r.pos >> 3
	if byteIdx >= uint(len(r.buf)) {
		return 0, ErrUnexpectedEOF
	}
	shift := 7 - (r.pos & 7)
	r.pos++
	return uint(r.buf[byteIdx]>>shift) & 1, nil
}

// ReadBits returns the next n bits as an unsigned integer (n <= 64).
func (r *Reader) ReadBits(n uint) (uint64, error) {
	var v uint64
	for i := uint(0); i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v = v<<1 | uint64(b)
	}
	return v, nil
}

// ReadUE decodes an unsigned Exp-Golomb value.
func (r *Reader) ReadUE() (uint32, error) {
	n := uint(0)
	for {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		if b == 1 {
			break
		}
		n++
		if n > 32 {
			return 0, fmt.Errorf("bitio: malformed Exp-Golomb prefix (%d leading zeros)", n)
		}
	}
	rest, err := r.ReadBits(n)
	if err != nil {
		return 0, err
	}
	return uint32((1<<n)-1) + uint32(rest), nil
}

// ReadSE decodes a signed Exp-Golomb value.
func (r *Reader) ReadSE() (int32, error) {
	u, err := r.ReadUE()
	if err != nil {
		return 0, err
	}
	if u%2 == 1 {
		return int32(u/2) + 1, nil
	}
	return -int32(u / 2), nil
}

// Align advances to the next byte boundary.
func (r *Reader) Align() {
	if rem := r.pos & 7; rem != 0 {
		r.pos += 8 - rem
	}
}

// BitPos returns the current bit offset from the start of the stream.
func (r *Reader) BitPos() uint { return r.pos }

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - int(r.pos) }
