package bitio

import (
	"testing"
	"testing/quick"
)

func TestWriteReadBits(t *testing.T) {
	var w Writer
	w.WriteBits(0b1011, 4)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 3)
	w.WriteBit(1)
	data := w.Bytes()

	r := NewReader(data)
	if v, _ := r.ReadBits(4); v != 0b1011 {
		t.Errorf("got %b, want 1011", v)
	}
	if v, _ := r.ReadBits(8); v != 0xFF {
		t.Errorf("got %x, want ff", v)
	}
	if v, _ := r.ReadBits(3); v != 0 {
		t.Errorf("got %b, want 0", v)
	}
	if v, _ := r.ReadBit(); v != 1 {
		t.Errorf("got %d, want 1", v)
	}
}

func TestUERoundTrip(t *testing.T) {
	values := []uint32{0, 1, 2, 3, 4, 7, 8, 100, 255, 256, 65535, 1 << 20, 1<<31 - 1}
	var w Writer
	for _, v := range values {
		w.WriteUE(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range values {
		got, err := r.ReadUE()
		if err != nil {
			t.Fatalf("ReadUE: %v", err)
		}
		if got != want {
			t.Errorf("UE round trip: got %d, want %d", got, want)
		}
	}
}

func TestSERoundTrip(t *testing.T) {
	values := []int32{0, 1, -1, 2, -2, 100, -100, 32767, -32768, 1 << 20, -(1 << 20)}
	var w Writer
	for _, v := range values {
		w.WriteSE(v)
	}
	r := NewReader(w.Bytes())
	for _, want := range values {
		got, err := r.ReadSE()
		if err != nil {
			t.Fatalf("ReadSE: %v", err)
		}
		if got != want {
			t.Errorf("SE round trip: got %d, want %d", got, want)
		}
	}
}

func TestKnownUEEncodings(t *testing.T) {
	// Classic Exp-Golomb: 0 -> "1", 1 -> "010", 2 -> "011", 3 -> "00100".
	var w Writer
	w.WriteUE(0)
	w.WriteUE(1)
	w.WriteUE(2)
	w.WriteUE(3)
	if got := w.BitLen(); got != 1+3+3+5 {
		t.Errorf("bit length = %d, want 12", got)
	}
	b := w.Bytes()
	// 1 010 011 00100 -> 10100110 0100....
	if b[0] != 0b10100110 {
		t.Errorf("first byte = %08b, want 10100110", b[0])
	}
}

func TestAlign(t *testing.T) {
	var w Writer
	w.WriteBits(0b101, 3)
	w.Align()
	if got := w.BitLen(); got != 8 {
		t.Errorf("BitLen after align = %d, want 8", got)
	}
	r := NewReader(w.Bytes())
	if _, err := r.ReadBits(3); err != nil {
		t.Fatal(err)
	}
	r.Align()
	if r.BitPos() != 8 {
		t.Errorf("BitPos after align = %d, want 8", r.BitPos())
	}
	r2 := NewReader([]byte{0xAB})
	r2.Align() // already aligned: no-op
	if r2.BitPos() != 0 {
		t.Errorf("Align on aligned reader moved to %d", r2.BitPos())
	}
}

func TestReaderEOF(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(8); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadBit(); err != ErrUnexpectedEOF {
		t.Errorf("expected ErrUnexpectedEOF, got %v", err)
	}
	if _, err := r.ReadUE(); err == nil {
		t.Error("ReadUE past EOF should fail")
	}
}

func TestMalformedUE(t *testing.T) {
	// 40 zero bits: invalid Exp-Golomb prefix.
	r := NewReader(make([]byte, 5))
	if _, err := r.ReadUE(); err == nil {
		t.Error("expected error for malformed Exp-Golomb prefix")
	}
}

func TestWriterReset(t *testing.T) {
	var w Writer
	w.WriteBits(0xDEAD, 16)
	w.Reset()
	if w.BitLen() != 0 {
		t.Errorf("BitLen after reset = %d", w.BitLen())
	}
	w.WriteUE(5)
	r := NewReader(w.Bytes())
	if v, _ := r.ReadUE(); v != 5 {
		t.Errorf("post-reset UE = %d, want 5", v)
	}
}

func TestRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0})
	if r.Remaining() != 16 {
		t.Errorf("Remaining = %d, want 16", r.Remaining())
	}
	r.ReadBits(5)
	if r.Remaining() != 11 {
		t.Errorf("Remaining = %d, want 11", r.Remaining())
	}
}

// Property: any sequence of UE/SE/raw writes reads back identically.
func TestMixedRoundTripProperty(t *testing.T) {
	f := func(ue []uint32, se []int16, raw []uint8) bool {
		var w Writer
		for _, v := range ue {
			w.WriteUE(v % (1 << 24))
		}
		for _, v := range se {
			w.WriteSE(int32(v))
		}
		for _, v := range raw {
			w.WriteBits(uint64(v), 8)
		}
		r := NewReader(w.Bytes())
		for _, v := range ue {
			got, err := r.ReadUE()
			if err != nil || got != v%(1<<24) {
				return false
			}
		}
		for _, v := range se {
			got, err := r.ReadSE()
			if err != nil || got != int32(v) {
				return false
			}
		}
		for _, v := range raw {
			got, err := r.ReadBits(8)
			if err != nil || got != uint64(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWriteUE(b *testing.B) {
	var w Writer
	for i := 0; i < b.N; i++ {
		if i%4096 == 0 {
			w.Reset()
		}
		w.WriteUE(uint32(i % 1024))
	}
}

func BenchmarkReadUE(b *testing.B) {
	var w Writer
	for i := 0; i < 4096; i++ {
		w.WriteUE(uint32(i % 1024))
	}
	data := w.Bytes()
	b.ResetTimer()
	r := NewReader(data)
	for i := 0; i < b.N; i++ {
		if r.Remaining() < 64 {
			r = NewReader(data)
		}
		r.ReadUE()
	}
}
