// Package btree implements a file-backed, page-oriented B+-tree with
// variable-length keys and values, range scans over a linked leaf level,
// and an optional purely in-memory mode. TASM's semantic index (paper §3.2)
// is "a B-tree clustered on (video, label, time)"; this package is that
// B-tree, replacing the SQLite dependency of the authors' prototype.
//
// Durability model: pages are written back on Sync/Close (no write-ahead
// log). Inserts use standard node splits; deletes collapse empty nodes but
// do not rebalance underfull ones, which is the usual trade-off for an
// index whose workload is append-heavy (detections are added, rarely
// removed).
package btree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
)

const (
	pageSize = 4096
	// maxEntrySize bounds key+value so any entry fits a page with headroom.
	maxEntrySize = 1024

	pageMeta     = 0
	typeLeaf     = 1
	typeInternal = 2

	metaMagic = "TBT1"
	nilPage   = uint32(0) // page 0 is the meta page, so 0 doubles as "none"
)

// ErrEntryTooLarge is returned for keys/values exceeding maxEntrySize.
var ErrEntryTooLarge = errors.New("btree: entry too large")

type node struct {
	id    uint32
	leaf  bool
	keys  [][]byte
	vals  [][]byte // leaf only
	kids  []uint32 // internal only; len(kids) == len(keys)+1
	next  uint32   // leaf only: right sibling
	dirty bool
}

// Tree is a B+-tree. All methods are safe for concurrent use.
type Tree struct {
	mu    sync.RWMutex
	file  *os.File // nil in memory mode
	root  uint32
	count uint64 // number of keys
	nPage uint32 // pages allocated (including meta)
	free  []uint32
	cache map[uint32]*node
	meta  bool // meta dirty
}

// OpenMemory returns an in-memory tree (nothing is persisted).
func OpenMemory() *Tree {
	t := &Tree{cache: map[uint32]*node{}, nPage: 1}
	t.root = t.alloc(true).id
	return t
}

// Open opens or creates the tree stored at path.
func Open(path string) (*Tree, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	t := &Tree{file: f, cache: map[uint32]*node{}}
	if st.Size() == 0 {
		t.nPage = 1
		t.root = t.alloc(true).id
		if err := t.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		return t, nil
	}
	var meta [pageSize]byte
	if _, err := f.ReadAt(meta[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if string(meta[:4]) != metaMagic {
		f.Close()
		return nil, fmt.Errorf("btree: %s is not a btree file", path)
	}
	t.root = binary.LittleEndian.Uint32(meta[4:])
	t.nPage = binary.LittleEndian.Uint32(meta[8:])
	t.count = binary.LittleEndian.Uint64(meta[12:])
	nFree := binary.LittleEndian.Uint32(meta[20:])
	for i := uint32(0); i < nFree; i++ {
		t.free = append(t.free, binary.LittleEndian.Uint32(meta[24+4*i:]))
	}
	return t, nil
}

// Len returns the number of keys in the tree.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return int(t.count)
}

func (t *Tree) alloc(leaf bool) *node {
	var id uint32
	if len(t.free) > 0 {
		id = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
	} else {
		id = t.nPage
		t.nPage++
	}
	n := &node{id: id, leaf: leaf, dirty: true}
	t.cache[id] = n
	t.meta = true
	return n
}

func (t *Tree) freeNode(n *node) {
	delete(t.cache, n.id)
	t.free = append(t.free, n.id)
	t.meta = true
}

func (t *Tree) load(id uint32) (*node, error) {
	if n, ok := t.cache[id]; ok {
		return n, nil
	}
	if t.file == nil {
		return nil, fmt.Errorf("btree: missing page %d", id)
	}
	var buf [pageSize]byte
	if _, err := t.file.ReadAt(buf[:], int64(id)*pageSize); err != nil {
		return nil, fmt.Errorf("btree: read page %d: %w", id, err)
	}
	n, err := decodeNode(id, buf[:])
	if err != nil {
		return nil, err
	}
	t.cache[id] = n
	return n, nil
}

func decodeNode(id uint32, buf []byte) (*node, error) {
	n := &node{id: id}
	switch buf[0] {
	case typeLeaf:
		n.leaf = true
		nk := int(binary.LittleEndian.Uint16(buf[1:]))
		n.next = binary.LittleEndian.Uint32(buf[3:])
		off := 7
		for i := 0; i < nk; i++ {
			if off+4 > pageSize {
				return nil, fmt.Errorf("btree: page %d corrupt", id)
			}
			kl := int(binary.LittleEndian.Uint16(buf[off:]))
			vl := int(binary.LittleEndian.Uint16(buf[off+2:]))
			off += 4
			if off+kl+vl > pageSize {
				return nil, fmt.Errorf("btree: page %d corrupt", id)
			}
			n.keys = append(n.keys, append([]byte(nil), buf[off:off+kl]...))
			n.vals = append(n.vals, append([]byte(nil), buf[off+kl:off+kl+vl]...))
			off += kl + vl
		}
	case typeInternal:
		nk := int(binary.LittleEndian.Uint16(buf[1:]))
		off := 3
		n.kids = append(n.kids, binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		for i := 0; i < nk; i++ {
			if off+2 > pageSize {
				return nil, fmt.Errorf("btree: page %d corrupt", id)
			}
			kl := int(binary.LittleEndian.Uint16(buf[off:]))
			off += 2
			if off+kl+4 > pageSize {
				return nil, fmt.Errorf("btree: page %d corrupt", id)
			}
			n.keys = append(n.keys, append([]byte(nil), buf[off:off+kl]...))
			off += kl
			n.kids = append(n.kids, binary.LittleEndian.Uint32(buf[off:]))
			off += 4
		}
	default:
		return nil, fmt.Errorf("btree: page %d has unknown type %d", id, buf[0])
	}
	return n, nil
}

func (n *node) encode() []byte {
	buf := make([]byte, pageSize)
	if n.leaf {
		buf[0] = typeLeaf
		binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
		binary.LittleEndian.PutUint32(buf[3:], n.next)
		off := 7
		for i, k := range n.keys {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
			binary.LittleEndian.PutUint16(buf[off+2:], uint16(len(n.vals[i])))
			off += 4
			off += copy(buf[off:], k)
			off += copy(buf[off:], n.vals[i])
		}
	} else {
		buf[0] = typeInternal
		binary.LittleEndian.PutUint16(buf[1:], uint16(len(n.keys)))
		off := 3
		binary.LittleEndian.PutUint32(buf[off:], n.kids[0])
		off += 4
		for i, k := range n.keys {
			binary.LittleEndian.PutUint16(buf[off:], uint16(len(k)))
			off += 2
			off += copy(buf[off:], k)
			binary.LittleEndian.PutUint32(buf[off:], n.kids[i+1])
			off += 4
		}
	}
	return buf
}

// size returns the encoded byte size of the node.
func (n *node) size() int {
	if n.leaf {
		s := 7
		for i, k := range n.keys {
			s += 4 + len(k) + len(n.vals[i])
		}
		return s
	}
	s := 3 + 4
	for _, k := range n.keys {
		s += 2 + len(k) + 4
	}
	return s
}

// Sync writes all dirty pages and the meta page to disk. It is a no-op for
// in-memory trees.
func (t *Tree) Sync() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.syncLocked()
}

func (t *Tree) syncLocked() error {
	if t.file == nil {
		return nil
	}
	for _, n := range t.cache {
		if !n.dirty {
			continue
		}
		if _, err := t.file.WriteAt(n.encode(), int64(n.id)*pageSize); err != nil {
			return err
		}
		n.dirty = false
	}
	if t.meta {
		var buf [pageSize]byte
		copy(buf[:4], metaMagic)
		binary.LittleEndian.PutUint32(buf[4:], t.root)
		binary.LittleEndian.PutUint32(buf[8:], t.nPage)
		binary.LittleEndian.PutUint64(buf[12:], t.count)
		binary.LittleEndian.PutUint32(buf[20:], uint32(len(t.free)))
		for i, id := range t.free {
			if 24+4*i+4 > pageSize {
				break // free list overflow: leak pages rather than corrupt
			}
			binary.LittleEndian.PutUint32(buf[24+4*i:], id)
		}
		if _, err := t.file.WriteAt(buf[:], 0); err != nil {
			return err
		}
		t.meta = false
	}
	return t.file.Sync()
}

// Close syncs and releases the file.
func (t *Tree) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.syncLocked(); err != nil {
		return err
	}
	if t.file != nil {
		err := t.file.Close()
		t.file = nil
		return err
	}
	return nil
}

// Get returns the value for key, with ok reporting presence.
func (t *Tree) Get(key []byte) (val []byte, ok bool, err error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n, err := t.findLeaf(key)
	if err != nil {
		return nil, false, err
	}
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
	if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
		return append([]byte(nil), n.vals[i]...), true, nil
	}
	return nil, false, nil
}

func (t *Tree) findLeaf(key []byte) (*node, error) {
	n, err := t.load(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
		if n, err = t.load(n.kids[i]); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Put inserts or replaces the value for key.
func (t *Tree) Put(key, value []byte) error {
	if len(key)+len(value) > maxEntrySize {
		return ErrEntryTooLarge
	}
	if len(key) == 0 {
		return errors.New("btree: empty key")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	promoted, newID, err := t.insert(t.root, key, value)
	if err != nil {
		return err
	}
	if newID != nilPage {
		// Root split: grow the tree by one level.
		newRoot := t.alloc(false)
		newRoot.keys = [][]byte{promoted}
		newRoot.kids = []uint32{t.root, newID}
		t.root = newRoot.id
		t.meta = true
	}
	return nil
}

// insert descends into page id; on split it returns the separator key and
// new right-sibling page.
func (t *Tree) insert(id uint32, key, value []byte) (promoted []byte, newID uint32, err error) {
	n, err := t.load(id)
	if err != nil {
		return nil, nilPage, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			// Upsert: the replacement value may be larger, so fall through
			// to the size check below rather than returning early.
			n.vals[i] = append([]byte(nil), value...)
			n.dirty = true
			if n.size() <= pageSize {
				return nil, nilPage, nil
			}
			return t.split(n)
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = append([]byte(nil), key...)
		n.vals = append(n.vals, nil)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = append([]byte(nil), value...)
		n.dirty = true
		t.count++
		t.meta = true
	} else {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
		childPromoted, childNew, err := t.insert(n.kids[i], key, value)
		if err != nil {
			return nil, nilPage, err
		}
		if childNew != nilPage {
			n.keys = append(n.keys, nil)
			copy(n.keys[i+1:], n.keys[i:])
			n.keys[i] = childPromoted
			n.kids = append(n.kids, 0)
			copy(n.kids[i+2:], n.kids[i+1:])
			n.kids[i+1] = childNew
			n.dirty = true
		}
	}
	if n.size() <= pageSize {
		return nil, nilPage, nil
	}
	return t.split(n)
}

// split divides an oversized node, returning the separator and the new
// right sibling's page ID. The split point balances *serialized size*, not
// key count: entries can differ in size by orders of magnitude (upserts may
// grow a value), and a count-based midpoint could leave one half oversized.
func (t *Tree) split(n *node) ([]byte, uint32, error) {
	mid := t.splitPoint(n)
	right := t.alloc(n.leaf)
	if n.leaf {
		right.keys = append(right.keys, n.keys[mid:]...)
		right.vals = append(right.vals, n.vals[mid:]...)
		n.keys = n.keys[:mid]
		n.vals = n.vals[:mid]
		right.next = n.next
		n.next = right.id
		n.dirty = true
		return append([]byte(nil), right.keys[0]...), right.id, nil
	}
	// Internal: the middle key moves up, not into the right node.
	sep := n.keys[mid]
	right.keys = append(right.keys, n.keys[mid+1:]...)
	right.kids = append(right.kids, n.kids[mid+1:]...)
	n.keys = n.keys[:mid]
	n.kids = n.kids[:mid+1]
	n.dirty = true
	return sep, right.id, nil
}

// splitPoint returns the index at which the node's serialized size is most
// evenly divided, keeping at least one key on each side.
func (t *Tree) splitPoint(n *node) int {
	total := n.size()
	run := 0
	for i, k := range n.keys {
		if n.leaf {
			run += 4 + len(k) + len(n.vals[i])
		} else {
			run += 2 + len(k) + 4
		}
		if run >= total/2 {
			if i+1 >= len(n.keys) {
				return len(n.keys) - 1
			}
			return i + 1
		}
	}
	return len(n.keys) / 2
}

// Delete removes key, reporting whether it was present.
func (t *Tree) Delete(key []byte) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	removed, emptied, err := t.remove(t.root, key)
	if err != nil || !removed {
		return removed, err
	}
	// If the root is an empty internal node with one child, collapse it.
	for {
		root, err := t.load(t.root)
		if err != nil {
			return true, err
		}
		if !root.leaf && len(root.keys) == 0 {
			child := root.kids[0]
			t.freeNode(root)
			t.root = child
			t.meta = true
			continue
		}
		break
	}
	_ = emptied
	return true, nil
}

// remove deletes key from the subtree rooted at id. emptied reports that the
// node became empty and was freed (the caller must drop its pointer).
func (t *Tree) remove(id uint32, key []byte) (removed, emptied bool, err error) {
	n, err := t.load(id)
	if err != nil {
		return false, false, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(n.keys[i], key) >= 0 })
		if i >= len(n.keys) || !bytes.Equal(n.keys[i], key) {
			return false, false, nil
		}
		n.keys = append(n.keys[:i], n.keys[i+1:]...)
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		n.dirty = true
		t.count--
		t.meta = true
		if len(n.keys) == 0 && id != t.root {
			// The caller unlinks us; the leaf chain is repaired there.
			return true, true, nil
		}
		return true, false, nil
	}
	i := sort.Search(len(n.keys), func(i int) bool { return bytes.Compare(key, n.keys[i]) < 0 })
	removed, emptied, err = t.remove(n.kids[i], key)
	if err != nil || !removed {
		return removed, false, err
	}
	if emptied {
		child, _ := t.load(n.kids[i])
		if child != nil && child.leaf {
			t.unlinkLeaf(child)
		}
		if child != nil {
			t.freeNode(child)
		}
		if i == 0 {
			if len(n.keys) > 0 {
				n.keys = n.keys[1:]
			}
			n.kids = n.kids[1:]
		} else {
			n.keys = append(n.keys[:i-1], n.keys[i:]...)
			n.kids = append(n.kids[:i], n.kids[i+1:]...)
		}
		n.dirty = true
		if len(n.kids) == 0 && id != t.root {
			return true, true, nil
		}
	}
	return true, false, nil
}

// unlinkLeaf repairs the leaf sibling chain around a leaf that is being
// removed. It walks the leaf level from the leftmost leaf; acceptable
// because emptied-leaf removal is rare.
func (t *Tree) unlinkLeaf(dead *node) {
	cur, err := t.leftmostLeaf()
	if err != nil {
		return
	}
	for cur != nil && cur.next != nilPage {
		if cur.next == dead.id {
			cur.next = dead.next
			cur.dirty = true
			return
		}
		nxt, err := t.load(cur.next)
		if err != nil {
			return
		}
		cur = nxt
	}
}

func (t *Tree) leftmostLeaf() (*node, error) {
	n, err := t.load(t.root)
	if err != nil {
		return nil, err
	}
	for !n.leaf {
		if n, err = t.load(n.kids[0]); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Scan calls fn for each key in [start, end) in ascending order. A nil end
// scans to the end of the tree; a nil start scans from the beginning. fn
// returning false stops the scan. The callback must not modify the tree.
func (t *Tree) Scan(start, end []byte, fn func(key, value []byte) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var n *node
	var err error
	if start == nil {
		if n, err = t.leftmostLeaf(); err != nil {
			return err
		}
	} else if n, err = t.findLeaf(start); err != nil {
		return err
	}
	for n != nil {
		for i, k := range n.keys {
			if start != nil && bytes.Compare(k, start) < 0 {
				continue
			}
			if end != nil && bytes.Compare(k, end) >= 0 {
				return nil
			}
			if !fn(k, n.vals[i]) {
				return nil
			}
		}
		if n.next == nilPage {
			return nil
		}
		if n, err = t.load(n.next); err != nil {
			return err
		}
	}
	return nil
}

// Check verifies structural invariants (ordering, separator correctness,
// leaf chain consistency, key count). Intended for tests.
func (t *Tree) Check() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var leafKeys int
	var prev []byte
	first := true
	err := t.checkNode(t.root, nil, nil, &leafKeys, &prev, &first)
	if err != nil {
		return err
	}
	if uint64(leafKeys) != t.count {
		return fmt.Errorf("btree: count %d != leaf keys %d", t.count, leafKeys)
	}
	// Leaf chain must visit exactly the same number of keys, in order.
	n, err := t.leftmostLeaf()
	if err != nil {
		return err
	}
	chained := 0
	var last []byte
	for {
		for _, k := range n.keys {
			if last != nil && bytes.Compare(last, k) >= 0 {
				return fmt.Errorf("btree: leaf chain out of order at %q", k)
			}
			last = k
			chained++
		}
		if n.next == nilPage {
			break
		}
		if n, err = t.load(n.next); err != nil {
			return err
		}
	}
	if chained != leafKeys {
		return fmt.Errorf("btree: leaf chain has %d keys, tree has %d", chained, leafKeys)
	}
	return nil
}

func (t *Tree) checkNode(id uint32, lo, hi []byte, leafKeys *int, prev *[]byte, first *bool) error {
	n, err := t.load(id)
	if err != nil {
		return err
	}
	for i := 1; i < len(n.keys); i++ {
		if bytes.Compare(n.keys[i-1], n.keys[i]) >= 0 {
			return fmt.Errorf("btree: node %d keys out of order", id)
		}
	}
	for _, k := range n.keys {
		if lo != nil && bytes.Compare(k, lo) < 0 {
			return fmt.Errorf("btree: node %d key %q below separator %q", id, k, lo)
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			return fmt.Errorf("btree: node %d key %q not below separator %q", id, k, hi)
		}
	}
	if n.leaf {
		for _, k := range n.keys {
			if !*first && bytes.Compare(*prev, k) >= 0 {
				return fmt.Errorf("btree: global key order violated at %q", k)
			}
			*prev, *first = k, false
			*leafKeys++
		}
		return nil
	}
	if len(n.kids) != len(n.keys)+1 {
		return fmt.Errorf("btree: node %d has %d kids for %d keys", id, len(n.kids), len(n.keys))
	}
	for i, kid := range n.kids {
		var clo, chi []byte
		if i > 0 {
			clo = n.keys[i-1]
		} else {
			clo = lo
		}
		if i < len(n.keys) {
			chi = n.keys[i]
		} else {
			chi = hi
		}
		if err := t.checkNode(kid, clo, chi, leafKeys, prev, first); err != nil {
			return err
		}
	}
	return nil
}
