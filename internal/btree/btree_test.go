package btree

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"os"

	"github.com/tasm-repro/tasm/internal/stats"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key%08d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("value-%d", i)) }

func TestPutGetMemory(t *testing.T) {
	tr := OpenMemory()
	for i := 0; i < 1000; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok, err := tr.Get(key(i))
		if err != nil || !ok {
			t.Fatalf("Get(%d): ok=%v err=%v", i, ok, err)
		}
		if !bytes.Equal(v, val(i)) {
			t.Fatalf("Get(%d) = %q", i, v)
		}
	}
	if _, ok, _ := tr.Get([]byte("absent")); ok {
		t.Error("found absent key")
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestUpsert(t *testing.T) {
	tr := OpenMemory()
	tr.Put([]byte("k"), []byte("v1"))
	tr.Put([]byte("k"), []byte("v2"))
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
	v, ok, _ := tr.Get([]byte("k"))
	if !ok || string(v) != "v2" {
		t.Errorf("Get = %q, %v", v, ok)
	}
}

func TestRejectsBadEntries(t *testing.T) {
	tr := OpenMemory()
	if err := tr.Put(nil, []byte("v")); err == nil {
		t.Error("empty key accepted")
	}
	big := make([]byte, maxEntrySize+1)
	if err := tr.Put(big, nil); err != ErrEntryTooLarge {
		t.Errorf("oversized entry: %v", err)
	}
}

func TestInsertRandomOrder(t *testing.T) {
	tr := OpenMemory()
	rng := stats.NewRNG(17)
	perm := rng.Perm(5000)
	for _, i := range perm {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Full scan must be sorted and complete.
	var got []string
	tr.Scan(nil, nil, func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 5000 {
		t.Fatalf("scan found %d keys", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("scan out of order at %d", i)
		}
	}
}

func TestScanRange(t *testing.T) {
	tr := OpenMemory()
	for i := 0; i < 200; i++ {
		tr.Put(key(i), val(i))
	}
	var got []string
	tr.Scan(key(50), key(60), func(k, v []byte) bool {
		got = append(got, string(k))
		return true
	})
	if len(got) != 10 {
		t.Fatalf("range scan found %d, want 10: %v", len(got), got)
	}
	if got[0] != string(key(50)) || got[9] != string(key(59)) {
		t.Errorf("range endpoints wrong: %v", got)
	}
	// Early termination.
	count := 0
	tr.Scan(nil, nil, func(k, v []byte) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop after %d", count)
	}
	// Scan with start beyond all keys.
	n := 0
	tr.Scan([]byte("zzz"), nil, func(k, v []byte) bool { n++; return true })
	if n != 0 {
		t.Errorf("scan past end returned %d keys", n)
	}
}

func TestDelete(t *testing.T) {
	tr := OpenMemory()
	for i := 0; i < 500; i++ {
		tr.Put(key(i), val(i))
	}
	for i := 0; i < 500; i += 2 {
		ok, err := tr.Delete(key(i))
		if err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", i, ok, err)
		}
	}
	if tr.Len() != 250 {
		t.Fatalf("Len = %d, want 250", tr.Len())
	}
	if ok, _ := tr.Delete(key(0)); ok {
		t.Error("double delete succeeded")
	}
	for i := 0; i < 500; i++ {
		_, ok, _ := tr.Get(key(i))
		if want := i%2 == 1; ok != want {
			t.Errorf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteAll(t *testing.T) {
	tr := OpenMemory()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Put(key(i), val(i))
	}
	rng := stats.NewRNG(23)
	for _, i := range rng.Perm(n) {
		ok, err := tr.Delete(key(i))
		if err != nil || !ok {
			t.Fatalf("Delete(%d): %v %v", i, ok, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting all", tr.Len())
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Tree still usable.
	tr.Put([]byte("again"), []byte("yes"))
	v, ok, _ := tr.Get([]byte("again"))
	if !ok || string(v) != "yes" {
		t.Error("tree unusable after full delete")
	}
}

func TestPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.bt")
	tr, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 3000
	for i := 0; i < n; i++ {
		if err := tr.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	tr2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	if tr2.Len() != n {
		t.Fatalf("reopened Len = %d, want %d", tr2.Len(), n)
	}
	for i := 0; i < n; i += 7 {
		v, ok, err := tr2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(v, val(i)) {
			t.Fatalf("reopened Get(%d): %q %v %v", i, v, ok, err)
		}
	}
	if err := tr2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestPersistenceWithDeletes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "idx.bt")
	tr, _ := Open(path)
	for i := 0; i < 1000; i++ {
		tr.Put(key(i), val(i))
	}
	for i := 0; i < 1000; i += 3 {
		tr.Delete(key(i))
	}
	tr.Close()
	tr2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer tr2.Close()
	for i := 0; i < 1000; i++ {
		_, ok, _ := tr2.Get(key(i))
		if want := i%3 != 0; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", i, ok, want)
		}
	}
	if err := tr2.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsNonBtreeFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "junk")
	data := make([]byte, pageSize)
	copy(data, "JUNKJUNK")
	if err := writeFile(path, data); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("junk file opened as btree")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestLargeValuesSplitBehavior(t *testing.T) {
	tr := OpenMemory()
	// Values near the entry limit force splits quickly.
	big := bytes.Repeat([]byte("x"), 900)
	for i := 0; i < 200; i++ {
		if err := tr.Put(key(i), big); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	v, ok, _ := tr.Get(key(137))
	if !ok || len(v) != 900 {
		t.Errorf("big value Get: ok=%v len=%d", ok, len(v))
	}
}

func TestMixedWorkloadProperty(t *testing.T) {
	tr := OpenMemory()
	ref := map[string]string{}
	rng := stats.NewRNG(31)
	for op := 0; op < 20000; op++ {
		i := rng.Intn(3000)
		k := string(key(i))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%d-%d", i, op)
			if err := tr.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			ref[k] = v
		case 2:
			ok, err := tr.Delete([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			if _, inRef := ref[k]; ok != inRef {
				t.Fatalf("delete presence mismatch for %s", k)
			}
			delete(ref, k)
		}
	}
	if tr.Len() != len(ref) {
		t.Fatalf("Len = %d, ref = %d", tr.Len(), len(ref))
	}
	for k, want := range ref {
		v, ok, _ := tr.Get([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q,%v want %q", k, v, ok, want)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	// Scan agrees with the reference map.
	seen := 0
	tr.Scan(nil, nil, func(k, v []byte) bool {
		if want, okRef := ref[string(k)]; !okRef || want != string(v) {
			t.Fatalf("scan saw unexpected %q=%q", k, v)
		}
		seen++
		return true
	})
	if seen != len(ref) {
		t.Fatalf("scan saw %d, want %d", seen, len(ref))
	}
}

func BenchmarkPut(b *testing.B) {
	tr := OpenMemory()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(key(i), val(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := OpenMemory()
	for i := 0; i < 100000; i++ {
		tr.Put(key(i), val(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % 100000))
	}
}

func TestUpsertGrowingValuesSplits(t *testing.T) {
	// Regression: replacing values with larger ones must trigger splits,
	// or pages overflow at encode time.
	tr := OpenMemory()
	for i := 0; i < 64; i++ {
		if err := tr.Put(key(i), []byte("small")); err != nil {
			t.Fatal(err)
		}
	}
	big := bytes.Repeat([]byte("v"), 500)
	for i := 0; i < 64; i++ {
		if err := tr.Put(key(i), big); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		v, ok, _ := tr.Get(key(i))
		if !ok || len(v) != 500 {
			t.Fatalf("Get(%d): ok=%v len=%d", i, ok, len(v))
		}
	}
	// Every cached node must encode within a page.
	for id, n := range tr.cache {
		if n.size() > pageSize {
			t.Fatalf("node %d oversized: %d bytes", id, n.size())
		}
	}
}
