// Package container defines the on-disk bitstream format for encoded video
// streams ("TSV": header + frame index + packets), GOP-aware random access,
// and homomorphic stitching — combining independently encoded tile streams
// into a single file by interleaving their bitstreams under an arrangement
// header, with no intermediate decode (paper §2, "Stitching").
package container

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"

	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/vcodec"
)

var (
	magicVideo    = [4]byte{'T', 'S', 'V', '1'}
	magicStitched = [4]byte{'T', 'S', 'V', 'S'}
)

// ErrBadMagic is returned when parsing data that is not a TSV stream.
var ErrBadMagic = errors.New("container: bad magic")

// Video is a parsed (or freshly written) encoded stream: one tile's worth of
// video, or an untiled full-frame stream.
type Video struct {
	W, H      int
	FPS       int
	GOPLength int
	QP        int

	flags   []byte // per-frame: bit0 = keyframe
	offsets []int  // packet start offsets into data
	sizes   []int
	data    []byte
}

// Writer accumulates encoded packets and serializes a Video.
type Writer struct {
	v Video
}

// NewWriter creates a Writer for a stream with the given properties.
func NewWriter(w, h, fps, gopLength, qp int) *Writer {
	return &Writer{v: Video{W: w, H: h, FPS: fps, GOPLength: gopLength, QP: qp}}
}

// Append adds one encoded frame packet.
func (w *Writer) Append(packet []byte, isKey bool) {
	var fl byte
	if isKey {
		fl = 1
	}
	w.v.flags = append(w.v.flags, fl)
	w.v.offsets = append(w.v.offsets, len(w.v.data))
	w.v.sizes = append(w.v.sizes, len(packet))
	w.v.data = append(w.v.data, packet...)
}

// FrameCount returns the number of appended frames.
func (w *Writer) FrameCount() int { return len(w.v.flags) }

// Video finalizes the writer. The returned Video shares the writer's
// buffers; the writer must not be reused afterwards.
func (w *Writer) Video() *Video { return &w.v }

// Bytes serializes the stream.
func (v *Video) Bytes() []byte {
	n := len(v.flags)
	out := make([]byte, 0, 32+5*n+len(v.data))
	out = append(out, magicVideo[:]...)
	out = appendU32(out, uint32(v.W))
	out = appendU32(out, uint32(v.H))
	out = appendU16(out, uint16(v.FPS))
	out = appendU16(out, uint16(v.GOPLength))
	out = append(out, byte(v.QP))
	out = appendU32(out, uint32(n))
	for i := 0; i < n; i++ {
		out = append(out, v.flags[i])
		out = appendU32(out, uint32(v.sizes[i]))
	}
	out = append(out, v.data...)
	return out
}

// SizeBytes returns the serialized size of the stream, the storage-cost
// metric of the paper's Figure 9.
func (v *Video) SizeBytes() int64 { return int64(21 + 5*len(v.flags) + len(v.data)) }

// Parse reads a serialized Video.
func Parse(data []byte) (*Video, error) {
	if len(data) < 17 || [4]byte(data[:4]) != magicVideo {
		return nil, ErrBadMagic
	}
	v := &Video{
		W:         int(binary.LittleEndian.Uint32(data[4:])),
		H:         int(binary.LittleEndian.Uint32(data[8:])),
		FPS:       int(binary.LittleEndian.Uint16(data[12:])),
		GOPLength: int(binary.LittleEndian.Uint16(data[14:])),
		QP:        int(data[16]),
	}
	n := 0
	if len(data) < 21 {
		return nil, errors.New("container: truncated header")
	}
	n = int(binary.LittleEndian.Uint32(data[17:]))
	idxEnd := 21 + 5*n
	if n < 0 || len(data) < idxEnd {
		return nil, errors.New("container: truncated index")
	}
	v.flags = make([]byte, n)
	v.offsets = make([]int, n)
	v.sizes = make([]int, n)
	off := 0
	for i := 0; i < n; i++ {
		rec := data[21+5*i:]
		v.flags[i] = rec[0]
		v.sizes[i] = int(binary.LittleEndian.Uint32(rec[1:]))
		v.offsets[i] = off
		off += v.sizes[i]
	}
	v.data = data[idxEnd:]
	if len(v.data) < off {
		return nil, errors.New("container: truncated packet data")
	}
	return v, nil
}

// Open reads and parses a stream from disk.
func Open(path string) (*Video, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	v, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("container: %s: %w", path, err)
	}
	return v, nil
}

// Save serializes the stream to disk.
func (v *Video) Save(path string) error { return os.WriteFile(path, v.Bytes(), 0o644) }

// FrameCount returns the number of frames in the stream.
func (v *Video) FrameCount() int { return len(v.flags) }

// IsKey reports whether frame i is a keyframe.
func (v *Video) IsKey(i int) bool { return v.flags[i]&1 != 0 }

// Packet returns the encoded bytes of frame i.
func (v *Video) Packet(i int) []byte {
	return v.data[v.offsets[i] : v.offsets[i]+v.sizes[i]]
}

// KeyframeBefore returns the index of the nearest keyframe at or before i.
func (v *Video) KeyframeBefore(i int) int {
	for ; i > 0; i-- {
		if v.IsKey(i) {
			return i
		}
	}
	return 0
}

// DecodeRange decodes frames [from, to) and returns them along with the
// decoder statistics. Decoding starts at the keyframe preceding from, as a
// real decoder must; the warm-up frames are counted in the stats (that cost
// is exactly what TASM's layouts are designed to avoid) but not returned.
func (v *Video) DecodeRange(from, to int) ([]*frame.Frame, vcodec.DecodeStats, error) {
	return v.DecodeRangeContext(context.Background(), from, to)
}

// DecodeRangeContext is DecodeRange under a context: cancellation or
// deadline expiry is checked before every frame, so an in-flight tile
// decode stops within one frame's work instead of running the GOP to the
// end. The returned error wraps ctx.Err(), matchable with errors.Is.
func (v *Video) DecodeRangeContext(ctx context.Context, from, to int) ([]*frame.Frame, vcodec.DecodeStats, error) {
	if from < 0 || to > v.FrameCount() || from >= to {
		return nil, vcodec.DecodeStats{}, fmt.Errorf("container: invalid range [%d,%d) of %d frames", from, to, v.FrameCount())
	}
	dec, err := vcodec.NewDecoder(v.W, v.H)
	if err != nil {
		return nil, vcodec.DecodeStats{}, err
	}
	defer dec.Release()
	start := v.KeyframeBefore(from)
	out := make([]*frame.Frame, 0, to-from)
	for i := start; i < to; i++ {
		if err := ctx.Err(); err != nil {
			return nil, dec.Stats(), fmt.Errorf("container: decode stopped at frame %d: %w", i, err)
		}
		// Warm-up frames advance the reference planes (and are charged to
		// the decode stats, the cost TASM's layouts exist to avoid) but
		// are never materialized as frames.
		if i < from {
			if err := dec.DecodeDiscard(v.Packet(i)); err != nil {
				return nil, dec.Stats(), fmt.Errorf("container: frame %d: %w", i, err)
			}
			continue
		}
		f, err := dec.Decode(v.Packet(i))
		if err != nil {
			return nil, dec.Stats(), fmt.Errorf("container: frame %d: %w", i, err)
		}
		out = append(out, f)
	}
	return out, dec.Stats(), nil
}

// DecodeAll decodes the entire stream.
func (v *Video) DecodeAll() ([]*frame.Frame, vcodec.DecodeStats, error) {
	return v.DecodeRange(0, v.FrameCount())
}

// EncodeVideo compresses frames into a single-tile stream.
func EncodeVideo(frames []*frame.Frame, fps int, p vcodec.Params) (*Video, error) {
	if len(frames) == 0 {
		return nil, errors.New("container: no frames")
	}
	w, h := frames[0].W, frames[0].H
	enc, err := vcodec.NewEncoder(w, h, p)
	if err != nil {
		return nil, err
	}
	defer enc.Release()
	out := NewWriter(w, h, fps, enc.GOPLength(), p.QP)
	for i, f := range frames {
		pkt, isKey, err := enc.Encode(f, false)
		if err != nil {
			return nil, fmt.Errorf("container: frame %d: %w", i, err)
		}
		out.Append(pkt, isKey)
	}
	return out.Video(), nil
}

// EncodeTiled compresses frames under the given layout, producing one
// independently decodable stream per tile (row-major order). Interior tile
// edges are flagged so the codec applies its boundary treatment, the source
// of tiling's quality cost.
func EncodeTiled(frames []*frame.Frame, l layout.Layout, fps int, p vcodec.Params) ([]*Video, error) {
	return EncodeTiledContext(context.Background(), frames, l, fps, p)
}

// EncodeTiledContext is EncodeTiled under a context, checked before every
// frame encode so an ingest or re-tile aborts within one frame's work of a
// cancellation. The returned error wraps ctx.Err().
func EncodeTiledContext(ctx context.Context, frames []*frame.Frame, l layout.Layout, fps int, p vcodec.Params) ([]*Video, error) {
	if len(frames) == 0 {
		return nil, errors.New("container: no frames")
	}
	if frames[0].W != l.Width() || frames[0].H != l.Height() {
		return nil, fmt.Errorf("container: layout %dx%d does not match frames %dx%d",
			l.Width(), l.Height(), frames[0].W, frames[0].H)
	}
	nTiles := l.NumTiles()
	videos := make([]*Video, nTiles)
	for ti := 0; ti < nTiles; ti++ {
		rect := l.TileRectByIndex(ti)
		row, col := ti/l.Cols(), ti%l.Cols()
		tp := p
		tp.InteriorEdges = [4]bool{
			vcodec.EdgeLeft:   col > 0,
			vcodec.EdgeTop:    row > 0,
			vcodec.EdgeRight:  col < l.Cols()-1,
			vcodec.EdgeBottom: row < l.Rows()-1,
		}
		enc, err := vcodec.NewEncoder(rect.Width(), rect.Height(), tp)
		if err != nil {
			return nil, err
		}
		w := NewWriter(rect.Width(), rect.Height(), fps, enc.GOPLength(), p.QP)
		for fi, f := range frames {
			if err := ctx.Err(); err != nil {
				enc.Release()
				return nil, fmt.Errorf("container: encode stopped at tile %d frame %d: %w", ti, fi, err)
			}
			pkt, isKey, err := enc.Encode(f.Crop(rect), false)
			if err != nil {
				enc.Release()
				return nil, fmt.Errorf("container: tile %d frame %d: %w", ti, fi, err)
			}
			w.Append(pkt, isKey)
		}
		enc.Release()
		videos[ti] = w.Video()
	}
	return videos, nil
}

// Stitched is a set of tile streams plus their arrangement: the result of
// homomorphic stitching. The tile bitstreams are byte-identical to the
// inputs; only the header is new.
type Stitched struct {
	Layout layout.Layout
	Tiles  []*Video
}

// Stitch combines tile streams under a layout without decoding. All tiles
// must have matching frame counts and dimensions consistent with the layout.
func Stitch(l layout.Layout, tiles []*Video) (*Stitched, error) {
	if len(tiles) != l.NumTiles() {
		return nil, fmt.Errorf("container: %d tiles for a %d-tile layout", len(tiles), l.NumTiles())
	}
	n := tiles[0].FrameCount()
	for i, tv := range tiles {
		r := l.TileRectByIndex(i)
		if tv.W != r.Width() || tv.H != r.Height() {
			return nil, fmt.Errorf("container: tile %d is %dx%d, layout cell is %dx%d", i, tv.W, tv.H, r.Width(), r.Height())
		}
		if tv.FrameCount() != n {
			return nil, fmt.Errorf("container: tile %d has %d frames, want %d", i, tv.FrameCount(), n)
		}
	}
	return &Stitched{Layout: l, Tiles: tiles}, nil
}

// Bytes serializes the stitched video into a single file: magic, layout,
// then each tile's stream prefixed by its length. No bitstream is modified.
func (s *Stitched) Bytes() []byte {
	lb, _ := s.Layout.MarshalBinary()
	out := append([]byte(nil), magicStitched[:]...)
	out = appendU32(out, uint32(len(lb)))
	out = append(out, lb...)
	out = appendU32(out, uint32(len(s.Tiles)))
	for _, t := range s.Tiles {
		b := t.Bytes()
		out = appendU32(out, uint32(len(b)))
		out = append(out, b...)
	}
	return out
}

// ParseStitched reads a serialized stitched video.
func ParseStitched(data []byte) (*Stitched, error) {
	if len(data) < 8 || [4]byte(data[:4]) != magicStitched {
		return nil, ErrBadMagic
	}
	lbLen := int(binary.LittleEndian.Uint32(data[4:]))
	if len(data) < 8+lbLen+4 {
		return nil, errors.New("container: truncated stitched header")
	}
	var l layout.Layout
	if err := l.UnmarshalBinary(data[8 : 8+lbLen]); err != nil {
		return nil, err
	}
	off := 8 + lbLen
	nTiles := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	tiles := make([]*Video, 0, nTiles)
	for i := 0; i < nTiles; i++ {
		if len(data) < off+4 {
			return nil, errors.New("container: truncated tile table")
		}
		sz := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if len(data) < off+sz {
			return nil, errors.New("container: truncated tile stream")
		}
		tv, err := Parse(data[off : off+sz])
		if err != nil {
			return nil, fmt.Errorf("container: tile %d: %w", i, err)
		}
		tiles = append(tiles, tv)
		off += sz
	}
	return Stitch(l, tiles)
}

// DecodeRange decodes frames [from, to) of the stitched video, recovering
// full frames by decoding every tile and placing each at its layout offset.
func (s *Stitched) DecodeRange(from, to int) ([]*frame.Frame, vcodec.DecodeStats, error) {
	var stats vcodec.DecodeStats
	n := to - from
	if n <= 0 {
		return nil, stats, fmt.Errorf("container: invalid range [%d,%d)", from, to)
	}
	out := make([]*frame.Frame, n)
	for i := range out {
		out[i] = frame.New(s.Layout.Width(), s.Layout.Height())
	}
	for ti, tv := range s.Tiles {
		rect := s.Layout.TileRectByIndex(ti)
		frames, st, err := tv.DecodeRange(from, to)
		if err != nil {
			return nil, stats, fmt.Errorf("container: tile %d: %w", ti, err)
		}
		stats.FramesDecoded += st.FramesDecoded
		stats.PixelsDecoded += st.PixelsDecoded
		for i, f := range frames {
			out[i].Blit(f, rect.X0, rect.Y0)
		}
	}
	return out, stats, nil
}

// FrameCount returns the per-tile frame count.
func (s *Stitched) FrameCount() int { return s.Tiles[0].FrameCount() }

func appendU32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func appendU16(b []byte, v uint16) []byte {
	var tmp [2]byte
	binary.LittleEndian.PutUint16(tmp[:], v)
	return append(b, tmp[:]...)
}
