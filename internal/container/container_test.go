package container

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/vcodec"
)

// makeFrames builds n deterministic frames with a moving bright square.
func makeFrames(w, h, n int) []*frame.Frame {
	out := make([]*frame.Frame, n)
	for i := range out {
		f := frame.New(w, h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				f.Y[y*w+x] = byte((x + y + i) % 180)
			}
		}
		for j := range f.Cb {
			f.Cb[j] = 120
			f.Cr[j] = 130
		}
		f.FillRect(geom.R(4+2*i, 4+i, 4+2*i+16, 4+i+16), 250, 60, 200)
		out[i] = f
	}
	return out
}

func testParams() vcodec.Params {
	p := vcodec.DefaultParams()
	p.GOPLength = 5
	return p
}

func TestEncodeParseRoundTrip(t *testing.T) {
	frames := makeFrames(64, 48, 12)
	v, err := EncodeVideo(frames, 30, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if v.FrameCount() != 12 {
		t.Fatalf("FrameCount = %d", v.FrameCount())
	}
	data := v.Bytes()
	if int64(len(data)) != v.SizeBytes() {
		t.Errorf("SizeBytes = %d, serialized = %d", v.SizeBytes(), len(data))
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.W != 64 || got.H != 48 || got.FPS != 30 || got.GOPLength != 5 || got.FrameCount() != 12 {
		t.Errorf("parsed header mismatch: %+v", got)
	}
	for i := 0; i < 12; i++ {
		if got.IsKey(i) != (i%5 == 0) {
			t.Errorf("frame %d key flag wrong", i)
		}
		a, b := v.Packet(i), got.Packet(i)
		if len(a) != len(b) {
			t.Fatalf("packet %d length mismatch", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("packet %d byte mismatch", i)
			}
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not a video")); err == nil {
		t.Error("garbage parsed")
	}
	if _, err := Parse(nil); err == nil {
		t.Error("nil parsed")
	}
	v, _ := EncodeVideo(makeFrames(32, 32, 3), 30, testParams())
	data := v.Bytes()
	if _, err := Parse(data[:25]); err == nil {
		t.Error("truncated stream parsed")
	}
}

func TestKeyframeBefore(t *testing.T) {
	v, _ := EncodeVideo(makeFrames(32, 32, 12), 30, testParams())
	cases := []struct{ in, want int }{{0, 0}, {3, 0}, {5, 5}, {7, 5}, {11, 10}}
	for _, tc := range cases {
		if got := v.KeyframeBefore(tc.in); got != tc.want {
			t.Errorf("KeyframeBefore(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestDecodeRange(t *testing.T) {
	frames := makeFrames(64, 48, 12)
	v, _ := EncodeVideo(frames, 30, testParams())
	got, st, err := v.DecodeRange(6, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d frames, want 3", len(got))
	}
	// Warm-up from keyframe 5: frames 5..8 decoded = 4.
	if st.FramesDecoded != 4 {
		t.Errorf("FramesDecoded = %d, want 4 (keyframe warm-up)", st.FramesDecoded)
	}
	for i, f := range got {
		if psnr := frame.PSNR(frames[6+i], f); psnr < 30 {
			t.Errorf("frame %d PSNR = %.1f", 6+i, psnr)
		}
	}
	if _, _, err := v.DecodeRange(9, 6); err == nil {
		t.Error("inverted range accepted")
	}
	if _, _, err := v.DecodeRange(0, 100); err == nil {
		t.Error("overlong range accepted")
	}
}

func TestSaveOpen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.tsv")
	v, _ := EncodeVideo(makeFrames(32, 32, 4), 30, testParams())
	if err := v.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.FrameCount() != 4 {
		t.Errorf("FrameCount = %d", got.FrameCount())
	}
	if _, err := Open(filepath.Join(dir, "missing.tsv")); err == nil {
		t.Error("missing file opened")
	}
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Error("corrupt file opened")
	}
}

func TestEncodeTiledDimsAndDecode(t *testing.T) {
	w, h := 128, 96
	frames := makeFrames(w, h, 6)
	c := layout.Constraints{FrameW: w, FrameH: h, Align: 16, MinWidth: 32, MinHeight: 32}
	l, err := layout.Uniform(2, 2, c)
	if err != nil {
		t.Fatal(err)
	}
	tiles, err := EncodeTiled(frames, l, 30, testParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(tiles) != 4 {
		t.Fatalf("got %d tiles", len(tiles))
	}
	for i, tv := range tiles {
		r := l.TileRectByIndex(i)
		if tv.W != r.Width() || tv.H != r.Height() {
			t.Errorf("tile %d dims %dx%d, want %dx%d", i, tv.W, tv.H, r.Width(), r.Height())
		}
		if tv.FrameCount() != 6 {
			t.Errorf("tile %d frames = %d", i, tv.FrameCount())
		}
		// Each tile decodes independently and matches the cropped source.
		got, _, err := tv.DecodeRange(0, 6)
		if err != nil {
			t.Fatalf("tile %d: %v", i, err)
		}
		for fi, f := range got {
			src := frames[fi].Crop(r)
			if psnr := frame.PSNR(src, f); psnr < 28 {
				t.Errorf("tile %d frame %d PSNR = %.1f", i, fi, psnr)
			}
		}
	}
}

func TestEncodeTiledValidation(t *testing.T) {
	if _, err := EncodeTiled(nil, layout.Single(64, 64), 30, testParams()); err == nil {
		t.Error("no frames accepted")
	}
	frames := makeFrames(64, 48, 2)
	if _, err := EncodeTiled(frames, layout.Single(128, 128), 30, testParams()); err == nil {
		t.Error("mismatched layout accepted")
	}
}

func TestStitchRoundTrip(t *testing.T) {
	w, h := 128, 96
	frames := makeFrames(w, h, 6)
	c := layout.Constraints{FrameW: w, FrameH: h, Align: 16, MinWidth: 32, MinHeight: 32}
	l, _ := layout.Uniform(2, 2, c)
	tiles, err := EncodeTiled(frames, l, 30, testParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := Stitch(l, tiles)
	if err != nil {
		t.Fatal(err)
	}
	if s.FrameCount() != 6 {
		t.Errorf("FrameCount = %d", s.FrameCount())
	}
	// Serialize / reparse: homomorphic — tile bitstreams unchanged.
	got, err := ParseStitched(s.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Layout.Equal(l) {
		t.Error("layout did not round trip")
	}
	for i := range tiles {
		a, b := tiles[i].Bytes(), got.Tiles[i].Bytes()
		if len(a) != len(b) {
			t.Fatalf("tile %d bitstream length changed: %d vs %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("tile %d bitstream modified at byte %d", i, j)
			}
		}
	}
	// Decoded stitched frames reassemble the full picture.
	full, st, err := got.DecodeRange(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if st.FramesDecoded != 24 { // 4 tiles x 6 frames
		t.Errorf("FramesDecoded = %d, want 24", st.FramesDecoded)
	}
	for i, f := range full {
		if f.W != w || f.H != h {
			t.Fatalf("stitched frame dims %dx%d", f.W, f.H)
		}
		if psnr := frame.PSNR(frames[i], f); psnr < 28 {
			t.Errorf("stitched frame %d PSNR = %.1f", i, psnr)
		}
	}
}

func TestStitchValidation(t *testing.T) {
	w, h := 128, 96
	frames := makeFrames(w, h, 4)
	c := layout.Constraints{FrameW: w, FrameH: h, Align: 16, MinWidth: 32, MinHeight: 32}
	l, _ := layout.Uniform(2, 2, c)
	tiles, _ := EncodeTiled(frames, l, 30, testParams())
	if _, err := Stitch(l, tiles[:3]); err == nil {
		t.Error("wrong tile count accepted")
	}
	// Swap two tiles of different sizes if dims differ; otherwise corrupt one.
	bad := make([]*Video, 4)
	copy(bad, tiles)
	bad[0] = tiles[3]
	wrong, _ := EncodeVideo(makeFrames(32, 32, 4), 30, testParams())
	bad[0] = wrong
	if _, err := Stitch(l, bad); err == nil {
		t.Error("mismatched tile dims accepted")
	}
	short, _ := EncodeVideo(makeFrames(tiles[0].W, tiles[0].H, 2), 30, testParams())
	bad[0] = short
	if _, err := Stitch(l, bad); err == nil {
		t.Error("mismatched frame count accepted")
	}
}

func TestParseStitchedRejectsGarbage(t *testing.T) {
	if _, err := ParseStitched([]byte("nope")); err == nil {
		t.Error("garbage parsed as stitched")
	}
	w, h := 128, 96
	frames := makeFrames(w, h, 2)
	c := layout.Constraints{FrameW: w, FrameH: h, Align: 16, MinWidth: 32, MinHeight: 32}
	l, _ := layout.Uniform(2, 2, c)
	tiles, _ := EncodeTiled(frames, l, 30, testParams())
	s, _ := Stitch(l, tiles)
	data := s.Bytes()
	if _, err := ParseStitched(data[:len(data)/2]); err == nil {
		t.Error("truncated stitched parsed")
	}
}

func TestTiledSmallerQueryDecode(t *testing.T) {
	// Decoding one tile should report ~1/4 the pixels of the full frame:
	// the mechanism behind every speedup in the paper.
	w, h := 128, 128
	frames := makeFrames(w, h, 5)
	c := layout.Constraints{FrameW: w, FrameH: h, Align: 16, MinWidth: 32, MinHeight: 32}
	l, _ := layout.Uniform(2, 2, c)
	tiles, _ := EncodeTiled(frames, l, 30, testParams())
	_, stTile, err := tiles[0].DecodeRange(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	full, _ := EncodeVideo(frames, 30, testParams())
	_, stFull, err := full.DecodeRange(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if stTile.PixelsDecoded*4 != stFull.PixelsDecoded {
		t.Errorf("tile pixels %d * 4 != full pixels %d", stTile.PixelsDecoded, stFull.PixelsDecoded)
	}
}
