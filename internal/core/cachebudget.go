package core

import (
	"context"
	"sync/atomic"

	"github.com/tasm-repro/tasm/internal/frame"
)

// Request-scoped cache admission budgets.
//
// The decoded-tile cache is a shared resource: one tenant's cold
// sequential sweep can evict the working set every other tenant's
// repeated queries depend on. A request-scoped admission budget bounds
// the damage: the request still *reads* the cache freely (a hit is pure
// win for everyone), but the bytes of newly decoded tiles it may
// *insert* are capped. A budget of zero makes the request
// cache-transparent — it pollutes nothing. The knob travels on the
// context so it crosses the serving boundary as a header without
// widening any API: tasmd maps Tasm-Cache-Budget onto it per request.

type cacheBudgetKey struct{}

// WithCacheAdmissionBudget returns a context capping how many bytes of
// newly decoded tiles operations under it may insert into the shared
// decoded-tile cache. The budget is debited as decodes complete;
// exhausted, further decodes skip admission (and are not reported as
// evictions they never caused). Contexts without the knob admit freely.
func WithCacheAdmissionBudget(ctx context.Context, bytes int64) context.Context {
	if bytes < 0 {
		bytes = 0
	}
	b := &atomic.Int64{}
	b.Store(bytes)
	return context.WithValue(ctx, cacheBudgetKey{}, b)
}

// hasCacheBudget reports whether ctx carries an admission budget.
func hasCacheBudget(ctx context.Context) bool {
	_, ok := ctx.Value(cacheBudgetKey{}).(*atomic.Int64)
	return ok
}

// admitCacheBytes reports whether a decode of size bytes may be
// admitted under ctx's budget, debiting it when so. No budget on the
// context means unlimited admission.
func admitCacheBytes(ctx context.Context, bytes int64) bool {
	b, ok := ctx.Value(cacheBudgetKey{}).(*atomic.Int64)
	if !ok {
		return true
	}
	for {
		cur := b.Load()
		if cur < bytes {
			return false
		}
		if b.CompareAndSwap(cur, cur-bytes) {
			return true
		}
	}
}

// framesBytes is the admission size of a decoded tile prefix: the sum
// of its plane footprints, matching the cache's own accounting.
func framesBytes(fs []*frame.Frame) int64 {
	var n int64
	for _, f := range fs {
		n += int64(len(f.Y) + len(f.Cb) + len(f.Cr))
	}
	return n
}
