package core

import (
	"sync"
	"testing"

	"github.com/tasm-repro/tasm/internal/query"
)

// TestConcurrentScans verifies that many simultaneous readers see
// consistent results (the tile store serializes against retiles; scans
// themselves share nothing mutable).
func TestConcurrentScans(t *testing.T) {
	m, _ := newManager(t)
	q, err := query.Parse("SELECT car FROM traffic WHERE 0 <= t < 20")
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 3
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	counts := make(chan int, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, _, err := m.Scan(q)
				if err != nil {
					errs <- err
					return
				}
				counts <- len(res)
			}
		}()
	}
	wg.Wait()
	close(errs)
	close(counts)
	for err := range errs {
		t.Fatal(err)
	}
	for c := range counts {
		if c != len(ref) {
			t.Errorf("concurrent scan returned %d regions, want %d", c, len(ref))
		}
	}
}

// TestConcurrentMetadataAndScan runs index writes alongside scans: the
// B-tree serializes access, so both must complete without error and the
// scan results must stay within the indexed universe.
func TestConcurrentMetadataAndScan(t *testing.T) {
	m, _ := newManager(t)
	q, _ := query.Parse("SELECT car FROM traffic WHERE 0 <= t < 20")
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if err := m.AddMetadata("traffic", i%30, "bicycle", 4, 4, 24, 24); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, _, err := m.Scan(q); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	got, err := m.Index().LookupBoxes("traffic", "bicycle", 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Error("concurrent adds lost")
	}
}
