// Package core implements the TASM storage manager (paper §3): the bottom
// layer of a VDBMS that stores videos as independently decodable tiles,
// maintains the semantic index, answers Scan(video, L, T) requests by
// decoding only the tiles containing the requested objects, and re-tiles
// sequences of tiles (SOTs) when a policy decides a new layout pays off.
package core

import (
	"context"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/costmodel"
	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/live"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/semindex"
	"github.com/tasm-repro/tasm/internal/tasmerr"
	"github.com/tasm-repro/tasm/internal/tilecache"
	"github.com/tasm-repro/tasm/internal/tilestore"
	"github.com/tasm-repro/tasm/internal/vcodec"
)

// Config bundles the storage manager's tuning parameters.
type Config struct {
	// Codec parameters used for ingest and re-encoding.
	Codec vcodec.Params
	// Alpha is the do-not-tile threshold on P(L)/P(ω) (paper §3.4.4).
	Alpha float64
	// Eta scales the re-encode cost in the regret policy's retile rule
	// δ > η·R (paper §4.4).
	Eta float64
	// Model estimates decode and encode costs.
	Model costmodel.Model
	// Granularity selects fine or coarse non-uniform layouts.
	Granularity layout.Granularity
	// Align, MinTileW, MinTileH are the codec's layout constraints.
	Align, MinTileW, MinTileH int
	// Parallelism bounds concurrent tile decodes within one Scan or
	// DecodeFrames call. Decode jobs fan out across every (SOT, tile)
	// pair the request touches, so a query spanning many SOTs scales even
	// when each SOT needs a single tile. The paper's prototype "does not
	// parallelize encoding or decoding multiple tiles at once", so the
	// default is 1; higher values are an extension this reproduction adds.
	Parallelism int
	// CacheBudget bounds the in-memory cache of decoded tile GOPs in
	// bytes. 0 disables caching (every scan decodes from disk, the
	// paper's behavior).
	CacheBudget int64
	// AppendQueueDepth bounds pending live-append commits per video;
	// a full queue rejects appends with tasmerr.ErrIngestBackpressure.
	// <= 0 selects live.DefaultQueueDepth.
	AppendQueueDepth int
	// ForceOpen skips the store's cross-process ownership lease — the
	// tasmctl -force escape hatch for recovering a directory whose lock
	// holder is unreachable. Unsafe against a live owner: both processes
	// then serve from caches the other invalidates.
	ForceOpen bool
}

// DefaultConfig returns the configuration used throughout the evaluation.
func DefaultConfig() Config {
	return Config{
		Codec:       vcodec.DefaultParams(),
		Alpha:       costmodel.DefaultAlpha,
		Eta:         1.0,
		Model:       costmodel.Default(),
		Granularity: layout.Fine,
		Align:       16,
		MinTileW:    64,
		MinTileH:    64,
		Parallelism: 1,
	}
}

// Constraints returns the layout constraints for a w×h video.
func (c Config) Constraints(w, h int) layout.Constraints {
	return layout.Constraints{FrameW: w, FrameH: h, Align: c.Align, MinWidth: c.MinTileW, MinHeight: c.MinTileH}
}

// Manager is the tile-aware storage manager. Reads (Scan, DecodeFrames,
// StitchSOT, VideoBytes) pin the SOT versions of their catalog snapshot
// with store read leases, so they run fully concurrent with RetileSOT:
// the store keeps a superseded version's tile files on disk until the
// last lease on it drops (MVCC; see internal/tilestore).
type Manager struct {
	cfg   Config
	store *tilestore.Store
	index *semindex.Index
	cache *tilecache.Cache // nil when Config.CacheBudget <= 0

	// retileMu serializes RetileSOT per video (map[string]*sync.Mutex):
	// concurrent retiles of one video would base their re-encodes on each
	// other's uncommitted state. Readers never take these locks.
	retileMu sync.Map

	// flights deduplicates concurrent decodes of the same (SOT, tile) when
	// the decoded-tile cache is enabled: N scans of one region pay one
	// disk decode.
	flights flightGroup

	// refreshHook, when set by tests, is consulted before each
	// refreshPointers attempt to inject failures.
	refreshHook func(video string) error

	// observer, when installed via SetQueryObserver, receives every
	// query-path request and informs cache admission (see observer.go).
	observer QueryObserver

	// hub wakes /v1/subscribe tails as live-append commits land, and
	// ingest is the bounded per-video commit queue behind AppendGOP
	// (see internal/live and live.go in this package).
	hub    *live.Hub
	ingest *live.Ingestor
}

// Open creates or opens a storage manager rooted at dir (tiles under
// dir/tiles, semantic index at dir/semindex.bt). It takes the store's
// cross-process ownership lease: a second Open of the same directory —
// tasmctl -dir against a live tasmd, say — fails fast with
// tasmerr.ErrStoreLocked instead of reading stale caches. Config.ForceOpen
// skips the lease for recovery.
func Open(dir string, cfg Config) (*Manager, error) {
	var sopts []tilestore.OpenOption
	if !cfg.ForceOpen {
		sopts = append(sopts, tilestore.WithLock())
	}
	st, err := tilestore.Open(filepath.Join(dir, "tiles"), sopts...)
	if err != nil {
		return nil, err
	}
	ix, err := semindex.Open(filepath.Join(dir, "semindex.bt"))
	if err != nil {
		st.Close()
		return nil, err
	}
	return &Manager{
		cfg: cfg, store: st, index: ix, cache: tilecache.New(cfg.CacheBudget),
		hub: live.NewHub(), ingest: live.NewIngestor(cfg.AppendQueueDepth),
	}, nil
}

// Close flushes and closes the semantic index and releases the store's
// ownership lease.
func (m *Manager) Close() error {
	err := m.index.Close()
	if serr := m.store.Close(); err == nil {
		err = serr
	}
	return err
}

// Config returns the manager's configuration.
func (m *Manager) Config() Config { return m.cfg }

// Index exposes the semantic index.
func (m *Manager) Index() *semindex.Index { return m.index }

// Store exposes the physical tile store.
func (m *Manager) Store() *tilestore.Store { return m.store }

// Meta returns the catalog record for a video.
func (m *Manager) Meta(video string) (tilestore.VideoMeta, error) { return m.store.Meta(video) }

// IngestStats reports the work done by an ingest.
type IngestStats struct {
	EncodeWall time.Duration
	Bytes      int64
	SOTs       int
}

// Ingest stores frames as an untiled video: one SOT per GOP, each with the
// 1×1 layout ω, so later re-tiling of any SOT is independent of the others.
func (m *Manager) Ingest(video string, frames []*frame.Frame, fps int) (IngestStats, error) {
	return m.IngestContext(context.Background(), video, frames, fps)
}

// IngestContext is Ingest under a context: cancellation aborts the encode
// within one frame's work and leaves no partial video behind.
func (m *Manager) IngestContext(ctx context.Context, video string, frames []*frame.Frame, fps int) (IngestStats, error) {
	n := len(frames)
	if n == 0 {
		return IngestStats{}, fmt.Errorf("core: %w", tasmerr.ErrNoFrames)
	}
	gop := m.cfg.Codec.GOPLength
	if gop <= 0 {
		gop = vcodec.DefaultParams().GOPLength
	}
	w, h := frames[0].W, frames[0].H
	layouts := make([]layout.Layout, 0, (n+gop-1)/gop)
	for from := 0; from < n; from += gop {
		layouts = append(layouts, layout.Single(w, h))
	}
	return m.IngestTiledContext(ctx, video, frames, fps, layouts)
}

// IngestTiled stores frames with a caller-chosen layout per SOT (SOTs are
// GOP-length chunks). This is the path edge cameras use to upload pre-tiled
// video (paper §4.3, "Edge tiling").
func (m *Manager) IngestTiled(video string, frames []*frame.Frame, fps int, layouts []layout.Layout) (IngestStats, error) {
	return m.IngestTiledContext(context.Background(), video, frames, fps, layouts)
}

// IngestTiledContext is IngestTiled under a context. The encode — the
// expensive phase — checks the context every frame; the final catalog
// commit is atomic and is not interrupted once entered.
func (m *Manager) IngestTiledContext(ctx context.Context, video string, frames []*frame.Frame, fps int, layouts []layout.Layout) (IngestStats, error) {
	n := len(frames)
	if n == 0 {
		return IngestStats{}, fmt.Errorf("core: %w", tasmerr.ErrNoFrames)
	}
	w, h := frames[0].W, frames[0].H
	gop := m.cfg.Codec.GOPLength
	if gop <= 0 {
		gop = vcodec.DefaultParams().GOPLength
	}
	numSOTs := (n + gop - 1) / gop
	if len(layouts) != numSOTs {
		return IngestStats{}, fmt.Errorf("core: %d layouts for %d SOTs", len(layouts), numSOTs)
	}
	cons := m.cfg.Constraints(w, h)
	meta := tilestore.VideoMeta{
		Name: video, W: w, H: h, FPS: fps, GOPLength: gop, FrameCount: n,
	}
	var sotTiles [][]*container.Video
	start := time.Now()
	for si := 0; si < numSOTs; si++ {
		from := si * gop
		to := min(from+gop, n)
		l := layouts[si]
		if err := l.Validate(cons); err != nil {
			return IngestStats{}, fmt.Errorf("core: SOT %d: %w", si, err)
		}
		tiles, err := container.EncodeTiledContext(ctx, frames[from:to], l, fps, m.cfg.Codec)
		if err != nil {
			return IngestStats{}, fmt.Errorf("core: SOT %d: %w", si, err)
		}
		meta.SOTs = append(meta.SOTs, tilestore.SOTMeta{ID: si, From: from, To: to, L: l})
		sotTiles = append(sotTiles, tiles)
	}
	encodeWall := time.Since(start)
	if err := m.store.CreateVideo(meta, sotTiles); err != nil {
		return IngestStats{}, err
	}
	bytes, err := m.store.VideoBytes(video)
	if err != nil {
		return IngestStats{}, err
	}
	// A fresh ingest starts with a clean observation slate — relevant when
	// a name is reused after DeleteVideo (belt and braces; deletion already
	// forgets) or when an observer was installed over a prior generation.
	if m.observer != nil {
		m.observer.ForgetVideo(video)
	}
	return IngestStats{EncodeWall: encodeWall, Bytes: bytes, SOTs: numSOTs}, nil
}

// AddMetadata records an object detection, the paper's
// AddMetadata(video, frame, label, x1, y1, x2, y2) call.
func (m *Manager) AddMetadata(video string, frameIdx int, label string, x1, y1, x2, y2 int) error {
	return m.index.Add(video, semindex.Detection{
		Frame: frameIdx, Label: label, Box: geom.R(x1, y1, x2, y2),
	})
}

// AddDetections records a batch of detections.
func (m *Manager) AddDetections(video string, ds []semindex.Detection) error {
	return m.index.AddBatch(video, ds)
}

// RegionResult is one retrieved pixel region: the requested rectangle
// (snapped outward to even coordinates for 4:2:0 alignment) and its decoded
// pixels.
type RegionResult struct {
	Frame  int
	Region geom.Rect
	Pixels *frame.Frame
}

// ScanStats reports the work a Scan performed. DecodeWall is the measured
// decode time — the quantity every figure in the paper's evaluation plots —
// and covers only draining the tile-decode pool; cropping and blitting the
// decoded tiles into result pixels is reported separately as AssembleWall,
// so the paper's metric is not inflated by assembly.
type ScanStats struct {
	IndexWall       time.Duration
	DecodeWall      time.Duration
	AssembleWall    time.Duration
	PixelsDecoded   int64
	TilesDecoded    int
	FramesDecoded   int64
	RegionsReturned int
	SOTsTouched     int
	// CacheHits counts (SOT, tile) decode requests served from the
	// decoded-tile cache; CacheMisses counts the ones that had to decode
	// from disk; CacheEvictions counts entries evicted to make room for
	// this request's decodes. All zero when the cache is disabled (then
	// every request is a disk decode, but not a "miss" of a cache that
	// does not exist).
	CacheHits      int
	CacheMisses    int
	CacheEvictions int
}

// clampRange applies the storage manager's shared frame-range semantics,
// used identically by Scan, DecodeFrames, and QueryDemand: first clamp the
// request to the video (from < 0 becomes 0; to < 0 — the "to the end"
// sentinel — or to > frameCount becomes frameCount), then validate — a
// range that is empty or inverted after clamping is an error, never a
// silent empty result.
func clampRange(video string, from, to, frameCount int) (int, int, error) {
	cf, ct := from, to
	if cf < 0 {
		cf = 0
	}
	if ct < 0 || ct > frameCount {
		ct = frameCount
	}
	if cf >= ct {
		return 0, 0, fmt.Errorf("core: video %q: %w: empty frame range [%d,%d) after clamping to %d frames", video, tasmerr.ErrInvalidRange, from, to, frameCount)
	}
	return cf, ct, nil
}

// Scan implements the paper's Scan(video, L, T) access method: it consults
// the semantic index for the boxes matching the label predicate within the
// time range, determines which tiles contain them, decodes only those
// tiles, and returns the matching pixel regions.
func (m *Manager) Scan(q query.Query) ([]RegionResult, ScanStats, error) {
	return m.ScanContext(context.Background(), q)
}

// unboundedWindow admits every SOT to the decode pipeline at once — the
// materializing wrappers' setting, preserving the pre-cursor batch
// behavior of flattening all (SOT, tile) jobs across the worker pool.
const unboundedWindow = 1 << 30

// ScanContext is Scan under a context: cancellation or deadline expiry
// stops in-flight tile decodes within one frame's work, releases the
// request's read leases, and returns an error wrapping ctx.Err().
//
// The whole request runs under a store snapshot lease: the tile files of
// every SOT version the catalog snapshot names stay on disk until Scan
// finishes, even if a concurrent RetileSOT swaps the live layout. The
// request's frame range follows the clamp-then-validate semantics of
// clampRange. Results are produced by draining a ScanCursor (with an
// unbounded decode-ahead window, since everything is materialized
// anyway), so the streaming and materializing paths cannot diverge;
// order is deterministic — SOTs ascending, frame offsets ascending
// within each SOT.
func (m *Manager) ScanContext(ctx context.Context, q query.Query) ([]RegionResult, ScanStats, error) {
	c, err := m.scanCursor(ctx, q, unboundedWindow)
	if err != nil {
		return nil, ScanStats{}, err
	}
	var out []RegionResult
	for c.Next() {
		out = append(out, c.Result())
	}
	if err := c.Err(); err != nil {
		return nil, c.Stats(), err
	}
	return out, c.Stats(), nil
}

// sotPlan is the decode plan for one SOT of a Scan: the regions requested
// per frame offset, the sorted offsets, and the tiles that must be decoded
// (each through its last needed offset).
type sotPlan struct {
	sot  tilestore.SOTMeta
	qf   costmodel.QueryFrames
	offs []int // sorted frame offsets with requests
	tids []int // sorted tile indices needed
	need []int // per tids entry: frames to decode from the SOT keyframe
	// decoded[k] receives tile tids[k]'s frames and results[k] that
	// decode's outcome; slots are written by exactly one decode job each,
	// so no lock is needed.
	decoded [][]*frame.Frame
	results []tileDecodeResult
}

func planSOT(sot tilestore.SOTMeta, qf costmodel.QueryFrames) *sotPlan {
	p := &sotPlan{sot: sot, qf: qf}
	lastNeeded := map[int]int{}
	for off, rs := range qf {
		p.offs = append(p.offs, off)
		for _, r := range rs {
			for _, ti := range sot.L.TilesIntersecting(r) {
				if cur, ok := lastNeeded[ti]; !ok || off > cur {
					lastNeeded[ti] = off
				}
			}
		}
	}
	sort.Ints(p.offs)
	for ti := range lastNeeded {
		p.tids = append(p.tids, ti)
	}
	sort.Ints(p.tids)
	p.need = make([]int, len(p.tids))
	for k, ti := range p.tids {
		p.need[k] = lastNeeded[ti] + 1
	}
	p.decoded = make([][]*frame.Frame, len(p.tids))
	p.results = make([]tileDecodeResult, len(p.tids))
	return p
}

// applyDecodeResult folds one decode job's outcome into st and returns
// the job's error, if any. Shared by the batch and streaming paths so
// their accounting cannot diverge.
func (m *Manager) applyDecodeResult(st *ScanStats, r tileDecodeResult) error {
	if r.err != nil {
		return r.err
	}
	m.foldDecodeStats(st, r)
	return nil
}

// foldDecodeStats folds a successful decode job's counters into st;
// errored jobs contribute nothing (their error is surfaced separately).
func (m *Manager) foldDecodeStats(st *ScanStats, r tileDecodeResult) {
	if r.err != nil {
		return
	}
	if r.hit {
		st.CacheHits++
	} else {
		if m.cache != nil {
			st.CacheMisses++
		}
		st.TilesDecoded++
	}
	st.CacheEvictions += r.evicted
	st.FramesDecoded += r.ds.FramesDecoded
	st.PixelsDecoded += r.ds.PixelsDecoded
}

// runJobs invokes fn(0..n-1) with at most workers goroutines, stopping
// the dispatch of further jobs once ctx is done (fn itself is expected to
// observe ctx for prompt in-job cancellation). fn must only write state
// private to its index.
func runJobs(ctx context.Context, n, workers int, fn func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// tileDecodeResult carries one decode job's outcome.
type tileDecodeResult struct {
	ds      vcodec.DecodeStats
	hit     bool
	evicted int
	err     error
}

// decodeTilePrefix returns the first n decoded frames of one tile of a
// SOT, serving from the decoded-tile cache when a long-enough prefix is
// cached. The tile is read through the caller's lease, pinning the exact
// version the catalog snapshot names. SOTs are single GOPs, so every
// decode starts at the frame-0 keyframe and a cached prefix is reusable
// by any shorter request. The returned frames are shared with the cache
// and must not be mutated.
//
// When the cache is enabled, concurrent requests for the same key are
// singleflighted: one leader decodes from disk, the rest wait and share
// its frames (reported as cache hits — the frames were served from
// memory, not re-decoded). A waiter whose own ctx expires stops waiting;
// a leader's failure is never shared, the waiters decode for themselves.
func (m *Manager) decodeTilePrefix(ctx context.Context, video string, lease *tilestore.Lease, sot tilestore.SOTMeta, ti, n int) ([]*frame.Frame, tileDecodeResult) {
	var r tileDecodeResult
	if err := ctx.Err(); err != nil {
		r.err = fmt.Errorf("core: %s SOT %d tile %d: %w", video, sot.ID, ti, err)
		return nil, r
	}
	if m.cache == nil {
		return m.decodeTileFromDisk(ctx, video, lease, sot, ti, n, tilecache.Key{})
	}
	k := tilecache.Key{
		Video: video, SOT: sot.ID, Tile: ti,
		Retiles: sot.Retiles,
		// Capture the generation before touching disk: if the SOT is
		// invalidated while we decode, our Put lands under the stale
		// generation and is never served.
		Gen: m.cache.Gen(video, sot.ID),
	}
	// A budget-capped request never leads a singleflight: its admission
	// decision (possibly "insert nothing") would bind every unbudgeted
	// waiter sharing the decode, suppressing caching of exactly the
	// working set the budget exists to protect. It still reads Get hits
	// above and still Puts within its own budget; it just decodes
	// privately.
	if hasCacheBudget(ctx) {
		if fs, ok := m.cache.Get(k, n); ok {
			r.hit = true
			return fs, r
		}
		return m.decodeTileFromDisk(ctx, video, lease, sot, ti, n, k)
	}
	for {
		if fs, ok := m.cache.Get(k, n); ok {
			r.hit = true
			return fs, r
		}
		f, leader := m.flights.join(k, n)
		if leader {
			frames, r := m.decodeTileFromDisk(ctx, video, lease, sot, ti, n, k)
			m.flights.finish(k, f, frames, r.err)
			return frames, r
		}
		select {
		case <-f.done:
			if f.err == nil && len(f.frames) >= n {
				r.hit = true
				return f.frames[:n:n], r
			}
			// The leader failed (possibly on its own cancelled context) or
			// delivered a shorter prefix than promised. Loop: re-check the
			// cache and re-join, so the waiters elect exactly one new
			// leader per round instead of stampeding the disk together.
			// Each round's leader returns (success or its own error), so
			// every caller terminates within len(waiters) rounds.
			if err := ctx.Err(); err != nil {
				r.err = fmt.Errorf("core: %s SOT %d tile %d: %w", video, sot.ID, ti, err)
				return nil, r
			}
		case <-ctx.Done():
			r.err = fmt.Errorf("core: %s SOT %d tile %d: %w", video, sot.ID, ti, ctx.Err())
			return nil, r
		}
	}
}

// decodeTileFromDisk reads and decodes the tile prefix through the lease,
// populating the cache when enabled (k is ignored otherwise).
func (m *Manager) decodeTileFromDisk(ctx context.Context, video string, lease *tilestore.Lease, sot tilestore.SOTMeta, ti, n int, k tilecache.Key) ([]*frame.Frame, tileDecodeResult) {
	var r tileDecodeResult
	tv, err := lease.ReadTile(sot, ti)
	if err != nil {
		r.err = err
		return nil, r
	}
	frames, ds, err := tv.DecodeRangeContext(ctx, 0, n)
	if err != nil {
		r.err = fmt.Errorf("core: %s SOT %d tile %d: %w", video, sot.ID, ti, err)
		return nil, r
	}
	r.ds = ds
	// Admission is gated twice: by the observed workload (with an observer
	// installed, ranges never queried twice do not earn cache residency —
	// see admitObserved) and by the request's cache budget (when one rides
	// the context): a capped request still reads the cache but stops
	// inserting once its budget is spent, so a one-off sweep cannot
	// evict every other request's working set.
	if m.cache != nil && m.admitObserved(ctx, video, sot) && admitCacheBytes(ctx, framesBytes(frames)) {
		r.evicted = m.cache.Put(k, frames)
	}
	return frames, r
}

// assembleSOT crops and blits the requested regions of one SOT from its
// decoded tiles, in ascending frame order.
func assembleSOT(p *sotPlan) []RegionResult {
	frameRect := geom.R(0, 0, p.sot.L.Width(), p.sot.L.Height())
	var out []RegionResult
	for _, off := range p.offs {
		for _, r := range p.qf[off] {
			region := snapEven(r).Clamp(frameRect)
			if region.Empty() {
				continue
			}
			pix := frame.New(region.Width(), region.Height())
			for k, ti := range p.tids {
				frames := p.decoded[k]
				tileRect := p.sot.L.TileRectByIndex(ti)
				inter := region.Intersect(tileRect)
				if inter.Empty() || off >= len(frames) {
					continue
				}
				crop := frames[off].Crop(inter.Translate(-tileRect.X0, -tileRect.Y0))
				pix.Blit(crop, inter.X0-region.X0, inter.Y0-region.Y0)
			}
			out = append(out, RegionResult{Frame: p.sot.From + off, Region: region, Pixels: pix})
		}
	}
	return out
}

// regionsForQuery evaluates the label predicate against the semantic index,
// returning the requested pixel regions per frame.
func (m *Manager) regionsForQuery(q query.Query, from, to int) (map[int][]geom.Rect, time.Duration, error) {
	start := time.Now()
	byLabelFrame := map[string]map[int][]geom.Rect{}
	for _, label := range q.Pred.Labels() {
		entries, err := m.index.Lookup(q.Video, label, from, to)
		if err != nil {
			return nil, 0, err
		}
		perFrame := map[int][]geom.Rect{}
		for _, e := range entries {
			perFrame[e.Frame] = append(perFrame[e.Frame], e.Box)
		}
		byLabelFrame[label] = perFrame
	}
	regions := map[int][]geom.Rect{}
	for f := from; f < to; f++ {
		boxes := map[string][]geom.Rect{}
		any := false
		for label, perFrame := range byLabelFrame {
			if bs := perFrame[f]; len(bs) > 0 {
				boxes[label] = bs
				any = true
			}
		}
		if !any {
			continue
		}
		if rs := q.Pred.Regions(boxes); len(rs) > 0 {
			regions[f] = rs
		}
	}
	return regions, time.Since(start), nil
}

func snapEven(r geom.Rect) geom.Rect {
	r.X0 &^= 1
	r.Y0 &^= 1
	if r.X1%2 != 0 {
		r.X1++
	}
	if r.Y1%2 != 0 {
		r.Y1++
	}
	return r
}

// QueryDemand returns, per touched SOT, the regions a query requests at
// each frame offset — the input to the cost model's what-if analysis. No
// decoding is performed.
func (m *Manager) QueryDemand(q query.Query) (map[int]costmodel.QueryFrames, map[int]tilestore.SOTMeta, error) {
	meta, err := m.store.Meta(q.Video)
	if err != nil {
		return nil, nil, err
	}
	from, to, err := clampRange(q.Video, q.From, q.To, meta.FrameCount)
	if err != nil {
		// The what-if analysis replays recorded workloads; a query whose
		// range has since become degenerate (e.g. the video was truncated)
		// simply contributes no demand rather than aborting the whole
		// planning pass — unlike Scan/DecodeFrames, which reject it.
		return map[int]costmodel.QueryFrames{}, map[int]tilestore.SOTMeta{}, nil
	}
	regions, _, err := m.regionsForQuery(q, from, to)
	if err != nil {
		return nil, nil, err
	}
	demands := map[int]costmodel.QueryFrames{}
	sots := map[int]tilestore.SOTMeta{}
	for _, sot := range meta.SOTsInRange(from, to) {
		qf := costmodel.QueryFrames{}
		for f := max(from, sot.From); f < min(to, sot.To); f++ {
			if rs := regions[f]; len(rs) > 0 {
				qf[f-sot.From] = rs
			}
		}
		if len(qf) > 0 {
			demands[sot.ID] = qf
			sots[sot.ID] = sot
		}
	}
	return demands, sots, nil
}

// DecodeFrames decodes and reassembles full frames [from, to), regardless
// of layout. This is the path detection runs on (a detector needs whole
// frames). Tile decodes across all touched SOTs share the scan pipeline:
// they are served from the decoded-tile cache when possible and fan out
// over Config.Parallelism workers. Like Scan, the request runs under a
// store snapshot lease and applies the clamp-then-validate range
// semantics of clampRange.
func (m *Manager) DecodeFrames(video string, from, to int) ([]*frame.Frame, ScanStats, error) {
	return m.DecodeFramesContext(context.Background(), video, from, to)
}

// DecodeFramesContext is DecodeFrames under a context; like ScanContext
// it is a thin wrapper draining a FrameCursor (unbounded decode-ahead
// window), so cancellation stops in-flight decodes promptly and
// releases the read leases.
func (m *Manager) DecodeFramesContext(ctx context.Context, video string, from, to int) ([]*frame.Frame, ScanStats, error) {
	c, err := m.frameCursor(ctx, video, from, to, unboundedWindow)
	if err != nil {
		return nil, ScanStats{}, err
	}
	var out []*frame.Frame
	for c.Next() {
		out = append(out, c.Result().Pixels)
	}
	if err := c.Err(); err != nil {
		return nil, c.Stats(), err
	}
	return out, c.Stats(), nil
}

// dfJob is one (SOT, tile) decode of a whole-frame request.
type dfJob struct {
	sot    tilestore.SOTMeta
	ti     int
	lo, hi int // frame range within the SOT
	frames []*frame.Frame
	res    tileDecodeResult
}

// planFrameJobs builds the per-SOT decode jobs of a whole-frame request:
// one job per (SOT, tile), grouped by SOT so assembly never depends on a
// positional cursor.
func planFrameJobs(sots []tilestore.SOTMeta, from, to int) [][]*dfJob {
	sotJobs := make([][]*dfJob, len(sots))
	for si, sot := range sots {
		lo, hi := max(from, sot.From)-sot.From, min(to, sot.To)-sot.From
		for ti := 0; ti < sot.L.NumTiles(); ti++ {
			sotJobs[si] = append(sotJobs[si], &dfJob{sot: sot, ti: ti, lo: lo, hi: hi})
		}
	}
	return sotJobs
}

// runFrameJob decodes one (SOT, tile) job. When the cache is enabled the
// job decodes the prefix [0, hi) so the result is reusable by later
// scans; the warm-up frames before lo are decoded either way (decoding
// must start at the keyframe), so caching them is free.
func (m *Manager) runFrameJob(ctx context.Context, video string, lease *tilestore.Lease, j *dfJob) {
	if m.cache != nil {
		frames, r := m.decodeTilePrefix(ctx, video, lease, j.sot, j.ti, j.hi)
		if r.err == nil {
			frames = frames[j.lo:j.hi]
		}
		j.frames, j.res = frames, r
		return
	}
	if err := ctx.Err(); err != nil {
		j.res.err = fmt.Errorf("core: %s SOT %d tile %d: %w", video, j.sot.ID, j.ti, err)
		return
	}
	tv, err := lease.ReadTile(j.sot, j.ti)
	if err != nil {
		j.res.err = err
		return
	}
	j.frames, j.res.ds, j.res.err = tv.DecodeRangeContext(ctx, j.lo, j.hi)
}

// assembleFrameSOT blits one SOT's decoded tiles into full frames, in
// ascending frame order.
func assembleFrameSOT(w, h int, js []*dfJob) []*frame.Frame {
	if len(js) == 0 {
		return nil
	}
	full := make([]*frame.Frame, js[0].hi-js[0].lo)
	for i := range full {
		full[i] = frame.New(w, h)
	}
	for _, j := range js {
		rect := j.sot.L.TileRectByIndex(j.ti)
		for i, tf := range j.frames {
			full[i].Blit(tf, rect.X0, rect.Y0)
		}
	}
	return full
}

// decodeFramesLeased is the batch whole-frame engine, reading every tile
// through the caller's snapshot lease; from/to must already be clamped
// and valid. RetileSOT uses it so its decode runs under the same lease
// its commit is validated against (the public DecodeFrames path streams
// through FrameCursor instead).
func (m *Manager) decodeFramesLeased(ctx context.Context, video string, meta tilestore.VideoMeta, lease *tilestore.Lease, from, to int) ([]*frame.Frame, ScanStats, error) {
	var st ScanStats
	sots := meta.SOTsInRange(from, to)
	st.SOTsTouched = len(sots)
	start := time.Now()

	sotJobs := planFrameJobs(sots, from, to)
	var jobs []*dfJob
	for _, js := range sotJobs {
		jobs = append(jobs, js...)
	}
	runJobs(ctx, len(jobs), m.cfg.Parallelism, func(i int) {
		m.runFrameJob(ctx, video, lease, jobs[i])
	})

	st.DecodeWall = time.Since(start)

	if err := ctx.Err(); err != nil {
		return nil, st, fmt.Errorf("core: decode frames %s [%d,%d): %w", video, from, to, err)
	}
	var firstErr error
	for _, j := range jobs {
		if err := m.applyDecodeResult(&st, j.res); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return nil, st, firstErr
	}

	// Assemble full frames in order, blitting each tile at its layout
	// offset; pure pixel work, timed apart from the decode.
	assembleStart := time.Now()
	out := make([]*frame.Frame, 0, to-from)
	for _, js := range sotJobs {
		out = append(out, assembleFrameSOT(meta.W, meta.H, js)...)
	}
	st.AssembleWall = time.Since(assembleStart)
	return out, st, nil
}

// RetileStats reports the work of a re-tiling operation.
type RetileStats struct {
	DecodeWall time.Duration
	EncodeWall time.Duration
	Bytes      int64
}

// PointerRefreshError reports that a re-tile committed its tile swap but
// could not refresh the semantic index's box→tile pointers afterwards. The
// store is consistent — the new layout is live and scans plan tiles from
// the layout itself, not the pointers — but the denormalized pointers are
// stale until RepairPointers succeeds.
type PointerRefreshError struct {
	Video string
	SOT   int
	Err   error
}

func (e *PointerRefreshError) Error() string {
	return fmt.Sprintf("core: %s SOT %d: tile swap committed but box→tile pointer refresh failed (run RepairPointers): %v", e.Video, e.SOT, e.Err)
}

func (e *PointerRefreshError) Unwrap() error { return e.Err }

// retileLock returns the mutex serializing re-tiles of one video.
func (m *Manager) retileLock(video string) *sync.Mutex {
	mu, _ := m.retileMu.LoadOrStore(video, &sync.Mutex{})
	return mu.(*sync.Mutex)
}

// RetileSOT re-encodes one SOT under a new layout: decode all current
// tiles, reassemble frames, encode with the new layout, commit a new
// version directory, and refresh the semantic index's tile pointers for
// boxes in the range. Scans concurrent with the re-tile are unaffected:
// they hold leases on the version their snapshot names, and the old
// version's files survive until the last lease drops. Re-tiles of one
// video are serialized against each other.
//
// If the pointer refresh fails after the swap has committed, RetileSOT
// retries it once and then returns a *PointerRefreshError — distinct from
// a failed re-tile — so the caller knows the new layout is live and can
// run RepairPointers.
func (m *Manager) RetileSOT(video string, sotID int, l layout.Layout) (RetileStats, error) {
	return m.RetileSOTContext(context.Background(), video, sotID, l)
}

// RetileSOTContext is RetileSOT under a context: the decode and re-encode
// phases abort within one frame's work of a cancellation and nothing is
// committed; once the tile swap starts committing it is not interrupted
// (the commit itself is atomic under the store's catalog lock).
func (m *Manager) RetileSOTContext(ctx context.Context, video string, sotID int, l layout.Layout) (RetileStats, error) {
	mu := m.retileLock(video)
	mu.Lock()
	defer mu.Unlock()

	var rs RetileStats
	// One snapshot lease covers the whole decode→encode→commit sequence,
	// and the commit is validated against it: if the video is deleted (and
	// possibly re-ingested under the same name) mid-retile, the store
	// refuses to install tiles encoded from the deleted generation's
	// frames.
	meta, lease, err := m.store.SnapshotContext(ctx, video)
	if err != nil {
		return rs, err
	}
	defer lease.Release()
	var sot tilestore.SOTMeta
	found := false
	for _, s := range meta.SOTs {
		if s.ID == sotID {
			sot, found = s, true
			break
		}
	}
	if !found {
		return rs, fmt.Errorf("core: %w: video %q has no SOT %d", tasmerr.ErrSOTNotFound, video, sotID)
	}
	if err := l.Validate(m.cfg.Constraints(meta.W, meta.H)); err != nil {
		return rs, err
	}
	if l.Equal(sot.L) {
		return rs, nil // already in the requested layout
	}

	frames, st, err := m.decodeFramesLeased(ctx, video, meta, lease, sot.From, sot.To)
	if err != nil {
		return rs, err
	}
	rs.DecodeWall = st.DecodeWall

	encStart := time.Now()
	tiles, err := container.EncodeTiledContext(ctx, frames, l, meta.FPS, m.cfg.Codec)
	if err != nil {
		return rs, err
	}
	rs.EncodeWall = time.Since(encStart)
	if err := m.store.ReplaceSOTLeased(lease, video, sotID, l, tiles); err != nil {
		return rs, err
	}
	// Cached decodes of the old physical layout must never be served
	// again. (Scans holding the new catalog snapshot are already safe —
	// the bumped Retiles counter is part of the cache key — but the sweep
	// frees their memory immediately.)
	m.cache.InvalidateSOT(video, sotID)
	for _, tv := range tiles {
		rs.Bytes += tv.SizeBytes()
	}
	if err := m.refreshPointers(video, sot, l); err != nil {
		// The swap is already live; retry once, then surface a distinct
		// error so the caller can repair instead of assuming the re-tile
		// itself failed.
		if err = m.refreshPointers(video, sot, l); err != nil {
			return rs, &PointerRefreshError{Video: video, SOT: sotID, Err: err}
		}
	}
	return rs, nil
}

// RepairPointers re-materializes the box→tile pointers of every SOT of a
// video from its live layout — the recovery path after a
// *PointerRefreshError, and the repair half of fsck.
func (m *Manager) RepairPointers(video string) error {
	meta, err := m.store.Meta(video)
	if err != nil {
		return err
	}
	for _, sot := range meta.SOTs {
		if err := m.refreshPointers(video, sot, sot.L); err != nil {
			return err
		}
	}
	return nil
}

// RepairStore validates every SOT's live version against the checksums
// sealed into the catalog, quarantines corrupt version directories into
// .trash, and falls back to earlier intact versions where the store
// still holds one (tilestore.Store.Repair). Because a fallback changes
// a video's live layout, the repaired videos' cached decodes are
// dropped and their box→tile pointers re-materialized, so scans after a
// repair address the adopted layout, not the quarantined one.
func (m *Manager) RepairStore() (tilestore.RepairReport, error) {
	rep, err := m.store.Repair()
	if err != nil {
		return rep, err
	}
	for _, video := range rep.Videos {
		m.cache.InvalidateVideo(video)
		if perr := m.RepairPointers(video); perr != nil && err == nil {
			err = fmt.Errorf("core: repair store: refresh pointers for %q: %w", video, perr)
		}
	}
	return rep, err
}

// refreshPointers re-materializes box→tile pointers for all detections in
// the SOT's frame range under the new layout.
func (m *Manager) refreshPointers(video string, sot tilestore.SOTMeta, l layout.Layout) error {
	if m.refreshHook != nil {
		if err := m.refreshHook(video); err != nil {
			return err
		}
	}
	labels, err := m.index.Labels(video)
	if err != nil {
		return err
	}
	for _, label := range labels {
		entries, err := m.index.Lookup(video, label, sot.From, sot.To)
		if err != nil {
			return err
		}
		for _, e := range entries {
			var tiles []uint16
			for _, ti := range l.TilesIntersecting(e.Box) {
				tiles = append(tiles, uint16(ti))
			}
			p := semindex.TilePointer{SOT: uint32(sot.ID), Tiles: tiles}
			if err := m.index.SetPointer(video, e.Detection, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// StitchSOT performs homomorphic stitching of a SOT's tiles into a single
// stream (paper §3.4.5: queries for whole frames). The tile reads run
// under a snapshot lease, so a concurrent re-tile cannot swap the files
// mid-stitch.
func (m *Manager) StitchSOT(video string, sotID int) (*container.Stitched, error) {
	return m.StitchSOTContext(context.Background(), video, sotID)
}

// StitchSOTContext is StitchSOT under a context, checked before the
// snapshot and between tile reads.
func (m *Manager) StitchSOTContext(ctx context.Context, video string, sotID int) (*container.Stitched, error) {
	meta, lease, err := m.store.SnapshotContext(ctx, video)
	if err != nil {
		return nil, err
	}
	defer lease.Release()
	for _, sot := range meta.SOTs {
		if sot.ID != sotID {
			continue
		}
		tiles, err := lease.ReadAllTiles(ctx, sot)
		if err != nil {
			return nil, err
		}
		return container.Stitch(sot.L, tiles)
	}
	return nil, fmt.Errorf("core: %w: video %q has no SOT %d", tasmerr.ErrSOTNotFound, video, sotID)
}

// VideoBytes returns the video's total storage footprint.
func (m *Manager) VideoBytes(video string) (int64, error) { return m.store.VideoBytes(video) }

// DeleteVideo removes a stored video: its tiles, its semantic-index
// records (so a later re-ingest under the same name is not scanned with
// the deleted video's detections), and every cached decode. The index is
// cleaned before the tiles are removed: if the index delete fails the
// video remains intact and scannable, whereas the reverse order could
// leave stale detections pointing at a re-ingested video's pixels.
func (m *Manager) DeleteVideo(video string) error {
	if _, err := m.store.Meta(video); err != nil {
		return err
	}
	if err := m.index.DeleteVideo(video); err != nil {
		return err
	}
	if err := m.store.DeleteVideo(video); err != nil {
		return err
	}
	m.cache.InvalidateVideo(video)
	// An active subscriber must not hang waiting for commits that can
	// never come (or leak its lease): deliver ErrVideoDeleted as every
	// tail's terminal state, and drop the append queue's map entry.
	m.hub.CancelVideo(video, fmt.Errorf("core: subscription to %q: %w", video, tasmerr.ErrVideoDeleted))
	m.ingest.Forget(video)
	// Drop the per-video retile mutex so long-lived managers cycling many
	// video names don't accumulate one forever. A retile already holding
	// the old mutex is safe: its commit is lease-validated by the store.
	m.retileMu.Delete(video)
	// Observation state for the deleted video is evidence about frames
	// that no longer exist; drop it so the background re-tiler cannot act
	// on a deleted (or later re-ingested) video's history.
	if m.observer != nil {
		m.observer.ForgetVideo(video)
	}
	return nil
}

// CacheStats snapshots the decoded-tile cache's global counters (all zero
// when the cache is disabled).
func (m *Manager) CacheStats() tilecache.Stats { return m.cache.Stats() }
