package core

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/semindex"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Codec.GOPLength = 10
	cfg.MinTileW, cfg.MinTileH = 32, 32
	return cfg
}

// newManager builds a manager over a small synthetic video with ground
// truth indexed for cars and people.
func newManager(t *testing.T) (*Manager, *scene.Video) {
	t.Helper()
	m, err := Open(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	v, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 3,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := v.Frames(0, v.Spec.NumFrames())
	if _, err := m.Ingest("traffic", frames, v.Spec.FPS); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < v.Spec.NumFrames(); f++ {
		for _, tr := range v.GroundTruth(f) {
			if err := m.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m, v
}

func TestIngestCreatesSOTsPerGOP(t *testing.T) {
	m, _ := newManager(t)
	meta, err := m.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	if meta.FrameCount != 30 {
		t.Errorf("FrameCount = %d", meta.FrameCount)
	}
	if len(meta.SOTs) != 3 {
		t.Fatalf("SOTs = %d, want 3 (one per 10-frame GOP)", len(meta.SOTs))
	}
	for i, sot := range meta.SOTs {
		if !sot.L.IsSingle() {
			t.Errorf("SOT %d not untiled after ingest", i)
		}
		if sot.From != i*10 || sot.To != i*10+10 {
			t.Errorf("SOT %d range [%d,%d)", i, sot.From, sot.To)
		}
	}
}

func TestIngestValidation(t *testing.T) {
	m, err := Open(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if _, err := m.Ingest("v", nil, 30); err == nil {
		t.Error("empty ingest succeeded")
	}
	frames := []*frame.Frame{frame.New(64, 64)}
	if _, err := m.IngestTiled("v", frames, 30, nil); err == nil {
		t.Error("layout count mismatch accepted")
	}
	bad := layout.Layout{RowHeights: []int{10, 54}, ColWidths: []int{64}}
	if _, err := m.IngestTiled("v", frames, 30, []layout.Layout{bad}); err == nil {
		t.Error("invalid layout accepted")
	}
}

func TestScanReturnsQueriedPixels(t *testing.T) {
	m, v := newManager(t)
	q, err := query.Parse("SELECT car FROM traffic WHERE 0 <= t < 10")
	if err != nil {
		t.Fatal(err)
	}
	results, st, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("scan returned nothing")
	}
	if st.RegionsReturned != len(results) {
		t.Errorf("RegionsReturned = %d, len = %d", st.RegionsReturned, len(results))
	}
	if st.PixelsDecoded <= 0 || st.TilesDecoded <= 0 || st.DecodeWall <= 0 {
		t.Errorf("stats not populated: %+v", st)
	}
	// Every returned region matches a ground-truth car box on that frame,
	// and the pixels match the source within codec loss.
	for _, r := range results {
		if r.Frame < 0 || r.Frame >= 10 {
			t.Errorf("result frame %d outside query range", r.Frame)
		}
		matched := false
		for _, tr := range v.GroundTruth(r.Frame) {
			if tr.Label == scene.Car && r.Region.Contains(tr.Box.Intersect(r.Region)) && tr.Box.Intersects(r.Region) {
				matched = true
			}
		}
		if !matched {
			t.Errorf("region %v@%d matches no car", r.Region, r.Frame)
		}
		src := v.Frame(r.Frame).Crop(r.Region)
		if psnr := frame.PSNR(src, r.Pixels); psnr < 26 {
			t.Errorf("region %v@%d PSNR = %.1f", r.Region, r.Frame, psnr)
		}
	}
}

func TestScanDecodesFewerPixelsAfterTiling(t *testing.T) {
	m, _ := newManager(t)
	q, _ := query.Parse("SELECT car FROM traffic WHERE 0 <= t < 10")
	_, before, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}

	// Retile SOT 0 around the cars.
	boxes, err := m.Index().LookupBoxes("traffic", "car", 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	meta, _ := m.Meta("traffic")
	l, err := layout.Partition(boxes, layout.Fine, m.Config().Constraints(meta.W, meta.H))
	if err != nil {
		t.Fatal(err)
	}
	if l.IsSingle() {
		t.Fatal("partition produced no tiling; test video too dense")
	}
	if _, err := m.RetileSOT("traffic", 0, l); err != nil {
		t.Fatal(err)
	}

	_, after, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if after.PixelsDecoded >= before.PixelsDecoded {
		t.Errorf("tiling did not reduce pixels: %d -> %d", before.PixelsDecoded, after.PixelsDecoded)
	}
	// Results must still be correct.
	results, _, _ := m.Scan(q)
	if len(results) == 0 {
		t.Error("no results after retile")
	}
}

func TestScanEmptyAndMissing(t *testing.T) {
	m, _ := newManager(t)
	q, _ := query.Parse("SELECT bird FROM traffic")
	results, st, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 || st.PixelsDecoded != 0 {
		t.Errorf("absent label scan: %d results, %d pixels", len(results), st.PixelsDecoded)
	}
	q2, _ := query.Parse("SELECT car FROM nothere")
	if _, _, err := m.Scan(q2); err == nil {
		t.Error("missing video scan succeeded")
	}
	// Inverted/degenerate ranges are errors under the shared
	// clamp-then-validate semantics (see TestRangeSemantics).
	q3, _ := query.Parse("SELECT car FROM traffic WHERE 20 <= t < 20")
	if _, _, err := m.Scan(q3); err == nil {
		t.Error("degenerate range scan succeeded")
	}
}

func TestScanConjunctivePredicate(t *testing.T) {
	m, _ := newManager(t)
	// Add a synthetic "red" attribute overlapping the first car on frame 0.
	cars, _ := m.Index().LookupBoxes("traffic", "car", 0, 1)
	if len(cars) == 0 {
		t.Fatal("no car on frame 0")
	}
	red := cars[0].Inset(2)
	if red.Empty() {
		red = cars[0]
	}
	m.AddMetadata("traffic", 0, "red", red.X0, red.Y0, red.X1, red.Y1)

	q, _ := query.Parse("SELECT car AND red FROM traffic WHERE t < 1")
	results, _, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("conjunction returned %d regions", len(results))
	}
	want := snapEven(cars[0].Intersect(red))
	if results[0].Region != want.Clamp(geom.R(0, 0, 192, 96)) {
		t.Errorf("region = %v, want %v", results[0].Region, want)
	}
}

func TestQueryDemand(t *testing.T) {
	m, _ := newManager(t)
	q, _ := query.Parse("SELECT car FROM traffic WHERE 5 <= t < 15")
	demands, sots, err := m.QueryDemand(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(demands) == 0 {
		t.Fatal("no demand")
	}
	for id, qf := range demands {
		sot := sots[id]
		if sot.From > 14 || sot.To <= 5 {
			t.Errorf("irrelevant SOT %d in demand", id)
		}
		for off := range qf {
			f := sot.From + off
			if f < 5 || f >= 15 {
				t.Errorf("demand frame %d outside window", f)
			}
		}
	}
}

func TestDecodeFramesReassembles(t *testing.T) {
	m, v := newManager(t)
	frames, st, err := m.DecodeFrames("traffic", 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 7 {
		t.Fatalf("got %d frames", len(frames))
	}
	if st.SOTsTouched != 2 {
		t.Errorf("SOTsTouched = %d, want 2", st.SOTsTouched)
	}
	for i, f := range frames {
		src := v.Frame(5 + i)
		if psnr := frame.PSNR(src, f); psnr < 28 {
			t.Errorf("frame %d PSNR = %.1f", 5+i, psnr)
		}
	}
	if _, _, err := m.DecodeFrames("traffic", 20, 10); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestRetileSOTUpdatesPointers(t *testing.T) {
	m, _ := newManager(t)
	boxes, _ := m.Index().LookupBoxes("traffic", "car", 0, 10)
	meta, _ := m.Meta("traffic")
	l, _ := layout.Partition(boxes, layout.Fine, m.Config().Constraints(meta.W, meta.H))
	if _, err := m.RetileSOT("traffic", 0, l); err != nil {
		t.Fatal(err)
	}
	meta, _ = m.Meta("traffic")
	if !meta.SOTs[0].L.Equal(l) {
		t.Error("layout not stored")
	}
	entries, _ := m.Index().Lookup("traffic", "car", 0, 10)
	for _, e := range entries {
		if e.Pointer == nil {
			t.Fatalf("entry %v has no tile pointer after retile", e.Detection)
		}
		if e.Pointer.SOT != 0 || len(e.Pointer.Tiles) == 0 {
			t.Errorf("pointer = %+v", e.Pointer)
		}
		// Pointer tiles must actually intersect the box.
		for _, ti := range e.Pointer.Tiles {
			if !l.TileRectByIndex(int(ti)).Intersects(e.Box) {
				t.Errorf("pointer tile %d does not intersect %v", ti, e.Box)
			}
		}
	}
	// Retiling to the same layout is a no-op.
	rs, err := m.RetileSOT("traffic", 0, l)
	if err != nil {
		t.Fatal(err)
	}
	if rs.EncodeWall != 0 {
		t.Error("same-layout retile re-encoded")
	}
	if _, err := m.RetileSOT("traffic", 99, l); err == nil {
		t.Error("absent SOT retile succeeded")
	}
}

func TestStitchSOT(t *testing.T) {
	m, v := newManager(t)
	// Tile SOT 1 first so stitching is non-trivial.
	boxes, _ := m.Index().LookupBoxes("traffic", "person", 10, 20)
	meta, _ := m.Meta("traffic")
	l, _ := layout.Partition(boxes, layout.Fine, m.Config().Constraints(meta.W, meta.H))
	m.RetileSOT("traffic", 1, l)

	s, err := m.StitchSOT("traffic", 1)
	if err != nil {
		t.Fatal(err)
	}
	frames, _, err := s.DecodeRange(0, s.FrameCount())
	if err != nil {
		t.Fatal(err)
	}
	for i, f := range frames {
		if psnr := frame.PSNR(v.Frame(10+i), f); psnr < 26 {
			t.Errorf("stitched frame %d PSNR %.1f", 10+i, psnr)
		}
	}
	if _, err := m.StitchSOT("traffic", 12); err == nil {
		t.Error("absent SOT stitch succeeded")
	}
}

func TestAddDetectionsBatch(t *testing.T) {
	m, _ := newManager(t)
	ds := []semindex.Detection{
		{Frame: 0, Label: "boat", Box: geom.R(0, 0, 10, 10)},
		{Frame: 1, Label: "boat", Box: geom.R(5, 5, 15, 15)},
	}
	if err := m.AddDetections("traffic", ds); err != nil {
		t.Fatal(err)
	}
	got, _ := m.Index().LookupBoxes("traffic", "boat", 0, 5)
	if len(got) != 2 {
		t.Errorf("batch add stored %d", len(got))
	}
}

func TestVideoBytesPositive(t *testing.T) {
	m, _ := newManager(t)
	n, err := m.VideoBytes("traffic")
	if err != nil || n <= 0 {
		t.Errorf("VideoBytes = %d, %v", n, err)
	}
}

func TestParallelDecodeMatchesSequential(t *testing.T) {
	// The parallel-decode extension must return identical regions and
	// identical work statistics (wall time aside) to sequential decode.
	cfgPar := testConfig()
	cfgPar.Parallelism = 4

	build := func(cfg Config) (*Manager, func()) {
		dir := t.TempDir()
		m, err := Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		v, _ := scene.Generate(scene.Spec{
			Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 2,
			Classes: []scene.ClassMix{
				{Class: scene.Car, Count: 3, SizeFrac: 0.14},
			},
			Seed: 2,
		})
		if _, err := m.Ingest("traffic", v.Frames(0, 20), 10); err != nil {
			t.Fatal(err)
		}
		for f := 0; f < 20; f++ {
			for _, tr := range v.GroundTruth(f) {
				m.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1)
			}
		}
		// Tile around cars so scans touch multiple tiles.
		boxes, _ := m.Index().LookupBoxes("traffic", "car", 0, 10)
		l, _ := layout.Partition(boxes, layout.Fine, m.Config().Constraints(192, 96))
		if !l.IsSingle() {
			m.RetileSOT("traffic", 0, l)
		}
		return m, func() { m.Close() }
	}

	mSeq, closeSeq := build(testConfig())
	defer closeSeq()
	mPar, closePar := build(cfgPar)
	defer closePar()

	q, _ := query.Parse("SELECT car FROM traffic WHERE 0 <= t < 20")
	resSeq, stSeq, err := mSeq.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	resPar, stPar, err := mPar.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if stSeq.PixelsDecoded != stPar.PixelsDecoded || stSeq.TilesDecoded != stPar.TilesDecoded {
		t.Errorf("work stats differ: seq %+v vs par %+v", stSeq, stPar)
	}
	if len(resSeq) != len(resPar) {
		t.Fatalf("result counts differ: %d vs %d", len(resSeq), len(resPar))
	}
	// Results arrive per SOT in map order; compare as sets of (frame, region).
	type key struct {
		f int
		r geom.Rect
	}
	seen := map[key]bool{}
	for _, r := range resSeq {
		seen[key{r.Frame, r.Region}] = true
	}
	for _, r := range resPar {
		if !seen[key{r.Frame, r.Region}] {
			t.Errorf("parallel-only region %v@%d", r.Region, r.Frame)
		}
	}
}

func TestScanErrorOnCorruptTile(t *testing.T) {
	m, _ := newManager(t)
	meta, _ := m.Meta("traffic")
	// Corrupt the first SOT's tile file on disk.
	dir := filepath.Join(m.Store().Root(), "traffic", "frames_0-9")
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no tile files: %v", err)
	}
	path := filepath.Join(dir, entries[0].Name())
	if err := os.WriteFile(path, []byte("corrupted!"), 0o644); err != nil {
		t.Fatal(err)
	}
	q, _ := query.Parse("SELECT car FROM traffic WHERE 0 <= t < 10")
	if _, _, err := m.Scan(q); err == nil {
		t.Error("scan of corrupt tile succeeded")
	}
	_ = meta
}
