package core

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// TestScanCursorMatchesScan asserts the streaming path yields exactly the
// materializing path's results — same order, byte-identical pixels — and
// the same work counters (Scan is itself a cursor drain, but this pins
// the cursor's public Next/Result protocol against the slice API).
func TestScanCursorMatchesScan(t *testing.T) {
	m, _ := newManager(t)
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30")
	ref, refSt, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("no reference results")
	}

	cur, err := m.ScanCursor(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	var got []RegionResult
	for cur.Next() {
		got = append(got, cur.Result())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	sameResults(t, ref, got)
	st := cur.Stats()
	if st.TilesDecoded != refSt.TilesDecoded || st.SOTsTouched != refSt.SOTsTouched ||
		st.RegionsReturned != refSt.RegionsReturned || st.PixelsDecoded != refSt.PixelsDecoded {
		t.Fatalf("cursor stats %+v diverge from scan stats %+v", st, refSt)
	}
	if st.DecodeWall <= 0 || st.AssembleWall <= 0 {
		t.Fatalf("cursor timing not measured: %+v", st)
	}
	if err := cur.Close(); err != nil { // closing an exhausted cursor is a no-op
		t.Fatal(err)
	}
	if cur.Err() != nil {
		t.Fatalf("Err after clean exhaustion + Close = %v", cur.Err())
	}
}

// TestFrameCursorMatchesDecodeFrames asserts the whole-frame stream
// yields DecodeFrames' exact output with correct absolute indices.
func TestFrameCursorMatchesDecodeFrames(t *testing.T) {
	m, _ := newManager(t)
	ref, _, err := m.DecodeFrames("traffic", 5, 25)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := m.FrameCursor(context.Background(), "traffic", 5, 25)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	for cur.Next() {
		fr := cur.Result()
		if fr.Index != 5+i {
			t.Fatalf("frame %d has index %d, want %d", i, fr.Index, 5+i)
		}
		if !bytes.Equal(fr.Pixels.Y, ref[i].Y) {
			t.Fatalf("frame %d pixels differ from DecodeFrames", fr.Index)
		}
		i++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(ref) {
		t.Fatalf("cursor yielded %d frames, DecodeFrames returned %d", i, len(ref))
	}
}

// TestScanCancelReleasesLeases is the MVCC/cancellation contract: a
// mid-scan context cancel stops the decode work, surfaces a
// context.Canceled through errors.Is, and releases every read lease — a
// version superseded by a concurrent re-tile is reclaimed by GC with
// nothing deferred.
func TestScanCancelReleasesLeases(t *testing.T) {
	m, _ := newManager(t)
	ctx, cancel := context.WithCancel(context.Background())
	cur, err := m.ScanCursor(ctx, mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30"))
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("no first result: %v", cur.Err())
	}

	// Re-tile the last SOT while the cursor's snapshot lease pins its old
	// version: the superseded directory must survive until the cursor dies.
	meta, err := m.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	w, h := meta.W, meta.H
	l2, err := layout.Uniform(1, 2, m.cfg.Constraints(w, h))
	if err != nil {
		t.Fatal(err)
	}
	lastSOT := meta.SOTs[len(meta.SOTs)-1].ID
	if _, err := m.RetileSOT("traffic", lastSOT, l2); err != nil {
		t.Fatal(err)
	}
	if rep, err := m.Store().GC(); err != nil || len(rep.Deferred) == 0 {
		t.Fatalf("expected the pinned old version to be deferred, got %+v (err %v)", rep, err)
	}

	cancel()
	for cur.Next() { // drain whatever was already buffered
	}
	if err := cur.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err after cancel = %v, want context.Canceled", err)
	}

	// Next has reported false, so the leases are gone: GC defers nothing
	// and fsck sees a lease-free store.
	rep, err := m.Store().GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Deferred) != 0 {
		t.Fatalf("GC after cancel still defers: %v", rep.Deferred)
	}
	fr, err := m.Store().FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Leases != 0 {
		t.Fatalf("fsck reports %d leases after cancel", fr.Leases)
	}
	if !fr.OK() {
		t.Fatalf("fsck problems after cancel: %v", fr.Problems)
	}
}

// TestCursorCloseBeforeExhaustion asserts Close on a part-read cursor
// tears the pipeline down promptly, releases the leases, records
// ErrCursorClosed, and leaves the manager fully usable.
func TestCursorCloseBeforeExhaustion(t *testing.T) {
	m := newCachedManager(t, 64<<20, 2)
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30")
	cur, err := m.ScanCursor(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !cur.Next() {
		t.Fatalf("no first result: %v", cur.Err())
	}
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cur.Err(); !errors.Is(err, tasmerr.ErrCursorClosed) {
		t.Fatalf("Err after early Close = %v, want ErrCursorClosed", err)
	}
	if cur.Next() {
		t.Fatal("Next succeeded after Close")
	}
	fr, err := m.Store().FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Leases != 0 {
		t.Fatalf("fsck reports %d leases after Close", fr.Leases)
	}
	// The manager (pool, cache, store) is intact: a fresh scan answers.
	res, _, err := m.Scan(q)
	if err != nil || len(res) == 0 {
		t.Fatalf("scan after Close: %d results, err %v", len(res), err)
	}
	if st := m.CacheStats(); st.BytesCached > 64<<20 {
		t.Fatalf("cache over budget after abandoned cursor: %d", st.BytesCached)
	}
}

// TestDecodeFramesDeadlineExceeded asserts a deadline-expired request
// fails with an error matching context.DeadlineExceeded via errors.Is,
// holding no leases.
func TestDecodeFramesDeadlineExceeded(t *testing.T) {
	m, _ := newManager(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, _, err := m.DecodeFramesContext(ctx, "traffic", 0, 30); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	fr, err := m.Store().FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Leases != 0 {
		t.Fatalf("expired request leaked %d leases", fr.Leases)
	}
}

// TestScanContextCancelledMidPipeline cancels while decode jobs are in
// flight (before the first Next) and asserts the wrapper surfaces the
// cancellation and releases everything.
func TestScanContextCancelledMidPipeline(t *testing.T) {
	m, _ := newManager(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already-cancelled context: the earliest possible cancel
	_, _, err := m.ScanContext(ctx, mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	fr, ferr := m.Store().FSCK()
	if ferr != nil {
		t.Fatal(ferr)
	}
	if fr.Leases != 0 {
		t.Fatalf("cancelled scan leaked %d leases", fr.Leases)
	}
}

// TestSingleflightDecodesOnce runs many concurrent identical scans on a
// fresh cached manager and asserts the store decoded each needed tile
// exactly once in total: concurrent requests singleflight onto one
// decode, later requests hit the cache.
func TestSingleflightDecodesOnce(t *testing.T) {
	// The reference count of distinct tiles the query needs, measured on
	// an identical (deterministic, seed-fixed) manager.
	ref := newCachedManager(t, 256<<20, 2)
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30")
	_, refSt, err := ref.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if refSt.TilesDecoded == 0 {
		t.Fatal("reference scan decoded nothing")
	}

	m := newCachedManager(t, 256<<20, 2)
	const scans = 8
	var wg sync.WaitGroup
	var mu sync.Mutex
	start := make(chan struct{})
	total := 0
	var firstErr error
	for i := 0; i < scans; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			_, st, err := m.Scan(q)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			total += st.TilesDecoded
		}()
	}
	close(start)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if total != refSt.TilesDecoded {
		t.Fatalf("%d concurrent scans decoded %d tiles in total, want exactly %d (singleflight + cache)", scans, total, refSt.TilesDecoded)
	}
}

// TestTypedErrors pins the taxonomy: each failure class matches its
// sentinel through errors.Is across the layers.
func TestTypedErrors(t *testing.T) {
	m, _ := newManager(t)
	if _, _, err := m.Scan(mustQuery(t, "SELECT car FROM nosuch")); !errors.Is(err, tasmerr.ErrVideoNotFound) {
		t.Errorf("scan of missing video: %v, want ErrVideoNotFound", err)
	}
	if _, _, err := m.Scan(mustQuery(t, "SELECT car FROM traffic WHERE 99 <= t < 120")); !errors.Is(err, tasmerr.ErrInvalidRange) {
		t.Errorf("out-of-range scan: %v, want ErrInvalidRange", err)
	}
	if _, _, err := m.DecodeFrames("traffic", 40, 50); !errors.Is(err, tasmerr.ErrInvalidRange) {
		t.Errorf("out-of-range decode: %v, want ErrInvalidRange", err)
	}
	if _, err := m.RetileSOT("traffic", 99, layout.Single(192, 96)); !errors.Is(err, tasmerr.ErrSOTNotFound) {
		t.Errorf("retile of missing SOT: %v, want ErrSOTNotFound", err)
	}
	if _, err := m.Ingest("empty", nil, 10); !errors.Is(err, tasmerr.ErrNoFrames) {
		t.Errorf("empty ingest: %v, want ErrNoFrames", err)
	}
	if err := m.DeleteVideo("nosuch"); !errors.Is(err, tasmerr.ErrVideoNotFound) {
		t.Errorf("delete of missing video: %v, want ErrVideoNotFound", err)
	}
}

// TestIngestCancelLeavesNoDebris asserts a cancelled ingest stores
// nothing: no catalog entry, no directories for GC to find.
func TestIngestCancelLeavesNoDebris(t *testing.T) {
	m, v := newManager(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	frames := v.Frames(0, v.Spec.NumFrames())
	if _, err := m.IngestContext(ctx, "cancelled", frames, v.Spec.FPS); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := m.Meta("cancelled"); !errors.Is(err, tasmerr.ErrVideoNotFound) {
		t.Fatalf("cancelled ingest left a catalog entry (err %v)", err)
	}
	rep, err := m.Store().GC()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Removed {
		t.Errorf("cancelled ingest left debris: %s", p)
	}
}

// TestRetileCancelCommitsNothing asserts a cancelled re-tile leaves the
// old layout live and the store consistent.
func TestRetileCancelCommitsNothing(t *testing.T) {
	m, _ := newManager(t)
	before, err := m.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	l2, err := layout.Uniform(2, 2, m.cfg.Constraints(before.W, before.H))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.RetileSOTContext(ctx, "traffic", 0, l2); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	after, err := m.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	if !after.SOTs[0].L.Equal(before.SOTs[0].L) || after.SOTs[0].Retiles != before.SOTs[0].Retiles {
		t.Fatal("cancelled retile changed the live layout")
	}
	fr, err := m.Store().FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if !fr.OK() || fr.Leases != 0 {
		t.Fatalf("store inconsistent after cancelled retile: %+v", fr)
	}
}
