package core

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"github.com/tasm-repro/tasm/internal/costmodel"
	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/tasmerr"
	"github.com/tasm-repro/tasm/internal/tilestore"
)

// The streaming pipeline behind ScanCursor and FrameCursor.
//
// Results flow to the consumer in frame order as each (SOT, tile) decode
// lands, instead of materializing the whole request first: tile decode
// jobs fan across Config.Parallelism workers, and as soon as every tile
// of the frontmost undelivered SOT is decoded, that SOT is assembled and
// its results are handed over. Two bounds give backpressure instead of
// unbounded buffering:
//
//   - a result channel of cursorResultBuffer entries between the pipeline
//     and the consumer, and
//   - a window of sotAhead(parallelism) SOTs that may be decoded ahead of
//     the one the consumer is reading — a slow consumer therefore stalls
//     the decode workers rather than accumulating decoded pixels.
//
// The snapshot lease is released when the pipeline exits — on
// exhaustion, on the first decode error, or on context
// cancellation/Close — always before Next reports false, so "the cursor
// is done" implies "no leases are held" (a subsequent store GC defers
// nothing on this request's account).

// cursorResultBuffer bounds results assembled but not yet consumed.
const cursorResultBuffer = 16

// sotAhead bounds how many SOTs may be in flight (decoding or awaiting
// consumption) ahead of the consumer on the streaming path: enough SOTs
// to keep every worker fed past a slow frontmost SOT, with a floor of
// two so the next SOT decodes while the consumer drains the current one.
// The materializing wrappers instead pass an unbounded window — they
// hold every result anyway, and the old batch path flattened all (SOT,
// tile) jobs across the pool, a fan-out they must not regress.
func sotAhead(parallelism int) int { return max(2, 2*parallelism) }

// cursor is the shared engine; T is what one Next/Result step yields.
type cursor[T any] struct {
	m      *Manager
	ctx    context.Context
	cancel context.CancelFunc
	out    chan T
	cur    T
	done   chan struct{} // closed after lease release and stats finalize

	mu     sync.Mutex
	err    error
	stats  ScanStats
	closed bool
}

// Next advances to the next result, blocking until one is available, the
// stream ends, an error occurs, or the context is cancelled. It returns
// false on end-of-stream; consult Err to distinguish exhaustion from
// failure.
func (c *cursor[T]) Next() bool {
	v, ok := <-c.out
	if !ok {
		var zero T
		c.cur = zero
		return false
	}
	c.cur = v
	return true
}

// Result returns the value Next advanced to.
func (c *cursor[T]) Result() T { return c.cur }

// Err returns the error that terminated the stream, nil while streaming
// or after clean exhaustion. Context errors are wrapped: errors.Is(err,
// context.Canceled) and errors.Is(err, context.DeadlineExceeded) work.
func (c *cursor[T]) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stats snapshots the work performed so far; after Next has returned
// false (or Close returned) it is the request's final accounting.
func (c *cursor[T]) Stats() ScanStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Close stops the pipeline and blocks until every decode worker has
// exited and the read leases are released. It is idempotent and safe to
// defer alongside normal draining; closing an exhausted cursor is a
// no-op. A Close before exhaustion records ErrCursorClosed so a later
// Err is not mistaken for clean exhaustion.
func (c *cursor[T]) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		select {
		case <-c.done: // already finished; keep its error
		default:
			if c.err == nil {
				c.err = tasmerr.ErrCursorClosed
			}
		}
	}
	c.mu.Unlock()
	c.cancel()
	// Drain so the pipeline's in-flight send (if any) unblocks even if
	// the cancellation raced it, then wait for teardown.
	for range c.out {
	}
	<-c.done
	return nil
}

// setErr records the stream-terminating error, keeping the first one (a
// Close-initiated ErrCursorClosed therefore wins over the cancellation
// error the Close itself provokes in the pipeline).
func (c *cursor[T]) setErr(err error) {
	if err == nil {
		return
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
}

// updateStats mutates the shared stats under the cursor's lock.
func (c *cursor[T]) updateStats(fn func(*ScanStats)) {
	c.mu.Lock()
	fn(&c.stats)
	c.mu.Unlock()
}

// send delivers one result to the consumer, honoring cancellation.
func (c *cursor[T]) send(v T) error {
	select {
	case c.out <- v:
		return nil
	case <-c.ctx.Done():
		return fmt.Errorf("core: result stream: %w", context.Cause(c.ctx))
	}
}

// newCursor builds an idle cursor bound to ctx.
func newCursor[T any](m *Manager, ctx context.Context) *cursor[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	return &cursor[T]{
		m:      m,
		ctx:    cctx,
		cancel: cancel,
		out:    make(chan T, cursorResultBuffer),
		done:   make(chan struct{}),
	}
}

// finishEmpty completes a cursor that has nothing to stream (no matching
// regions, or an empty plan): the lease is dropped, the derived context
// is cancelled (else every empty scan would leak a child context on a
// long-lived parent), and the cursor is born exhausted.
func (c *cursor[T]) finishEmpty(lease *tilestore.Lease) {
	lease.Release()
	c.cancel()
	close(c.done)
	close(c.out)
}

// recordSpans reports the pipeline's stage accounting into the request
// trace (when one rides the context): decode and assemble spans carry
// the cumulative stage walls from ScanStats — overlapping parallel
// decodes already folded to busy intervals — and the cache span carries
// the tile-cache outcome for this request. Span starts anchor at the
// pipeline start; the durations are the paper's per-stage costs, not
// wall-clock sub-intervals.
func (c *cursor[T]) recordSpans(pipeStart time.Time) {
	tr := obs.FromContext(c.ctx)
	if tr == nil {
		return
	}
	st := c.Stats()
	itoa := strconv.Itoa
	tr.AddSpan("decode", pipeStart, st.DecodeWall,
		"tiles", itoa(st.TilesDecoded),
		"frames", strconv.FormatInt(st.FramesDecoded, 10),
		"sots", itoa(st.SOTsTouched))
	tr.AddSpan("assemble", pipeStart, st.AssembleWall,
		"regions", itoa(st.RegionsReturned))
	tr.AddSpan("cache", pipeStart, 0,
		"hits", itoa(st.CacheHits),
		"misses", itoa(st.CacheMisses),
		"evictions", itoa(st.CacheEvictions))
}

// pipelineSOT is one SOT's worth of decode work: jobs to run and an
// emitter that assembles and sends the SOT's results once they all land.
type pipelineSOT struct {
	jobs int
	// run decodes job k of this SOT (k < jobs). It must record its
	// outcome internally; the pipeline only orchestrates.
	run func(ctx context.Context, k int)
	// emit is called in SOT order after all of this SOT's jobs returned:
	// it surfaces the first decode error, otherwise assembles and sends.
	emit func() error
}

// start launches the pipeline over sots (already in frame order) and
// returns immediately; lease is released when the pipeline exits. window
// bounds how many SOTs may be decoded ahead of the consumer (<= 0 means
// the streaming default, sotAhead).
func (c *cursor[T]) start(lease *tilestore.Lease, sots []pipelineSOT, window int) {
	go func() {
		pipeStart := time.Now()
		err := c.pump(lease, sots, window)
		// Workers have exited: release before the consumer can observe
		// end-of-stream, so "Next is false" implies "no leases held".
		lease.Release()
		c.setErr(err)
		c.recordSpans(pipeStart)
		// done closes before out: a consumer that drained to the closed
		// out channel and immediately calls Close must find done already
		// closed, or the Close would spuriously record ErrCursorClosed
		// on a cleanly exhausted stream.
		close(c.done)
		close(c.out)
	}()
}

// pump runs dispatch, decode, and in-order emission until the stream is
// exhausted, a decode fails, or the context is cancelled. It returns
// only after every worker goroutine has exited.
func (c *cursor[T]) pump(lease *tilestore.Lease, sots []pipelineSOT, windowSize int) error {
	ctx := c.ctx

	// DecodeWall accounting: the union of intervals during which at
	// least one decode job is running. Overlapping parallel decodes
	// count once (like the batch pool-drain measurement), and idle gaps
	// where the pipeline waits on a slow consumer count zero — the stat
	// stays the paper's decode cost, not consumption wall time.
	var busyMu sync.Mutex
	var busyActive int
	var busyStart time.Time
	jobStarted := func() {
		busyMu.Lock()
		if busyActive == 0 {
			busyStart = time.Now()
		}
		busyActive++
		busyMu.Unlock()
	}
	jobFinished := func() {
		busyMu.Lock()
		busyActive--
		if busyActive == 0 {
			d := time.Since(busyStart)
			c.updateStats(func(st *ScanStats) { st.DecodeWall += d })
		}
		busyMu.Unlock()
	}

	// Per-SOT completion tracking: pending decodes, and a channel closed
	// when the SOT's last job lands.
	pending := make([]int32, len(sots))
	sotDone := make([]chan struct{}, len(sots))
	for i, s := range sots {
		sotDone[i] = make(chan struct{})
		pending[i] = int32(s.jobs)
		if s.jobs == 0 {
			close(sotDone[i])
		}
	}

	type jobRef struct{ si, k int }
	if windowSize <= 0 {
		windowSize = sotAhead(c.m.cfg.Parallelism)
	}
	windowSize = min(windowSize, len(sots))
	window := make(chan struct{}, windowSize)
	jobCh := make(chan jobRef)

	// Dispatcher: admits SOTs in order, bounded by the window, then
	// feeds their tile jobs to the workers.
	go func() {
		defer close(jobCh)
		for si := range sots {
			select {
			case window <- struct{}{}:
			case <-ctx.Done():
				return
			}
			for k := 0; k < sots[si].jobs; k++ {
				select {
				case jobCh <- jobRef{si, k}:
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	var pendingMu sync.Mutex
	workers := max(1, c.m.cfg.Parallelism)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				jobStarted()
				sots[j.si].run(ctx, j.k)
				jobFinished()
				pendingMu.Lock()
				pending[j.si]--
				last := pending[j.si] == 0
				pendingMu.Unlock()
				if last {
					close(sotDone[j.si])
				}
			}
		}()
	}

	// Emit SOTs strictly in order as they complete.
	var firstErr error
	for si := range sots {
		select {
		case <-sotDone[si]:
			if err := sots[si].emit(); err != nil {
				firstErr = err
			}
			<-window // free a decode-ahead slot
		case <-ctx.Done():
			firstErr = fmt.Errorf("core: scan cancelled: %w", context.Cause(ctx))
		}
		if firstErr != nil {
			break
		}
	}
	// Stop all remaining work and wait for the workers: the lease must
	// outlive every tile read.
	c.cancel()
	wg.Wait()
	return firstErr
}

// ScanCursor starts a streaming Scan: it plans the query under a snapshot
// lease exactly like Scan, then decodes in the background and yields
// RegionResults in frame order as each SOT's tiles land. Constructor
// errors (unknown video, invalid range, index failure) are returned
// immediately with no lease held; decode-time errors surface through
// Err. The caller must either drain the cursor or Close it.
func (m *Manager) ScanCursor(ctx context.Context, q query.Query) (*ScanCursor, error) {
	return m.scanCursor(ctx, q, 0)
}

// scanCursor is ScanCursor with an explicit decode-ahead window; the
// materializing ScanContext passes an unbounded window so all (SOT,
// tile) jobs flatten across the pool like the pre-cursor batch path.
func (m *Manager) scanCursor(ctx context.Context, q query.Query, window int) (*ScanCursor, error) {
	c := newCursor[RegionResult](m, ctx)
	tr := obs.FromContext(c.ctx)
	endLease := tr.StartSpan("lease")
	meta, lease, err := m.store.SnapshotRangeContext(c.ctx, q.Video, q.From, q.To)
	endLease("video", q.Video)
	if err != nil {
		c.cancel()
		return nil, err
	}
	release := func(err error) error {
		lease.Release()
		c.cancel()
		return err
	}
	from, to, err := clampRange(q.Video, q.From, q.To, meta.FrameCount)
	if err != nil {
		return nil, release(err)
	}
	indexStart := time.Now()
	regions, indexWall, err := m.regionsForQuery(q, from, to)
	if err != nil {
		return nil, release(err)
	}
	c.stats.IndexWall = indexWall
	tr.AddSpan("index", indexStart, indexWall)

	// Plan every touched SOT up front: which frame offsets it must serve
	// and which tiles (decoded through which offset) it needs.
	var plans []*sotPlan
	for _, sot := range meta.SOTsInRange(from, to) {
		qf := costmodel.QueryFrames{}
		for f := max(from, sot.From); f < min(to, sot.To); f++ {
			if rs := regions[f]; len(rs) > 0 {
				qf[f-sot.From] = rs
			}
		}
		if len(qf) == 0 {
			continue
		}
		plans = append(plans, planSOT(sot, qf))
	}
	c.stats.SOTsTouched = len(plans)
	// Every scan path funnels through here — streaming cursors, the
	// materializing ScanContext draining one, and remote requests served
	// over either — so this single hook is the cursor-observation
	// guarantee: no query escapes the adaptive-tiling observer.
	m.observeScan(q, from, to, len(plans))
	sc := &ScanCursor{cursor: c}
	if len(plans) == 0 {
		c.finishEmpty(lease)
		return sc, nil
	}

	sots := make([]pipelineSOT, len(plans))
	for i, p := range plans {
		sots[i] = pipelineSOT{
			jobs: len(p.tids),
			run: func(ctx context.Context, k int) {
				frames, r := m.decodeTilePrefix(ctx, q.Video, lease, p.sot, p.tids[k], p.need[k])
				p.decoded[k] = frames
				p.results[k] = r
				c.updateStats(func(st *ScanStats) { m.foldDecodeStats(st, r) })
			},
			emit: func() error {
				for _, r := range p.results {
					if r.err != nil {
						return r.err
					}
				}
				assembleStart := time.Now()
				rs := assembleSOT(p)
				c.updateStats(func(st *ScanStats) {
					st.AssembleWall += time.Since(assembleStart)
					st.RegionsReturned += len(rs)
				})
				p.decoded, p.results = nil, nil // release pixels to GC as consumed
				for _, r := range rs {
					if err := c.send(r); err != nil {
						return err
					}
				}
				return nil
			},
		}
	}
	c.start(lease, sots, window)
	return sc, nil
}

// ScanCursor streams a Scan's RegionResults in frame order.
type ScanCursor struct {
	*cursor[RegionResult]
}

// FrameResult is one streamed whole frame: its absolute index in the
// video and its reassembled pixels.
type FrameResult struct {
	Index  int
	Pixels *frame.Frame
}

// FrameCursor starts a streaming DecodeFrames: whole frames [from, to)
// are yielded in order as each SOT's tiles decode, under the same
// snapshot-lease and clamp-then-validate semantics as DecodeFrames. The
// caller must either drain the cursor or Close it.
func (m *Manager) FrameCursor(ctx context.Context, video string, from, to int) (*FrameCursor, error) {
	return m.frameCursor(ctx, video, from, to, 0)
}

// frameCursor is FrameCursor with an explicit decode-ahead window (see
// scanCursor).
func (m *Manager) frameCursor(ctx context.Context, video string, from, to, window int) (*FrameCursor, error) {
	c := newCursor[FrameResult](m, ctx)
	tr := obs.FromContext(c.ctx)
	endLease := tr.StartSpan("lease")
	meta, lease, err := m.store.SnapshotRangeContext(c.ctx, video, from, to)
	endLease("video", video)
	if err != nil {
		c.cancel()
		return nil, err
	}
	from, to, err = clampRange(video, from, to, meta.FrameCount)
	if err != nil {
		lease.Release()
		c.cancel()
		return nil, err
	}
	sotMetas := meta.SOTsInRange(from, to)
	c.stats.SOTsTouched = len(sotMetas)
	// Whole-frame requests carry no label predicate: they feed range heat
	// to the observer (for cache admission) but no re-tiling evidence.
	m.observeScan(query.Query{Video: video}, from, to, len(sotMetas))
	fc := &FrameCursor{cursor: c}
	sotJobs := planFrameJobs(sotMetas, from, to)
	if len(sotJobs) == 0 {
		c.finishEmpty(lease)
		return fc, nil
	}

	sots := make([]pipelineSOT, len(sotJobs))
	for i, js := range sotJobs {
		sots[i] = pipelineSOT{
			jobs: len(js),
			run: func(ctx context.Context, k int) {
				j := js[k]
				m.runFrameJob(ctx, video, lease, j)
				c.updateStats(func(st *ScanStats) { m.foldDecodeStats(st, j.res) })
			},
			emit: func() error {
				for _, j := range js {
					if j.res.err != nil {
						return j.res.err
					}
				}
				assembleStart := time.Now()
				full := assembleFrameSOT(meta.W, meta.H, js)
				c.updateStats(func(st *ScanStats) { st.AssembleWall += time.Since(assembleStart) })
				base := js[0].sot.From + js[0].lo
				for fi, f := range full {
					if err := c.send(FrameResult{Index: base + fi, Pixels: f}); err != nil {
						return err
					}
				}
				for _, j := range js {
					j.frames = nil // release pixels to GC as consumed
				}
				return nil
			},
		}
	}
	c.start(lease, sots, window)
	return fc, nil
}

// FrameCursor streams whole reassembled frames in order.
type FrameCursor struct {
	*cursor[FrameResult]
}
