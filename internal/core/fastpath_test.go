package core

import (
	"bytes"
	"sync"
	"testing"

	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/scene"
)

// newCachedManager builds the standard test manager with the decoded-tile
// cache enabled and the given scan parallelism.
func newCachedManager(t *testing.T, budget int64, parallelism int) *Manager {
	t.Helper()
	cfg := testConfig()
	cfg.CacheBudget = budget
	cfg.Parallelism = parallelism
	m, err := Open(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	v, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 3,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	frames := v.Frames(0, v.Spec.NumFrames())
	if _, err := m.Ingest("traffic", frames, v.Spec.FPS); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < v.Spec.NumFrames(); f++ {
		for _, tr := range v.GroundTruth(f) {
			if err := m.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				t.Fatal(err)
			}
		}
	}
	return m
}

func mustQuery(t *testing.T, s string) query.Query {
	t.Helper()
	q, err := query.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// sameResults asserts two scans returned identical regions with
// byte-identical pixels, in the same order.
func sameResults(t *testing.T, a, b []RegionResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Frame != b[i].Frame || a[i].Region != b[i].Region {
			t.Fatalf("result %d differs: frame %d %v vs frame %d %v",
				i, a[i].Frame, a[i].Region, b[i].Frame, b[i].Region)
		}
		pa, pb := a[i].Pixels, b[i].Pixels
		if !bytes.Equal(pa.Y, pb.Y) || !bytes.Equal(pa.Cb, pb.Cb) || !bytes.Equal(pa.Cr, pb.Cr) {
			t.Fatalf("result %d pixels differ at frame %d %v", i, a[i].Frame, a[i].Region)
		}
	}
}

// TestScanStableFrameOrder asserts Scan returns results in ascending frame
// order, and that repeated scans return the identical sequence (the seed
// iterated a map of frame offsets, so order varied run to run).
func TestScanStableFrameOrder(t *testing.T) {
	m, _ := newManager(t)
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30")
	ref, _, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("no results")
	}
	for i := 1; i < len(ref); i++ {
		if ref[i].Frame < ref[i-1].Frame {
			t.Fatalf("results out of frame order: %d after %d", ref[i].Frame, ref[i-1].Frame)
		}
	}
	for rep := 0; rep < 5; rep++ {
		res, _, err := m.Scan(q)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, ref, res)
	}
}

// TestParallelScanMatchesSequential asserts the fan-out pipeline produces
// exactly the sequential results.
func TestParallelScanMatchesSequential(t *testing.T) {
	seq, _ := newManager(t)
	par := newCachedManager(t, 0, 4)
	q := mustQuery(t, "SELECT car OR person FROM traffic WHERE 0 <= t < 30")
	a, _, err := seq.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	b, sb, err := par.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, a, b)
	if sb.TilesDecoded == 0 {
		t.Fatal("parallel scan decoded nothing")
	}
}

// TestWarmScanMatchesCold asserts a cache-served scan returns byte-identical
// results to the cold scan that populated the cache, and that the second
// scan actually hit.
func TestWarmScanMatchesCold(t *testing.T) {
	m := newCachedManager(t, 64<<20, 2)
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30")
	cold, cs, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if cs.CacheHits != 0 || cs.CacheMisses == 0 || cs.TilesDecoded == 0 {
		t.Fatalf("cold scan stats: %+v", cs)
	}
	warm, ws, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if ws.CacheHits == 0 || ws.TilesDecoded != 0 {
		t.Fatalf("warm scan was not served from cache: %+v", ws)
	}
	sameResults(t, cold, warm)

	// Global counters surface through CacheStats.
	if g := m.CacheStats(); g.Hits != int64(ws.CacheHits) || g.Misses != int64(cs.CacheMisses) || g.Entries == 0 {
		t.Fatalf("global cache stats: %+v", g)
	}
}

// TestWarmScanMatchesUncachedManager cross-checks the cache against a
// manager with caching disabled over an identically generated store.
func TestWarmScanMatchesUncachedManager(t *testing.T) {
	cached := newCachedManager(t, 64<<20, 1)
	plain, _ := newManager(t)
	q := mustQuery(t, "SELECT person FROM traffic WHERE 5 <= t < 25")
	if _, _, err := cached.Scan(q); err != nil { // populate
		t.Fatal(err)
	}
	warm, _, err := cached.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := plain.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, ref, warm)
}

// TestCacheInvalidationOnRetile asserts a cached decode of the old layout
// is never served after RetileSOT: the next scan decodes fresh tiles, and
// repeated scans then agree with it.
func TestCacheInvalidationOnRetile(t *testing.T) {
	m := newCachedManager(t, 64<<20, 2)
	// Query confined to SOT 1 (frames 10..20).
	q := mustQuery(t, "SELECT car FROM traffic WHERE 10 <= t < 20")
	if _, _, err := m.Scan(q); err != nil { // cache old-layout decodes
		t.Fatal(err)
	}
	meta, err := m.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.Uniform(2, 2, m.Config().Constraints(meta.W, meta.H))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RetileSOT("traffic", 1, l); err != nil {
		t.Fatal(err)
	}

	first, fs, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if fs.CacheHits != 0 {
		t.Fatalf("scan after retile served %d stale cache hits", fs.CacheHits)
	}
	if fs.TilesDecoded == 0 {
		t.Fatal("scan after retile decoded nothing")
	}
	second, ss, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if ss.CacheHits == 0 {
		t.Fatal("second scan after retile did not warm")
	}
	sameResults(t, first, second)
}

// TestDeleteVideoDropsCache asserts DeleteVideo removes both the files and
// the cached decodes.
func TestDeleteVideoDropsCache(t *testing.T) {
	m := newCachedManager(t, 64<<20, 1)
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 20")
	if _, _, err := m.Scan(q); err != nil {
		t.Fatal(err)
	}
	if st := m.CacheStats(); st.Entries == 0 {
		t.Fatal("scan did not populate cache")
	}
	if err := m.DeleteVideo("traffic"); err != nil {
		t.Fatal(err)
	}
	if st := m.CacheStats(); st.Entries != 0 {
		t.Fatalf("cache still holds %d entries after DeleteVideo", st.Entries)
	}
	if _, _, err := m.Scan(q); err == nil {
		t.Fatal("scan of deleted video succeeded")
	}
	// The semantic index is cleaned too: a re-ingest under the same name
	// must not be scanned with the deleted video's detections.
	if labels, err := m.Index().Labels("traffic"); err != nil || len(labels) != 0 {
		t.Fatalf("labels after delete = %v, %v", labels, err)
	}
	fresh := make([]*frame.Frame, 10)
	for i := range fresh {
		fresh[i] = frame.New(192, 96)
	}
	if _, err := m.Ingest("traffic", fresh, 10); err != nil {
		t.Fatal(err)
	}
	res, _, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("re-ingested video served %d stale regions", len(res))
	}
}

// TestCachedDecodeFramesMatchesUncached asserts the whole-frame decode path
// (detector input) is identical with and without the cache, warm and cold.
func TestCachedDecodeFramesMatchesUncached(t *testing.T) {
	cached := newCachedManager(t, 64<<20, 2)
	plain, _ := newManager(t)
	ref, _, err := plain.DecodeFrames("traffic", 3, 27)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		got, st, err := cached.DecodeFrames("traffic", 3, 27)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("pass %d: %d frames, want %d", pass, len(got), len(ref))
		}
		for i := range got {
			if !bytes.Equal(got[i].Y, ref[i].Y) || !bytes.Equal(got[i].Cb, ref[i].Cb) || !bytes.Equal(got[i].Cr, ref[i].Cr) {
				t.Fatalf("pass %d: frame %d differs", pass, i)
			}
		}
		if pass == 1 && st.CacheHits == 0 {
			t.Fatalf("second DecodeFrames did not hit cache: %+v", st)
		}
	}
}

// TestConcurrentCachedScans hammers the cached, parallel scan path from
// many goroutines while a re-tile commits concurrently — no phase
// serialization; run with -race. Each scan pins its catalog snapshot with
// a store lease (MVCC version dirs), so every result must be
// byte-identical to either the pre-retile or the post-retile
// single-threaded reference.
func TestConcurrentCachedScans(t *testing.T) {
	m := newCachedManager(t, 32<<20, 4)
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30")

	ref0, _, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref0) == 0 {
		t.Fatal("no reference results")
	}
	meta, err := m.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.Uniform(1, 2, m.Config().Constraints(meta.W, meta.H))
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	var mu sync.Mutex
	var results [][]RegionResult
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				res, _, err := m.Scan(q)
				if err != nil {
					errs <- err
					return
				}
				mu.Lock()
				results = append(results, res)
				mu.Unlock()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := m.RetileSOT("traffic", 0, l); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The post-retile reference is computable after the fact: decoding is
	// deterministic and the cache is keyed by (SOT, retile count).
	ref1, _, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	refs := [][]RegionResult{ref0, ref1}
	for i, res := range results {
		if !matchesAnyResult(res, refs) {
			t.Fatalf("concurrent scan %d (%d regions) matches neither the pre- nor post-retile reference", i, len(res))
		}
	}
}
