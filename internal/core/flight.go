package core

import (
	"sync"

	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/tilecache"
)

// flightGroup deduplicates concurrent decodes of the same (video, SOT,
// tile, version, generation): when N scans miss the decoded-tile cache on
// the same key at once, one becomes the leader and decodes from disk while
// the rest wait and share its frames — N concurrent scans of a region pay
// one decode, not N. Keys reuse tilecache.Key, so a re-tile or delete
// (which bumps the generation) can never hand a waiter frames of a stale
// physical layout.
//
// Error handling is deliberately conservative: a leader's failure —
// including a cancellation of the leader's own context — is never shared.
// Waiters fall back to decoding themselves under their own context, so one
// cancelled request cannot poison the requests that piggybacked on it.
type flightGroup struct {
	mu sync.Mutex
	m  map[tilecache.Key]*flight
}

// flight is one in-progress decode: the prefix length being decoded and
// the channel closed when frames/err are published.
type flight struct {
	n      int
	done   chan struct{}
	frames []*frame.Frame
	err    error
}

// join returns the flight for key and whether the caller is its leader.
// A caller needing at most the in-progress prefix length joins as a
// follower; otherwise it leads its own flight (registered only if no
// flight is in progress — a longer request racing a shorter one decodes
// independently rather than stacking).
func (g *flightGroup) join(k tilecache.Key, n int) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.m == nil {
		g.m = map[tilecache.Key]*flight{}
	}
	if f := g.m[k]; f != nil && f.n >= n {
		return f, false
	}
	f := &flight{n: n, done: make(chan struct{})}
	if g.m[k] == nil {
		g.m[k] = f
	}
	return f, true
}

// finish publishes the leader's outcome and wakes the followers. Only the
// registered flight is deregistered; an unregistered leader (see join)
// just closes its private channel.
func (g *flightGroup) finish(k tilecache.Key, f *flight, frames []*frame.Frame, err error) {
	g.mu.Lock()
	if g.m[k] == f {
		delete(g.m, k)
	}
	g.mu.Unlock()
	f.frames, f.err = frames, err
	close(f.done)
}
