package core

// Live ingest: the append-mode write path and live-tail read path of
// paper-adjacent open-ended streams (surveillance cameras record
// forever and are queried while recording). Appends commit one SOT at a
// time through the store's MVCC manifest flip; subscribers tail the
// committed prefix through ordinary FrameCursors — so every live read
// runs under snapshot leases, feeds the adaptive-tiling observer, and
// can never observe a torn SOT — and are woken by the commit hub
// instead of polling.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/tasm-repro/tasm/internal/container"
	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/tasmerr"
	"github.com/tasm-repro/tasm/internal/tilestore"
	"github.com/tasm-repro/tasm/internal/vcodec"
)

// CreateLiveVideo opens an open-ended append-mode video with the given
// geometry (and optional retention policy); frames arrive later through
// AppendGOP and the video stays queryable throughout.
func (m *Manager) CreateLiveVideo(video string, w, h, fps int, pol *tilestore.RetentionPolicy) error {
	gop := m.cfg.Codec.GOPLength
	if gop <= 0 {
		gop = vcodec.DefaultParams().GOPLength
	}
	meta := tilestore.VideoMeta{Name: video, W: w, H: h, FPS: fps, GOPLength: gop, Retention: pol}
	if err := m.store.CreateLiveVideo(meta); err != nil {
		return err
	}
	// Same clean-slate rule as a batch ingest: no stale observation
	// evidence survives a name's re-creation.
	if m.observer != nil {
		m.observer.ForgetVideo(video)
	}
	return nil
}

// AppendStats reports the work of one AppendGOP call.
type AppendStats struct {
	EncodeWall time.Duration
	Bytes      int64
	SOTs       int
	Frames     int
	// FrameCount is the video's append head after this call's commits.
	FrameCount int
}

// AppendGOP appends frames to a live video, committing one SOT per
// GOP-length chunk (the trailing chunk may be shorter). Each commit is
// the store's atomic manifest flip: a crash mid-append keeps every
// previously committed SOT intact. Commits run on the video's bounded
// queue — a full queue rejects the whole call with
// tasmerr.ErrIngestBackpressure before any work — and each landed SOT
// wakes subscribers and applies the retention policy.
func (m *Manager) AppendGOP(video string, frames []*frame.Frame) (AppendStats, error) {
	return m.AppendGOPContext(context.Background(), video, frames)
}

// AppendGOPContext is AppendGOP under a context. The encode honors ctx
// per frame; a context that ends while queued commits are in flight
// returns early, but the ordered commits themselves run to completion.
func (m *Manager) AppendGOPContext(ctx context.Context, video string, frames []*frame.Frame) (AppendStats, error) {
	var st AppendStats
	if len(frames) == 0 {
		return st, fmt.Errorf("core: %w", tasmerr.ErrNoFrames)
	}
	meta, err := m.store.Meta(video)
	if err != nil {
		return st, err
	}
	if !meta.Live {
		return st, fmt.Errorf("core: append to %q: %w", video, tasmerr.ErrVideoSealed)
	}
	for i, f := range frames {
		if f.W != meta.W || f.H != meta.H {
			return st, fmt.Errorf("core: append to %q: %w: frame %d is %dx%d, video is %dx%d",
				video, tasmerr.ErrInvalidRange, i, f.W, f.H, meta.W, meta.H)
		}
	}
	gop := meta.GOPLength
	l := layout.Single(meta.W, meta.H)
	err = m.ingest.Do(ctx, video, func() error {
		for from := 0; from < len(frames); from += gop {
			to := min(from+gop, len(frames))
			encStart := time.Now()
			tiles, err := container.EncodeTiledContext(ctx, frames[from:to], l, meta.FPS, m.cfg.Codec)
			if err != nil {
				return fmt.Errorf("core: append to %q: %w", video, err)
			}
			st.EncodeWall += time.Since(encStart)
			sot, err := m.store.AppendSOT(video, l, tiles)
			if err != nil {
				return err
			}
			for _, tv := range tiles {
				st.Bytes += tv.SizeBytes()
			}
			st.SOTs++
			st.Frames += sot.NumFrames()
			st.FrameCount = sot.To
			// Publish after the manifest flip: a woken subscriber's
			// snapshot is guaranteed to see the new SOT.
			m.hub.Publish(video, sot.To)
			// Retention rides the append path so expiry needs no timer. A
			// trim failure must not fail the append — the SOT is already
			// committed — and the next commit retries it.
			if meta.Retention != nil {
				m.TrimExpired(video)
			}
		}
		return nil
	})
	return st, err
}

// SealVideo converts a live video into a normal batch one: no further
// appends, reads unchanged. Waiting subscribers are woken so a
// caught-up tail terminates cleanly instead of waiting forever.
func (m *Manager) SealVideo(video string) error {
	if err := m.store.SealVideo(video); err != nil {
		return err
	}
	meta, err := m.store.Meta(video)
	if err != nil {
		return err
	}
	m.hub.Publish(video, meta.FrameCount)
	return nil
}

// SetRetention installs (nil clears) a live video's retention policy
// and immediately applies it.
func (m *Manager) SetRetention(video string, pol *tilestore.RetentionPolicy) (tilestore.TrimReport, error) {
	if err := m.store.SetRetention(video, pol); err != nil {
		return tilestore.TrimReport{}, err
	}
	return m.TrimExpired(video)
}

// TrimExpired applies a live video's retention policy now, dropping the
// trimmed SOTs' cached decodes (their files retire through the store's
// lease-aware tombstone machinery).
func (m *Manager) TrimExpired(video string) (tilestore.TrimReport, error) {
	rep, err := m.store.TrimExpired(video)
	for _, id := range rep.Removed {
		m.cache.InvalidateSOT(video, id)
	}
	return rep, err
}

// SubscribeCursor is a live tail: it streams committed whole frames
// from a watermark onward, waking on new commits, and terminates
// cleanly once a sealed (or batch) video is fully delivered. It is not
// safe for concurrent Next calls, but Close may be called from another
// goroutine to abort a blocked Next.
type SubscribeCursor struct {
	m      *Manager
	ctx    context.Context
	cancel context.CancelFunc
	video  string
	sub    liveSub

	pos     int // next frame index to deliver
	chunkTo int // exclusive end of the chunk inner is draining
	inner   *FrameCursor
	cur     FrameResult

	mu     sync.Mutex
	err    error
	stats  ScanStats
	closed bool
	done   bool
}

// liveSub narrows *live.Sub so the cursor is testable without the hub.
type liveSub interface {
	State() (int, error)
	Wait(ctx context.Context, after int) (int, error)
	Close()
}

// Subscribe opens a live tail on video delivering every frame committed
// at index >= from (clamped up to the retention floor). A watermark at
// or past the append head delivers only new commits. Subscribing to a
// batch video replays [from, FrameCount) and ends cleanly — replay and
// tail are the same operation.
func (m *Manager) Subscribe(ctx context.Context, video string, from int) (*SubscribeCursor, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: subscribe %q: %w", video, err)
	}
	// Register on the hub before reading the catalog: a commit landing
	// between the two publishes to the registration, so no commit can
	// fall between the snapshot and the subscription.
	sub := m.hub.Subscribe(video, 0)
	meta, err := m.store.Meta(video)
	if err != nil {
		sub.Close()
		return nil, err
	}
	m.hub.Publish(video, meta.FrameCount)
	if from < 0 {
		from = 0
	}
	if from < meta.TrimmedTo {
		from = meta.TrimmedTo
	}
	cctx, cancel := context.WithCancel(ctx)
	return &SubscribeCursor{
		m: m, ctx: cctx, cancel: cancel, video: video, sub: sub, pos: from,
	}, nil
}

// Next advances to the next committed frame, blocking on the commit hub
// while caught up. False means the stream ended: cleanly (a sealed
// video fully delivered) when Err is nil, otherwise with Err's cause —
// tasmerr.ErrVideoDeleted when the video was deleted under the tail.
func (c *SubscribeCursor) Next() bool {
	for {
		c.mu.Lock()
		stop := c.closed || c.err != nil || c.done
		c.mu.Unlock()
		if stop {
			return false
		}
		if c.inner != nil {
			if c.inner.Next() {
				c.cur = c.inner.Result()
				c.pos = c.cur.Index + 1
				return true
			}
			err := c.inner.Err()
			c.foldStats(c.inner.Stats())
			c.inner = nil
			if err != nil {
				return c.fail(err)
			}
			// Chunk drained; retention may have trimmed part of the
			// range, so advance to the chunk's end, not the last result.
			c.pos = c.chunkTo
		}
		committed, serr := c.sub.State()
		if serr != nil {
			return c.fail(serr)
		}
		if committed > c.pos {
			inner, err := c.m.frameCursor(c.ctx, c.video, c.pos, committed, 0)
			if err != nil {
				return c.fail(err)
			}
			c.inner, c.chunkTo = inner, committed
			continue
		}
		meta, merr := c.m.store.Meta(c.video)
		if merr != nil {
			return c.fail(merr)
		}
		if !meta.Live && c.pos >= meta.FrameCount {
			c.mu.Lock()
			c.done = true
			c.mu.Unlock()
			return false
		}
		if _, werr := c.sub.Wait(c.ctx, c.pos); werr != nil {
			return c.fail(werr)
		}
	}
}

// fail records the terminal error (first wins) and ends the stream. A
// not-found surfacing mid-subscription means the video was deleted
// under the tail — DeleteVideo cancels through the hub, but a reader
// racing ahead of the cancel classifies identically.
func (c *SubscribeCursor) fail(err error) bool {
	if errors.Is(err, tasmerr.ErrVideoNotFound) {
		err = fmt.Errorf("core: subscription to %q: %w", c.video, tasmerr.ErrVideoDeleted)
	} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("core: subscription to %q: %w", c.video, err)
	}
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.cancel()
	return false
}

// Result returns the frame Next advanced to.
func (c *SubscribeCursor) Result() FrameResult { return c.cur }

// Err returns the error that terminated the tail; nil while streaming
// or after a sealed video's clean exhaustion.
func (c *SubscribeCursor) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Stats returns the accumulated decode accounting of every chunk
// delivered so far.
func (c *SubscribeCursor) Stats() ScanStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *SubscribeCursor) foldStats(st ScanStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.IndexWall += st.IndexWall
	c.stats.DecodeWall += st.DecodeWall
	c.stats.AssembleWall += st.AssembleWall
	c.stats.PixelsDecoded += st.PixelsDecoded
	c.stats.TilesDecoded += st.TilesDecoded
	c.stats.FramesDecoded += st.FramesDecoded
	c.stats.RegionsReturned += st.RegionsReturned
	c.stats.SOTsTouched += st.SOTsTouched
	c.stats.CacheHits += st.CacheHits
	c.stats.CacheMisses += st.CacheMisses
	c.stats.CacheEvictions += st.CacheEvictions
}

// Close ends the tail: the hub registration is dropped and the inner
// cursor's pipeline (if any) is cancelled, releasing its leases. A
// Close before exhaustion records tasmerr.ErrCursorClosed. Safe to call
// concurrently with a blocked Next (which then returns false) and safe
// to call twice.
func (c *SubscribeCursor) Close() error {
	c.mu.Lock()
	already := c.closed
	if !c.closed {
		c.closed = true
		if c.err == nil && !c.done {
			c.err = fmt.Errorf("core: subscription to %q: %w", c.video, tasmerr.ErrCursorClosed)
		}
	}
	c.mu.Unlock()
	if already {
		return nil
	}
	c.cancel()
	c.sub.Close()
	// The inner pipeline exits on the cancelled context and releases its
	// lease itself; Close it here only when Next is not mid-flight (the
	// single-consumer contract makes the two cases distinguishable by
	// the caller, and a concurrent Next's inner teardown is context-
	// driven either way).
	return nil
}
