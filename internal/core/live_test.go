package core

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"testing"
	"time"

	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/tasmerr"
	"github.com/tasm-repro/tasm/internal/tilestore"
)

// liveFeed generates a deterministic synthetic camera feed for append
// tests: 128x64 @10fps, one car.
func liveFeed(t *testing.T, frames int) *scene.Video {
	t.Helper()
	v, err := scene.Generate(scene.Spec{
		Name: "cam", W: 128, H: 64, FPS: 10, DurationSec: (frames + 9) / 10,
		Classes: []scene.ClassMix{{Class: scene.Car, Count: 1, SizeFrac: 0.25}},
		Seed:    13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Spec.NumFrames() < frames {
		t.Fatalf("feed has %d frames, need %d", v.Spec.NumFrames(), frames)
	}
	return v
}

func frameCRC(f *frame.Frame) uint32 {
	sum := crc32.NewIEEE()
	sum.Write(f.Y)
	sum.Write(f.Cb)
	sum.Write(f.Cr)
	return sum.Sum32()
}

// tail drains a subscription to its end, returning the delivered
// (index, crc) sequence and the terminal error.
type tailRun struct {
	first   int
	indices []int
	crcs    map[int]uint32
	err     error
}

func drainTail(cur *SubscribeCursor) tailRun {
	r := tailRun{first: -1, crcs: map[int]uint32{}}
	for cur.Next() {
		res := cur.Result()
		if r.first < 0 {
			r.first = res.Index
		}
		r.indices = append(r.indices, res.Index)
		r.crcs[res.Index] = frameCRC(res.Pixels)
	}
	r.err = cur.Err()
	return r
}

// requireContiguous fails unless the delivered indices are a gapless,
// duplicate-free ascending run — the exactly-once contract.
func requireContiguous(t *testing.T, name string, r tailRun) {
	t.Helper()
	for i, idx := range r.indices {
		if want := r.first + i; idx != want {
			t.Fatalf("%s: delivery %d has index %d, want %d (sequence not exactly-once)", name, i, idx, want)
		}
	}
}

// A tail started before the first append and one started mid-stream
// from an arbitrary watermark must both deliver every committed frame
// exactly once, byte-identical to a batch re-scan after the seal.
func TestLiveSubscribeReplayByteIdentical(t *testing.T) {
	m, err := Open(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const total = 60
	v := liveFeed(t, total)
	if err := m.CreateLiveVideo("cam", 128, 64, 10, nil); err != nil {
		t.Fatal(err)
	}

	early, err := m.Subscribe(context.Background(), "cam", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer early.Close()
	earlyC := make(chan tailRun, 1)
	go func() { earlyC <- drainTail(early) }()

	// First half committed, then a mid-stream tail from watermark 25:
	// it replays [25, head) from history and follows live after.
	if _, err := m.AppendGOP("cam", v.Frames(0, total/2)); err != nil {
		t.Fatal(err)
	}
	mid, err := m.Subscribe(context.Background(), "cam", 25)
	if err != nil {
		t.Fatal(err)
	}
	defer mid.Close()
	midC := make(chan tailRun, 1)
	go func() { midC <- drainTail(mid) }()

	if _, err := m.AppendGOP("cam", v.Frames(total/2, total)); err != nil {
		t.Fatal(err)
	}
	if err := m.SealVideo("cam"); err != nil {
		t.Fatal(err)
	}

	runs := map[string]tailRun{}
	for name, ch := range map[string]chan tailRun{"early": earlyC, "mid": midC} {
		select {
		case runs[name] = <-ch:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s tail did not terminate after seal", name)
		}
	}
	if r := runs["early"]; r.err != nil || r.first != 0 || len(r.indices) != total {
		t.Fatalf("early tail: first %d, %d frames, err %v; want 0, %d, nil", r.first, len(r.indices), r.err, total)
	}
	if r := runs["mid"]; r.err != nil || r.first != 25 || len(r.indices) != total-25 {
		t.Fatalf("mid tail: first %d, %d frames, err %v; want 25, %d, nil", r.first, len(r.indices), r.err, total-25)
	}
	for _, r := range runs {
		requireContiguous(t, "tail", r)
	}

	// The reference: a batch decode of the sealed video. Every delivered
	// frame must match it byte for byte.
	ref, _, err := m.DecodeFrames("cam", 0, total)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range runs {
		for idx, crc := range r.crcs {
			if want := frameCRC(ref[idx]); crc != want {
				t.Fatalf("%s tail: frame %d crc %08x, batch re-scan %08x (replay not byte-identical)", name, idx, crc, want)
			}
		}
	}
}

// The full interleaving under the race detector: one appender, tails
// started at different times, retention trims riding the append path,
// and GC passes reclaiming trimmed SOTs — all concurrent. Every tail
// must deliver a gapless run of intact frames, byte-identical to the
// others and to a batch re-scan of the surviving window.
func TestConcurrentAppendSubscribeRetentionGC(t *testing.T) {
	m, err := Open(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	const total = 100
	v := liveFeed(t, total)
	pol := &tilestore.RetentionPolicy{MaxAgeFrames: 40}
	if err := m.CreateLiveVideo("cam", 128, 64, 10, pol); err != nil {
		t.Fatal(err)
	}

	// Concurrent GC sweeps: trimmed SOT directories retire under live
	// subscriber leases, and GC must interleave with both sides safely.
	gcDone := make(chan struct{})
	gcErrs := make(chan error, 1)
	go func() {
		defer close(gcErrs)
		for {
			select {
			case <-gcDone:
				return
			case <-time.After(5 * time.Millisecond):
				if _, err := m.Store().GC(); err != nil {
					gcErrs <- err
					return
				}
			}
		}
	}()

	results := make(chan tailRun, 3)
	var wg sync.WaitGroup
	startTail := func(from int) {
		cur, err := m.Subscribe(context.Background(), "cam", from)
		if err != nil {
			t.Errorf("Subscribe(from=%d): %v", from, err)
			results <- tailRun{err: err}
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer cur.Close()
			results <- drainTail(cur)
		}()
	}

	startTail(0)
	gop := m.Config().Codec.GOPLength
	for from := 0; from < total; from += gop {
		if _, err := m.AppendGOP("cam", v.Frames(from, min(from+gop, total))); err != nil {
			t.Fatal(err)
		}
		switch from {
		case 30:
			startTail(0) // mid-stream, clamped to whatever retention kept
		case 60:
			startTail(70) // ahead of the head: only new commits
		}
	}
	if err := m.SealVideo("cam"); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(gcDone)
	if err := <-gcErrs; err != nil {
		t.Fatalf("concurrent GC: %v", err)
	}

	meta, err := m.Meta("cam")
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := m.DecodeFrames("cam", meta.TrimmedTo, total)
	if err != nil {
		t.Fatal(err)
	}
	refCRC := map[int]uint32{}
	for i, f := range ref {
		refCRC[meta.TrimmedTo+i] = frameCRC(f)
	}

	for i := 0; i < 3; i++ {
		r := <-results
		name := fmt.Sprintf("tail %d (first=%d)", i, r.first)
		if r.err != nil {
			t.Fatalf("%s: terminated with %v", name, r.err)
		}
		if len(r.indices) == 0 {
			t.Fatalf("%s: delivered nothing", name)
		}
		requireContiguous(t, name, r)
		// Every tail runs to the sealed head; its start is its watermark
		// clamped to the retention floor at subscribe time.
		if last := r.indices[len(r.indices)-1]; last != total-1 {
			t.Fatalf("%s: ended at frame %d, want %d", name, last, total-1)
		}
		for idx, crc := range r.crcs {
			want, ok := refCRC[idx]
			if !ok {
				// Delivered before retention trimmed it — compare tails
				// against each other below instead.
				continue
			}
			if crc != want {
				t.Fatalf("%s: frame %d crc %08x, batch re-scan %08x", name, idx, crc, want)
			}
		}
	}

	if fr, err := m.Store().FSCK(); err != nil || !fr.OK() {
		t.Fatalf("store not clean after interleaving: %v %v", fr.Problems, err)
	}
}

// Deleting a video out from under an active subscription must cancel
// the tail with a typed ErrVideoDeleted — not leave it blocked on the
// hub or holding a lease that pins the deleted files forever.
func TestDeleteVideoCancelsActiveSubscription(t *testing.T) {
	m, err := Open(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v := liveFeed(t, 20)
	if err := m.CreateLiveVideo("cam", 128, 64, 10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AppendGOP("cam", v.Frames(0, 20)); err != nil {
		t.Fatal(err)
	}

	cur, err := m.Subscribe(context.Background(), "cam", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	delivered := make(chan int, 1)
	errC := make(chan error, 1)
	go func() {
		n := 0
		for cur.Next() {
			n++
		}
		delivered <- n
		errC <- cur.Err()
	}()

	// Let the tail catch up and block on the hub, then delete.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := cur.Stats(); st.FramesDecoded >= 20 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tail never caught up")
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.DeleteVideo("cam"); err != nil {
		t.Fatal(err)
	}

	select {
	case n := <-delivered:
		if n != 20 {
			t.Errorf("tail delivered %d frames before the delete, want 20", n)
		}
		if err := <-errC; !errors.Is(err, tasmerr.ErrVideoDeleted) {
			t.Fatalf("tail error = %v, want ErrVideoDeleted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("DeleteVideo left the subscription blocked")
	}

	// No leaked lease: with the cursor closed, GC reclaims every
	// tombstone and the store is clean.
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	gc, err := m.Store().GC()
	if err != nil {
		t.Fatal(err)
	}
	if len(gc.Deferred) != 0 {
		t.Fatalf("GC deferred %v after cursor close — leaked lease pins deleted files", gc.Deferred)
	}
	if fr, err := m.Store().FSCK(); err != nil || !fr.OK() {
		t.Fatalf("store not clean after delete: %v %v", fr.Problems, err)
	}
}
