package core

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"

	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/scene"
)

// resultsEqual is the non-fatal form of sameResults: regions, order, and
// pixels all byte-identical.
func resultsEqual(a, b []RegionResult) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Frame != b[i].Frame || a[i].Region != b[i].Region {
			return false
		}
		pa, pb := a[i].Pixels, b[i].Pixels
		if !bytes.Equal(pa.Y, pb.Y) || !bytes.Equal(pa.Cb, pb.Cb) || !bytes.Equal(pa.Cr, pb.Cr) {
			return false
		}
	}
	return true
}

func framesEqual(a, b []*frame.Frame) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Y, b[i].Y) || !bytes.Equal(a[i].Cb, b[i].Cb) || !bytes.Equal(a[i].Cr, b[i].Cr) {
			return false
		}
	}
	return true
}

// matchesAnyResult reports whether res equals one of the reference states.
func matchesAnyResult(res []RegionResult, refs [][]RegionResult) bool {
	for _, ref := range refs {
		if resultsEqual(res, ref) {
			return true
		}
	}
	return false
}

func matchesAnyFrames(fs []*frame.Frame, refs [][]*frame.Frame) bool {
	for _, ref := range refs {
		if framesEqual(fs, ref) {
			return true
		}
	}
	return false
}

// TestInterleavedScanRetileDecode is the MVCC acceptance test: scans and
// whole-frame decodes interleave freely with re-tiles from many goroutines
// — no phase serialization — and every result must be byte-identical to
// one of the consistent catalog states, computed single-threaded on an
// identically generated shadow manager. Run with -race.
func TestInterleavedScanRetileDecode(t *testing.T) {
	for _, tc := range []struct {
		name   string
		budget int64
	}{
		{"cache-off", 0},
		{"cache-on", 32 << 20},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := newCachedManager(t, tc.budget, 4)
			shadow := newCachedManager(t, 0, 1)
			q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30")

			meta, err := shadow.Meta("traffic")
			if err != nil {
				t.Fatal(err)
			}
			cons := shadow.Config().Constraints(meta.W, meta.H)
			l12, err := layout.Uniform(1, 2, cons)
			if err != nil {
				t.Fatal(err)
			}
			l21, err := layout.Uniform(2, 1, cons)
			if err != nil {
				t.Fatal(err)
			}

			// The three consistent states a lease-holding reader can pin:
			// as ingested, after retiling SOT 0, after also retiling SOT 1.
			// Decodes are deterministic, so the shadow's single-threaded
			// replay yields the exact bytes the real manager must serve.
			var scanRefs [][]RegionResult
			var decodeRefs [][]*frame.Frame
			snapshotState := func() {
				res, _, err := shadow.Scan(q)
				if err != nil {
					t.Fatal(err)
				}
				fs, _, err := shadow.DecodeFrames("traffic", 0, 30)
				if err != nil {
					t.Fatal(err)
				}
				scanRefs = append(scanRefs, res)
				decodeRefs = append(decodeRefs, fs)
			}
			snapshotState()
			if _, err := shadow.RetileSOT("traffic", 0, l12); err != nil {
				t.Fatal(err)
			}
			snapshotState()
			if _, err := shadow.RetileSOT("traffic", 1, l21); err != nil {
				t.Fatal(err)
			}
			snapshotState()
			if resultsEqual(scanRefs[0], scanRefs[1]) {
				t.Fatal("retile did not change scan bytes; test has no teeth")
			}

			// Hammer the real manager while the same two retiles commit
			// concurrently.
			var wg sync.WaitGroup
			errCh := make(chan error, 32)
			var mu sync.Mutex
			var scans [][]RegionResult
			var decodes [][]*frame.Frame
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 6; i++ {
						res, _, err := m.Scan(q)
						if err != nil {
							errCh <- err
							return
						}
						mu.Lock()
						scans = append(scans, res)
						mu.Unlock()
					}
				}()
			}
			for w := 0; w < 2; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						fs, _, err := m.DecodeFrames("traffic", 0, 30)
						if err != nil {
							errCh <- err
							return
						}
						mu.Lock()
						decodes = append(decodes, fs)
						mu.Unlock()
					}
				}()
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := m.RetileSOT("traffic", 0, l12); err != nil {
					errCh <- err
					return
				}
				if _, err := m.RetileSOT("traffic", 1, l21); err != nil {
					errCh <- err
				}
			}()
			wg.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			for i, res := range scans {
				if !matchesAnyResult(res, scanRefs) {
					t.Fatalf("concurrent scan %d matches no consistent state (%d regions)", i, len(res))
				}
			}
			for i, fs := range decodes {
				if !matchesAnyFrames(fs, decodeRefs) {
					t.Fatalf("concurrent DecodeFrames %d matches no consistent state", i)
				}
			}

			// Quiesced, the live state is exactly the shadow's final state.
			final, _, err := m.Scan(q)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, scanRefs[2], final)
		})
	}
}

// TestInterleavedScanDeleteReingest interleaves scans with DeleteVideo and
// a re-ingest of identical content. A scan must either pin the pre-delete
// state (byte-identical to the reference), fail because the video is gone,
// or observe the re-ingested video before its detections are re-indexed
// (zero regions). Nothing in between. Run with -race.
func TestInterleavedScanDeleteReingest(t *testing.T) {
	m := newCachedManager(t, 32<<20, 4)
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30")
	ref, _, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("no reference results")
	}

	// Identical regeneration of the ingested scene (same spec and seed as
	// newCachedManager).
	v, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 3,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	fail := make(chan string, 32)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				res, _, err := m.Scan(q)
				switch {
				case err != nil:
					if !strings.Contains(err.Error(), "traffic") {
						fail <- "unexpected scan error: " + err.Error()
						return
					}
				case len(res) == 0:
					// Re-ingested, detections not yet re-indexed.
				case !resultsEqual(res, ref):
					fail <- "scan matched neither the reference nor an empty index"
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.DeleteVideo("traffic"); err != nil {
			fail <- "delete: " + err.Error()
			return
		}
		if _, err := m.Ingest("traffic", v.Frames(0, v.Spec.NumFrames()), v.Spec.FPS); err != nil {
			fail <- "re-ingest: " + err.Error()
		}
	}()
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Fatal(msg)
	}

	// Re-index the detections; the rebuilt video then serves the exact
	// reference bytes again (everything about it is deterministic).
	for f := 0; f < v.Spec.NumFrames(); f++ {
		for _, tr := range v.GroundTruth(f) {
			if err := m.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				t.Fatal(err)
			}
		}
	}
	again, _, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, ref, again)
}

// TestRangeSemantics pins the documented clamp-then-validate range
// behavior, shared verbatim by Scan and DecodeFrames: clamp from/to to the
// video first, then reject empty or inverted ranges. The video has 30
// frames.
func TestRangeSemantics(t *testing.T) {
	m, _ := newManager(t)
	base := mustQuery(t, "SELECT car FROM traffic")
	cases := []struct {
		name     string
		from, to int
		ok       bool
		// wantFrom/wantTo is the clamped range valid requests resolve to.
		wantFrom, wantTo int
	}{
		{"negative-from", -5, 20, true, 0, 20},
		{"to-end-sentinel", 0, -1, true, 0, 30},
		{"to-beyond-end", 10, 99, true, 10, 30},
		{"both-clamped", -10, 99, true, 0, 30},
		{"inverted", 20, 10, false, 0, 0},
		{"fully-past-end", 30, 50, false, 0, 0},
		{"empty", 5, 5, false, 0, 0},
		{"negative-empty", -3, 0, false, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := base
			q.From, q.To = tc.from, tc.to
			res, _, scanErr := m.Scan(q)
			fs, _, decErr := m.DecodeFrames("traffic", tc.from, tc.to)
			if !tc.ok {
				if scanErr == nil || decErr == nil {
					t.Fatalf("Scan err = %v, DecodeFrames err = %v; want both rejected", scanErr, decErr)
				}
				if !strings.Contains(scanErr.Error(), "empty frame range") || !strings.Contains(decErr.Error(), "empty frame range") {
					t.Fatalf("errors not the documented validation error: %v / %v", scanErr, decErr)
				}
				return
			}
			if scanErr != nil || decErr != nil {
				t.Fatalf("Scan err = %v, DecodeFrames err = %v", scanErr, decErr)
			}
			if len(fs) != tc.wantTo-tc.wantFrom {
				t.Fatalf("DecodeFrames returned %d frames, want %d", len(fs), tc.wantTo-tc.wantFrom)
			}
			ref := base
			ref.From, ref.To = tc.wantFrom, tc.wantTo
			want, _, err := m.Scan(ref)
			if err != nil {
				t.Fatal(err)
			}
			sameResults(t, want, res)
		})
	}
}

// TestDecodeWallExcludesAssembly asserts the timing split: both stats are
// populated, and DecodeWall no longer includes the blitting that
// AssembleWall now reports (the paper's figures plot DecodeWall, so it
// must cover the decode pool drain alone).
func TestDecodeWallExcludesAssembly(t *testing.T) {
	m, _ := newManager(t)
	q := mustQuery(t, "SELECT car OR person FROM traffic WHERE 0 <= t < 30")
	res, st, err := m.Scan(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	if st.DecodeWall <= 0 || st.AssembleWall <= 0 {
		t.Fatalf("DecodeWall = %v, AssembleWall = %v; both must be measured", st.DecodeWall, st.AssembleWall)
	}
	fs, dst, err := m.DecodeFrames("traffic", 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 30 {
		t.Fatalf("%d frames", len(fs))
	}
	if dst.DecodeWall <= 0 || dst.AssembleWall <= 0 {
		t.Fatalf("DecodeFrames DecodeWall = %v, AssembleWall = %v", dst.DecodeWall, dst.AssembleWall)
	}
}

// TestRetilePointerRefreshFailure is the regression test for the
// committed-swap/failed-refresh case: RetileSOT must retry the refresh,
// surface a distinct *PointerRefreshError when it keeps failing (the tile
// swap is already live), and RepairPointers must bring the box→tile
// pointers back in line with the live layout.
func TestRetilePointerRefreshFailure(t *testing.T) {
	m, _ := newManager(t)
	meta, err := m.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	l, err := layout.Uniform(1, 2, m.cfg.Constraints(meta.W, meta.H))
	if err != nil {
		t.Fatal(err)
	}
	injected := errors.New("injected index failure")
	calls := 0
	m.refreshHook = func(string) error { calls++; return injected }

	_, err = m.RetileSOT("traffic", 0, l)
	var pre *PointerRefreshError
	if !errors.As(err, &pre) {
		t.Fatalf("error is %T (%v), want *PointerRefreshError", err, err)
	}
	if pre.Video != "traffic" || pre.SOT != 0 || !errors.Is(err, injected) {
		t.Fatalf("error fields: %+v", pre)
	}
	if calls != 2 {
		t.Fatalf("refresh attempted %d times, want retry (2)", calls)
	}

	// The swap committed despite the failure: the live layout is the new
	// one and scans over the SOT still work.
	meta, err = m.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	if !meta.SOTs[0].L.Equal(l) || meta.SOTs[0].Retiles != 1 {
		t.Fatalf("swap not committed: %+v", meta.SOTs[0])
	}
	if _, _, err := m.Scan(mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 10")); err != nil {
		t.Fatalf("scan after failed refresh: %v", err)
	}

	// Repair and verify every pointer matches the live layout.
	m.refreshHook = nil
	if err := m.RepairPointers("traffic"); err != nil {
		t.Fatal(err)
	}
	assertPointersMatchLayout(t, m, "traffic", 0, 1, 2)
}

// TestRetilePointerRefreshRetrySucceeds asserts a transient refresh
// failure is absorbed by the retry: no error escapes and the pointers
// match the live layout.
func TestRetilePointerRefreshRetrySucceeds(t *testing.T) {
	m, _ := newManager(t)
	meta, _ := m.Meta("traffic")
	l, err := layout.Uniform(1, 2, m.cfg.Constraints(meta.W, meta.H))
	if err != nil {
		t.Fatal(err)
	}
	first := true
	m.refreshHook = func(string) error {
		if first {
			first = false
			return errors.New("transient")
		}
		return nil
	}
	if _, err := m.RetileSOT("traffic", 0, l); err != nil {
		t.Fatalf("retry did not absorb transient failure: %v", err)
	}
	assertPointersMatchLayout(t, m, "traffic", 0)
}

// assertPointersMatchLayout checks that every indexed detection in the
// given SOTs has a materialized tile pointer naming exactly the tiles its
// box intersects in the SOT's live layout.
func assertPointersMatchLayout(t *testing.T, m *Manager, video string, sotIDs ...int) {
	t.Helper()
	meta, err := m.Meta(video)
	if err != nil {
		t.Fatal(err)
	}
	labels, err := m.index.Labels(video)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	for _, id := range sotIDs {
		want[id] = true
	}
	checked := 0
	for _, sot := range meta.SOTs {
		if !want[sot.ID] {
			continue
		}
		for _, label := range labels {
			entries, err := m.index.Lookup(video, label, sot.From, sot.To)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				if e.Pointer == nil {
					t.Fatalf("SOT %d %s frame %d: pointer not materialized", sot.ID, label, e.Frame)
				}
				if int(e.Pointer.SOT) != sot.ID {
					t.Fatalf("SOT %d %s frame %d: pointer names SOT %d", sot.ID, label, e.Frame, e.Pointer.SOT)
				}
				want := sot.L.TilesIntersecting(e.Box)
				if len(want) != len(e.Pointer.Tiles) {
					t.Fatalf("SOT %d %s frame %d: pointer tiles %v, layout says %v", sot.ID, label, e.Frame, e.Pointer.Tiles, want)
				}
				for i, ti := range want {
					if int(e.Pointer.Tiles[i]) != ti {
						t.Fatalf("SOT %d %s frame %d: pointer tiles %v, layout says %v", sot.ID, label, e.Frame, e.Pointer.Tiles, want)
					}
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no pointers checked")
	}
}

// TestConcurrentRetilesSerialize issues conflicting retiles of the same
// video from many goroutines; all must succeed (serialized), and the
// final state must be consistent: manifest, disk, and fsck agree.
func TestConcurrentRetilesSerialize(t *testing.T) {
	m := newCachedManager(t, 8<<20, 2)
	meta, _ := m.Meta("traffic")
	cons := m.Config().Constraints(meta.W, meta.H)
	l12, _ := layout.Uniform(1, 2, cons)
	l21, _ := layout.Uniform(2, 1, cons)
	l22, _ := layout.Uniform(2, 2, cons)
	layouts := []layout.Layout{l12, l21, l22}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for sot := 0; sot < 3; sot++ {
				if _, err := m.RetileSOT("traffic", sot, layouts[(w+sot)%len(layouts)]); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	rep, err := m.store.FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("store inconsistent after concurrent retiles: %v", rep.Problems)
	}
	if len(rep.Orphans) != 0 {
		t.Fatalf("unreaped versions with no leases held: %v", rep.Orphans)
	}
	// Each SOT absorbed one retile per worker.
	meta, _ = m.Meta("traffic")
	for _, sot := range meta.SOTs {
		if sot.Retiles != 3 {
			t.Fatalf("SOT %d Retiles = %d, want 3", sot.ID, sot.Retiles)
		}
	}
	if _, _, err := m.Scan(mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 30")); err != nil {
		t.Fatal(err)
	}
}
