package core

import (
	"context"
	"fmt"

	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/tasmerr"
	"github.com/tasm-repro/tasm/internal/tilestore"
)

// ScanObservation describes one planned query-path request: the query with
// its frame range already clamped to the video, and how many SOTs the plan
// touches. Whole-frame requests (DecodeFrames / FrameCursor) carry an empty
// predicate — they contribute range heat for cache decisions but no label
// evidence for re-tiling.
type ScanObservation struct {
	Query query.Query
	SOTs  int
}

// QueryObserver receives every query-path request the manager plans —
// streaming cursors, the materializing wrappers that drain them, and
// therefore every remote request served over them. Implementations must be
// cheap and non-blocking: ObserveScan and HotRange run on the query path
// itself, before the first tile decode.
type QueryObserver interface {
	// ObserveScan records one planned request. Called once per cursor
	// construction, after range clamping and index planning succeed.
	ObserveScan(ScanObservation)
	// HotRange reports whether the observed workload has touched frames
	// [from, to) of video before this request. Cache admission consults it
	// to skip caching one-off sweeps: a range never queried twice does not
	// earn cache residency (an explicit request budget overrides).
	HotRange(video string, from, to int) bool
	// ForgetVideo drops all observation state for a video. The manager
	// calls it when the video is deleted or (re-)ingested, so stale
	// evidence cannot drive decisions about frames that no longer exist.
	ForgetVideo(video string)
}

// SetQueryObserver installs the observation hook. It must be called before
// the manager serves requests (tasm.Open wires it immediately after
// core.Open); installing an observer mid-traffic is not synchronized.
func (m *Manager) SetQueryObserver(o QueryObserver) { m.observer = o }

// observeScan feeds one planned request to the observer, if installed.
func (m *Manager) observeScan(q query.Query, from, to, sots int) {
	if m.observer == nil {
		return
	}
	q.From, q.To = from, to
	m.observer.ObserveScan(ScanObservation{Query: q, SOTs: sots})
}

// admitObserved is the workload-aware half of cache admission: with an
// observer installed, only ranges the workload has queried before earn
// cache residency — a one-off sweep decodes and moves on without evicting
// the repeatedly-queried working set. Requests carrying an explicit cache
// budget opted into their own admission policy and bypass the heat check.
func (m *Manager) admitObserved(ctx context.Context, video string, sot tilestore.SOTMeta) bool {
	if m.observer == nil || hasCacheBudget(ctx) {
		return true
	}
	return m.observer.HotRange(video, sot.From, sot.To)
}

// PinSOT marks one SOT's cached decodes as eviction-protected (no-op
// without a cache); UnpinSOT lifts it. The background re-tiler pins the
// hot SOTs it just warmed.
func (m *Manager) PinSOT(video string, sotID int) { m.cache.Pin(video, sotID) }

// UnpinSOT removes a SOT's eviction protection.
func (m *Manager) UnpinSOT(video string, sotID int) { m.cache.Unpin(video, sotID) }

// WarmSOTContext decodes every tile of one SOT through the decoded-tile
// cache so subsequent queries hit warm entries — the re-tiler calls it
// after committing a new layout for a hot SOT, trading background decode
// work for query-path latency. A no-op without a cache. Admission is
// forced (the background warm is itself the admission decision), and the
// decode runs under a snapshot lease like any read.
func (m *Manager) WarmSOTContext(ctx context.Context, video string, sotID int) (ScanStats, error) {
	var st ScanStats
	if m.cache == nil {
		return st, nil
	}
	meta, lease, err := m.store.SnapshotContext(ctx, video)
	if err != nil {
		return st, err
	}
	defer lease.Release()
	for _, sot := range meta.SOTs {
		if sot.ID != sotID {
			continue
		}
		st.SOTsTouched = 1
		// An effectively unlimited explicit budget forces admission past
		// the observer's heat gate and keeps the warm out of singleflight
		// leadership (see decodeTilePrefix).
		wctx := WithCacheAdmissionBudget(ctx, 1<<62)
		for ti := 0; ti < sot.L.NumTiles(); ti++ {
			_, r := m.decodeTilePrefix(wctx, video, lease, sot, ti, sot.NumFrames())
			if r.err != nil {
				return st, r.err
			}
			m.foldDecodeStats(&st, r)
		}
		return st, nil
	}
	return st, fmt.Errorf("core: %w: video %q has no SOT %d", tasmerr.ErrSOTNotFound, video, sotID)
}
