package core

import (
	"testing"

	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/scene"
)

// benchManager ingests a longer video (12 SOTs) so cross-SOT fan-out has
// work to spread.
func benchManager(b *testing.B, budget int64, parallelism int) (*Manager, query.Query) {
	b.Helper()
	cfg := testConfig()
	cfg.Codec.GOPLength = 5
	cfg.CacheBudget = budget
	cfg.Parallelism = parallelism
	m, err := Open(b.TempDir(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { m.Close() })
	v, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 6,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: 77,
	})
	if err != nil {
		b.Fatal(err)
	}
	frames := v.Frames(0, v.Spec.NumFrames())
	if _, err := m.Ingest("traffic", frames, v.Spec.FPS); err != nil {
		b.Fatal(err)
	}
	for f := 0; f < v.Spec.NumFrames(); f++ {
		for _, tr := range v.GroundTruth(f) {
			if err := m.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				b.Fatal(err)
			}
		}
	}
	q, err := query.Parse("SELECT car FROM traffic WHERE 0 <= t < 60")
	if err != nil {
		b.Fatal(err)
	}
	return m, q
}

// BenchmarkScanCold measures repeated region scans with the decoded-tile
// cache disabled: every iteration re-reads and re-decodes from disk (the
// paper prototype's behavior).
func BenchmarkScanCold(b *testing.B) {
	m, q := benchManager(b, 0, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Scan(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanWarm measures the same repeated scans served from the
// decoded-tile cache (one warming scan before the clock starts).
func BenchmarkScanWarm(b *testing.B) {
	m, q := benchManager(b, 256<<20, 1)
	if _, _, err := m.Scan(q); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, st, err := m.Scan(q); err != nil {
			b.Fatal(err)
		} else if st.TilesDecoded != 0 {
			b.Fatalf("warm scan decoded %d tiles", st.TilesDecoded)
		}
	}
}

// BenchmarkScanMultiSOT measures one cold scan spanning all 12 SOTs at
// different parallelism levels. The seed processed SOTs strictly
// sequentially, so this could not improve with parallelism when each SOT
// needed few tiles.
func BenchmarkScanMultiSOT(b *testing.B) {
	for _, p := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "p1", 2: "p2", 4: "p4"}[p], func(b *testing.B) {
			m, q := benchManager(b, 0, p)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.Scan(q); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecodeFramesWarm measures the detector input path against a
// warm cache.
func BenchmarkDecodeFramesWarm(b *testing.B) {
	m, _ := benchManager(b, 256<<20, 2)
	if _, _, err := m.DecodeFrames("traffic", 0, 60); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.DecodeFrames("traffic", 0, 60); err != nil {
			b.Fatal(err)
		}
	}
}
