package costmodel

import (
	"math"
	"testing"
	"time"

	"github.com/tasm-repro/tasm/internal/stats"
)

// plantSamples synthesizes decode timings from known coefficients with a
// small multiplicative noise term, mimicking the paper's calibration sweep.
func plantSamples(rng *stats.RNG, beta, gamma, noise float64, n int) []Sample {
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		px := int64(50_000 + rng.Intn(8_000_000))
		tl := 1 + rng.Intn(40)
		sec := beta*float64(px) + gamma*float64(tl)
		sec *= 1 + noise*(rng.Float64()-0.5)
		samples = append(samples, Sample{Pixels: px, Tiles: tl, Elapsed: time.Duration(sec * 1e9)})
	}
	return samples
}

// TestCalibrateRecoversPlantedCoefficients is a property test: for many
// randomly drawn (β, γ) pairs spanning two orders of magnitude, OLS over
// noisy synthetic timings must recover both coefficients within tolerance
// and report R² near 1 (the paper reports 0.996 over 1,400 combinations).
func TestCalibrateRecoversPlantedCoefficients(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		rng := stats.NewRNG(seed)
		trueBeta := 5e-9 * math.Pow(10, 1.5*rng.Float64())   // 5–158 ns/pixel
		trueGamma := 20e-6 * math.Pow(10, 1.5*rng.Float64()) // 20–632 µs/tile
		samples := plantSamples(rng, trueBeta, trueGamma, 0.01, 400)

		m, rep := Calibrate(samples)
		if rep.Samples != len(samples) {
			t.Fatalf("seed %d: Samples = %d, want %d", seed, rep.Samples, len(samples))
		}
		if rep.R2 < 0.99 || m.R2 != rep.R2 {
			t.Errorf("seed %d: R2 = %f, want > 0.99", seed, rep.R2)
		}
		if rel := math.Abs(m.Beta-trueBeta) / trueBeta; rel > 0.1 {
			t.Errorf("seed %d: Beta = %g, want ~%g (off %.1f%%)", seed, m.Beta, trueBeta, 100*rel)
		}
		if rel := math.Abs(m.Gamma-trueGamma) / trueGamma; rel > 0.25 {
			t.Errorf("seed %d: Gamma = %g, want ~%g (off %.1f%%)", seed, m.Gamma, trueGamma, 100*rel)
		}
		if m.EncPerPixel != Default().EncPerPixel {
			t.Errorf("seed %d: Calibrate must preserve the encode rate", seed)
		}
	}
}

// TestCalibrateNoiseDegradesR2 checks the R² report is honest: heavy noise
// must lower it relative to a clean fit on the same coefficient pair.
func TestCalibrateNoiseDegradesR2(t *testing.T) {
	clean, cleanRep := Calibrate(plantSamples(stats.NewRNG(3), 40e-9, 100e-6, 0.001, 200))
	_, noisyRep := Calibrate(plantSamples(stats.NewRNG(3), 40e-9, 100e-6, 0.8, 200))
	if cleanRep.R2 <= noisyRep.R2 {
		t.Errorf("clean R2 %f should exceed noisy R2 %f", cleanRep.R2, noisyRep.R2)
	}
	if cleanRep.R2 < 0.999 {
		t.Errorf("near-noiseless fit R2 = %f, want ~1", cleanRep.R2)
	}
	if clean.Beta <= 0 || clean.Gamma < 0 {
		t.Errorf("fit produced non-physical coefficients: β=%g γ=%g", clean.Beta, clean.Gamma)
	}
}

// TestCalibrateConstantPredictor is the degenerate case: every sample has
// identical predictors, the normal-equation matrix is singular, and
// Calibrate must fall back to the default model instead of producing
// garbage coefficients.
func TestCalibrateConstantPredictor(t *testing.T) {
	rng := stats.NewRNG(9)
	var samples []Sample
	for i := 0; i < 50; i++ {
		samples = append(samples, Sample{
			Pixels:  1_000_000,
			Tiles:   4,
			Elapsed: time.Duration(float64(time.Millisecond) * (40 + 10*rng.Float64())),
		})
	}
	m, rep := Calibrate(samples)
	if m != Default() {
		t.Errorf("constant-predictor calibration must keep defaults, got %+v", m)
	}
	if rep.Samples != 50 {
		t.Errorf("Samples = %d, want 50", rep.Samples)
	}

	// Collinear predictors (tiles exactly proportional to pixels) are just
	// as singular and must also be rejected.
	var collinear []Sample
	for i := 1; i <= 50; i++ {
		collinear = append(collinear, Sample{
			Pixels:  int64(i) * 100_000,
			Tiles:   i,
			Elapsed: time.Duration(i) * time.Millisecond,
		})
	}
	if m, _ := Calibrate(collinear); m != Default() {
		t.Errorf("collinear calibration must keep defaults, got %+v", m)
	}
}
