// Package costmodel implements TASM's decode cost model (paper §4.1):
//
//	C(s, q, L) = β·P(s, q, L) + γ·T(s, q, L)
//
// where P counts pixels decoded and T counts tile-decode sessions. The
// package computes P and T for a query under a layout, evaluates C, exposes
// the "what-if" interface used by every tiling policy, estimates re-encode
// cost R(s, L), and calibrates β and γ by ordinary least squares against
// live decode timings (the paper fits the same linear model over 1,400
// combinations and reports R² = 0.996).
package costmodel

import (
	"time"

	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/stats"
)

// Model holds calibrated cost coefficients. Costs are expressed in seconds.
type Model struct {
	// Beta is the decode cost per pixel (the β coefficient).
	Beta float64
	// Gamma is the fixed cost per tile-decode session (the γ coefficient).
	Gamma float64
	// EncPerPixel is the encode cost per pixel, used for the re-encode
	// cost R(s, L) consulted by the regret policy.
	EncPerPixel float64
	// R2 reports the goodness of fit from calibration (0 for defaults).
	R2 float64
}

// Default returns coefficients measured for this repository's pure-Go codec
// on a contemporary x86 core. Calibrate refits them for the local machine.
func Default() Model {
	return Model{
		Beta:        42e-9,  // ~24M pixels/second decode
		Gamma:       120e-6, // per-tile stream setup + container parse
		EncPerPixel: 85e-9,  // ~12M pixels/second encode
	}
}

// QueryFrames describes what a query needs from one SOT: for each frame
// offset within the SOT (0-based), the pixel regions it must retrieve.
type QueryFrames map[int][]geom.Rect

// Demand summarizes the decode work a query induces on a SOT under a
// layout.
type Demand struct {
	// Pixels is P(s,q,L): total pixels decoded. A tile needed at frame
	// offset k must be decoded from the SOT's keyframe (frame 0) through
	// k, so its contribution is tileArea × (lastNeeded+1).
	Pixels int64
	// Tiles is T(s,q,L): the number of tile-decode sessions opened.
	Tiles int
}

// ComputeDemand returns P and T for a query over a SOT encoded with layout
// l. q maps frame offsets within the SOT to requested regions.
func ComputeDemand(l layout.Layout, q QueryFrames) Demand {
	lastNeeded := map[int]int{} // tile index -> last frame offset needed
	for off, boxes := range q {
		if off < 0 {
			continue
		}
		for _, b := range boxes {
			for _, ti := range l.TilesIntersecting(b) {
				if cur, ok := lastNeeded[ti]; !ok || off > cur {
					lastNeeded[ti] = off
				}
			}
		}
	}
	var d Demand
	for ti, last := range lastNeeded {
		d.Pixels += l.TileRectByIndex(ti).Area() * int64(last+1)
		d.Tiles++
	}
	return d
}

// QueryCost evaluates C(s,q,L) in seconds.
func (m Model) QueryCost(l layout.Layout, q QueryFrames) float64 {
	d := ComputeDemand(l, q)
	return m.Beta*float64(d.Pixels) + m.Gamma*float64(d.Tiles)
}

// Delta returns the estimated improvement ∆(q, L, L') = C(s,q,L) − C(s,q,L')
// of switching from layout l to alt for this query: positive when alt is
// faster.
func (m Model) Delta(l, alt layout.Layout, q QueryFrames) float64 {
	return m.QueryCost(l, q) - m.QueryCost(alt, q)
}

// EncodeCost estimates R(s, L): the cost of re-encoding a SOT of nFrames
// w×h frames with layout l. Tiled encodes pay for padded tile areas.
func (m Model) EncodeCost(l layout.Layout, nFrames int) float64 {
	var pixels int64
	for i := 0; i < l.NumTiles(); i++ {
		r := l.TileRectByIndex(i)
		pixels += int64(padUp(r.Width(), 16)) * int64(padUp(r.Height(), 16))
	}
	return m.EncPerPixel * float64(pixels) * float64(nFrames)
}

func padUp(v, m int) int { return (v + m - 1) / m * m }

// PixelRatio returns P(s,q,L) / P(s,q,ω): the fraction of the untiled
// decode work a layout still performs. The paper's "do not tile" rule
// (§3.4.4) skips layouts with ratio above α = 0.8.
func PixelRatio(l layout.Layout, q QueryFrames) float64 {
	w, h := l.Width(), l.Height()
	tiled := ComputeDemand(l, q)
	untiled := ComputeDemand(layout.Single(w, h), q)
	if untiled.Pixels == 0 {
		return 1
	}
	return float64(tiled.Pixels) / float64(untiled.Pixels)
}

// DefaultAlpha is the pixel-ratio threshold above which tiling is judged
// unhelpful; the paper finds 0.8 captures nearly all regressions (Fig. 10).
const DefaultAlpha = 0.8

// Sample is one calibration observation: a measured decode under a known
// demand.
type Sample struct {
	Pixels  int64
	Tiles   int
	Elapsed time.Duration
}

// FitReport summarizes a calibration.
type FitReport struct {
	Samples int
	R2      float64
}

// Fit performs the paper's linear-model fit over measured samples and
// returns an updated model (β and γ replaced; encode rate preserved).
func (m Model) Fit(samples []Sample) (Model, FitReport) {
	if len(samples) < 2 {
		return m, FitReport{Samples: len(samples)}
	}
	y := make([]float64, len(samples))
	px := make([]float64, len(samples))
	tl := make([]float64, len(samples))
	for i, s := range samples {
		y[i] = s.Elapsed.Seconds()
		px[i] = float64(s.Pixels)
		tl[i] = float64(s.Tiles)
	}
	fit := stats.FitLinearNoIntercept(y, px, tl)
	if len(fit.Coef) != 2 || fit.Coef[0] <= 0 {
		return m, FitReport{Samples: len(samples), R2: fit.R2}
	}
	out := m
	out.Beta = fit.Coef[0]
	out.Gamma = fit.Coef[1]
	if out.Gamma < 0 {
		out.Gamma = 0
	}
	out.R2 = fit.R2
	return out, FitReport{Samples: len(samples), R2: fit.R2}
}

// Calibrate fits β and γ from scratch against measured decode timings: the
// default coefficients refined by OLS over the samples. It is the entry
// point the paper's §5 calibration uses (1,400 combinations, R² = 0.996);
// Model.Fit refines an existing model instead of the defaults.
func Calibrate(samples []Sample) (Model, FitReport) {
	return Default().Fit(samples)
}

// FitEncode refits the per-pixel encode rate from (pixels, elapsed) pairs.
func (m Model) FitEncode(pixels []int64, elapsed []time.Duration) Model {
	if len(pixels) == 0 || len(pixels) != len(elapsed) {
		return m
	}
	var sumXY, sumXX float64
	for i := range pixels {
		x := float64(pixels[i])
		sumXY += x * elapsed[i].Seconds()
		sumXX += x * x
	}
	if sumXX == 0 {
		return m
	}
	out := m
	out.EncPerPixel = sumXY / sumXX
	return out
}
