package costmodel

import (
	"math"
	"testing"
	"time"

	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/stats"
)

func uniform(rows, cols, w, h int) layout.Layout {
	l, err := layout.Uniform(rows, cols, layout.DefaultConstraints(w, h))
	if err != nil {
		panic(err)
	}
	return l
}

func TestComputeDemandSingleTile(t *testing.T) {
	l := layout.Single(640, 360)
	q := QueryFrames{
		0: {geom.R(0, 0, 10, 10)},
		4: {geom.R(100, 100, 120, 120)},
	}
	d := ComputeDemand(l, q)
	if d.Tiles != 1 {
		t.Errorf("Tiles = %d, want 1", d.Tiles)
	}
	// One tile needed through frame 4: 5 frames of full-frame pixels.
	if want := int64(640*360) * 5; d.Pixels != want {
		t.Errorf("Pixels = %d, want %d", d.Pixels, want)
	}
}

func TestComputeDemandSubsetOfTiles(t *testing.T) {
	l := uniform(2, 2, 640, 360)
	// Box only in the top-left tile, needed at frame 2.
	q := QueryFrames{2: {geom.R(10, 10, 50, 50)}}
	d := ComputeDemand(l, q)
	if d.Tiles != 1 {
		t.Errorf("Tiles = %d, want 1", d.Tiles)
	}
	tileArea := l.TileRectByIndex(0).Area()
	if want := tileArea * 3; d.Pixels != want {
		t.Errorf("Pixels = %d, want %d", d.Pixels, want)
	}
}

func TestComputeDemandMultiFrameMax(t *testing.T) {
	l := uniform(2, 2, 640, 360)
	q := QueryFrames{
		0: {geom.R(10, 10, 50, 50)},     // tile 0
		5: {geom.R(10, 10, 50, 50)},     // tile 0 again, later
		1: {geom.R(400, 200, 500, 300)}, // tile 3
	}
	d := ComputeDemand(l, q)
	if d.Tiles != 2 {
		t.Errorf("Tiles = %d, want 2", d.Tiles)
	}
	want := l.TileRectByIndex(0).Area()*6 + l.TileRectByIndex(3).Area()*2
	if d.Pixels != want {
		t.Errorf("Pixels = %d, want %d", d.Pixels, want)
	}
}

func TestComputeDemandEmpty(t *testing.T) {
	l := uniform(2, 2, 640, 360)
	d := ComputeDemand(l, QueryFrames{})
	if d.Pixels != 0 || d.Tiles != 0 {
		t.Errorf("empty demand = %+v", d)
	}
	d = ComputeDemand(l, QueryFrames{3: nil})
	if d.Pixels != 0 || d.Tiles != 0 {
		t.Errorf("no-box demand = %+v", d)
	}
}

func TestQueryCostOrdering(t *testing.T) {
	m := Default()
	small := QueryFrames{0: {geom.R(0, 0, 40, 40)}}
	// A layout isolating the box should cost less than the untiled layout.
	tiled := uniform(3, 3, 640, 360)
	untiled := layout.Single(640, 360)
	if m.QueryCost(tiled, small) >= m.QueryCost(untiled, small) {
		t.Error("tiled layout not cheaper for a small query")
	}
	if m.Delta(untiled, tiled, small) <= 0 {
		t.Error("Delta should be positive when alt is faster")
	}
	if m.Delta(tiled, untiled, small) >= 0 {
		t.Error("Delta should be negative when alt is slower")
	}
}

func TestPixelRatio(t *testing.T) {
	l := uniform(2, 2, 640, 360)
	q := QueryFrames{0: {geom.R(0, 0, 40, 40)}}
	r := PixelRatio(l, q)
	want := float64(l.TileRectByIndex(0).Area()) / float64(640*360)
	if math.Abs(r-want) > 1e-9 {
		t.Errorf("ratio = %f, want %f", r, want)
	}
	// Full-frame query: ratio 1.
	q = QueryFrames{0: {geom.R(0, 0, 640, 360)}}
	if r := PixelRatio(l, q); r != 1 {
		t.Errorf("full query ratio = %f", r)
	}
	// No boxes: defined as 1 (tiling cannot help).
	if r := PixelRatio(l, QueryFrames{}); r != 1 {
		t.Errorf("empty ratio = %f", r)
	}
}

func TestEncodeCost(t *testing.T) {
	m := Default()
	untiled := layout.Single(640, 360)
	c1 := m.EncodeCost(untiled, 30)
	if c1 <= 0 {
		t.Fatal("encode cost not positive")
	}
	// More tiles -> padding overhead -> higher encode cost.
	tiled := uniform(4, 4, 640, 360)
	c2 := m.EncodeCost(tiled, 30)
	if c2 < c1 {
		t.Errorf("tiled encode %f cheaper than untiled %f", c2, c1)
	}
	// Cost scales with frames.
	if m.EncodeCost(untiled, 60) <= c1 {
		t.Error("encode cost does not scale with frames")
	}
}

func TestFitRecoversCoefficients(t *testing.T) {
	trueBeta, trueGamma := 40e-9, 100e-6
	rng := stats.NewRNG(7)
	var samples []Sample
	for i := 0; i < 200; i++ {
		px := int64(10000 + rng.Intn(5_000_000))
		tl := 1 + rng.Intn(30)
		sec := trueBeta*float64(px) + trueGamma*float64(tl)
		sec *= 1 + 0.02*(rng.Float64()-0.5) // 2% noise
		samples = append(samples, Sample{Pixels: px, Tiles: tl, Elapsed: time.Duration(sec * 1e9)})
	}
	m, rep := Default().Fit(samples)
	if rep.Samples != 200 {
		t.Errorf("Samples = %d", rep.Samples)
	}
	if rep.R2 < 0.99 {
		t.Errorf("R2 = %f, want > 0.99 (paper reports 0.996)", rep.R2)
	}
	if math.Abs(m.Beta-trueBeta)/trueBeta > 0.1 {
		t.Errorf("Beta = %g, want ~%g", m.Beta, trueBeta)
	}
	if math.Abs(m.Gamma-trueGamma)/trueGamma > 0.25 {
		t.Errorf("Gamma = %g, want ~%g", m.Gamma, trueGamma)
	}
}

func TestFitDegenerate(t *testing.T) {
	m := Default()
	m2, rep := m.Fit(nil)
	if m2 != m || rep.Samples != 0 {
		t.Error("empty fit should return the model unchanged")
	}
	m2, _ = m.Fit([]Sample{{Pixels: 100, Tiles: 1, Elapsed: time.Millisecond}})
	if m2 != m {
		t.Error("single-sample fit should return the model unchanged")
	}
}

func TestFitEncode(t *testing.T) {
	m := Default()
	pixels := []int64{1_000_000, 2_000_000, 4_000_000}
	elapsed := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	m2 := m.FitEncode(pixels, elapsed)
	if math.Abs(m2.EncPerPixel-100e-9)/100e-9 > 0.01 {
		t.Errorf("EncPerPixel = %g, want 1e-7", m2.EncPerPixel)
	}
	if m.FitEncode(nil, nil) != m {
		t.Error("empty FitEncode changed model")
	}
}

func TestDefaultAlphaValue(t *testing.T) {
	if DefaultAlpha != 0.8 {
		t.Errorf("alpha = %v, paper uses 0.8", DefaultAlpha)
	}
}
