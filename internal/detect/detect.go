// Package detect simulates the object detectors the paper evaluates
// (§3.3, §5.2.4): full YOLOv3 (accurate, expensive), YOLOv3-tiny (fast,
// low recall), and OpenCV-style KNN background subtraction (foreground
// blobs; fails under camera motion and misses static objects). Detections
// are derived from the scene generator's ground truth with per-detector
// noise models, and each detector reports a simulated per-frame latency
// calibrated to the hardware the paper cites (embedded GPUs run full
// YOLOv3 at up to 16 FPS; capture is 30 FPS).
package detect

import (
	"time"

	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/semindex"
	"github.com/tasm-repro/tasm/internal/stats"
)

// Detector produces labeled bounding boxes for frames of a synthetic video.
type Detector interface {
	// Name identifies the detector in experiment output.
	Name() string
	// Detect returns the detections for frame t and the simulated
	// processing latency a real deployment would pay for that frame.
	Detect(v *scene.Video, t int) ([]semindex.Detection, time.Duration)
}

// Latencies models per-frame detector costs (server-class GPU for the
// VDBMS; the edge profile scales them up).
type Latencies struct {
	Full  time.Duration // full YOLOv3
	Tiny  time.Duration // YOLOv3-tiny
	BgSub time.Duration // KNN background subtraction
}

// DefaultLatencies reflects the ratios in the paper's setting: full-model
// inference is an order of magnitude more expensive than decode, tiny is
// ~6x cheaper than full, background subtraction cheaper still.
func DefaultLatencies() Latencies {
	return Latencies{
		Full:  50 * time.Millisecond,
		Tiny:  8 * time.Millisecond,
		BgSub: 5 * time.Millisecond,
	}
}

// EdgeLatencies models an embedded GPU: full YOLOv3 at ~16 FPS (paper cites
// Hossain & Lee 2019).
func EdgeLatencies() Latencies {
	return Latencies{
		Full:  62 * time.Millisecond, // ~16 FPS
		Tiny:  12 * time.Millisecond,
		BgSub: 8 * time.Millisecond,
	}
}

// Oracle simulates full YOLOv3: high recall, tight boxes with small
// localization noise.
type Oracle struct {
	Lat  Latencies
	Seed uint64
}

// Name implements Detector.
func (o *Oracle) Name() string { return "yolov3" }

// Detect implements Detector.
func (o *Oracle) Detect(v *scene.Video, t int) ([]semindex.Detection, time.Duration) {
	rng := frameRNG(o.Seed, v.Spec.Seed, t)
	var out []semindex.Detection
	for _, tr := range v.GroundTruth(t) {
		if rng.Float64() < 0.02 { // 2% miss rate
			continue
		}
		out = append(out, semindex.Detection{
			Frame: t,
			Label: tr.Label,
			Box:   jitterBox(tr.Box, rng, 0.03, v.Spec.W, v.Spec.H),
		})
	}
	return out, o.Lat.Full
}

// Tiny simulates YOLOv3-tiny: it misses most small objects and localizes
// loosely, which is why layouts built from its detections perform poorly
// (§5.2.4: median improvement only ~16%).
type Tiny struct {
	Lat  Latencies
	Seed uint64
}

// Name implements Detector.
func (d *Tiny) Name() string { return "yolov3-tiny" }

// Detect implements Detector.
func (d *Tiny) Detect(v *scene.Video, t int) ([]semindex.Detection, time.Duration) {
	rng := frameRNG(d.Seed^0xABCD, v.Spec.Seed, t)
	frameArea := float64(v.Spec.W * v.Spec.H)
	var out []semindex.Detection
	for _, tr := range v.GroundTruth(t) {
		rel := float64(tr.Box.Area()) / frameArea
		// Small objects are mostly missed; large ones usually found.
		missP := 0.85
		switch {
		case rel > 0.05:
			missP = 0.25
		case rel > 0.015:
			missP = 0.55
		}
		if rng.Float64() < missP {
			continue
		}
		out = append(out, semindex.Detection{
			Frame: t,
			Label: tr.Label,
			Box:   jitterBox(tr.Box, rng, 0.12, v.Spec.W, v.Spec.H),
		})
	}
	return out, d.Lat.Tiny
}

// BgSubLabel is the generic label produced by background subtraction
// (foreground blobs carry no class information).
const BgSubLabel = "object"

// BackgroundSub simulates KNN background subtraction: it reports moving
// foreground blobs with a generic label. Static objects are invisible to
// it, and camera pan makes the background itself "move", producing huge
// spurious foreground regions — the failure mode the paper observes
// (layouts from it performed 3% worse than not tiling).
type BackgroundSub struct {
	Lat  Latencies
	Seed uint64
}

// Name implements Detector.
func (d *BackgroundSub) Name() string { return "bgsub-knn" }

// Detect implements Detector.
func (d *BackgroundSub) Detect(v *scene.Video, t int) ([]semindex.Detection, time.Duration) {
	rng := frameRNG(d.Seed^0x5150, v.Spec.Seed, t)
	var out []semindex.Detection
	if v.Spec.CameraPan != 0 {
		// Moving camera: most of the frame classified as foreground, in a
		// few large spurious blobs.
		w, h := v.Spec.W, v.Spec.H
		n := 2 + rng.Intn(2)
		for i := 0; i < n; i++ {
			x0 := rng.Intn(w / 4)
			y0 := rng.Intn(h / 4)
			out = append(out, semindex.Detection{
				Frame: t,
				Label: BgSubLabel,
				Box:   geom.R(x0, y0, x0+w*3/5+rng.Intn(w/5), y0+h*3/5+rng.Intn(h/5)).Clamp(geom.R(0, 0, w, h)),
			})
		}
		return out, d.Lat.BgSub
	}
	gt := v.GroundTruth(t)
	prev := map[string]geom.Rect{}
	if t > 0 {
		for i, tr := range v.GroundTruth(t - 1) {
			prev[trackKey(tr, i)] = tr.Box
		}
	}
	for i, tr := range gt {
		// Static objects blend into the learned background.
		if pb, ok := prev[trackKey(tr, i)]; ok && pb == tr.Box {
			continue
		}
		// Foreground masks bleed: blobs are inflated and sometimes merged.
		b := tr.Box.Inset(-4 - rng.Intn(6)).Clamp(geom.R(0, 0, v.Spec.W, v.Spec.H))
		out = append(out, semindex.Detection{Frame: t, Label: BgSubLabel, Box: b})
	}
	return out, d.Lat.BgSub
}

func trackKey(tr scene.Truth, i int) string { return tr.Label + string(rune('0'+i%64)) }

// EveryN wraps a detector and runs it only on every n-th frame, the paper's
// strategy for keeping expensive models within an edge camera's compute
// budget (§5.2.4 evaluates n = 5). Other frames return no detections and no
// latency.
type EveryN struct {
	Inner Detector
	N     int
}

// Name implements Detector.
func (d *EveryN) Name() string { return d.Inner.Name() + "-every" + string(rune('0'+d.N)) }

// Detect implements Detector.
func (d *EveryN) Detect(v *scene.Video, t int) ([]semindex.Detection, time.Duration) {
	if d.N > 1 && t%d.N != 0 {
		return nil, 0
	}
	return d.Inner.Detect(v, t)
}

// Run applies det to frames [from, to) of v, returning all detections and
// the total simulated latency. This is the ingest-time "eager detection"
// path and the edge camera's capture loop.
func Run(det Detector, v *scene.Video, from, to int) ([]semindex.Detection, time.Duration) {
	var out []semindex.Detection
	var total time.Duration
	for t := from; t < to; t++ {
		ds, lat := det.Detect(v, t)
		out = append(out, ds...)
		total += lat
	}
	return out, total
}

// jitterBox perturbs a box by up to frac of its dimensions, clamped to the
// frame and kept non-empty.
func jitterBox(b geom.Rect, rng *stats.RNG, frac float64, w, h int) geom.Rect {
	dx := int(frac * float64(b.Width()))
	dy := int(frac * float64(b.Height()))
	j := func(d int) int {
		if d <= 0 {
			return 0
		}
		return rng.Intn(2*d+1) - d
	}
	out := geom.R(b.X0+j(dx), b.Y0+j(dy), b.X1+j(dx), b.Y1+j(dy)).Clamp(geom.R(0, 0, w, h))
	if out.Empty() {
		return b.Clamp(geom.R(0, 0, w, h))
	}
	return out
}

// frameRNG derives a deterministic RNG for (detector, video, frame).
func frameRNG(seed, videoSeed uint64, t int) *stats.RNG {
	return stats.NewRNG(seed*0x9E3779B1 + videoSeed*0x85EBCA77 + uint64(t)*0xC2B2AE3D + 1)
}
