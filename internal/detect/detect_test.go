package detect

import (
	"testing"
	"time"

	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/scene"
)

func testVideo(t *testing.T, pan float64) *scene.Video {
	t.Helper()
	v, err := scene.Generate(scene.Spec{
		Name: "dt", W: 320, H: 180, FPS: 10, DurationSec: 4,
		CameraPan: pan,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 3, SizeFrac: 0.12},
			{Class: scene.Person, Count: 3, SizeFrac: 0.25},
			{Class: scene.TrafficLight, Count: 1, SizeFrac: 0.08},
		},
		Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestOracleHighRecall(t *testing.T) {
	v := testVideo(t, 0)
	o := &Oracle{Lat: DefaultLatencies()}
	var found, truth int
	for f := 0; f < 40; f++ {
		ds, lat := o.Detect(v, f)
		if lat != DefaultLatencies().Full {
			t.Fatalf("latency = %v", lat)
		}
		found += len(ds)
		truth += len(v.GroundTruth(f))
	}
	recall := float64(found) / float64(truth)
	if recall < 0.95 {
		t.Errorf("oracle recall = %.2f, want >= 0.95", recall)
	}
	// Boxes must be close to ground truth (high IoU).
	ds, _ := o.Detect(v, 0)
	gt := v.GroundTruth(0)
	for _, d := range ds {
		best := 0.0
		for _, tr := range gt {
			if tr.Label != d.Label {
				continue
			}
			if iou := iou(d.Box, tr.Box); iou > best {
				best = iou
			}
		}
		if best < 0.6 {
			t.Errorf("oracle box %v has IoU %.2f with truth", d.Box, best)
		}
	}
}

func TestOracleDeterministic(t *testing.T) {
	v := testVideo(t, 0)
	o1 := &Oracle{Lat: DefaultLatencies(), Seed: 3}
	o2 := &Oracle{Lat: DefaultLatencies(), Seed: 3}
	a, _ := o1.Detect(v, 5)
	b, _ := o2.Detect(v, 5)
	if len(a) != len(b) {
		t.Fatal("non-deterministic detection count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic detection")
		}
	}
}

func TestTinyLowerRecall(t *testing.T) {
	v := testVideo(t, 0)
	oracle := &Oracle{Lat: DefaultLatencies()}
	tiny := &Tiny{Lat: DefaultLatencies()}
	var nOracle, nTiny int
	for f := 0; f < 40; f++ {
		a, _ := oracle.Detect(v, f)
		b, latTiny := tiny.Detect(v, f)
		nOracle += len(a)
		nTiny += len(b)
		if latTiny >= DefaultLatencies().Full {
			t.Fatal("tiny not faster than full")
		}
	}
	if nTiny >= nOracle*3/4 {
		t.Errorf("tiny found %d vs oracle %d; expected much lower recall", nTiny, nOracle)
	}
	if nTiny == 0 {
		t.Error("tiny found nothing at all")
	}
}

func TestBackgroundSubStaticCamera(t *testing.T) {
	v := testVideo(t, 0)
	d := &BackgroundSub{Lat: DefaultLatencies()}
	ds, lat := d.Detect(v, 10)
	if lat != DefaultLatencies().BgSub {
		t.Errorf("latency = %v", lat)
	}
	for _, det := range ds {
		if det.Label != BgSubLabel {
			t.Errorf("label = %q, want %q", det.Label, BgSubLabel)
		}
	}
	// Static traffic light should not be detected: count distinct truth
	// objects vs blobs — blobs should cover moving objects only, so at
	// most len(gt)-1 (the static light is missed).
	gt := v.GroundTruth(10)
	if len(ds) > len(gt) {
		t.Errorf("bgsub found %d blobs for %d objects on a static camera", len(ds), len(gt))
	}
}

func TestBackgroundSubCameraPanProducesHugeBlobs(t *testing.T) {
	v := testVideo(t, 0.6)
	d := &BackgroundSub{Lat: DefaultLatencies()}
	ds, _ := d.Detect(v, 10)
	if len(ds) == 0 {
		t.Fatal("no blobs under camera pan")
	}
	var covered int64
	var boxes []geom.Rect
	for _, det := range ds {
		boxes = append(boxes, det.Box)
	}
	covered = geom.TotalArea(boxes)
	frac := float64(covered) / float64(320*180)
	if frac < 0.3 {
		t.Errorf("pan blobs cover only %.2f of frame; expected spurious large foreground", frac)
	}
}

func TestEveryN(t *testing.T) {
	v := testVideo(t, 0)
	inner := &Oracle{Lat: DefaultLatencies()}
	d := &EveryN{Inner: inner, N: 5}
	var withDet, without int
	var totalLat time.Duration
	for f := 0; f < 20; f++ {
		ds, lat := d.Detect(v, f)
		totalLat += lat
		if f%5 == 0 {
			if len(ds) == 0 {
				t.Errorf("frame %d: expected detections", f)
			}
			withDet++
		} else {
			if len(ds) != 0 || lat != 0 {
				t.Errorf("frame %d: unexpected work", f)
			}
			without++
		}
	}
	if withDet != 4 || without != 16 {
		t.Errorf("split = %d/%d", withDet, without)
	}
	if want := 4 * DefaultLatencies().Full; totalLat != want {
		t.Errorf("total latency = %v, want %v", totalLat, want)
	}
}

func TestRunAccumulates(t *testing.T) {
	v := testVideo(t, 0)
	o := &Oracle{Lat: DefaultLatencies()}
	ds, lat := Run(o, v, 0, 10)
	if len(ds) == 0 {
		t.Fatal("Run found nothing")
	}
	if lat != 10*DefaultLatencies().Full {
		t.Errorf("latency = %v", lat)
	}
	frames := map[int]bool{}
	for _, d := range ds {
		frames[d.Frame] = true
		if d.Frame < 0 || d.Frame >= 10 {
			t.Errorf("detection outside range: frame %d", d.Frame)
		}
	}
	if len(frames) < 9 {
		t.Errorf("detections on only %d frames", len(frames))
	}
}

func TestEdgeLatenciesSlower(t *testing.T) {
	if EdgeLatencies().Full <= DefaultLatencies().Full {
		t.Error("edge full-model latency should exceed server latency")
	}
	// Edge cannot keep up with 30fps capture using the full model: that is
	// the premise of the every-N strategy.
	if EdgeLatencies().Full < 34*time.Millisecond {
		t.Error("edge latency unexpectedly fast")
	}
}

func TestDetectorNames(t *testing.T) {
	for _, tc := range []struct {
		d    Detector
		want string
	}{
		{&Oracle{}, "yolov3"},
		{&Tiny{}, "yolov3-tiny"},
		{&BackgroundSub{}, "bgsub-knn"},
		{&EveryN{Inner: &Oracle{}, N: 5}, "yolov3-every5"},
	} {
		if got := tc.d.Name(); got != tc.want {
			t.Errorf("Name = %q, want %q", got, tc.want)
		}
	}
}

func TestJitterBoxStaysInFrame(t *testing.T) {
	v := testVideo(t, 0)
	o := &Oracle{Lat: DefaultLatencies()}
	frameRect := geom.R(0, 0, 320, 180)
	for f := 0; f < 40; f++ {
		ds, _ := o.Detect(v, f)
		for _, d := range ds {
			if d.Box.Empty() {
				t.Fatalf("empty detection box at frame %d", f)
			}
			if !frameRect.Contains(d.Box) {
				t.Fatalf("box %v escapes frame", d.Box)
			}
		}
	}
}

func iou(a, b geom.Rect) float64 {
	inter := float64(a.Intersect(b).Area())
	union := float64(a.Area()+b.Area()) - inter
	if union == 0 {
		return 0
	}
	return inter / union
}
