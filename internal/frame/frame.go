// Package frame provides the raw (decoded) video frame representation used
// throughout the reproduction: planar YCbCr with 4:2:0 chroma subsampling,
// the same sampling structure consumer HEVC video uses. It also implements
// the quality metrics (MSE / PSNR) with which the paper evaluates tiled
// output (Figure 6(b)).
package frame

import (
	"fmt"
	"math"

	"github.com/tasm-repro/tasm/internal/geom"
)

// Frame is a planar YCbCr 4:2:0 picture. Y has W×H samples; Cb and Cr each
// have (W/2)×(H/2). Width and Height must be even (the codec additionally
// requires block alignment, handled at encode time by padding).
type Frame struct {
	W, H      int
	Y, Cb, Cr []byte
}

// New allocates a zeroed frame of the given even dimensions.
func New(w, h int) *Frame {
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("frame: invalid dimensions %dx%d (must be positive and even)", w, h))
	}
	return &Frame{
		W: w, H: h,
		Y:  make([]byte, w*h),
		Cb: make([]byte, (w/2)*(h/2)),
		Cr: make([]byte, (w/2)*(h/2)),
	}
}

// Bounds returns the frame rectangle [0,W)x[0,H).
func (f *Frame) Bounds() geom.Rect { return geom.R(0, 0, f.W, f.H) }

// Clone returns a deep copy of f.
func (f *Frame) Clone() *Frame {
	g := New(f.W, f.H)
	copy(g.Y, f.Y)
	copy(g.Cb, f.Cb)
	copy(g.Cr, f.Cr)
	return g
}

// Fill sets every sample to the given YCbCr color.
func (f *Frame) Fill(y, cb, cr byte) {
	for i := range f.Y {
		f.Y[i] = y
	}
	for i := range f.Cb {
		f.Cb[i] = cb
		f.Cr[i] = cr
	}
}

// SetYRect fills the luma plane inside r (clamped to the frame).
func (f *Frame) SetYRect(r geom.Rect, y byte) {
	r = r.Clamp(f.Bounds())
	for yy := r.Y0; yy < r.Y1; yy++ {
		row := f.Y[yy*f.W : yy*f.W+f.W]
		for xx := r.X0; xx < r.X1; xx++ {
			row[xx] = y
		}
	}
}

// FillRect fills all three planes inside r (clamped; chroma at half rate).
func (f *Frame) FillRect(r geom.Rect, y, cb, cr byte) {
	f.SetYRect(r, y)
	r = r.Clamp(f.Bounds())
	cw := f.W / 2
	for yy := r.Y0 / 2; yy < (r.Y1+1)/2; yy++ {
		for xx := r.X0 / 2; xx < (r.X1+1)/2; xx++ {
			f.Cb[yy*cw+xx] = cb
			f.Cr[yy*cw+xx] = cr
		}
	}
}

// YAt returns the luma sample at (x, y) without bounds checking beyond the
// slice's own.
func (f *Frame) YAt(x, y int) byte { return f.Y[y*f.W+x] }

// SetY sets the luma sample at (x, y).
func (f *Frame) SetY(x, y int, v byte) { f.Y[y*f.W+x] = v }

// Crop returns a new frame holding the samples of f inside r. The rectangle
// is clamped to the frame and snapped outward to even coordinates so the
// chroma planes stay aligned.
func (f *Frame) Crop(r geom.Rect) *Frame {
	r = snapEven(r.Clamp(f.Bounds()))
	if r.Empty() {
		panic("frame: Crop of empty rectangle")
	}
	out := New(r.Width(), r.Height())
	out.blitFrom(f, r, 0, 0)
	return out
}

// Blit copies src into f with src's top-left placed at (dx, dy). Regions
// falling outside f are clipped. dx and dy must be even.
func (f *Frame) Blit(src *Frame, dx, dy int) {
	if dx%2 != 0 || dy%2 != 0 {
		panic("frame: Blit offsets must be even for 4:2:0 alignment")
	}
	srcRect := geom.R(0, 0, src.W, src.H)
	// Clip against destination bounds.
	dstRect := geom.R(dx, dy, dx+src.W, dy+src.H).Clamp(f.Bounds())
	if dstRect.Empty() {
		return
	}
	srcRect = geom.R(dstRect.X0-dx, dstRect.Y0-dy, dstRect.X1-dx, dstRect.Y1-dy)
	// Luma rows.
	for row := 0; row < srcRect.Height(); row++ {
		sOff := (srcRect.Y0+row)*src.W + srcRect.X0
		dOff := (dstRect.Y0+row)*f.W + dstRect.X0
		copy(f.Y[dOff:dOff+srcRect.Width()], src.Y[sOff:sOff+srcRect.Width()])
	}
	// Chroma rows.
	scw, dcw := src.W/2, f.W/2
	cw, ch := srcRect.Width()/2, srcRect.Height()/2
	for row := 0; row < ch; row++ {
		sOff := (srcRect.Y0/2+row)*scw + srcRect.X0/2
		dOff := (dstRect.Y0/2+row)*dcw + dstRect.X0/2
		copy(f.Cb[dOff:dOff+cw], src.Cb[sOff:sOff+cw])
		copy(f.Cr[dOff:dOff+cw], src.Cr[sOff:sOff+cw])
	}
}

func (f *Frame) blitFrom(src *Frame, r geom.Rect, dx, dy int) {
	for row := 0; row < r.Height(); row++ {
		sOff := (r.Y0+row)*src.W + r.X0
		dOff := (dy+row)*f.W + dx
		copy(f.Y[dOff:dOff+r.Width()], src.Y[sOff:sOff+r.Width()])
	}
	scw, dcw := src.W/2, f.W/2
	cw, ch := r.Width()/2, r.Height()/2
	for row := 0; row < ch; row++ {
		sOff := (r.Y0/2+row)*scw + r.X0/2
		dOff := (dy/2+row)*dcw + dx/2
		copy(f.Cb[dOff:dOff+cw], src.Cb[sOff:sOff+cw])
		copy(f.Cr[dOff:dOff+cw], src.Cr[sOff:sOff+cw])
	}
}

// PadTo returns a frame of dimensions (w, h) >= (f.W, f.H) with f's content
// in the top-left and edge samples replicated into the padding, the standard
// codec treatment for non-aligned picture sizes. Returns f itself if no
// padding is needed.
func (f *Frame) PadTo(w, h int) *Frame {
	if w == f.W && h == f.H {
		return f
	}
	if w < f.W || h < f.H {
		panic("frame: PadTo target smaller than frame")
	}
	out := New(w, h)
	f.PadInto(out)
	return out
}

// PadInto writes f's content into out (which must be at least as large in
// both dimensions) with edge samples replicated into the padding, reusing
// out's allocation. Every sample of out is overwritten. This is the
// steady-state encoder path: one padded scratch frame per encoder instead
// of one allocation per encoded frame.
func (f *Frame) PadInto(out *Frame) {
	w, h := out.W, out.H
	if w < f.W || h < f.H {
		panic("frame: PadInto target smaller than frame")
	}
	out.Blit(f, 0, 0)
	// Replicate right edge.
	for y := 0; y < f.H; y++ {
		edge := f.Y[y*f.W+f.W-1]
		for x := f.W; x < w; x++ {
			out.Y[y*w+x] = edge
		}
	}
	// Replicate bottom edge (including the corner).
	for y := f.H; y < h; y++ {
		copy(out.Y[y*w:(y+1)*w], out.Y[(f.H-1)*w:f.H*w])
	}
	padChroma := func(dst, src []byte, sw, sh, dw, dh int) {
		for y := 0; y < sh; y++ {
			copy(dst[y*dw:y*dw+sw], src[y*sw:y*sw+sw])
			edge := src[y*sw+sw-1]
			for x := sw; x < dw; x++ {
				dst[y*dw+x] = edge
			}
		}
		for y := sh; y < dh; y++ {
			copy(dst[y*dw:(y+1)*dw], dst[(sh-1)*dw:sh*dw])
		}
	}
	padChroma(out.Cb, f.Cb, f.W/2, f.H/2, w/2, h/2)
	padChroma(out.Cr, f.Cr, f.W/2, f.H/2, w/2, h/2)
}

// snapEven expands r outward so all coordinates are even.
func snapEven(r geom.Rect) geom.Rect {
	r.X0 &^= 1
	r.Y0 &^= 1
	if r.X1%2 != 0 {
		r.X1++
	}
	if r.Y1%2 != 0 {
		r.Y1++
	}
	return r
}

// MSE returns the mean squared error between the Y planes of a and b,
// which must have identical dimensions.
func MSE(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic(fmt.Sprintf("frame: MSE dimension mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	var sum float64
	for i := range a.Y {
		d := float64(a.Y[i]) - float64(b.Y[i])
		sum += d * d
	}
	return sum / float64(len(a.Y))
}

// PSNR returns the luma peak signal-to-noise ratio between a and b in dB.
// Identical frames yield +Inf.
func PSNR(a, b *Frame) float64 {
	mse := MSE(a, b)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}

// SequencePSNR returns the PSNR computed over the concatenated luma planes
// of two equal-length frame sequences, the way the paper reports whole-video
// quality.
func SequencePSNR(a, b []*Frame) float64 {
	if len(a) != len(b) {
		panic("frame: SequencePSNR length mismatch")
	}
	if len(a) == 0 {
		return math.Inf(1)
	}
	var sum float64
	var n int64
	for i := range a {
		if a[i].W != b[i].W || a[i].H != b[i].H {
			panic("frame: SequencePSNR dimension mismatch")
		}
		for j := range a[i].Y {
			d := float64(a[i].Y[j]) - float64(b[i].Y[j])
			sum += d * d
		}
		n += int64(len(a[i].Y))
	}
	mse := sum / float64(n)
	if mse == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(255*255/mse)
}
