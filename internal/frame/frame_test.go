package frame

import (
	"math"
	"testing"

	"github.com/tasm-repro/tasm/internal/geom"
)

func TestNewDimensions(t *testing.T) {
	f := New(64, 32)
	if len(f.Y) != 64*32 {
		t.Errorf("Y len = %d, want %d", len(f.Y), 64*32)
	}
	if len(f.Cb) != 32*16 || len(f.Cr) != 32*16 {
		t.Errorf("chroma len = %d/%d, want %d", len(f.Cb), len(f.Cr), 32*16)
	}
	if f.Bounds() != geom.R(0, 0, 64, 32) {
		t.Errorf("Bounds = %v", f.Bounds())
	}
}

func TestNewPanicsOnOdd(t *testing.T) {
	for _, dims := range [][2]int{{63, 32}, {64, 31}, {0, 10}, {-2, 4}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFillAndAt(t *testing.T) {
	f := New(16, 16)
	f.Fill(100, 110, 120)
	if f.YAt(5, 5) != 100 || f.Cb[0] != 110 || f.Cr[0] != 120 {
		t.Error("Fill did not set planes")
	}
	f.SetY(3, 4, 200)
	if f.YAt(3, 4) != 200 {
		t.Error("SetY/YAt mismatch")
	}
}

func TestFillRect(t *testing.T) {
	f := New(32, 32)
	f.Fill(0, 128, 128)
	f.FillRect(geom.R(8, 8, 16, 16), 250, 50, 60)
	if f.YAt(8, 8) != 250 || f.YAt(15, 15) != 250 {
		t.Error("FillRect missed interior")
	}
	if f.YAt(7, 8) != 0 || f.YAt(16, 8) != 0 {
		t.Error("FillRect bled outside")
	}
	// Chroma for pixel (8,8) lives at (4,4).
	if f.Cb[4*16+4] != 50 || f.Cr[4*16+4] != 60 {
		t.Error("FillRect chroma not set")
	}
	// Clamping: fully outside rect is a no-op.
	f.FillRect(geom.R(100, 100, 120, 120), 9, 9, 9)
}

func TestCloneIndependent(t *testing.T) {
	f := New(8, 8)
	f.Fill(10, 20, 30)
	g := f.Clone()
	g.SetY(0, 0, 99)
	if f.YAt(0, 0) == 99 {
		t.Error("Clone shares storage with original")
	}
}

func TestCropAndBlitRoundTrip(t *testing.T) {
	f := New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			f.SetY(x, y, byte(x*3+y*5))
		}
	}
	for i := range f.Cb {
		f.Cb[i] = byte(i)
		f.Cr[i] = byte(i * 2)
	}
	r := geom.R(16, 8, 48, 40)
	c := f.Crop(r)
	if c.W != 32 || c.H != 32 {
		t.Fatalf("crop dims = %dx%d, want 32x32", c.W, c.H)
	}
	if c.YAt(0, 0) != f.YAt(16, 8) {
		t.Error("crop luma origin mismatch")
	}
	if c.YAt(31, 31) != f.YAt(47, 39) {
		t.Error("crop luma end mismatch")
	}
	// Blit it back into a blank frame at the same offset and compare region.
	g := New(64, 64)
	g.Blit(c, 16, 8)
	for y := 8; y < 40; y++ {
		for x := 16; x < 48; x++ {
			if g.YAt(x, y) != f.YAt(x, y) {
				t.Fatalf("blit mismatch at (%d,%d)", x, y)
			}
		}
	}
	// Chroma round trip.
	for y := 4; y < 20; y++ {
		for x := 8; x < 24; x++ {
			if g.Cb[y*32+x] != f.Cb[y*32+x] {
				t.Fatalf("chroma blit mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestCropSnapsOdd(t *testing.T) {
	f := New(32, 32)
	c := f.Crop(geom.R(3, 5, 9, 11))
	// Snapped outward to (2,4)-(10,12): 8x8.
	if c.W != 8 || c.H != 8 {
		t.Errorf("snapped crop dims = %dx%d, want 8x8", c.W, c.H)
	}
}

func TestBlitClipping(t *testing.T) {
	f := New(16, 16)
	src := New(8, 8)
	src.Fill(200, 0, 0)
	f.Blit(src, 12, 12) // bottom-right corner, clipped to 4x4
	if f.YAt(12, 12) != 200 || f.YAt(15, 15) != 200 {
		t.Error("clipped blit missing pixels")
	}
	if f.YAt(11, 11) != 0 {
		t.Error("clipped blit bled")
	}
	f.Blit(src, 20, 20) // fully outside: no-op, no panic
}

func TestBlitOddOffsetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd blit offset did not panic")
		}
	}()
	New(16, 16).Blit(New(8, 8), 1, 0)
}

func TestPadTo(t *testing.T) {
	f := New(10, 6)
	f.Fill(50, 100, 150)
	f.SetY(9, 5, 77)
	p := f.PadTo(16, 8)
	if p.W != 16 || p.H != 8 {
		t.Fatalf("pad dims = %dx%d", p.W, p.H)
	}
	// Replicated right edge of last row should carry value 77.
	if p.YAt(15, 5) != 77 {
		t.Errorf("right pad = %d, want 77", p.YAt(15, 5))
	}
	// Replicated bottom rows copy row 5 (with its padding).
	if p.YAt(15, 7) != 77 {
		t.Errorf("corner pad = %d, want 77", p.YAt(15, 7))
	}
	if p.YAt(0, 7) != 50 {
		t.Errorf("bottom pad = %d, want 50", p.YAt(0, 7))
	}
	if got := f.PadTo(10, 6); got != f {
		t.Error("PadTo with same dims should return the same frame")
	}
}

func TestMSEPSNR(t *testing.T) {
	a := New(16, 16)
	b := New(16, 16)
	a.Fill(100, 128, 128)
	b.Fill(100, 128, 128)
	if got := MSE(a, b); got != 0 {
		t.Errorf("MSE of identical frames = %v", got)
	}
	if got := PSNR(a, b); !math.IsInf(got, 1) {
		t.Errorf("PSNR of identical frames = %v, want +Inf", got)
	}
	b.Fill(110, 128, 128) // every sample off by 10 -> MSE 100
	if got := MSE(a, b); got != 100 {
		t.Errorf("MSE = %v, want 100", got)
	}
	want := 10 * math.Log10(255*255/100.0)
	if got := PSNR(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("PSNR = %v, want %v", got, want)
	}
}

func TestSequencePSNR(t *testing.T) {
	a := []*Frame{New(8, 8), New(8, 8)}
	b := []*Frame{New(8, 8), New(8, 8)}
	a[0].Fill(100, 0, 0)
	b[0].Fill(100, 0, 0)
	a[1].Fill(100, 0, 0)
	b[1].Fill(90, 0, 0) // second frame off by 10 -> overall MSE 50
	want := 10 * math.Log10(255*255/50.0)
	if got := SequencePSNR(a, b); math.Abs(got-want) > 1e-9 {
		t.Errorf("SequencePSNR = %v, want %v", got, want)
	}
	if got := SequencePSNR(nil, nil); !math.IsInf(got, 1) {
		t.Errorf("empty SequencePSNR = %v, want +Inf", got)
	}
}

func TestMSEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MSE with mismatched dims did not panic")
		}
	}()
	MSE(New(8, 8), New(16, 16))
}
