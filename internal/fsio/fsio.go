// Package fsio is the tilestore's filesystem seam. Every mutation the
// store performs — writing tile and manifest files, committing version
// directories by rename, syncing files and parent directories — goes
// through the FS interface, so one implementation (OS) provides real
// durability via fsync discipline while another (MemFS) models a
// power-cut at any operation index for deterministic crash testing.
//
// The interface deliberately separates WriteFile from SyncFile and
// exposes SyncDir: crash consistency lives in the *ordering* of these
// calls (write → sync file → rename → sync parent dir), and keeping
// them as distinct operations is what gives the fault injector a
// crashpoint between every pair.
package fsio

import (
	"os"
)

// FS is the set of filesystem operations the tilestore performs.
// Implementations must return errors wrapping os.ErrNotExist for
// missing paths, as os does, so errors.Is(err, os.ErrNotExist) works
// identically against every implementation.
type FS interface {
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// WriteFile writes data to a file, creating or truncating it. The
	// data is NOT durable until SyncFile returns; a crash may leave the
	// file absent, empty, or holding its previous synced content.
	WriteFile(path string, data []byte, perm os.FileMode) error
	// SyncFile flushes a file's content to stable storage.
	SyncFile(path string) error
	// SyncDir flushes a directory's entries (creations, renames,
	// removals of its children) to stable storage.
	SyncDir(path string) error
	// Rename atomically replaces newpath with oldpath. Durability of
	// the rename requires syncing the parent directory (directories,
	// for a cross-directory rename).
	Rename(oldpath, newpath string) error
	// Remove removes a file or empty directory.
	Remove(path string) error
	// RemoveAll removes a path and any children; missing paths are not
	// an error.
	RemoveAll(path string) error
	// ReadFile returns a file's content.
	ReadFile(path string) ([]byte, error)
	// ReadDir returns a directory's entries sorted by name.
	ReadDir(path string) ([]os.DirEntry, error)
	// Stat describes a path.
	Stat(path string) (os.FileInfo, error)
}

// OS is the production FS: the real filesystem with full fsync
// discipline. WriteFile alone gives no durability promise (matching
// the interface contract); callers order SyncFile/SyncDir explicitly.
type OS struct{}

func (OS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (OS) WriteFile(path string, data []byte, perm os.FileMode) error {
	return os.WriteFile(path, data, perm)
}

func (OS) SyncFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (OS) SyncDir(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (OS) Remove(path string) error             { return os.Remove(path) }
func (OS) RemoveAll(path string) error          { return os.RemoveAll(path) }
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }
func (OS) ReadDir(path string) ([]os.DirEntry, error) { return os.ReadDir(path) }
func (OS) Stat(path string) (os.FileInfo, error)      { return os.Stat(path) }

var _ FS = OS{}
