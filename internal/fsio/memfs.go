package fsio

import (
	"fmt"
	"io/fs"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrCrashed is returned by every operation after a MemFS power-cut
// fires (CrashAt) until Recover is called. The whole process is
// "powered off": even the error-path cleanup of the code under test
// fails, exactly as it would after a real power cut.
var ErrCrashed = fmt.Errorf("fsio: simulated power cut")

// ErrInjected is the default error returned by operations selected
// with FailOp.
var ErrInjected = fmt.Errorf("fsio: injected fault")

// ErrTornWrite is returned by a WriteFile torn with TearWrite; the
// file is left holding only the prefix of the data.
var ErrTornWrite = fmt.Errorf("fsio: torn write")

// MemFS is an in-memory FS that models power-cut durability
// semantics for deterministic crash testing:
//
//   - File data written with WriteFile lives only in the "current"
//     view until SyncFile copies it to the durable view. A crash
//     reverts every file to its last synced content (empty if never
//     synced).
//   - Directory entries — creations, renames, removals — live in the
//     current view until SyncDir snapshots the directory's entry
//     table. A crash reverts each directory to its last synced entry
//     set, which resurrects unsynced removals and un-does unsynced
//     renames, entry by entry, like a journaling filesystem replaying
//     only the transactions that reached the log.
//
// Fault injection is keyed by a deterministic operation counter that
// increments on every mutating operation (MkdirAll, WriteFile,
// SyncFile, SyncDir, Rename, Remove, RemoveAll): CrashAt(n) power-cuts
// the filesystem at the nth mutation (the operation fails without
// taking effect, and everything after it fails with ErrCrashed until
// Recover), FailOp(n, err) makes the nth mutation fail transiently,
// and TearWrite(n, off) truncates the nth mutation — which must be a
// WriteFile — to its first off bytes.
//
// MemFS is safe for concurrent use.
type MemFS struct {
	mu   sync.Mutex
	root *memNode

	ops     int
	crashAt int // power-cut at the ops'th mutation; 0 = disabled
	crashed bool
	failAt  map[int]error
	tearAt  int
	tearOff int
}

type memNode struct {
	dir      bool
	children map[string]*memNode // current entry table (dirs)
	durable  map[string]*memNode // last synced entry table (dirs)
	data     []byte              // current content (files)
	synced   []byte              // last synced content (files)
	mode     os.FileMode
}

// NewMemFS returns an empty MemFS whose root directory exists and is
// durable (it models a pre-existing mount point).
func NewMemFS() *MemFS {
	return &MemFS{root: newDir(0o755)}
}

func newDir(mode os.FileMode) *memNode {
	return &memNode{dir: true, children: map[string]*memNode{}, durable: map[string]*memNode{}, mode: mode}
}

// CrashAt arms a power-cut at the nth mutating operation from now
// (1-based). The nth mutation fails with ErrCrashed without taking
// effect, and every subsequent operation — reads included — fails
// with ErrCrashed until Recover is called.
func (m *MemFS) CrashAt(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashAt = m.ops + n
}

// FailOp makes the nth mutating operation from now (1-based) fail
// with err (ErrInjected if nil) without taking effect. Unlike a
// crash, subsequent operations proceed normally. Multiple FailOp
// registrations accumulate.
func (m *MemFS) FailOp(n int, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err == nil {
		err = ErrInjected
	}
	if m.failAt == nil {
		m.failAt = map[int]error{}
	}
	m.failAt[m.ops+n] = err
}

// TearWrite makes the nth mutating operation from now — which must be
// a WriteFile — apply only the first off bytes of its data and return
// ErrTornWrite, modeling a write interrupted mid-flight.
func (m *MemFS) TearWrite(n, off int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tearAt = m.ops + n
	m.tearOff = off
}

// Recover ends a power-cut: the current view of every file and
// directory is replaced by its durable view (unsynced writes vanish,
// unsynced removals and renames revert), and operations are accepted
// again. Calling Recover without a crash first simulates an
// instantaneous power cycle.
func (m *MemFS) Recover() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
	m.crashAt = 0
	m.root = recoverNode(m.root)
}

// Ops returns the number of mutating operations performed so far —
// the crashpoint space for an exhaustive power-cut sweep.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// recoverNode rebuilds the post-crash state of a node from durable
// views only. Nodes reachable solely through unsynced entries are
// dropped; nodes whose removal was never synced reappear.
func recoverNode(n *memNode) *memNode {
	if !n.dir {
		data := append([]byte(nil), n.synced...)
		return &memNode{data: data, synced: append([]byte(nil), n.synced...), mode: n.mode}
	}
	out := newDir(n.mode)
	for name, child := range n.durable {
		c := recoverNode(child)
		out.children[name] = c
		out.durable[name] = c
	}
	return out
}

// begin accounts one mutating operation and returns the error it must
// fail with, if any.
func (m *MemFS) begin() error {
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	if m.crashAt != 0 && m.ops >= m.crashAt {
		m.crashed = true
		return ErrCrashed
	}
	if err, ok := m.failAt[m.ops]; ok {
		delete(m.failAt, m.ops)
		return err
	}
	return nil
}

// split normalizes a path into its components relative to the root.
func split(p string) []string {
	p = path.Clean(filepath.ToSlash(p))
	p = strings.TrimPrefix(p, "/")
	if p == "" || p == "." {
		return nil
	}
	return strings.Split(p, "/")
}

// walk resolves a path to its node, or nil when any component is
// missing or a non-directory is traversed.
func (m *MemFS) walk(p string) *memNode {
	n := m.root
	for _, c := range split(p) {
		if n == nil || !n.dir {
			return nil
		}
		n = n.children[c]
	}
	return n
}

// walkParent resolves a path's parent directory and leaf name.
func (m *MemFS) walkParent(p string) (*memNode, string) {
	parts := split(p)
	if len(parts) == 0 {
		return nil, ""
	}
	n := m.root
	for _, c := range parts[:len(parts)-1] {
		if n == nil || !n.dir {
			return nil, ""
		}
		n = n.children[c]
	}
	if n == nil || !n.dir {
		return nil, ""
	}
	return n, parts[len(parts)-1]
}

func notExist(op, p string) error {
	return &os.PathError{Op: op, Path: p, Err: os.ErrNotExist}
}

func (m *MemFS) MkdirAll(p string, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.begin(); err != nil {
		return err
	}
	n := m.root
	for _, c := range split(p) {
		child := n.children[c]
		if child == nil {
			child = newDir(perm)
			n.children[c] = child
		} else if !child.dir {
			return &os.PathError{Op: "mkdir", Path: p, Err: fmt.Errorf("not a directory")}
		}
		n = child
	}
	return nil
}

func (m *MemFS) WriteFile(p string, data []byte, perm os.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.begin(); err != nil {
		return err
	}
	torn := false
	if m.tearAt != 0 && m.ops == m.tearAt {
		if off := m.tearOff; off < len(data) {
			data = data[:off]
		}
		torn = true
		m.tearAt = 0
	}
	parent, name := m.walkParent(p)
	if parent == nil {
		return notExist("open", p)
	}
	n := parent.children[name]
	if n == nil {
		n = &memNode{mode: perm}
		parent.children[name] = n
	} else if n.dir {
		return &os.PathError{Op: "open", Path: p, Err: fmt.Errorf("is a directory")}
	}
	n.data = append([]byte(nil), data...)
	if torn {
		return &os.PathError{Op: "write", Path: p, Err: ErrTornWrite}
	}
	return nil
}

func (m *MemFS) SyncFile(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.begin(); err != nil {
		return err
	}
	n := m.walk(p)
	if n == nil {
		return notExist("sync", p)
	}
	if n.dir {
		n.durable = copyEntries(n.children)
		return nil
	}
	n.synced = append([]byte(nil), n.data...)
	return nil
}

func (m *MemFS) SyncDir(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.begin(); err != nil {
		return err
	}
	n := m.walk(p)
	if n == nil || !n.dir {
		return notExist("sync", p)
	}
	n.durable = copyEntries(n.children)
	return nil
}

func copyEntries(in map[string]*memNode) map[string]*memNode {
	out := make(map[string]*memNode, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func (m *MemFS) Rename(oldp, newp string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.begin(); err != nil {
		return err
	}
	op, oname := m.walkParent(oldp)
	if op == nil || op.children[oname] == nil {
		return &os.LinkError{Op: "rename", Old: oldp, New: newp, Err: os.ErrNotExist}
	}
	np, nname := m.walkParent(newp)
	if np == nil {
		return &os.LinkError{Op: "rename", Old: oldp, New: newp, Err: os.ErrNotExist}
	}
	n := op.children[oname]
	if ex := np.children[nname]; ex != nil && ex.dir && len(ex.children) > 0 {
		return &os.LinkError{Op: "rename", Old: oldp, New: newp, Err: fmt.Errorf("directory not empty")}
	}
	delete(op.children, oname)
	np.children[nname] = n
	return nil
}

func (m *MemFS) Remove(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.begin(); err != nil {
		return err
	}
	parent, name := m.walkParent(p)
	if parent == nil || parent.children[name] == nil {
		return notExist("remove", p)
	}
	if n := parent.children[name]; n.dir && len(n.children) > 0 {
		return &os.PathError{Op: "remove", Path: p, Err: fmt.Errorf("directory not empty")}
	}
	delete(parent.children, name)
	return nil
}

func (m *MemFS) RemoveAll(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.begin(); err != nil {
		return err
	}
	parent, name := m.walkParent(p)
	if parent == nil {
		return nil
	}
	delete(parent.children, name)
	return nil
}

func (m *MemFS) ReadFile(p string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	n := m.walk(p)
	if n == nil {
		return nil, notExist("open", p)
	}
	if n.dir {
		return nil, &os.PathError{Op: "read", Path: p, Err: fmt.Errorf("is a directory")}
	}
	return append([]byte(nil), n.data...), nil
}

func (m *MemFS) ReadDir(p string) ([]os.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	n := m.walk(p)
	if n == nil {
		return nil, notExist("open", p)
	}
	if !n.dir {
		return nil, &os.PathError{Op: "readdir", Path: p, Err: fmt.Errorf("not a directory")}
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]os.DirEntry, len(names))
	for i, name := range names {
		out[i] = memDirEntry{name: name, node: n.children[name]}
	}
	return out, nil
}

func (m *MemFS) Stat(p string) (os.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	n := m.walk(p)
	if n == nil {
		return nil, notExist("stat", p)
	}
	return memFileInfo{name: path.Base(filepath.ToSlash(p)), node: n}, nil
}

var _ FS = (*MemFS)(nil)

type memFileInfo struct {
	name string
	node *memNode
}

func (fi memFileInfo) Name() string { return fi.name }
func (fi memFileInfo) Size() int64  { return int64(len(fi.node.data)) }
func (fi memFileInfo) Mode() os.FileMode {
	if fi.node.dir {
		return fi.node.mode | os.ModeDir
	}
	return fi.node.mode
}
func (fi memFileInfo) ModTime() time.Time { return time.Time{} }
func (fi memFileInfo) IsDir() bool        { return fi.node.dir }
func (fi memFileInfo) Sys() any           { return nil }

type memDirEntry struct {
	name string
	node *memNode
}

func (de memDirEntry) Name() string { return de.name }
func (de memDirEntry) IsDir() bool  { return de.node.dir }
func (de memDirEntry) Type() fs.FileMode {
	if de.node.dir {
		return fs.ModeDir
	}
	return 0
}
func (de memDirEntry) Info() (fs.FileInfo, error) {
	return memFileInfo{name: de.name, node: de.node}, nil
}
