package fsio

import (
	"errors"
	"os"
	"testing"
)

func write(t *testing.T, fs FS, path, data string) {
	t.Helper()
	if err := fs.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatalf("WriteFile(%s): %v", path, err)
	}
}

func readStr(t *testing.T, fs FS, path string) string {
	t.Helper()
	data, err := fs.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile(%s): %v", path, err)
	}
	return string(data)
}

func TestMemFSBasics(t *testing.T) {
	m := NewMemFS()
	if err := m.MkdirAll("/store/v/d", 0o755); err != nil {
		t.Fatal(err)
	}
	write(t, m, "/store/v/d/tile0.tsv", "hello")
	if got := readStr(t, m, "/store/v/d/tile0.tsv"); got != "hello" {
		t.Errorf("read back %q", got)
	}
	if _, err := m.ReadFile("/store/absent"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file err = %v, want ErrNotExist", err)
	}
	if _, err := m.Stat("/store/v/d"); err != nil {
		t.Error(err)
	}
	ents, err := m.ReadDir("/store/v/d")
	if err != nil || len(ents) != 1 || ents[0].Name() != "tile0.tsv" || ents[0].IsDir() {
		t.Errorf("ReadDir = %v, %v", ents, err)
	}
	if err := m.Rename("/store/v/d", "/store/v/e"); err != nil {
		t.Fatal(err)
	}
	if got := readStr(t, m, "/store/v/e/tile0.tsv"); got != "hello" {
		t.Errorf("after rename: %q", got)
	}
}

// Unsynced file data does not survive a power cycle; synced data does.
func TestMemFSCrashDropsUnsyncedData(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	m.SyncDir("/") // /d entry durable
	write(t, m, "/d/a", "v1")
	m.SyncFile("/d/a")
	m.SyncDir("/d") // /d/a entry durable with content v1
	write(t, m, "/d/a", "v2")
	write(t, m, "/d/b", "new")
	m.Recover() // power cycle
	if got := readStr(t, m, "/d/a"); got != "v1" {
		t.Errorf("a = %q, want synced v1", got)
	}
	if _, err := m.ReadFile("/d/b"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("unsynced b survived: %v", err)
	}
}

// A file whose entry was synced but whose content never was comes back
// empty — the classic "zero-length file after crash".
func TestMemFSCrashZeroLengthFile(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	m.SyncDir("/")
	write(t, m, "/d/a", "data")
	m.SyncDir("/d") // entry durable, content not
	m.Recover()
	if got := readStr(t, m, "/d/a"); got != "" {
		t.Errorf("a = %q, want empty", got)
	}
}

// An unsynced removal or rename reverts on crash.
func TestMemFSCrashResurrectsUnsyncedRemoval(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	m.SyncDir("/")
	write(t, m, "/d/a", "v1")
	m.SyncFile("/d/a")
	m.SyncDir("/d")
	if err := m.Remove("/d/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReadFile("/d/a"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("remove did not take in current view")
	}
	m.Recover()
	if got := readStr(t, m, "/d/a"); got != "v1" {
		t.Errorf("a after crash = %q, want resurrected v1", got)
	}

	// Rename away, unsynced: reverts to the old name.
	m.Rename("/d/a", "/d/b")
	m.Recover()
	if got := readStr(t, m, "/d/a"); got != "v1" {
		t.Errorf("a after unsynced-rename crash = %q", got)
	}
	if _, err := m.ReadFile("/d/b"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("b should not survive: %v", err)
	}

	// Rename with both sides synced: survives at the new name.
	m.Rename("/d/a", "/d/b")
	m.SyncDir("/d")
	m.Recover()
	if got := readStr(t, m, "/d/b"); got != "v1" {
		t.Errorf("b after synced-rename crash = %q", got)
	}
	if _, err := m.ReadFile("/d/a"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("a should be gone: %v", err)
	}
}

func TestMemFSCrashAt(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755) // op 1
	m.SyncDir("/")          // op 2
	m.CrashAt(2)            // arm: second mutation from now
	write(t, m, "/d/a", "x") // op 3: ok
	if err := m.WriteFile("/d/b", []byte("y"), 0o644); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op at crashpoint = %v, want ErrCrashed", err)
	}
	// Everything fails until recovery, reads included.
	if err := m.Remove("/d/a"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash mutation = %v", err)
	}
	if _, err := m.ReadFile("/d/a"); !errors.Is(err, ErrCrashed) {
		t.Errorf("post-crash read = %v", err)
	}
	m.Recover()
	// a was never synced: gone. d survives (synced into root).
	if _, err := m.ReadFile("/d/a"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("unsynced a survived crash: %v", err)
	}
	if _, err := m.Stat("/d"); err != nil {
		t.Errorf("synced dir lost: %v", err)
	}
}

func TestMemFSFailOpAndTearWrite(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	sentinel := errors.New("boom")
	m.FailOp(1, sentinel)
	if err := m.WriteFile("/d/a", []byte("x"), 0o644); !errors.Is(err, sentinel) {
		t.Fatalf("failed op = %v, want sentinel", err)
	}
	// Transient: the next op succeeds, and the failed one left no trace.
	if _, err := m.ReadFile("/d/a"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("failed write left data: %v", err)
	}
	write(t, m, "/d/a", "recovered")

	m.TearWrite(1, 3)
	if err := m.WriteFile("/d/t", []byte("abcdef"), 0o644); !errors.Is(err, ErrTornWrite) {
		t.Fatalf("torn write = %v", err)
	}
	if got := readStr(t, m, "/d/t"); got != "abc" {
		t.Errorf("torn file = %q, want prefix abc", got)
	}
}
