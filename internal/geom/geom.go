// Package geom provides the rectangle and interval arithmetic shared by the
// layout generator, the semantic index, and the query engine.
//
// All coordinates are integer pixel coordinates. A Rect is half-open:
// it covers x in [X0, X1) and y in [Y0, Y1). This matches how frames are
// sliced into tiles, so adjacent tiles share boundaries without overlapping.
package geom

import (
	"fmt"
	"sort"
)

// Rect is an axis-aligned rectangle covering [X0,X1) x [Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// R is shorthand for constructing a Rect.
func R(x0, y0, x1, y1 int) Rect { return Rect{X0: x0, Y0: y0, X1: x1, Y1: y1} }

// Width returns the horizontal extent of r (0 if empty).
func (r Rect) Width() int {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// Height returns the vertical extent of r (0 if empty).
func (r Rect) Height() int {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns Width*Height.
func (r Rect) Area() int64 { return int64(r.Width()) * int64(r.Height()) }

// Empty reports whether r covers no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		X0: max(r.X0, s.X0), Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1), Y1: min(r.Y1, s.Y1),
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Intersects reports whether r and s share at least one pixel.
func (r Rect) Intersects(s Rect) bool {
	return r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Union returns the smallest rectangle containing both r and s. An empty
// rectangle is the identity element.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X0: min(r.X0, s.X0), Y0: min(r.Y0, s.Y0),
		X1: max(r.X1, s.X1), Y1: max(r.Y1, s.Y1),
	}
}

// Contains reports whether s lies entirely inside r.
func (r Rect) Contains(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.X0 <= s.X0 && r.Y0 <= s.Y0 && s.X1 <= r.X1 && s.Y1 <= r.Y1
}

// ContainsPoint reports whether (x,y) lies inside r.
func (r Rect) ContainsPoint(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{X0: r.X0 + dx, Y0: r.Y0 + dy, X1: r.X1 + dx, Y1: r.Y1 + dy}
}

// Clamp returns r clipped to bounds.
func (r Rect) Clamp(bounds Rect) Rect { return r.Intersect(bounds) }

// Inset shrinks r by d on every side. Negative d grows the rectangle.
func (r Rect) Inset(d int) Rect {
	out := Rect{X0: r.X0 + d, Y0: r.Y0 + d, X1: r.X1 - d, Y1: r.Y1 - d}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// BoundingBox returns the union of all boxes (empty if none).
func BoundingBox(boxes []Rect) Rect {
	var out Rect
	for _, b := range boxes {
		out = out.Union(b)
	}
	return out
}

// TotalArea returns the area of the union of the boxes, counting overlapping
// pixels once. It sweeps x-events and merges y-intervals per slab.
func TotalArea(boxes []Rect) int64 {
	type event struct{ x int }
	xs := make([]int, 0, len(boxes)*2)
	for _, b := range boxes {
		if b.Empty() {
			continue
		}
		xs = append(xs, b.X0, b.X1)
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Ints(xs)
	xs = dedupInts(xs)
	var total int64
	for i := 0; i+1 < len(xs); i++ {
		x0, x1 := xs[i], xs[i+1]
		var spans []Interval
		for _, b := range boxes {
			if b.Empty() || b.X0 >= x1 || b.X1 <= x0 {
				continue
			}
			spans = append(spans, Interval{b.Y0, b.Y1})
		}
		covered := MergeIntervals(spans)
		var h int64
		for _, iv := range covered {
			h += int64(iv.Hi - iv.Lo)
		}
		total += h * int64(x1-x0)
	}
	return total
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// Interval is a half-open integer interval [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Empty reports whether the interval covers nothing.
func (iv Interval) Empty() bool { return iv.Hi <= iv.Lo }

// Len returns Hi-Lo (0 if empty).
func (iv Interval) Len() int {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Intersects reports whether two intervals overlap.
func (iv Interval) Intersects(o Interval) bool { return iv.Lo < o.Hi && o.Lo < iv.Hi }

// MergeIntervals returns the sorted union of the intervals, coalescing any
// overlapping or touching pairs. Empty intervals are dropped. The input is
// not modified.
func MergeIntervals(ivs []Interval) []Interval {
	work := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if !iv.Empty() {
			work = append(work, iv)
		}
	}
	if len(work) == 0 {
		return nil
	}
	sort.Slice(work, func(i, j int) bool {
		if work[i].Lo != work[j].Lo {
			return work[i].Lo < work[j].Lo
		}
		return work[i].Hi < work[j].Hi
	})
	out := work[:1]
	for _, iv := range work[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi { // overlapping or touching
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Gaps returns the maximal intervals inside bounds not covered by the merged
// input intervals. The input need not be merged or sorted.
func Gaps(ivs []Interval, bounds Interval) []Interval {
	merged := MergeIntervals(ivs)
	var out []Interval
	cur := bounds.Lo
	for _, iv := range merged {
		if iv.Hi <= bounds.Lo || iv.Lo >= bounds.Hi {
			continue
		}
		lo, hi := max(iv.Lo, bounds.Lo), min(iv.Hi, bounds.Hi)
		if lo > cur {
			out = append(out, Interval{cur, lo})
		}
		if hi > cur {
			cur = hi
		}
	}
	if cur < bounds.Hi {
		out = append(out, Interval{cur, bounds.Hi})
	}
	return out
}
