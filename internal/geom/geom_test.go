package geom

import (
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := R(10, 20, 30, 60)
	if got := r.Width(); got != 20 {
		t.Errorf("Width = %d, want 20", got)
	}
	if got := r.Height(); got != 40 {
		t.Errorf("Height = %d, want 40", got)
	}
	if got := r.Area(); got != 800 {
		t.Errorf("Area = %d, want 800", got)
	}
	if r.Empty() {
		t.Error("non-empty rect reported Empty")
	}
	if !R(5, 5, 5, 9).Empty() {
		t.Error("zero-width rect not Empty")
	}
	if !R(5, 5, 9, 5).Empty() {
		t.Error("zero-height rect not Empty")
	}
}

func TestIntersect(t *testing.T) {
	tests := []struct {
		a, b, want Rect
	}{
		{R(0, 0, 10, 10), R(5, 5, 15, 15), R(5, 5, 10, 10)},
		{R(0, 0, 10, 10), R(10, 0, 20, 10), Rect{}}, // touching edges do not intersect
		{R(0, 0, 10, 10), R(2, 2, 4, 4), R(2, 2, 4, 4)},
		{R(0, 0, 4, 4), R(6, 6, 9, 9), Rect{}},
	}
	for _, tc := range tests {
		if got := tc.a.Intersect(tc.b); got != tc.want {
			t.Errorf("%v.Intersect(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if got, want := tc.a.Intersects(tc.b), !tc.want.Empty(); got != want {
			t.Errorf("%v.Intersects(%v) = %v, want %v", tc.a, tc.b, got, want)
		}
	}
}

func TestUnionContains(t *testing.T) {
	a, b := R(0, 0, 4, 4), R(10, 10, 12, 20)
	u := a.Union(b)
	if want := R(0, 0, 12, 20); u != want {
		t.Fatalf("Union = %v, want %v", u, want)
	}
	if !u.Contains(a) || !u.Contains(b) {
		t.Error("union does not contain operands")
	}
	if a.Contains(u) {
		t.Error("small rect claims to contain union")
	}
	var empty Rect
	if got := empty.Union(a); got != a {
		t.Errorf("empty.Union(a) = %v, want %v", got, a)
	}
	if !a.Contains(empty) {
		t.Error("every rect should contain the empty rect")
	}
}

func TestTranslateInset(t *testing.T) {
	r := R(0, 0, 10, 10)
	if got, want := r.Translate(3, -2), R(3, -2, 13, 8); got != want {
		t.Errorf("Translate = %v, want %v", got, want)
	}
	if got, want := r.Inset(2), R(2, 2, 8, 8); got != want {
		t.Errorf("Inset = %v, want %v", got, want)
	}
	if got := r.Inset(6); !got.Empty() {
		t.Errorf("over-inset should be empty, got %v", got)
	}
}

func TestBoundingBox(t *testing.T) {
	boxes := []Rect{R(5, 5, 10, 10), R(0, 8, 2, 9), R(7, 1, 8, 3)}
	if got, want := BoundingBox(boxes), R(0, 1, 10, 10); got != want {
		t.Errorf("BoundingBox = %v, want %v", got, want)
	}
	if got := BoundingBox(nil); !got.Empty() {
		t.Errorf("BoundingBox(nil) = %v, want empty", got)
	}
}

func TestTotalArea(t *testing.T) {
	tests := []struct {
		name  string
		boxes []Rect
		want  int64
	}{
		{"disjoint", []Rect{R(0, 0, 2, 2), R(10, 10, 12, 12)}, 8},
		{"identical", []Rect{R(0, 0, 4, 4), R(0, 0, 4, 4)}, 16},
		{"overlap", []Rect{R(0, 0, 4, 4), R(2, 2, 6, 6)}, 28},
		{"contained", []Rect{R(0, 0, 10, 10), R(2, 2, 4, 4)}, 100},
		{"empty", nil, 0},
		{"cross", []Rect{R(0, 4, 12, 8), R(4, 0, 8, 12)}, 48 + 48 - 16},
	}
	for _, tc := range tests {
		if got := TotalArea(tc.boxes); got != tc.want {
			t.Errorf("%s: TotalArea = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestMergeIntervals(t *testing.T) {
	tests := []struct {
		name string
		in   []Interval
		want []Interval
	}{
		{"empty", nil, nil},
		{"single", []Interval{{1, 5}}, []Interval{{1, 5}}},
		{"touching", []Interval{{1, 5}, {5, 8}}, []Interval{{1, 8}}},
		{"overlap", []Interval{{1, 5}, {3, 8}}, []Interval{{1, 8}}},
		{"disjoint", []Interval{{5, 8}, {1, 2}}, []Interval{{1, 2}, {5, 8}}},
		{"nested", []Interval{{1, 10}, {3, 4}}, []Interval{{1, 10}}},
		{"drops empty", []Interval{{3, 3}, {1, 2}}, []Interval{{1, 2}}},
	}
	for _, tc := range tests {
		got := MergeIntervals(tc.in)
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

func TestGaps(t *testing.T) {
	bounds := Interval{0, 100}
	tests := []struct {
		name string
		in   []Interval
		want []Interval
	}{
		{"no cover", nil, []Interval{{0, 100}}},
		{"middle", []Interval{{40, 60}}, []Interval{{0, 40}, {60, 100}}},
		{"edges", []Interval{{0, 10}, {90, 100}}, []Interval{{10, 90}}},
		{"full", []Interval{{0, 100}}, nil},
		{"overflow clipped", []Interval{{-10, 20}, {80, 120}}, []Interval{{20, 80}}},
	}
	for _, tc := range tests {
		got := Gaps(tc.in, bounds)
		if len(got) != len(tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
				break
			}
		}
	}
}

// Property: gaps and merged intervals partition the bounds exactly.
func TestGapsPartitionProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		bounds := Interval{0, 1000}
		var ivs []Interval
		for i := 0; i+1 < len(raw); i += 2 {
			lo := int(raw[i] % 1000)
			hi := lo + int(raw[i+1]%200)
			ivs = append(ivs, Interval{lo, min(hi, 1000)})
		}
		merged := MergeIntervals(ivs)
		gaps := Gaps(ivs, bounds)
		total := 0
		for _, iv := range merged {
			total += iv.Len()
		}
		for _, g := range gaps {
			total += g.Len()
		}
		// merged spans clipped to bounds + gaps must cover bounds exactly
		return total == bounds.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: intersection is commutative and contained in both operands.
func TestIntersectProperty(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh uint8) bool {
		a := R(int(ax0), int(ay0), int(ax0)+int(aw), int(ay0)+int(ah))
		b := R(int(bx0), int(by0), int(bx0)+int(bw), int(by0)+int(bh))
		i1, i2 := a.Intersect(b), b.Intersect(a)
		if i1 != i2 {
			return false
		}
		if i1.Empty() {
			return true
		}
		return a.Contains(i1) && b.Contains(i1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: TotalArea of a set is at least the max individual area and at
// most the sum of areas.
func TestTotalAreaBoundsProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		var boxes []Rect
		for i := 0; i+3 < len(raw); i += 4 {
			b := R(int(raw[i]), int(raw[i+1]), int(raw[i])+int(raw[i+2]%64)+1, int(raw[i+1])+int(raw[i+3]%64)+1)
			boxes = append(boxes, b)
		}
		var sum, maxA int64
		for _, b := range boxes {
			sum += b.Area()
			if b.Area() > maxA {
				maxA = b.Area()
			}
		}
		got := TotalArea(boxes)
		return got >= maxA && got <= sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
