// Package layout implements tile layouts as defined in the paper:
// L = (nr, nc, {h1..hnr}, {c1..cnc}) — a regular grid where rows and columns
// extend through the entire frame (irregular layouts are not representable,
// matching the HEVC restriction). It provides the uniform layout family and
// the non-uniform fine/coarse partitioners that design tile boundaries
// around object bounding boxes without ever letting a boundary intersect a
// box (paper §3.4).
package layout

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"github.com/tasm-repro/tasm/internal/geom"
)

// Layout describes how frames of a W×H video are split into tiles.
// RowHeights sums to the frame height, ColWidths to the frame width.
// The zero value is invalid; use Single for the untiled layout ω.
type Layout struct {
	RowHeights []int
	ColWidths  []int
}

// Single returns the untiled layout ω: one tile spanning the whole frame.
func Single(w, h int) Layout {
	return Layout{RowHeights: []int{h}, ColWidths: []int{w}}
}

// Rows returns the number of tile rows.
func (l Layout) Rows() int { return len(l.RowHeights) }

// Cols returns the number of tile columns.
func (l Layout) Cols() int { return len(l.ColWidths) }

// NumTiles returns Rows*Cols.
func (l Layout) NumTiles() int { return l.Rows() * l.Cols() }

// Width returns the total frame width covered by the layout.
func (l Layout) Width() int {
	w := 0
	for _, c := range l.ColWidths {
		w += c
	}
	return w
}

// Height returns the total frame height covered by the layout.
func (l Layout) Height() int {
	h := 0
	for _, r := range l.RowHeights {
		h += r
	}
	return h
}

// IsSingle reports whether l is the untiled 1×1 layout.
func (l Layout) IsSingle() bool { return l.Rows() == 1 && l.Cols() == 1 }

// TileRect returns the pixel rectangle of the tile at (row, col).
func (l Layout) TileRect(row, col int) geom.Rect {
	if row < 0 || row >= l.Rows() || col < 0 || col >= l.Cols() {
		panic(fmt.Sprintf("layout: tile (%d,%d) out of range %dx%d", row, col, l.Rows(), l.Cols()))
	}
	x0, y0 := 0, 0
	for c := 0; c < col; c++ {
		x0 += l.ColWidths[c]
	}
	for r := 0; r < row; r++ {
		y0 += l.RowHeights[r]
	}
	return geom.R(x0, y0, x0+l.ColWidths[col], y0+l.RowHeights[row])
}

// TileRectByIndex returns the rectangle for tile index i (row-major).
func (l Layout) TileRectByIndex(i int) geom.Rect {
	return l.TileRect(i/l.Cols(), i%l.Cols())
}

// TileIndexAt returns the row-major tile index containing pixel (x, y), or
// -1 if the point is outside the frame.
func (l Layout) TileIndexAt(x, y int) int {
	if x < 0 || y < 0 {
		return -1
	}
	col, cx := -1, 0
	for c, w := range l.ColWidths {
		cx += w
		if x < cx {
			col = c
			break
		}
	}
	row, cy := -1, 0
	for r, h := range l.RowHeights {
		cy += h
		if y < cy {
			row = r
			break
		}
	}
	if col < 0 || row < 0 {
		return -1
	}
	return row*l.Cols() + col
}

// TilesIntersecting returns the row-major indexes of all tiles that overlap
// rect, in increasing order.
func (l Layout) TilesIntersecting(rect geom.Rect) []int {
	rect = rect.Clamp(geom.R(0, 0, l.Width(), l.Height()))
	if rect.Empty() {
		return nil
	}
	var rows, cols []int
	y := 0
	for r, h := range l.RowHeights {
		if y < rect.Y1 && rect.Y0 < y+h {
			rows = append(rows, r)
		}
		y += h
	}
	x := 0
	for c, w := range l.ColWidths {
		if x < rect.X1 && rect.X0 < x+w {
			cols = append(cols, c)
		}
		x += w
	}
	out := make([]int, 0, len(rows)*len(cols))
	for _, r := range rows {
		for _, c := range cols {
			out = append(out, r*l.Cols()+c)
		}
	}
	return out
}

// PixelsForBoxes returns the total number of pixels per frame that must be
// decoded to recover all of the given boxes under this layout: the summed
// area of the union of intersected tiles. This is the per-frame P term of
// the paper's cost model.
func (l Layout) PixelsForBoxes(boxes []geom.Rect) int64 {
	needed := make(map[int]bool)
	for _, b := range boxes {
		for _, t := range l.TilesIntersecting(b) {
			needed[t] = true
		}
	}
	var total int64
	for t := range needed {
		total += l.TileRectByIndex(t).Area()
	}
	return total
}

// TilesForBoxes returns the number of distinct tiles intersecting any box.
func (l Layout) TilesForBoxes(boxes []geom.Rect) int {
	needed := make(map[int]bool)
	for _, b := range boxes {
		for _, t := range l.TilesIntersecting(b) {
			needed[t] = true
		}
	}
	return len(needed)
}

// Equal reports whether two layouts are identical.
func (l Layout) Equal(o Layout) bool {
	if len(l.RowHeights) != len(o.RowHeights) || len(l.ColWidths) != len(o.ColWidths) {
		return false
	}
	for i := range l.RowHeights {
		if l.RowHeights[i] != o.RowHeights[i] {
			return false
		}
	}
	for i := range l.ColWidths {
		if l.ColWidths[i] != o.ColWidths[i] {
			return false
		}
	}
	return true
}

// String returns a canonical, map-key-safe representation.
func (l Layout) String() string {
	var sb strings.Builder
	sb.WriteByte('r')
	for i, h := range l.RowHeights {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", h)
	}
	sb.WriteByte('c')
	for i, w := range l.ColWidths {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", w)
	}
	return sb.String()
}

// Constraints carries the codec-imposed restrictions on tile geometry.
type Constraints struct {
	FrameW, FrameH int
	// Align forces tile boundaries onto multiples of this many pixels
	// (the codec's block grid). Must be even for 4:2:0 chroma.
	Align int
	// MinWidth/MinHeight are the smallest legal tile dimensions (HEVC
	// imposes 256×64 luma; we default to 64×64 at our reduced scale).
	MinWidth, MinHeight int
}

// DefaultConstraints returns the constraint set used across the repo.
func DefaultConstraints(w, h int) Constraints {
	return Constraints{FrameW: w, FrameH: h, Align: 16, MinWidth: 64, MinHeight: 64}
}

func (c Constraints) validate() error {
	if c.FrameW <= 0 || c.FrameH <= 0 {
		return fmt.Errorf("layout: invalid frame %dx%d", c.FrameW, c.FrameH)
	}
	if c.Align <= 0 || c.Align%2 != 0 {
		return fmt.Errorf("layout: alignment %d must be positive and even", c.Align)
	}
	if c.MinWidth < c.Align || c.MinHeight < c.Align {
		return fmt.Errorf("layout: minimum tile %dx%d below alignment %d", c.MinWidth, c.MinHeight, c.Align)
	}
	return nil
}

// Validate checks that l is a legal layout under the constraints: positive
// aligned dimensions (interior boundaries only), minimum sizes, and exact
// frame coverage.
func (l Layout) Validate(c Constraints) error {
	if err := c.validate(); err != nil {
		return err
	}
	if l.Rows() == 0 || l.Cols() == 0 {
		return errors.New("layout: no rows or columns")
	}
	if l.Width() != c.FrameW || l.Height() != c.FrameH {
		return fmt.Errorf("layout: covers %dx%d, frame is %dx%d", l.Width(), l.Height(), c.FrameW, c.FrameH)
	}
	check := func(dims []int, minDim int, total int, kind string) error {
		pos := 0
		for i, d := range dims {
			if d <= 0 {
				return fmt.Errorf("layout: non-positive %s %d", kind, d)
			}
			if len(dims) > 1 && d < minDim {
				return fmt.Errorf("layout: %s %d below minimum %d", kind, d, minDim)
			}
			pos += d
			if pos != total && pos%c.Align != 0 {
				return fmt.Errorf("layout: %s boundary at %d not aligned to %d", kind, pos, c.Align)
			}
			_ = i
		}
		return nil
	}
	if err := check(l.RowHeights, c.MinHeight, c.FrameH, "row"); err != nil {
		return err
	}
	return check(l.ColWidths, c.MinWidth, c.FrameW, "column")
}

// Uniform returns a rows×cols layout with near-equal, aligned tiles. It
// reduces rows/cols as needed to respect minimum tile dimensions and
// returns the layout actually produced.
func Uniform(rows, cols int, c Constraints) (Layout, error) {
	if err := c.validate(); err != nil {
		return Layout{}, err
	}
	if rows < 1 || cols < 1 {
		return Layout{}, fmt.Errorf("layout: invalid grid %dx%d", rows, cols)
	}
	maxRows := c.FrameH / c.MinHeight
	maxCols := c.FrameW / c.MinWidth
	if maxRows < 1 {
		maxRows = 1
	}
	if maxCols < 1 {
		maxCols = 1
	}
	if rows > maxRows {
		rows = maxRows
	}
	if cols > maxCols {
		cols = maxCols
	}
	return Layout{
		RowHeights: splitEven(c.FrameH, rows, c.Align),
		ColWidths:  splitEven(c.FrameW, cols, c.Align),
	}, nil
}

// splitEven divides total into n near-equal parts whose interior boundaries
// sit on align multiples; the final part absorbs the remainder.
func splitEven(total, n, align int) []int {
	if n <= 1 {
		return []int{total}
	}
	out := make([]int, n)
	prev := 0
	for i := 1; i < n; i++ {
		b := total * i / n
		b = b / align * align
		if b <= prev { // degenerate under alignment; give it one align unit
			b = prev + align
		}
		if b >= total {
			b = total - align*(n-i)
		}
		out[i-1] = b - prev
		prev = b
	}
	out[n-1] = total - prev
	return out
}

// Granularity selects between the paper's fine- and coarse-grained
// non-uniform layouts (§3.4.2, Figure 4).
type Granularity int

const (
	// Fine isolates non-intersecting boxes into the smallest legal tiles.
	Fine Granularity = iota
	// Coarse places all boxes inside a single large tile.
	Coarse
)

func (g Granularity) String() string {
	if g == Coarse {
		return "coarse"
	}
	return "fine"
}

// Partition designs a non-uniform layout around the given bounding boxes:
// no tile boundary intersects any box, boundaries lie on the alignment
// grid, and all tiles respect the minimum dimensions. With no boxes it
// returns the untiled layout ω.
func Partition(boxes []geom.Rect, g Granularity, c Constraints) (Layout, error) {
	if err := c.validate(); err != nil {
		return Layout{}, err
	}
	frame := geom.R(0, 0, c.FrameW, c.FrameH)
	var clipped []geom.Rect
	for _, b := range boxes {
		if bb := b.Clamp(frame); !bb.Empty() {
			clipped = append(clipped, bb)
		}
	}
	if len(clipped) == 0 {
		return Single(c.FrameW, c.FrameH), nil
	}

	var xIvs, yIvs []geom.Interval
	if g == Coarse {
		bb := geom.BoundingBox(clipped)
		xIvs = []geom.Interval{{Lo: bb.X0, Hi: bb.X1}}
		yIvs = []geom.Interval{{Lo: bb.Y0, Hi: bb.Y1}}
	} else {
		for _, b := range clipped {
			xIvs = append(xIvs, geom.Interval{Lo: b.X0, Hi: b.X1})
			yIvs = append(yIvs, geom.Interval{Lo: b.Y0, Hi: b.Y1})
		}
	}

	cols := axisSplit(xIvs, c.FrameW, c.Align, c.MinWidth)
	rows := axisSplit(yIvs, c.FrameH, c.Align, c.MinHeight)
	l := Layout{RowHeights: rows, ColWidths: cols}
	if err := l.Validate(c); err != nil {
		// axisSplit guarantees validity; this is a defensive check.
		return Layout{}, fmt.Errorf("layout: internal partition error: %w", err)
	}
	return l, nil
}

// axisSplit converts interval projections of the boxes into a 1-D list of
// segment lengths along one axis. Boundaries are snapped outward to the
// alignment grid (so they never cut an interval) and then thinned until
// every segment meets the minimum dimension.
func axisSplit(ivs []geom.Interval, total, align, minDim int) []int {
	merged := geom.MergeIntervals(ivs)
	// Snap outward and re-merge.
	snapped := make([]geom.Interval, 0, len(merged))
	for _, iv := range merged {
		lo := iv.Lo / align * align
		hi := (iv.Hi + align - 1) / align * align
		if lo < 0 {
			lo = 0
		}
		if hi > total {
			hi = total
		}
		snapped = append(snapped, geom.Interval{Lo: lo, Hi: hi})
	}
	snapped = geom.MergeIntervals(snapped)

	// Collect candidate boundaries.
	bset := map[int]bool{0: true, total: true}
	for _, iv := range snapped {
		bset[iv.Lo] = true
		bset[iv.Hi] = true
	}
	bounds := make([]int, 0, len(bset))
	for b := range bset {
		bounds = append(bounds, b)
	}
	sortInts(bounds)

	// Enforce minimum segment lengths by removing interior boundaries.
	// Prefer removing the boundary that ends a short segment (merging it
	// into the following one); if the short segment is last, remove its
	// starting boundary instead.
	for {
		removed := false
		for i := 0; i+1 < len(bounds); i++ {
			if bounds[i+1]-bounds[i] >= minDim {
				continue
			}
			if i+1 < len(bounds)-1 {
				bounds = append(bounds[:i+1], bounds[i+2:]...)
			} else if i > 0 {
				bounds = append(bounds[:i], bounds[i+1:]...)
			} else {
				// Only two boundaries left: the whole axis is one segment.
				break
			}
			removed = true
			break
		}
		if !removed {
			break
		}
	}

	out := make([]int, 0, len(bounds)-1)
	for i := 0; i+1 < len(bounds); i++ {
		out = append(out, bounds[i+1]-bounds[i])
	}
	return out
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// MarshalBinary encodes the layout for storage in container headers and
// catalog manifests.
func (l Layout) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+4*(l.Rows()+l.Cols()))
	var tmp [4]byte
	binary.LittleEndian.PutUint16(tmp[:2], uint16(l.Rows()))
	binary.LittleEndian.PutUint16(tmp[2:4], uint16(l.Cols()))
	buf = append(buf, tmp[:4]...)
	for _, v := range append(append([]int(nil), l.RowHeights...), l.ColWidths...) {
		binary.LittleEndian.PutUint32(tmp[:4], uint32(v))
		buf = append(buf, tmp[:4]...)
	}
	return buf, nil
}

// UnmarshalBinary decodes a layout produced by MarshalBinary.
func (l *Layout) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return errors.New("layout: truncated header")
	}
	nr := int(binary.LittleEndian.Uint16(data[:2]))
	nc := int(binary.LittleEndian.Uint16(data[2:4]))
	if nr <= 0 || nc <= 0 {
		return fmt.Errorf("layout: invalid grid %dx%d", nr, nc)
	}
	need := 4 + 4*(nr+nc)
	if len(data) < need {
		return fmt.Errorf("layout: need %d bytes, have %d", need, len(data))
	}
	l.RowHeights = make([]int, nr)
	l.ColWidths = make([]int, nc)
	off := 4
	for i := 0; i < nr; i++ {
		l.RowHeights[i] = int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	for i := 0; i < nc; i++ {
		l.ColWidths[i] = int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
	}
	return nil
}
