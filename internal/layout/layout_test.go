package layout

import (
	"testing"
	"testing/quick"

	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/stats"
)

func cons(w, h int) Constraints { return DefaultConstraints(w, h) }

func TestSingle(t *testing.T) {
	l := Single(640, 360)
	if !l.IsSingle() || l.NumTiles() != 1 {
		t.Error("Single is not 1x1")
	}
	if l.Width() != 640 || l.Height() != 360 {
		t.Errorf("dims = %dx%d", l.Width(), l.Height())
	}
	if got := l.TileRect(0, 0); got != geom.R(0, 0, 640, 360) {
		t.Errorf("TileRect = %v", got)
	}
	if err := l.Validate(cons(640, 360)); err != nil {
		t.Errorf("Single invalid: %v", err)
	}
}

func TestUniformBasic(t *testing.T) {
	l, err := Uniform(3, 3, cons(960, 540))
	if err != nil {
		t.Fatal(err)
	}
	if l.Rows() != 3 || l.Cols() != 3 {
		t.Fatalf("grid = %dx%d, want 3x3", l.Rows(), l.Cols())
	}
	if err := l.Validate(cons(960, 540)); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	// Tiles tile the plane: total area equals frame area.
	var area int64
	for i := 0; i < l.NumTiles(); i++ {
		area += l.TileRectByIndex(i).Area()
	}
	if area != 960*540 {
		t.Errorf("total tile area %d != frame area %d", area, 960*540)
	}
}

func TestUniformClampsToMinDims(t *testing.T) {
	// 20 columns of a 640-wide frame would be 32px < MinWidth 64.
	l, err := Uniform(1, 20, cons(640, 360))
	if err != nil {
		t.Fatal(err)
	}
	if l.Cols() > 10 {
		t.Errorf("cols = %d, want <= 10 (640/64)", l.Cols())
	}
	if err := l.Validate(cons(640, 360)); err != nil {
		t.Errorf("clamped layout invalid: %v", err)
	}
}

func TestUniformRejectsBadGrid(t *testing.T) {
	if _, err := Uniform(0, 3, cons(640, 360)); err == nil {
		t.Error("0 rows accepted")
	}
}

func TestTileIndexAt(t *testing.T) {
	l, _ := Uniform(2, 2, cons(128, 128))
	if got := l.TileIndexAt(0, 0); got != 0 {
		t.Errorf("(0,0) -> %d", got)
	}
	if got := l.TileIndexAt(127, 127); got != 3 {
		t.Errorf("(127,127) -> %d", got)
	}
	if got := l.TileIndexAt(63, 64); got != 2 {
		t.Errorf("(63,64) -> %d", got)
	}
	if got := l.TileIndexAt(-1, 5); got != -1 {
		t.Errorf("out of range -> %d", got)
	}
	if got := l.TileIndexAt(128, 5); got != -1 {
		t.Errorf("past edge -> %d", got)
	}
}

func TestTilesIntersecting(t *testing.T) {
	l, _ := Uniform(2, 2, cons(128, 128))
	if got := l.TilesIntersecting(geom.R(10, 10, 20, 20)); len(got) != 1 || got[0] != 0 {
		t.Errorf("single-tile rect -> %v", got)
	}
	if got := l.TilesIntersecting(geom.R(60, 60, 70, 70)); len(got) != 4 {
		t.Errorf("center rect should hit 4 tiles, got %v", got)
	}
	if got := l.TilesIntersecting(geom.R(0, 0, 128, 10)); len(got) != 2 {
		t.Errorf("top strip should hit 2 tiles, got %v", got)
	}
	if got := l.TilesIntersecting(geom.R(200, 200, 210, 210)); got != nil {
		t.Errorf("outside rect -> %v", got)
	}
}

func TestPixelsAndTilesForBoxes(t *testing.T) {
	l, _ := Uniform(2, 2, cons(128, 128))
	boxes := []geom.Rect{geom.R(0, 0, 10, 10), geom.R(5, 5, 15, 15)} // both in tile 0
	if got := l.TilesForBoxes(boxes); got != 1 {
		t.Errorf("TilesForBoxes = %d, want 1", got)
	}
	if got := l.PixelsForBoxes(boxes); got != 64*64 {
		t.Errorf("PixelsForBoxes = %d, want %d", got, 64*64)
	}
	// A box spanning everything decodes all four tiles.
	if got := l.PixelsForBoxes([]geom.Rect{geom.R(0, 0, 128, 128)}); got != 128*128 {
		t.Errorf("full-frame box pixels = %d", got)
	}
}

func TestPartitionFineIsolatesBoxes(t *testing.T) {
	c := cons(640, 360)
	boxes := []geom.Rect{geom.R(100, 100, 180, 170), geom.R(400, 200, 500, 290)}
	l, err := Partition(boxes, Fine, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(c); err != nil {
		t.Fatalf("fine layout invalid: %v", err)
	}
	if l.NumTiles() < 4 {
		t.Errorf("fine layout has only %d tiles", l.NumTiles())
	}
	assertNoBoundaryCutsBoxes(t, l, boxes)
	// Each box should be inside a single tile (they do not overlap rows/cols).
	for _, b := range boxes {
		if n := len(l.TilesIntersecting(b)); n != 1 {
			t.Errorf("box %v intersects %d tiles, want 1", b, n)
		}
	}
}

func TestPartitionCoarseSingleBigTile(t *testing.T) {
	c := cons(640, 360)
	boxes := []geom.Rect{geom.R(100, 100, 180, 170), geom.R(400, 200, 500, 290)}
	l, err := Partition(boxes, Coarse, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(c); err != nil {
		t.Fatalf("coarse layout invalid: %v", err)
	}
	if l.Rows() > 3 || l.Cols() > 3 {
		t.Errorf("coarse grid %dx%d, want <= 3x3", l.Rows(), l.Cols())
	}
	assertNoBoundaryCutsBoxes(t, l, boxes)
	// All boxes must land in the same tile.
	idx := -1
	for _, b := range boxes {
		tiles := l.TilesIntersecting(b)
		if len(tiles) != 1 {
			t.Fatalf("coarse: box %v spans %v", b, tiles)
		}
		if idx == -1 {
			idx = tiles[0]
		} else if tiles[0] != idx {
			t.Errorf("coarse: boxes in different tiles %d vs %d", idx, tiles[0])
		}
	}
	// Coarse tiles should be at least as large as fine tiles for the target.
	fine, _ := Partition(boxes, Fine, c)
	if l.PixelsForBoxes(boxes) < fine.PixelsForBoxes(boxes) {
		t.Error("coarse layout decodes fewer pixels than fine")
	}
}

func TestPartitionNoBoxes(t *testing.T) {
	l, err := Partition(nil, Fine, cons(640, 360))
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsSingle() {
		t.Errorf("no boxes should give ω, got %v", l)
	}
}

func TestPartitionBoxesOutsideFrame(t *testing.T) {
	c := cons(640, 360)
	l, err := Partition([]geom.Rect{geom.R(1000, 1000, 1100, 1100)}, Fine, c)
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsSingle() {
		t.Errorf("out-of-frame boxes should give ω, got %v", l)
	}
	// Partially overlapping box is clipped, not dropped.
	l, err = Partition([]geom.Rect{geom.R(600, 300, 700, 400)}, Fine, c)
	if err != nil {
		t.Fatal(err)
	}
	if l.IsSingle() {
		t.Error("clipped box ignored")
	}
}

func TestPartitionTinyBoxesRespectMinDims(t *testing.T) {
	c := cons(640, 360)
	boxes := []geom.Rect{geom.R(5, 5, 15, 15)} // 10x10 box, min tile is 64x64
	l, err := Partition(boxes, Fine, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(c); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	assertNoBoundaryCutsBoxes(t, l, boxes)
}

func TestPartitionDenseBoxesEverywhere(t *testing.T) {
	c := cons(640, 360)
	var boxes []geom.Rect
	for y := 0; y < 360-40; y += 50 {
		for x := 0; x < 640-40; x += 60 {
			boxes = append(boxes, geom.R(x, y, x+45, y+40))
		}
	}
	l, err := Partition(boxes, Fine, c)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(c); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	assertNoBoundaryCutsBoxes(t, l, boxes)
}

func assertNoBoundaryCutsBoxes(t *testing.T, l Layout, boxes []geom.Rect) {
	t.Helper()
	// A boundary cuts a box iff the box intersects more than one tile in a
	// way that splits its interior: check every interior boundary line.
	x := 0
	for _, w := range l.ColWidths[:l.Cols()-1] {
		x += w
		for _, b := range boxes {
			if b.X0 < x && x < b.X1 {
				t.Errorf("column boundary %d cuts box %v", x, b)
			}
		}
	}
	y := 0
	for _, h := range l.RowHeights[:l.Rows()-1] {
		y += h
		for _, b := range boxes {
			if b.Y0 < y && y < b.Y1 {
				t.Errorf("row boundary %d cuts box %v", y, b)
			}
		}
	}
}

func TestValidateRejectsBadLayouts(t *testing.T) {
	c := cons(640, 360)
	cases := []struct {
		name string
		l    Layout
	}{
		{"wrong size", Layout{RowHeights: []int{100}, ColWidths: []int{640}}},
		{"misaligned", Layout{RowHeights: []int{100, 260}, ColWidths: []int{640}}},
		{"below min", Layout{RowHeights: []int{32, 328}, ColWidths: []int{640}}},
		{"empty", Layout{}},
		{"negative", Layout{RowHeights: []int{400, -40}, ColWidths: []int{640}}},
	}
	for _, tc := range cases {
		if err := tc.l.Validate(c); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	l, _ := Uniform(3, 4, cons(640, 360))
	data, err := l.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Layout
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(l) {
		t.Errorf("round trip: got %v, want %v", got, l)
	}
	var bad Layout
	if err := bad.UnmarshalBinary(data[:3]); err == nil {
		t.Error("truncated unmarshal succeeded")
	}
	if err := bad.UnmarshalBinary([]byte{0, 0, 0, 0}); err == nil {
		t.Error("zero-grid unmarshal succeeded")
	}
}

func TestStringCanonical(t *testing.T) {
	a, _ := Uniform(2, 2, cons(128, 128))
	b, _ := Uniform(2, 2, cons(128, 128))
	if a.String() != b.String() {
		t.Error("equal layouts produced different strings")
	}
	c2, _ := Uniform(2, 3, cons(192, 128))
	if a.String() == c2.String() {
		t.Error("different layouts produced same string")
	}
}

// Property: Partition always produces a valid layout whose boundaries never
// cut input boxes, for random box sets.
func TestPartitionProperty(t *testing.T) {
	rng := stats.NewRNG(99)
	c := cons(640, 360)
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(8)
		var boxes []geom.Rect
		for i := 0; i < n; i++ {
			x, y := rng.Intn(600), rng.Intn(320)
			w, h := 8+rng.Intn(120), 8+rng.Intn(120)
			boxes = append(boxes, geom.R(x, y, min(x+w, 640), min(y+h, 360)))
		}
		for _, g := range []Granularity{Fine, Coarse} {
			l, err := Partition(boxes, g, c)
			if err != nil {
				t.Fatalf("iter %d %v: %v (boxes=%v)", iter, g, err, boxes)
			}
			if err := l.Validate(c); err != nil {
				t.Fatalf("iter %d %v: invalid: %v (boxes=%v layout=%v)", iter, g, err, boxes, l)
			}
			assertNoBoundaryCutsBoxes(t, l, boxes)
		}
	}
}

// Property: TilesIntersecting covers every pixel of the query rect.
func TestTilesCoverRectProperty(t *testing.T) {
	f := func(x0, y0, w, h uint16, gridR, gridC uint8) bool {
		c := cons(640, 360)
		l, err := Uniform(int(gridR%5)+1, int(gridC%5)+1, c)
		if err != nil {
			return false
		}
		r := geom.R(int(x0%640), int(y0%360), int(x0%640)+int(w%200)+1, int(y0%360)+int(h%200)+1).
			Clamp(geom.R(0, 0, 640, 360))
		if r.Empty() {
			return true
		}
		var covered int64
		for _, ti := range l.TilesIntersecting(r) {
			covered += l.TileRectByIndex(ti).Intersect(r).Area()
		}
		return covered == r.Area()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGranularityString(t *testing.T) {
	if Fine.String() != "fine" || Coarse.String() != "coarse" {
		t.Error("granularity strings wrong")
	}
}
