// Package live holds the serving-side machinery of append-mode videos:
// the commit-notification hub that wakes /v1/subscribe tails without
// polling, and the bounded per-video commit queue that turns append
// overload into typed backpressure instead of unbounded buffering. It
// is deliberately storage-agnostic — the hub carries frame watermarks
// and the queue carries closures — so it sits below core without
// cycling into it.
package live

import (
	"context"
	"sync"
)

// Hub fans commit notifications out to subscribers, per video. Each
// publish advances the video's committed-frame watermark and wakes
// every subscriber (coalesced — a slow subscriber sees one wake for
// many commits, then reads the watermark). CancelVideo delivers a
// terminal error, the DeleteVideo path's way of unblocking tails
// instead of leaving them waiting on commits that will never come.
type Hub struct {
	mu   sync.Mutex
	subs map[string]map[*Sub]struct{}
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{subs: map[string]map[*Sub]struct{}{}}
}

// Sub is one subscriber's registration. Wait blocks until the video's
// watermark moves past the caller's, a terminal error is delivered, or
// the context ends.
type Sub struct {
	hub   *Hub
	video string
	wake  chan struct{} // cap 1: coalesced notifications

	mu        sync.Mutex
	committed int
	err       error
}

// Subscribe registers a tail on video, seeding its watermark with
// committed (the catalog's frame count at registration, so a commit
// that lands between the caller's snapshot and the registration is
// never missed — it only moves the watermark forward).
func (h *Hub) Subscribe(video string, committed int) *Sub {
	s := &Sub{hub: h, video: video, wake: make(chan struct{}, 1), committed: committed}
	h.mu.Lock()
	set := h.subs[video]
	if set == nil {
		set = map[*Sub]struct{}{}
		h.subs[video] = set
	}
	set[s] = struct{}{}
	h.mu.Unlock()
	return s
}

// Publish advances video's committed-frame watermark and wakes its
// subscribers. Watermarks only move forward; a stale publish (from a
// commit that raced a later one) is a no-op.
func (h *Hub) Publish(video string, committed int) {
	h.mu.Lock()
	subs := h.subs[video]
	for s := range subs {
		s.mu.Lock()
		if committed > s.committed {
			s.committed = committed
		}
		s.mu.Unlock()
		s.notify()
	}
	h.mu.Unlock()
}

// CancelVideo delivers err as every subscriber's terminal state and
// wakes them; their next Wait (or State) surfaces it. New subscriptions
// after the cancel start clean — the video name may be re-ingested.
func (h *Hub) CancelVideo(video string, err error) {
	h.mu.Lock()
	subs := h.subs[video]
	delete(h.subs, video)
	h.mu.Unlock()
	for s := range subs {
		s.mu.Lock()
		if s.err == nil {
			s.err = err
		}
		s.mu.Unlock()
		s.notify()
	}
}

// notify delivers one coalesced wake.
func (s *Sub) notify() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// State returns the subscriber's current watermark and terminal error
// (nil while the subscription is live).
func (s *Sub) State() (committed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed, s.err
}

// Wait blocks until a wake arrives, a terminal error is delivered, or
// ctx ends; it returns the fresh state (ctx expiry is returned as the
// error). A wake that did not advance the watermark past after still
// returns: some state changes the watermark cannot express — a seal
// publishes the unchanged frame count so caught-up tails re-check the
// catalog and terminate instead of waiting for commits that will never
// come.
func (s *Sub) Wait(ctx context.Context, after int) (committed int, err error) {
	if committed, err = s.State(); err != nil || committed > after {
		return committed, err
	}
	select {
	case <-s.wake:
		return s.State()
	case <-ctx.Done():
		return committed, ctx.Err()
	}
}

// Close unregisters the subscriber; pending wakes are dropped. Close
// after CancelVideo is a harmless no-op.
func (s *Sub) Close() {
	s.hub.mu.Lock()
	if set := s.hub.subs[s.video]; set != nil {
		delete(set, s)
		if len(set) == 0 {
			delete(s.hub.subs, s.video)
		}
	}
	s.hub.mu.Unlock()
}
