package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/tasm-repro/tasm/internal/tasmerr"
)

func TestHubPublishWakesWaiter(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("v", 10)
	defer s.Close()

	if got, err := s.State(); err != nil || got != 10 {
		t.Fatalf("State() = %d, %v; want 10, nil", got, err)
	}

	done := make(chan int, 1)
	go func() {
		c, err := s.Wait(context.Background(), 10)
		if err != nil {
			t.Errorf("Wait: %v", err)
		}
		done <- c
	}()
	time.Sleep(10 * time.Millisecond)
	h.Publish("v", 15)
	select {
	case c := <-done:
		if c != 15 {
			t.Fatalf("woke with watermark %d, want 15", c)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on publish")
	}
}

// A publish that does not advance the watermark must still wake a
// caught-up waiter: a seal publishes the unchanged frame count and the
// waiter has to re-check the catalog to terminate. This is the
// regression the live bench deadlocked on.
func TestHubStaleWakeReturnsWaiter(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("v", 20)
	defer s.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if c, err := s.Wait(context.Background(), 20); err != nil || c != 20 {
			t.Errorf("Wait = %d, %v; want 20, nil", c, err)
		}
	}()
	time.Sleep(10 * time.Millisecond)
	h.Publish("v", 20) // the seal shape: watermark unchanged
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("caught-up waiter not woken by a stale publish")
	}
}

func TestHubWatermarkOnlyMovesForward(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("v", 0)
	defer s.Close()
	h.Publish("v", 30)
	h.Publish("v", 12) // stale: a commit that raced a later one
	if got, _ := s.State(); got != 30 {
		t.Fatalf("watermark = %d after stale publish, want 30", got)
	}
}

func TestHubWakesAreCoalesced(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("v", 0)
	defer s.Close()
	for i := 1; i <= 100; i++ {
		h.Publish("v", i)
	}
	// One Wait drains the single buffered wake and sees the final state.
	if c, err := s.Wait(context.Background(), 0); err != nil || c != 100 {
		t.Fatalf("Wait = %d, %v; want 100, nil", c, err)
	}
}

func TestHubCancelVideoDeliversTerminalError(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("v", 0)
	defer s.Close()

	errC := make(chan error, 1)
	go func() {
		_, err := s.Wait(context.Background(), 0)
		errC <- err
	}()
	time.Sleep(10 * time.Millisecond)
	h.CancelVideo("v", tasmerr.ErrVideoDeleted)
	select {
	case err := <-errC:
		if !errors.Is(err, tasmerr.ErrVideoDeleted) {
			t.Fatalf("Wait error = %v, want ErrVideoDeleted", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("CancelVideo did not unblock the waiter")
	}
	// The error is sticky: later calls see it too.
	if _, err := s.State(); !errors.Is(err, tasmerr.ErrVideoDeleted) {
		t.Fatalf("State after cancel = %v, want ErrVideoDeleted", err)
	}
	// New subscriptions on the name start clean (re-ingest case).
	s2 := h.Subscribe("v", 0)
	defer s2.Close()
	if _, err := s2.State(); err != nil {
		t.Fatalf("fresh sub after cancel: %v", err)
	}
}

func TestHubWaitHonorsContext(t *testing.T) {
	h := NewHub()
	s := h.Subscribe("v", 0)
	defer s.Close()
	ctx, cancel := context.WithCancel(context.Background())
	errC := make(chan error, 1)
	go func() {
		_, err := s.Wait(ctx, 0)
		errC <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errC:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Wait error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait ignored context cancellation")
	}
}

func TestHubVideosAreIndependent(t *testing.T) {
	h := NewHub()
	a := h.Subscribe("a", 0)
	defer a.Close()
	b := h.Subscribe("b", 0)
	defer b.Close()
	h.Publish("a", 5)
	if got, _ := a.State(); got != 5 {
		t.Fatalf("a watermark = %d, want 5", got)
	}
	if got, _ := b.State(); got != 0 {
		t.Fatalf("b watermark = %d, want 0 (publish leaked across videos)", got)
	}
}

func TestIngestorRunsJobsSeriallyInOrder(t *testing.T) {
	ing := NewIngestor(8)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	// Enqueue from one goroutine (the append path is one connection per
	// video); completion waits run concurrently.
	for i := 0; i < 5; i++ {
		wg.Add(1)
		i := i
		errC := make(chan error, 1)
		go func() {
			defer wg.Done()
			errC <- ing.Do(context.Background(), "v", func() error {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
				return nil
			})
		}()
		if err := <-errC; err != nil {
			t.Fatalf("Do(%d): %v", i, err)
		}
	}
	wg.Wait()
	for i, got := range order {
		if got != i {
			t.Fatalf("jobs ran out of order: %v", order)
		}
	}
}

func TestIngestorBackpressureAtDepth(t *testing.T) {
	ing := NewIngestor(2)
	block := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	// One running job (holds the drainer) + two queued = queue full.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ing.Do(context.Background(), "v", func() error { //nolint:errcheck // released below
			close(started)
			<-block
			return nil
		})
	}()
	<-started
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ing.Do(context.Background(), "v", func() error { return nil }) //nolint:errcheck // released below
		}()
	}
	// Wait for both to be queued.
	deadline := time.Now().Add(2 * time.Second)
	for ing.Pending("v") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: pending %d", ing.Pending("v"))
		}
		time.Sleep(time.Millisecond)
	}
	err := ing.Do(context.Background(), "v", func() error {
		t.Error("backpressured job must not run")
		return nil
	})
	if !errors.Is(err, tasmerr.ErrIngestBackpressure) {
		t.Fatalf("Do on full queue = %v, want ErrIngestBackpressure", err)
	}
	// Other videos are unaffected by v's full queue.
	if err := ing.Do(context.Background(), "other", func() error { return nil }); err != nil {
		t.Fatalf("Do(other) = %v, want nil", err)
	}
	close(block)
	wg.Wait()
	if got := ing.Pending("v"); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}
}

func TestIngestorContextEndsWaitNotJob(t *testing.T) {
	ing := NewIngestor(4)
	block := make(chan struct{})
	ran := make(chan struct{})
	started := make(chan struct{})
	go ing.Do(context.Background(), "v", func() error { //nolint:errcheck // synchronized via channels
		close(started)
		<-block
		return nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	errC := make(chan error, 1)
	go func() {
		errC <- ing.Do(ctx, "v", func() error {
			close(ran)
			return nil
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	if err := <-errC; !errors.Is(err, context.Canceled) {
		t.Fatalf("Do under cancelled ctx = %v, want context.Canceled", err)
	}
	// The job was already ordered; it still runs once the queue drains.
	close(block)
	select {
	case <-ran:
	case <-time.After(2 * time.Second):
		t.Fatal("ordered job abandoned after caller's ctx ended")
	}
}

func TestIngestorDoPropagatesJobError(t *testing.T) {
	ing := NewIngestor(4)
	want := fmt.Errorf("encode exploded")
	if err := ing.Do(context.Background(), "v", func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("Do = %v, want %v", err, want)
	}
}

func TestIngestorForgetDropsQueueEntry(t *testing.T) {
	ing := NewIngestor(4)
	if err := ing.Do(context.Background(), "v", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	ing.Forget("v")
	if got := ing.Pending("v"); got != 0 {
		t.Fatalf("Pending after Forget = %d, want 0", got)
	}
	// The name is usable again immediately.
	if err := ing.Do(context.Background(), "v", func() error { return nil }); err != nil {
		t.Fatalf("Do after Forget: %v", err)
	}
}
