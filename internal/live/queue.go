package live

import (
	"context"
	"fmt"
	"sync"

	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// Ingestor is the per-video bounded commit queue behind AppendGOP. Each
// video's jobs (encode + SOT commit closures) run serially on a lazily
// started drain goroutine, so commit order is enqueue order and encode
// of GOP n+1 overlaps the caller's framing of n+2; when a video's queue
// is full the append is refused immediately with
// tasmerr.ErrIngestBackpressure — the server's 429 — instead of
// buffering unboundedly or blocking the ingest connection.
type Ingestor struct {
	depth int

	mu     sync.Mutex
	queues map[string]*videoQueue
}

type videoQueue struct {
	jobs   chan job
	active bool // a drain goroutine owns this queue
}

type job struct {
	run  func() error
	done chan error // buffered: the runner never blocks on an abandoned caller
}

// DefaultQueueDepth bounds pending commits per video when no explicit
// depth is configured.
const DefaultQueueDepth = 4

// NewIngestor returns an ingestor allowing depth pending commits per
// video (<= 0 selects DefaultQueueDepth).
func NewIngestor(depth int) *Ingestor {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &Ingestor{depth: depth, queues: map[string]*videoQueue{}}
}

// Do enqueues run on video's commit queue and waits for its result. A
// full queue fails fast with ErrIngestBackpressure (run is not called);
// a context that ends while waiting returns ctx's error, and the job
// still runs to completion — its commit is already ordered.
func (i *Ingestor) Do(ctx context.Context, video string, run func() error) error {
	j := job{run: run, done: make(chan error, 1)}
	i.mu.Lock()
	q := i.queues[video]
	if q == nil {
		q = &videoQueue{jobs: make(chan job, i.depth)}
		i.queues[video] = q
	}
	select {
	case q.jobs <- j:
	default:
		i.mu.Unlock()
		return fmt.Errorf("live: video %q: %w: %d commits pending", video, tasmerr.ErrIngestBackpressure, i.depth)
	}
	if !q.active {
		q.active = true
		go i.drain(q)
	}
	i.mu.Unlock()
	select {
	case err := <-j.done:
		return err
	case <-ctx.Done():
		return fmt.Errorf("live: append %q: %w", video, ctx.Err())
	}
}

// drain runs queued jobs serially until the queue is observed empty
// under the ingestor lock (so an enqueue can never race a dying
// drainer into a stalled queue).
func (i *Ingestor) drain(q *videoQueue) {
	for {
		select {
		case j := <-q.jobs:
			j.done <- j.run()
		default:
			i.mu.Lock()
			select {
			case j := <-q.jobs:
				i.mu.Unlock()
				j.done <- j.run()
			default:
				q.active = false
				i.mu.Unlock()
				return
			}
		}
	}
}

// Forget drops a video's queue entry so long-lived ingestors cycling
// many names do not accumulate one forever. In-flight jobs finish on
// the old queue; correctness does not depend on the map entry (SOT
// numbering is assigned under the store's catalog lock), only fairness
// of the per-video bound does, and a deleted video's appends fail in
// the store anyway.
func (i *Ingestor) Forget(video string) {
	i.mu.Lock()
	delete(i.queues, video)
	i.mu.Unlock()
}

// Pending reports how many commits are queued (running or waiting) for
// video — surfaced by /metrics and useful in tests.
func (i *Ingestor) Pending(video string) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	if q := i.queues[video]; q != nil {
		return len(q.jobs)
	}
	return 0
}
