package obs

import (
	"encoding/json"
	"fmt"
	"time"
)

// AccessRecord is the structured access-log line every daemon emits,
// one JSON object per finished request. The slow-query log reuses the
// shape with Level "slow_query" plus the threshold that tripped.
type AccessRecord struct {
	Level       string  `json:"level"`
	TraceID     string  `json:"trace_id"`
	Method      string  `json:"method"`
	Path        string  `json:"path"`
	Endpoint    string  `json:"endpoint"`
	Status      int     `json:"status"`
	Bytes       int64   `json:"bytes"`
	DurMS       float64 `json:"dur_ms"`
	TTFRMS      float64 `json:"ttfr_ms,omitempty"`
	Remote      string  `json:"remote"`
	Tenant      string  `json:"tenant,omitempty"`
	ThresholdMS float64 `json:"threshold_ms,omitempty"`
}

// Line renders the record as one JSON line (no trailing newline).
func (rec AccessRecord) Line() string {
	data, err := json.Marshal(rec)
	if err != nil {
		// Every field is a plain string or number; Marshal cannot fail.
		return fmt.Sprintf(`{"level":%q,"error":"marshal"}`, rec.Level)
	}
	return string(data)
}

// Msec renders a duration as fractional milliseconds for log lines.
func Msec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
