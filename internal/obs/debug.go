package obs

import (
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewDebugHandler returns a mux serving net/http/pprof under
// /debug/pprof/ without touching http.DefaultServeMux — the profiling
// surface must never leak onto the daemon's public listener.
func NewDebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartDebugServer serves pprof on its own listener, refusing any
// non-loopback bind: profiles expose heap contents and the process
// command line, and the debug listener has no auth. The returned stop
// function closes the listener and its connections.
func StartDebugServer(addr string, logger *log.Logger) (stop func(), err error) {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("debug addr %q: %v", addr, err)
	}
	if ip := net.ParseIP(host); host != "localhost" && (ip == nil || !ip.IsLoopback()) {
		return nil, fmt.Errorf("debug addr %q is not loopback: pprof exposes heap and command-line contents without auth; bind 127.0.0.1", addr)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("debug listen %s: %v", addr, err)
	}
	srv := &http.Server{Handler: NewDebugHandler(), ReadHeaderTimeout: 10 * time.Second}
	go func() {
		if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			logger.Printf("debug server: %v", err)
		}
	}()
	logger.Printf("pprof debug server on http://%s/debug/pprof/", ln.Addr())
	return func() { _ = srv.Close() }, nil
}
