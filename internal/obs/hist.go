package obs

import (
	"math"
	"sort"
	"sync"
)

// DefaultLatencyBuckets covers loopback microbenchmarks through WAN
// tail latencies: 500µs .. 10s, roughly 2-2.5x apart. Values are
// seconds (Prometheus convention).
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// DefaultSizeBuckets covers response sizes from small JSON envelopes to
// multi-megabyte pixel streams. Values are bytes.
var DefaultSizeBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20,
}

// Histogram is a fixed-bucket histogram in the Prometheus style:
// counts[i] observations fell at or below bounds[i]; counts[len(bounds)]
// is the +Inf overflow bucket. Observe is mutex-protected — the hot
// paths observe once per request, not per region, so contention is
// negligible against the work being measured.
type Histogram struct {
	bounds []float64

	mu     sync.Mutex
	counts []int64
	sum    float64
	count  int64
}

// NewHistogram returns a histogram over the given ascending upper
// bounds (a +Inf bucket is implicit). The bounds slice is not copied;
// callers pass package-level bucket vars.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search outside the lock; bounds are immutable.
	i := sort.SearchFloat64s(h.bounds, v)
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// Snapshot returns a consistent copy of the histogram state.
func (h *Histogram) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum,
		Count:  h.count,
	}
	copy(s.Counts, h.counts)
	return s
}

// HistSnapshot is an immutable histogram state; Counts are per-bucket
// (not cumulative), Counts[len(Bounds)] being the +Inf bucket.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Quantile estimates the p'th quantile (0 < p <= 1) by linear
// interpolation within the bucket containing the target rank — the
// same estimate promql's histogram_quantile computes. Returns NaN for
// an empty histogram. A quantile landing in the +Inf bucket returns
// the largest finite bound (the histogram cannot resolve beyond it).
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || p <= 0 || p > 1 {
		return math.NaN()
	}
	rank := p * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket
			if len(s.Bounds) == 0 {
				return math.NaN()
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-float64(cum))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Merge returns a snapshot combining s and o, which must share bounds
// (same length; callers merge snapshots of histograms built from the
// same bucket var). Used to aggregate per-label-pair histograms into a
// whole-endpoint quantile.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(s.Counts) == 0 {
		return o
	}
	if len(o.Counts) == 0 {
		return s
	}
	out := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Sum:    s.Sum + o.Sum,
		Count:  s.Count + o.Count,
	}
	copy(out.Counts, s.Counts)
	for i := range o.Counts {
		if i < len(out.Counts) {
			out.Counts[i] += o.Counts[i]
		}
	}
	return out
}
