package obs

import (
	"fmt"
	"strings"
)

// LintExposition checks Prometheus text output for the invariant the
// registry enforces at registration time: every sample belongs to a
// family announced by a preceding # HELP and # TYPE pair. It exists so
// tests (and CI, via a scrape) can verify the property end to end on
// the wire, catching any series emitted outside the registry.
func LintExposition(text string) error {
	help := map[string]bool{}
	typed := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				return fmt.Errorf("line %d: HELP without text: %q", ln+1, line)
			}
			help[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				return fmt.Errorf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name && (help[trimmed] || typed[trimmed]) {
				family = trimmed
				break
			}
		}
		if !help[family] {
			return fmt.Errorf("line %d: series %s has no HELP line", ln+1, name)
		}
		if !typed[family] {
			return fmt.Errorf("line %d: series %s has no TYPE line", ln+1, name)
		}
	}
	return nil
}
