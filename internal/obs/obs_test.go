package obs

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDMintAndValidate(t *testing.T) {
	id := NewTraceID()
	if len(id) != 32 || !ValidTraceID(id) {
		t.Fatalf("NewTraceID() = %q, want 32 valid hex chars", id)
	}
	if id2 := NewTraceID(); id2 == id {
		t.Fatalf("two minted ids collide: %q", id)
	}
	for _, bad := range []string{"", "has space", "semi;colon", strings.Repeat("a", 65), "new\nline", "quote\"y"} {
		if ValidTraceID(bad) {
			t.Errorf("ValidTraceID(%q) = true, want false", bad)
		}
	}
	for _, good := range []string{"a", "ABC-123_def", strings.Repeat("f", 64)} {
		if !ValidTraceID(good) {
			t.Errorf("ValidTraceID(%q) = false, want true", good)
		}
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")("k", "v") // must not panic
	tr.AddSpan("y", time.Now(), time.Millisecond)
	tr.Annotate("k", "v")
	if got := tr.ID(); got != "" {
		t.Fatalf("nil ID() = %q", got)
	}
	if rec := tr.Snapshot(); rec.TraceID != "" || len(rec.Spans) != 0 {
		t.Fatalf("nil Snapshot() = %+v", rec)
	}
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext(empty) = %v", got)
	}
}

func TestTraceSpansAndContext(t *testing.T) {
	tr := NewTrace("abc123")
	ctx := WithTrace(context.Background(), tr)
	got := FromContext(ctx)
	if got != tr {
		t.Fatalf("FromContext returned %v, want the installed trace", got)
	}
	end := got.StartSpan("lease")
	time.Sleep(time.Millisecond)
	end("video", "cam0")
	got.Annotate("tenant", "alpha")
	rec := tr.Snapshot()
	if rec.TraceID != "abc123" {
		t.Fatalf("TraceID = %q", rec.TraceID)
	}
	if len(rec.Spans) != 1 || rec.Spans[0].Name != "lease" {
		t.Fatalf("spans = %+v", rec.Spans)
	}
	if rec.Spans[0].DurUS <= 0 {
		t.Fatalf("lease span duration = %d us, want > 0", rec.Spans[0].DurUS)
	}
	if rec.Spans[0].Attrs["video"] != "cam0" || rec.Attrs["tenant"] != "alpha" {
		t.Fatalf("attrs not recorded: %+v / %+v", rec.Spans[0].Attrs, rec.Attrs)
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace(NewTraceID())
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				tr.AddSpan(fmt.Sprintf("s%d", i), time.Now(), time.Microsecond)
				tr.Annotate(fmt.Sprintf("k%d", i), "v")
			}
		}(i)
	}
	wg.Wait()
	if got := len(tr.Snapshot().Spans); got != 16*50 {
		t.Fatalf("got %d spans, want %d", got, 16*50)
	}
}

func TestTraceStoreRingEviction(t *testing.T) {
	s := NewTraceStore(3)
	for i := 0; i < 5; i++ {
		s.Put(Record{TraceID: fmt.Sprintf("t%d", i)})
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	for _, gone := range []string{"t0", "t1"} {
		if _, ok := s.Get(gone); ok {
			t.Errorf("%s should have been evicted", gone)
		}
	}
	for _, kept := range []string{"t2", "t3", "t4"} {
		if _, ok := s.Get(kept); !ok {
			t.Errorf("%s should still be present", kept)
		}
	}
	// Replacing an existing id must not consume a new slot.
	s.Put(Record{TraceID: "t4", DurUS: 99})
	if s.Len() != 3 {
		t.Fatalf("replace grew the ring: Len = %d", s.Len())
	}
	if rec, _ := s.Get("t4"); rec.DurUS != 99 {
		t.Fatalf("replace did not update record: %+v", rec)
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 3, 3, 7, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 8 {
		t.Fatalf("count = %d", s.Count)
	}
	wantCounts := []int64{1, 2, 3, 1, 1} // <=1, <=2, <=4, <=8, +Inf
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if got := s.Quantile(0.5); got < 2 || got > 4 {
		t.Fatalf("p50 = %v, want within (2,4]", got)
	}
	// p100 lands in +Inf: clamped to the largest finite bound.
	if got := s.Quantile(1.0); got != 8 {
		t.Fatalf("p100 = %v, want 8", got)
	}
	var empty HistSnapshot
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Fatalf("empty quantile should be NaN")
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram([]float64{1, 10})
	b := NewHistogram([]float64{1, 10})
	a.Observe(0.5)
	b.Observe(5)
	b.Observe(50)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 3 || m.Sum != 55.5 {
		t.Fatalf("merged count=%d sum=%v", m.Count, m.Sum)
	}
	if m.Counts[0] != 1 || m.Counts[1] != 1 || m.Counts[2] != 1 {
		t.Fatalf("merged counts = %v", m.Counts)
	}
	// Merge with an empty side returns the other unchanged.
	if got := (HistSnapshot{}).Merge(m); got.Count != 3 {
		t.Fatalf("empty.Merge lost data: %+v", got)
	}
}

func TestRegistryRejectsMissingHelpAndDuplicates(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	mustPanic("empty help", func() { r.NewCounterVec("tasm_x_total", "") })
	mustPanic("blank help", func() { r.NewCounterVec("tasm_y_total", "   ") })
	r.NewCounterVec("tasm_dup_total", "a counter")
	mustPanic("duplicate", func() { r.NewGaugeFunc("tasm_dup_total", "again", func() float64 { return 0 }) })
	mustPanic("bad series type", func() {
		r.NewSeriesFunc("tasm_z", "histogram", "h", nil, func() []Sample { return nil })
	})
	mustPanic("no buckets", func() { r.NewHistogramVec("tasm_h", "h", nil) })
}

func TestRegistryTextExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.NewCounterVec("tasm_requests_total", "Requests served, by tenant.", "tenant")
	reqs.With("alpha").Add(3)
	reqs.With(`we"ird`).Inc()
	r.NewCounterVec("tasm_panics_total", "Handlers recovered from a panic.")
	r.NewGaugeFunc("tasm_up", "Always 1 while serving.", func() float64 { return 1 })
	r.NewSeriesFunc("tasm_shard_up", "gauge", "Shard health.", []string{"shard"}, func() []Sample {
		return []Sample{{LabelValues: []string{"s1"}, Value: 0}}
	})
	hist := r.NewHistogramVec("tasm_request_seconds", "Request wall time.", []float64{0.1, 1}, "endpoint")
	hist.With("GET /v1/videos").Observe(0.05)
	hist.With("GET /v1/videos").Observe(0.5)
	hist.With("GET /v1/videos").Observe(5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP tasm_requests_total Requests served, by tenant.\n# TYPE tasm_requests_total counter\n",
		`tasm_requests_total{tenant="alpha"} 3`,
		`tasm_requests_total{tenant="we\"ird"} 1`,
		"tasm_panics_total 0\n", // unlabeled counter present before first Inc
		"tasm_up 1\n",
		`tasm_shard_up{shard="s1"} 0`,
		`tasm_request_seconds_bucket{endpoint="GET /v1/videos",le="0.1"} 1`,
		`tasm_request_seconds_bucket{endpoint="GET /v1/videos",le="1"} 2`,
		`tasm_request_seconds_bucket{endpoint="GET /v1/videos",le="+Inf"} 3`,
		`tasm_request_seconds_count{endpoint="GET /v1/videos"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// Every sample line must belong to a family announced by HELP+TYPE —
	// the same property the CI lint checks on the live endpoint.
	if err := LintExposition(out); err != nil {
		t.Fatalf("self-lint: %v", err)
	}
}

func TestLintExpositionCatchesBareSeries(t *testing.T) {
	bad := "# HELP a_total ok\n# TYPE a_total counter\na_total 1\nb_total 2\n"
	if err := LintExposition(bad); err == nil {
		t.Fatal("lint accepted a series without HELP")
	}
}

func TestHistogramVecConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogramVec("tasm_t_seconds", "t", DefaultLatencyBuckets, "tenant")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				h.With(fmt.Sprintf("t%d", i%2)).Observe(float64(j) / 1000)
			}
		}(i)
	}
	wg.Wait()
	var total int64
	for _, s := range h.Snapshots() {
		total += s.Count
	}
	if total != 8*200 {
		t.Fatalf("observed %d, want %d", total, 8*200)
	}
}
