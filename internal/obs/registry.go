package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a Prometheus text-format (0.0.4) metrics registry. Every
// registration requires a non-empty HELP string and a unique family
// name — violations panic at construction time, which is how the
// "no series without a HELP line" lint is enforced in-process: a
// daemon that would serve an undocumented series fails to start, and
// the unit suite catches it long before that.
type Registry struct {
	mu    sync.Mutex
	names map[string]bool
	fams  []renderer
}

type renderer interface {
	render(w *strings.Builder)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(name, help string, fam renderer) {
	if name == "" {
		panic("obs: metric registered with empty name")
	}
	if strings.TrimSpace(help) == "" {
		panic(fmt.Sprintf("obs: metric %s registered without a HELP line", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("obs: metric %s registered twice", name))
	}
	r.names[name] = true
	r.fams = append(r.fams, fam)
}

// WriteText renders every family, in registration order, as Prometheus
// text exposition.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]renderer, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		f.render(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatValue renders integral floats without an exponent or decimal
// point (gauges like tasm_autotile_enabled must print as `1`) and
// everything else with %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...} with %q escaping, or "" when there
// are no labels.
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

func writeHeader(b *strings.Builder, name, typ, help string) {
	fmt.Fprintf(b, "# HELP %s %s\n", name, help)
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// labelKey joins label values into a map key; \xff never appears in
// our label values (tenants, endpoints, shard names).
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// ---- counters ----

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a family of counters keyed by label values.
type CounterVec struct {
	name   string
	help   string
	labels []string

	mu sync.Mutex
	m  map[string]*Counter
}

// NewCounterVec registers a counter family. With no label names it is
// a single unlabeled series (rendered bare, no braces).
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labels, m: make(map[string]*Counter)}
	r.register(name, help, v)
	return v
}

// With returns the counter for the given label values, creating it on
// first use. The arity must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.m[key]
	if !ok {
		c = &Counter{}
		v.m[key] = c
	}
	return c
}

func (v *CounterVec) render(b *strings.Builder) {
	writeHeader(b, v.name, "counter", v.help)
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type row struct {
		labels string
		val    int64
	}
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		var values []string
		if k != "" || len(v.labels) > 0 {
			values = strings.Split(k, "\xff")
		}
		rows = append(rows, row{labelString(v.labels, values), v.m[k].Value()})
	}
	v.mu.Unlock()
	if len(rows) == 0 && len(v.labels) == 0 {
		// An unlabeled counter renders 0 before its first Inc so the
		// series (and its HELP) is always present on the wire.
		rows = append(rows, row{"", 0})
	}
	for _, rw := range rows {
		fmt.Fprintf(b, "%s%s %d\n", v.name, rw.labels, rw.val)
	}
}

// ---- callback gauges/counters ----

type funcFamily struct {
	name string
	typ  string
	help string
	fn   func() float64
}

func (f *funcFamily) render(b *strings.Builder) {
	writeHeader(b, f.name, f.typ, f.help)
	fmt.Fprintf(b, "%s %s\n", f.name, formatValue(f.fn()))
}

// NewGaugeFunc registers an unlabeled gauge computed at scrape time.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, &funcFamily{name: name, typ: "gauge", help: help, fn: fn})
}

// NewCounterFunc registers an unlabeled counter whose value lives
// elsewhere (store counters, runtime stats) and is read at scrape time.
func (r *Registry) NewCounterFunc(name, help string, fn func() float64) {
	r.register(name, help, &funcFamily{name: name, typ: "counter", help: help, fn: fn})
}

// Sample is one series of a callback family: label values (matching
// the family's label names) and the value at scrape time.
type Sample struct {
	LabelValues []string
	Value       float64
}

type seriesFamily struct {
	name   string
	typ    string
	help   string
	labels []string
	fn     func() []Sample
}

func (f *seriesFamily) render(b *strings.Builder) {
	writeHeader(b, f.name, f.typ, f.help)
	for _, s := range f.fn() {
		fmt.Fprintf(b, "%s%s %s\n", f.name, labelString(f.labels, s.LabelValues), formatValue(s.Value))
	}
}

// NewSeriesFunc registers a labeled family (typ "gauge" or "counter")
// whose series set is computed at scrape time — per-shard health, map
// epochs, anything owned by another subsystem.
func (r *Registry) NewSeriesFunc(name, typ, help string, labels []string, fn func() []Sample) {
	if typ != "gauge" && typ != "counter" {
		panic(fmt.Sprintf("obs: series %s has invalid type %q", name, typ))
	}
	r.register(name, help, &seriesFamily{name: name, typ: typ, help: help, labels: labels, fn: fn})
}

// ---- histograms ----

// HistogramVec is a family of fixed-bucket histograms keyed by label
// values.
type HistogramVec struct {
	name   string
	help   string
	labels []string
	bounds []float64

	mu sync.Mutex
	m  map[string]*Histogram
}

// NewHistogramVec registers a histogram family over the given bucket
// upper bounds.
func (r *Registry) NewHistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("obs: histogram %s registered without buckets", name))
	}
	v := &HistogramVec{name: name, help: help, labels: labels, bounds: bounds, m: make(map[string]*Histogram)}
	r.register(name, help, v)
	return v
}

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("obs: %s expects %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := labelKey(values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.m[key]
	if !ok {
		h = NewHistogram(v.bounds)
		v.m[key] = h
	}
	return h
}

// Snapshots returns every child histogram's snapshot keyed by its
// label values, for quantile computation outside the scrape path.
func (v *HistogramVec) Snapshots() map[string]HistSnapshot {
	v.mu.Lock()
	hs := make(map[string]*Histogram, len(v.m))
	for k, h := range v.m {
		hs[k] = h
	}
	v.mu.Unlock()
	out := make(map[string]HistSnapshot, len(hs))
	for k, h := range hs {
		out[k] = h.Snapshot()
	}
	return out
}

func (v *HistogramVec) render(b *strings.Builder) {
	writeHeader(b, v.name, "histogram", v.help)
	v.mu.Lock()
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snaps := make([]HistSnapshot, len(keys))
	for i, k := range keys {
		snaps[i] = v.m[k].Snapshot()
	}
	v.mu.Unlock()
	bucketNames := make([]string, 0, len(v.labels)+1)
	bucketNames = append(bucketNames, v.labels...)
	bucketNames = append(bucketNames, "le")
	for i, k := range keys {
		var values []string
		if k != "" || len(v.labels) > 0 {
			values = strings.Split(k, "\xff")
		}
		s := snaps[i]
		bucketValues := make([]string, len(values)+1)
		copy(bucketValues, values)
		var cum int64
		for j, bound := range s.Bounds {
			cum += s.Counts[j]
			bucketValues[len(values)] = formatValue(bound)
			fmt.Fprintf(b, "%s_bucket%s %d\n", v.name, labelString(bucketNames, bucketValues), cum)
		}
		cum += s.Counts[len(s.Bounds)]
		bucketValues[len(values)] = "+Inf"
		fmt.Fprintf(b, "%s_bucket%s %d\n", v.name, labelString(bucketNames, bucketValues), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", v.name, labelString(v.labels, values), formatValue(s.Sum))
		fmt.Fprintf(b, "%s_count%s %d\n", v.name, labelString(v.labels, values), s.Count)
	}
}
