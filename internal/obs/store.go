package obs

import "sync"

// DefaultTraceCapacity is the ring size daemons use for the
// /v1/trace/{id} lookup buffer. 512 finished requests is hours of
// lookback at interactive rates and a few seconds under load — the
// ring is a debugging aid, not an archive.
const DefaultTraceCapacity = 512

// TraceStore is a fixed-capacity ring of finished request traces,
// indexed by trace id. Inserting the capacity+1'th record evicts the
// oldest. Re-inserting an existing id replaces its record in place
// (a retried request with the same id keeps one slot).
type TraceStore struct {
	mu   sync.Mutex
	cap  int
	ids  []string // ring of ids in insertion order
	next int
	m    map[string]Record
}

// NewTraceStore returns a ring holding at most capacity records
// (DefaultTraceCapacity when capacity <= 0).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &TraceStore{
		cap: capacity,
		ids: make([]string, 0, capacity),
		m:   make(map[string]Record, capacity),
	}
}

// Put inserts a finished trace, evicting the oldest when full.
func (s *TraceStore) Put(rec Record) {
	if rec.TraceID == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[rec.TraceID]; ok {
		s.m[rec.TraceID] = rec
		return
	}
	if len(s.ids) < s.cap {
		s.ids = append(s.ids, rec.TraceID)
	} else {
		delete(s.m, s.ids[s.next])
		s.ids[s.next] = rec.TraceID
		s.next = (s.next + 1) % s.cap
	}
	s.m[rec.TraceID] = rec
}

// Get returns the record for id, if still in the ring.
func (s *TraceStore) Get(id string) (Record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.m[id]
	return rec, ok
}

// Len returns the number of records currently held.
func (s *TraceStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}
