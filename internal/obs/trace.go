// Package obs is the stdlib-only observability layer shared by every
// tier of the system: request traces with per-stage spans, a
// ring-buffered trace store backing GET /v1/trace/{id}, fixed-bucket
// latency histograms, and a Prometheus-text metrics registry that
// refuses to register a series without a HELP line.
//
// The package deliberately imports nothing from the rest of the module
// so that core, rpcwire, client, server, and shard can all depend on it
// without cycles.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// TraceHeader is the HTTP header carrying the request trace id. The
// client mints one when the caller did not supply one; tasm-router
// forwards the inbound id on every shard sub-request; tasmd echoes the
// id back on the response so callers can correlate without parsing
// logs.
const TraceHeader = "Tasm-Trace-Id"

// NewTraceID returns a fresh 128-bit trace id as 32 lowercase hex
// characters (the W3C traceparent trace-id shape).
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable for the process at
		// large, but tracing must never take a request down; fall
		// back to a fixed id that is still valid on the wire.
		return "00000000000000000000000000000001"
	}
	return hex.EncodeToString(b[:])
}

// ValidTraceID reports whether id is acceptable as a wire trace id:
// 1..64 characters of [0-9a-zA-Z_-]. Anything else (empty, spaces,
// header-injection attempts) is rejected and a fresh id minted instead.
func ValidTraceID(id string) bool {
	if len(id) == 0 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9':
		case c >= 'a' && c <= 'z':
		case c >= 'A' && c <= 'Z':
		case c == '-' || c == '_':
		default:
			return false
		}
	}
	return true
}

// Span is one timed stage of a request (auth, route, lease, decode,
// merge, flush, ...). Offsets are microseconds relative to the trace
// start so a trace dump reads as a timeline.
type Span struct {
	Name    string            `json:"name"`
	StartUS int64             `json:"start_us"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Trace accumulates spans and annotations for one request. All methods
// are safe on a nil receiver (they no-op), so instrumented code can be
// written unconditionally: obs.FromContext(ctx).StartSpan("lease").
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []Span
	attrs map[string]string
}

// NewTrace returns a Trace rooted at time.Now with the given id.
func NewTrace(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

// ID returns the trace id ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Start returns the trace start time (zero on nil).
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// StartSpan begins a named stage and returns the function that ends
// it. The end function accepts optional attributes as alternating
// key, value pairs. Safe on nil (returns a no-op end function).
func (t *Trace) StartSpan(name string) func(attrs ...string) {
	if t == nil {
		return func(...string) {}
	}
	begin := time.Now()
	return func(attrs ...string) {
		t.AddSpan(name, begin, time.Since(begin), attrs...)
	}
}

// AddSpan records a completed stage with an explicit start and
// duration — used when the stage wall is accounted elsewhere (the
// cursor pipeline accumulates decode wall across workers and reports
// it once at drain). Safe on nil.
func (t *Trace) AddSpan(name string, begin time.Time, d time.Duration, attrs ...string) {
	if t == nil {
		return
	}
	sp := Span{
		Name:    name,
		StartUS: begin.Sub(t.start).Microseconds(),
		DurUS:   d.Microseconds(),
	}
	if len(attrs) >= 2 {
		sp.Attrs = make(map[string]string, len(attrs)/2)
		for i := 0; i+1 < len(attrs); i += 2 {
			sp.Attrs[attrs[i]] = attrs[i+1]
		}
	}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
}

// Annotate attaches a request-level key/value (tenant, status, path).
// Safe on nil.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.attrs == nil {
		t.attrs = make(map[string]string)
	}
	t.attrs[key] = value
	t.mu.Unlock()
}

// Record is the JSON shape served by GET /v1/trace/{id} and stored in
// the ring buffer.
type Record struct {
	TraceID string            `json:"trace_id"`
	Start   time.Time         `json:"start"`
	DurUS   int64             `json:"dur_us"`
	Attrs   map[string]string `json:"attrs,omitempty"`
	Spans   []Span            `json:"spans"`
}

// Snapshot copies the trace into a Record. The record duration is
// time since the trace start (callers snapshot at request end).
func (t *Trace) Snapshot() Record {
	if t == nil {
		return Record{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	rec := Record{
		TraceID: t.id,
		Start:   t.start,
		DurUS:   time.Since(t.start).Microseconds(),
		Spans:   make([]Span, len(t.spans)),
	}
	copy(rec.Spans, t.spans)
	if len(t.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(t.attrs))
		for k, v := range t.attrs {
			rec.Attrs[k] = v
		}
	}
	return rec
}

type ctxKey struct{}

// WithTrace returns a context carrying the trace. Values flow through
// the whole request path — server middleware installs the trace, the
// core cursor pipeline and the router's shard clients read it back.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. The nil result
// is usable directly: every Trace method no-ops on nil.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
