// Package policy implements TASM's tiling strategies (paper §4):
//
//   - KQKO — known queries / known objects: per-SOT fine-grained layouts
//     around the queried objects, guarded by the α do-not-tile rule (§4.2).
//   - AllObjects — pre-tile every SOT around all detected objects, the
//     "all objects" baseline of §5.3.
//   - LazyKnownQueries — known query classes, unknown locations: tile each
//     SOT with KQKO once the semantic index has complete locations for the
//     query classes in that SOT (§4.3, "lazy detection").
//   - IncrementalMore — retile touched SOTs around every class queried so
//     far, immediately (§5.3, "Incremental, more").
//   - Regret — the online-indexing strategy: accumulate estimated
//     improvement (regret) per alternative layout and retile a SOT when
//     δ > η·R (§4.4, "Incremental, regret").
//   - EdgeLayouts — camera-side layout design from capped-rate on-device
//     detection (§4.3, "edge tiling").
package policy

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/costmodel"
	"github.com/tasm-repro/tasm/internal/detect"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/semindex"
	"github.com/tasm-repro/tasm/internal/tilestore"
)

// Action is one retile decision: re-encode a SOT with a new layout.
type Action struct {
	Video  string
	SOTID  int
	Layout layout.Layout
	// Reason documents the policy's motivation (for logs and tests).
	Reason string
}

// Apply executes actions against the manager, returning the cumulative
// retile statistics. The context is threaded into every re-tile:
// cancellation aborts the in-progress re-encode within one frame's work
// and skips the remaining actions (already-committed re-tiles stay
// committed — each action is atomic).
func Apply(ctx context.Context, m *core.Manager, actions []Action) (core.RetileStats, error) {
	var total core.RetileStats
	for _, a := range actions {
		rs, err := m.RetileSOTContext(ctx, a.Video, a.SOTID, a.Layout)
		if err != nil {
			return total, fmt.Errorf("policy: retile %s/%d: %w", a.Video, a.SOTID, err)
		}
		total.DecodeWall += rs.DecodeWall
		total.EncodeWall += rs.EncodeWall
		total.Bytes += rs.Bytes
	}
	return total, nil
}

// designLayout partitions a SOT around the union of the given labels' boxes
// within the SOT's frame range.
func designLayout(m *core.Manager, video string, sot tilestore.SOTMeta, labels []string, g layout.Granularity) (layout.Layout, error) {
	meta, err := m.Meta(video)
	if err != nil {
		return layout.Layout{}, err
	}
	var boxes []geom.Rect
	for _, label := range labels {
		bs, err := m.Index().LookupBoxes(video, label, sot.From, sot.To)
		if err != nil {
			return layout.Layout{}, err
		}
		boxes = append(boxes, bs...)
	}
	return layout.Partition(boxes, g, m.Config().Constraints(meta.W, meta.H))
}

// passesAlpha applies the do-not-tile rule: a layout is acceptable for a
// query demand when P(L)/P(ω) < α.
func passesAlpha(l layout.Layout, qf costmodel.QueryFrames, alpha float64) bool {
	return costmodel.PixelRatio(l, qf) < alpha
}

// KQKO computes the known-queries/known-objects optimization (§4.2): for
// each SOT the workload touches, a fine-grained non-uniform layout around
// the objects queried in that SOT, kept only if it clears the α rule.
type KQKO struct {
	Granularity layout.Granularity
	Alpha       float64
}

// NewKQKO returns a KQKO planner with the paper's defaults.
func NewKQKO() *KQKO { return &KQKO{Granularity: layout.Fine, Alpha: costmodel.DefaultAlpha} }

// Plan returns the retile actions for a known workload over video.
func (k *KQKO) Plan(m *core.Manager, video string, workload []query.Query) ([]Action, error) {
	type sotInfo struct {
		sot    tilestore.SOTMeta
		labels map[string]bool
		demand costmodel.QueryFrames
	}
	infos := map[int]*sotInfo{}
	for _, q := range workload {
		if q.Video != video {
			continue
		}
		demands, sots, err := m.QueryDemand(q)
		if err != nil {
			return nil, err
		}
		for id, qf := range demands {
			info := infos[id]
			if info == nil {
				info = &sotInfo{sot: sots[id], labels: map[string]bool{}, demand: costmodel.QueryFrames{}}
				infos[id] = info
			}
			for _, l := range q.Pred.Labels() {
				info.labels[l] = true
			}
			for off, rs := range qf {
				info.demand[off] = append(info.demand[off], rs...)
			}
		}
	}
	var ids []int
	for id := range infos {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var actions []Action
	for _, id := range ids {
		info := infos[id]
		labels := sortedKeys(info.labels)
		l, err := designLayout(m, video, info.sot, labels, k.Granularity)
		if err != nil {
			return nil, err
		}
		if l.IsSingle() || l.Equal(info.sot.L) {
			continue
		}
		if !passesAlpha(l, info.demand, k.Alpha) {
			continue // §3.4.4: tiling would not reduce decode work enough
		}
		actions = append(actions, Action{
			Video: video, SOTID: id, Layout: l,
			Reason: "kqko:" + strings.Join(labels, "+"),
		})
	}
	return actions, nil
}

// AllObjects pre-tiles every SOT around every detected object — the
// baseline strategy the paper shows winning on sparse videos and losing on
// dense ones (§5.3). It applies no α guard, by design.
func AllObjects(m *core.Manager, video string, g layout.Granularity) ([]Action, error) {
	meta, err := m.Meta(video)
	if err != nil {
		return nil, err
	}
	labels, err := m.Index().Labels(video)
	if err != nil {
		return nil, err
	}
	var actions []Action
	for _, sot := range meta.SOTs {
		l, err := designLayout(m, video, sot, labels, g)
		if err != nil {
			return nil, err
		}
		if l.IsSingle() || l.Equal(sot.L) {
			continue
		}
		actions = append(actions, Action{Video: video, SOTID: sot.ID, Layout: l, Reason: "all-objects"})
	}
	return actions, nil
}

// LazyKnownQueries implements §4.3's lazy detection strategy: the query
// classes OQ are known upfront; a SOT is tiled with KQKO as soon as the
// semantic index holds complete locations for all of OQ in its range.
type LazyKnownQueries struct {
	OQ          []string
	Granularity layout.Granularity
	Alpha       float64
	tiled       map[string]map[int]bool // video -> SOT -> already planned
}

// NewLazyKnownQueries returns the lazy planner for the given query classes.
func NewLazyKnownQueries(oq []string) *LazyKnownQueries {
	return &LazyKnownQueries{
		OQ: oq, Granularity: layout.Fine, Alpha: costmodel.DefaultAlpha,
		tiled: map[string]map[int]bool{},
	}
}

// ObserveQuery is called after each query's detections are in the index;
// it returns retile actions for SOTs that have become fully known.
func (p *LazyKnownQueries) ObserveQuery(m *core.Manager, q query.Query) ([]Action, error) {
	demands, sots, err := m.QueryDemand(q)
	if err != nil {
		return nil, err
	}
	seen := p.tiled[q.Video]
	if seen == nil {
		seen = map[int]bool{}
		p.tiled[q.Video] = seen
	}
	var ids []int
	for id := range sots {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var actions []Action
	for _, id := range ids {
		if seen[id] {
			continue
		}
		sot := sots[id]
		// Wait until every query class is fully detected in this SOT:
		// "it cannot be sure whether a particular layout will be
		// beneficial until it knows where those objects are."
		known := true
		for _, label := range p.OQ {
			ok, err := m.Index().DetectedAll(q.Video, label, sot.From, sot.To)
			if err != nil {
				return nil, err
			}
			if !ok {
				known = false
				break
			}
		}
		if !known {
			continue
		}
		l, err := designLayout(m, q.Video, sot, p.OQ, p.Granularity)
		if err != nil {
			return nil, err
		}
		seen[id] = true
		if l.IsSingle() || l.Equal(sot.L) {
			continue
		}
		if !passesAlpha(l, demands[id], p.Alpha) {
			continue
		}
		actions = append(actions, Action{Video: q.Video, SOTID: id, Layout: l, Reason: "lazy-kqko"})
	}
	return actions, nil
}

// IncrementalMore retiles each touched SOT around all object classes
// queried so far, immediately upon seeing a query for a new class — the
// "Incremental, more" strategy of §5.3.
type IncrementalMore struct {
	Granularity layout.Granularity
	seen        map[string]map[string]bool // video -> labels queried so far
	current     map[string]map[int]string  // video -> SOT -> label-set key
}

// NewIncrementalMore returns the eager incremental planner.
func NewIncrementalMore() *IncrementalMore {
	return &IncrementalMore{
		Granularity: layout.Fine,
		seen:        map[string]map[string]bool{},
		current:     map[string]map[int]string{},
	}
}

// ObserveQuery records the query's labels and returns retile actions for
// touched SOTs whose layouts lag the accumulated label set.
func (p *IncrementalMore) ObserveQuery(m *core.Manager, q query.Query) ([]Action, error) {
	labels := p.seen[q.Video]
	if labels == nil {
		labels = map[string]bool{}
		p.seen[q.Video] = labels
	}
	for _, l := range q.Pred.Labels() {
		labels[l] = true
	}
	cur := p.current[q.Video]
	if cur == nil {
		cur = map[int]string{}
		p.current[q.Video] = cur
	}
	key := strings.Join(sortedKeys(labels), "+")

	_, sots, err := m.QueryDemand(q)
	if err != nil {
		return nil, err
	}
	var ids []int
	for id := range sots {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var actions []Action
	for _, id := range ids {
		if cur[id] == key {
			continue
		}
		l, err := designLayout(m, q.Video, sots[id], sortedKeys(labels), p.Granularity)
		if err != nil {
			return nil, err
		}
		cur[id] = key
		if l.IsSingle() || l.Equal(sots[id].L) {
			continue
		}
		actions = append(actions, Action{Video: q.Video, SOTID: id, Layout: l, Reason: "incremental-more:" + key})
	}
	return actions, nil
}

// Regret implements the paper's online-indexing strategy (§4.4). For every
// SOT it tracks alternative fine-grained layouts around subsets of the
// classes seen so far, accumulates each alternative's estimated improvement
// δ over observed queries, and retiles once δ > η·R for an alternative that
// has never been estimated to hurt a query (the α rule).
type Regret struct {
	Eta         float64
	Alpha       float64
	Model       costmodel.Model
	Granularity layout.Granularity

	seen  map[string][]string          // video -> ordered label list
	state map[string]map[int]*sotState // video -> SOT -> state
}

type sotState struct {
	regret map[string]float64 // subset key -> accumulated δ
	hurt   map[string]bool    // subset key -> failed the α rule on some query
}

// NewRegret returns the regret policy with the paper's defaults (η = 1,
// α = 0.8).
func NewRegret(model costmodel.Model) *Regret {
	return &Regret{
		Eta: 1.0, Alpha: costmodel.DefaultAlpha, Model: model, Granularity: layout.Fine,
		seen:  map[string][]string{},
		state: map[string]map[int]*sotState{},
	}
}

// ObserveQuery accumulates regret for the query and returns any retile
// actions whose accumulated improvement now offsets their re-encode cost.
func (p *Regret) ObserveQuery(m *core.Manager, q query.Query) ([]Action, error) {
	// Grow the seen-label set (OQ').
	for _, l := range q.Pred.Labels() {
		if !contains(p.seen[q.Video], l) {
			p.seen[q.Video] = append(p.seen[q.Video], l)
		}
	}
	subsets := labelSubsets(p.seen[q.Video])

	demands, sots, err := m.QueryDemand(q)
	if err != nil {
		return nil, err
	}
	vstate := p.state[q.Video]
	if vstate == nil {
		vstate = map[int]*sotState{}
		p.state[q.Video] = vstate
	}

	var ids []int
	for id := range sots {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var actions []Action
	for _, id := range ids {
		sot := sots[id]
		qf := demands[id]
		ss := vstate[id]
		if ss == nil {
			ss = &sotState{regret: map[string]float64{}, hurt: map[string]bool{}}
			vstate[id] = ss
		}
		bestKey := ""
		bestRegret := 0.0
		var bestLayout layout.Layout
		for _, subset := range subsets {
			key := strings.Join(subset, "+")
			alt, err := designLayout(m, q.Video, sot, subset, p.Granularity)
			if err != nil {
				return nil, err
			}
			if alt.IsSingle() {
				continue
			}
			// δ accumulates the estimated improvement of the alternative
			// over the SOT's current layout for this query.
			ss.regret[key] += p.Model.Delta(sot.L, alt, qf)
			// The α rule: an alternative that would not cut decode work
			// enough for some observed query is marked as hurting.
			if !passesAlpha(alt, qf, p.Alpha) {
				ss.hurt[key] = true
			}
			if ss.hurt[key] || alt.Equal(sot.L) {
				continue
			}
			if r := ss.regret[key]; r > bestRegret {
				// Retile when δ > η·R(s, L).
				if r > p.Eta*p.Model.EncodeCost(alt, sot.NumFrames()) {
					bestKey, bestRegret, bestLayout = key, r, alt
				}
			}
		}
		if bestKey != "" {
			actions = append(actions, Action{
				Video: q.Video, SOTID: id, Layout: bestLayout,
				Reason: "regret:" + bestKey,
			})
			// Fresh slate for the SOT under its new layout.
			vstate[id] = &sotState{regret: map[string]float64{}, hurt: map[string]bool{}}
		}
	}
	return actions, nil
}

// Forget drops all accumulated state for a video: its seen-label set and
// every SOT's regret ledger. Called when the video is deleted or re-ingested
// under the same name, so stale evidence cannot justify re-tiling frames
// that no longer exist.
func (p *Regret) Forget(video string) {
	delete(p.seen, video)
	delete(p.state, video)
}

// TotalRegret sums the accumulated regret of the best (non-hurt) candidate
// per SOT across all tracked videos — the "pressure" the policy has built up
// toward re-tiling, in model seconds. Exposed as the tasm_autotile_regret
// gauge.
func (p *Regret) TotalRegret() float64 {
	var total float64
	for _, vstate := range p.state {
		for _, ss := range vstate {
			best := 0.0
			for key, r := range ss.regret {
				if !ss.hurt[key] && r > best {
					best = r
				}
			}
			total += best
		}
	}
	return total
}

// labelSubsets enumerates the non-empty subsets of seen labels (the
// alternative-layout space Lalt). For more than 6 labels it falls back to
// singletons plus the full set to bound the candidate count.
func labelSubsets(labels []string) [][]string {
	n := len(labels)
	if n == 0 {
		return nil
	}
	if n > 6 {
		out := make([][]string, 0, n+1)
		for _, l := range labels {
			out = append(out, []string{l})
		}
		out = append(out, append([]string(nil), labels...))
		return out
	}
	var out [][]string
	for mask := 1; mask < 1<<n; mask++ {
		var s []string
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s = append(s, labels[i])
			}
		}
		sort.Strings(s)
		out = append(out, s)
	}
	return out
}

// EdgeLayouts designs per-SOT layouts on a (simulated) edge camera: the
// detector runs on-device as frames are captured (typically wrapped in
// detect.EveryN to respect the camera's compute budget), and layouts are
// designed around the detections of the known query classes OQ. It returns
// the layouts for IngestTiled, the detections to seed the semantic index,
// and the simulated on-camera detection latency.
func EdgeLayouts(v *scene.Video, det detect.Detector, oq []string, gop int, cons layout.Constraints, g layout.Granularity) ([]layout.Layout, []semindex.Detection, time.Duration, error) {
	n := v.Spec.NumFrames()
	numSOTs := (n + gop - 1) / gop
	layouts := make([]layout.Layout, numSOTs)
	var all []semindex.Detection
	var lat time.Duration
	want := map[string]bool{}
	for _, l := range oq {
		want[l] = true
	}
	for si := 0; si < numSOTs; si++ {
		from, to := si*gop, min((si+1)*gop, n)
		var boxes []geom.Rect
		for f := from; f < to; f++ {
			ds, d := det.Detect(v, f)
			lat += d
			for _, dd := range ds {
				all = append(all, dd)
				if len(want) == 0 || want[dd.Label] {
					boxes = append(boxes, dd.Box)
				}
			}
		}
		l, err := layout.Partition(boxes, g, cons)
		if err != nil {
			return nil, nil, lat, err
		}
		layouts[si] = l
	}
	return layouts, all, lat, nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
