package policy

import (
	"context"
	"strings"
	"testing"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/detect"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/scene"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Codec.GOPLength = 10
	cfg.MinTileW, cfg.MinTileH = 32, 32
	return cfg
}

// fixture ingests a 3-SOT sparse video with ground-truth detections for
// cars and people.
func fixture(t *testing.T) (*core.Manager, *scene.Video) {
	t.Helper()
	m, err := core.Open(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	v, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 3,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.16},
			{Class: scene.Person, Count: 2, SizeFrac: 0.22},
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Ingest("traffic", v.Frames(0, v.Spec.NumFrames()), v.Spec.FPS); err != nil {
		t.Fatal(err)
	}
	indexAll(t, m, v)
	return m, v
}

func indexAll(t *testing.T, m *core.Manager, v *scene.Video) {
	t.Helper()
	for f := 0; f < v.Spec.NumFrames(); f++ {
		for _, tr := range v.GroundTruth(f) {
			if err := m.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, label := range []string{scene.Car, scene.Person} {
		if err := m.Index().MarkDetected("traffic", label, 0, v.Spec.NumFrames()); err != nil {
			t.Fatal(err)
		}
	}
}

func mustQuery(t *testing.T, s string) query.Query {
	t.Helper()
	q, err := query.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestKQKOPlansQueriedSOTsOnly(t *testing.T) {
	m, _ := fixture(t)
	k := NewKQKO()
	workload := []query.Query{mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 10")}
	actions, err := k.Plan(m, "traffic", workload)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) == 0 {
		t.Fatal("KQKO produced no actions for a sparse video")
	}
	for _, a := range actions {
		if a.SOTID != 0 {
			t.Errorf("action for unqueried SOT %d", a.SOTID)
		}
		if a.Layout.IsSingle() {
			t.Error("action with untiled layout")
		}
		if !strings.Contains(a.Reason, "car") {
			t.Errorf("reason %q missing label", a.Reason)
		}
	}
	// Applying the plan speeds up the query.
	q := workload[0]
	_, before, _ := m.Scan(q)
	if _, err := Apply(context.Background(), m, actions); err != nil {
		t.Fatal(err)
	}
	_, after, _ := m.Scan(q)
	if after.PixelsDecoded >= before.PixelsDecoded {
		t.Errorf("KQKO plan did not reduce pixels: %d -> %d", before.PixelsDecoded, after.PixelsDecoded)
	}
}

func TestKQKOIgnoresOtherVideos(t *testing.T) {
	m, _ := fixture(t)
	k := NewKQKO()
	actions, err := k.Plan(m, "traffic", []query.Query{mustQuery(t, "SELECT car FROM other")})
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 {
		t.Errorf("planned %d actions for a workload on another video", len(actions))
	}
}

func TestAllObjectsCoversAllSOTs(t *testing.T) {
	m, _ := fixture(t)
	actions, err := AllObjects(m, "traffic", layout.Fine)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 3 {
		t.Fatalf("AllObjects planned %d actions, want 3 (one per SOT)", len(actions))
	}
	ids := map[int]bool{}
	for _, a := range actions {
		ids[a.SOTID] = true
	}
	if len(ids) != 3 {
		t.Errorf("duplicate SOT actions: %v", ids)
	}
}

func TestLazyWaitsForCoverage(t *testing.T) {
	m, err := core.Open(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, _ := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 2,
		Classes: []scene.ClassMix{{Class: scene.Car, Count: 2, SizeFrac: 0.16}},
		Seed:    5,
	})
	if _, err := m.Ingest("traffic", v.Frames(0, v.Spec.NumFrames()), v.Spec.FPS); err != nil {
		t.Fatal(err)
	}
	lazy := NewLazyKnownQueries([]string{scene.Car})
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 10")

	// No detections yet: no actions (locations unknown).
	actions, err := lazy.ObserveQuery(m, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 0 {
		t.Fatalf("lazy tiled before detection coverage: %v", actions)
	}

	// Index SOT 0's detections and mark coverage.
	for f := 0; f < 10; f++ {
		for _, tr := range v.GroundTruth(f) {
			m.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1)
		}
	}
	m.Index().MarkDetected("traffic", scene.Car, 0, 10)
	actions, err = lazy.ObserveQuery(m, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 1 || actions[0].SOTID != 0 {
		t.Fatalf("lazy actions = %v", actions)
	}
	// Once planned, the SOT is not re-planned.
	actions, _ = lazy.ObserveQuery(m, q)
	if len(actions) != 0 {
		t.Errorf("lazy re-planned a tiled SOT: %v", actions)
	}
}

func TestIncrementalMoreGrowsLabelSet(t *testing.T) {
	m, _ := fixture(t)
	im := NewIncrementalMore()
	qCar := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 10")
	actions, err := im.ObserveQuery(m, qCar)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) == 0 {
		t.Fatal("no actions on first query")
	}
	if !strings.HasSuffix(actions[0].Reason, "car") {
		t.Errorf("first layout reason = %q", actions[0].Reason)
	}
	if _, err := Apply(context.Background(), m, actions); err != nil {
		t.Fatal(err)
	}
	// Same query again: no new actions.
	actions, _ = im.ObserveQuery(m, qCar)
	if len(actions) != 0 {
		t.Errorf("re-planned unchanged label set: %v", actions)
	}
	// A person query upgrades the layout to car+person.
	qPerson := mustQuery(t, "SELECT person FROM traffic WHERE 0 <= t < 10")
	actions, _ = im.ObserveQuery(m, qPerson)
	if len(actions) == 0 {
		t.Fatal("no actions for new label")
	}
	if !strings.Contains(actions[0].Reason, "car+person") {
		t.Errorf("reason = %q, want car+person", actions[0].Reason)
	}
}

func TestRegretAccumulatesThenRetiles(t *testing.T) {
	m, _ := fixture(t)
	r := NewRegret(m.Config().Model)
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 10")
	fired := -1
	for i := 0; i < 30; i++ {
		actions, err := r.ObserveQuery(m, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(actions) > 0 {
			fired = i
			if actions[0].SOTID != 0 {
				t.Errorf("retiled SOT %d", actions[0].SOTID)
			}
			if !strings.Contains(actions[0].Reason, "car") {
				t.Errorf("reason = %q", actions[0].Reason)
			}
			break
		}
	}
	if fired < 0 {
		t.Fatal("regret never triggered a retile")
	}
	if fired == 0 {
		t.Error("regret triggered on the very first query with η=1; expected accumulation over multiple queries")
	}
}

func TestRegretEtaZeroFiresImmediately(t *testing.T) {
	m, _ := fixture(t)
	r := NewRegret(m.Config().Model)
	r.Eta = 0
	q := mustQuery(t, "SELECT car FROM traffic WHERE 0 <= t < 10")
	actions, err := r.ObserveQuery(m, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) == 0 {
		t.Error("η=0 did not fire on first query")
	}
}

func TestRegretAlphaBlocksDenseLayouts(t *testing.T) {
	// A dense video: objects cover most of the frame, so any layout fails
	// the α rule and regret must never retile.
	m, err := core.Open(t.TempDir(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, _ := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 2,
		Classes: []scene.ClassMix{{Class: scene.Person, Count: 8, SizeFrac: 0.5}},
		Seed:    11,
	})
	if _, err := m.Ingest("traffic", v.Frames(0, v.Spec.NumFrames()), v.Spec.FPS); err != nil {
		t.Fatal(err)
	}
	for f := 0; f < v.Spec.NumFrames(); f++ {
		for _, tr := range v.GroundTruth(f) {
			m.AddMetadata("traffic", f, tr.Label, tr.Box.X0, tr.Box.Y0, tr.Box.X1, tr.Box.Y1)
		}
	}
	r := NewRegret(m.Config().Model)
	r.Eta = 0 // even with no cost barrier, α must block
	q := mustQuery(t, "SELECT person FROM traffic WHERE 0 <= t < 10")
	for i := 0; i < 10; i++ {
		actions, err := r.ObserveQuery(m, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(actions) != 0 {
			t.Fatalf("α rule failed to block dense retile (iteration %d): %v", i, actions)
		}
	}
}

func TestLabelSubsets(t *testing.T) {
	if got := labelSubsets(nil); got != nil {
		t.Errorf("empty subsets = %v", got)
	}
	got := labelSubsets([]string{"a", "b"})
	if len(got) != 3 {
		t.Errorf("2-label subsets = %d, want 3", len(got))
	}
	got = labelSubsets([]string{"a", "b", "c"})
	if len(got) != 7 {
		t.Errorf("3-label subsets = %d, want 7", len(got))
	}
	// Cap: 8 labels fall back to singletons + full set.
	many := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	got = labelSubsets(many)
	if len(got) != 9 {
		t.Errorf("capped subsets = %d, want 9", len(got))
	}
}

func TestEdgeLayouts(t *testing.T) {
	v, _ := scene.Generate(scene.Spec{
		Name: "cam", W: 192, H: 96, FPS: 10, DurationSec: 2,
		Classes: []scene.ClassMix{{Class: scene.Car, Count: 2, SizeFrac: 0.16}},
		Seed:    3,
	})
	det := &detect.EveryN{Inner: &detect.Oracle{Lat: detect.EdgeLatencies()}, N: 5}
	cons := layout.Constraints{FrameW: 192, FrameH: 96, Align: 16, MinWidth: 32, MinHeight: 32}
	layouts, ds, lat, err := EdgeLayouts(v, det, []string{scene.Car}, 10, cons, layout.Fine)
	if err != nil {
		t.Fatal(err)
	}
	if len(layouts) != 2 {
		t.Fatalf("layouts = %d, want 2 SOTs", len(layouts))
	}
	tiledSome := false
	for i, l := range layouts {
		if err := l.Validate(cons); err != nil {
			t.Errorf("SOT %d layout invalid: %v", i, err)
		}
		if !l.IsSingle() {
			tiledSome = true
		}
	}
	if !tiledSome {
		t.Error("edge produced no tiled layouts")
	}
	if len(ds) == 0 {
		t.Error("edge produced no detections")
	}
	// Every-5 on 20 frames = 4 detector invocations.
	if want := 4 * detect.EdgeLatencies().Full; lat != want {
		t.Errorf("latency = %v, want %v", lat, want)
	}
}

func TestApplyPropagatesErrors(t *testing.T) {
	m, _ := fixture(t)
	bad := []Action{{Video: "traffic", SOTID: 77, Layout: layout.Single(192, 96)}}
	if _, err := Apply(context.Background(), m, bad); err == nil {
		t.Error("Apply of bad action succeeded")
	}
}
