// Package query implements TASM's access-method predicates (paper §3.1):
// a CNF predicate over labels L — each disjunctive clause retrieves pixels
// belonging to any of its labels, and conjunctions retrieve pixels in the
// intersection of the clauses' boxes — plus an optional temporal predicate
// T over frames. A small SQL-ish parser accepts the query shape used in
// the paper's evaluation ("SELECT o FROM v WHERE start <= t < end").
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/spatial"
)

// Predicate is a CNF formula: AND of clauses, each an OR of labels.
type Predicate struct {
	Clauses [][]string
}

// Single returns the predicate matching one label.
func Single(label string) Predicate { return Predicate{Clauses: [][]string{{label}}} }

// Labels returns the distinct labels mentioned anywhere in the predicate,
// sorted.
func (p Predicate) Labels() []string {
	set := map[string]bool{}
	for _, c := range p.Clauses {
		for _, l := range c {
			set[l] = true
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Empty reports whether the predicate has no clauses.
func (p Predicate) Empty() bool { return len(p.Clauses) == 0 }

// String renders the predicate in canonical CNF form.
func (p Predicate) String() string {
	var parts []string
	for _, c := range p.Clauses {
		if len(c) == 1 {
			parts = append(parts, c[0])
		} else {
			parts = append(parts, "("+strings.Join(c, " OR ")+")")
		}
	}
	return strings.Join(parts, " AND ")
}

// Regions computes the pixel regions satisfying the predicate on one frame,
// given the boxes stored in the semantic index per label. Per the paper:
// a disjunctive clause contributes the union of its labels' boxes, and the
// conjunction of clauses contributes pairwise intersections. The result is
// deduplicated of empty and fully-contained rectangles.
func (p Predicate) Regions(boxesByLabel map[string][]geom.Rect) []geom.Rect {
	if p.Empty() {
		return nil
	}
	var current []geom.Rect
	for i, clause := range p.Clauses {
		var clauseBoxes []geom.Rect
		for _, label := range clause {
			clauseBoxes = append(clauseBoxes, boxesByLabel[label]...)
		}
		if i == 0 {
			current = clauseBoxes
			continue
		}
		current = intersectSets(current, clauseBoxes)
		if len(current) == 0 {
			return nil
		}
	}
	return dedupeRects(current)
}

// intersectSetsIndexThreshold is the work bound above which conjunction
// evaluation switches from the naive pairwise loop to the grid spatial
// index — the acceleration the paper suggests for conjunctive predicates
// (§3.2).
const intersectSetsIndexThreshold = 256

// intersectSets returns all non-empty pairwise intersections of a and b.
func intersectSets(a, b []geom.Rect) []geom.Rect {
	if len(a)*len(b) > intersectSetsIndexThreshold {
		return spatial.Build(a, geom.BoundingBox(a)).IntersectSets(b)
	}
	var out []geom.Rect
	for _, ra := range a {
		for _, rb := range b {
			if r := ra.Intersect(rb); !r.Empty() {
				out = append(out, r)
			}
		}
	}
	return out
}

// dedupeRects removes empty rectangles and rectangles wholly contained in
// another.
func dedupeRects(rs []geom.Rect) []geom.Rect {
	var out []geom.Rect
	for i, r := range rs {
		if r.Empty() {
			continue
		}
		contained := false
		for j, s := range rs {
			if i == j || s.Empty() {
				continue
			}
			if s.Contains(r) && (s != r || j < i) {
				contained = true
				break
			}
		}
		if !contained {
			out = append(out, r)
		}
	}
	return out
}

// Query is a parsed TASM query: a label predicate over one or more videos
// with an optional frame range. To == -1 means "to the end of the video".
//
// Video is always the first (usually only) target; Videos is non-nil only
// for multi-video queries ("FROM a,b"), where it holds the full target
// list with Video == Videos[0]. The engine scans one video at a time —
// multi-video queries are split and merged above it (tasm.ScanContext, the
// serving layer's frame-order merge) — so code holding a Query bound for
// the engine may assume a single video; use VideoList to handle both
// shapes uniformly.
type Query struct {
	Video  string
	Videos []string
	Pred   Predicate
	From   int
	To     int
}

// VideoList returns the query's target videos: Videos when the query names
// several, else the single Video.
func (q Query) VideoList() []string {
	if len(q.Videos) > 0 {
		return q.Videos
	}
	return []string{q.Video}
}

// Parse parses a query of the form
//
//	SELECT <predicate> FROM <video>[,<video>...] [WHERE <time predicate>]
//
// Predicates use labels combined with OR/| inside clauses and AND/& between
// clauses, with optional parentheses and label='x' equality syntax. Time
// predicates accept "a <= t < b", "t >= a AND t < b", "t = n", "t < b",
// and "t >= a" over frame numbers. A comma-separated FROM list scans every
// named video (duplicates collapse to one occurrence, order preserved).
func Parse(s string) (Query, error) {
	toks, err := tokenize(s)
	if err != nil {
		return Query{}, err
	}
	p := &parser{toks: toks}
	if !p.eatWord("select") {
		return Query{}, fmt.Errorf("query: expected SELECT, got %q", p.peek())
	}
	pred, err := p.parsePredicateUntil("from")
	if err != nil {
		return Query{}, err
	}
	if !p.eatWord("from") {
		return Query{}, fmt.Errorf("query: expected FROM, got %q", p.peek())
	}
	video := p.next()
	if video == "" || video == "," {
		return Query{}, fmt.Errorf("query: missing video name")
	}
	videos := []string{video}
	for p.eat(",") {
		v := p.next()
		if v == "" || v == "," {
			return Query{}, fmt.Errorf("query: missing video name after comma")
		}
		dup := false
		for _, seen := range videos {
			if seen == v {
				dup = true
				break
			}
		}
		if !dup {
			videos = append(videos, v)
		}
	}
	q := Query{Video: video, Pred: pred, From: 0, To: -1}
	if len(videos) > 1 {
		q.Videos = videos
	}
	if p.eatWord("where") {
		if err := p.parseTime(&q); err != nil {
			return Query{}, err
		}
	}
	if p.peek() != "" {
		return Query{}, fmt.Errorf("query: trailing input at %q", p.peek())
	}
	return q, nil
}

// ParsePredicate parses just a CNF label predicate.
func ParsePredicate(s string) (Predicate, error) {
	toks, err := tokenize(s)
	if err != nil {
		return Predicate{}, err
	}
	p := &parser{toks: toks}
	pred, err := p.parsePredicateUntil("")
	if err != nil {
		return Predicate{}, err
	}
	if p.peek() != "" {
		return Predicate{}, fmt.Errorf("query: trailing input at %q", p.peek())
	}
	return pred, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) eatWord(w string) bool {
	if strings.EqualFold(p.peek(), w) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) eat(tok string) bool {
	if p.peek() == tok {
		p.pos++
		return true
	}
	return false
}

// parsePredicateUntil parses clauses until EOF or the stop keyword.
func (p *parser) parsePredicateUntil(stop string) (Predicate, error) {
	var pred Predicate
	for {
		clause, err := p.parseClause(stop)
		if err != nil {
			return Predicate{}, err
		}
		pred.Clauses = append(pred.Clauses, clause)
		if p.eatWord("and") || p.eat("&") || p.eat("&&") {
			continue
		}
		break
	}
	return pred, nil
}

func (p *parser) parseClause(stop string) ([]string, error) {
	paren := p.eat("(")
	var labels []string
	for {
		label, err := p.parseTerm(stop)
		if err != nil {
			return nil, err
		}
		labels = append(labels, label)
		if p.eatWord("or") || p.eat("|") || p.eat("||") {
			continue
		}
		break
	}
	if paren && !p.eat(")") {
		return nil, fmt.Errorf("query: missing ) at %q", p.peek())
	}
	return labels, nil
}

func (p *parser) parseTerm(stop string) (string, error) {
	t := p.peek()
	if t == "" || (stop != "" && strings.EqualFold(t, stop)) ||
		strings.EqualFold(t, "and") || strings.EqualFold(t, "or") {
		return "", fmt.Errorf("query: expected label, got %q", t)
	}
	p.pos++
	// label = 'car' form.
	if strings.EqualFold(t, "label") && p.eat("=") {
		v := p.next()
		if v == "" {
			return "", fmt.Errorf("query: missing label value")
		}
		return v, nil
	}
	return t, nil
}

// parseTime handles the supported temporal predicate forms.
func (p *parser) parseTime(q *Query) error {
	// Form: <num> <= t < <num>  (also accepts < on the left).
	if n, ok := p.peekInt(); ok {
		p.pos++
		op1 := p.next()
		if op1 != "<=" && op1 != "<" {
			return fmt.Errorf("query: unexpected %q in time predicate", op1)
		}
		if !p.eatWord("t") {
			return fmt.Errorf("query: expected t in time predicate")
		}
		q.From = n
		if op1 == "<" {
			q.From = n + 1
		}
		op2 := p.next()
		if op2 != "<" && op2 != "<=" {
			return fmt.Errorf("query: unexpected %q in time predicate", op2)
		}
		m, ok := p.peekInt()
		if !ok {
			return fmt.Errorf("query: expected number, got %q", p.peek())
		}
		p.pos++
		q.To = m
		if op2 == "<=" {
			q.To = m + 1
		}
		return nil
	}
	// Forms starting with t.
	if !p.eatWord("t") {
		return fmt.Errorf("query: expected time predicate, got %q", p.peek())
	}
	for {
		op := p.next()
		n, ok := p.peekInt()
		if !ok {
			return fmt.Errorf("query: expected number after %q", op)
		}
		p.pos++
		switch op {
		case "=", "==":
			q.From, q.To = n, n+1
		case "<":
			q.To = n
		case "<=":
			q.To = n + 1
		case ">":
			q.From = n + 1
		case ">=":
			q.From = n
		default:
			return fmt.Errorf("query: unsupported operator %q", op)
		}
		if p.eatWord("and") {
			if !p.eatWord("t") {
				return fmt.Errorf("query: expected t after AND")
			}
			continue
		}
		return nil
	}
}

func (p *parser) peekInt() (int, bool) {
	n, err := strconv.Atoi(p.peek())
	return n, err == nil
}

// tokenize splits the input into identifiers, numbers, quoted strings, and
// operator symbols.
func tokenize(s string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',':
			toks = append(toks, string(c))
			i++
		case c == '&' || c == '|':
			j := i + 1
			if j < len(s) && s[j] == c {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case c == '<' || c == '>' || c == '=' || c == '!':
			j := i + 1
			if j < len(s) && s[j] == '=' {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j >= len(s) {
				return nil, fmt.Errorf("query: unterminated string at %d", i)
			}
			toks = append(toks, s[i+1:j])
			i = j + 1
		case isIdentChar(c):
			j := i
			for j < len(s) && isIdentChar(s[j]) {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		default:
			return nil, fmt.Errorf("query: unexpected character %q at %d", c, i)
		}
	}
	return toks, nil
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == '-'
}
