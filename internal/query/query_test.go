package query

import (
	"reflect"
	"testing"

	"github.com/tasm-repro/tasm/internal/geom"
)

func TestParseSimpleSelect(t *testing.T) {
	q, err := Parse("SELECT car FROM traffic")
	if err != nil {
		t.Fatal(err)
	}
	if q.Video != "traffic" {
		t.Errorf("video = %q", q.Video)
	}
	if q.From != 0 || q.To != -1 {
		t.Errorf("range = [%d,%d)", q.From, q.To)
	}
	if !reflect.DeepEqual(q.Pred.Clauses, [][]string{{"car"}}) {
		t.Errorf("pred = %+v", q.Pred)
	}
}

func TestParseTemporalForms(t *testing.T) {
	cases := []struct {
		sql      string
		from, to int
	}{
		{"SELECT car FROM v WHERE 10 <= t < 20", 10, 20},
		{"SELECT car FROM v WHERE 10 < t < 20", 11, 20},
		{"SELECT car FROM v WHERE 10 <= t <= 20", 10, 21},
		{"SELECT car FROM v WHERE t >= 10 AND t < 20", 10, 20},
		{"SELECT car FROM v WHERE t > 9 AND t <= 19", 10, 20},
		{"SELECT car FROM v WHERE t = 15", 15, 16},
		{"SELECT car FROM v WHERE t < 20", 0, 20},
		{"SELECT car FROM v WHERE t >= 5", 5, -1},
	}
	for _, tc := range cases {
		q, err := Parse(tc.sql)
		if err != nil {
			t.Errorf("%s: %v", tc.sql, err)
			continue
		}
		if q.From != tc.from || q.To != tc.to {
			t.Errorf("%s: range [%d,%d), want [%d,%d)", tc.sql, q.From, q.To, tc.from, tc.to)
		}
	}
}

func TestParsePredicateForms(t *testing.T) {
	cases := []struct {
		in   string
		want [][]string
	}{
		{"car", [][]string{{"car"}}},
		{"car|bicycle", [][]string{{"car", "bicycle"}}},
		{"car OR bicycle", [][]string{{"car", "bicycle"}}},
		{"(car OR bicycle) AND red", [][]string{{"car", "bicycle"}, {"red"}}},
		{"car & red", [][]string{{"car"}, {"red"}}},
		{"car && red", [][]string{{"car"}, {"red"}}},
		{"label='car' AND label='red'", [][]string{{"car"}, {"red"}}},
		{"(label='car' OR label='bicycle') AND red", [][]string{{"car", "bicycle"}, {"red"}}},
	}
	for _, tc := range cases {
		p, err := ParsePredicate(tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if !reflect.DeepEqual(p.Clauses, tc.want) {
			t.Errorf("%q: got %v, want %v", tc.in, p.Clauses, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM v",
		"car FROM v",
		"SELECT car FROM",
		"SELECT car FROM v WHERE",
		"SELECT car FROM v WHERE x < 5",
		"SELECT car FROM v WHERE t ~ 5",
		"SELECT car FROM v WHERE 10 <= t",
		"SELECT (car FROM v",
		"SELECT car FROM v extra",
		"SELECT car FROM v WHERE t = 'abc'",
		"SELECT 'unterminated FROM v",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("%q: expected error", s)
		}
	}
}

func TestPredicateLabels(t *testing.T) {
	p, _ := ParsePredicate("(car OR bicycle) AND red AND car")
	if got := p.Labels(); !reflect.DeepEqual(got, []string{"bicycle", "car", "red"}) {
		t.Errorf("Labels = %v", got)
	}
	var empty Predicate
	if !empty.Empty() || len(empty.Labels()) != 0 {
		t.Error("empty predicate misbehaves")
	}
}

func TestPredicateString(t *testing.T) {
	p, _ := ParsePredicate("(car OR bicycle) AND red")
	if got := p.String(); got != "(car OR bicycle) AND red" {
		t.Errorf("String = %q", got)
	}
	p2, err := ParsePredicate(p.String())
	if err != nil || !reflect.DeepEqual(p2, p) {
		t.Errorf("String round trip failed: %v %v", p2, err)
	}
}

func TestRegionsSingleClause(t *testing.T) {
	p := Single("car")
	boxes := map[string][]geom.Rect{
		"car":    {geom.R(0, 0, 10, 10), geom.R(50, 50, 60, 60)},
		"person": {geom.R(100, 100, 110, 110)},
	}
	got := p.Regions(boxes)
	if len(got) != 2 {
		t.Fatalf("got %d regions: %v", len(got), got)
	}
}

func TestRegionsDisjunction(t *testing.T) {
	p, _ := ParsePredicate("car|person")
	boxes := map[string][]geom.Rect{
		"car":    {geom.R(0, 0, 10, 10)},
		"person": {geom.R(50, 50, 60, 60)},
	}
	got := p.Regions(boxes)
	if len(got) != 2 {
		t.Fatalf("union should keep both boxes: %v", got)
	}
}

func TestRegionsConjunction(t *testing.T) {
	p, _ := ParsePredicate("car AND red")
	boxes := map[string][]geom.Rect{
		"car": {geom.R(0, 0, 20, 20), geom.R(100, 0, 120, 20)},
		"red": {geom.R(10, 10, 30, 30)},
	}
	got := p.Regions(boxes)
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	if got[0] != geom.R(10, 10, 20, 20) {
		t.Errorf("intersection = %v", got[0])
	}
	// No red overlapping the second car: conjunction drops it.
	boxes["red"] = []geom.Rect{geom.R(500, 500, 510, 510)}
	if got := p.Regions(boxes); len(got) != 0 {
		t.Errorf("disjoint conjunction returned %v", got)
	}
}

func TestRegionsMissingLabel(t *testing.T) {
	p, _ := ParsePredicate("car AND red")
	boxes := map[string][]geom.Rect{"car": {geom.R(0, 0, 10, 10)}}
	if got := p.Regions(boxes); len(got) != 0 {
		t.Errorf("missing conjunct label returned %v", got)
	}
	var empty Predicate
	if got := empty.Regions(boxes); got != nil {
		t.Errorf("empty predicate returned %v", got)
	}
}

func TestRegionsDedupe(t *testing.T) {
	p := Single("car")
	boxes := map[string][]geom.Rect{
		"car": {geom.R(0, 0, 100, 100), geom.R(10, 10, 20, 20), geom.R(0, 0, 100, 100)},
	}
	got := p.Regions(boxes)
	if len(got) != 1 || got[0] != geom.R(0, 0, 100, 100) {
		t.Errorf("dedupe failed: %v", got)
	}
}

func TestThreeWayConjunction(t *testing.T) {
	p, _ := ParsePredicate("a AND b AND c")
	boxes := map[string][]geom.Rect{
		"a": {geom.R(0, 0, 30, 30)},
		"b": {geom.R(10, 0, 40, 30)},
		"c": {geom.R(0, 10, 30, 40)},
	}
	got := p.Regions(boxes)
	if len(got) != 1 || got[0] != geom.R(10, 10, 30, 30) {
		t.Errorf("3-way intersection = %v", got)
	}
}

func TestIntersectSetsIndexedMatchesNaive(t *testing.T) {
	// Above the threshold the spatial-index path must produce the same
	// multiset of intersections as the naive path.
	var a, b []geom.Rect
	for i := 0; i < 30; i++ {
		a = append(a, geom.R(i*7%300, i*13%200, i*7%300+40, i*13%200+30))
		b = append(b, geom.R(i*11%280, i*5%180, i*11%280+35, i*5%180+45))
	}
	if len(a)*len(b) <= intersectSetsIndexThreshold {
		t.Fatalf("test sets too small to exercise indexed path")
	}
	got := intersectSets(a, b)
	var want []geom.Rect
	for _, ra := range a {
		for _, rb := range b {
			if r := ra.Intersect(rb); !r.Empty() {
				want = append(want, r)
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("indexed found %d, naive %d", len(got), len(want))
	}
	count := map[geom.Rect]int{}
	for _, r := range got {
		count[r]++
	}
	for _, r := range want {
		count[r]--
	}
	for r, c := range count {
		if c != 0 {
			t.Fatalf("intersection multiset differs at %v (delta %d)", r, c)
		}
	}
}

func TestRegionsLargeConjunction(t *testing.T) {
	// End-to-end: a conjunctive predicate over large box sets goes through
	// the indexed path and still returns correct regions.
	p, _ := ParsePredicate("car AND red")
	boxes := map[string][]geom.Rect{}
	for i := 0; i < 40; i++ {
		boxes["car"] = append(boxes["car"], geom.R(i*10, 0, i*10+8, 50))
		boxes["red"] = append(boxes["red"], geom.R(i*10+4, 10, i*10+12, 40))
	}
	got := p.Regions(boxes)
	if len(got) == 0 {
		t.Fatal("no regions")
	}
	for _, r := range got {
		if r.Empty() {
			t.Error("empty region returned")
		}
		// Every region must lie inside some car box and some red box.
		inCar, inRed := false, false
		for _, b := range boxes["car"] {
			if b.Contains(r) {
				inCar = true
			}
		}
		for _, b := range boxes["red"] {
			if b.Contains(r) {
				inRed = true
			}
		}
		if !inCar || !inRed {
			t.Errorf("region %v not inside both conjuncts", r)
		}
	}
}

func TestParseMultiVideoFrom(t *testing.T) {
	q, err := Parse("SELECT car FROM a, b, c WHERE 0 <= t < 10")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Videos, []string{"a", "b", "c"}) {
		t.Errorf("videos = %v", q.Videos)
	}
	// The invariant every single-video consumer relies on: Video is the
	// first entry, so code unaware of Videos still sees a valid query.
	if q.Video != "a" {
		t.Errorf("video = %q, want first of the list", q.Video)
	}
	if !reflect.DeepEqual(q.VideoList(), []string{"a", "b", "c"}) {
		t.Errorf("VideoList = %v", q.VideoList())
	}
	if q.From != 0 || q.To != 10 {
		t.Errorf("range [%d,%d)", q.From, q.To)
	}
}

func TestParseSingleVideoLeavesVideosNil(t *testing.T) {
	q, err := Parse("SELECT car FROM only")
	if err != nil {
		t.Fatal(err)
	}
	if q.Videos != nil {
		t.Errorf("single-video parse set Videos = %v", q.Videos)
	}
	if !reflect.DeepEqual(q.VideoList(), []string{"only"}) {
		t.Errorf("VideoList = %v", q.VideoList())
	}
}

func TestParseMultiVideoDedupes(t *testing.T) {
	q, err := Parse("SELECT car FROM a, b, a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Videos, []string{"a", "b"}) {
		t.Errorf("videos = %v, want duplicates dropped order-preserving", q.Videos)
	}
	// Deduping all the way back down to one video restores the plain
	// single-video shape.
	q, err = Parse("SELECT car FROM a, a")
	if err != nil {
		t.Fatal(err)
	}
	if q.Videos != nil || q.Video != "a" {
		t.Errorf("a,a: video=%q videos=%v", q.Video, q.Videos)
	}
}

func TestParseMultiVideoErrors(t *testing.T) {
	bad := []string{
		"SELECT car FROM a,",
		"SELECT car FROM ,a",
		"SELECT car FROM a,,b",
		"SELECT car FROM a, WHERE t < 5",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("%q: expected error", s)
		}
	}
}
