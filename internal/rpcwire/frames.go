package rpcwire

// Wire protocol v2: binary frame streaming.
//
// The v1 NDJSON stream base64-encodes every pixel plane (encoding/json's
// []byte representation), a ~33% tax on exactly the bytes TASM works
// hardest to avoid shipping. The v2 framing carries the same stream —
// regions, whole frames, the stats trailer, the error trailer — as
// length-delimited binary records: fixed little-endian headers, pixel
// planes as raw bytes, zero base64 and zero per-region JSON. The two
// encodings are negotiated per request (Accept / Tasm-Api-Version) and
// are interchangeable: a stream decodes to byte-identical pixels and
// reconstructs the same error sentinels whichever framing carried it.
// NDJSON stays the default — curl without headers keeps working.
//
// Stream layout (all integers little-endian):
//
//	stream  := magic record*
//	magic   := "TASMFRM2" (8 bytes)
//	record  := tag(u8) payload
//
//	tag 'R' region:  u32 frame, i32 x0 y0 x1 y1, u32 w h, planes
//	tag 'F' frame:   u32 index, u32 w h, planes
//	tag 'S' stats:   u32 len, len bytes of JSON ScanStats   (terminal, success)
//	tag 'E' error:   u32 len, len bytes of JSON ErrorBody   (terminal, failure)
//	planes  := Y[w*h] Cb[(w/2)*(h/2)] Cr[(w/2)*(h/2)]
//
// The trailers deliberately reuse the v1 JSON encodings: the error
// envelope is shared between framings, so a mid-stream failure
// reconstructs the exact tasm.Err* sentinel regardless of how the
// pixels traveled, and a new trailer field never needs a frame-format
// bump. A stream that ends without a trailer record was torn
// mid-flight; readers must surface that as an error, never as clean
// exhaustion — the same contract as the NDJSON stats line.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Media types and negotiation headers for the streaming endpoints.
const (
	// ContentTypeNDJSON is the v1 stream encoding (the default): one
	// JSON StreamLine per line, planes base64-encoded.
	ContentTypeNDJSON = "application/x-ndjson"
	// ContentTypeBinary is the v2 stream encoding: length-prefixed
	// binary records with raw pixel planes.
	ContentTypeBinary = "application/x-tasm-frames"
	// APIVersionHeader requests a protocol version without touching
	// Accept; "2" selects the binary stream framing.
	APIVersionHeader = "Tasm-Api-Version"
	// APIVersionBinary is the APIVersionHeader value that selects
	// ContentTypeBinary.
	APIVersionBinary = "2"
)

// CacheBudgetHeader carries a per-request cache admission budget in
// bytes: how much of the daemon's shared decoded-tile cache this
// request may fill with its own decodes (0 = none — the request reads
// the cache but cannot pollute it). Absent means unlimited admission.
const CacheBudgetHeader = "Tasm-Cache-Budget"

// streamMagic opens every binary stream; a reader that does not see it
// is pointed at the wrong encoding (or the wrong port) and must fail
// loudly instead of misparsing pixel data as record tags.
var streamMagic = [8]byte{'T', 'A', 'S', 'M', 'F', 'R', 'M', '2'}

// Record tags.
const (
	tagRegion byte = 'R'
	tagFrame  byte = 'F'
	tagStats  byte = 'S'
	tagError  byte = 'E'
)

// Hostile-input bounds for the reader: a plane larger than
// maxPlanePixels (256 Mpx — 8K video is ~33 Mpx) or a JSON trailer
// larger than maxTrailerBytes cannot be legitimate and must not drive
// an allocation.
const (
	maxPlanePixels  = 1 << 28
	maxTrailerBytes = 1 << 20
)

// FrameStreamWriter encodes a result stream in the binary framing. It
// buffers internally; call Flush after each record to hand bytes to the
// transport (the server flushes per record so remote time-to-first-byte
// tracks the pipeline's time-to-first-result).
type FrameStreamWriter struct {
	bw     *bufio.Writer
	wrote  bool // magic emitted
	header [4 + 4*4 + 2*4 + 1]byte
}

// NewFrameStreamWriter returns a writer framing onto w.
func NewFrameStreamWriter(w io.Writer) *FrameStreamWriter {
	return &FrameStreamWriter{bw: bufio.NewWriterSize(w, 32<<10)}
}

func (w *FrameStreamWriter) magic() error {
	if w.wrote {
		return nil
	}
	w.wrote = true
	_, err := w.bw.Write(streamMagic[:])
	return err
}

// WriteLine encodes one stream record: exactly one of line's fields
// must be set, matching the NDJSON envelope contract.
func (w *FrameStreamWriter) WriteLine(line StreamLine) error {
	switch {
	case line.Region != nil:
		return w.writeRegion(*line.Region)
	case line.Frame != nil:
		return w.writeFrame(*line.Frame)
	case line.Stats != nil:
		return w.writeJSONRecord(tagStats, line.Stats)
	case line.Error != nil:
		return w.writeJSONRecord(tagError, line.Error)
	default:
		return fmt.Errorf("rpcwire: stream line with no payload")
	}
}

// Flush pushes buffered records to the underlying writer.
func (w *FrameStreamWriter) Flush() error { return w.bw.Flush() }

func (w *FrameStreamWriter) writeRegion(r Region) error {
	if err := w.magic(); err != nil {
		return err
	}
	h := w.header[:0]
	h = append(h, tagRegion)
	h = binary.LittleEndian.AppendUint32(h, uint32(r.Frame))
	h = binary.LittleEndian.AppendUint32(h, uint32(int32(r.Region.X0)))
	h = binary.LittleEndian.AppendUint32(h, uint32(int32(r.Region.Y0)))
	h = binary.LittleEndian.AppendUint32(h, uint32(int32(r.Region.X1)))
	h = binary.LittleEndian.AppendUint32(h, uint32(int32(r.Region.Y1)))
	if _, err := w.bw.Write(h); err != nil {
		return err
	}
	return w.writePlanes(r.Pixels)
}

func (w *FrameStreamWriter) writeFrame(f FrameLine) error {
	if err := w.magic(); err != nil {
		return err
	}
	h := w.header[:0]
	h = append(h, tagFrame)
	h = binary.LittleEndian.AppendUint32(h, uint32(f.Index))
	if _, err := w.bw.Write(h); err != nil {
		return err
	}
	return w.writePlanes(f.Pixels)
}

// writePlanes emits the w/h header and the three raw planes.
func (w *FrameStreamWriter) writePlanes(f Frame) error {
	if f.W <= 0 || f.H <= 0 || f.W%2 != 0 || f.H%2 != 0 ||
		len(f.Y) != f.W*f.H || len(f.Cb) != (f.W/2)*(f.H/2) || len(f.Cr) != (f.W/2)*(f.H/2) {
		return fmt.Errorf("rpcwire: refusing to frame inconsistent %dx%d pixels", f.W, f.H)
	}
	var dims [8]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(f.W))
	binary.LittleEndian.PutUint32(dims[4:], uint32(f.H))
	if _, err := w.bw.Write(dims[:]); err != nil {
		return err
	}
	for _, plane := range [][]byte{f.Y, f.Cb, f.Cr} {
		if _, err := w.bw.Write(plane); err != nil {
			return err
		}
	}
	return nil
}

// writeJSONRecord emits a length-prefixed JSON trailer record — the
// encoding shared with the NDJSON stream's final line.
func (w *FrameStreamWriter) writeJSONRecord(tag byte, v any) error {
	if err := w.magic(); err != nil {
		return err
	}
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	var h [5]byte
	h[0] = tag
	binary.LittleEndian.PutUint32(h[1:], uint32(len(data)))
	if _, err := w.bw.Write(h[:]); err != nil {
		return err
	}
	_, err = w.bw.Write(data)
	return err
}

// FrameStreamReader decodes a binary result stream record by record
// into the same StreamLine envelope the NDJSON decoder produces, so
// consumers are encoding-agnostic past this point.
type FrameStreamReader struct {
	br        *bufio.Reader
	readMagic bool
}

// NewFrameStreamReader returns a reader decoding the binary framing
// from r.
func NewFrameStreamReader(r io.Reader) *FrameStreamReader {
	return &FrameStreamReader{br: bufio.NewReaderSize(r, 64 << 10)}
}

// ReadLine decodes the next record. It returns io.EOF at a stream
// boundary between records; any other error (including a truncated
// record) is a torn or malformed stream. Enforcing the "a clean stream
// ends with a stats or error record" contract is the caller's job,
// exactly as with the NDJSON stats line.
func (r *FrameStreamReader) ReadLine() (StreamLine, error) {
	if !r.readMagic {
		var m [8]byte
		if _, err := io.ReadFull(r.br, m[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				err = fmt.Errorf("rpcwire: truncated stream magic: %w", io.ErrUnexpectedEOF)
			}
			return StreamLine{}, err
		}
		if m != streamMagic {
			return StreamLine{}, fmt.Errorf("rpcwire: bad stream magic %q (not a %s stream)", m, ContentTypeBinary)
		}
		r.readMagic = true
	}
	tag, err := r.br.ReadByte()
	if err != nil {
		return StreamLine{}, err // io.EOF here is a record boundary
	}
	switch tag {
	case tagRegion:
		var h [5 * 4]byte
		if _, err := io.ReadFull(r.br, h[:]); err != nil {
			return StreamLine{}, truncated(err)
		}
		reg := Region{
			Frame: int(binary.LittleEndian.Uint32(h[0:])),
			Region: Rect{
				X0: int(int32(binary.LittleEndian.Uint32(h[4:]))),
				Y0: int(int32(binary.LittleEndian.Uint32(h[8:]))),
				X1: int(int32(binary.LittleEndian.Uint32(h[12:]))),
				Y1: int(int32(binary.LittleEndian.Uint32(h[16:]))),
			},
		}
		if reg.Pixels, err = r.readPlanes(); err != nil {
			return StreamLine{}, err
		}
		return StreamLine{Region: &reg}, nil
	case tagFrame:
		var h [4]byte
		if _, err := io.ReadFull(r.br, h[:]); err != nil {
			return StreamLine{}, truncated(err)
		}
		fl := FrameLine{Index: int(binary.LittleEndian.Uint32(h[:]))}
		if fl.Pixels, err = r.readPlanes(); err != nil {
			return StreamLine{}, err
		}
		return StreamLine{Frame: &fl}, nil
	case tagStats:
		var st ScanStats
		if err := r.readJSONRecord(&st); err != nil {
			return StreamLine{}, err
		}
		return StreamLine{Stats: &st}, nil
	case tagError:
		var body ErrorBody
		if err := r.readJSONRecord(&body); err != nil {
			return StreamLine{}, err
		}
		return StreamLine{Error: &body}, nil
	default:
		return StreamLine{}, fmt.Errorf("rpcwire: unknown stream record tag 0x%02x", tag)
	}
}

// readPlanes reads the w/h header, validates it against the hostile-
// input bounds, and reads the three raw planes.
func (r *FrameStreamReader) readPlanes() (Frame, error) {
	var dims [8]byte
	if _, err := io.ReadFull(r.br, dims[:]); err != nil {
		return Frame{}, truncated(err)
	}
	w := int(binary.LittleEndian.Uint32(dims[0:]))
	h := int(binary.LittleEndian.Uint32(dims[4:]))
	// Per-dimension bound before the product: w and h arrive as u32, so
	// w*h can overflow int64 negative and slip past a product-only
	// check straight into make().
	if w <= 0 || h <= 0 || w%2 != 0 || h%2 != 0 || w > maxPlanePixels || h > maxPlanePixels/w {
		return Frame{}, fmt.Errorf("rpcwire: implausible frame dimensions %dx%d on stream", w, h)
	}
	f := Frame{W: w, H: h,
		Y:  make([]byte, w*h),
		Cb: make([]byte, (w/2)*(h/2)),
		Cr: make([]byte, (w/2)*(h/2)),
	}
	for _, plane := range [][]byte{f.Y, f.Cb, f.Cr} {
		if _, err := io.ReadFull(r.br, plane); err != nil {
			return Frame{}, truncated(err)
		}
	}
	return f, nil
}

// readJSONRecord reads a length-prefixed JSON trailer into v.
func (r *FrameStreamReader) readJSONRecord(v any) error {
	var lenb [4]byte
	if _, err := io.ReadFull(r.br, lenb[:]); err != nil {
		return truncated(err)
	}
	n := int(binary.LittleEndian.Uint32(lenb[:]))
	if n <= 0 || n > maxTrailerBytes {
		return fmt.Errorf("rpcwire: implausible trailer length %d on stream", n)
	}
	data := make([]byte, n)
	if _, err := io.ReadFull(r.br, data); err != nil {
		return truncated(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("rpcwire: malformed stream trailer: %w", err)
	}
	return nil
}

// truncated normalizes a mid-record EOF: io.EOF inside a record means
// the stream tore, which must never look like a boundary.
func truncated(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return fmt.Errorf("rpcwire: truncated stream record: %w", io.ErrUnexpectedEOF)
	}
	return err
}
