package rpcwire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"testing"
)

// randFrame builds a random even-dimensioned frame with all three
// planes filled from rng (including bytes that are not valid UTF-8 and
// would not survive a naive text encoding).
func randFrame(rng *rand.Rand) Frame {
	w := 2 * (1 + rng.Intn(32))
	h := 2 * (1 + rng.Intn(32))
	f := Frame{W: w, H: h,
		Y:  make([]byte, w*h),
		Cb: make([]byte, (w/2)*(h/2)),
		Cr: make([]byte, (w/2)*(h/2)),
	}
	rng.Read(f.Y)
	rng.Read(f.Cb)
	rng.Read(f.Cr)
	return f
}

// randStream builds a random payload sequence (regions and frames
// interleaved) and a terminal line: stats for clean streams, an error
// envelope for failed ones (the sentinel chosen from the full mapping
// table).
func randStream(rng *rand.Rand) ([]StreamLine, StreamLine) {
	n := rng.Intn(8)
	lines := make([]StreamLine, 0, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			lines = append(lines, StreamLine{Region: &Region{
				Frame: rng.Intn(1 << 20),
				Region: Rect{X0: rng.Intn(4096), Y0: rng.Intn(4096),
					X1: rng.Intn(4096), Y1: rng.Intn(4096)},
				Pixels: randFrame(rng),
			}})
		} else {
			lines = append(lines, StreamLine{Frame: &FrameLine{
				Index:  rng.Intn(1 << 20),
				Pixels: randFrame(rng),
			}})
		}
	}
	sentinels := Sentinels()
	if rng.Intn(2) == 0 {
		return lines, StreamLine{Stats: &ScanStats{
			DecodeWallNs: rng.Int63(), PixelsDecoded: rng.Int63(),
			RegionsReturned: n, SOTsTouched: rng.Intn(64),
		}}
	}
	s := sentinels[rng.Intn(len(sentinels))]
	_, body := EncodeError(fmt.Errorf("mid-stream: %w", s))
	return lines, StreamLine{Error: &body}
}

// encodeNDJSON / decodeNDJSON are the v1 framing, exactly as the server
// and client implement it (json.Encoder per line).
func encodeNDJSON(t *testing.T, lines []StreamLine) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, l := range lines {
		if err := enc.Encode(l); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func decodeNDJSON(t *testing.T, data []byte) []StreamLine {
	t.Helper()
	var out []StreamLine
	dec := json.NewDecoder(bytes.NewReader(data))
	for {
		var l StreamLine
		if err := dec.Decode(&l); err == io.EOF {
			return out
		} else if err != nil {
			t.Fatal(err)
		}
		out = append(out, l)
	}
}

func encodeBinary(t *testing.T, lines []StreamLine) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewFrameStreamWriter(&buf)
	for _, l := range lines {
		if err := w.WriteLine(l); err != nil {
			t.Fatal(err)
		}
		if err := w.Flush(); err != nil { // per-record flush, as the server does
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func decodeBinary(t *testing.T, data []byte) []StreamLine {
	t.Helper()
	var out []StreamLine
	r := NewFrameStreamReader(bytes.NewReader(data))
	for {
		l, err := r.ReadLine()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, l)
	}
}

// TestFramingRoundTripProperty is the v2 acceptance property: random
// streams — regions and frames with random planes, terminated by a
// stats or error trailer — round-trip through BOTH framings to
// identical decoded content: byte-identical pixels, identical headers,
// and identical sentinel reconstruction through the shared error
// envelope. It also pins the wire-size motivation: the binary stream
// must be materially smaller than the NDJSON stream carrying the same
// pixels.
func TestFramingRoundTripProperty(t *testing.T) {
	var ndjsonBytes, binaryBytes, pixelBytes int64
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		payload, terminal := randStream(rng)
		lines := append(append([]StreamLine{}, payload...), terminal)

		nd := encodeNDJSON(t, lines)
		bin := encodeBinary(t, lines)
		ndjsonBytes += int64(len(nd))
		binaryBytes += int64(len(bin))
		for _, l := range payload {
			if l.Region != nil {
				pixelBytes += int64(len(l.Region.Pixels.Y) + len(l.Region.Pixels.Cb) + len(l.Region.Pixels.Cr))
			}
			if l.Frame != nil {
				pixelBytes += int64(len(l.Frame.Pixels.Y) + len(l.Frame.Pixels.Cb) + len(l.Frame.Pixels.Cr))
			}
		}

		got := map[string][]StreamLine{
			"ndjson": decodeNDJSON(t, nd),
			"binary": decodeBinary(t, bin),
		}
		for enc, gl := range got {
			if len(gl) != len(lines) {
				t.Fatalf("seed %d %s: %d lines decoded, want %d", seed, enc, len(gl), len(lines))
			}
			for i, l := range lines {
				g := gl[i]
				switch {
				case l.Region != nil:
					if g.Region == nil || g.Region.Frame != l.Region.Frame || g.Region.Region != l.Region.Region {
						t.Fatalf("seed %d %s line %d: region header mismatch", seed, enc, i)
					}
					assertFrameEqual(t, g.Region.Pixels, l.Region.Pixels, enc, seed, i)
				case l.Frame != nil:
					if g.Frame == nil || g.Frame.Index != l.Frame.Index {
						t.Fatalf("seed %d %s line %d: frame header mismatch", seed, enc, i)
					}
					assertFrameEqual(t, g.Frame.Pixels, l.Frame.Pixels, enc, seed, i)
				case l.Stats != nil:
					if g.Stats == nil || *g.Stats != *l.Stats {
						t.Fatalf("seed %d %s line %d: stats mismatch", seed, enc, i)
					}
				case l.Error != nil:
					if g.Error == nil {
						t.Fatalf("seed %d %s line %d: error trailer lost", seed, enc, i)
					}
					// The shared envelope contract: both framings
					// reconstruct the same sentinel via errors.Is.
					want, gotErr := DecodeError(*l.Error), DecodeError(*g.Error)
					var wre *RemoteError
					if !errors.As(want, &wre) {
						t.Fatal("decode lost RemoteError type")
					}
					if !errors.Is(gotErr, errors.Unwrap(want)) && errors.Unwrap(want) != nil {
						t.Fatalf("seed %d %s: sentinel lost across framing: %v vs %v", seed, enc, gotErr, want)
					}
					if gotErr.Error() != want.Error() {
						t.Fatalf("seed %d %s: message diverged: %q vs %q", seed, enc, gotErr.Error(), want.Error())
					}
				}
			}
		}
	}

	// The point of v2: base64 + JSON quoting must cost ≥ 25% on the
	// wire, and the binary framing must stay within a few percent of
	// the raw pixel payload.
	if binaryBytes >= ndjsonBytes*3/4 {
		t.Errorf("binary framing saved too little: %d vs %d NDJSON bytes", binaryBytes, ndjsonBytes)
	}
	if pixelBytes > 0 && float64(binaryBytes) > 1.20*float64(pixelBytes) {
		t.Errorf("binary framing overhead too high: %d framed bytes for %d pixel bytes", binaryBytes, pixelBytes)
	}
}

func assertFrameEqual(t *testing.T, got, want Frame, enc string, seed int64, i int) {
	t.Helper()
	if got.W != want.W || got.H != want.H ||
		!bytes.Equal(got.Y, want.Y) || !bytes.Equal(got.Cb, want.Cb) || !bytes.Equal(got.Cr, want.Cr) {
		t.Fatalf("seed %d %s line %d: pixels not byte-identical after decode", seed, enc, i)
	}
}

// TestBinaryStreamTruncation: a stream torn inside a record (the
// network died mid-plane) must decode to an explicit truncation error,
// never a clean boundary — mirroring the NDJSON "ended without stats"
// contract.
func TestBinaryStreamTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	full := encodeBinary(t, []StreamLine{
		{Region: &Region{Frame: 3, Region: Rect{X1: 4, Y1: 4}, Pixels: randFrame(rng)}},
	})
	for _, cut := range []int{4, 9, 20, len(full) - 1} {
		r := NewFrameStreamReader(bytes.NewReader(full[:cut]))
		_, err := r.ReadLine()
		if err == nil || err == io.EOF {
			t.Fatalf("cut at %d: got %v, want a truncation error", cut, err)
		}
	}
	// And a cut exactly at the record boundary is a clean EOF (the
	// caller's missing-trailer check takes it from there).
	r := NewFrameStreamReader(bytes.NewReader(full))
	if _, err := r.ReadLine(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadLine(); err != io.EOF {
		t.Fatalf("at boundary: got %v, want io.EOF", err)
	}
}

// TestBinaryStreamRejectsGarbage: wrong magic and absurd dimensions
// must fail loudly, not allocate.
func TestBinaryStreamRejectsGarbage(t *testing.T) {
	if _, err := NewFrameStreamReader(bytes.NewReader([]byte("NOTTASM2xxxx"))).ReadLine(); err == nil {
		t.Fatal("bad magic accepted")
	}
	dims := [][]byte{
		{0xff, 0xff, 0xff, 0x7f, 2, 0, 0, 0}, // w huge, h = 2
		// w = h = 3037000500 (even): w*h overflows int64 negative, so a
		// product-only bound check would pass it straight into make().
		{0x34, 0xf3, 0x04, 0xb5, 0x34, 0xf3, 0x04, 0xb5},
	}
	for _, d := range dims {
		var buf bytes.Buffer
		buf.Write(streamMagic[:])
		buf.WriteByte(tagRegion)
		buf.Write(make([]byte, 20)) // zero frame header
		buf.Write(d)
		if _, err := NewFrameStreamReader(&buf).ReadLine(); err == nil {
			t.Fatalf("absurd dimensions %v accepted", d)
		}
	}
}

// TestNegotiateStreamEncoding pins the negotiation matrix: NDJSON
// unless the client names the binary type in Accept (with or without
// parameters, case-insensitive, anywhere in the list) or selects v2 via
// Tasm-Api-Version.
func TestNegotiateStreamEncoding(t *testing.T) {
	cases := []struct {
		accept, version, want string
	}{
		{"", "", ContentTypeNDJSON},
		{"*/*", "", ContentTypeNDJSON},
		{"application/json", "", ContentTypeNDJSON},
		{ContentTypeBinary, "", ContentTypeBinary},
		{"application/X-TASM-Frames", "", ContentTypeBinary},
		{"application/x-ndjson, application/x-tasm-frames;q=0.9", "", ContentTypeBinary},
		{"", APIVersionBinary, ContentTypeBinary},
		{"", "1", ContentTypeNDJSON},
	}
	for _, c := range cases {
		r := httptest.NewRequest("POST", "/v1/scan", nil)
		if c.accept != "" {
			r.Header.Set("Accept", c.accept)
		}
		if c.version != "" {
			r.Header.Set(APIVersionHeader, c.version)
		}
		if got := NegotiateStreamEncoding(r); got != c.want {
			t.Errorf("Accept=%q Version=%q: got %s, want %s", c.accept, c.version, got, c.want)
		}
	}
}
