// Serving-side helpers shared by every process that speaks this wire
// format from the server end — tasmd (internal/server) and tasm-router
// (internal/shard). They were extracted from the tasmd handler stack
// when the router grew the same HTTP surface: both daemons must parse
// the same per-request headers, emit the same unary error envelope, and
// drain cursors through the same stream framing with the same trailer
// contract, or the "client/ and tasmctl work against either unchanged"
// promise quietly rots.

package rpcwire

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/obs"
)

// RequestContext derives the operation context from a request: the
// request context (cancelled on client disconnect), optionally bounded
// by the Tasm-Deadline-Ms header, optionally carrying the
// Tasm-Cache-Budget admission cap — the per-request knobs of the
// serving contract.
func RequestContext(r *http.Request) (ctx context.Context, cancel context.CancelFunc, err error) {
	ctx = r.Context()
	if h := r.Header.Get(CacheBudgetHeader); h != "" {
		budget, perr := strconv.ParseInt(h, 10, 64)
		if perr != nil || budget < 0 {
			return nil, nil, fmt.Errorf("%w: header %s=%q", ErrBadRequest, CacheBudgetHeader, h)
		}
		ctx = core.WithCacheAdmissionBudget(ctx, budget)
	}
	h := r.Header.Get(DeadlineHeader)
	if h == "" {
		ctx, cancel = context.WithCancel(ctx)
		return ctx, cancel, nil
	}
	ms, perr := strconv.ParseInt(h, 10, 64)
	if perr != nil || ms <= 0 {
		return nil, nil, fmt.Errorf("%w: header %s=%q", ErrBadRequest, DeadlineHeader, h)
	}
	ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
	return ctx, cancel, nil
}

// UnaryBoundary enforces the request context on unary operations whose
// underlying forms take no context: the Tasm-Deadline-Ms header and a
// client disconnect are honored at the operation's start boundary — an
// already-dead request is answered with its context error instead of
// doing the work for a caller that is gone. It reports false after
// writing the error response.
func UnaryBoundary(w http.ResponseWriter, r *http.Request) bool {
	ctx, cancel, err := RequestContext(r)
	if err != nil {
		WriteError(w, err)
		return false
	}
	defer cancel()
	if err := ctx.Err(); err != nil {
		WriteError(w, fmt.Errorf("server: %w", err))
		return false
	}
	return true
}

// ReadJSON decodes a request body, classifying malformed input as
// bad_request.
func ReadJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: decoding body: %v", ErrBadRequest, err)
	}
	return nil
}

// WriteJSON sends a unary 200 response.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // past the header there is no better channel than the connection itself
}

// WriteError sends the mapped status and error envelope (unary shape).
func WriteError(w http.ResponseWriter, err error) {
	status, body := EncodeError(err)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(struct {
		Error ErrorBody `json:"error"`
	}{body})
}

// StreamSource is the cursor shape the streaming endpoints drain: local
// tasm cursors, remote client cursors, and the scatter-gather merge all
// satisfy it.
type StreamSource interface {
	Next() bool
	Err() error
	Stats() core.ScanStats
}

// lineEncoder is one stream framing: v1 NDJSON or the v2 binary frame
// encoding, chosen per request by content negotiation. Both carry the
// same StreamLine records and share the error-envelope trailer, so
// everything above this seam is encoding-agnostic.
type lineEncoder interface {
	encode(StreamLine) error
	// flush pushes any buffering between the encoder and the network.
	flush() error
}

type ndjsonEncoder struct{ enc *json.Encoder }

func (e ndjsonEncoder) encode(l StreamLine) error { return e.enc.Encode(l) }
func (e ndjsonEncoder) flush() error              { return nil }

type binaryEncoder struct{ w *FrameStreamWriter }

func (e binaryEncoder) encode(l StreamLine) error { return e.w.WriteLine(l) }
func (e binaryEncoder) flush() error              { return e.w.Flush() }

// ServeStream drains cur into w in the negotiated framing, one record
// per result, flushed per record so TTFB tracks the pipeline's
// time-to-first-result. A successful stream ends with a stats record —
// the client's end-of-stream marker — and a failed one with an
// error-envelope record (the envelope both framings share, so
// mid-stream failures reconstruct the same sentinels either way).
// Write failures mean the client went away: the cursor's context
// (derived from the request context) is already cancelled or about to
// be, so the caller's deferred Close releases leases; nothing useful
// can be sent, so ServeStream just returns.
func ServeStream[C StreamSource](w http.ResponseWriter, r *http.Request, cur C, line func(C) StreamLine) {
	ct := NegotiateStreamEncoding(r)
	w.Header().Set("Content-Type", ct)
	w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering; streaming is the point
	w.WriteHeader(http.StatusOK)
	var enc lineEncoder
	if ct == ContentTypeBinary {
		enc = binaryEncoder{NewFrameStreamWriter(w)}
	} else {
		enc = ndjsonEncoder{json.NewEncoder(w)}
	}
	flush := func() {
		if err := enc.flush(); err != nil {
			return
		}
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	// The flush span accumulates the wall spent encoding + pushing
	// records to the network — the serving-side cost a trace must
	// separate from the decode pipeline feeding the cursor.
	tr := obs.FromContext(r.Context())
	streamStart := time.Now()
	var flushWall time.Duration
	var records int64
	defer func() {
		tr.AddSpan("flush", streamStart, flushWall, "records", strconv.FormatInt(records, 10))
	}()
	flush() // commit the header before the first (possibly slow) decode
	for cur.Next() {
		t0 := time.Now()
		if err := enc.encode(line(cur)); err != nil {
			return
		}
		flush()
		flushWall += time.Since(t0)
		records++
	}
	var final StreamLine
	if err := cur.Err(); err != nil {
		_, body := EncodeError(err)
		final.Error = &body
	} else {
		stats := FromScanStats(cur.Stats())
		final.Stats = &stats
	}
	_ = enc.encode(final)
	flush()
}
