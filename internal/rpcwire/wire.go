// Package rpcwire defines the versioned JSON wire format the tasmd
// network front end speaks: request and response bodies for the unary
// endpoints, the NDJSON line envelope the streaming endpoints emit, and
// the canonical error envelope with its bidirectional mapping between
// the tasmerr sentinel taxonomy and HTTP status + machine-readable code.
//
// Everything here is plain data with explicit JSON tags — the wire
// contract — plus the conversions to and from the in-process types. The
// format is versioned by URL prefix (/v1/); additive changes (new
// optional fields, new codes) do not bump the version.
//
// Error contract: a failed unary request carries `{"error": {"code",
// "message"}}` with the mapped HTTP status; a streaming request that
// fails after the 200 header carries the same envelope as its final
// NDJSON line. DecodeError reconstructs an error that wraps the exact
// sentinel EncodeError classified, so errors.Is behaves identically
// in-process and across the wire.
package rpcwire

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"github.com/tasm-repro/tasm/internal/adapt"
	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/layout"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/semindex"
	"github.com/tasm-repro/tasm/internal/tasmerr"
	"github.com/tasm-repro/tasm/internal/tilecache"
	"github.com/tasm-repro/tasm/internal/tilestore"
)

// Serving-layer sentinels: failures that originate at the network
// boundary rather than in the storage manager, given the same errors.Is
// treatment as the tasmerr taxonomy.
var (
	// ErrBadRequest reports a request the server could not interpret:
	// malformed JSON, an unparseable SQL string, an invalid header.
	ErrBadRequest = errors.New("bad request")

	// ErrOverloaded reports that the server's concurrent-request limit
	// (global, or the caller's tenant quota) was reached; the request
	// was rejected before any work started and is safe to retry. The
	// response carries a Retry-After header; the client surfaces it via
	// RemoteError.RetryAfter.
	ErrOverloaded = errors.New("server overloaded")

	// ErrUnauthorized reports a request a token-protected daemon
	// refused: no Authorization header, or a bearer token outside the
	// tenant table. Retrying without new credentials cannot succeed.
	ErrUnauthorized = errors.New("unauthorized")

	// ErrTraceNotFound reports a /v1/trace/{id} lookup for an id no
	// longer (or never) in the daemon's trace ring. The ring holds the
	// most recent finished requests only, so a miss is expected
	// operational behavior, not a bug.
	ErrTraceNotFound = errors.New("trace not found")
)

// ErrorBody is the canonical error envelope.
type ErrorBody struct {
	// Code is the machine-readable failure class, stable across
	// releases (the strings in the mapping table below).
	Code string `json:"code"`
	// Message is the full operator-facing error text from the server.
	Message string `json:"message"`
}

// errorMapping is one row of the bidirectional sentinel ⇄ (status, code)
// table. Codes are unique; statuses may repeat (e.g. both invalid_name
// and invalid_range are 400), so decoding keys on the code.
type errorMapping struct {
	sentinel error
	code     string
	status   int
}

// wireErrors is the canonical mapping. Order matters for EncodeError:
// the first sentinel errors.Is matches wins, so the storage-manager
// taxonomy precedes the context errors (a scan cancelled mid-decode
// wraps both ErrCursorClosed and context.Canceled — the more specific
// classification is kept).
var wireErrors = []errorMapping{
	{tasmerr.ErrVideoNotFound, "video_not_found", http.StatusNotFound},
	{tasmerr.ErrSOTNotFound, "sot_not_found", http.StatusNotFound},
	{tasmerr.ErrVideoExists, "video_exists", http.StatusConflict},
	{tasmerr.ErrRetileConflict, "retile_conflict", http.StatusConflict},
	{tasmerr.ErrVideoDeleted, "video_deleted", http.StatusGone},
	{tasmerr.ErrInvalidName, "invalid_name", http.StatusBadRequest},
	{tasmerr.ErrInvalidRange, "invalid_range", http.StatusBadRequest},
	{tasmerr.ErrNoFrames, "no_frames", http.StatusBadRequest},
	{tasmerr.ErrAutotileDisabled, "autotile_disabled", http.StatusBadRequest},
	{tasmerr.ErrVideoSealed, "video_sealed", http.StatusConflict},
	// 429: the append did no work and is safe to retry after the
	// Retry-After the server attaches — the one storage sentinel the
	// client treats as retryable.
	{tasmerr.ErrIngestBackpressure, "ingest_backpressure", http.StatusTooManyRequests},
	{tasmerr.ErrCursorClosed, "cursor_closed", statusClientClosedRequest},
	{tasmerr.ErrStoreLocked, "store_locked", http.StatusConflict},
	{tasmerr.ErrTileCorrupt, "tile_corrupt", http.StatusInternalServerError},
	// 502, not 503: overloaded means "this server is alive, back off and
	// retry"; shard_unavailable means a router could not reach the data
	// plane at all — retrying against the same dead shard cannot help.
	{tasmerr.ErrShardUnavailable, "shard_unavailable", http.StatusBadGateway},
	{ErrBadRequest, "bad_request", http.StatusBadRequest},
	{ErrTraceNotFound, "trace_not_found", http.StatusNotFound},
	{ErrUnauthorized, "unauthorized", http.StatusUnauthorized},
	{ErrOverloaded, "overloaded", http.StatusServiceUnavailable},
	{context.Canceled, "canceled", statusClientClosedRequest},
	{context.DeadlineExceeded, "deadline_exceeded", http.StatusGatewayTimeout},
}

// statusClientClosedRequest is nginx's convention for "the client went
// away"; there is no standard HTTP status for it.
const statusClientClosedRequest = 499

// codeInternal classifies errors outside the taxonomy (bugs, I/O
// failures). It decodes to a *RemoteError with no sentinel.
const codeInternal = "internal"

// EncodeError maps an error to the HTTP status and envelope to send.
// Unknown errors become ("internal", 500) with the message preserved.
func EncodeError(err error) (int, ErrorBody) {
	for _, m := range wireErrors {
		if errors.Is(err, m.sentinel) {
			return m.status, ErrorBody{Code: m.code, Message: err.Error()}
		}
	}
	return http.StatusInternalServerError, ErrorBody{Code: codeInternal, Message: err.Error()}
}

// RemoteError is a server failure reconstructed client-side: it keeps
// the wire code and the server's message, and unwraps to the sentinel
// the code names, so errors.Is(err, tasm.ErrVideoNotFound) (or
// context.DeadlineExceeded, …) holds for remote failures exactly as it
// does in-process.
type RemoteError struct {
	Code    string
	Message string
	// RetryAfter is the server's requested backoff before retrying
	// (from the Retry-After header on limiter rejections); zero when
	// the server named none.
	RetryAfter time.Duration
	sentinel   error // nil for codes outside the taxonomy
}

func (e *RemoteError) Error() string { return "remote: " + e.Message }

func (e *RemoteError) Unwrap() error { return e.sentinel }

// DecodeError reconstructs the error a wire envelope describes. The
// result always has type *RemoteError; when the code is in the mapping
// table it additionally wraps that sentinel.
func DecodeError(body ErrorBody) error {
	e := &RemoteError{Code: body.Code, Message: body.Message}
	for _, m := range wireErrors {
		if m.code == body.Code {
			e.sentinel = m.sentinel
			break
		}
	}
	return e
}

// Sentinels returns every error in the bidirectional mapping (the
// round-trip test iterates it so a sentinel added to the table can
// never silently lose its mapping).
func Sentinels() []error {
	out := make([]error, len(wireErrors))
	for i, m := range wireErrors {
		out[i] = m.sentinel
	}
	return out
}

// DeadlineHeader carries the client's remaining budget in integer
// milliseconds; the server turns it into a context deadline so a remote
// request honors the caller's timeout even when the TCP stream stays
// healthy.
const DeadlineHeader = "Tasm-Deadline-Ms"

// NegotiateStreamEncoding picks the stream framing for a request:
// ContentTypeBinary when the Accept header lists it (q-parameters are
// ignored — listing it at all means the client can decode it) or when
// Tasm-Api-Version selects v2; ContentTypeNDJSON otherwise, so a bare
// curl keeps getting line-delimited JSON.
func NegotiateStreamEncoding(r *http.Request) string {
	if r.Header.Get(APIVersionHeader) == APIVersionBinary {
		return ContentTypeBinary
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaType, _, _ := strings.Cut(part, ";")
		if strings.EqualFold(strings.TrimSpace(mediaType), ContentTypeBinary) {
			return ContentTypeBinary
		}
	}
	return ContentTypeNDJSON
}

// ---- geometry, layouts, frames ----

// Rect is a half-open pixel rectangle on the wire.
type Rect struct {
	X0 int `json:"x0"`
	Y0 int `json:"y0"`
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
}

// FromRect converts an in-process rectangle.
func FromRect(r geom.Rect) Rect { return Rect{X0: r.X0, Y0: r.Y0, X1: r.X1, Y1: r.Y1} }

// ToRect converts back to the in-process type.
func (r Rect) ToRect() geom.Rect { return geom.R(r.X0, r.Y0, r.X1, r.Y1) }

// Layout is a tile layout on the wire: row heights and column widths
// spanning the frame.
type Layout struct {
	RowHeights []int `json:"row_heights"`
	ColWidths  []int `json:"col_widths"`
}

// FromLayout converts an in-process layout.
func FromLayout(l layout.Layout) Layout {
	return Layout{RowHeights: l.RowHeights, ColWidths: l.ColWidths}
}

// ToLayout converts back to the in-process type.
func (l Layout) ToLayout() layout.Layout {
	return layout.Layout{RowHeights: l.RowHeights, ColWidths: l.ColWidths}
}

// Frame is a planar YCbCr 4:2:0 frame on the wire; the planes travel
// base64-encoded (encoding/json's []byte representation).
type Frame struct {
	W  int    `json:"w"`
	H  int    `json:"h"`
	Y  []byte `json:"y"`
	Cb []byte `json:"cb"`
	Cr []byte `json:"cr"`
}

// FromFrame converts an in-process frame. The planes are referenced,
// not copied: wire values are encoded immediately, never mutated.
func FromFrame(f *frame.Frame) Frame {
	return Frame{W: f.W, H: f.H, Y: f.Y, Cb: f.Cb, Cr: f.Cr}
}

// ToFrame validates plane sizes against the declared dimensions and
// converts back to the in-process type.
func (f Frame) ToFrame() (*frame.Frame, error) {
	if f.W <= 0 || f.H <= 0 || f.W%2 != 0 || f.H%2 != 0 {
		return nil, fmt.Errorf("%w: frame dimensions %dx%d", ErrBadRequest, f.W, f.H)
	}
	if len(f.Y) != f.W*f.H || len(f.Cb) != (f.W/2)*(f.H/2) || len(f.Cr) != (f.W/2)*(f.H/2) {
		return nil, fmt.Errorf("%w: frame plane sizes do not match %dx%d", ErrBadRequest, f.W, f.H)
	}
	return &frame.Frame{W: f.W, H: f.H, Y: f.Y, Cb: f.Cb, Cr: f.Cr}, nil
}

// ---- queries ----

// Query is a parsed Scan request on the wire.
type Query struct {
	Video string `json:"video"`
	// Videos carries the full target list of a multi-video query
	// ("FROM a,b"); empty for the ordinary single-video case, where
	// Video alone names the target. When set, Video == Videos[0].
	Videos []string `json:"videos,omitempty"`
	// Clauses is the CNF label predicate: OR within a clause, AND
	// between clauses.
	Clauses [][]string `json:"clauses"`
	From    int        `json:"from"`
	// To is exclusive; -1 means "to the end of the video".
	To int `json:"to"`
}

// FromQuery converts an in-process query.
func FromQuery(q query.Query) Query {
	return Query{Video: q.Video, Videos: q.Videos, Clauses: q.Pred.Clauses, From: q.From, To: q.To}
}

// ToQuery converts back to the in-process type.
func (q Query) ToQuery() query.Query {
	out := query.Query{Video: q.Video, Videos: q.Videos, Pred: query.Predicate{Clauses: q.Clauses}, From: q.From, To: q.To}
	if len(out.Videos) > 0 {
		out.Video = out.Videos[0]
	}
	return out
}

// ---- unary requests and responses ----

// IngestRequest stores frames as a new video. Layouts, when present,
// select the tiled ingest path (one layout per SOT, the edge-camera
// upload shape); otherwise the video is stored untiled, one SOT per GOP.
type IngestRequest struct {
	Video   string   `json:"video"`
	FPS     int      `json:"fps"`
	Frames  []Frame  `json:"frames"`
	Layouts []Layout `json:"layouts,omitempty"`
}

// IngestStats mirrors core.IngestStats with explicit-unit fields.
type IngestStats struct {
	EncodeWallNs int64 `json:"encode_wall_ns"`
	Bytes        int64 `json:"bytes"`
	SOTs         int   `json:"sots"`
}

// FromIngestStats converts an in-process stats record.
func FromIngestStats(s core.IngestStats) IngestStats {
	return IngestStats{EncodeWallNs: s.EncodeWall.Nanoseconds(), Bytes: s.Bytes, SOTs: s.SOTs}
}

// ToIngestStats converts back to the in-process type.
func (s IngestStats) ToIngestStats() core.IngestStats {
	return core.IngestStats{EncodeWall: nsDuration(s.EncodeWallNs), Bytes: s.Bytes, SOTs: s.SOTs}
}

// ---- live ingest ----

// RetentionPolicy mirrors tilestore.RetentionPolicy on the wire.
type RetentionPolicy struct {
	MaxAgeFrames int   `json:"max_age_frames,omitempty"`
	MaxBytes     int64 `json:"max_bytes,omitempty"`
}

// FromRetentionPolicy converts an in-process policy (nil stays nil).
func FromRetentionPolicy(p *tilestore.RetentionPolicy) *RetentionPolicy {
	if p == nil {
		return nil
	}
	return &RetentionPolicy{MaxAgeFrames: p.MaxAgeFrames, MaxBytes: p.MaxBytes}
}

// ToRetentionPolicy converts back to the in-process type (nil stays nil).
func (p *RetentionPolicy) ToRetentionPolicy() *tilestore.RetentionPolicy {
	if p == nil {
		return nil
	}
	return &tilestore.RetentionPolicy{MaxAgeFrames: p.MaxAgeFrames, MaxBytes: p.MaxBytes}
}

// CreateLiveRequest opens an append-mode video.
type CreateLiveRequest struct {
	Video     string           `json:"video"`
	W         int              `json:"w"`
	H         int              `json:"h"`
	FPS       int              `json:"fps"`
	Retention *RetentionPolicy `json:"retention,omitempty"`
}

// AppendRequest appends frames to a live video — the v1 JSON body of
// POST /v1/append. The preferred v2 form sends the same frames as a
// binary TASMFRM2 stream ('F' records) with the video named by the
// ?video= query parameter, avoiding the base64 tax on exactly the
// bytes ingest moves the most of.
type AppendRequest struct {
	Video  string  `json:"video"`
	Frames []Frame `json:"frames"`
}

// AppendStats mirrors core.AppendStats with explicit-unit fields.
type AppendStats struct {
	EncodeWallNs int64 `json:"encode_wall_ns"`
	Bytes        int64 `json:"bytes"`
	SOTs         int   `json:"sots"`
	Frames       int   `json:"frames"`
	FrameCount   int   `json:"frame_count"`
}

// FromAppendStats converts an in-process stats record.
func FromAppendStats(s core.AppendStats) AppendStats {
	return AppendStats{EncodeWallNs: s.EncodeWall.Nanoseconds(), Bytes: s.Bytes,
		SOTs: s.SOTs, Frames: s.Frames, FrameCount: s.FrameCount}
}

// ToAppendStats converts back to the in-process type.
func (s AppendStats) ToAppendStats() core.AppendStats {
	return core.AppendStats{EncodeWall: nsDuration(s.EncodeWallNs), Bytes: s.Bytes,
		SOTs: s.SOTs, Frames: s.Frames, FrameCount: s.FrameCount}
}

// SealRequest converts a live video into a normal batch one.
type SealRequest struct {
	Video string `json:"video"`
}

// RetentionRequest installs (or with a nil policy clears) a live
// video's retention policy; the response is the TrimReport of the
// immediate application.
type RetentionRequest struct {
	Video     string           `json:"video"`
	Retention *RetentionPolicy `json:"retention"`
}

// TrimReport mirrors tilestore.TrimReport.
type TrimReport struct {
	Removed    []int `json:"removed,omitempty"`
	TrimmedTo  int   `json:"trimmed_to"`
	FreedBytes int64 `json:"freed_bytes"`
}

// FromTrimReport converts an in-process report.
func FromTrimReport(r tilestore.TrimReport) TrimReport {
	return TrimReport{Removed: r.Removed, TrimmedTo: r.TrimmedTo, FreedBytes: r.FreedBytes}
}

// ToTrimReport converts back to the in-process type.
func (r TrimReport) ToTrimReport() tilestore.TrimReport {
	return tilestore.TrimReport{Removed: r.Removed, TrimmedTo: r.TrimmedTo, FreedBytes: r.FreedBytes}
}

// RetileRequest re-encodes one SOT under a new layout.
type RetileRequest struct {
	Video  string `json:"video"`
	SOT    int    `json:"sot"`
	Layout Layout `json:"layout"`
}

// RetileStats mirrors core.RetileStats.
type RetileStats struct {
	DecodeWallNs int64 `json:"decode_wall_ns"`
	EncodeWallNs int64 `json:"encode_wall_ns"`
	Bytes        int64 `json:"bytes"`
}

// FromRetileStats converts an in-process stats record.
func FromRetileStats(s core.RetileStats) RetileStats {
	return RetileStats{DecodeWallNs: s.DecodeWall.Nanoseconds(), EncodeWallNs: s.EncodeWall.Nanoseconds(), Bytes: s.Bytes}
}

// ToRetileStats converts back to the in-process type.
func (s RetileStats) ToRetileStats() core.RetileStats {
	return core.RetileStats{DecodeWall: nsDuration(s.DecodeWallNs), EncodeWall: nsDuration(s.EncodeWallNs), Bytes: s.Bytes}
}

// DesignLayoutRequest asks the server to partition a SOT around the
// indexed boxes of the given labels.
type DesignLayoutRequest struct {
	Video  string   `json:"video"`
	SOT    int      `json:"sot"`
	Labels []string `json:"labels"`
}

// DesignLayoutResponse carries the designed layout (the untiled layout
// when tiling cannot help).
type DesignLayoutResponse struct {
	Layout Layout `json:"layout"`
}

// Detection is one labeled bounding box on the wire.
type Detection struct {
	Frame int    `json:"frame"`
	Label string `json:"label"`
	Box   Rect   `json:"box"`
}

// FromDetection converts an in-process detection.
func FromDetection(d semindex.Detection) Detection {
	return Detection{Frame: d.Frame, Label: d.Label, Box: FromRect(d.Box)}
}

// ToDetection converts back to the in-process type.
func (d Detection) ToDetection() semindex.Detection {
	return semindex.Detection{Frame: d.Frame, Label: d.Label, Box: d.Box.ToRect()}
}

// MetadataRequest records a batch of detections (AddMetadata sends one).
type MetadataRequest struct {
	Video      string      `json:"video"`
	Detections []Detection `json:"detections"`
}

// MarkDetectedRequest records that frames [From, To) were fully
// processed by a detector for Label.
type MarkDetectedRequest struct {
	Video string `json:"video"`
	Label string `json:"label"`
	From  int    `json:"from"`
	To    int    `json:"to"`
}

// DetectionsResponse carries indexed detections for a lookup.
type DetectionsResponse struct {
	Detections []Detection `json:"detections"`
}

// VideosResponse lists stored video names.
type VideosResponse struct {
	Videos []string `json:"videos"`
}

// VideoInfo is one video's catalog record plus derived inventory. Meta
// reuses the manifest's own JSON encoding (tilestore.VideoMeta).
type VideoInfo struct {
	Meta   tilestore.VideoMeta `json:"meta"`
	Bytes  int64               `json:"bytes"`
	Labels []string            `json:"labels"`
}

// GCReport mirrors tilestore.GCReport.
type GCReport struct {
	Removed  []string `json:"removed"`
	Deferred []string `json:"deferred"`
}

// FromGCReport converts an in-process report.
func FromGCReport(r tilestore.GCReport) GCReport {
	return GCReport{Removed: r.Removed, Deferred: r.Deferred}
}

// ToGCReport converts back to the in-process type.
func (r GCReport) ToGCReport() tilestore.GCReport {
	return tilestore.GCReport{Removed: r.Removed, Deferred: r.Deferred}
}

// FsckReport mirrors tilestore.FsckReport.
type FsckReport struct {
	Videos   int      `json:"videos"`
	SOTs     int      `json:"sots"`
	Tiles    int      `json:"tiles"`
	Leases   int      `json:"leases"`
	Problems []string `json:"problems"`
	Orphans  []string `json:"orphans"`
}

// FromFsckReport converts an in-process report.
func FromFsckReport(r tilestore.FsckReport) FsckReport {
	return FsckReport{Videos: r.Videos, SOTs: r.SOTs, Tiles: r.Tiles, Leases: r.Leases, Problems: r.Problems, Orphans: r.Orphans}
}

// ToFsckReport converts back to the in-process type.
func (r FsckReport) ToFsckReport() tilestore.FsckReport {
	return tilestore.FsckReport{Videos: r.Videos, SOTs: r.SOTs, Tiles: r.Tiles, Leases: r.Leases, Problems: r.Problems, Orphans: r.Orphans}
}

// CacheStats mirrors tilecache.Stats.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"`
	BytesCached   int64 `json:"bytes_cached"`
	Entries       int   `json:"entries"`
	Budget        int64 `json:"budget"`
}

// FromCacheStats converts an in-process stats snapshot.
func FromCacheStats(s tilecache.Stats) CacheStats {
	return CacheStats{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Invalidations: s.Invalidations, BytesCached: s.BytesCached, Entries: s.Entries, Budget: s.Budget}
}

// ToCacheStats converts back to the in-process type.
func (s CacheStats) ToCacheStats() tilecache.Stats {
	return tilecache.Stats{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions,
		Invalidations: s.Invalidations, BytesCached: s.BytesCached, Entries: s.Entries, Budget: s.Budget}
}

// AutotileStatus is the background adaptive-tiling subsystem's snapshot
// on the wire, mirroring adapt.Status field for field. Enabled false
// means the daemon runs without -autotile (every other field is zero).
type AutotileStatus struct {
	Enabled         bool    `json:"enabled"`
	Paused          bool    `json:"paused"`
	PauseReason     string  `json:"pause_reason,omitempty"`
	QueriesObserved int64   `json:"queries_observed"`
	QueriesPending  int     `json:"queries_pending"`
	QueriesDropped  int64   `json:"queries_dropped"`
	ActionsApplied  int64   `json:"actions_applied"`
	ActionsFailed   int64   `json:"actions_failed"`
	BytesSpent      int64   `json:"bytes_spent"`
	IOBudget        int64   `json:"io_budget"`
	Regret          float64 `json:"regret"`
	LastAction      string  `json:"last_action,omitempty"`
	LastError       string  `json:"last_error,omitempty"`
}

// FromAutotileStatus converts an in-process snapshot.
func FromAutotileStatus(s adapt.Status) AutotileStatus {
	return AutotileStatus{
		Enabled:         s.Enabled,
		Paused:          s.Paused,
		PauseReason:     s.PauseReason,
		QueriesObserved: s.QueriesObserved,
		QueriesPending:  s.QueriesPending,
		QueriesDropped:  s.QueriesDropped,
		ActionsApplied:  s.ActionsApplied,
		ActionsFailed:   s.ActionsFailed,
		BytesSpent:      s.BytesSpent,
		IOBudget:        s.IOBudget,
		Regret:          s.Regret,
		LastAction:      s.LastAction,
		LastError:       s.LastError,
	}
}

// ToAutotileStatus converts back to the in-process type.
func (s AutotileStatus) ToAutotileStatus() adapt.Status {
	return adapt.Status{
		Enabled:         s.Enabled,
		Paused:          s.Paused,
		PauseReason:     s.PauseReason,
		QueriesObserved: s.QueriesObserved,
		QueriesPending:  s.QueriesPending,
		QueriesDropped:  s.QueriesDropped,
		ActionsApplied:  s.ActionsApplied,
		ActionsFailed:   s.ActionsFailed,
		BytesSpent:      s.BytesSpent,
		IOBudget:        s.IOBudget,
		Regret:          s.Regret,
		LastAction:      s.LastAction,
		LastError:       s.LastError,
	}
}

// AutotilePauseRequest suspends background re-tiling; Reason (optional)
// is surfaced in the status for the operator who finds it paused later.
type AutotilePauseRequest struct {
	Reason string `json:"reason,omitempty"`
}

// RepairRequest re-materializes one video's box→tile pointers.
type RepairRequest struct {
	Video string `json:"video"`
}

// StoreRepairReport mirrors tilestore.RepairReport.
type StoreRepairReport struct {
	Quarantined []string `json:"quarantined"`
	Reverted    []string `json:"reverted"`
	Videos      []string `json:"videos"`
}

// FromStoreRepairReport converts an in-process report.
func FromStoreRepairReport(r tilestore.RepairReport) StoreRepairReport {
	return StoreRepairReport{Quarantined: r.Quarantined, Reverted: r.Reverted, Videos: r.Videos}
}

// ToStoreRepairReport converts back to the in-process type.
func (r StoreRepairReport) ToStoreRepairReport() tilestore.RepairReport {
	return tilestore.RepairReport{Quarantined: r.Quarantined, Reverted: r.Reverted, Videos: r.Videos}
}

// ---- scale-out (tasm-router) ----

// ShardInfo is one shard's identity and health as a router sees it.
type ShardInfo struct {
	Name string `json:"name"`
	Addr string `json:"addr"`
	// Healthy reflects the router's breaker state, not the shard's own
	// opinion: false once ConsecutiveFailures reached the breaker
	// threshold, true again after the next successful probe.
	Healthy bool `json:"healthy"`
	// ConsecutiveFailures counts probe and request failures since the
	// shard's last success.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
}

// ShardsResponse is GET /v1/shards on a router: the live shard map and
// per-shard health.
type ShardsResponse struct {
	Replicas int         `json:"replicas"`
	Shards   []ShardInfo `json:"shards"`
}

// ShardCacheStats is one shard's contribution to a router's stats
// aggregation. Error is set (and Stats zero) when the shard could not
// be reached for the snapshot.
type ShardCacheStats struct {
	Shard   string     `json:"shard"`
	Addr    string     `json:"addr"`
	Healthy bool       `json:"healthy"`
	Error   string     `json:"error,omitempty"`
	Stats   CacheStats `json:"stats"`
}

// ShardedCacheStats is a router's GET /v1/stats body: the merged totals
// inline — so a plain client decodes it as an ordinary CacheStats
// unchanged — plus the per-shard breakdown. A single tasmd never sets
// Shards, which is how callers tell the two apart.
type ShardedCacheStats struct {
	CacheStats
	Shards []ShardCacheStats `json:"shards,omitempty"`
}

// nsDuration converts a wire nanosecond count to a time.Duration.
func nsDuration(ns int64) time.Duration { return time.Duration(ns) * time.Nanosecond }

// ---- streaming requests and the NDJSON line envelope ----

// ScanRequest starts a streaming Scan. Exactly one of SQL and Query is
// set: SQL is parsed server-side (parse failures are bad_request),
// Query is the pre-parsed form.
type ScanRequest struct {
	SQL   string `json:"sql,omitempty"`
	Query *Query `json:"query,omitempty"`
}

// DecodeFramesRequest starts a streaming whole-frame decode of
// [From, To); To == -1 means "to the end of the video".
type DecodeFramesRequest struct {
	Video string `json:"video"`
	From  int    `json:"from"`
	To    int    `json:"to"`
}

// ScanStats mirrors core.ScanStats with explicit-unit duration fields.
type ScanStats struct {
	IndexWallNs     int64 `json:"index_wall_ns"`
	DecodeWallNs    int64 `json:"decode_wall_ns"`
	AssembleWallNs  int64 `json:"assemble_wall_ns"`
	PixelsDecoded   int64 `json:"pixels_decoded"`
	TilesDecoded    int   `json:"tiles_decoded"`
	FramesDecoded   int64 `json:"frames_decoded"`
	RegionsReturned int   `json:"regions_returned"`
	SOTsTouched     int   `json:"sots_touched"`
	CacheHits       int   `json:"cache_hits"`
	CacheMisses     int   `json:"cache_misses"`
	CacheEvictions  int   `json:"cache_evictions"`
}

// FromScanStats converts an in-process stats record.
func FromScanStats(s core.ScanStats) ScanStats {
	return ScanStats{
		IndexWallNs:     s.IndexWall.Nanoseconds(),
		DecodeWallNs:    s.DecodeWall.Nanoseconds(),
		AssembleWallNs:  s.AssembleWall.Nanoseconds(),
		PixelsDecoded:   s.PixelsDecoded,
		TilesDecoded:    s.TilesDecoded,
		FramesDecoded:   s.FramesDecoded,
		RegionsReturned: s.RegionsReturned,
		SOTsTouched:     s.SOTsTouched,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		CacheEvictions:  s.CacheEvictions,
	}
}

// ToScanStats converts back to the in-process type.
func (s ScanStats) ToScanStats() core.ScanStats {
	return core.ScanStats{
		IndexWall:       nsDuration(s.IndexWallNs),
		DecodeWall:      nsDuration(s.DecodeWallNs),
		AssembleWall:    nsDuration(s.AssembleWallNs),
		PixelsDecoded:   s.PixelsDecoded,
		TilesDecoded:    s.TilesDecoded,
		FramesDecoded:   s.FramesDecoded,
		RegionsReturned: s.RegionsReturned,
		SOTsTouched:     s.SOTsTouched,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		CacheEvictions:  s.CacheEvictions,
	}
}

// Region is one streamed Scan result: a pixel region on one frame.
type Region struct {
	Frame  int   `json:"frame"`
	Region Rect  `json:"region"`
	Pixels Frame `json:"pixels"`
}

// FromRegion converts an in-process scan result.
func FromRegion(r core.RegionResult) Region {
	return Region{Frame: r.Frame, Region: FromRect(r.Region), Pixels: FromFrame(r.Pixels)}
}

// ToRegion converts back to the in-process type.
func (r Region) ToRegion() (core.RegionResult, error) {
	f, err := r.Pixels.ToFrame()
	if err != nil {
		return core.RegionResult{}, err
	}
	return core.RegionResult{Frame: r.Frame, Region: r.Region.ToRect(), Pixels: f}, nil
}

// FrameLine is one streamed whole-frame result.
type FrameLine struct {
	Index  int   `json:"index"`
	Pixels Frame `json:"pixels"`
}

// FromFrameResult converts an in-process frame result.
func FromFrameResult(r core.FrameResult) FrameLine {
	return FrameLine{Index: r.Index, Pixels: FromFrame(r.Pixels)}
}

// ToFrameResult converts back to the in-process type.
func (l FrameLine) ToFrameResult() (core.FrameResult, error) {
	f, err := l.Pixels.ToFrame()
	if err != nil {
		return core.FrameResult{}, err
	}
	return core.FrameResult{Index: l.Index, Pixels: f}, nil
}

// StreamLine is the NDJSON envelope every streaming endpoint emits, one
// JSON object per line, flushed per line. Exactly one field is set:
// Region (scan results), Frame (whole-frame decodes), Stats (the final
// line of a successful stream — its presence is the client's
// end-of-stream marker, so a torn TCP stream is never mistaken for
// clean exhaustion), or Error (the final line of a failed stream).
type StreamLine struct {
	Region *Region    `json:"region,omitempty"`
	Frame  *FrameLine `json:"frame,omitempty"`
	Stats  *ScanStats `json:"stats,omitempty"`
	Error  *ErrorBody `json:"error,omitempty"`
}
