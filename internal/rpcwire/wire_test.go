package rpcwire

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/query"
	"github.com/tasm-repro/tasm/internal/tasmerr"
)

// TestErrorRoundTripAllSentinels is the property the serving layer
// stands on: every sentinel in the bidirectional mapping — the whole
// tasmerr taxonomy plus the serving and context sentinels — survives
// encode → (HTTP status, code) → JSON → decode with errors.Is intact,
// the server's message preserved, and a distinct code per sentinel.
func TestErrorRoundTripAllSentinels(t *testing.T) {
	sentinels := Sentinels()
	if len(sentinels) < 13 {
		t.Fatalf("mapping table lost rows: %d sentinels", len(sentinels))
	}
	codes := map[string]error{}
	for _, sentinel := range sentinels {
		// Encode the sentinel the way real layers surface it: wrapped
		// with operator-facing detail.
		wrapped := fmt.Errorf("core: scan %q SOT %d: %w", "traffic", 3, sentinel)
		status, body := EncodeError(wrapped)
		// tile_corrupt is the one sentinel legitimately on 500: stored
		// data failing verification IS a server-side fault, and its
		// distinct code keeps it decodable. Every other sentinel stays
		// off 500 so status alone separates mapped failures from the
		// internal catch-all.
		if status == http.StatusInternalServerError && !errors.Is(sentinel, tasmerr.ErrTileCorrupt) {
			t.Errorf("%v encoded as internal/500", sentinel)
		}
		if body.Code == "" || body.Code == codeInternal {
			t.Errorf("%v encoded with code %q", sentinel, body.Code)
		}
		if prev, dup := codes[body.Code]; dup {
			t.Errorf("code %q maps both %v and %v", body.Code, prev, sentinel)
		}
		codes[body.Code] = sentinel
		if body.Message != wrapped.Error() {
			t.Errorf("%v: message %q lost detail %q", sentinel, body.Message, wrapped.Error())
		}

		// The envelope crosses the wire as JSON.
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		var got ErrorBody
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}

		decoded := DecodeError(got)
		if !errors.Is(decoded, sentinel) {
			t.Errorf("errors.Is lost across the wire for %v (decoded %v)", sentinel, decoded)
		}
		var re *RemoteError
		if !errors.As(decoded, &re) || re.Code != body.Code {
			t.Errorf("%v: decoded error lost its wire code", sentinel)
		}
	}
}

// TestErrorRoundTripTasmerrTaxonomy pins the requirement verbatim: each
// tasmerr sentinel individually (not just whatever the table holds).
func TestErrorRoundTripTasmerrTaxonomy(t *testing.T) {
	taxonomy := []error{
		tasmerr.ErrVideoNotFound, tasmerr.ErrVideoExists, tasmerr.ErrInvalidName,
		tasmerr.ErrInvalidRange, tasmerr.ErrSOTNotFound, tasmerr.ErrVideoDeleted,
		tasmerr.ErrRetileConflict, tasmerr.ErrCursorClosed, tasmerr.ErrNoFrames,
	}
	for _, sentinel := range taxonomy {
		status, body := EncodeError(fmt.Errorf("wrapped: %w", sentinel))
		if !errors.Is(DecodeError(body), sentinel) {
			t.Errorf("%v does not round-trip (status %d, code %q)", sentinel, status, body.Code)
		}
	}
}

func TestEncodeErrorPrefersTaxonomyOverContext(t *testing.T) {
	// A cancelled cursor wraps both ErrCursorClosed and (via the
	// pipeline) context.Canceled; the specific classification must win
	// regardless of wrap order in the table's favor.
	err := fmt.Errorf("%w: %w", tasmerr.ErrCursorClosed, context.Canceled)
	_, body := EncodeError(err)
	if body.Code != "cursor_closed" {
		t.Fatalf("got code %q, want cursor_closed", body.Code)
	}
}

func TestEncodeErrorUnknownIsInternal(t *testing.T) {
	status, body := EncodeError(errors.New("disk on fire"))
	if status != http.StatusInternalServerError || body.Code != codeInternal {
		t.Fatalf("got (%d, %q)", status, body.Code)
	}
	decoded := DecodeError(body)
	var re *RemoteError
	if !errors.As(decoded, &re) || re.Message != "disk on fire" {
		t.Fatalf("unknown error lost its message: %v", decoded)
	}
	if errors.Is(decoded, tasmerr.ErrVideoNotFound) || errors.Is(decoded, context.Canceled) {
		t.Fatal("internal error spuriously matches a sentinel")
	}
}

func TestDecodeErrorUnknownCode(t *testing.T) {
	// A newer server may emit codes this client does not know; the
	// message must survive and no sentinel may match.
	decoded := DecodeError(ErrorBody{Code: "quota_exceeded", Message: "tenant over budget"})
	var re *RemoteError
	if !errors.As(decoded, &re) || re.Code != "quota_exceeded" {
		t.Fatalf("got %v", decoded)
	}
	for _, s := range Sentinels() {
		if errors.Is(decoded, s) {
			t.Fatalf("unknown code matched sentinel %v", s)
		}
	}
}

func TestContextErrorsMapToStatuses(t *testing.T) {
	if status, _ := EncodeError(context.DeadlineExceeded); status != http.StatusGatewayTimeout {
		t.Fatalf("deadline: status %d", status)
	}
	if status, _ := EncodeError(context.Canceled); status != statusClientClosedRequest {
		t.Fatalf("canceled: status %d", status)
	}
	if !errors.Is(DecodeError(ErrorBody{Code: "deadline_exceeded"}), context.DeadlineExceeded) {
		t.Fatal("deadline_exceeded does not decode to context.DeadlineExceeded")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := frame.New(32, 16)
	for i := range f.Y {
		f.Y[i] = byte(i)
	}
	for i := range f.Cb {
		f.Cb[i] = byte(200 - i)
		f.Cr[i] = byte(i * 3)
	}
	data, err := json.Marshal(FromFrame(f))
	if err != nil {
		t.Fatal(err)
	}
	var w Frame
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	got, err := w.ToFrame()
	if err != nil {
		t.Fatal(err)
	}
	if got.W != f.W || got.H != f.H {
		t.Fatalf("dims %dx%d", got.W, got.H)
	}
	if string(got.Y) != string(f.Y) || string(got.Cb) != string(f.Cb) || string(got.Cr) != string(f.Cr) {
		t.Fatal("planes differ after round trip")
	}
}

func TestFrameRejectsMismatchedPlanes(t *testing.T) {
	w := Frame{W: 32, H: 16, Y: make([]byte, 5), Cb: make([]byte, 128), Cr: make([]byte, 128)}
	if _, err := w.ToFrame(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("got %v, want ErrBadRequest", err)
	}
	w = Frame{W: 31, H: 16}
	if _, err := w.ToFrame(); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("odd width: got %v, want ErrBadRequest", err)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	q, err := query.Parse("SELECT (car OR bicycle) AND red FROM traffic WHERE 30 <= t < 90")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(FromQuery(q))
	if err != nil {
		t.Fatal(err)
	}
	var w Query
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	got := w.ToQuery()
	if got.Video != q.Video || got.From != q.From || got.To != q.To {
		t.Fatalf("got %+v, want %+v", got, q)
	}
	if fmt.Sprint(got.Pred.Clauses) != fmt.Sprint(q.Pred.Clauses) {
		t.Fatalf("clauses %v != %v", got.Pred.Clauses, q.Pred.Clauses)
	}
}

func TestScanStatsRoundTrip(t *testing.T) {
	st := core.ScanStats{
		IndexWall: 1234, DecodeWall: 5678, AssembleWall: 91011,
		PixelsDecoded: 1 << 30, TilesDecoded: 7, FramesDecoded: 99,
		RegionsReturned: 12, SOTsTouched: 3, CacheHits: 1, CacheMisses: 2, CacheEvictions: 3,
	}
	data, err := json.Marshal(FromScanStats(st))
	if err != nil {
		t.Fatal(err)
	}
	var w ScanStats
	if err := json.Unmarshal(data, &w); err != nil {
		t.Fatal(err)
	}
	if got := w.ToScanStats(); got != st {
		t.Fatalf("got %+v, want %+v", got, st)
	}
}

func TestRegionRoundTrip(t *testing.T) {
	px := frame.New(8, 8)
	px.Y[0] = 42
	r := core.RegionResult{Frame: 17, Region: geom.R(1, 2, 9, 10), Pixels: px}
	data, err := json.Marshal(StreamLine{Region: ptr(FromRegion(r))})
	if err != nil {
		t.Fatal(err)
	}
	var line StreamLine
	if err := json.Unmarshal(data, &line); err != nil {
		t.Fatal(err)
	}
	if line.Region == nil {
		t.Fatal("region line lost its payload")
	}
	got, err := line.Region.ToRegion()
	if err != nil {
		t.Fatal(err)
	}
	if got.Frame != r.Frame || got.Region != r.Region || got.Pixels.Y[0] != 42 {
		t.Fatalf("got %+v", got)
	}
}

func ptr[T any](v T) *T { return &v }
