package scene

// Dataset presets mirroring Table 1 of the paper. Each preset reproduces
// the property the experiments key on: the per-frame object coverage range
// and the mix of frequently occurring classes. Durations are scaled down
// (the paper's videos run 540–900 s; a pure-Go encoder wants tens of
// seconds) and resolutions default to 320×180 — a 6× linear reduction of 2K
// — with object sizes specified as frame fractions so coverage is
// resolution-independent. Options.Scale restores larger sizes.

// Options controls preset generation.
type Options struct {
	// Width and Height of generated videos. Both default to 320×180.
	Width, Height int
	// FPS defaults to 30.
	FPS int
	// DurationScale multiplies each preset's base duration (default 1.0).
	DurationScale float64
	// Seed offsets every preset's RNG stream.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Width == 0 {
		o.Width = 320
	}
	if o.Height == 0 {
		o.Height = 180
	}
	if o.FPS == 0 {
		o.FPS = 30
	}
	if o.DurationScale == 0 {
		o.DurationScale = 1
	}
	return o
}

// Preset couples a spec with the dataset-level expectations the benches
// assert on.
type Preset struct {
	Spec Spec
	// SparseExpected is the paper's sparse/dense classification (<20% mean
	// object coverage).
	SparseExpected bool
	// QueryClasses are the most frequently occurring classes, i.e. the
	// objects queries target in the evaluation (§5, "queries target the
	// most frequently occurring object classes").
	QueryClasses []string
}

// Presets returns the full dataset roster used across the experiments.
func Presets(o Options) []Preset {
	o = o.withDefaults()
	base := func(name, dataset string, secs int, pan float64, classes []ClassMix, seed uint64) Spec {
		d := int(float64(secs) * o.DurationScale)
		if d < 2 {
			d = 2
		}
		return Spec{
			Name: name, Dataset: dataset,
			W: o.Width, H: o.Height, FPS: o.FPS, DurationSec: d,
			CameraPan: pan, Classes: classes, Seed: seed ^ o.Seed,
		}
	}
	return []Preset{
		// Visual Road: synthetic traffic, very sparse (0.06–10%), cars and
		// pedestrians plus occasional traffic lights.
		{
			Spec: base("visualroad-2k-a", "VisualRoad", 16, 0, []ClassMix{
				{Class: Car, Count: 4, SizeFrac: 0.09, Churn: 0.5},
				{Class: Person, Count: 4, SizeFrac: 0.11, Churn: 0.5},
				{Class: TrafficLight, Count: 2, SizeFrac: 0.08},
			}, 101),
			SparseExpected: true,
			QueryClasses:   []string{Car, Person},
		},
		{
			Spec: base("visualroad-2k-b", "VisualRoad", 16, 0, []ClassMix{
				{Class: Car, Count: 6, SizeFrac: 0.08, Churn: 0.4},
				{Class: Person, Count: 5, SizeFrac: 0.10, Churn: 0.4},
				{Class: TrafficLight, Count: 2, SizeFrac: 0.07},
			}, 102),
			SparseExpected: true,
			QueryClasses:   []string{Car, Person},
		},
		{
			Spec: base("visualroad-4k", "VisualRoad", 20, 0, []ClassMix{
				{Class: Car, Count: 5, SizeFrac: 0.07, Churn: 0.5},
				{Class: Person, Count: 6, SizeFrac: 0.09, Churn: 0.5},
			}, 103),
			SparseExpected: true,
			QueryClasses:   []string{Car, Person},
		},
		// Netflix public dataset: short clips, some with a single dominant
		// object class (birds / people), coverage 0.32–49%.
		{
			Spec: base("netflix-birds", "NetflixPublic", 6, 0.2, []ClassMix{
				{Class: Bird, Count: 3, SizeFrac: 0.13, Churn: 0.3},
			}, 201),
			SparseExpected: true,
			QueryClasses:   []string{Bird},
		},
		{
			Spec: base("netflix-dinner", "NetflixPublic", 6, 0, []ClassMix{
				{Class: Person, Count: 5, SizeFrac: 0.55},
			}, 202),
			SparseExpected: false,
			QueryClasses:   []string{Person},
		},
		// Netflix Open Source (Meridian/Cosmos-like): dense 25–45%.
		{
			Spec: base("nos-meridian", "NetflixOpenSource", 12, 0.1, []ClassMix{
				{Class: Person, Count: 4, SizeFrac: 0.35},
				{Class: Car, Count: 2, SizeFrac: 0.22},
			}, 301),
			SparseExpected: false,
			QueryClasses:   []string{Person, Car},
		},
		{
			Spec: base("nos-pasture", "NetflixOpenSource", 12, 0, []ClassMix{
				{Class: Sheep, Count: 12, SizeFrac: 0.20},
				{Class: Person, Count: 2, SizeFrac: 0.30},
			}, 302),
			SparseExpected: false,
			QueryClasses:   []string{Sheep, Person},
		},
		// XIPH: mixed coverage 2–59%.
		{
			Spec: base("xiph-harbor", "XIPH", 8, 0.15, []ClassMix{
				{Class: Boat, Count: 2, SizeFrac: 0.14, Churn: 0.3},
				{Class: Person, Count: 3, SizeFrac: 0.10, Churn: 0.3},
			}, 401),
			SparseExpected: true,
			QueryClasses:   []string{Boat, Person},
		},
		{
			Spec: base("xiph-crosswalk", "XIPH", 8, 0, []ClassMix{
				{Class: Car, Count: 5, SizeFrac: 0.24},
				{Class: Person, Count: 7, SizeFrac: 0.20},
			}, 402),
			SparseExpected: false,
			QueryClasses:   []string{Car, Person},
		},
		// MOT16: pedestrian tracking footage, moving camera, 3–36%.
		{
			Spec: base("mot16-street", "MOT16", 10, 0.5, []ClassMix{
				{Class: Person, Count: 8, SizeFrac: 0.12, Churn: 0.4},
				{Class: Car, Count: 2, SizeFrac: 0.12, Churn: 0.3},
			}, 501),
			SparseExpected: true,
			QueryClasses:   []string{Person, Car},
		},
		// El Fuente: a long video with diverse scenes; we model two scenes,
		// one dense market and one sparse road, 1–47%.
		{
			Spec: base("elfuente-market", "ElFuente", 10, 0.2, []ClassMix{
				{Class: Person, Count: 8, SizeFrac: 0.26},
				{Class: Car, Count: 2, SizeFrac: 0.20},
				{Class: Bicycle, Count: 2, SizeFrac: 0.16},
			}, 601),
			SparseExpected: false,
			QueryClasses:   []string{Person, Car},
		},
		{
			Spec: base("elfuente-road", "ElFuente", 10, 0, []ClassMix{
				{Class: Car, Count: 3, SizeFrac: 0.10, Churn: 0.4},
				{Class: Boat, Count: 1, SizeFrac: 0.12},
				{Class: Person, Count: 2, SizeFrac: 0.10, Churn: 0.4},
			}, 602),
			SparseExpected: true,
			QueryClasses:   []string{Car, Person},
		},
	}
}

// SparsePresets filters Presets to the sparse datasets.
func SparsePresets(o Options) []Preset {
	var out []Preset
	for _, p := range Presets(o) {
		if p.SparseExpected {
			out = append(out, p)
		}
	}
	return out
}

// DensePresets filters Presets to the dense datasets.
func DensePresets(o Options) []Preset {
	var out []Preset
	for _, p := range Presets(o) {
		if !p.SparseExpected {
			out = append(out, p)
		}
	}
	return out
}

// VisualRoadPresets returns just the Visual Road videos (used by the
// workload experiments W1–W4).
func VisualRoadPresets(o Options) []Preset {
	var out []Preset
	for _, p := range Presets(o) {
		if p.Spec.Dataset == "VisualRoad" {
			out = append(out, p)
		}
	}
	return out
}
