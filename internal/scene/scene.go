// Package scene generates deterministic synthetic videos that stand in for
// the paper's evaluation datasets (Table 1). Every dataset property the
// experiments depend on is reproduced: per-frame object coverage (sparse vs
// dense), the mix of object classes, object motion, camera pan (which
// defeats background subtraction, §5.2.4), and scene duration. Ground-truth
// object tracks are available per frame, which is what the detector
// simulators in internal/detect perturb.
package scene

import (
	"fmt"
	"math"

	"github.com/tasm-repro/tasm/internal/frame"
	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/stats"
)

// Class names follow the paper's frequently-occurring objects (Table 1).
const (
	Car          = "car"
	Person       = "person"
	Bird         = "bird"
	Boat         = "boat"
	Bicycle      = "bicycle"
	TrafficLight = "traffic_light"
	Sheep        = "sheep"
)

// classStyle gives each class a distinct appearance and kinematic profile.
type classStyle struct {
	luma     byte
	cb, cr   byte
	aspect   float64 // width / height
	speed    float64 // typical px/frame at 320-wide scale
	vertical bool    // moves mostly vertically (e.g. birds)
}

var classStyles = map[string]classStyle{
	Car:          {luma: 200, cb: 100, cr: 180, aspect: 1.8, speed: 1.6},
	Person:       {luma: 90, cb: 140, cr: 110, aspect: 0.45, speed: 0.7},
	Bird:         {luma: 230, cb: 110, cr: 120, aspect: 1.3, speed: 2.2, vertical: true},
	Boat:         {luma: 160, cb: 170, cr: 90, aspect: 2.4, speed: 0.9},
	Bicycle:      {luma: 120, cb: 120, cr: 150, aspect: 1.1, speed: 1.3},
	TrafficLight: {luma: 250, cb: 90, cr: 200, aspect: 0.4, speed: 0},
	Sheep:        {luma: 220, cb: 128, cr: 128, aspect: 1.2, speed: 0.4},
}

// ClassMix requests a number of objects of one class sized relative to the
// frame.
type ClassMix struct {
	Class string
	Count int
	// SizeFrac is the object height as a fraction of frame height.
	SizeFrac float64
	// Churn is the probability per object that it is absent during a given
	// third of the video, creating appearance/disappearance events.
	Churn float64
}

// Spec describes a synthetic video.
type Spec struct {
	Name        string
	W, H        int
	FPS         int
	DurationSec int
	Classes     []ClassMix
	// CameraPan is the background drift in px/frame. Non-zero pan defeats
	// background-subtraction detectors, as the paper observes.
	CameraPan float64
	// Dataset tags the Table-1 dataset this spec mirrors.
	Dataset string
	Seed    uint64
}

// NumFrames returns FPS * DurationSec.
func (s Spec) NumFrames() int { return s.FPS * s.DurationSec }

type object struct {
	class      string
	style      classStyle
	w, h       float64
	x0, y0     float64 // start center position
	vx, vy     float64
	phase      float64 // texture phase
	absentFrom int     // first frame of absence window (-1 if always present)
	absentTo   int
}

// Video is a generated synthetic video. Frames are rendered on demand and
// deterministically: Frame(i) always returns identical pixels for a given
// spec.
type Video struct {
	Spec    Spec
	objects []object
}

// Generate builds a Video from a spec.
func Generate(spec Spec) (*Video, error) {
	if spec.W <= 0 || spec.H <= 0 || spec.W%2 != 0 || spec.H%2 != 0 {
		return nil, fmt.Errorf("scene: invalid dimensions %dx%d", spec.W, spec.H)
	}
	if spec.FPS <= 0 || spec.DurationSec <= 0 {
		return nil, fmt.Errorf("scene: invalid duration %ds @ %dfps", spec.DurationSec, spec.FPS)
	}
	rng := stats.NewRNG(spec.Seed ^ 0x9e3779b97f4a7c15)
	v := &Video{Spec: spec}
	n := spec.NumFrames()
	speedScale := float64(spec.W) / 320.0
	for _, mix := range spec.Classes {
		style, ok := classStyles[mix.Class]
		if !ok {
			return nil, fmt.Errorf("scene: unknown class %q", mix.Class)
		}
		for i := 0; i < mix.Count; i++ {
			h := mix.SizeFrac * float64(spec.H) * (0.8 + 0.4*rng.Float64())
			w := h * style.aspect * (0.85 + 0.3*rng.Float64())
			if h < 6 {
				h = 6
			}
			if w < 6 {
				w = 6
			}
			o := object{
				class: mix.Class,
				style: style,
				w:     w, h: h,
				x0:    rng.Float64() * float64(spec.W),
				y0:    rng.Float64() * float64(spec.H),
				phase: rng.Float64() * 64,
			}
			sp := style.speed * speedScale * (0.6 + 0.8*rng.Float64())
			dir := 1.0
			if rng.Intn(2) == 0 {
				dir = -1
			}
			if style.vertical {
				o.vy = sp * dir
				o.vx = sp * 0.3 * (rng.Float64() - 0.5)
			} else {
				o.vx = sp * dir
				o.vy = sp * 0.25 * (rng.Float64() - 0.5)
			}
			o.absentFrom = -1
			if mix.Churn > 0 && rng.Float64() < mix.Churn {
				third := n / 3
				if third > 0 {
					k := rng.Intn(3)
					o.absentFrom = k * third
					o.absentTo = (k + 1) * third
				}
			}
			v.objects = append(v.objects, o)
		}
	}
	return v, nil
}

// position returns the object's center at frame t, bouncing off the frame
// edges deterministically (triangle-wave reflection).
func (o *object) position(t int, w, h int) (float64, float64) {
	return reflect(o.x0+o.vx*float64(t), float64(w)),
		reflect(o.y0+o.vy*float64(t), float64(h))
}

// reflect folds x into [0, limit) by reflecting at the boundaries.
func reflect(x, limit float64) float64 {
	if limit <= 0 {
		return 0
	}
	period := 2 * limit
	x = math.Mod(x, period)
	if x < 0 {
		x += period
	}
	if x >= limit {
		x = period - x
	}
	return x
}

func (o *object) visible(t int) bool {
	return o.absentFrom < 0 || t < o.absentFrom || t >= o.absentTo
}

// box returns the object's bounding box at frame t, clamped to the frame,
// or an empty rect if the object is absent.
func (o *object) box(t int, w, h int) geom.Rect {
	if !o.visible(t) {
		return geom.Rect{}
	}
	cx, cy := o.position(t, w, h)
	r := geom.R(
		int(cx-o.w/2), int(cy-o.h/2),
		int(cx+o.w/2), int(cy+o.h/2),
	)
	return r.Clamp(geom.R(0, 0, w, h))
}

// Frame renders frame t.
func (v *Video) Frame(t int) *frame.Frame {
	w, h := v.Spec.W, v.Spec.H
	f := frame.New(w, h)
	// Background: a textured gradient drifting with the camera pan. The
	// texture has enough spatial detail that the codec's bitrate responds
	// to content, and the pan makes "background" pixels change over time.
	pan := v.Spec.CameraPan * float64(t)
	for y := 0; y < h; y++ {
		base := 40 + 60*y/h
		row := f.Y[y*w : y*w+w]
		for x := 0; x < w; x++ {
			tx := float64(x) + pan
			tex := 20 * math.Sin(tx*0.11+float64(y)*0.07)
			row[x] = byte(clampInt(base+int(tex)+((x+int(pan))>>4&1)*8, 0, 255))
		}
	}
	for i := range f.Cb {
		f.Cb[i] = 126
		f.Cr[i] = 124
	}
	// Objects, drawn in declaration order.
	for oi := range v.objects {
		o := &v.objects[oi]
		b := o.box(t, w, h)
		if b.Empty() {
			continue
		}
		v.drawObject(f, o, b, t)
	}
	return f
}

func (v *Video) drawObject(f *frame.Frame, o *object, b geom.Rect, t int) {
	// Body with a simple striped texture so the codec sees real detail.
	for y := b.Y0; y < b.Y1; y++ {
		row := f.Y[y*f.W : y*f.W+f.W]
		for x := b.X0; x < b.X1; x++ {
			stripe := int(float64(x-y)*0.5+o.phase) & 15
			l := int(o.style.luma) - stripe
			row[x] = byte(clampInt(l, 0, 255))
		}
	}
	cw := f.W / 2
	for y := b.Y0 / 2; y < (b.Y1+1)/2 && y < f.H/2; y++ {
		for x := b.X0 / 2; x < (b.X1+1)/2 && x < cw; x++ {
			f.Cb[y*cw+x] = o.style.cb
			f.Cr[y*cw+x] = o.style.cr
		}
	}
	_ = t
}

// Frames renders frames [from, to).
func (v *Video) Frames(from, to int) []*frame.Frame {
	out := make([]*frame.Frame, 0, to-from)
	for t := from; t < to; t++ {
		out = append(out, v.Frame(t))
	}
	return out
}

// GroundTruth returns the true bounding box and class of every visible
// object on frame t.
func (v *Video) GroundTruth(t int) []Truth {
	var out []Truth
	for oi := range v.objects {
		o := &v.objects[oi]
		if b := o.box(t, v.Spec.W, v.Spec.H); !b.Empty() {
			out = append(out, Truth{Label: o.class, Box: b})
		}
	}
	return out
}

// Truth is a ground-truth object instance.
type Truth struct {
	Label string
	Box   geom.Rect
}

// Coverage returns the fraction of frame t covered by objects (union area).
func (v *Video) Coverage(t int) float64 {
	var boxes []geom.Rect
	for _, tr := range v.GroundTruth(t) {
		boxes = append(boxes, tr.Box)
	}
	return float64(geom.TotalArea(boxes)) / float64(v.Spec.W*v.Spec.H)
}

// MeanCoverage averages Coverage over sampled frames.
func (v *Video) MeanCoverage() float64 {
	n := v.Spec.NumFrames()
	step := n / 20
	if step < 1 {
		step = 1
	}
	var sum float64
	var cnt int
	for t := 0; t < n; t += step {
		sum += v.Coverage(t)
		cnt++
	}
	return sum / float64(cnt)
}

// Sparse reports whether mean object coverage is below 20%, the paper's
// sparse/dense threshold (§5.2.2).
func (v *Video) Sparse() bool { return v.MeanCoverage() < 0.20 }

// Classes returns the distinct object classes present, in spec order.
func (v *Video) Classes() []string {
	seen := map[string]bool{}
	var out []string
	for _, o := range v.objects {
		if !seen[o.class] {
			seen[o.class] = true
			out = append(out, o.class)
		}
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
