package scene

import (
	"testing"

	"github.com/tasm-repro/tasm/internal/geom"
)

func smallSpec() Spec {
	return Spec{
		Name: "test", W: 128, H: 96, FPS: 10, DurationSec: 3,
		Classes: []ClassMix{
			{Class: Car, Count: 2, SizeFrac: 0.2},
			{Class: Person, Count: 1, SizeFrac: 0.3},
		},
		Seed: 42,
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := smallSpec()
	bad.W = 127
	if _, err := Generate(bad); err == nil {
		t.Error("odd width accepted")
	}
	bad = smallSpec()
	bad.FPS = 0
	if _, err := Generate(bad); err == nil {
		t.Error("zero fps accepted")
	}
	bad = smallSpec()
	bad.Classes = []ClassMix{{Class: "dragon", Count: 1, SizeFrac: 0.1}}
	if _, err := Generate(bad); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestDeterministicRendering(t *testing.T) {
	v1, err := Generate(smallSpec())
	if err != nil {
		t.Fatal(err)
	}
	v2, _ := Generate(smallSpec())
	for _, ti := range []int{0, 7, 29} {
		a, b := v1.Frame(ti), v2.Frame(ti)
		for i := range a.Y {
			if a.Y[i] != b.Y[i] {
				t.Fatalf("frame %d not deterministic at %d", ti, i)
			}
		}
	}
	// Different seed differs.
	spec := smallSpec()
	spec.Seed = 43
	v3, _ := Generate(spec)
	diff := 0
	a, b := v1.Frame(0), v3.Frame(0)
	for i := range a.Y {
		if a.Y[i] != b.Y[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds rendered identical frames")
	}
}

func TestGroundTruthMatchesSpec(t *testing.T) {
	v, _ := Generate(smallSpec())
	gt := v.GroundTruth(0)
	if len(gt) != 3 {
		t.Fatalf("got %d objects, want 3", len(gt))
	}
	counts := map[string]int{}
	for _, tr := range gt {
		counts[tr.Label]++
		if tr.Box.Empty() {
			t.Errorf("empty ground-truth box for %s", tr.Label)
		}
		if !geom.R(0, 0, 128, 96).Contains(tr.Box) {
			t.Errorf("box %v escapes frame", tr.Box)
		}
	}
	if counts[Car] != 2 || counts[Person] != 1 {
		t.Errorf("class counts = %v", counts)
	}
}

func TestObjectsActuallyRendered(t *testing.T) {
	v, _ := Generate(smallSpec())
	f := v.Frame(0)
	for _, tr := range v.GroundTruth(0) {
		if tr.Box.Area() < 16 {
			continue
		}
		// Sample the box center: it must differ from the background that
		// would be there otherwise (background luma is < 110 + texture).
		cx, cy := (tr.Box.X0+tr.Box.X1)/2, (tr.Box.Y0+tr.Box.Y1)/2
		style := classStyles[tr.Label]
		got := f.YAt(cx, cy)
		if d := int(got) - int(style.luma); d < -40 || d > 40 {
			t.Errorf("%s at (%d,%d): luma %d far from style %d", tr.Label, cx, cy, got, style.luma)
		}
	}
}

func TestObjectsMove(t *testing.T) {
	v, _ := Generate(smallSpec())
	moved := false
	a, b := v.GroundTruth(0), v.GroundTruth(20)
	for i := range a {
		if a[i].Box != b[i].Box {
			moved = true
		}
	}
	if !moved {
		t.Error("no object moved over 20 frames")
	}
}

func TestChurnCreatesAbsence(t *testing.T) {
	spec := Spec{
		Name: "churn", W: 128, H: 96, FPS: 10, DurationSec: 6,
		Classes: []ClassMix{{Class: Car, Count: 20, SizeFrac: 0.1, Churn: 1.0}},
		Seed:    7,
	}
	v, _ := Generate(spec)
	n := spec.NumFrames()
	minSeen, maxSeen := 1000, 0
	for t0 := 0; t0 < n; t0 += 5 {
		c := len(v.GroundTruth(t0))
		if c < minSeen {
			minSeen = c
		}
		if c > maxSeen {
			maxSeen = c
		}
	}
	if minSeen == maxSeen {
		t.Errorf("churn had no effect: always %d objects", minSeen)
	}
}

func TestCoverage(t *testing.T) {
	v, _ := Generate(smallSpec())
	c := v.Coverage(0)
	if c <= 0 || c >= 1 {
		t.Errorf("coverage = %f", c)
	}
	// Manual union check.
	var boxes []geom.Rect
	for _, tr := range v.GroundTruth(0) {
		boxes = append(boxes, tr.Box)
	}
	want := float64(geom.TotalArea(boxes)) / float64(128*96)
	if c != want {
		t.Errorf("coverage = %f, want %f", c, want)
	}
}

func TestReflect(t *testing.T) {
	cases := []struct{ x, limit, want float64 }{
		{5, 10, 5},
		{15, 10, 5},
		{25, 10, 5},
		{-3, 10, 3},
		{10, 10, 10}, // boundary folds to limit then clamps inside on next step
	}
	for _, tc := range cases {
		got := reflect(tc.x, tc.limit)
		if got < 0 || got > tc.limit {
			t.Errorf("reflect(%v,%v) = %v out of range", tc.x, tc.limit, got)
		}
		if tc.x != 10 && got != tc.want {
			t.Errorf("reflect(%v,%v) = %v, want %v", tc.x, tc.limit, got, tc.want)
		}
	}
}

func TestPresetsMatchTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("preset generation is slow in -short mode")
	}
	presets := Presets(Options{})
	if len(presets) < 10 {
		t.Fatalf("only %d presets", len(presets))
	}
	datasets := map[string]bool{}
	for _, p := range presets {
		v, err := Generate(p.Spec)
		if err != nil {
			t.Fatalf("%s: %v", p.Spec.Name, err)
		}
		datasets[p.Spec.Dataset] = true
		mc := v.MeanCoverage()
		if p.SparseExpected && mc >= 0.25 {
			t.Errorf("%s: expected sparse, mean coverage %.2f", p.Spec.Name, mc)
		}
		if !p.SparseExpected && mc < 0.15 {
			t.Errorf("%s: expected dense, mean coverage %.2f", p.Spec.Name, mc)
		}
		if len(p.QueryClasses) == 0 {
			t.Errorf("%s: no query classes", p.Spec.Name)
		}
		classes := map[string]bool{}
		for _, c := range v.Classes() {
			classes[c] = true
		}
		for _, qc := range p.QueryClasses {
			if !classes[qc] {
				t.Errorf("%s: query class %s not present in video", p.Spec.Name, qc)
			}
		}
	}
	for _, want := range []string{"VisualRoad", "NetflixPublic", "NetflixOpenSource", "XIPH", "MOT16", "ElFuente"} {
		if !datasets[want] {
			t.Errorf("missing dataset %s", want)
		}
	}
}

func TestPresetFilters(t *testing.T) {
	o := Options{}
	all := len(Presets(o))
	s, d := len(SparsePresets(o)), len(DensePresets(o))
	if s+d != all {
		t.Errorf("sparse %d + dense %d != all %d", s, d, all)
	}
	vr := VisualRoadPresets(o)
	if len(vr) != 3 {
		t.Errorf("VisualRoad presets = %d, want 3", len(vr))
	}
	for _, p := range vr {
		if p.Spec.Dataset != "VisualRoad" {
			t.Errorf("filter leaked %s", p.Spec.Dataset)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	p := Presets(Options{})[0]
	if p.Spec.W != 320 || p.Spec.H != 180 || p.Spec.FPS != 30 {
		t.Errorf("defaults = %dx%d@%d", p.Spec.W, p.Spec.H, p.Spec.FPS)
	}
	p = Presets(Options{Width: 640, Height: 360, FPS: 15, DurationScale: 0.5})[0]
	if p.Spec.W != 640 || p.Spec.H != 360 || p.Spec.FPS != 15 {
		t.Errorf("options ignored: %dx%d@%d", p.Spec.W, p.Spec.H, p.Spec.FPS)
	}
	if p.Spec.DurationSec != 8 { // 16 * 0.5
		t.Errorf("duration scale: %d", p.Spec.DurationSec)
	}
}

func BenchmarkRenderFrame(b *testing.B) {
	v, _ := Generate(Presets(Options{})[0].Spec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Frame(i % 100)
	}
}
