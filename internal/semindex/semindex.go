// Package semindex implements TASM's semantic index (paper §3.2): labeled
// bounding boxes clustered on (video, label, time), stored in a B-tree.
// Leaves carry the bounding box and, when the storage manager has computed
// it, a pointer to the tile(s) the box intersects under the current layout.
//
// The index also tracks detection coverage — which (video, label, frame)
// combinations an object detector has fully processed — which is what the
// lazy and incremental tiling policies consult to decide whether object
// locations are "known" (paper §4.3).
package semindex

import (
	"encoding/binary"
	"fmt"
	"strings"

	"github.com/tasm-repro/tasm/internal/btree"
	"github.com/tasm-repro/tasm/internal/geom"
)

// Detection is one labeled object instance on one frame.
type Detection struct {
	Frame int
	Label string
	Box   geom.Rect
}

// TilePointer locates the tiles containing a box: the SOT the frame belongs
// to and the row-major tile indexes within that SOT's layout.
type TilePointer struct {
	SOT   uint32
	Tiles []uint16
}

// Entry is a stored detection plus its (optional) tile pointer.
type Entry struct {
	Detection
	Pointer *TilePointer // nil if the mapping has not been materialized
}

// Index is the semantic index. All methods are safe for concurrent use
// (the underlying tree serializes access).
type Index struct {
	tree *btree.Tree
}

// Open opens or creates a persistent index at path.
func Open(path string) (*Index, error) {
	t, err := btree.Open(path)
	if err != nil {
		return nil, err
	}
	return &Index{tree: t}, nil
}

// OpenMemory returns an in-memory index.
func OpenMemory() *Index { return &Index{tree: btree.OpenMemory()} }

// Close flushes and closes the index.
func (ix *Index) Close() error { return ix.tree.Close() }

// Sync flushes dirty pages to disk.
func (ix *Index) Sync() error { return ix.tree.Sync() }

// Len returns the total number of stored records (detections + coverage
// markers).
func (ix *Index) Len() int { return ix.tree.Len() }

const (
	prefixDetection = 'd'
	prefixCoverage  = 'c'
)

func validName(s string) error {
	if s == "" {
		return fmt.Errorf("semindex: empty name")
	}
	if strings.ContainsRune(s, 0) {
		return fmt.Errorf("semindex: name %q contains NUL", s)
	}
	return nil
}

// detKey builds the clustered key: d video \0 label \0 frame box-coords.
// Big-endian fixed-width integers preserve ordering, so a range scan over
// (video, label, [from,to)) is a contiguous key range — exactly the access
// path Scan(v, L, T) needs.
func detKey(video, label string, frame int, box geom.Rect) []byte {
	k := make([]byte, 0, len(video)+len(label)+3+20)
	k = append(k, prefixDetection)
	k = append(k, video...)
	k = append(k, 0)
	k = append(k, label...)
	k = append(k, 0)
	k = appendBE32(k, uint32(frame))
	k = appendBE32(k, uint32(box.X0))
	k = appendBE32(k, uint32(box.Y0))
	k = appendBE32(k, uint32(box.X1))
	k = appendBE32(k, uint32(box.Y1))
	return k
}

// detPrefix returns the key prefix for (video, label) up to the frame field.
func detPrefix(video, label string) []byte {
	k := make([]byte, 0, len(video)+len(label)+3)
	k = append(k, prefixDetection)
	k = append(k, video...)
	k = append(k, 0)
	k = append(k, label...)
	k = append(k, 0)
	return k
}

func covKey(video, label string, frame int) []byte {
	k := make([]byte, 0, len(video)+len(label)+7)
	k = append(k, prefixCoverage)
	k = append(k, video...)
	k = append(k, 0)
	k = append(k, label...)
	k = append(k, 0)
	k = appendBE32(k, uint32(frame))
	return k
}

func appendBE32(b []byte, v uint32) []byte {
	var tmp [4]byte
	binary.BigEndian.PutUint32(tmp[:], v)
	return append(b, tmp[:]...)
}

func encodePointer(p *TilePointer) []byte {
	if p == nil {
		return []byte{0}
	}
	out := make([]byte, 0, 6+2*len(p.Tiles))
	out = append(out, 1)
	out = appendBE32(out, p.SOT)
	out = append(out, byte(len(p.Tiles)))
	for _, t := range p.Tiles {
		var tmp [2]byte
		binary.BigEndian.PutUint16(tmp[:], t)
		out = append(out, tmp[:]...)
	}
	return out
}

func decodePointer(v []byte) *TilePointer {
	if len(v) < 1 || v[0] == 0 || len(v) < 6 {
		return nil
	}
	p := &TilePointer{SOT: binary.BigEndian.Uint32(v[1:])}
	n := int(v[5])
	for i := 0; i < n && 6+2*i+2 <= len(v); i++ {
		p.Tiles = append(p.Tiles, binary.BigEndian.Uint16(v[6+2*i:]))
	}
	return p
}

// Add records a detection (the paper's AddMetadata). Duplicate detections
// (same video, label, frame, box) coalesce into one entry.
func (ix *Index) Add(video string, d Detection) error {
	if err := validName(video); err != nil {
		return err
	}
	if err := validName(d.Label); err != nil {
		return err
	}
	if d.Frame < 0 {
		return fmt.Errorf("semindex: negative frame %d", d.Frame)
	}
	if d.Box.Empty() {
		return fmt.Errorf("semindex: empty box for %s@%d", d.Label, d.Frame)
	}
	return ix.tree.Put(detKey(video, d.Label, d.Frame, d.Box), encodePointer(nil))
}

// AddBatch records multiple detections.
func (ix *Index) AddBatch(video string, ds []Detection) error {
	for _, d := range ds {
		if err := ix.Add(video, d); err != nil {
			return err
		}
	}
	return nil
}

// SetPointer materializes the box→tile mapping for one stored detection.
func (ix *Index) SetPointer(video string, d Detection, p TilePointer) error {
	return ix.tree.Put(detKey(video, d.Label, d.Frame, d.Box), encodePointer(&p))
}

// Lookup returns all detections for (video, label) with Frame in
// [fromFrame, toFrame), ordered by frame.
func (ix *Index) Lookup(video, label string, fromFrame, toFrame int) ([]Entry, error) {
	if toFrame <= fromFrame {
		return nil, nil
	}
	start := detKey(video, label, fromFrame, geom.Rect{})[:len(detPrefix(video, label))+4]
	end := detKey(video, label, toFrame, geom.Rect{})[:len(detPrefix(video, label))+4]
	var out []Entry
	err := ix.tree.Scan(start, end, func(k, v []byte) bool {
		e, ok := parseDetKey(k, video, label)
		if !ok {
			return true
		}
		e.Pointer = decodePointer(v)
		out = append(out, e)
		return true
	})
	return out, err
}

// LookupBoxes is Lookup returning just the bounding boxes.
func (ix *Index) LookupBoxes(video, label string, fromFrame, toFrame int) ([]geom.Rect, error) {
	entries, err := ix.Lookup(video, label, fromFrame, toFrame)
	if err != nil {
		return nil, err
	}
	boxes := make([]geom.Rect, len(entries))
	for i, e := range entries {
		boxes[i] = e.Box
	}
	return boxes, nil
}

func parseDetKey(k []byte, video, label string) (Entry, bool) {
	prefix := detPrefix(video, label)
	if len(k) != len(prefix)+20 {
		return Entry{}, false
	}
	body := k[len(prefix):]
	e := Entry{Detection: Detection{
		Frame: int(binary.BigEndian.Uint32(body[0:])),
		Label: label,
		Box: geom.R(
			int(binary.BigEndian.Uint32(body[4:])),
			int(binary.BigEndian.Uint32(body[8:])),
			int(binary.BigEndian.Uint32(body[12:])),
			int(binary.BigEndian.Uint32(body[16:])),
		),
	}}
	return e, true
}

// Labels returns the distinct labels stored for video, in sorted order.
func (ix *Index) Labels(video string) ([]string, error) {
	if err := validName(video); err != nil {
		return nil, err
	}
	prefix := append([]byte{prefixDetection}, video...)
	prefix = append(prefix, 0)
	var labels []string
	var last string
	err := ix.tree.Scan(prefix, upperBound(prefix), func(k, v []byte) bool {
		rest := k[len(prefix):]
		i := 0
		for i < len(rest) && rest[i] != 0 {
			i++
		}
		label := string(rest[:i])
		if label != last {
			labels = append(labels, label)
			last = label
		}
		return true
	})
	return labels, err
}

// upperBound returns the smallest key greater than every key with the given
// prefix (nil if the prefix is all 0xFF).
func upperBound(prefix []byte) []byte {
	out := append([]byte(nil), prefix...)
	for i := len(out) - 1; i >= 0; i-- {
		if out[i] != 0xFF {
			out[i]++
			return out[:i+1]
		}
	}
	return nil
}

// DeleteVideo removes every record stored for a video: detections (with
// their tile pointers) and coverage markers. The storage manager calls
// this when a video's tiles are deleted, so a later re-ingest under the
// same name starts with a clean index instead of inheriting the deleted
// video's object locations.
func (ix *Index) DeleteVideo(video string) error {
	if err := validName(video); err != nil {
		return err
	}
	for _, kind := range []byte{prefixDetection, prefixCoverage} {
		prefix := append(append([]byte{kind}, video...), 0)
		// Collect first, then delete: Delete rebalances leaves, which
		// must not happen under a live Scan.
		var keys [][]byte
		if err := ix.tree.Scan(prefix, upperBound(prefix), func(k, v []byte) bool {
			keys = append(keys, append([]byte(nil), k...))
			return true
		}); err != nil {
			return err
		}
		for _, k := range keys {
			if _, err := ix.tree.Delete(k); err != nil {
				return err
			}
		}
	}
	return nil
}

// MarkDetected records that a detector has fully processed frames
// [fromFrame, toFrame) of video for the given label, meaning the absence of
// index entries there is definitive.
func (ix *Index) MarkDetected(video, label string, fromFrame, toFrame int) error {
	if err := validName(video); err != nil {
		return err
	}
	if err := validName(label); err != nil {
		return err
	}
	for f := fromFrame; f < toFrame; f++ {
		if err := ix.tree.Put(covKey(video, label, f), []byte{1}); err != nil {
			return err
		}
	}
	return nil
}

// DetectedAll reports whether every frame in [fromFrame, toFrame) has been
// processed for label.
func (ix *Index) DetectedAll(video, label string, fromFrame, toFrame int) (bool, error) {
	if toFrame <= fromFrame {
		return true, nil
	}
	count := 0
	err := ix.tree.Scan(covKey(video, label, fromFrame), covKey(video, label, toFrame), func(k, v []byte) bool {
		count++
		return true
	})
	return count == toFrame-fromFrame, err
}

// DetectedFrames returns how many frames in [fromFrame, toFrame) have been
// processed for label.
func (ix *Index) DetectedFrames(video, label string, fromFrame, toFrame int) (int, error) {
	count := 0
	err := ix.tree.Scan(covKey(video, label, fromFrame), covKey(video, label, toFrame), func(k, v []byte) bool {
		count++
		return true
	})
	return count, err
}
