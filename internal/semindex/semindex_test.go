package semindex

import (
	"path/filepath"
	"testing"

	"github.com/tasm-repro/tasm/internal/geom"
	"github.com/tasm-repro/tasm/internal/stats"
)

func det(f int, label string, x, y int) Detection {
	return Detection{Frame: f, Label: label, Box: geom.R(x, y, x+20, y+20)}
}

func TestAddLookup(t *testing.T) {
	ix := OpenMemory()
	defer ix.Close()
	for f := 0; f < 100; f++ {
		if err := ix.Add("traffic", det(f, "car", f, 10)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ix.Lookup("traffic", "car", 20, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("Lookup found %d, want 10", len(got))
	}
	for i, e := range got {
		if e.Frame != 20+i {
			t.Errorf("entry %d frame = %d", i, e.Frame)
		}
		if e.Label != "car" {
			t.Errorf("entry %d label = %q", i, e.Label)
		}
		if e.Box != geom.R(20+i, 10, 40+i, 30) {
			t.Errorf("entry %d box = %v", i, e.Box)
		}
		if e.Pointer != nil {
			t.Errorf("entry %d has unexpected pointer", i)
		}
	}
}

func TestLookupIsolatesLabelsAndVideos(t *testing.T) {
	ix := OpenMemory()
	defer ix.Close()
	ix.Add("v1", det(5, "car", 0, 0))
	ix.Add("v1", det(5, "person", 100, 100))
	ix.Add("v2", det(5, "car", 50, 50))

	got, _ := ix.Lookup("v1", "car", 0, 10)
	if len(got) != 1 || got[0].Box.X0 != 0 {
		t.Errorf("v1/car lookup: %v", got)
	}
	got, _ = ix.Lookup("v2", "car", 0, 10)
	if len(got) != 1 || got[0].Box.X0 != 50 {
		t.Errorf("v2/car lookup: %v", got)
	}
	got, _ = ix.Lookup("v1", "bird", 0, 10)
	if len(got) != 0 {
		t.Errorf("absent label returned %v", got)
	}
}

func TestMultipleBoxesPerFrame(t *testing.T) {
	ix := OpenMemory()
	defer ix.Close()
	ix.Add("v", det(3, "car", 0, 0))
	ix.Add("v", det(3, "car", 100, 0))
	ix.Add("v", det(3, "car", 200, 0))
	got, _ := ix.Lookup("v", "car", 3, 4)
	if len(got) != 3 {
		t.Fatalf("got %d boxes, want 3", len(got))
	}
	// Duplicate add coalesces.
	ix.Add("v", det(3, "car", 0, 0))
	got, _ = ix.Lookup("v", "car", 3, 4)
	if len(got) != 3 {
		t.Errorf("duplicate add changed count to %d", len(got))
	}
}

func TestValidation(t *testing.T) {
	ix := OpenMemory()
	defer ix.Close()
	if err := ix.Add("", det(0, "car", 0, 0)); err == nil {
		t.Error("empty video accepted")
	}
	if err := ix.Add("v", Detection{Frame: 0, Label: "", Box: geom.R(0, 0, 5, 5)}); err == nil {
		t.Error("empty label accepted")
	}
	if err := ix.Add("v\x00x", det(0, "car", 0, 0)); err == nil {
		t.Error("NUL video accepted")
	}
	if err := ix.Add("v", Detection{Frame: -1, Label: "car", Box: geom.R(0, 0, 5, 5)}); err == nil {
		t.Error("negative frame accepted")
	}
	if err := ix.Add("v", Detection{Frame: 0, Label: "car"}); err == nil {
		t.Error("empty box accepted")
	}
}

func TestLabels(t *testing.T) {
	ix := OpenMemory()
	defer ix.Close()
	ix.Add("v", det(0, "person", 0, 0))
	ix.Add("v", det(1, "car", 0, 0))
	ix.Add("v", det(2, "car", 10, 0))
	ix.Add("other", det(0, "bird", 0, 0))
	labels, err := ix.Labels("v")
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != 2 || labels[0] != "car" || labels[1] != "person" {
		t.Errorf("Labels = %v", labels)
	}
	labels, _ = ix.Labels("missing")
	if len(labels) != 0 {
		t.Errorf("missing video labels = %v", labels)
	}
}

func TestPointerRoundTrip(t *testing.T) {
	ix := OpenMemory()
	defer ix.Close()
	d := det(7, "car", 30, 40)
	ix.Add("v", d)
	if err := ix.SetPointer("v", d, TilePointer{SOT: 2, Tiles: []uint16{3, 4}}); err != nil {
		t.Fatal(err)
	}
	got, _ := ix.Lookup("v", "car", 7, 8)
	if len(got) != 1 || got[0].Pointer == nil {
		t.Fatalf("pointer missing: %+v", got)
	}
	p := got[0].Pointer
	if p.SOT != 2 || len(p.Tiles) != 2 || p.Tiles[0] != 3 || p.Tiles[1] != 4 {
		t.Errorf("pointer = %+v", p)
	}
}

func TestCoverage(t *testing.T) {
	ix := OpenMemory()
	defer ix.Close()
	ix.MarkDetected("v", "car", 0, 50)
	ok, err := ix.DetectedAll("v", "car", 0, 50)
	if err != nil || !ok {
		t.Errorf("DetectedAll full range = %v, %v", ok, err)
	}
	ok, _ = ix.DetectedAll("v", "car", 0, 51)
	if ok {
		t.Error("coverage extends past marked range")
	}
	ok, _ = ix.DetectedAll("v", "car", 10, 20)
	if !ok {
		t.Error("sub-range not covered")
	}
	ok, _ = ix.DetectedAll("v", "person", 0, 10)
	if ok {
		t.Error("unmarked label covered")
	}
	n, _ := ix.DetectedFrames("v", "car", 40, 60)
	if n != 10 {
		t.Errorf("DetectedFrames = %d, want 10", n)
	}
	// Empty range is trivially covered.
	ok, _ = ix.DetectedAll("v", "car", 5, 5)
	if !ok {
		t.Error("empty range not covered")
	}
	// Disjoint marks merge.
	ix.MarkDetected("v", "person", 0, 10)
	ix.MarkDetected("v", "person", 10, 20)
	ok, _ = ix.DetectedAll("v", "person", 0, 20)
	if !ok {
		t.Error("adjacent marks did not merge")
	}
}

func TestPersistentIndex(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sem.idx")
	ix, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	for f := 0; f < 300; f++ {
		ix.Add("v", det(f, "car", rng.Intn(500), rng.Intn(300)))
		if f%2 == 0 {
			ix.Add("v", det(f, "person", rng.Intn(500), rng.Intn(300)))
		}
	}
	ix.MarkDetected("v", "car", 0, 300)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ix2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	cars, _ := ix2.Lookup("v", "car", 0, 300)
	if len(cars) != 300 {
		t.Errorf("reopened car count = %d", len(cars))
	}
	people, _ := ix2.Lookup("v", "person", 0, 300)
	if len(people) != 150 {
		t.Errorf("reopened person count = %d", len(people))
	}
	ok, _ := ix2.DetectedAll("v", "car", 0, 300)
	if !ok {
		t.Error("coverage lost after reopen")
	}
}

func TestLookupBoxes(t *testing.T) {
	ix := OpenMemory()
	defer ix.Close()
	ix.Add("v", det(1, "car", 10, 20))
	boxes, err := ix.LookupBoxes("v", "car", 0, 5)
	if err != nil || len(boxes) != 1 {
		t.Fatalf("LookupBoxes: %v %v", boxes, err)
	}
	if boxes[0] != geom.R(10, 20, 30, 40) {
		t.Errorf("box = %v", boxes[0])
	}
}

func TestUpperBound(t *testing.T) {
	if got := upperBound([]byte{1, 2, 3}); string(got) != string([]byte{1, 2, 4}) {
		t.Errorf("upperBound = %v", got)
	}
	if got := upperBound([]byte{1, 0xFF}); string(got) != string([]byte{2}) {
		t.Errorf("upperBound rollover = %v", got)
	}
	if got := upperBound([]byte{0xFF, 0xFF}); got != nil {
		t.Errorf("all-FF upperBound = %v", got)
	}
}

func TestEmptyRangeLookup(t *testing.T) {
	ix := OpenMemory()
	defer ix.Close()
	ix.Add("v", det(5, "car", 0, 0))
	got, err := ix.Lookup("v", "car", 7, 7)
	if err != nil || len(got) != 0 {
		t.Errorf("empty range lookup: %v %v", got, err)
	}
	got, err = ix.Lookup("v", "car", 9, 3)
	if err != nil || len(got) != 0 {
		t.Errorf("inverted range lookup: %v %v", got, err)
	}
}

func TestDeleteVideo(t *testing.T) {
	ix := OpenMemory()
	for f := 0; f < 5; f++ {
		if err := ix.Add("a", Detection{Frame: f, Label: "car", Box: geom.R(0, 0, 8, 8)}); err != nil {
			t.Fatal(err)
		}
		if err := ix.Add("b", Detection{Frame: f, Label: "car", Box: geom.R(0, 0, 8, 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.MarkDetected("a", "car", 0, 5); err != nil {
		t.Fatal(err)
	}
	if err := ix.DeleteVideo("a"); err != nil {
		t.Fatal(err)
	}
	if labels, _ := ix.Labels("a"); len(labels) != 0 {
		t.Fatalf("labels(a) = %v after delete", labels)
	}
	if got, _ := ix.Lookup("a", "car", 0, 5); len(got) != 0 {
		t.Fatalf("%d detections survive delete", len(got))
	}
	if ok, _ := ix.DetectedAll("a", "car", 0, 5); ok {
		t.Fatal("coverage markers survive delete")
	}
	// Video "b" is untouched.
	if got, _ := ix.Lookup("b", "car", 0, 5); len(got) != 5 {
		t.Fatalf("lookup(b) = %d, want 5", len(got))
	}
	// Deleting a video with no records is a no-op, not an error.
	if err := ix.DeleteVideo("ghost"); err != nil {
		t.Fatal(err)
	}
}
