package server

// Tenancy: bearer-token authentication and per-tenant admission.
//
// A token-protected daemon (tasmd -token-file) maps every request's
// bearer token to a tenant id. Tenants are the serving contract's unit
// of isolation: each gets its own inflight quota carved out of the
// global limit, so one tenant saturating its streams degrades into 503s
// for that tenant while the others keep their full budget. The health
// probe stays unauthenticated — an overloaded or misconfigured daemon
// must still say it is alive.

import (
	"bufio"
	"fmt"
	"net/http"
	"os"
	"strings"

	"github.com/tasm-repro/tasm/internal/rpcwire"
)

// ParseTokenFile reads a tenant table: one "tenant:token" per line,
// blank lines and #-comments ignored. Tokens must be unique (a shared
// token would silently merge two tenants' quotas); tenant ids may
// repeat (one tenant, several tokens — rotation without downtime).
// The returned map is keyed by token.
func ParseTokenFile(path string) (map[string]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("server: token file: %w", err)
	}
	defer f.Close()
	tenants := map[string]string{}
	sc := bufio.NewScanner(f)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tenant, token, ok := strings.Cut(line, ":")
		tenant, token = strings.TrimSpace(tenant), strings.TrimSpace(token)
		if !ok || tenant == "" || token == "" {
			return nil, fmt.Errorf("server: token file %s:%d: want tenant:token", path, lineNo)
		}
		if prev, dup := tenants[token]; dup {
			return nil, fmt.Errorf("server: token file %s:%d: token already assigned to tenant %q", path, lineNo, prev)
		}
		tenants[token] = tenant
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("server: token file: %w", err)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("server: token file %s holds no tokens", path)
	}
	return tenants, nil
}

// authenticate resolves the request's tenant against the live tenant
// table (loaded once, so a concurrent SetTenants swap cannot tear this
// request's view). With no table the daemon is open and all traffic is
// the anonymous tenant "". With one, a missing or unknown bearer token
// is refused with ErrUnauthorized before any work (or limiter slot) is
// spent on it.
func (s *Server) authenticate(r *http.Request) (string, error) {
	var tenants map[string]string
	if p := s.tenants.Load(); p != nil {
		tenants = *p
	}
	if len(tenants) == 0 {
		return "", nil
	}
	auth := r.Header.Get("Authorization")
	// Auth schemes are case-insensitive (RFC 7235); some proxies
	// normalize to lowercase "bearer".
	const scheme = "bearer "
	if len(auth) < len(scheme) || !strings.EqualFold(auth[:len(scheme)], scheme) {
		return "", fmt.Errorf("%w: missing bearer token", rpcwire.ErrUnauthorized)
	}
	token := strings.TrimSpace(auth[len(scheme):])
	if token == "" {
		return "", fmt.Errorf("%w: missing bearer token", rpcwire.ErrUnauthorized)
	}
	tenant, known := tenants[token]
	if !known {
		return "", fmt.Errorf("%w: unknown token", rpcwire.ErrUnauthorized)
	}
	return tenant, nil
}

// admit takes an inflight slot for the tenant: first the global bound
// (protecting the process), then the tenant's quota (protecting the
// other tenants). Both rejections are the same typed, retryable
// overloaded error; the caller adds Retry-After. The returned release
// returns both slots.
func (s *Server) admit(tenant string) (release func(), err error) {
	select {
	case s.inflight <- struct{}{}:
	default:
		return nil, fmt.Errorf("%w: %d requests in flight", rpcwire.ErrOverloaded, s.cfg.MaxInflight)
	}
	ch := s.tenantQuota(tenant)
	if ch == nil {
		return func() { <-s.inflight }, nil
	}
	select {
	case ch <- struct{}{}:
	default:
		<-s.inflight
		return nil, fmt.Errorf("%w: tenant %q at %d requests in flight", rpcwire.ErrOverloaded, tenant, cap(ch))
	}
	return func() { <-ch; <-s.inflight }, nil
}

// tenantQuota returns the tenant's admission channel, creating it on
// first use (tenant ids appear at runtime via SetTenants, so quotas
// cannot be pre-built at New). The anonymous tenant of an open daemon
// has no per-tenant quota — the global bound is the only limit, as
// before tenancy existed. Channels are never removed: a token rotation
// must not orphan slots held by in-flight requests of a renamed tenant.
func (s *Server) tenantQuota(tenant string) chan struct{} {
	if tenant == "" {
		return nil
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	ch := s.tenantInflight[tenant]
	if ch == nil {
		ch = make(chan struct{}, s.cfg.TenantMaxInflight)
		s.tenantInflight[tenant] = ch
	}
	return ch
}
