package server

// Tenancy tests: the token-file format, the auth matrix (no token /
// bad token / wrong tenant / valid), and per-tenant quota isolation —
// one tenant exhausting its inflight quota must not spend another's.

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/rpcwire"
)

func TestParseTokenFile(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) string {
		t.Helper()
		p := filepath.Join(dir, "tokens")
		if err := os.WriteFile(p, []byte(content), 0o600); err != nil {
			t.Fatal(err)
		}
		return p
	}

	tenants, err := ParseTokenFile(write("# staff\nalpha: sek-a1 \nalpha:sek-a2\n\nbeta:sek-b\n"))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"sek-a1": "alpha", "sek-a2": "alpha", "sek-b": "beta"}
	if len(tenants) != len(want) {
		t.Fatalf("parsed %v", tenants)
	}
	for token, tenant := range want {
		if tenants[token] != tenant {
			t.Errorf("token %q -> %q, want %q", token, tenants[token], tenant)
		}
	}

	for name, content := range map[string]string{
		"missing separator": "alpha\n",
		"empty token":       "alpha:\n",
		"empty tenant":      ":sek\n",
		"duplicate token":   "alpha:sek\nbeta:sek\n",
		"only comments":     "# nothing\n",
	} {
		if _, err := ParseTokenFile(write(content)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := ParseTokenFile(filepath.Join(dir, "absent")); err == nil {
		t.Error("missing file accepted")
	}
}

// authedServer builds a handler with two tenants and tiny quotas,
// returning the internal type so tests can saturate quotas
// deterministically (the same technique as the limiter test).
func authedServer(t *testing.T) *Server {
	t.Helper()
	sm, err := tasm.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sm.Close() })
	h := New(sm, Config{
		Tenants:           map[string]string{"sek-a": "alpha", "sek-a2": "alpha", "sek-b": "beta"},
		TenantMaxInflight: 1,
		MaxInflight:       8,
	})
	return h
}

func get(h http.Handler, path, token string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestAuthMatrix is the satellite's matrix: no token and bad token are
// 401 unauthorized (decoding to the typed sentinel); any listed token
// works; the health probe never needs one.
func TestAuthMatrix(t *testing.T) {
	h := authedServer(t)
	for name, token := range map[string]string{"no token": "", "bad token": "sek-wrong"} {
		rec := get(h, "/v1/videos", token)
		if rec.Code != http.StatusUnauthorized {
			t.Fatalf("%s: status %d, want 401", name, rec.Code)
		}
		var envelope struct {
			Error rpcwire.ErrorBody `json:"error"`
		}
		if err := json.NewDecoder(rec.Body).Decode(&envelope); err != nil {
			t.Fatal(err)
		}
		if !errors.Is(rpcwire.DecodeError(envelope.Error), rpcwire.ErrUnauthorized) {
			t.Fatalf("%s: envelope %+v does not decode to ErrUnauthorized", name, envelope.Error)
		}
	}
	for _, token := range []string{"sek-a", "sek-a2", "sek-b"} {
		if rec := get(h, "/v1/videos", token); rec.Code != http.StatusOK {
			t.Fatalf("valid token %q: status %d", token, rec.Code)
		}
	}
	// Auth schemes are case-insensitive (RFC 7235): a proxy-lowercased
	// "bearer" must still authenticate.
	req := httptest.NewRequest(http.MethodGet, "/v1/videos", nil)
	req.Header.Set("Authorization", "bearer sek-a")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("lowercase bearer scheme: status %d", rec.Code)
	}
	if rec := get(h, "/v1/healthz", ""); rec.Code != http.StatusOK {
		t.Fatalf("healthz requires auth: %d", rec.Code)
	}
}

// TestTenantQuotaIsolation: with tenant alpha's quota saturated, alpha
// is rejected 503 (Retry-After + typed envelope) through EVERY of its
// tokens — a second token grants no extra quota — while tenant beta's
// requests still succeed and the global limit stays unspent.
func TestTenantQuotaIsolation(t *testing.T) {
	h := authedServer(t)
	h.tenantQuota("alpha") <- struct{}{} // saturate alpha (quota 1)

	for _, token := range []string{"sek-a", "sek-a2"} {
		rec := get(h, "/v1/videos", token)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("saturated tenant via %q: status %d, want 503", token, rec.Code)
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatal("tenant 503 without Retry-After")
		}
		var envelope struct {
			Error rpcwire.ErrorBody `json:"error"`
		}
		if err := json.NewDecoder(rec.Body).Decode(&envelope); err != nil {
			t.Fatal(err)
		}
		if !errors.Is(rpcwire.DecodeError(envelope.Error), rpcwire.ErrOverloaded) {
			t.Fatalf("tenant 503 envelope %+v does not decode to ErrOverloaded", envelope.Error)
		}
	}

	// The other tenant is untouched.
	if rec := get(h, "/v1/videos", "sek-b"); rec.Code != http.StatusOK {
		t.Fatalf("beta under alpha's saturation: status %d", rec.Code)
	}
	// A rejected tenant request must have returned its global slot.
	if used := len(h.inflight); used != 0 {
		t.Fatalf("%d global slots leaked by tenant rejections", used)
	}

	// Freeing alpha's quota readmits it.
	<-h.tenantQuota("alpha")
	if rec := get(h, "/v1/videos", "sek-a"); rec.Code != http.StatusOK {
		t.Fatalf("after freeing quota: status %d", rec.Code)
	}
}
