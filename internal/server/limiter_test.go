package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/rpcwire"
)

// TestLimiterRejectsWhenFull fills the inflight semaphore directly (the
// deterministic stand-in for MaxInflight concurrent slow streams) and
// asserts the next request is rejected as 503 overloaded while the
// health probe still answers.
func TestLimiterRejectsWhenFull(t *testing.T) {
	sm, err := tasm.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	h := New(sm, Config{MaxInflight: 2})
	h.inflight <- struct{}{}
	h.inflight <- struct{}{}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/videos", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	var envelope struct {
		Error rpcwire.ErrorBody `json:"error"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rpcwire.DecodeError(envelope.Error), rpcwire.ErrOverloaded) {
		t.Fatalf("envelope %+v does not decode to ErrOverloaded", envelope.Error)
	}

	// The probe bypasses the limiter.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz under load: %d", rec.Code)
	}

	// Freeing a slot readmits traffic.
	<-h.inflight
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/videos", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("after freeing a slot: %d", rec.Code)
	}
}

// TestPanicRecovery: a panicking handler becomes a logged 500 envelope,
// not a dead daemon.
func TestPanicRecovery(t *testing.T) {
	sm, err := tasm.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	h := New(sm, Config{})
	h.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	var envelope struct {
		Error rpcwire.ErrorBody `json:"error"`
	}
	if err := json.NewDecoder(rec.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != "internal" {
		t.Fatalf("code %q", envelope.Error.Code)
	}
}
