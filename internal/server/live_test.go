package server_test

// Live ingest through the full HTTP stack: append and subscribe over
// both wire framings, backpressure as typed, retryable 429s, and the
// retention surface.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/rpcwire"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/server"
)

// liveScene generates the synthetic camera feed the live tests append.
func liveScene(t *testing.T, frames int) *scene.Video {
	t.Helper()
	v, err := scene.Generate(scene.Spec{
		Name: "cam", W: 128, H: 64, FPS: 10, DurationSec: (frames + 9) / 10,
		Classes: []scene.ClassMix{{Class: scene.Car, Count: 1, SizeFrac: 0.25}},
		Seed:    29,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Spec.NumFrames() < frames {
		t.Fatalf("feed has %d frames, need %d", v.Spec.NumFrames(), frames)
	}
	return v
}

// TestLiveAppendSubscribeBothFramings drives the whole live path over
// the wire twice — once per framing. Appends alternate between the
// binary TASMFRM2 body and the JSON fallback; a subscriber tails on
// each framing concurrently; after the seal both must have delivered
// every frame exactly once, byte-identical to an in-process re-scan.
func TestLiveAppendSubscribeBothFramings(t *testing.T) {
	h := newHarness(t, server.Config{})
	bc := binaryClient(t, h)
	const total = 40
	v := liveScene(t, total)
	ctx := context.Background()

	if err := h.c.CreateLiveContext(ctx, "cam", 128, 64, 10, nil); err != nil {
		t.Fatal(err)
	}

	type run struct {
		indices []int
		pixels  map[int][]byte
		err     error
	}
	tail := func(c *client.Client, out chan<- run) {
		r := run{pixels: map[int][]byte{}}
		cur, err := c.Subscribe(ctx, "cam", 0)
		if err != nil {
			r.err = err
			out <- r
			return
		}
		defer cur.Close()
		for cur.Next() {
			res := cur.Result()
			r.indices = append(r.indices, res.Index)
			r.pixels[res.Index] = append(append(append([]byte(nil), res.Pixels.Y...), res.Pixels.Cb...), res.Pixels.Cr...)
		}
		r.err = cur.Err()
		out <- r
	}
	jsonC := make(chan run, 1)
	binC := make(chan run, 1)
	go tail(h.c, jsonC)
	go tail(bc, binC)

	// Appends alternate framings; both commit through the same queue.
	gop := 5
	for from := 0; from < total; from += gop {
		c := bc
		if (from/gop)%2 == 1 {
			c = h.c
		}
		st, err := c.AppendContext(ctx, "cam", v.Frames(from, min(from+gop, total)))
		if err != nil {
			t.Fatalf("append [%d,%d): %v", from, from+gop, err)
		}
		if st.FrameCount != min(from+gop, total) {
			t.Fatalf("append head %d after [%d,%d)", st.FrameCount, from, from+gop)
		}
	}
	if err := h.c.SealContext(ctx, "cam"); err != nil {
		t.Fatal(err)
	}

	runs := map[string]run{}
	for name, ch := range map[string]chan run{"ndjson": jsonC, "binary": binC} {
		select {
		case runs[name] = <-ch:
		case <-time.After(30 * time.Second):
			t.Fatalf("%s tail did not terminate after seal", name)
		}
	}
	ref, _, err := h.sm.DecodeFrames("cam", 0, total)
	if err != nil {
		t.Fatal(err)
	}
	for name, r := range runs {
		if r.err != nil {
			t.Fatalf("%s tail: %v", name, r.err)
		}
		if len(r.indices) != total {
			t.Fatalf("%s tail delivered %d frames, want %d", name, len(r.indices), total)
		}
		for i, idx := range r.indices {
			if idx != i {
				t.Fatalf("%s tail: delivery %d has index %d (not exactly-once)", name, i, idx)
			}
			want := append(append(append([]byte(nil), ref[i].Y...), ref[i].Cb...), ref[i].Cr...)
			if !bytes.Equal(r.pixels[i], want) {
				t.Fatalf("%s tail: frame %d not byte-identical to in-process re-scan", name, i)
			}
		}
	}
}

// TestAppendBackpressureTypedAnd429 fills the per-video commit queue
// and verifies the overload surface end to end: the client sees a
// typed, retryable tasm.ErrIngestBackpressure; the raw HTTP response
// is a 429 with a Retry-After; and the queued (not rejected) append
// still commits.
func TestAppendBackpressureTypedAnd429(t *testing.T) {
	h := newHarness(t, server.Config{}, tasm.WithAppendQueueDepth(1))
	bc := binaryClient(t, h)
	const total = 100
	v := liveScene(t, total)
	ctx := context.Background()

	if err := h.c.CreateLiveContext(ctx, "cam", 128, 64, 10, nil); err != nil {
		t.Fatal(err)
	}

	// A very large append occupies the video's drain goroutine for its
	// whole batch; with depth 1 exactly one more call may queue behind
	// it. The batch cycles the feed — content is irrelevant here, only
	// how long its encode keeps the queue busy.
	var big []*tasm.Frame
	for len(big) < 990 {
		big = append(big, v.Frames(0, total-10)...)
	}
	big = big[:990]
	var wg sync.WaitGroup
	bigErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := bc.AppendContext(ctx, "cam", big)
		bigErr <- err
	}()
	// Wait until the big batch is mid-commit, then put one append in the
	// queue slot behind it.
	deadline := time.Now().Add(10 * time.Second)
	for {
		meta, err := h.sm.Meta("cam")
		if err != nil {
			t.Fatal(err)
		}
		if meta.FrameCount >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("large append never started committing")
		}
		time.Sleep(time.Millisecond)
	}
	queuedErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := h.c.AppendContext(ctx, "cam", v.Frames(total-10, total-5))
		queuedErr <- err
	}()
	time.Sleep(20 * time.Millisecond)

	// Queue full: the next append must bounce with the typed sentinel,
	// and the client must classify it as retryable.
	_, err := bc.AppendContext(ctx, "cam", v.Frames(total-5, total))
	if !errors.Is(err, tasm.ErrIngestBackpressure) {
		t.Fatalf("append on full queue = %v, want ErrIngestBackpressure", err)
	}
	if !client.Retryable(err) {
		t.Fatalf("backpressure not classified retryable: %v", err)
	}

	// The same overload on the raw wire: 429 plus a Retry-After hint.
	body, err := json.Marshal(rpcwire.AppendRequest{
		Video:  "cam",
		Frames: []rpcwire.Frame{rpcwire.FromFrame(v.Frames(total-5, total)[0])},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.ts.URL+"/v1/append", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("raw append on full queue = HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 carries no Retry-After header")
	}
	var we struct {
		Error rpcwire.ErrorBody `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&we); err != nil || we.Error.Code != "ingest_backpressure" {
		t.Errorf("429 body code = %q, %v; want ingest_backpressure", we.Error.Code, err)
	}

	// The in-flight and queued appends both land; only the bounced call
	// did no work.
	if err := <-bigErr; err != nil {
		t.Fatalf("large append: %v", err)
	}
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued append: %v", err)
	}
	wg.Wait()
	meta, err := h.sm.Meta("cam")
	if err != nil {
		t.Fatal(err)
	}
	if want := len(big) + 5; meta.FrameCount != want {
		t.Fatalf("append head %d, want %d (in-flight %d + queued 5)", meta.FrameCount, want, len(big))
	}
}

// TestRetentionOverWire installs a policy remotely and verifies the
// trim report and the late subscriber's clamp through the client.
func TestRetentionOverWire(t *testing.T) {
	h := newHarness(t, server.Config{})
	const total = 40
	v := liveScene(t, total)
	ctx := context.Background()

	if err := h.c.CreateLiveContext(ctx, "cam", 128, 64, 10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.AppendContext(ctx, "cam", v.Frames(0, total)); err != nil {
		t.Fatal(err)
	}
	// GOP 5, head 40: keep the trailing 15 frames — SOTs ending at or
	// before 25 expire, so the floor lands on frame 25.
	rep, err := h.c.SetRetentionContext(ctx, "cam", &tasm.RetentionPolicy{MaxAgeFrames: 15})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TrimmedTo != 25 || len(rep.Removed) != 5 {
		t.Fatalf("trim report = %+v, want floor 25 and 5 SOTs removed", rep)
	}
	if err := h.c.SealContext(ctx, "cam"); err != nil {
		t.Fatal(err)
	}

	cur, err := h.c.Subscribe(ctx, "cam", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	first, n := -1, 0
	for cur.Next() {
		if first < 0 {
			first = cur.Result().Index
		}
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if first != 25 || n != total-25 {
		t.Fatalf("late tail from 0: first %d, %d frames; want clamp to 25, %d frames", first, n, total-25)
	}

	// Appending after the seal is the typed conflict.
	if _, err := h.c.AppendContext(ctx, "cam", v.Frames(0, 5)); !errors.Is(err, tasm.ErrVideoSealed) {
		t.Fatalf("append after seal = %v, want ErrVideoSealed", err)
	}
}
