package server

// Observability: the metrics registry behind /metrics, the request
// trace ring behind /v1/trace/{id}, structured JSON access and
// slow-query logs. The serving counters that predate the registry
// (tasm_requests_total & co.) keep their exact names and label shapes —
// dashboards and the CI greps depend on them — they just render through
// the registry now, which refuses any series without a HELP line.

import (
	"fmt"
	"net/http"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/rpcwire"
)

// metrics is every registered series the handler stack updates.
type metrics struct {
	reg      *obs.Registry
	requests *obs.CounterVec   // {tenant}
	rejected *obs.CounterVec   // {tenant}
	bytes    *obs.CounterVec   // {tenant}
	panics   *obs.CounterVec   // unlabeled
	slow     *obs.CounterVec   // {endpoint}
	reqWall  *obs.HistogramVec // {endpoint, tenant} seconds
	reqTTFR  *obs.HistogramVec // {endpoint, tenant} seconds
	respSize *obs.HistogramVec // {endpoint, tenant} bytes
}

func newMetrics(sm *tasm.StorageManager) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:      reg,
		requests: reg.NewCounterVec("tasm_requests_total", `Responses sent, by tenant ("-" is unauthenticated).`, "tenant"),
		rejected: reg.NewCounterVec("tasm_requests_rejected_total", "503 overloaded rejections, by tenant.", "tenant"),
		bytes:    reg.NewCounterVec("tasm_response_bytes_total", "Response body bytes written, by tenant.", "tenant"),
		panics:   reg.NewCounterVec("tasm_request_panics_total", "Handler panics recovered into 500 responses."),
		slow:     reg.NewCounterVec("tasm_slow_queries_total", "Requests at or above -slow-query-threshold, by endpoint.", "endpoint"),
		reqWall: reg.NewHistogramVec("tasm_request_seconds",
			"Request wall time from arrival to last byte, by endpoint and tenant.",
			obs.DefaultLatencyBuckets, "endpoint", "tenant"),
		reqTTFR: reg.NewHistogramVec("tasm_request_ttfr_seconds",
			"Time to first response byte (streaming endpoints: first result), by endpoint and tenant.",
			obs.DefaultLatencyBuckets, "endpoint", "tenant"),
		respSize: reg.NewHistogramVec("tasm_response_size_bytes",
			"Response body size, by endpoint and tenant.",
			obs.DefaultSizeBuckets, "endpoint", "tenant"),
	}

	// Store and autotile series are owned by their subsystems and read
	// at scrape time.
	b01 := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	reg.NewCounterFunc("tasm_store_corrupt_tiles_total",
		"Tile reads that failed integrity verification since open.",
		func() float64 { return float64(sm.StoreMetrics().CorruptTiles) })
	reg.NewCounterFunc("tasm_store_recovery_sweeps_total",
		"Crash-recovery sweeps run when opening the store.",
		func() float64 { return float64(sm.StoreMetrics().RecoverySweeps) })
	reg.NewGaugeFunc("tasm_autotile_enabled",
		"Whether the background adaptive-tiling subsystem is enabled.",
		func() float64 { return b01(sm.AutotileStatus().Enabled) })
	reg.NewGaugeFunc("tasm_autotile_paused",
		"Whether background re-tiling is currently paused.",
		func() float64 { return b01(sm.AutotileStatus().Paused) })
	reg.NewCounterFunc("tasm_autotile_actions_total",
		"Background re-tile actions applied since open.",
		func() float64 { return float64(sm.AutotileStatus().ActionsApplied) })
	reg.NewCounterFunc("tasm_autotile_actions_failed_total",
		"Background re-tile actions that failed since open.",
		func() float64 { return float64(sm.AutotileStatus().ActionsFailed) })
	reg.NewCounterFunc("tasm_autotile_bytes_total",
		"Bytes written by background re-tiles since open.",
		func() float64 { return float64(sm.AutotileStatus().BytesSpent) })
	reg.NewCounterFunc("tasm_autotile_queries_observed_total",
		"Queries observed by the adaptive-tiling subsystem since open.",
		func() float64 { return float64(sm.AutotileStatus().QueriesObserved) })
	reg.NewGaugeFunc("tasm_autotile_regret",
		"Accumulated re-tiling pressure in model seconds (paper section 4.4 delta).",
		func() float64 { return sm.AutotileStatus().Regret })
	return m
}

// handleTrace serves one finished request's span timeline from the
// ring. A miss is trace_not_found/404: the ring holds only the most
// recent requests, and in-flight requests are inserted at completion.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.traces.Get(id)
	if !ok {
		writeError(w, fmt.Errorf("%w: id %q is not among the most recent finished requests", rpcwire.ErrTraceNotFound, id))
		return
	}
	writeJSON(w, rec)
}
