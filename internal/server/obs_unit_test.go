package server

// White-box audits of the error-path counters. The panic-recovery and
// limiter-rejection branches are exactly the paths a healthy load run
// never exercises, so their counters are asserted directly against the
// middleware's internals — and against the rendered /metrics text,
// because a counter that increments but does not render (or renders
// without its HELP line) is invisible to the dashboards these exist for.

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/tasm-repro/tasm"
)

func scrapeMetrics(t *testing.T, h *Server) string {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: status %d", rec.Code)
	}
	return rec.Body.String()
}

// TestPanicCounterIncrements: every recovered panic lands in
// tasm_request_panics_total, and the series renders with its HELP line.
func TestPanicCounterIncrements(t *testing.T) {
	sm, err := tasm.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	h := New(sm, Config{})
	h.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })

	for i := 0; i < 3; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/boom", nil))
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("panic %d: status %d, want 500", i, rec.Code)
		}
	}
	if got := h.metrics.panics.With().Value(); got != 3 {
		t.Fatalf("panics counter = %d, want 3", got)
	}
	body := scrapeMetrics(t, h)
	if !strings.Contains(body, "tasm_request_panics_total 3") {
		t.Fatalf("/metrics missing tasm_request_panics_total 3:\n%s", body)
	}
	if !strings.Contains(body, "# HELP tasm_request_panics_total ") {
		t.Fatal("/metrics missing HELP for tasm_request_panics_total")
	}
	// The panicking request still flowed through the wall histogram
	// under the synthetic-or-matched endpoint label.
	if !strings.Contains(body, `tasm_request_seconds_count{endpoint="GET /v1/boom",tenant="-"} 3`) {
		t.Fatalf("/metrics missing wall histogram for the panicked endpoint:\n%s", body)
	}
}

// TestRejectedCounterIncrements: a limiter 503 lands in
// tasm_requests_rejected_total (and still counts as a request), under
// the synthetic "unmatched" endpoint since it never reached the mux.
func TestRejectedCounterIncrements(t *testing.T) {
	sm, err := tasm.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Close()
	h := New(sm, Config{MaxInflight: 2})
	h.inflight <- struct{}{}
	h.inflight <- struct{}{}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/videos", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", rec.Code)
	}
	if got := h.metrics.rejected.With("-").Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
	if got := h.metrics.requests.With("-").Value(); got != 1 {
		t.Fatalf("requests counter = %d, want 1 (rejections are still responses)", got)
	}

	// Free a slot so the scrape itself is admitted.
	<-h.inflight
	body := scrapeMetrics(t, h)
	if !strings.Contains(body, `tasm_requests_rejected_total{tenant="-"} 1`) {
		t.Fatalf("/metrics missing rejected counter:\n%s", body)
	}
	if !strings.Contains(body, `tasm_request_seconds_count{endpoint="unmatched",tenant="-"} 1`) {
		t.Fatalf("/metrics missing unmatched-endpoint histogram for the rejection:\n%s", body)
	}
}
