package server_test

// Durability-facing serving tests: the Prometheus metrics endpoint, live
// token-table reload (SIGHUP's mechanism) leaving in-flight streams
// untouched, and the corruption contract across the wire — a flipped
// bit on the server's disk must classify as tasm.ErrTileCorrupt through
// the HTTP client, and /v1/repairstore must quarantine it.

import (
	"bufio"
	"context"
	"errors"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/server"
)

// metricValue fetches /metrics and returns the value of the first
// series line whose name (with any label set) matches prefix.
func metricValue(t *testing.T, url, token, prefix string) (int64, bool) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, prefix) {
			continue
		}
		_, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		return n, true
	}
	return 0, false
}

// TestMetricsEndpoint: the text exposition carries per-tenant serving
// counters and the store's durability counters, and the endpoint sits
// behind auth like everything but the health probe.
func TestMetricsEndpoint(t *testing.T) {
	h := newHarness(t, server.Config{})
	if _, err := h.c.Videos(); err != nil {
		t.Fatal(err)
	}
	if n, ok := metricValue(t, h.ts.URL, "", `tasm_requests_total{tenant="-"}`); !ok || n < 1 {
		t.Fatalf("tasm_requests_total for the anonymous tenant = %d, %v", n, ok)
	}
	// The store opened cleanly exactly once, verified nothing corrupt.
	if n, ok := metricValue(t, h.ts.URL, "", "tasm_store_recovery_sweeps_total"); !ok || n != 1 {
		t.Fatalf("tasm_store_recovery_sweeps_total = %d, %v, want 1", n, ok)
	}
	if n, ok := metricValue(t, h.ts.URL, "", "tasm_store_corrupt_tiles_total"); !ok || n != 0 {
		t.Fatalf("tasm_store_corrupt_tiles_total = %d, %v, want 0", n, ok)
	}

	// Token-protected daemon: /metrics is operator data, not public.
	h2 := newHarness(t, server.Config{Tenants: map[string]string{"sek": "ops"}})
	resp, err := http.Get(h2.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated /metrics: status %d, want 401", resp.StatusCode)
	}
	// Counters record when a request finishes, so give ops a completed
	// request before scraping (the scrape itself is still in flight).
	opsClient, err := client.Dial(h2.ts.URL, client.WithToken("sek"))
	if err != nil {
		t.Fatal(err)
	}
	defer opsClient.Close()
	if _, err := opsClient.Videos(); err != nil {
		t.Fatal(err)
	}
	if n, ok := metricValue(t, h2.ts.URL, "sek", `tasm_requests_total{tenant="ops"}`); !ok || n < 1 {
		t.Fatalf("authed tasm_requests_total{ops} = %d, %v", n, ok)
	}
}

// TestTokenReloadKeepsInflightStreams is the SIGHUP contract: swapping
// the tenant table revokes old tokens for NEW requests immediately, but
// a stream already in flight — authenticated against the old table —
// drains to completion untouched.
func TestTokenReloadKeepsInflightStreams(t *testing.T) {
	h := newHarness(t, server.Config{Tenants: map[string]string{"tok-old": "alpha"}})
	ref, _, err := h.sm.ScanSQL(trafficSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 {
		t.Fatal("reference scan returned nothing")
	}

	old, err := client.Dial(h.ts.URL, client.WithToken("tok-old"))
	if err != nil {
		t.Fatal(err)
	}
	defer old.Close()
	cur, err := old.ScanSQLCursor(context.Background(), trafficSQL)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// The stream is live: pull one result, then rotate the tokens.
	if !cur.Next() {
		t.Fatalf("no first result: %v", cur.Err())
	}
	got := 1

	h.srv.SetTenants(map[string]string{"tok-new": "alpha"})

	// New request with the revoked token is refused...
	if _, err := old.Videos(); !errors.Is(err, client.ErrUnauthorized) {
		t.Fatalf("revoked token accepted for a new request: %v", err)
	}
	// ...the rotated token works...
	fresh, err := client.Dial(h.ts.URL, client.WithToken("tok-new"))
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.Videos(); err != nil {
		t.Fatalf("rotated token refused: %v", err)
	}
	// ...and the in-flight stream still drains completely.
	for cur.Next() {
		got++
	}
	if err := cur.Err(); err != nil {
		t.Fatalf("in-flight stream broken by token reload: %v", err)
	}
	if got != len(ref) {
		t.Fatalf("stream yielded %d regions across the reload, want %d", got, len(ref))
	}
}

// TestCorruptTileOverHTTP: a bit flipped in a stored tile file on the
// server classifies as tasm.ErrTileCorrupt through the remote client
// (errors.Is across the wire), shows up in the corruption counter, and
// /v1/repairstore quarantines the damaged version.
func TestCorruptTileOverHTTP(t *testing.T) {
	h := newHarness(t, server.Config{})
	tiles, err := filepath.Glob(filepath.Join(h.dir, "tiles", "traffic", "frames_*", "*.tsv"))
	if err != nil || len(tiles) == 0 {
		t.Fatalf("no tile files found: %v", err)
	}
	for _, p := range tiles {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0x40
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	_, _, err = h.c.ScanSQLContext(context.Background(), trafficSQL)
	if !errors.Is(err, tasm.ErrTileCorrupt) {
		t.Fatalf("remote scan over corrupt tiles: %v (want tasm.ErrTileCorrupt)", err)
	}
	if n, ok := metricValue(t, h.ts.URL, "", "tasm_store_corrupt_tiles_total"); !ok || n == 0 {
		t.Fatalf("tasm_store_corrupt_tiles_total = %d, %v, want > 0", n, ok)
	}

	rep, err := h.c.RepairStore()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) == 0 || len(rep.Videos) != 1 || rep.Videos[0] != "traffic" {
		t.Fatalf("repair report %+v: want quarantines for traffic", rep)
	}
	// Every version was corrupt, so there was nothing to fall back to:
	// the loss stays visible through fsck instead of being erased.
	if len(rep.Reverted) != 0 {
		t.Fatalf("reverted %v with no intact fallback", rep.Reverted)
	}
	fr, err := h.c.FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if fr.OK() {
		t.Fatal("fsck clean while the manifest references quarantined versions")
	}
}
