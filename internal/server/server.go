// Package server is tasmd's HTTP front end: an http.Handler exposing a
// *tasm.StorageManager over the versioned JSON wire format in
// internal/rpcwire.
//
// Unary operations (ingest, retile, delete, gc, fsck, catalog reads,
// metadata writes) are plain request/response JSON. The read paths that
// stream in-process — Scan, ScanSQL, DecodeFrames — stream over the
// network too: the handler drains a tasm cursor directly into the
// chunked response as NDJSON, flushing per result line, so a remote
// consumer's time-to-first-byte inherits the cursor pipeline's
// time-to-first-result instead of waiting for full materialization.
//
// Request contexts do real work here. Every handler derives its
// operation context from the request context, so a client disconnect
// cancels the cursor — which stops in-flight decodes and releases every
// read lease before teardown completes (the PR-3 guarantee). The
// Tasm-Deadline-Ms header bounds the whole operation server-side with a
// context deadline, mapped back to the client as deadline_exceeded/504.
//
// The handler stack adds, outermost first: panic recovery (a handler
// bug becomes a logged 500, not a dead daemon), a concurrent-request
// limiter (excess load is rejected early with overloaded/503 rather
// than queued into memory), and per-request access logs.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/internal/core"
	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/rpcwire"
	"github.com/tasm-repro/tasm/internal/shard"
)

// Config tunes the handler stack.
type Config struct {
	// Logger receives diagnostics — recovered panics and handler
	// errors; nil discards. Keep this on even when access logs are off:
	// it speaks exactly when something is wrong.
	Logger *log.Logger
	// AccessLogger receives the per-request access lines; nil falls
	// back to Logger (set it to a discarding logger to silence access
	// logs without losing diagnostics).
	AccessLogger *log.Logger
	// MaxInflight bounds concurrently served requests (excluding
	// /v1/healthz); requests beyond it get 503 overloaded with a
	// Retry-After header. <= 0 means DefaultMaxInflight.
	MaxInflight int
	// MaxBodyBytes bounds a request body (ingest bodies carry raw
	// frames). <= 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
	// Tenants maps bearer tokens to tenant ids (see ParseTokenFile).
	// Empty leaves the daemon open: no Authorization required, all
	// traffic shares the global limit. Non-empty, every request except
	// /v1/healthz must carry a listed token or is refused with 401
	// unauthorized. The table can be swapped at runtime with
	// Server.SetTenants (tasmd does so on SIGHUP).
	Tenants map[string]string
	// TenantMaxInflight bounds concurrently served requests per tenant
	// when Tenants is set, so one tenant's burst degrades into that
	// tenant's 503s instead of starving the rest. <= 0 means a quarter
	// of the resolved global MaxInflight (at least 1); it is
	// additionally capped by MaxInflight.
	TenantMaxInflight int
	// SlowQueryThreshold: a finished request whose wall time reaches it
	// is also written to Logger as a level=slow_query JSON line and
	// counted in tasm_slow_queries_total. 0 disables the slow-query log.
	SlowQueryThreshold time.Duration
	// TraceCapacity bounds the /v1/trace/{id} ring (finished requests
	// retained for lookup). <= 0 means obs.DefaultTraceCapacity.
	TraceCapacity int
}

// DefaultMaxInflight is the concurrent-request bound when Config leaves
// it zero: enough for every decode worker to stay busy behind a handful
// of streaming consumers, small enough that overload degrades into fast
// 503s instead of memory growth.
const DefaultMaxInflight = 64

// DefaultMaxBodyBytes bounds request bodies (1 GiB: a few minutes of
// raw 4:2:0 frames, the largest legitimate ingest this toy codec
// should see in one call).
const DefaultMaxBodyBytes = 1 << 30

// A tenant table configured without an explicit per-tenant quota
// defaults to a quarter of the (resolved) global bound, so a single
// tenant cannot monopolize the daemon even before the operator tunes
// anything.

// New returns the tasmd server for sm; *Server is the http.Handler to
// mount, and its methods (SetTenants) are the daemon's runtime controls.
func New(sm *tasm.StorageManager, cfg Config) *Server {
	if cfg.Logger == nil {
		cfg.Logger = log.New(io.Discard, "", 0)
	}
	if cfg.AccessLogger == nil {
		cfg.AccessLogger = cfg.Logger
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.TenantMaxInflight <= 0 {
		cfg.TenantMaxInflight = max(1, cfg.MaxInflight/4)
	}
	if cfg.TenantMaxInflight > cfg.MaxInflight {
		cfg.TenantMaxInflight = cfg.MaxInflight
	}
	s := &Server{
		sm:             sm,
		cfg:            cfg,
		inflight:       make(chan struct{}, cfg.MaxInflight),
		tenantInflight: make(map[string]chan struct{}),
		metrics:        newMetrics(sm),
		traces:         obs.NewTraceStore(cfg.TraceCapacity),
	}
	s.SetTenants(cfg.Tenants)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/videos", s.handleVideos)
	mux.HandleFunc("GET /v1/videos/{video}", s.handleVideoInfo)
	mux.HandleFunc("DELETE /v1/videos/{video}", s.handleDeleteVideo)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/live", s.handleCreateLive)
	mux.HandleFunc("POST /v1/append", s.handleAppend)
	mux.HandleFunc("GET /v1/subscribe", s.handleSubscribe)
	mux.HandleFunc("POST /v1/seal", s.handleSeal)
	mux.HandleFunc("POST /v1/retention", s.handleRetention)
	mux.HandleFunc("POST /v1/metadata", s.handleMetadata)
	mux.HandleFunc("POST /v1/markdetected", s.handleMarkDetected)
	mux.HandleFunc("GET /v1/detections", s.handleDetections)
	mux.HandleFunc("POST /v1/scan", s.handleScan)
	mux.HandleFunc("POST /v1/decodeframes", s.handleDecodeFrames)
	mux.HandleFunc("POST /v1/retile", s.handleRetile)
	mux.HandleFunc("POST /v1/designlayout", s.handleDesignLayout)
	mux.HandleFunc("POST /v1/gc", s.handleGC)
	mux.HandleFunc("POST /v1/fsck", s.handleFsck)
	mux.HandleFunc("POST /v1/repair", s.handleRepair)
	mux.HandleFunc("POST /v1/repairstore", s.handleRepairStore)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /v1/autotile/status", s.handleAutotileStatus)
	mux.HandleFunc("POST /v1/autotile/pause", s.handleAutotilePause)
	mux.HandleFunc("POST /v1/autotile/resume", s.handleAutotileResume)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
	return s
}

// Server is the tasmd handler plus its runtime controls.
type Server struct {
	sm       *tasm.StorageManager
	cfg      Config
	mux      *http.ServeMux
	inflight chan struct{}

	// tenants is the live token→tenant table, swapped atomically by
	// SetTenants; requests load it once at authentication, so a reload
	// never tears a request's view of the table.
	tenants atomic.Pointer[map[string]string]

	// tenantMu guards the lazily created per-tenant quota channels.
	// Quota channels persist across SetTenants reloads: an in-flight
	// request's release closure must return its slot to the same
	// channel it took it from.
	tenantMu       sync.Mutex
	tenantInflight map[string]chan struct{}

	// metrics is the /metrics registry; traces the /v1/trace/{id} ring.
	metrics *metrics
	traces  *obs.TraceStore
}

// SetTenants atomically replaces the token→tenant table (nil or empty
// opens the daemon). In-flight requests are untouched: they
// authenticated against the table current at their arrival and keep
// their admission slots, so rotating tokens never drops a live stream.
func (s *Server) SetTenants(tenants map[string]string) {
	s.tenants.Store(&tenants)
}

// ServeHTTP is the middleware stack: recover → trace → authenticate →
// limit (global, then tenant quota) → log/observe → route.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	lw := &logWriter{ResponseWriter: w}
	start := time.Now()
	tenant := "-"

	// Adopt the caller's trace id (the client mints one per operation;
	// the router forwards its inbound id) or mint one here so every
	// request is traceable. The id is echoed on the response before any
	// handler runs, and the trace itself travels the request context
	// down into the cursor pipeline.
	tid := r.Header.Get(obs.TraceHeader)
	if !obs.ValidTraceID(tid) {
		tid = obs.NewTraceID()
	}
	tr := obs.NewTrace(tid)
	tr.Annotate("method", r.Method)
	tr.Annotate("path", r.URL.Path)
	lw.Header().Set(obs.TraceHeader, tid)
	r = r.WithContext(obs.WithTrace(r.Context(), tr))

	defer func() {
		if p := recover(); p != nil {
			s.metrics.panics.With().Inc()
			s.cfg.Logger.Printf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
			if !lw.wrote {
				writeError(lw, fmt.Errorf("internal panic: %v", p))
			}
		}
		// r.Pattern is filled in by the mux; requests that never
		// reached it (auth/limiter rejections) or matched nothing
		// group under synthetic endpoint labels so the histograms
		// stay low-cardinality.
		endpoint := r.Pattern
		if endpoint == "" {
			endpoint = "unmatched"
		}
		dur := time.Since(start)
		status := lw.status()
		m := s.metrics
		m.requests.With(tenant).Inc()
		m.bytes.With(tenant).Add(lw.bytes)
		rejected := m.rejected.With(tenant) // touch so the series renders alongside requests_total
		if status == http.StatusServiceUnavailable {
			rejected.Inc()
		}
		m.reqWall.With(endpoint, tenant).Observe(dur.Seconds())
		var ttfr time.Duration
		if !lw.firstWrite.IsZero() {
			ttfr = lw.firstWrite.Sub(start)
			m.reqTTFR.With(endpoint, tenant).Observe(ttfr.Seconds())
		}
		m.respSize.With(endpoint, tenant).Observe(float64(lw.bytes))

		tr.Annotate("tenant", tenant)
		tr.Annotate("endpoint", endpoint)
		tr.Annotate("status", strconv.Itoa(status))
		s.traces.Put(tr.Snapshot())

		rec := obs.AccessRecord{
			Level:    "access",
			TraceID:  tid,
			Method:   r.Method,
			Path:     r.URL.Path,
			Endpoint: endpoint,
			Status:   status,
			Bytes:    lw.bytes,
			DurMS:    obs.Msec(dur),
			TTFRMS:   obs.Msec(ttfr),
			Remote:   r.RemoteAddr,
			Tenant:   tenant,
		}
		s.cfg.AccessLogger.Print(rec.Line())
		if thr := s.cfg.SlowQueryThreshold; thr > 0 && dur >= thr {
			m.slow.With(endpoint).Inc()
			rec.Level = "slow_query"
			rec.ThresholdMS = obs.Msec(thr)
			s.cfg.Logger.Print(rec.Line())
		}
	}()

	// Health checks bypass auth and the limiter: an overloaded or
	// locked-down daemon is still alive, and the probe must say so.
	if r.URL.Path == "/v1/healthz" {
		s.mux.ServeHTTP(lw, r)
		return
	}
	endAuth := tr.StartSpan("auth")
	tn, err := s.authenticate(r)
	endAuth()
	if err != nil {
		writeError(lw, err)
		return
	}
	if tn != "" {
		tenant = tn
	}
	endAdmit := tr.StartSpan("admit")
	release, err := s.admit(tn)
	endAdmit()
	if err != nil {
		// The limiter's politeness contract: a 503 carries both the
		// canonical envelope (typed, retryable client-side) and a
		// Retry-After the client's backoff honors.
		lw.Header().Set("Retry-After", "1")
		writeError(lw, err)
		return
	}
	defer release()
	r.Body = http.MaxBytesReader(lw, r.Body, s.cfg.MaxBodyBytes)
	endHandle := tr.StartSpan("handle")
	s.mux.ServeHTTP(lw, r)
	endHandle()
}

// logWriter captures status, byte counts, and the first-body-byte time
// (TTFR: for streaming endpoints the header is committed before the
// first decode, so the first Write is the first result) for the access
// log and histograms, and keeps http.Flusher reachable through the
// wrap (the streaming endpoints depend on per-line flushes).
type logWriter struct {
	http.ResponseWriter
	code       int
	bytes      int64
	wrote      bool
	firstWrite time.Time
}

func (w *logWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote, w.code = true, code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *logWriter) Write(p []byte) (int, error) {
	if !w.wrote {
		w.wrote, w.code = true, http.StatusOK
	}
	if w.firstWrite.IsZero() {
		w.firstWrite = time.Now()
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *logWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *logWriter) status() int {
	if !w.wrote {
		return http.StatusOK
	}
	return w.code
}

// The request-context parsing, error/JSON writers, and stream framing
// live in rpcwire (serve.go), shared with tasm-router so both daemons
// present the identical HTTP surface; these aliases keep the handler
// bodies terse.

func requestContext(r *http.Request) (context.Context, context.CancelFunc, error) {
	return rpcwire.RequestContext(r)
}

func unaryBoundary(w http.ResponseWriter, r *http.Request) bool { return rpcwire.UnaryBoundary(w, r) }

func readJSON(r *http.Request, v any) error { return rpcwire.ReadJSON(r, v) }

func writeJSON(w http.ResponseWriter, v any) { rpcwire.WriteJSON(w, v) }

func writeError(w http.ResponseWriter, err error) { rpcwire.WriteError(w, err) }

// ---- unary handlers ----

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, struct {
		OK bool `json:"ok"`
	}{true})
}

func (s *Server) handleVideos(w http.ResponseWriter, r *http.Request) {
	videos, err := s.sm.Videos()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rpcwire.VideosResponse{Videos: videos})
}

func (s *Server) handleVideoInfo(w http.ResponseWriter, r *http.Request) {
	if !unaryBoundary(w, r) {
		return
	}
	video := r.PathValue("video")
	meta, err := s.sm.Meta(video)
	if err != nil {
		writeError(w, err)
		return
	}
	bytes, err := s.sm.VideoBytes(video)
	if err != nil {
		writeError(w, err)
		return
	}
	labels, err := s.sm.Labels(video)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rpcwire.VideoInfo{Meta: meta, Bytes: bytes, Labels: labels})
}

func (s *Server) handleDeleteVideo(w http.ResponseWriter, r *http.Request) {
	if !unaryBoundary(w, r) {
		return
	}
	if err := s.sm.DeleteVideo(r.PathValue("video")); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.IngestRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	frames := make([]*tasm.Frame, len(req.Frames))
	for i, wf := range req.Frames {
		if frames[i], err = wf.ToFrame(); err != nil {
			writeError(w, fmt.Errorf("frame %d: %w", i, err))
			return
		}
	}
	var st tasm.IngestStats
	if len(req.Layouts) > 0 {
		layouts := make([]tasm.Layout, len(req.Layouts))
		for i, wl := range req.Layouts {
			layouts[i] = wl.ToLayout()
		}
		st, err = s.sm.IngestTiledContext(ctx, req.Video, frames, req.FPS, layouts)
	} else {
		st, err = s.sm.IngestContext(ctx, req.Video, frames, req.FPS)
	}
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rpcwire.FromIngestStats(st))
}

// ---- live ingest handlers ----

func (s *Server) handleCreateLive(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.CreateLiveRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !unaryBoundary(w, r) {
		return
	}
	if err := s.sm.CreateLiveVideo(req.Video, req.W, req.H, req.FPS, req.Retention.ToRetentionPolicy()); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

// handleAppend appends a batch of frames to a live video. The body is
// either the v2 binary framing (Content-Type application/x-tasm-frames:
// a TASMFRM2 stream of 'F' records, the video named by ?video=) or the
// JSON AppendRequest fallback. A full commit queue answers 429 with
// Retry-After — the client's signal to back off and retry, nothing
// having been written.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	var video string
	var frames []*tasm.Frame
	if strings.HasPrefix(r.Header.Get("Content-Type"), rpcwire.ContentTypeBinary) {
		video = r.URL.Query().Get("video")
		if video == "" {
			writeError(w, fmt.Errorf("%w: binary append needs ?video=", rpcwire.ErrBadRequest))
			return
		}
		fr := rpcwire.NewFrameStreamReader(r.Body)
		for {
			line, rerr := fr.ReadLine()
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				writeError(w, fmt.Errorf("%w: append stream: %v", rpcwire.ErrBadRequest, rerr))
				return
			}
			if line.Frame == nil {
				writeError(w, fmt.Errorf("%w: append stream carries only frame records", rpcwire.ErrBadRequest))
				return
			}
			f, ferr := line.Frame.Pixels.ToFrame()
			if ferr != nil {
				writeError(w, fmt.Errorf("frame %d: %w", len(frames), ferr))
				return
			}
			frames = append(frames, f)
		}
	} else {
		var req rpcwire.AppendRequest
		if err := readJSON(r, &req); err != nil {
			writeError(w, err)
			return
		}
		video = req.Video
		frames = make([]*tasm.Frame, len(req.Frames))
		for i, wf := range req.Frames {
			if frames[i], err = wf.ToFrame(); err != nil {
				writeError(w, fmt.Errorf("frame %d: %w", i, err))
				return
			}
		}
	}
	st, err := s.sm.AppendGOPContext(ctx, video, frames)
	if err != nil {
		if errors.Is(err, tasm.ErrIngestBackpressure) {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, err)
		return
	}
	writeJSON(w, rpcwire.FromAppendStats(st))
}

// handleSubscribe is the live-tail read path: a long-lived stream of
// whole frames, in both framings, that begins at ?from= (the client's
// resume watermark, clamped to the retention horizon), replays every
// already-committed frame past it, then blocks — flushed up to date —
// and emits each newly committed SOT's frames as appends land, woken
// by the commit hub rather than polling. On a sealed video the stream
// drains and ends with the stats trailer; a deleted video ends it with
// the video_deleted error trailer.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	qs := r.URL.Query()
	video := qs.Get("video")
	if video == "" {
		writeError(w, fmt.Errorf("%w: need video", rpcwire.ErrBadRequest))
		return
	}
	from := 0
	if h := qs.Get("from"); h != "" {
		v, err := strconv.Atoi(h)
		if err != nil || v < 0 {
			writeError(w, fmt.Errorf("%w: from=%q", rpcwire.ErrBadRequest, h))
			return
		}
		from = v
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	cur, err := s.sm.Subscribe(ctx, video, from)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cur.Close()
	rpcwire.ServeStream(w, r, cur, func(c *tasm.SubscribeCursor) rpcwire.StreamLine {
		return rpcwire.StreamLine{Frame: ptr(rpcwire.FromFrameResult(c.Result()))}
	})
}

func (s *Server) handleSeal(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.SealRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !unaryBoundary(w, r) {
		return
	}
	if err := s.sm.SealVideo(req.Video); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

func (s *Server) handleRetention(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.RetentionRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !unaryBoundary(w, r) {
		return
	}
	rep, err := s.sm.SetRetention(req.Video, req.Retention.ToRetentionPolicy())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rpcwire.FromTrimReport(rep))
}

func (s *Server) handleMetadata(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.MetadataRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !unaryBoundary(w, r) {
		return
	}
	ds := make([]tasm.Detection, len(req.Detections))
	for i, d := range req.Detections {
		ds[i] = d.ToDetection()
	}
	if err := s.sm.AddDetections(req.Video, ds); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

func (s *Server) handleMarkDetected(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.MarkDetectedRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := s.sm.MarkDetected(req.Video, req.Label, req.From, req.To); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

func (s *Server) handleDetections(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	video, label := q.Get("video"), q.Get("label")
	from, err1 := strconv.Atoi(q.Get("from"))
	to, err2 := strconv.Atoi(q.Get("to"))
	if video == "" || label == "" || err1 != nil || err2 != nil {
		writeError(w, fmt.Errorf("%w: need video, label, from, to", rpcwire.ErrBadRequest))
		return
	}
	ds, err := s.sm.LookupDetections(video, label, from, to)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := rpcwire.DetectionsResponse{Detections: make([]rpcwire.Detection, len(ds))}
	for i, d := range ds {
		resp.Detections[i] = rpcwire.FromDetection(d)
	}
	writeJSON(w, resp)
}

func (s *Server) handleRetile(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.RetileRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	st, err := s.sm.RetileSOTContext(ctx, req.Video, req.SOT, req.Layout.ToLayout())
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rpcwire.FromRetileStats(st))
}

func (s *Server) handleDesignLayout(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.DesignLayoutRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !unaryBoundary(w, r) {
		return
	}
	l, err := s.sm.DesignLayout(req.Video, req.SOT, req.Labels)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rpcwire.DesignLayoutResponse{Layout: rpcwire.FromLayout(l)})
}

func (s *Server) handleGC(w http.ResponseWriter, r *http.Request) {
	if !unaryBoundary(w, r) {
		return
	}
	rep, err := s.sm.GC()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rpcwire.FromGCReport(rep))
}

// handleFsck verifies only; pointer repair is its own endpoint
// (/v1/repair, per video), which keeps the expensive repair loop under
// the client's control — it can stop between videos on cancellation
// and report per-video progress, exactly like local tasmctl.
func (s *Server) handleFsck(w http.ResponseWriter, r *http.Request) {
	if !unaryBoundary(w, r) {
		return
	}
	rep, err := s.sm.FSCK()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rpcwire.FromFsckReport(rep))
}

func (s *Server) handleRepair(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.RepairRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if !unaryBoundary(w, r) {
		return
	}
	if err := s.sm.RepairPointers(req.Video); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

// handleRepairStore quarantines corrupt tile versions and falls back to
// intact earlier ones — the network form of `tasmctl fsck -repair`'s
// storage half. Unlike /v1/repair it is store-wide: the repair pass is
// one critical section, so there is no per-video progress to stream.
func (s *Server) handleRepairStore(w http.ResponseWriter, r *http.Request) {
	if !unaryBoundary(w, r) {
		return
	}
	rep, err := s.sm.RepairStore()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, rpcwire.FromStoreRepairReport(rep))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rpcwire.FromCacheStats(s.sm.CacheStats()))
}

// handleAutotileStatus reports the background re-tiler's snapshot; with
// -autotile off it answers 200 with Enabled false (observability of a
// disabled subsystem is not an error).
func (s *Server) handleAutotileStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, rpcwire.FromAutotileStatus(s.sm.AutotileStatus()))
}

// handleAutotilePause suspends background re-tiling. The body is an
// optional AutotilePauseRequest carrying the operator's reason; on a
// daemon without -autotile the call is autotile_disabled/400.
func (s *Server) handleAutotilePause(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.AutotilePauseRequest
	if r.ContentLength != 0 {
		if err := readJSON(r, &req); err != nil {
			writeError(w, err)
			return
		}
	}
	if !unaryBoundary(w, r) {
		return
	}
	if err := s.sm.AutotilePause(req.Reason); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

// handleAutotileResume lifts a pause (operator- or error-initiated) and
// kicks a decision cycle.
func (s *Server) handleAutotileResume(w http.ResponseWriter, r *http.Request) {
	if !unaryBoundary(w, r) {
		return
	}
	if err := s.sm.AutotileResume(); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

// handleMetrics serves the Prometheus text exposition format. Every
// series lives in the obs.Registry, which enforces at registration that
// a HELP line accompanies it — a series without documentation cannot
// exist. Like every endpoint but the health probe it sits behind auth:
// serving totals per tenant are operator data, not public data.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.metrics.reg.WriteText(w)
}

// ---- streaming handlers ----

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.ScanRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	if (req.SQL == "") == (req.Query == nil) {
		writeError(w, fmt.Errorf("%w: exactly one of sql and query must be set", rpcwire.ErrBadRequest))
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	q := tasm.Query{}
	if req.SQL != "" {
		// Parse here rather than via ScanSQLCursor so that only a
		// genuine parse failure is classified as the client's bad
		// request; constructor errors below (unknown video, invalid
		// range, store I/O) keep their own classification.
		if q, err = tasm.ParseQuery(req.SQL); err != nil {
			writeError(w, fmt.Errorf("%w: %v", rpcwire.ErrBadRequest, err))
			return
		}
	} else {
		q = req.Query.ToQuery()
	}
	// A multi-video query scatters locally: one engine cursor per video,
	// merged into a single frame-ordered stream — the same merge the
	// router runs over remote cursors, so a scan through tasmd and one
	// scattered across shards produce identical bytes.
	if vids := q.VideoList(); len(vids) > 1 {
		srcs := make([]shard.Source[core.RegionResult], 0, len(vids))
		for _, v := range vids {
			sq := q
			sq.Video, sq.Videos = v, nil
			cur, err := s.sm.ScanCursor(ctx, sq)
			if err != nil {
				for _, src := range srcs {
					_ = src.Close()
				}
				writeError(w, err)
				return
			}
			srcs = append(srcs, cur)
		}
		merged := shard.NewRegionMerge(srcs...)
		defer merged.Close()
		rpcwire.ServeStream(w, r, merged, func(m *shard.Merge[core.RegionResult]) rpcwire.StreamLine {
			return rpcwire.StreamLine{Region: ptr(rpcwire.FromRegion(m.Result()))}
		})
		return
	}
	cur, err := s.sm.ScanCursor(ctx, q)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cur.Close()
	rpcwire.ServeStream(w, r, cur, func(c *tasm.Cursor) rpcwire.StreamLine {
		return rpcwire.StreamLine{Region: ptr(rpcwire.FromRegion(c.Result()))}
	})
}

func (s *Server) handleDecodeFrames(w http.ResponseWriter, r *http.Request) {
	var req rpcwire.DecodeFramesRequest
	if err := readJSON(r, &req); err != nil {
		writeError(w, err)
		return
	}
	ctx, cancel, err := requestContext(r)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	cur, err := s.sm.DecodeFramesCursor(ctx, req.Video, req.From, req.To)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cur.Close()
	rpcwire.ServeStream(w, r, cur, func(c *tasm.FrameCursor) rpcwire.StreamLine {
		return rpcwire.StreamLine{Frame: ptr(rpcwire.FromFrameResult(c.Result()))}
	})
}

func ptr[T any](v T) *T { return &v }
