package server_test

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/rpcwire"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/server"
)

// harness is one served store: the in-process manager (for state
// assertions), the HTTP server, and a connected client.
type harness struct {
	sm  *tasm.StorageManager
	srv *server.Server
	ts  *httptest.Server
	c   *client.Client
	dir string
}

// newHarness serves a fresh store holding one indexed 8-SOT video
// ("traffic", cars + people, 40 frames of 192x96), the shape every
// streaming test wants: enough SOTs that a scan is genuinely in flight
// when the client walks away.
func newHarness(t *testing.T, cfg server.Config, opts ...tasm.Option) *harness {
	t.Helper()
	opts = append([]tasm.Option{tasm.WithGOPLength(5), tasm.WithMinTileSize(32, 32)}, opts...)
	dir := t.TempDir()
	sm, err := tasm.Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sm.Close() })
	v, err := scene.Generate(scene.Spec{
		Name: "traffic", W: 192, H: 96, FPS: 10, DurationSec: 4,
		Classes: []scene.ClassMix{
			{Class: scene.Car, Count: 2, SizeFrac: 0.18},
			{Class: scene.Person, Count: 1, SizeFrac: 0.2},
		},
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	n := v.Spec.NumFrames()
	if _, err := sm.Ingest("traffic", v.Frames(0, n), v.Spec.FPS); err != nil {
		t.Fatal(err)
	}
	var ds []tasm.Detection
	for f := 0; f < n; f++ {
		for _, tr := range v.GroundTruth(f) {
			ds = append(ds, tasm.Detection{Frame: f, Label: tr.Label, Box: tr.Box})
		}
	}
	if err := sm.AddDetections("traffic", ds); err != nil {
		t.Fatal(err)
	}
	srv := server.New(sm, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	c, err := client.Dial(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return &harness{sm: sm, srv: srv, ts: ts, c: c, dir: dir}
}

const trafficSQL = "SELECT car FROM traffic WHERE 0 <= t < 40"

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRemoteScanMatchesInProcess is the fidelity bar: a remote
// streaming scan yields byte-identical regions, in the same order, with
// the same stats counters, as the in-process scan it fronts.
func TestRemoteScanMatchesInProcess(t *testing.T) {
	h := newHarness(t, server.Config{})
	ref, refSt, err := h.sm.ScanSQL(trafficSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) == 0 || refSt.SOTsTouched < 8 {
		t.Fatalf("weak reference: %d regions over %d SOTs", len(ref), refSt.SOTsTouched)
	}

	got, gotSt, err := h.c.ScanSQLContext(context.Background(), trafficSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ref) {
		t.Fatalf("remote returned %d regions, in-process %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i].Frame != ref[i].Frame || got[i].Region != ref[i].Region {
			t.Fatalf("region %d: remote (%d,%v) != local (%d,%v)", i, got[i].Frame, got[i].Region, ref[i].Frame, ref[i].Region)
		}
		if string(got[i].Pixels.Y) != string(ref[i].Pixels.Y) {
			t.Fatalf("region %d: pixels differ", i)
		}
	}
	if gotSt.RegionsReturned != refSt.RegionsReturned || gotSt.SOTsTouched != refSt.SOTsTouched {
		t.Fatalf("stats differ: remote %+v, local %+v", gotSt, refSt)
	}
}

// TestRemoteDecodeFramesMatchesInProcess does the same for whole-frame
// streaming.
func TestRemoteDecodeFramesMatchesInProcess(t *testing.T) {
	h := newHarness(t, server.Config{})
	ref, _, err := h.sm.DecodeFrames("traffic", 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := h.c.DecodeFramesCursor(context.Background(), "traffic", 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	i := 0
	for cur.Next() {
		r := cur.Result()
		if r.Index != 5+i {
			t.Fatalf("frame %d has index %d", i, r.Index)
		}
		if string(r.Pixels.Y) != string(ref[i].Y) {
			t.Fatalf("frame %d differs from in-process decode", r.Index)
		}
		i++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(ref) {
		t.Fatalf("streamed %d frames, want %d", i, len(ref))
	}
	if cur.Stats().FramesDecoded == 0 {
		t.Fatal("stats line missing decode counters")
	}
}

// TestRemoteErrorsAreSentinels pins the acceptance criterion:
// errors.Is(err, tasm.ErrVideoNotFound) holds for a remote miss exactly
// as in-process, across unary and streaming endpoints.
func TestRemoteErrorsAreSentinels(t *testing.T) {
	h := newHarness(t, server.Config{})
	if _, err := h.c.Meta("missing"); !errors.Is(err, tasm.ErrVideoNotFound) {
		t.Fatalf("remote Meta miss: got %v, want ErrVideoNotFound", err)
	}
	if _, err := h.c.ScanSQLCursor(context.Background(), "SELECT car FROM missing"); !errors.Is(err, tasm.ErrVideoNotFound) {
		t.Fatalf("remote scan miss: got %v, want ErrVideoNotFound", err)
	}
	if _, err := h.c.DecodeFramesCursor(context.Background(), "traffic", 90, 95); !errors.Is(err, tasm.ErrInvalidRange) {
		t.Fatalf("remote bad range: got %v, want ErrInvalidRange", err)
	}
	if _, err := h.c.IngestContext(context.Background(), "traffic", []*tasm.Frame{tasm.NewFrame(32, 32)}, 10); !errors.Is(err, tasm.ErrVideoExists) {
		t.Fatalf("remote duplicate ingest: got %v, want ErrVideoExists", err)
	}
	if _, err := h.c.ScanSQLCursor(context.Background(), "SELEC bogus"); !errors.Is(err, rpcwire.ErrBadRequest) {
		t.Fatalf("remote bad SQL: got %v, want ErrBadRequest", err)
	}
}

// TestMidStreamDisconnectReleasesLeases is the serving layer's
// cancellation guarantee: a client that walks away mid-stream makes the
// server cancel the cursor, release every read lease, and return every
// goroutine — no leaks, nothing for GC to defer on the dead request's
// account.
func TestMidStreamDisconnectReleasesLeases(t *testing.T) {
	h := newHarness(t, server.Config{})

	// Warm the transport and server pools so the goroutine baseline is
	// honest.
	if _, _, err := h.c.ScanSQLContext(context.Background(), trafficSQL); err != nil {
		t.Fatal(err)
	}
	h.c.Close()
	runtime.GC()
	baseline := runtime.NumGoroutine()

	// Abandon several scans mid-stream, some via Close, some via
	// context cancellation.
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cur, err := h.c.ScanSQLCursor(ctx, trafficSQL)
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		if !cur.Next() {
			t.Fatalf("scan %d yielded nothing: %v", i, cur.Err())
		}
		if i%2 == 0 {
			cur.Close()
			if !errors.Is(cur.Err(), tasm.ErrCursorClosed) {
				t.Fatalf("close before exhaustion: Err = %v, want ErrCursorClosed", cur.Err())
			}
		} else {
			cancel()
			waitFor(t, "cancelled cursor to stop", func() bool { return !cur.Next() })
			if cur.Err() == nil {
				t.Fatal("cancelled cursor reports clean exhaustion")
			}
		}
		cancel()
	}

	// Every lease must drop: the disconnect propagated into the cursor
	// pipeline, which releases before teardown completes.
	waitFor(t, "server-side leases to release", func() bool {
		rep, err := h.sm.FSCK()
		return err == nil && rep.Leases == 0
	})

	// And the goroutines must come home (tolerance for runtime and
	// keep-alive churn).
	h.c.Close()
	waitFor(t, "goroutines to return to baseline", func() bool {
		runtime.GC()
		return runtime.NumGoroutine() <= baseline+3
	})
}

// TestDeadlineHeaderExpiry: a request whose Tasm-Deadline-Ms budget
// cannot cover the scan fails with deadline_exceeded — either as a
// pre-stream 504 or as a mid-stream error line — and releases all
// leases.
func TestDeadlineHeaderExpiry(t *testing.T) {
	h := newHarness(t, server.Config{})
	body := `{"sql":"SELECT car FROM traffic WHERE 0 <= t < 40"}`
	req, err := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/scan", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(rpcwire.DeadlineHeader, "1")
	res, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()

	sawDeadline := false
	switch res.StatusCode {
	case http.StatusGatewayTimeout: // expired before the stream began
		var envelope struct {
			Error rpcwire.ErrorBody `json:"error"`
		}
		if err := json.NewDecoder(res.Body).Decode(&envelope); err != nil {
			t.Fatal(err)
		}
		sawDeadline = envelope.Error.Code == "deadline_exceeded"
		if !errors.Is(rpcwire.DecodeError(envelope.Error), context.DeadlineExceeded) {
			t.Fatalf("decoded %+v does not match context.DeadlineExceeded", envelope.Error)
		}
	case http.StatusOK: // expired mid-stream: the final line carries it
		dec := json.NewDecoder(res.Body)
		for {
			var line rpcwire.StreamLine
			if err := dec.Decode(&line); err != nil {
				break
			}
			if line.Error != nil {
				sawDeadline = line.Error.Code == "deadline_exceeded"
				if !errors.Is(rpcwire.DecodeError(*line.Error), context.DeadlineExceeded) {
					t.Fatalf("stream error %+v does not match context.DeadlineExceeded", line.Error)
				}
			}
			if line.Stats != nil {
				t.Fatal("1ms budget produced a clean stats line; deadline was not honored")
			}
		}
	default:
		t.Fatalf("unexpected status %d", res.StatusCode)
	}
	if !sawDeadline {
		t.Fatal("no deadline_exceeded anywhere in the response")
	}
	waitFor(t, "leases after deadline expiry", func() bool {
		rep, err := h.sm.FSCK()
		return err == nil && rep.Leases == 0
	})
}

// TestClientDeadlinePropagates covers the client side of the same
// contract: a context deadline on the caller surfaces as
// context.DeadlineExceeded whether it dies in transport or on the
// server.
func TestClientDeadlinePropagates(t *testing.T) {
	h := newHarness(t, server.Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, _, err := h.c.ScanSQLContext(ctx, trafficSQL)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
}

func TestBadDeadlineHeaderRejected(t *testing.T) {
	h := newHarness(t, server.Config{})
	req, err := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/scan", strings.NewReader(`{"sql":"SELECT car FROM traffic"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(rpcwire.DeadlineHeader, "soon")
	res, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", res.StatusCode)
	}
}

// TestRemoteMaintenanceOps drives the unary operational surface end to
// end: retile through the designed layout, stats, gc, fsck, repair,
// delete.
func TestRemoteMaintenanceOps(t *testing.T) {
	h := newHarness(t, server.Config{})

	l, err := h.c.DesignLayout("traffic", 0, []string{"car"})
	if err != nil {
		t.Fatal(err)
	}
	if !l.IsSingle() {
		if _, err := h.c.RetileSOTContext(context.Background(), "traffic", 0, l); err != nil {
			t.Fatal(err)
		}
		meta, err := h.c.Meta("traffic")
		if err != nil {
			t.Fatal(err)
		}
		if meta.SOTs[0].Retiles != 1 {
			t.Fatalf("retile did not land: %+v", meta.SOTs[0])
		}
	}

	if _, err := h.c.CacheStats(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.GC(); err != nil {
		t.Fatal(err)
	}
	rep, err := h.c.FSCK()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("fsck problems over the wire: %v", rep.Problems)
	}
	if err := h.c.RepairPointers("traffic"); err != nil {
		t.Fatal(err)
	}

	ds, err := h.c.LookupDetections("traffic", "car", 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) == 0 {
		t.Fatal("no remote detections")
	}
	labels, err := h.c.Labels("traffic")
	if err != nil || len(labels) == 0 {
		t.Fatalf("labels: %v %v", labels, err)
	}
	bytes, err := h.c.VideoBytes("traffic")
	if err != nil || bytes == 0 {
		t.Fatalf("video bytes: %d %v", bytes, err)
	}

	if err := h.c.DeleteVideo("traffic"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.c.Meta("traffic"); !errors.Is(err, tasm.ErrVideoNotFound) {
		t.Fatalf("after remote delete: %v", err)
	}
	videos, err := h.c.Videos()
	if err != nil || len(videos) != 0 {
		t.Fatalf("videos after delete: %v %v", videos, err)
	}
}

// TestRemoteIngestRoundTrip uploads frames through the wire and reads
// them back bit-for-bit against a local decode of the same store.
func TestRemoteIngestRoundTrip(t *testing.T) {
	h := newHarness(t, server.Config{})
	frames := make([]*tasm.Frame, 6)
	for i := range frames {
		frames[i] = tasm.NewFrame(64, 32)
		for j := range frames[i].Y {
			frames[i].Y[j] = byte(i*37 + j)
		}
	}
	st, err := h.c.IngestContext(context.Background(), "up", frames, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.SOTs == 0 || st.Bytes == 0 {
		t.Fatalf("ingest stats %+v", st)
	}
	remote, _, err := h.c.DecodeFramesContext(context.Background(), "up", 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	local, _, err := h.sm.DecodeFrames("up", 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range local {
		if string(remote[i].Y) != string(local[i].Y) {
			t.Fatalf("frame %d differs between remote and local decode", i)
		}
	}
}

// TestHealthz covers the probe and content type.
func TestHealthz(t *testing.T) {
	h := newHarness(t, server.Config{})
	if err := h.c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := http.Get(h.ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
}

// TestStreamContentType pins the streaming media type the README
// documents for curl users.
func TestStreamContentType(t *testing.T) {
	h := newHarness(t, server.Config{})
	res, err := http.Post(h.ts.URL+"/v1/scan", "application/json",
		strings.NewReader(`{"sql":"SELECT car FROM traffic WHERE 0 <= t < 5"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q, want application/x-ndjson", ct)
	}
}

// TestRemoteAutotile drives the whole adaptive loop over the wire:
// remote scans feed the daemon's observer, the background loop applies a
// re-tile, and the status/pause/resume endpoints control and reflect it.
func TestRemoteAutotile(t *testing.T) {
	h := newHarness(t, server.Config{},
		tasm.WithAdaptiveTiling(), tasm.WithEta(0), tasm.WithAutotileInterval(20*time.Millisecond))

	st, err := h.c.AutotileStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.ActionsApplied != 0 {
		t.Fatalf("fresh status %+v", st)
	}

	// Pause first so the test controls when actions land.
	if err := h.c.AutotilePause("test hold"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := h.c.ScanSQLContext(context.Background(), trafficSQL); err != nil {
		t.Fatal(err)
	}
	st, _ = h.c.AutotileStatus()
	if !st.Paused || st.PauseReason != "test hold" {
		t.Fatalf("paused status %+v", st)
	}
	if st.QueriesObserved == 0 || st.QueriesPending == 0 {
		t.Fatalf("remote scan did not reach the observer: %+v", st)
	}

	if err := h.c.AutotileResume(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "a background re-tile", func() bool {
		st, err := h.c.AutotileStatus()
		return err == nil && st.ActionsApplied >= 1
	})
	meta, err := h.sm.Meta("traffic")
	if err != nil {
		t.Fatal(err)
	}
	tiled := false
	for _, sot := range meta.SOTs {
		if !sot.L.IsSingle() {
			tiled = true
		}
	}
	if !tiled {
		t.Fatal("no SOT re-tiled despite applied actions")
	}

	// /metrics reflects the subsystem.
	res, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var body strings.Builder
	if _, err := io.Copy(&body, res.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tasm_autotile_enabled 1", "tasm_autotile_actions_total", "tasm_autotile_regret"} {
		if !strings.Contains(body.String(), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestAutotileDisabledOverWire pins the contract for a daemon without
// -autotile: status reports Enabled false with 200, while pause and
// resume fail with the typed sentinel.
func TestAutotileDisabledOverWire(t *testing.T) {
	h := newHarness(t, server.Config{})
	st, err := h.c.AutotileStatus()
	if err != nil {
		t.Fatal(err)
	}
	if st.Enabled {
		t.Fatal("autotile reported enabled without WithAdaptiveTiling")
	}
	if err := h.c.AutotilePause(""); !errors.Is(err, tasm.ErrAutotileDisabled) {
		t.Fatalf("pause error = %v, want ErrAutotileDisabled", err)
	}
	if err := h.c.AutotileResume(); !errors.Is(err, tasm.ErrAutotileDisabled) {
		t.Fatalf("resume error = %v, want ErrAutotileDisabled", err)
	}
}
