package server_test

// End-to-end tests of the tracing surface and the latency histograms:
// the trace id a client installs is the id the daemon echoes, the key
// the trace ring serves the span timeline under, and the histograms
// count exactly one observation per request even when streams race.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/obs"
	"github.com/tasm-repro/tasm/internal/server"
)

// traceRecord is the subset of the daemon's trace JSON the assertions
// need; the full schema stays owned by internal/obs.
type traceRecord struct {
	TraceID string            `json:"trace_id"`
	Attrs   map[string]string `json:"attrs"`
	Spans   []struct {
		Name  string            `json:"name"`
		Attrs map[string]string `json:"attrs"`
	} `json:"spans"`
}

// TestTraceRoundTrip: a caller-chosen trace id survives the whole
// round trip — cursor, response header, and the /v1/trace/{id} ring —
// and the record carries the middleware's spans plus the streaming
// flush span with its record count.
func TestTraceRoundTrip(t *testing.T) {
	h := newHarness(t, server.Config{})
	tid := client.NewTraceID()
	ctx := client.WithTraceID(context.Background(), tid)

	cur, err := h.c.ScanSQLCursor(ctx, trafficSQL)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	regions := 0
	for cur.Next() {
		regions++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if regions == 0 {
		t.Fatal("scan returned no regions")
	}
	if got := cur.TraceID(); got != tid {
		t.Fatalf("cursor trace id %q, want %q", got, tid)
	}

	// The ring indexes the record at request completion, which lands
	// moments after the client reads the last byte.
	var rec traceRecord
	waitFor(t, "trace record in the ring", func() bool {
		raw, err := h.c.TraceContext(context.Background(), tid)
		if err != nil {
			return false
		}
		return json.Unmarshal(raw, &rec) == nil
	})
	if rec.TraceID != tid {
		t.Fatalf("record trace id %q, want %q", rec.TraceID, tid)
	}
	if rec.Attrs["endpoint"] != "POST /v1/scan" {
		t.Fatalf("endpoint attr %q", rec.Attrs["endpoint"])
	}
	if rec.Attrs["status"] != "200" {
		t.Fatalf("status attr %q", rec.Attrs["status"])
	}
	spans := map[string]map[string]string{}
	for _, s := range rec.Spans {
		spans[s.Name] = s.Attrs
	}
	for _, want := range []string{"auth", "admit", "handle", "flush"} {
		if _, ok := spans[want]; !ok {
			t.Fatalf("record missing span %q; have %v", want, rec.Spans)
		}
	}
	if got := spans["flush"]["records"]; got != fmt.Sprint(regions) {
		t.Fatalf("flush span records = %q, want %d", got, regions)
	}

	// A miss is the typed sentinel, not a silent empty record.
	if _, err := h.c.TraceContext(context.Background(), "nosuchtrace"); !errors.Is(err, client.ErrTraceNotFound) {
		t.Fatalf("unknown id: err = %v, want ErrTraceNotFound", err)
	}
}

// TestInvalidTraceIDReplaced: a header that fails validation is not
// adopted — the daemon mints its own and echoes that instead, so junk
// ids never become ring keys.
func TestInvalidTraceIDReplaced(t *testing.T) {
	h := newHarness(t, server.Config{})
	req, err := http.NewRequest(http.MethodGet, h.ts.URL+"/v1/videos", nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := "not a valid id!" // spaces and '!' are outside the alphabet
	req.Header.Set("Tasm-Trace-Id", bad)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, res.Body)
	res.Body.Close()
	echoed := res.Header.Get("Tasm-Trace-Id")
	if echoed == bad || echoed == "" {
		t.Fatalf("echoed id %q; want a freshly minted replacement", echoed)
	}
}

// TestMetricsExpositionLinted: the live exposition — after real
// traffic has populated the labeled series — passes the HELP/TYPE
// lint, so no series ships undocumented.
func TestMetricsExpositionLinted(t *testing.T) {
	h := newHarness(t, server.Config{})
	if _, _, err := h.c.ScanSQLContext(context.Background(), trafficSQL); err != nil {
		t.Fatal(err)
	}
	res, err := http.Get(h.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if err := obs.LintExposition(string(body)); err != nil {
		t.Fatalf("live exposition fails lint: %v", err)
	}
}

// TestHistogramCountsConcurrentStreams: racing streaming scans each
// count exactly once in the wall, TTFR, and size histograms. Run under
// -race this also exercises the histogram locking.
func TestHistogramCountsConcurrentStreams(t *testing.T) {
	h := newHarness(t, server.Config{})
	const workers, perWorker = 8, 3

	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, _, err := h.c.ScanSQLContext(context.Background(), trafficSQL); err != nil {
					errCh <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	want := fmt.Sprintf("%d", workers*perWorker)
	for _, series := range []string{
		`tasm_request_seconds_count{endpoint="POST /v1/scan",tenant="-"} `,
		`tasm_request_ttfr_seconds_count{endpoint="POST /v1/scan",tenant="-"} `,
		`tasm_response_size_bytes_count{endpoint="POST /v1/scan",tenant="-"} `,
	} {
		// The deferred observation can land moments after the client
		// reads a stream's last byte; poll the scrape.
		waitFor(t, series+want, func() bool {
			res, err := http.Get(h.ts.URL + "/metrics")
			if err != nil {
				return false
			}
			body, _ := io.ReadAll(res.Body)
			res.Body.Close()
			return strings.Contains(string(body), series+want+"\n")
		})
	}
}
