package server_test

// Wire protocol v2 tests: the binary frame streaming through the full
// stack — negotiation at the handler, encoding on the wire, decoding
// in the client — plus the per-request cache-budget knob.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/rpcwire"
	"github.com/tasm-repro/tasm/internal/server"
)

// binaryClient connects a second client to the harness asking for the
// v2 framing.
func binaryClient(t *testing.T, h *harness, extra ...client.Option) *client.Client {
	t.Helper()
	c, err := client.New(h.ts.URL, append([]client.Option{client.WithEncoding(client.Binary)}, extra...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestBinaryRemoteScanByteIdentical is the v2 acceptance bar: the same
// scan through the binary framing yields byte-identical regions, in
// the same order, with the same stats, as both the in-process scan and
// the NDJSON remote scan.
func TestBinaryRemoteScanByteIdentical(t *testing.T) {
	h := newHarness(t, server.Config{})
	ref, refSt, err := h.sm.ScanSQL(trafficSQL)
	if err != nil {
		t.Fatal(err)
	}
	nd, _, err := h.c.ScanSQLContext(context.Background(), trafficSQL)
	if err != nil {
		t.Fatal(err)
	}
	bc := binaryClient(t, h)
	bin, binSt, err := bc.ScanSQLContext(context.Background(), trafficSQL)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) != len(ref) || len(nd) != len(ref) {
		t.Fatalf("region counts diverge: inproc %d, ndjson %d, binary %d", len(ref), len(nd), len(bin))
	}
	for i := range ref {
		if bin[i].Frame != ref[i].Frame || bin[i].Region != ref[i].Region {
			t.Fatalf("region %d: binary header (%d,%v) != local (%d,%v)", i, bin[i].Frame, bin[i].Region, ref[i].Frame, ref[i].Region)
		}
		if string(bin[i].Pixels.Y) != string(ref[i].Pixels.Y) ||
			string(bin[i].Pixels.Cb) != string(ref[i].Pixels.Cb) ||
			string(bin[i].Pixels.Cr) != string(ref[i].Pixels.Cr) {
			t.Fatalf("region %d: binary pixels not byte-identical to in-process", i)
		}
		if string(bin[i].Pixels.Y) != string(nd[i].Pixels.Y) {
			t.Fatalf("region %d: the two wire framings decoded different pixels", i)
		}
	}
	if binSt.RegionsReturned != refSt.RegionsReturned || binSt.SOTsTouched != refSt.SOTsTouched {
		t.Fatalf("stats differ: binary %+v, local %+v", binSt, refSt)
	}
}

// TestBinaryRemoteDecodeFramesByteIdentical covers the whole-frame
// stream under the v2 framing.
func TestBinaryRemoteDecodeFramesByteIdentical(t *testing.T) {
	h := newHarness(t, server.Config{})
	ref, _, err := h.sm.DecodeFrames("traffic", 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	bc := binaryClient(t, h)
	cur, err := bc.DecodeFramesCursor(context.Background(), "traffic", 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	i := 0
	for cur.Next() {
		r := cur.Result()
		if r.Index != 5+i || string(r.Pixels.Y) != string(ref[i].Y) {
			t.Fatalf("frame %d differs under binary framing", r.Index)
		}
		i++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if i != len(ref) {
		t.Fatalf("streamed %d frames, want %d", i, len(ref))
	}
}

// TestBinarySentinelParity pins errors.Is parity across encodings:
// constructor failures and mid-stream failures reconstruct the same
// sentinels through the binary framing as through NDJSON and
// in-process.
func TestBinarySentinelParity(t *testing.T) {
	h := newHarness(t, server.Config{})
	bc := binaryClient(t, h)
	if _, err := bc.ScanSQLCursor(context.Background(), "SELECT car FROM missing"); !errors.Is(err, tasm.ErrVideoNotFound) {
		t.Fatalf("binary scan miss: got %v, want ErrVideoNotFound", err)
	}
	if _, err := bc.DecodeFramesCursor(context.Background(), "traffic", 90, 95); !errors.Is(err, tasm.ErrInvalidRange) {
		t.Fatalf("binary bad range: got %v, want ErrInvalidRange", err)
	}
	// Mid-stream: a 1ms deadline dies either before the stream (504) or
	// inside it (an error record in the binary trailer); both must
	// reconstruct context.DeadlineExceeded. Raw request so we exercise
	// the server-side binary error record, not just the client mapping.
	req, err := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/scan",
		strings.NewReader(`{"sql":"SELECT car FROM traffic WHERE 0 <= t < 40"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", rpcwire.ContentTypeBinary)
	req.Header.Set(rpcwire.DeadlineHeader, "1")
	res, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	switch res.StatusCode {
	case http.StatusGatewayTimeout:
		// Expired at the boundary: the unary envelope path, already
		// covered by TestDeadlineHeaderExpiry.
	case http.StatusOK:
		if ct := res.Header.Get("Content-Type"); ct != rpcwire.ContentTypeBinary {
			t.Fatalf("negotiated content type %q, want %s", ct, rpcwire.ContentTypeBinary)
		}
		fr := rpcwire.NewFrameStreamReader(res.Body)
		sawDeadline := false
		for {
			line, err := fr.ReadLine()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if line.Stats != nil {
				t.Fatal("1ms budget produced a clean stats record; deadline was not honored")
			}
			if line.Error != nil {
				if !errors.Is(rpcwire.DecodeError(*line.Error), context.DeadlineExceeded) {
					t.Fatalf("binary error record %+v does not match context.DeadlineExceeded", line.Error)
				}
				sawDeadline = true
			}
		}
		if !sawDeadline {
			t.Fatal("no deadline_exceeded record in the binary stream")
		}
	default:
		t.Fatalf("unexpected status %d", res.StatusCode)
	}
}

// TestBinaryContentTypeNegotiated: the handler answers with the
// framing the request asked for, and the default stays NDJSON.
func TestBinaryContentTypeNegotiated(t *testing.T) {
	h := newHarness(t, server.Config{})
	body := `{"sql":"SELECT car FROM traffic WHERE 0 <= t < 5"}`
	for _, c := range []struct {
		hdr, val, want string
	}{
		{"", "", rpcwire.ContentTypeNDJSON},
		{"Accept", rpcwire.ContentTypeBinary, rpcwire.ContentTypeBinary},
		{rpcwire.APIVersionHeader, rpcwire.APIVersionBinary, rpcwire.ContentTypeBinary},
	} {
		req, err := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/scan", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if c.hdr != "" {
			req.Header.Set(c.hdr, c.val)
		}
		res, err := h.ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, res.Body) //nolint:errcheck
		res.Body.Close()
		if ct := res.Header.Get("Content-Type"); ct != c.want {
			t.Fatalf("%s=%s: content type %q, want %q", c.hdr, c.val, ct, c.want)
		}
	}
}

// TestCacheBudgetHeader: a request under Tasm-Cache-Budget: 0 decodes
// without polluting the daemon's decoded-tile cache; an uncapped
// request fills it.
func TestCacheBudgetHeader(t *testing.T) {
	h := newHarness(t, server.Config{}, tasm.WithCacheBudget(64<<20))
	capped, err := client.New(h.ts.URL, client.WithCacheBudget(0))
	if err != nil {
		t.Fatal(err)
	}
	defer capped.Close()
	if _, _, err := capped.ScanSQLContext(context.Background(), trafficSQL); err != nil {
		t.Fatal(err)
	}
	if st := h.sm.CacheStats(); st.Entries != 0 {
		t.Fatalf("budget-0 scan admitted %d cache entries", st.Entries)
	}
	// The uncapped default client fills the cache as usual.
	if _, _, err := h.c.ScanSQLContext(context.Background(), trafficSQL); err != nil {
		t.Fatal(err)
	}
	if st := h.sm.CacheStats(); st.Entries == 0 {
		t.Fatal("uncapped scan admitted nothing; the budget knob is stuck on")
	}
	// And a malformed budget is a bad request.
	req, err := http.NewRequest(http.MethodPost, h.ts.URL+"/v1/scan",
		strings.NewReader(`{"sql":"SELECT car FROM traffic"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(rpcwire.CacheBudgetHeader, "lots")
	res, err := h.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad budget header: status %d, want 400", res.StatusCode)
	}
}
