package shard

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tasm-repro/tasm/client"
)

// DefaultBreakerThreshold is the consecutive-failure count that marks a
// shard down when the router config leaves it zero: one blip (a dropped
// connection mid-deploy) should not eject a shard, three in a row means
// requests are burning their latency budget on a dead address.
const DefaultBreakerThreshold = 3

// DefaultHealthInterval is the probe period when the config leaves it
// zero: fast enough that a SIGKILLed shard is marked down (and a
// restarted one marked up) within a few seconds, slow enough that N
// routers probing M shards is noise.
const DefaultHealthInterval = 2 * time.Second

// shardState is the router's per-shard runtime: the backend client, the
// breaker, and the serving counters /metrics exports. States are keyed
// by shard name and survive map reloads, so a SIGHUP that only changes
// an unrelated shard does not reset this one's health or counters.
type shardState struct {
	name string
	addr string
	c    *client.Client

	// Breaker: consecutive counts probe and request failures since the
	// last success; down latches once it reaches the threshold and
	// clears on the next success (the prober keeps probing a down
	// shard, so recovery needs no operator action).
	mu          sync.Mutex
	consecutive int
	down        bool

	requests atomic.Int64 // requests routed to this shard
	failures atomic.Int64 // transport-level failures observed
}

// isDown reports whether the breaker is open.
func (s *shardState) isDown() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down
}

// snapshot returns the breaker state for /v1/shards and /metrics.
func (s *shardState) snapshot() (down bool, consecutive int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.down, s.consecutive
}

// recordSuccess resets the breaker, reporting true on a down→up
// transition (the caller logs it).
func (s *shardState) recordSuccess() (revived bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	revived = s.down
	s.down, s.consecutive = false, 0
	return revived
}

// recordFailure counts one failure, reporting true on the up→down
// transition at threshold.
func (s *shardState) recordFailure(threshold int) (opened bool) {
	s.failures.Add(1)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.consecutive++
	if !s.down && s.consecutive >= threshold {
		s.down = true
		return true
	}
	return false
}

// probe runs one health check against the shard, bounded so a hung
// shard costs one interval, not a stuck prober.
func (rt *Router) probe(st *shardState, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if err := st.c.Ping(ctx); err != nil {
		if st.recordFailure(rt.cfg.BreakerThreshold) {
			rt.cfg.Logger.Printf("shard %s (%s) down: %v", st.name, st.addr, err)
		}
		return
	}
	if st.recordSuccess() {
		rt.cfg.Logger.Printf("shard %s (%s) up", st.name, st.addr)
	}
}

// probeLoop probes every shard each interval until Close. Probes run
// concurrently per tick: one hung shard must not delay detection on
// the others.
func (rt *Router) probeLoop() {
	defer rt.probeWG.Done()
	ticker := time.NewTicker(rt.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-rt.stopCh:
			return
		case <-ticker.C:
		}
		// The timeout tracks the interval but never dips below a floor:
		// with a sub-second interval, a shard briefly busy with a heavy
		// ingest would blow 50ms probe budgets and trip the breaker
		// while perfectly alive.
		timeout := rt.cfg.HealthInterval
		if timeout < time.Second {
			timeout = time.Second
		}
		var wg sync.WaitGroup
		for _, st := range rt.statesSnapshot() {
			wg.Add(1)
			go func(st *shardState) {
				defer wg.Done()
				rt.probe(st, timeout)
			}(st)
		}
		wg.Wait()
	}
}
