package shard_test

// Live ingest across the fleet: appends and subscriptions route to the
// owning shard, tails survive map reloads, and a shard dying under an
// active subscription surfaces the typed unavailability sentinel.

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"github.com/tasm-repro/tasm"
	"github.com/tasm-repro/tasm/client"
	"github.com/tasm-repro/tasm/internal/scene"
	"github.com/tasm-repro/tasm/internal/shard"
)

func liveFleetFeed(t *testing.T, frames int) *scene.Video {
	t.Helper()
	v, err := scene.Generate(scene.Spec{
		Name: "cam0", W: 128, H: 64, FPS: 10, DurationSec: (frames + 9) / 10,
		Classes: []scene.ClassMix{{Class: scene.Car, Count: 1, SizeFrac: 0.25}},
		Seed:    61,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Spec.NumFrames() < frames {
		t.Fatalf("feed has %d frames, need %d", v.Spec.NumFrames(), frames)
	}
	return v
}

// TestLiveAppendSubscribeThroughRouter drives the live path entirely
// through the router: create, append, and a binary-framing tail all
// land on the owning shard; a map reload mid-stream (the SIGHUP shape)
// does not disturb the subscription; and after the seal the delivered
// frames are byte-identical to a batch re-scan on the owner.
func TestLiveAppendSubscribeThroughRouter(t *testing.T) {
	f := newFleet(t)
	const total = 40
	v := liveFleetFeed(t, total)
	ctx := context.Background()

	bc, err := client.New(f.ts.URL, client.WithEncoding(client.Binary))
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()

	if err := f.c.CreateLiveContext(ctx, "cam0", 128, 64, 10, nil); err != nil {
		t.Fatal(err)
	}
	owner := f.shards[f.owner("cam0")]
	if _, err := owner.sm.Meta("cam0"); err != nil {
		t.Fatalf("live create did not land on the owning shard: %v", err)
	}

	type run struct {
		indices []int
		pixels  map[int][]byte
		err     error
	}
	out := make(chan run, 1)
	go func() {
		r := run{pixels: map[int][]byte{}}
		cur, err := bc.Subscribe(ctx, "cam0", 0)
		if err != nil {
			r.err = err
			out <- r
			return
		}
		defer cur.Close()
		for cur.Next() {
			res := cur.Result()
			r.indices = append(r.indices, res.Index)
			r.pixels[res.Index] = append(append(append([]byte(nil), res.Pixels.Y...), res.Pixels.Cb...), res.Pixels.Cr...)
		}
		r.err = cur.Err()
		out <- r
	}()

	gop := 5
	for from := 0; from < total; from += gop {
		if _, err := f.c.AppendContext(ctx, "cam0", v.Frames(from, min(from+gop, total))); err != nil {
			t.Fatalf("routed append [%d,%d): %v", from, from+gop, err)
		}
		if from == total/2 {
			// The SIGHUP shape mid-stream: reinstall an equivalent map.
			// The relay to the owning shard must keep streaming.
			m2, err := shard.NewMap(f.m.Shards(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.rt.SetMap(m2); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := f.c.SealContext(ctx, "cam0"); err != nil {
		t.Fatal(err)
	}

	var r run
	select {
	case r = <-out:
	case <-time.After(30 * time.Second):
		t.Fatal("routed tail did not terminate after seal")
	}
	if r.err != nil {
		t.Fatalf("routed tail: %v", r.err)
	}
	if len(r.indices) != total {
		t.Fatalf("routed tail delivered %d frames, want %d", len(r.indices), total)
	}
	ref, _, err := owner.sm.DecodeFrames("cam0", 0, total)
	if err != nil {
		t.Fatal(err)
	}
	for i, idx := range r.indices {
		if idx != i {
			t.Fatalf("delivery %d has index %d (not exactly-once)", i, idx)
		}
		want := append(append(append([]byte(nil), ref[i].Y...), ref[i].Cb...), ref[i].Cr...)
		if !bytes.Equal(r.pixels[i], want) {
			t.Fatalf("frame %d through the router not byte-identical to the owner's re-scan", i)
		}
	}
}

// TestShardKillMidSubscribe: a shard dying under an active routed
// subscription must surface tasm.ErrShardUnavailable on the tail — a
// typed, classifiable failure, not a hang or a silent clean end.
func TestShardKillMidSubscribe(t *testing.T) {
	f := newFleet(t)
	const total = 20
	v := liveFleetFeed(t, total)
	ctx := context.Background()

	if err := f.c.CreateLiveContext(ctx, "cam0", 128, 64, 10, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.c.AppendContext(ctx, "cam0", v.Frames(0, total)); err != nil {
		t.Fatal(err)
	}

	cur, err := f.c.Subscribe(ctx, "cam0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	// Drain the committed history; the tail is then blocked on the
	// owning shard waiting for the next commit.
	delivered := 0
	for delivered < total && cur.Next() {
		delivered++
	}
	if delivered != total {
		t.Fatalf("tail ended after %d frames: %v", delivered, cur.Err())
	}

	victim := f.shards[f.owner("cam0")]
	victim.ts.CloseClientConnections()
	victim.ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for cur.Next() {
			delivered++
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("tail still blocked after its shard died")
	}
	if err := cur.Err(); !errors.Is(err, tasm.ErrShardUnavailable) {
		t.Fatalf("after shard kill: err = %v, want ErrShardUnavailable", err)
	}
	if !errors.Is(cur.Err(), client.ErrShardUnavailable) {
		t.Fatal("client re-export does not match the same sentinel")
	}
}
